#include "runtime/compiler.h"

#include "common/logging.h"

namespace gcd2::runtime {

using select::CostModel;
using select::ExecutionPlan;
using select::PlanTable;
using select::Selection;
using select::SelectorResult;

CompiledModel
compile(const graph::Graph &graph, const CompileOptions &options)
{
    CostModel model(options.cost);
    PlanTable table(graph, model);

    CompiledModel result;
    switch (options.selection) {
      case SelectionMode::Gcd2:
        result.selector =
            select::selectGcd2Partitioned(table, options.maxPartition);
        break;
      case SelectionMode::Local:
        result.selector = select::selectLocal(table);
        break;
      case SelectionMode::GlobalOptimal:
        result.selector = select::selectGlobalOptimal(table);
        break;
      case SelectionMode::Uniform: {
        // One scheme for every matmul-family operator, row-major for the
        // rest: the uniform per-op-type implementations of TFLite/SNPE.
        result.selector = select::selectLocal(table);
        for (const graph::Node &node : graph.nodes()) {
            if (node.dead)
                continue;
            if (graph::isMatMulFamily(node.op)) {
                result.selector.selection
                    .planIndex[static_cast<size_t>(node.id)] =
                    static_cast<int>(options.uniformScheme);
            } else if (select::isLayoutAgnostic(node.op)) {
                // Row-major plan (index 0).
                result.selector.selection
                    .planIndex[static_cast<size_t>(node.id)] = 0;
            }
        }
        result.selector.selection.totalCost =
            select::aggCost(table, result.selector.selection);
        break;
      }
    }
    result.selection = result.selector.selection;
    result.totalMacs = graph.totalMacs();
    for (const graph::Node &node : graph.nodes()) {
        if (node.dead || node.op == graph::OpType::Output)
            continue;
        // Each tensor counts once as an output and once per consumer.
        result.demandBytes += node.shape.elements();
        for (graph::NodeId in : node.inputs)
            if (!graph.node(in).dead)
                result.demandBytes += graph.node(in).shape.elements();
    }

    // Aggregate per-node execution statistics and per-edge transforms.
    result.nodeCycles.assign(graph.size(), 0);
    for (const graph::Node &node : graph.nodes()) {
        if (node.dead)
            continue;
        const int planIdx =
            result.selection.planIndex[static_cast<size_t>(node.id)];
        const ExecutionPlan &plan =
            table.plans(node.id)[static_cast<size_t>(planIdx)];
        const select::NodeExecStats stats =
            model.planStats(graph, node.id, plan);
        result.nodeCycles[static_cast<size_t>(node.id)] = stats.cycles;
        result.totals += stats;
        if (node.op != graph::OpType::Input &&
            node.op != graph::OpType::Constant &&
            node.op != graph::OpType::Output) {
            ++result.liveOperators;
            result.totals.cycles += options.perOpOverheadCycles;
        }
        // Library kernels (Hexagon NN) pack the activation into the
        // kernel layout on entry and unpack the result on exit.
        if (options.libraryStyleBoundaries &&
            graph::isMatMulFamily(node.op) && plan.isMatMulPlan()) {
            const graph::Node &producer = graph.node(node.inputs[0]);
            const select::NodeExecStats inPack = model.transformStats(
                producer.shape, tensor::Layout::RowMajor, plan.inLayout);
            const select::NodeExecStats outUnpack = model.transformStats(
                node.shape, plan.outLayout, tensor::Layout::RowMajor);
            result.totals += inPack;
            result.totals += outUnpack;
            result.transformOnly += inPack;
            result.transformOnly += outUnpack;
        }
    }
    // With library-style boundaries every inter-operator tensor is
    // row-major, so no cross-edge transformation remains to charge.
    if (options.libraryStyleBoundaries)
        return result;
    for (const auto &[src, dst] : table.edges()) {
        const graph::Node &producer = graph.node(src);
        if (producer.op == graph::OpType::Constant)
            continue;
        const ExecutionPlan &from =
            table.plans(src)[static_cast<size_t>(
                result.selection.planIndex[static_cast<size_t>(src)])];
        const ExecutionPlan &to =
            table.plans(dst)[static_cast<size_t>(
                result.selection.planIndex[static_cast<size_t>(dst)])];
        const select::NodeExecStats tc = model.transformStats(
            producer.shape, from.outLayout, to.inLayout);
        result.totals += tc;
        result.transformOnly += tc;
    }
    return result;
}

} // namespace gcd2::runtime
