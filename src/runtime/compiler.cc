#include "runtime/compiler.h"

#include "runtime/pipeline.h"

namespace gcd2::runtime {

CompiledModel
compile(const graph::Graph &graph, const CompileOptions &options)
{
    CompilationSession session(graph, options);
    return session.run();
}

} // namespace gcd2::runtime
