/**
 * @file
 * The compilation pipeline: one CompilationSession per compile, running
 * the Fig. 6 workflow as a sequence of named, individually timed passes:
 *
 *   graph-optimize    computational-graph optimizations (fold/fuse/DCE)
 *   plan-table        enumerate + cost every candidate plan (kernel
 *                     generation, VLIW packing, and timing simulation of
 *                     the canonical kernels happen here, memoized)
 *   selection         global layout/instruction selection (IV-A/B),
 *                     served through a fallback ladder (requested
 *                     strategy -> gcd2 -> pbqp -> chain-dp -> local): a
 *                     rung that throws FatalError is recorded as a
 *                     Warning diagnostic and the next rung serves
 *                     instead
 *   kernel-generation per-node statistics of the *chosen* kernels
 *   cycle-accounting  totals, layout-transformation edges, overheads
 *   audit             selection + schedule invariant checks (AuditMode)
 *
 * Each pass records wall-clock seconds and input/output counters into a
 * PipelineReport that ships inside the CompiledModel, so callers can see
 * where compile time went without re-instrumenting. Structured
 * diagnostics (fallbacks taken, budgets exhausted, audit findings) flow
 * through a thread-safe DiagLog into PipelineReport::diagnostics.
 *
 * The session owns a ThreadPool (CompileOptions::numThreads) used by the
 * embarrassingly parallel stages -- per-node plan costing, independent
 * GCD2 partition solves, and per-node kernel accounting. Every parallel
 * region is deterministic: thread count changes wall-clock time only,
 * never the Selection, costs, or cycle totals.
 */
#ifndef GCD2_RUNTIME_PIPELINE_H
#define GCD2_RUNTIME_PIPELINE_H

#include <functional>
#include <optional>

#include "common/diag.h"
#include "common/thread_pool.h"
#include "runtime/compiler.h"
#include "select/pbqp.h"

namespace gcd2::runtime {

class CompilationSession
{
  public:
    CompilationSession(const graph::Graph &graph,
                       const CompileOptions &options);

    /** Run every pass and return the compiled model (with its report). */
    CompiledModel run();

    /** The report built so far (complete after run()). */
    const PipelineReport &report() const { return report_; }

  private:
    /** Time one named pass; @p body fills the pass's counters. */
    void runPass(const char *name,
                 const std::function<void(PassReport &)> &body);

    void passGraphOptimize(PassReport &pass);
    void passPlanTable(PassReport &pass);
    void passSelection(PassReport &pass, CompiledModel &result);
    void passKernelGeneration(PassReport &pass, CompiledModel &result);
    void passCycleAccounting(PassReport &pass, CompiledModel &result);
    void passAudit(PassReport &pass, CompiledModel &result);

    graph::Graph graph_; ///< session-private copy the passes may rewrite
    CompileOptions options_;
    ThreadPool pool_;
    PipelineReport report_;
    /** Thread-safe diagnostic sink; snapshotted into the report. */
    common::DiagLog diag_;

    std::optional<select::CostModel> model_;
    std::optional<select::PlanTable> table_;
    /** Reduction-rule telemetry of the last PBQP solve (valid when the
     *  pbqp rung served; feeds the pbqp-r* counters and gates the deep
     *  audit's exact re-solve on provablyOptimal()). */
    select::PbqpStats pbqpStats_;
    /** Stats of each node's selected plan (kernel-generation output). */
    std::vector<select::NodeExecStats> nodeStats_;
    /** Standalone transform cycles the graph-optimize pass eliminated
     *  (analytic estimate; feeds the transform-cycles-pre counter). */
    int64_t transformCyclesSaved_ = 0;
};

} // namespace gcd2::runtime

#endif // GCD2_RUNTIME_PIPELINE_H
