/**
 * @file
 * End-to-end compilation driver (the system workflow of Fig. 6).
 *
 * Pipeline: computational-graph optimizations (constant folding,
 * activation fusion, DCE) -> global SIMD layout/instruction selection ->
 * other optimizations (division-to-LUT) -> kernel generation with the
 * chosen unrolling -> VLIW packing -> cycle accounting on the DSP
 * simulator. The result aggregates per-operator and per-edge (layout
 * transformation) statistics into the model's latency, utilization, and
 * memory-bandwidth figures.
 */
#ifndef GCD2_RUNTIME_COMPILER_H
#define GCD2_RUNTIME_COMPILER_H

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "select/selector.h"

namespace gcd2::runtime {

/**
 * Simulated-cycle to wall-clock conversion.
 *
 * The simulator models a 1024-bit, two-multiply-pipe HVX subset with
 * non-overlapping packets (the paper's footnote-5 timing abstraction).
 * Real Hexagon 698 adds packet pipelining, pair-register-wide multiply
 * variants, and a 1.4+ GHz clock, which scale absolute throughput by a
 * near-constant factor. The factor below is calibrated once so that the
 * GCD2-compiled ResNet-50 lands at the paper's 7.1 ms (Table IV); it is
 * applied uniformly to every configuration, so all relative results
 * (speedups, ablations, crossovers) are untouched by it.
 */
inline constexpr double kEffectiveCyclesPerMs = 6.46e6;

/** How the per-operator plans are chosen. */
enum class SelectionMode : uint8_t
{
    Gcd2,          ///< partitioned global optimization (the paper)
    Local,         ///< per-operator local optimum (Fig. 10 baseline)
    GlobalOptimal, ///< exhaustive (small graphs only)
    Uniform,       ///< one fixed scheme everywhere (TFLite/SNPE-style)
};

/** Full compile-time configuration. */
struct CompileOptions
{
    select::CostModelOptions cost{};
    SelectionMode selection = SelectionMode::Gcd2;
    int maxPartition = 13;
    /** Scheme used by SelectionMode::Uniform. */
    kernels::MatMulScheme uniformScheme = kernels::MatMulScheme::Vrmpy;
    /** Added per-operator dispatch overhead (framework runtimes). */
    uint64_t perOpOverheadCycles = 0;
    /**
     * Library-style kernel boundaries (Hexagon NN behavior): every
     * matmul-family kernel receives row-major tensors and repacks
     * internally on entry/exit, so no layout survives between operators.
     * This is the per-call cost that GCD2's global layout selection
     * eliminates.
     */
    bool libraryStyleBoundaries = false;
};

/** A compiled model with its aggregated execution statistics. */
/** Peak multiply-accumulates per cycle of the simulated DSP (two
 *  multiply pipes x 128 MACs). */
inline constexpr double kPeakMacsPerCycle = 256.0;

struct CompiledModel
{
    select::Selection selection;
    select::SelectorResult selector;
    select::NodeExecStats totals;       ///< kernels + transforms + overhead
    select::NodeExecStats transformOnly; ///< layout transformations alone
    int64_t liveOperators = 0;
    int64_t totalMacs = 0;
    /** Tensor bytes the graph's operators must consume + produce. */
    int64_t demandBytes = 0;
    /** Per-node kernel cycles (indexed by NodeId; 0 for dead nodes). */
    std::vector<uint64_t> nodeCycles;

    /** The k most expensive operators (id, cycles), descending. */
    std::vector<std::pair<graph::NodeId, uint64_t>>
    topOperators(size_t k) const
    {
        std::vector<std::pair<graph::NodeId, uint64_t>> all;
        for (size_t i = 0; i < nodeCycles.size(); ++i)
            if (nodeCycles[i] > 0)
                all.emplace_back(static_cast<graph::NodeId>(i),
                                 nodeCycles[i]);
        std::sort(all.begin(), all.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        if (all.size() > k)
            all.resize(k);
        return all;
    }

    double
    latencyMs() const
    {
        return static_cast<double>(totals.cycles) / kEffectiveCyclesPerMs;
    }

    /**
     * DSP compute utilization: achieved multiply-accumulate throughput
     * as a fraction of the machine's peak (the quantity behind Fig. 8's
     * "DSP utilization" -- how much of the DSP's compute the compiled
     * binary actually exploits).
     */
    double
    utilization() const
    {
        return totals.cycles == 0
                   ? 0.0
                   : static_cast<double>(totalMacs) /
                         (kPeakMacsPerCycle *
                          static_cast<double>(totals.cycles));
    }

    /** VLIW packing density: instructions per issued packet slot. */
    double
    packingDensity() const
    {
        return totals.packets == 0
                   ? 0.0
                   : static_cast<double>(totals.instructions) /
                         (4.0 * static_cast<double>(totals.packets));
    }

    /**
     * Achieved useful memory bandwidth in bytes per cycle: the tensor
     * traffic the graph *demands* (operator inputs + outputs, weights
     * included once) divided by execution time. Redundant re-reads from
     * small tiling and layout repacking do not count as achievement --
     * this is Fig. 8's "memory bandwidth": how fast the compiled binary
     * streams the model's data through the DSP.
     */
    double
    bandwidth() const
    {
        return totals.cycles == 0
                   ? 0.0
                   : static_cast<double>(demandBytes) /
                         static_cast<double>(totals.cycles);
    }
};

/** Compile a graph under the given options. */
CompiledModel compile(const graph::Graph &graph,
                      const CompileOptions &options = {});

} // namespace gcd2::runtime

#endif // GCD2_RUNTIME_COMPILER_H
