/**
 * @file
 * End-to-end compilation driver (the system workflow of Fig. 6).
 *
 * Pipeline: computational-graph optimizations (constant folding,
 * activation fusion, DCE) -> global SIMD layout/instruction selection ->
 * other optimizations (division-to-LUT) -> kernel generation with the
 * chosen unrolling -> VLIW packing -> cycle accounting on the DSP
 * simulator. The result aggregates per-operator and per-edge (layout
 * transformation) statistics into the model's latency, utilization, and
 * memory-bandwidth figures.
 *
 * The stages run as named, individually timed passes inside a
 * CompilationSession (see runtime/pipeline.h); every CompiledModel
 * carries the session's PipelineReport so callers -- tests, benches,
 * services -- can see where compile time went.
 */
#ifndef GCD2_RUNTIME_COMPILER_H
#define GCD2_RUNTIME_COMPILER_H

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/diag.h"
#include "dsp/packet.h"
#include "select/selector.h"

namespace gcd2::runtime {

/** Timing + telemetry of one named pipeline pass. */
struct PassReport
{
    std::string name;
    double seconds = 0.0;
    /** Pass-specific counters (nodes costed, kernels simulated, ...). */
    std::vector<std::pair<std::string, uint64_t>> counters;

    /** Counter value by name; 0 when the pass never recorded it. */
    uint64_t counter(std::string_view key) const;
};

/** Structured account of one compilation, pass by pass. */
struct PipelineReport
{
    std::vector<PassReport> passes;
    double totalSeconds = 0.0;
    /** Worker threads the session used (1 = fully serial). */
    int threadsUsed = 1;
    /**
     * Everything the pipeline chose to report instead of throwing:
     * fallback decisions, truncated searches, audit findings. A compile
     * with Error-severity entries was served but is suspect.
     */
    std::vector<common::Diag> diagnostics;
    /** Selection strategy that produced the served selection. */
    std::string servedSelection;
    /** Fallback-ladder rung of servedSelection (0 = requested). */
    int selectionRung = 0;

    /** Pass by name; nullptr when no such pass ran. */
    const PassReport *pass(std::string_view name) const;

    /** Diagnostics recorded at the given severity. */
    size_t diagnosticCount(common::DiagSeverity severity) const;

    /** Multi-line human-readable breakdown (bench/debug output). */
    std::string toString() const;
};

/**
 * Simulated-cycle to wall-clock conversion.
 *
 * The simulator models a 1024-bit, two-multiply-pipe HVX subset with
 * non-overlapping packets (the paper's footnote-5 timing abstraction).
 * Real Hexagon 698 adds packet pipelining, pair-register-wide multiply
 * variants, and a 1.4+ GHz clock, which scale absolute throughput by a
 * near-constant factor. The factor below is calibrated once so that the
 * GCD2-compiled ResNet-50 lands at the paper's 7.1 ms (Table IV); it is
 * applied uniformly to every configuration, so all relative results
 * (speedups, ablations, crossovers) are untouched by it.
 */
inline constexpr double kEffectiveCyclesPerMs = 6.46e6;

/** How the per-operator plans are chosen. */
enum class SelectionMode : uint8_t
{
    Gcd2,          ///< partitioned global optimization (the paper)
    Local,         ///< per-operator local optimum (Fig. 10 baseline)
    GlobalOptimal, ///< exhaustive (small graphs only)
    Uniform,       ///< one fixed scheme everywhere (TFLite/SNPE-style)
    // Appended last so the values above (baked into service compile
    // fingerprints) stay stable.
    Pbqp, ///< polynomial PBQP reduction (R0/R1/R2 + heuristic RN)
};

/** Ladder-rung name of a selection mode ("gcd2", "local", ...). */
const char *selectionModeName(SelectionMode mode);

/** How much post-compile auditing the pipeline runs. */
enum class AuditMode : uint8_t
{
    Off,   ///< no audit pass (trusted caller, fastest compile)
    Cheap, ///< structural + cost-honesty checks and the per-packet
           ///< hazard lint, always affordable
    Deep,  ///< Cheap plus exact re-solves and the whole-program dataflow
           ///< lint (use-before-def, dead stores, noalias audit); the
           ///< audit pass reports per-analyzer "lint-*-findings" counters
};

/** Full compile-time configuration. */
struct CompileOptions
{
    select::CostModelOptions cost{};
    SelectionMode selection = SelectionMode::Gcd2;
    int maxPartition = 13;
    /** Scheme used by SelectionMode::Uniform. */
    kernels::MatMulScheme uniformScheme = kernels::MatMulScheme::Vrmpy;
    /** Added per-operator dispatch overhead (framework runtimes). */
    uint64_t perOpOverheadCycles = 0;
    /**
     * Library-style kernel boundaries (Hexagon NN behavior): every
     * matmul-family kernel receives row-major tensors and repacks
     * internally on entry/exit, so no layout survives between operators.
     * This is the per-call cost that GCD2's global layout selection
     * eliminates.
     */
    bool libraryStyleBoundaries = false;
    /**
     * Compile-time worker threads for plan costing, partition solving,
     * and per-node kernel accounting. 0 = hardware concurrency, 1 =
     * fully serial. Results are bit-identical at every thread count;
     * only wall-clock compile time changes.
     */
    int numThreads = 0;
    /**
     * Run the standard graph-optimization pipeline (fold, fuse, DCE) on
     * a private copy of the input graph before selection. Idempotent, so
     * it is safe (and the default) even for graphs the model builders
     * already optimized; disable to compile a graph exactly as given.
     */
    bool runGraphPasses = true;
    /**
     * Layout-transform elimination (SmartMem-style rewrite group inside
     * the graph-optimize pass): cancel inverse Reshape/Transpose pairs,
     * sink transforms below layout-agnostic operators, and fuse
     * surviving single-consumer transforms into their producer kernels
     * as epilogue attributes -- the plan table then prices the reduced
     * transform-edge matrix. Runs on the session-private graph copy
     * only (requires runGraphPasses). Library-style baselines disable
     * it: their runtimes execute every transform as written.
     */
    bool eliminateLayoutTransforms = true;
    /**
     * Dead-code elimination over served schedules: delete instructions
     * whose results the backward-liveness analysis proves no path ever
     * reads, re-pack, and serve the compacted schedule -- but only if
     * it passes the structural audit and re-lints clean (otherwise the
     * original is served with a Warning). See analysis/rewrite.h.
     */
    bool deadCodeElimination = true;
    /**
     * DSP-friendly extended operator fusion (the paper's future-work
     * extension): fold single-consumer LUT nonlinearities and residual
     * Adds into the producing matmul-family kernel's epilogue.
     */
    bool enableExtendedFusion = false;
    /**
     * Optional cross-compile kernel-simulation cache. When several
     * models (or repeated compiles of one model) are compiled with the
     * same kernel-level options, sharing a cache skips re-simulating
     * identical canonical kernels. Null = private per-compile cache.
     */
    std::shared_ptr<select::CostCache> costCache;
    /**
     * Branch-and-bound evaluation budget per free-operator component (0
     * = unlimited): all of a component's chunks and polish windows draw
     * from one shared pool, so the per-component evaluation total never
     * exceeds the budget. A budgeted search never refuses an oversized
     * graph: it serves the best complete assignment found when the
     * budget expires (never worse than the local baseline it is seeded
     * with), records a Warning diagnostic, and marks the selector
     * result truncated.
     */
    uint64_t maxSelectorEvaluations = 0;
    /**
     * Post-compile auditing level (see AuditMode). The default (Cheap)
     * escalates to Deep when the GCD2_DEEP_AUDIT environment variable
     * is set non-zero (CI sanitizer jobs); Off and explicit Deep are
     * always respected.
     */
    AuditMode audit = AuditMode::Cheap;
    /**
     * Test-only fault injection: invoked on the *requested* selection
     * rung's result (never on fallback rungs). Throwing FatalError from
     * here exercises the fallback ladder; mutating the result exercises
     * the auditors. Null in production.
     */
    std::function<void(select::SelectorResult &)> testSelectionFault;
    /**
     * Test-only fault injection: invoked on the first schedule retained
     * by kernel generation (on a private copy -- the PackCache is never
     * corrupted). Mutating the program exercises the schedule auditor
     * against the *served* schedules. Null in production.
     */
    std::function<void(dsp::PackedProgram &)> testScheduleFault;
};

/** A compiled model with its aggregated execution statistics. */
/** Peak multiply-accumulates per cycle of the simulated DSP (two
 *  multiply pipes x 128 MACs). */
inline constexpr double kPeakMacsPerCycle = 256.0;

struct CompiledModel
{
    /** A schedule the compile serves for one live operator: the packed
     *  program of the canonical kernel the cost model simulated when
     *  costing the node's chosen plan (shared with the process-wide
     *  vliw::PackCache). Retained so the audit pass audits what was
     *  served, not a re-pack. */
    struct ServedSchedule
    {
        graph::NodeId node = 0;
        std::shared_ptr<const dsp::PackedProgram> program;
    };

    select::Selection selection;
    select::SelectorResult selector;
    select::NodeExecStats totals;       ///< kernels + transforms + overhead
    select::NodeExecStats transformOnly; ///< layout transformations alone
    int64_t liveOperators = 0;
    int64_t totalMacs = 0;
    /** Tensor bytes the graph's operators must consume + produce. */
    int64_t demandBytes = 0;
    /** Per-node kernel cycles (indexed by NodeId; 0 for dead nodes). */
    std::vector<uint64_t> nodeCycles;
    /** Per-pass timing and telemetry of the compilation itself. */
    PipelineReport report;
    /** Schedules served for the live operators (one per node with a
     *  kernel program; analytic operators contribute none). Distinct
     *  nodes often share one program via the PackCache. */
    std::vector<ServedSchedule> schedules;

    /** The k most expensive operators (id, cycles), descending. */
    std::vector<std::pair<graph::NodeId, uint64_t>>
    topOperators(size_t k) const
    {
        std::vector<std::pair<graph::NodeId, uint64_t>> all;
        for (size_t i = 0; i < nodeCycles.size(); ++i)
            if (nodeCycles[i] > 0)
                all.emplace_back(static_cast<graph::NodeId>(i),
                                 nodeCycles[i]);
        std::sort(all.begin(), all.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        if (all.size() > k)
            all.resize(k);
        return all;
    }

    double
    latencyMs() const
    {
        return static_cast<double>(totals.cycles) / kEffectiveCyclesPerMs;
    }

    /**
     * DSP compute utilization: achieved multiply-accumulate throughput
     * as a fraction of the machine's peak (the quantity behind Fig. 8's
     * "DSP utilization" -- how much of the DSP's compute the compiled
     * binary actually exploits).
     */
    double
    utilization() const
    {
        return totals.cycles == 0
                   ? 0.0
                   : static_cast<double>(totalMacs) /
                         (kPeakMacsPerCycle *
                          static_cast<double>(totals.cycles));
    }

    /** VLIW packing density: instructions per issued packet slot. */
    double
    packingDensity() const
    {
        return totals.packets == 0
                   ? 0.0
                   : static_cast<double>(totals.instructions) /
                         (4.0 * static_cast<double>(totals.packets));
    }

    /**
     * Achieved useful memory bandwidth in bytes per cycle: the tensor
     * traffic the graph *demands* (operator inputs + outputs, weights
     * included once) divided by execution time. Redundant re-reads from
     * small tiling and layout repacking do not count as achievement --
     * this is Fig. 8's "memory bandwidth": how fast the compiled binary
     * streams the model's data through the DSP.
     */
    double
    bandwidth() const
    {
        return totals.cycles == 0
                   ? 0.0
                   : static_cast<double>(demandBytes) /
                         static_cast<double>(totals.cycles);
    }
};

/** Compile a graph under the given options. */
CompiledModel compile(const graph::Graph &graph,
                      const CompileOptions &options = {});

} // namespace gcd2::runtime

#endif // GCD2_RUNTIME_COMPILER_H
