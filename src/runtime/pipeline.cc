#include "runtime/pipeline.h"

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "analysis/lint.h"
#include "analysis/rewrite.h"
#include "common/logging.h"
#include "common/timer.h"
#include "dsp/decoded.h"
#include "graph/passes.h"
#include "kernels/elementwise.h"
#include "kernels/matmul.h"
#include "kernels/unroll.h"
#include "select/audit.h"
#include "vliw/audit.h"
#include "vliw/pack_cache.h"
#include "vliw/packer.h"

namespace gcd2::runtime {

using common::Diag;
using common::DiagSeverity;
using select::CostModel;
using select::ExecutionPlan;
using select::NodeExecStats;
using select::PlanTable;

namespace {

/**
 * Report how much work a pass pushed through the process-wide cache
 * tier: hit/miss/eviction (and pack-time) deltas of the PackCache and
 * DecodeCache between the pass's start and end. Cache hits are requests
 * answered by an earlier pack/decode (this compile or a previous one);
 * misses are fresh runs, whose packing wall-clock is charged as
 * pack-us; evictions count entries the LRU capacity bound displaced
 * while the pass ran.
 */
class PackCacheDelta
{
  public:
    PackCacheDelta()
        : start_(vliw::PackCache::global().stats()),
          decodeStart_(dsp::DecodeCache::global().stats())
    {
    }

    void
    report(PassReport &pass) const
    {
        const vliw::PackCache::Stats now =
            vliw::PackCache::global().stats();
        pass.counters.emplace_back("pack-hits", now.hits - start_.hits);
        pass.counters.emplace_back("pack-misses",
                                   now.misses - start_.misses);
        pass.counters.emplace_back("pack-evictions",
                                   now.evictions - start_.evictions);
        pass.counters.emplace_back(
            "pack-us",
            static_cast<uint64_t>(
                (now.packSeconds - start_.packSeconds) * 1e6));
        const dsp::DecodeCache::Stats dec =
            dsp::DecodeCache::global().stats();
        pass.counters.emplace_back("decode-hits",
                                   dec.hits - decodeStart_.hits);
        pass.counters.emplace_back("decode-misses",
                                   dec.misses - decodeStart_.misses);
        pass.counters.emplace_back("decode-evictions",
                                   dec.evictions - decodeStart_.evictions);
    }

  private:
    vliw::PackCache::Stats start_;
    dsp::DecodeCache::Stats decodeStart_;
};

} // namespace

const char *
selectionModeName(SelectionMode mode)
{
    switch (mode) {
      case SelectionMode::Gcd2:
        return "gcd2";
      case SelectionMode::Local:
        return "local";
      case SelectionMode::GlobalOptimal:
        return "global-optimal";
      case SelectionMode::Uniform:
        return "uniform";
      case SelectionMode::Pbqp:
        return "pbqp";
    }
    return "?";
}

uint64_t
PassReport::counter(std::string_view key) const
{
    for (const auto &[name, value] : counters)
        if (name == key)
            return value;
    return 0;
}

const PassReport *
PipelineReport::pass(std::string_view name) const
{
    for (const PassReport &pass : passes)
        if (pass.name == name)
            return &pass;
    return nullptr;
}

size_t
PipelineReport::diagnosticCount(DiagSeverity severity) const
{
    size_t n = 0;
    for (const Diag &diag : diagnostics)
        if (diag.severity == severity)
            ++n;
    return n;
}

std::string
PipelineReport::toString() const
{
    std::ostringstream out;
    out << "compilation pipeline (" << threadsUsed
        << (threadsUsed == 1 ? " thread, " : " threads, ")
        << static_cast<int64_t>(totalSeconds * 1e3) << " ms total)\n";
    if (!servedSelection.empty())
        out << "  selection served by '" << servedSelection << "' (rung "
            << selectionRung << ")\n";
    for (const PassReport &pass : passes) {
        out << "  " << pass.name << ": "
            << static_cast<int64_t>(pass.seconds * 1e6) << " us";
        for (const auto &[name, value] : pass.counters)
            out << ", " << name << "=" << value;
        out << "\n";
    }
    if (!diagnostics.empty()) {
        out << "  diagnostics (" << diagnostics.size() << "):\n";
        for (const Diag &diag : diagnostics)
            out << "    " << diag.toString() << "\n";
    }
    return out.str();
}

CompilationSession::CompilationSession(const graph::Graph &graph,
                                       const CompileOptions &options)
    : graph_(graph), options_(options), pool_(options.numThreads)
{
    report_.threadsUsed = pool_.size();
    // CI escalation hook: GCD2_DEEP_AUDIT=1 upgrades every default
    // (Cheap) audit to Deep without touching call sites -- the
    // sanitizer jobs use it to run exact re-solves and extra schedule
    // audits across the whole test suite. An explicit Off/Deep choice
    // is respected.
    if (options_.audit == AuditMode::Cheap) {
        const char *deep = std::getenv("GCD2_DEEP_AUDIT");
        if (deep != nullptr && deep[0] != '\0' && deep[0] != '0')
            options_.audit = AuditMode::Deep;
    }
}

void
CompilationSession::runPass(const char *name,
                            const std::function<void(PassReport &)> &body)
{
    PassReport pass;
    pass.name = name;
    const Timer timer;
    body(pass);
    pass.seconds = timer.seconds();
    report_.passes.push_back(std::move(pass));
}

void
CompilationSession::passGraphOptimize(PassReport &pass)
{
    if (!options_.runGraphPasses) {
        pass.counters.emplace_back("skipped", 1);
        return;
    }
    graph::OptimizeOptions optimizeOptions;
    optimizeOptions.eliminateLayoutTransforms =
        options_.eliminateLayoutTransforms;
    optimizeOptions.extendedFusion = options_.enableExtendedFusion;
    const graph::PassStats stats =
        graph::optimize(graph_, optimizeOptions);
    transformCyclesSaved_ = stats.transformCyclesSaved;
    pass.counters.emplace_back(
        "folded", static_cast<uint64_t>(stats.foldedNodes));
    pass.counters.emplace_back(
        "fused", static_cast<uint64_t>(stats.fusedActivations));
    pass.counters.emplace_back(
        "removed", static_cast<uint64_t>(stats.removedNodes));
    pass.counters.emplace_back(
        "transform-eliminated",
        static_cast<uint64_t>(stats.cancelledTransforms +
                              stats.fusedTransforms));
    pass.counters.emplace_back(
        "transform-cancelled",
        static_cast<uint64_t>(stats.cancelledTransforms));
    pass.counters.emplace_back(
        "transform-sunk", static_cast<uint64_t>(stats.sunkTransforms));
    pass.counters.emplace_back(
        "transform-fused", static_cast<uint64_t>(stats.fusedTransforms));
    pass.counters.emplace_back(
        "transform-cycles-saved",
        static_cast<uint64_t>(stats.transformCyclesSaved));
    if (options_.enableExtendedFusion) {
        pass.counters.emplace_back(
            "lut-fused", static_cast<uint64_t>(stats.fusedLuts));
        pass.counters.emplace_back(
            "residual-fused",
            static_cast<uint64_t>(stats.fusedResiduals));
    }
    pass.counters.emplace_back(
        "live-operators", static_cast<uint64_t>(graph_.operatorCount()));
}

void
CompilationSession::passPlanTable(PassReport &pass)
{
    model_.emplace(options_.cost, options_.costCache);
    const uint64_t hits0 = model_->cache().hits();
    const uint64_t misses0 = model_->cache().misses();
    const uint64_t evictions0 = model_->cache().evictions();
    const PackCacheDelta packDelta;
    table_.emplace(graph_, *model_, &pool_);

    uint64_t candidatePlans = 0;
    for (const graph::Node &node : graph_.nodes())
        if (!node.dead)
            candidatePlans += table_->plans(node.id).size();
    pass.counters.emplace_back("candidate-plans", candidatePlans);
    pass.counters.emplace_back(
        "edges", static_cast<uint64_t>(table_->edges().size()));
    pass.counters.emplace_back(
        "free-operators",
        static_cast<uint64_t>(table_->freeNodes().size()));
    // Misses = canonical kernels actually generated, packed, and
    // simulated during this pass; hits were answered from the memo.
    pass.counters.emplace_back("kernel-sims",
                               model_->cache().misses() - misses0);
    pass.counters.emplace_back("cache-hits",
                               model_->cache().hits() - hits0);
    pass.counters.emplace_back("cache-evictions",
                               model_->cache().evictions() - evictions0);

    // Tier telemetry (DESIGN.md section 16): how much candidate costing
    // the tiered coster answered without a full pack + simulation, plus
    // the shape-class sharing the table layered on top.
    const select::PlanTable::Stats &shared = table_->stats();
    pass.counters.emplace_back("shape-classes", shared.shapeClasses);
    pass.counters.emplace_back("shared-nodes", shared.sharedNodes);
    pass.counters.emplace_back("plans-shared", shared.sharedPlans);
    if (const select::TieredCoster *tiered = model_->tieredCoster()) {
        const select::TieredCounters tc = tiered->counters();
        pass.counters.emplace_back("plans-simulated", tc.plansSimulated);
        pass.counters.emplace_back("plans-derived", tc.plansDerived);
        pass.counters.emplace_back("plans-pruned", tc.plansPruned);
        pass.counters.emplace_back("anchor-sims", tc.anchorSims);
        pass.counters.emplace_back("transplanted-packs",
                                   tc.transplantedPacks);
        pass.counters.emplace_back("tier-classes-certified",
                                   tc.certifiedClasses);
        pass.counters.emplace_back("tier-classes-uncertified",
                                   tc.uncertifiedClasses);
        pass.counters.emplace_back("tier-structural-fallbacks",
                                   tc.structuralFallbacks);
        pass.counters.emplace_back(
            "tier-certify-us",
            static_cast<uint64_t>(tiered->certifySeconds() * 1e6));
        pass.counters.emplace_back(
            "tier-analytic-us",
            static_cast<uint64_t>(tiered->analyticSeconds() * 1e6));
    } else {
        // Exhaustive path: every cache miss was a real simulation.
        pass.counters.emplace_back("plans-simulated",
                                   model_->cache().misses() - misses0);
        pass.counters.emplace_back("plans-derived", uint64_t{0});
        pass.counters.emplace_back("plans-pruned", uint64_t{0});
    }
    packDelta.report(pass);
}

void
CompilationSession::passSelection(PassReport &pass, CompiledModel &result)
{
    const uint64_t budget = options_.maxSelectorEvaluations;

    const auto solveRequested = [&]() -> select::SelectorResult {
        switch (options_.selection) {
          case SelectionMode::Gcd2:
            return select::selectGcd2Partitioned(
                *table_, options_.maxPartition, &pool_, budget);
          case SelectionMode::Local:
            return select::selectLocal(*table_);
          case SelectionMode::GlobalOptimal:
            return select::selectGlobalOptimal(*table_, 22, budget);
          case SelectionMode::Pbqp:
            return select::selectPbqp(*table_, &pbqpStats_);
          case SelectionMode::Uniform: {
            // One scheme for every matmul-family operator, row-major for
            // the rest: the uniform per-op-type implementations of
            // TFLite/SNPE.
            select::SelectorResult uniform = select::selectLocal(*table_);
            for (const graph::Node &node : graph_.nodes()) {
                if (node.dead)
                    continue;
                if (graph::isMatMulFamily(node.op)) {
                    uniform.selection
                        .planIndex[static_cast<size_t>(node.id)] =
                        static_cast<int>(options_.uniformScheme);
                } else if (select::isLayoutAgnostic(node.op)) {
                    // Row-major plan (index 0).
                    uniform.selection
                        .planIndex[static_cast<size_t>(node.id)] = 0;
                }
            }
            uniform.selection.totalCost =
                select::aggCost(*table_, uniform.selection);
            return uniform;
          }
        }
        GCD2_PANIC("unknown selection mode");
    };

    // Graceful-degradation ladder: the requested strategy, then ever
    // cheaper solvers. A rung that throws FatalError (user-class
    // failure: free-node cap, bad partition bound, injected fault) is
    // recorded and the next rung serves instead; selectLocal at the
    // bottom cannot fail, so a compile only aborts if *every* rung is
    // broken. Internal-bug panics (PanicError) still propagate.
    struct Rung
    {
        const char *name;
        std::function<select::SelectorResult()> solve;
    };
    std::vector<Rung> ladder;
    ladder.push_back({selectionModeName(options_.selection),
                      solveRequested});
    const auto addFallback = [&](const char *name,
                                 std::function<select::SelectorResult()>
                                     solve) {
        for (const Rung &rung : ladder)
            if (std::string_view(rung.name) == name)
                return;
        ladder.push_back({name, std::move(solve)});
    };
    addFallback("gcd2", [&] {
        return select::selectGcd2Partitioned(
            *table_, options_.maxPartition, &pool_, budget);
    });
    // PBQP sits between the budgeted partitioned solver and the tree
    // DP: polynomial like chain-dp, but with the full pairwise cost
    // structure (R0/R1/R2 exact, RN heuristic on dense remainders).
    addFallback("pbqp",
                [&] { return select::selectPbqp(*table_, &pbqpStats_); });
    addFallback("chain-dp", [&] { return select::selectChainDp(*table_); });
    addFallback("local", [&] { return select::selectLocal(*table_); });

    for (size_t i = 0; i < ladder.size(); ++i) {
        try {
            select::SelectorResult r = ladder[i].solve();
            if (i == 0 && options_.testSelectionFault)
                options_.testSelectionFault(r);
            result.selector = std::move(r);
            report_.servedSelection = ladder[i].name;
            report_.selectionRung = static_cast<int>(i);
            break;
        } catch (const FatalError &err) {
            diag_.add(DiagSeverity::Warning, "selection", -1,
                      std::string("rung '") + ladder[i].name +
                          "' failed (" + err.what() + "); falling back");
            if (i + 1 == ladder.size())
                throw; // ladder exhausted: nothing left to serve
        }
    }
    if (report_.selectionRung > 0)
        diag_.add(DiagSeverity::Info, "selection", -1,
                  "served by fallback rung '" + report_.servedSelection +
                      "'");
    if (result.selector.truncated)
        diag_.add(DiagSeverity::Warning, "selection", -1,
                  "evaluation budget (" + std::to_string(budget) +
                      " per subproblem) exhausted; serving best-so-far");

    result.selection = result.selector.selection;
    if (report_.servedSelection == "pbqp") {
        pass.counters.emplace_back("pbqp-r0", pbqpStats_.r0);
        pass.counters.emplace_back("pbqp-r1", pbqpStats_.r1);
        pass.counters.emplace_back("pbqp-r2", pbqpStats_.r2);
        pass.counters.emplace_back("pbqp-rn", pbqpStats_.rn);
    }
    pass.counters.emplace_back("evaluations",
                               result.selector.evaluations);
    pass.counters.emplace_back("total-cost",
                               result.selection.totalCost);
    pass.counters.emplace_back(
        "fallback-rung", static_cast<uint64_t>(report_.selectionRung));
    pass.counters.emplace_back("truncated",
                               result.selector.truncated ? 1 : 0);
}

void
CompilationSession::passKernelGeneration(PassReport &pass,
                                         CompiledModel &result)
{
    // Statistics of the *chosen* kernel for every live node. Each node
    // is independent, so the pool splits them; aggregation stays in the
    // cycle-accounting pass (in node order) to keep totals
    // thread-count-invariant by construction.
    const uint64_t misses0 = model_->cache().misses();
    const PackCacheDelta packDelta;
    nodeStats_.assign(graph_.size(), NodeExecStats{});
    const std::vector<graph::Node> &nodes = graph_.nodes();
    pool_.parallelFor(
        static_cast<int64_t>(nodes.size()), [&](int64_t i) {
            const graph::Node &node = nodes[static_cast<size_t>(i)];
            if (node.dead)
                return;
            const int planIdx =
                result.selection.planIndex[static_cast<size_t>(node.id)];
            const ExecutionPlan &plan =
                table_->plans(node.id)[static_cast<size_t>(planIdx)];
            nodeStats_[static_cast<size_t>(i)] =
                model_->planStats(graph_, node.id, plan);
        });

    // Retain the schedule served for every live operator: the packed
    // program of the same canonical kernel planStats just simulated,
    // answered by the PackCache (all hits at this point). Serial and in
    // node order so the retained list is thread-count-invariant.
    //
    // Dead-code elimination rewrites each distinct source program once
    // (memoized by identity -- nodes sharing a cached program share the
    // rewrite) and must run *before* any fault injection: the injected
    // corruption targets the served artifact and the auditors must
    // still catch it, not have DCE repair or mask it.
    std::map<const dsp::PackedProgram *,
             std::shared_ptr<const dsp::PackedProgram>>
        dceMemo;
    uint64_t dceRemovedInsts = 0;
    uint64_t dceRemovedPackets = 0;
    uint64_t dceRewritten = 0;
    for (const graph::Node &node : nodes) {
        if (node.dead)
            continue;
        const int planIdx =
            result.selection.planIndex[static_cast<size_t>(node.id)];
        const ExecutionPlan &plan =
            table_->plans(node.id)[static_cast<size_t>(planIdx)];
        std::shared_ptr<const dsp::PackedProgram> program =
            model_->canonicalSchedule(graph_, node.id, plan);
        if (program == nullptr)
            continue; // analytic operator: no kernel program served
        if (options_.deadCodeElimination) {
            const auto memo = dceMemo.find(program.get());
            if (memo != dceMemo.end()) {
                program = memo->second;
            } else {
                analysis::DceResult dce = analysis::rewriteDeadCode(
                    program, options_.cost.packOptions);
                for (Diag &diag : dce.diags)
                    diag_.add(std::move(diag));
                if (dce.stats.rewritten) {
                    dceRemovedInsts += dce.stats.removedInstructions;
                    dceRemovedPackets += dce.stats.removedPackets;
                    ++dceRewritten;
                }
                dceMemo.emplace(program.get(), dce.program);
                program = std::move(dce.program);
            }
        }
        if (options_.testScheduleFault && result.schedules.empty()) {
            // Corrupt a private copy, never the cached program.
            auto corrupt = std::make_shared<dsp::PackedProgram>(*program);
            options_.testScheduleFault(*corrupt);
            program = std::move(corrupt);
        }
        result.schedules.push_back({node.id, std::move(program)});
    }

    uint64_t kernels = 0;
    for (const graph::Node &node : nodes)
        if (!node.dead)
            ++kernels;
    pass.counters.emplace_back("kernels", kernels);
    pass.counters.emplace_back("kernel-sims",
                               model_->cache().misses() - misses0);
    pass.counters.emplace_back(
        "schedules-retained",
        static_cast<uint64_t>(result.schedules.size()));
    pass.counters.emplace_back("dce-removed-insts", dceRemovedInsts);
    pass.counters.emplace_back("dce-removed-packets", dceRemovedPackets);
    pass.counters.emplace_back("dce-rewritten-programs", dceRewritten);
    packDelta.report(pass);
}

void
CompilationSession::passCycleAccounting(PassReport &pass,
                                        CompiledModel &result)
{
    result.totalMacs = graph_.totalMacs();
    for (const graph::Node &node : graph_.nodes()) {
        if (node.dead || node.op == graph::OpType::Output)
            continue;
        // Each tensor counts once as an output and once per consumer.
        result.demandBytes += node.shape.elements();
        for (graph::NodeId in : node.inputs)
            if (!graph_.node(in).dead)
                result.demandBytes += graph_.node(in).shape.elements();
    }

    // Aggregate per-node execution statistics and per-edge transforms.
    result.nodeCycles.assign(graph_.size(), 0);
    for (const graph::Node &node : graph_.nodes()) {
        if (node.dead)
            continue;
        const NodeExecStats &stats =
            nodeStats_[static_cast<size_t>(node.id)];
        result.nodeCycles[static_cast<size_t>(node.id)] = stats.cycles;
        result.totals += stats;
        if (node.op != graph::OpType::Input &&
            node.op != graph::OpType::Constant &&
            node.op != graph::OpType::Output) {
            ++result.liveOperators;
            result.totals.cycles += options_.perOpOverheadCycles;
        }
        // Library kernels (Hexagon NN) pack the activation into the
        // kernel layout on entry and unpack the result on exit.
        if (options_.libraryStyleBoundaries &&
            graph::isMatMulFamily(node.op)) {
            const int planIdx =
                result.selection.planIndex[static_cast<size_t>(node.id)];
            const ExecutionPlan &plan =
                table_->plans(node.id)[static_cast<size_t>(planIdx)];
            if (plan.isMatMulPlan()) {
                const graph::Node &producer = graph_.node(node.inputs[0]);
                const NodeExecStats inPack = model_->transformStats(
                    producer.shape, tensor::Layout::RowMajor,
                    plan.inLayout);
                const NodeExecStats outUnpack = model_->transformStats(
                    node.shape, plan.outLayout, tensor::Layout::RowMajor);
                result.totals += inPack;
                result.totals += outUnpack;
                result.transformOnly += inPack;
                result.transformOnly += outUnpack;
            }
        }
    }
    // With library-style boundaries every inter-operator tensor is
    // row-major, so no cross-edge transformation remains to charge.
    if (!options_.libraryStyleBoundaries) {
        for (const auto &[src, dst] : table_->edges()) {
            const graph::Node &producer = graph_.node(src);
            if (producer.op == graph::OpType::Constant)
                continue;
            const ExecutionPlan &from = table_->plans(src)[static_cast<
                size_t>(
                result.selection.planIndex[static_cast<size_t>(src)])];
            const ExecutionPlan &to = table_->plans(dst)[static_cast<
                size_t>(
                result.selection.planIndex[static_cast<size_t>(dst)])];
            const NodeExecStats tc = model_->transformStats(
                producer.shape, from.outLayout, to.inLayout);
            result.totals += tc;
            result.transformOnly += tc;
        }
    }
    pass.counters.emplace_back("total-cycles", result.totals.cycles);
    pass.counters.emplace_back("transform-cycles",
                               result.transformOnly.cycles);
    // What the transform edges would have cost had graph-optimize not
    // eliminated standing transforms: the paid cycles plus the analytic
    // estimate of the cycles the elimination pass removed.
    pass.counters.emplace_back(
        "transform-cycles-pre",
        result.transformOnly.cycles +
            static_cast<uint64_t>(transformCyclesSaved_));
    pass.counters.emplace_back(
        "live-operators", static_cast<uint64_t>(result.liveOperators));
}

void
CompilationSession::passAudit(PassReport &pass, CompiledModel &result)
{
    if (options_.audit == AuditMode::Off) {
        pass.counters.emplace_back("skipped", 1);
        return;
    }
    const bool deep = options_.audit == AuditMode::Deep;
    const std::string &served = report_.servedSelection;

    // Selection audit. The local-baseline floor is only sound for
    // solvers that dominate selectLocal by construction; the deep exact
    // re-solve additionally requires the served rung to claim global
    // optimality on this graph (gcd2 is exact when no component was
    // chunked, i.e. all free nodes fit one partition) and an
    // un-truncated search.
    select::SelectionAuditOptions auditOpts;
    auditOpts.checkNotWorseThanLocal =
        served == "gcd2" || served == "global-optimal" ||
        served == "local" || served == "pbqp";
    auditOpts.deepMaxFreeNodes = 12;
    auditOpts.deep =
        deep && !result.selector.truncated &&
        (served == "global-optimal" ||
         (served == "gcd2" &&
          table_->freeNodes().size() <=
              static_cast<size_t>(options_.maxPartition)) ||
         (served == "pbqp" && pbqpStats_.provablyOptimal()));
    std::vector<Diag> selectionFindings =
        select::auditSelection(*table_, result.selection, auditOpts);
    const size_t selectionFailures = selectionFindings.size();
    for (Diag &diag : selectionFindings)
        diag_.add(std::move(diag));

    // Tiered-costing audit. Always-on cheap tier: the coster re-derives
    // its certified affine fits from the stored anchor simulations and
    // re-checks the analytic bounds bracket them. Deep tier: re-cost the
    // whole plan table through a scratch exhaustive model and prove the
    // served selection's Eq.-1 total is bit-identical to unpruned
    // costing (select::auditTieredCosts).
    size_t tieredFailures = 0;
    uint64_t tieredClassesChecked = 0;
    bool tieredDeep = false;
    if (model_->tieredCoster() != nullptr) {
        size_t classesChecked = 0;
        for (const std::string &violation :
             model_->tieredCoster()->audit(&classesChecked)) {
            diag_.add(DiagSeverity::Error, "tiered-audit", -1, violation);
            ++tieredFailures;
        }
        tieredClassesChecked = classesChecked;
        if (deep) {
            tieredDeep = true;
            std::vector<Diag> tieredFindings = select::auditTieredCosts(
                *table_, result.selection, options_.cost);
            tieredFailures += tieredFindings.size();
            for (Diag &diag : tieredFindings)
                diag_.add(std::move(diag));
        }
    }

    // Schedule audit: check packet legality of the schedules the compile
    // actually serves -- the packed programs kernel generation retained
    // from the cost model's canonical kernels (see CompiledModel::
    // schedules). No re-packing happens here: auditing a fresh pack of
    // the same source program would vacuously re-verify the packer and
    // miss any corruption of the served artifact. Distinct nodes often
    // share one cached program, so audit each distinct program once.
    // The dataflow lint rides the same loop. Cheap runs only the
    // per-packet hazard lint (linear in packet members); Deep adds the
    // whole-program dataflow analyzers (use-before-def, dead stores) and
    // the value-flow family (cross-block noalias claim audit, redundant
    // loads, induction-range bounds). Lint Warnings never block a
    // compile -- only Errors count as failures alongside the structural
    // audits.
    analysis::LintOptions lintOpts;
    lintOpts.useBeforeDef = deep;
    lintOpts.deadStore = deep;
    lintOpts.hazards = true;
    lintOpts.noalias = deep;
    lintOpts.redundantLoad = deep;
    lintOpts.bounds = deep;
    analysis::LintCounts lint;
    size_t lintErrors = 0;

    const PackCacheDelta packDelta;
    uint64_t schedulesAudited = 0;
    size_t scheduleFailures = 0;
    std::set<const dsp::PackedProgram *> auditedPrograms;
    for (const CompiledModel::ServedSchedule &sched : result.schedules) {
        if (!auditedPrograms.insert(sched.program.get()).second)
            continue;
        std::vector<Diag> findings = vliw::auditSchedule(*sched.program);
        scheduleFailures += findings.size();
        for (Diag &diag : findings)
            diag_.add(std::move(diag));

        const analysis::LintResult linted =
            analysis::lintPackedProgram(*sched.program, lintOpts);
        lint.useBeforeDef += linted.counts.useBeforeDef;
        lint.deadStore += linted.counts.deadStore;
        lint.hazards += linted.counts.hazards;
        lint.noalias += linted.counts.noalias;
        lint.redundantLoad += linted.counts.redundantLoad;
        lint.bounds += linted.counts.bounds;
        lintErrors += linted.counts.errors;
        for (const Diag &diag : linted.diags)
            diag_.add(diag);
        ++schedulesAudited;
    }

    if (selectionFailures + scheduleFailures + lintErrors +
            tieredFailures ==
        0)
        diag_.add(DiagSeverity::Info, "audit", -1,
                  std::string(deep ? "deep" : "cheap") +
                      " audit passed (" +
                      std::to_string(schedulesAudited) +
                      " schedules checked)");
    pass.counters.emplace_back("selection-findings", selectionFailures);
    pass.counters.emplace_back("schedule-findings", scheduleFailures);
    pass.counters.emplace_back("tiered-findings", tieredFailures);
    pass.counters.emplace_back("tier-audit-classes", tieredClassesChecked);
    pass.counters.emplace_back("tier-deep-audited", tieredDeep ? 1 : 0);
    pass.counters.emplace_back("schedules-audited", schedulesAudited);
    pass.counters.emplace_back("lint-use-def-findings", lint.useBeforeDef);
    pass.counters.emplace_back("lint-dead-store-findings", lint.deadStore);
    pass.counters.emplace_back("lint-hazard-findings", lint.hazards);
    pass.counters.emplace_back("lint-noalias-findings", lint.noalias);
    pass.counters.emplace_back("lint-redundant-load-findings",
                               lint.redundantLoad);
    pass.counters.emplace_back("lint-bounds-findings", lint.bounds);
    pass.counters.emplace_back("lint-errors", lintErrors);
    pass.counters.emplace_back("deep", deep ? 1 : 0);
    packDelta.report(pass);
}

CompiledModel
CompilationSession::run()
{
    const Timer total;
    CompiledModel result;
    runPass("graph-optimize",
            [&](PassReport &pass) { passGraphOptimize(pass); });
    runPass("plan-table", [&](PassReport &pass) { passPlanTable(pass); });
    runPass("selection",
            [&](PassReport &pass) { passSelection(pass, result); });
    runPass("kernel-generation", [&](PassReport &pass) {
        passKernelGeneration(pass, result);
    });
    runPass("cycle-accounting", [&](PassReport &pass) {
        passCycleAccounting(pass, result);
    });
    runPass("audit",
            [&](PassReport &pass) { passAudit(pass, result); });
    report_.totalSeconds = total.seconds();
    report_.diagnostics = diag_.snapshot();
    result.report = report_;
    return result;
}

} // namespace gcd2::runtime
