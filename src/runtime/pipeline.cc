#include "runtime/pipeline.h"

#include <sstream>

#include "common/logging.h"
#include "common/timer.h"
#include "graph/passes.h"

namespace gcd2::runtime {

using select::CostModel;
using select::ExecutionPlan;
using select::NodeExecStats;
using select::PlanTable;

uint64_t
PassReport::counter(std::string_view key) const
{
    for (const auto &[name, value] : counters)
        if (name == key)
            return value;
    return 0;
}

const PassReport *
PipelineReport::pass(std::string_view name) const
{
    for (const PassReport &pass : passes)
        if (pass.name == name)
            return &pass;
    return nullptr;
}

std::string
PipelineReport::toString() const
{
    std::ostringstream out;
    out << "compilation pipeline (" << threadsUsed
        << (threadsUsed == 1 ? " thread, " : " threads, ")
        << static_cast<int64_t>(totalSeconds * 1e3) << " ms total)\n";
    for (const PassReport &pass : passes) {
        out << "  " << pass.name << ": "
            << static_cast<int64_t>(pass.seconds * 1e6) << " us";
        for (const auto &[name, value] : pass.counters)
            out << ", " << name << "=" << value;
        out << "\n";
    }
    return out.str();
}

CompilationSession::CompilationSession(const graph::Graph &graph,
                                       const CompileOptions &options)
    : graph_(graph), options_(options), pool_(options.numThreads)
{
    report_.threadsUsed = pool_.size();
}

void
CompilationSession::runPass(const char *name,
                            const std::function<void(PassReport &)> &body)
{
    PassReport pass;
    pass.name = name;
    const Timer timer;
    body(pass);
    pass.seconds = timer.seconds();
    report_.passes.push_back(std::move(pass));
}

void
CompilationSession::passGraphOptimize(PassReport &pass)
{
    if (!options_.runGraphPasses) {
        pass.counters.emplace_back("skipped", 1);
        return;
    }
    const graph::PassStats stats = graph::optimize(graph_);
    pass.counters.emplace_back(
        "folded", static_cast<uint64_t>(stats.foldedNodes));
    pass.counters.emplace_back(
        "fused", static_cast<uint64_t>(stats.fusedActivations));
    pass.counters.emplace_back(
        "removed", static_cast<uint64_t>(stats.removedNodes));
    pass.counters.emplace_back(
        "live-operators", static_cast<uint64_t>(graph_.operatorCount()));
}

void
CompilationSession::passPlanTable(PassReport &pass)
{
    model_.emplace(options_.cost, options_.costCache);
    const uint64_t hits0 = model_->cache().hits();
    const uint64_t misses0 = model_->cache().misses();
    table_.emplace(graph_, *model_, &pool_);

    uint64_t candidatePlans = 0;
    for (const graph::Node &node : graph_.nodes())
        if (!node.dead)
            candidatePlans += table_->plans(node.id).size();
    pass.counters.emplace_back("candidate-plans", candidatePlans);
    pass.counters.emplace_back(
        "edges", static_cast<uint64_t>(table_->edges().size()));
    pass.counters.emplace_back(
        "free-operators",
        static_cast<uint64_t>(table_->freeNodes().size()));
    // Misses = canonical kernels actually generated, packed, and
    // simulated during this pass; hits were answered from the memo.
    pass.counters.emplace_back("kernel-sims",
                               model_->cache().misses() - misses0);
    pass.counters.emplace_back("cache-hits",
                               model_->cache().hits() - hits0);
}

void
CompilationSession::passSelection(PassReport &pass, CompiledModel &result)
{
    switch (options_.selection) {
      case SelectionMode::Gcd2:
        result.selector = select::selectGcd2Partitioned(
            *table_, options_.maxPartition, &pool_);
        break;
      case SelectionMode::Local:
        result.selector = select::selectLocal(*table_);
        break;
      case SelectionMode::GlobalOptimal:
        result.selector = select::selectGlobalOptimal(*table_);
        break;
      case SelectionMode::Uniform: {
        // One scheme for every matmul-family operator, row-major for the
        // rest: the uniform per-op-type implementations of TFLite/SNPE.
        result.selector = select::selectLocal(*table_);
        for (const graph::Node &node : graph_.nodes()) {
            if (node.dead)
                continue;
            if (graph::isMatMulFamily(node.op)) {
                result.selector.selection
                    .planIndex[static_cast<size_t>(node.id)] =
                    static_cast<int>(options_.uniformScheme);
            } else if (select::isLayoutAgnostic(node.op)) {
                // Row-major plan (index 0).
                result.selector.selection
                    .planIndex[static_cast<size_t>(node.id)] = 0;
            }
        }
        result.selector.selection.totalCost =
            select::aggCost(*table_, result.selector.selection);
        break;
      }
    }
    result.selection = result.selector.selection;
    pass.counters.emplace_back("evaluations",
                               result.selector.evaluations);
    pass.counters.emplace_back("total-cost",
                               result.selection.totalCost);
}

void
CompilationSession::passKernelGeneration(PassReport &pass,
                                         CompiledModel &result)
{
    // Statistics of the *chosen* kernel for every live node. Each node
    // is independent, so the pool splits them; aggregation stays in the
    // cycle-accounting pass (in node order) to keep totals
    // thread-count-invariant by construction.
    const uint64_t misses0 = model_->cache().misses();
    nodeStats_.assign(graph_.size(), NodeExecStats{});
    const std::vector<graph::Node> &nodes = graph_.nodes();
    pool_.parallelFor(
        static_cast<int64_t>(nodes.size()), [&](int64_t i) {
            const graph::Node &node = nodes[static_cast<size_t>(i)];
            if (node.dead)
                return;
            const int planIdx =
                result.selection.planIndex[static_cast<size_t>(node.id)];
            const ExecutionPlan &plan =
                table_->plans(node.id)[static_cast<size_t>(planIdx)];
            nodeStats_[static_cast<size_t>(i)] =
                model_->planStats(graph_, node.id, plan);
        });

    uint64_t kernels = 0;
    for (const graph::Node &node : nodes)
        if (!node.dead)
            ++kernels;
    pass.counters.emplace_back("kernels", kernels);
    pass.counters.emplace_back("kernel-sims",
                               model_->cache().misses() - misses0);
}

void
CompilationSession::passCycleAccounting(PassReport &pass,
                                        CompiledModel &result)
{
    result.totalMacs = graph_.totalMacs();
    for (const graph::Node &node : graph_.nodes()) {
        if (node.dead || node.op == graph::OpType::Output)
            continue;
        // Each tensor counts once as an output and once per consumer.
        result.demandBytes += node.shape.elements();
        for (graph::NodeId in : node.inputs)
            if (!graph_.node(in).dead)
                result.demandBytes += graph_.node(in).shape.elements();
    }

    // Aggregate per-node execution statistics and per-edge transforms.
    result.nodeCycles.assign(graph_.size(), 0);
    for (const graph::Node &node : graph_.nodes()) {
        if (node.dead)
            continue;
        const NodeExecStats &stats =
            nodeStats_[static_cast<size_t>(node.id)];
        result.nodeCycles[static_cast<size_t>(node.id)] = stats.cycles;
        result.totals += stats;
        if (node.op != graph::OpType::Input &&
            node.op != graph::OpType::Constant &&
            node.op != graph::OpType::Output) {
            ++result.liveOperators;
            result.totals.cycles += options_.perOpOverheadCycles;
        }
        // Library kernels (Hexagon NN) pack the activation into the
        // kernel layout on entry and unpack the result on exit.
        if (options_.libraryStyleBoundaries &&
            graph::isMatMulFamily(node.op)) {
            const int planIdx =
                result.selection.planIndex[static_cast<size_t>(node.id)];
            const ExecutionPlan &plan =
                table_->plans(node.id)[static_cast<size_t>(planIdx)];
            if (plan.isMatMulPlan()) {
                const graph::Node &producer = graph_.node(node.inputs[0]);
                const NodeExecStats inPack = model_->transformStats(
                    producer.shape, tensor::Layout::RowMajor,
                    plan.inLayout);
                const NodeExecStats outUnpack = model_->transformStats(
                    node.shape, plan.outLayout, tensor::Layout::RowMajor);
                result.totals += inPack;
                result.totals += outUnpack;
                result.transformOnly += inPack;
                result.transformOnly += outUnpack;
            }
        }
    }
    // With library-style boundaries every inter-operator tensor is
    // row-major, so no cross-edge transformation remains to charge.
    if (!options_.libraryStyleBoundaries) {
        for (const auto &[src, dst] : table_->edges()) {
            const graph::Node &producer = graph_.node(src);
            if (producer.op == graph::OpType::Constant)
                continue;
            const ExecutionPlan &from = table_->plans(src)[static_cast<
                size_t>(
                result.selection.planIndex[static_cast<size_t>(src)])];
            const ExecutionPlan &to = table_->plans(dst)[static_cast<
                size_t>(
                result.selection.planIndex[static_cast<size_t>(dst)])];
            const NodeExecStats tc = model_->transformStats(
                producer.shape, from.outLayout, to.inLayout);
            result.totals += tc;
            result.transformOnly += tc;
        }
    }
    pass.counters.emplace_back("total-cycles", result.totals.cycles);
    pass.counters.emplace_back("transform-cycles",
                               result.transformOnly.cycles);
    pass.counters.emplace_back(
        "live-operators", static_cast<uint64_t>(result.liveOperators));
}

CompiledModel
CompilationSession::run()
{
    const Timer total;
    CompiledModel result;
    runPass("graph-optimize",
            [&](PassReport &pass) { passGraphOptimize(pass); });
    runPass("plan-table", [&](PassReport &pass) { passPlanTable(pass); });
    runPass("selection",
            [&](PassReport &pass) { passSelection(pass, result); });
    runPass("kernel-generation", [&](PassReport &pass) {
        passKernelGeneration(pass, result);
    });
    runPass("cycle-accounting", [&](PassReport &pass) {
        passCycleAccounting(pass, result);
    });
    report_.totalSeconds = total.seconds();
    result.report = report_;
    return result;
}

} // namespace gcd2::runtime
