/**
 * @file
 * Analytic models of the *other* hardware the paper compares against
 * (Table I mobile CPU/GPU, Table V EdgeTPU / Jetson Xavier).
 *
 * These devices are context for the DSP results, not reproduction
 * targets: each is modeled as an effective MAC throughput plus a power
 * figure calibrated to the paper's published rows, driven by our models'
 * MAC counts. The DSP rows of the same tables come from the simulator.
 */
#ifndef GCD2_RUNTIME_PLATFORM_MODEL_H
#define GCD2_RUNTIME_PLATFORM_MODEL_H

#include <cstdint>

namespace gcd2::runtime {

/** An accelerator modeled by effective throughput and power. */
struct PlatformModel
{
    const char *name;
    double effectiveGmacsPerSec; ///< sustained, end-to-end
    double watts;
    /** Fixed per-inference overhead (dispatch, transfers). */
    double overheadMs;

    double
    latencyMs(int64_t macs) const
    {
        return static_cast<double>(macs) / (effectiveGmacsPerSec * 1e6) +
               overheadMs;
    }

    double fps(int64_t macs) const { return 1000.0 / latencyMs(macs); }
    double fpw(int64_t macs) const { return fps(macs) / watts; }
};

/**
 * Table I context devices (Samsung Galaxy S20, TFLite): calibrated so
 * EfficientNet-b0 / ResNet / PixOr / CycleGAN land near the published
 * latencies (11.3/34.4/64.6/477 ms CPU, 9.1/13.9/43/450 ms GPU).
 */
inline constexpr PlatformModel kMobileCpuInt8{"CPU (int8)", 55.0, 2.9,
                                              3.0};
inline constexpr PlatformModel kMobileGpuFp16{"GPU (float16)", 240.0, 3.2,
                                              6.5};

/** Table V embedded accelerators (published figures). */
struct AcceleratorRow
{
    const char *platform;
    const char *device;
    double fps;
    double watts;

    double fpw() const { return fps / watts; }
};

inline constexpr AcceleratorRow kEdgeTpu{"EdgeTPU", "Edge TPU (int8)",
                                         17.8, 2.0};
inline constexpr AcceleratorRow kJetsonFp16{
    "Jetson Xavier", "GPU + DLA (fp16)", 291.0, 30.0};
inline constexpr AcceleratorRow kJetsonInt8{
    "Jetson Xavier", "GPU + DLA (int8)", 1100.0, 30.0};

} // namespace gcd2::runtime

#endif // GCD2_RUNTIME_PLATFORM_MODEL_H
