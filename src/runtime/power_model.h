/**
 * @file
 * Power and energy-efficiency model (Fig. 13 / Table V substitution).
 *
 * The paper measures rail power through the Android interface; we model
 * DSP power as a calibrated linear function of how hard the compiled
 * model drives the machine:
 *
 *   P = P_base + c_u * utilization + c_b * min(1, bandwidth / BW_peak)
 *
 * calibrated so that GCD2-compiled models land near the paper's ~2.6 W
 * (Table V) and better-utilizing binaries draw slightly *more* power but
 * far more inference frames per Watt -- the paper's headline relationship
 * (Section V-D).
 */
#ifndef GCD2_RUNTIME_POWER_MODEL_H
#define GCD2_RUNTIME_POWER_MODEL_H

#include "runtime/compiler.h"

namespace gcd2::runtime {

/** Calibrated DSP power model constants. */
struct DspPowerModel
{
    double baseWatts = 1.3;
    double utilizationWatts = 3.8; ///< at 100% issue utilization
    double bandwidthWatts = 0.9;   ///< at peak streaming bandwidth
    double peakBytesPerCycle = 64.0;

    double
    watts(const CompiledModel &model) const
    {
        const double bw =
            std::min(1.0, model.bandwidth() / peakBytesPerCycle);
        return baseWatts + utilizationWatts * model.utilization() +
               bandwidthWatts * bw;
    }
};

/** Inference frames per second at the modeled clock. */
inline double
framesPerSecond(const CompiledModel &model)
{
    return 1000.0 / model.latencyMs();
}

/** Frames per Watt (the paper's FPW metric). */
inline double
framesPerWatt(const CompiledModel &model,
              const DspPowerModel &power = {})
{
    return framesPerSecond(model) / power.watts(model);
}

} // namespace gcd2::runtime

#endif // GCD2_RUNTIME_POWER_MODEL_H
