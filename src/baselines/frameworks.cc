#include "baselines/frameworks.h"

#include "common/logging.h"

namespace gcd2::baselines {

using models::ModelId;

const char *
frameworkName(Framework fw)
{
    switch (fw) {
      case Framework::TfLite:
        return "TFLite";
      case Framework::Snpe:
        return "SNPE";
      case Framework::Gcd2:
        return "GCD2";
    }
    return "?";
}

bool
supportsModel(Framework fw, ModelId id)
{
    switch (fw) {
      case Framework::Gcd2:
        return true;
      case Framework::TfLite:
        // No transformer support (Table IV: TinyBERT, Conformer are "-").
        return id != ModelId::TinyBert && id != ModelId::Conformer;
      case Framework::Snpe:
        // Additionally lacks EfficientDet-d0's operator set.
        return id != ModelId::TinyBert && id != ModelId::Conformer &&
               id != ModelId::EfficientDetD0;
    }
    return false;
}

runtime::CompileOptions
frameworkOptions(Framework fw)
{
    runtime::CompileOptions options;
    switch (fw) {
      case Framework::Gcd2:
        options.selection = runtime::SelectionMode::Gcd2;
        options.cost.packOptions.policy = vliw::PackPolicy::Sda;
        options.cost.unroll = kernels::UnrollStrategy::Adaptive;
        options.cost.lutOptimization = true;
        options.perOpOverheadCycles = 0;
        break;
      case Framework::TfLite:
        // Hexagon NN library kernels: one well-chosen implementation per
        // operator type (uniform vmpa), fixed library unroll, row-major
        // boundaries around every call; the TFLite delegate's kernels are
        // list-scheduled without soft-dependency awareness.
        options.selection = runtime::SelectionMode::Uniform;
        options.uniformScheme = kernels::MatMulScheme::Vmpa;
        options.cost.packOptions.policy = vliw::PackPolicy::ListSched;
        options.cost.unroll = kernels::UnrollStrategy::Mid2;
        options.cost.lutOptimization = false;
        options.libraryStyleBoundaries = true;
        // Library runtimes execute Reshape/Transpose operators as
        // written -- no cross-operator transform elimination.
        options.eliminateLayoutTransforms = false;
        // Interpreter dispatch + Hexagon NN call overhead per operator.
        options.perOpOverheadCycles = 12000;
        break;
      case Framework::Snpe:
        // Qualcomm's own stack ships hand-scheduled (SDA-quality) library
        // kernels, still uniform-layout with per-call boundaries and a
        // fixed unroll.
        options.selection = runtime::SelectionMode::Uniform;
        options.uniformScheme = kernels::MatMulScheme::Vmpa;
        options.cost.packOptions.policy = vliw::PackPolicy::Sda;
        options.cost.unroll = kernels::UnrollStrategy::Mid;
        options.cost.lutOptimization = false;
        options.libraryStyleBoundaries = true;
        // Same per-call transform execution as the TFLite delegate.
        options.eliminateLayoutTransforms = false;
        // Leaner ahead-of-time graph runtime.
        options.perOpOverheadCycles = 4000;
        break;
    }
    return options;
}

std::optional<runtime::CompiledModel>
runFramework(Framework fw, ModelId id)
{
    if (!supportsModel(fw, id))
        return std::nullopt;
    const graph::Graph graph = models::buildModel(id);
    return runFrameworkOnGraph(fw, graph);
}

runtime::CompiledModel
runFrameworkOnGraph(Framework fw, const graph::Graph &graph)
{
    return runtime::compile(graph, frameworkOptions(fw));
}

} // namespace gcd2::baselines
