/**
 * @file
 * Behavioral models of the per-kernel tensor compilers the paper compares
 * against on individual Conv2D operators (Table III, Fig. 7): Halide,
 * TVM, and RAKE, plus the paper's own GCD_b ablation (GCD2's tensor
 * optimizations with a baseline soft-dependency-blind back-end).
 *
 * All four compile through our kernel generators and simulator; they
 * differ along the axes the paper identifies:
 *
 *  - Halide: one fixed vectorization recipe (vrmpy), no unrolling
 *    autotuning, naive in-order packetization.
 *  - TVM: fixed vrmpy lowering, autotuned unrolling, list-scheduled
 *    packetization (soft deps treated as hard).
 *  - RAKE: synthesis picks the locally best SIMD instruction per kernel
 *    (no global/layout view, matching Table III's per-kernel choices),
 *    modest unrolling, list-scheduled packetization.
 *  - GCD_b: GCD2's instruction/layout selection and adaptive unrolling
 *    with the baseline list-scheduled back-end.
 *  - GCD2: everything plus SDA packing.
 */
#ifndef GCD2_BASELINES_KERNEL_COMPILERS_H
#define GCD2_BASELINES_KERNEL_COMPILERS_H

#include <vector>

#include "kernels/conv.h"
#include "kernels/runner.h"

namespace gcd2::baselines {

/** The per-kernel compilers of Fig. 7 / Table III. */
enum class KernelCompiler : uint8_t { Halide, Tvm, Rake, GcdB, Gcd2 };

const char *kernelCompilerName(KernelCompiler compiler);

/** Result of compiling + simulating one Conv2D kernel. */
struct KernelCompileResult
{
    kernels::MatMulScheme scheme;
    uint64_t cycles = 0;
    /** Packets executed over the whole kernel (the Fig. 7 metric). */
    uint64_t dynamicPackets = 0;
    size_t staticPackets = 0;      ///< packets in the tile's code
    size_t staticInstructions = 0; ///< instructions in the tile's code
};

/** Compile the convolution under a given compiler model and simulate. */
KernelCompileResult compileConv(const kernels::ConvShape &shape,
                                KernelCompiler compiler);

/** The first 8 unique ResNet-50 Conv2D shapes (C0..C7 of Fig. 7). */
const std::vector<kernels::ConvShape> &resnetConvKernels();

} // namespace gcd2::baselines

#endif // GCD2_BASELINES_KERNEL_COMPILERS_H
