/**
 * @file
 * Behavioral models of the end-to-end baseline frameworks (Table IV).
 *
 * TFLite and SNPE both call Qualcomm's hand-written Hexagon NN library:
 * one uniform per-operator-type implementation (no shape-driven layout /
 * instruction selection) and a packetizer that does not distinguish soft
 * from hard dependencies. They differ in graph-level optimization
 * quality and runtime dispatch overhead. Both are compiled through the
 * *same* simulator and cost model as GCD2, differing exactly along the
 * axes the paper credits for its speedups:
 *
 *  - uniform (vrmpy / 4-column) kernels vs. global selection;
 *  - soft-dependency-blind list-scheduled packing vs. SDA;
 *  - fixed library unroll (no shape adaptation);
 *  - no division-to-LUT optimization;
 *  - interpreter dispatch overhead per operator (higher for TFLite,
 *    lower for SNPE, zero for ahead-of-time GCD2 code).
 *
 * Model support matches the paper: neither framework runs the
 * transformer models, and SNPE also lacks EfficientDet-d0's ops.
 */
#ifndef GCD2_BASELINES_FRAMEWORKS_H
#define GCD2_BASELINES_FRAMEWORKS_H

#include <optional>

#include "models/zoo.h"
#include "runtime/compiler.h"

namespace gcd2::baselines {

/** Which end-to-end stack compiles/executes the model. */
enum class Framework : uint8_t { TfLite, Snpe, Gcd2 };

const char *frameworkName(Framework fw);

/** Does the framework support the model (Table IV "-" entries)? */
bool supportsModel(Framework fw, models::ModelId id);

/** Compile options that realize a framework's behavior. */
runtime::CompileOptions frameworkOptions(Framework fw);

/**
 * Compile @p id under @p fw. Returns nullopt when unsupported.
 * The returned CompiledModel carries latency / utilization / bandwidth.
 */
std::optional<runtime::CompiledModel> runFramework(Framework fw,
                                                   models::ModelId id);

/** As above but on an already-built graph (sub-graph studies). */
runtime::CompiledModel runFrameworkOnGraph(Framework fw,
                                           const graph::Graph &graph);

} // namespace gcd2::baselines

#endif // GCD2_BASELINES_FRAMEWORKS_H
