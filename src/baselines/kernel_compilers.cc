#include "baselines/kernel_compilers.h"

#include "common/logging.h"
#include "select/cost_model.h"
#include "vliw/packer.h"

namespace gcd2::baselines {

using kernels::ConvShape;
using kernels::MatMulScheme;
using kernels::UnrollStrategy;

const char *
kernelCompilerName(KernelCompiler compiler)
{
    switch (compiler) {
      case KernelCompiler::Halide:
        return "Halide";
      case KernelCompiler::Tvm:
        return "TVM";
      case KernelCompiler::Rake:
        return "RAKE";
      case KernelCompiler::GcdB:
        return "GCD_b";
      case KernelCompiler::Gcd2:
        return "GCD2";
    }
    return "?";
}

namespace {

struct CompilerProfile
{
    vliw::PackPolicy packing;
    UnrollStrategy unroll;
    bool selectsInstruction; // false: pinned to vrmpy lowering
};

CompilerProfile
profileOf(KernelCompiler compiler)
{
    switch (compiler) {
      case KernelCompiler::Halide:
        return {vliw::PackPolicy::InOrder, UnrollStrategy::None, false};
      case KernelCompiler::Tvm:
        return {vliw::PackPolicy::ListSched, UnrollStrategy::Mid, false};
      case KernelCompiler::Rake:
        return {vliw::PackPolicy::ListSched, UnrollStrategy::Mid2, true};
      case KernelCompiler::GcdB:
        return {vliw::PackPolicy::ListSched, UnrollStrategy::Adaptive,
                true};
      case KernelCompiler::Gcd2:
        return {vliw::PackPolicy::Sda, UnrollStrategy::Adaptive, true};
    }
    GCD2_PANIC("unknown compiler");
}

/** Static packet count of the kernel's tile program under the packer. */
size_t
staticPacketsOf(const kernels::MatMulShape &tileShape,
                MatMulScheme scheme, const kernels::UnrollChoice &choice,
                vliw::PackPolicy packing)
{
    kernels::MatMulConfig config;
    config.scheme = scheme;
    config = kernels::withUnroll(config, choice);
    const kernels::MatMulKernel kernel(tileShape, config);
    vliw::PackOptions opts;
    opts.policy = packing;
    return vliw::pack(kernel.program(), opts).packets.size();
}

} // namespace

KernelCompileResult
compileConv(const ConvShape &shape, KernelCompiler compiler)
{
    const CompilerProfile profile = profileOf(compiler);

    select::CostModelOptions options;
    options.packOptions.policy = profile.packing;
    options.unroll = profile.unroll;
    select::CostModel model(options);

    const kernels::MatMulShape mm = shape.matmulShape();
    const uint64_t im2col =
        shape.isPointwise()
            ? 0
            : static_cast<uint64_t>(4 * (mm.m * mm.k / 128) + 16);

    std::vector<MatMulScheme> candidates;
    if (profile.selectsInstruction) {
        candidates = {MatMulScheme::Vmpy, MatMulScheme::Vmpa,
                      MatMulScheme::Vrmpy};
    } else {
        candidates = {MatMulScheme::Vrmpy};
    }

    KernelCompileResult best;
    best.cycles = UINT64_MAX;
    for (MatMulScheme scheme : candidates) {
        const select::NodeExecStats stats =
            model.matmulStats(mm, scheme, im2col);
        if (stats.cycles < best.cycles) {
            best.scheme = scheme;
            best.cycles = stats.cycles;
            best.dynamicPackets = stats.packets;
        }
    }

    // Static packet count of the chosen kernel's inner tile.
    kernels::UnrollChoice choice{1, 1, 1};
    switch (profile.unroll) {
      case UnrollStrategy::None:
        break;
      case UnrollStrategy::Outer:
        choice = kernels::UnrollChoice{4, 1, 1};
        break;
      case UnrollStrategy::Mid:
        choice = kernels::UnrollChoice{1, 4, 1};
        break;
      case UnrollStrategy::Mid2:
        choice = kernels::UnrollChoice{1, 2, 1};
        break;
      case UnrollStrategy::Adaptive:
      case UnrollStrategy::Exhaustive:
        choice = kernels::adaptiveUnroll(mm, best.scheme);
        break;
    }
    const int panel =
        tensor::layoutPanelRows(kernels::schemeLayout(best.scheme));
    const int unit = best.scheme == MatMulScheme::Vmpy  ? 1
                     : best.scheme == MatMulScheme::Vmpa ? 2
                                                         : 4;
    kernels::MatMulShape tile;
    tile.m = static_cast<int64_t>(panel) * choice.outer;
    tile.k = mm.k;
    tile.n = static_cast<int64_t>(unit) * choice.cols;
    best.staticPackets =
        staticPacketsOf(tile, best.scheme, choice, profile.packing);

    kernels::MatMulConfig config;
    config.scheme = best.scheme;
    config = kernels::withUnroll(config, choice);
    best.staticInstructions =
        kernels::MatMulKernel(tile, config).program().code.size();
    return best;
}

const std::vector<ConvShape> &
resnetConvKernels()
{
    auto make = [](int64_t inC, int64_t hw, int64_t outC, int64_t k,
                   int64_t stride, int64_t pad) {
        ConvShape shape;
        shape.inC = inC;
        shape.inH = hw;
        shape.inW = hw;
        shape.outC = outC;
        shape.kH = shape.kW = k;
        shape.strideH = shape.strideW = stride;
        shape.padH = shape.padW = pad;
        return shape;
    };
    // The first 8 unique Conv2D operators of ResNet-50 in execution
    // order (stem, stage-1 bottleneck, stage-2 entry); Table III's three
    // representative kernels are C0, C1, and C7.
    static const std::vector<ConvShape> kKernels = {
        make(3, 224, 64, 7, 2, 3),    // C0: 7x7 stem
        make(64, 56, 64, 1, 1, 0),    // C1: 1x1 reduce
        make(64, 56, 64, 3, 1, 1),    // C2: 3x3
        make(64, 56, 256, 1, 1, 0),   // C3: 1x1 expand
        make(256, 56, 64, 1, 1, 0),   // C4: 1x1 reduce
        make(256, 56, 512, 1, 2, 0),  // C5: shortcut projection
        make(256, 56, 128, 1, 2, 0),  // C6: stage-2 1x1 reduce
        make(128, 28, 128, 3, 1, 1),  // C7: stage-2 3x3
    };
    return kKernels;
}

} // namespace gcd2::baselines
