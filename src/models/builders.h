/**
 * @file
 * Shared block builders for the model zoo: convolution + activation,
 * residual bottlenecks, squeeze-excite, inverted residuals, and
 * transformer layers.
 */
#ifndef GCD2_MODELS_BUILDERS_H
#define GCD2_MODELS_BUILDERS_H

#include "graph/graph.h"

namespace gcd2::models {

using graph::Graph;
using graph::NodeAttrs;
using graph::NodeId;
using graph::OpType;

/** Declare a model input of the given shape. */
NodeId input(Graph &g, std::vector<int64_t> shape);

/** Declare a constant (weights / tables) of the given shape. */
NodeId constant(Graph &g, std::vector<int64_t> shape);

/** Conv2D; relu=true appends a Clamp (fused later by the pass). */
NodeId conv(Graph &g, NodeId x, int64_t outC, int64_t k, int64_t stride,
            int64_t pad, bool relu = true);

/** Depthwise 3x3 (or kxk) convolution with optional activation. */
NodeId dwConv(Graph &g, NodeId x, int64_t k, int64_t stride, int64_t pad,
              bool relu = true);

/** MatMul with a fresh constant weight (in features -> out features). */
NodeId dense(Graph &g, NodeId x, int64_t outFeatures, bool relu = false);

/** Residual add of two branches. */
NodeId add(Graph &g, NodeId a, NodeId b);

/** Squeeze-and-excite block (GAP -> 1x1 reduce -> 1x1 expand -> scale). */
NodeId squeezeExcite(Graph &g, NodeId x, int64_t channels,
                     int64_t reduced);

/** ResNet bottleneck (1x1 -> 3x3 -> 1x1 + shortcut). */
NodeId bottleneck(Graph &g, NodeId x, int64_t inC, int64_t midC,
                  int64_t outC, int64_t stride);

/** MobileNet-style inverted residual (expand -> dw -> project [+ SE]). */
NodeId invertedResidual(Graph &g, NodeId x, int64_t inC, int64_t expand,
                        int64_t outC, int64_t stride, bool se);

/** Transformer encoder layer (pre-norm MHSA + FFN). */
NodeId transformerLayer(Graph &g, NodeId x, int64_t seq, int64_t hidden,
                        int64_t heads, int64_t ffn);

/** Finish a graph: Output node, run the optimization pipeline. */
void finish(Graph &g, NodeId result);

} // namespace gcd2::models

#endif // GCD2_MODELS_BUILDERS_H
