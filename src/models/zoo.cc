#include "models/zoo.h"

#include "common/logging.h"
#include "models/builders.h"

namespace gcd2::models {

namespace {

using graph::Graph;
using graph::NodeAttrs;
using graph::NodeId;
using graph::OpType;

// ---------------------------------------------------------------- ResNet-50

Graph
buildResNet50()
{
    Graph g;
    NodeId x = input(g, {3, 224, 224});
    x = conv(g, x, 64, 7, 2, 3);
    NodeAttrs pool;
    pool.poolK = 2;
    pool.poolStride = 2;
    x = g.add(OpType::MaxPool, {x}, pool);

    const struct
    {
        int64_t blocks, mid, out, stride;
    } stages[] = {
        {3, 64, 256, 1},
        {4, 128, 512, 2},
        {6, 256, 1024, 2},
        {3, 512, 2048, 2},
    };
    int64_t inC = 64;
    for (const auto &stage : stages) {
        for (int64_t b = 0; b < stage.blocks; ++b) {
            const int64_t stride = (b == 0) ? stage.stride : 1;
            x = bottleneck(g, x, inC, stage.mid, stage.out, stride);
            inC = stage.out;
        }
    }
    x = g.add(OpType::GlobalAvgPool, {x});
    NodeAttrs flat;
    flat.targetShape = {1, 2048};
    x = g.add(OpType::Reshape, {x}, flat);
    x = dense(g, x, 1000);
    finish(g, x);
    return g;
}

// ------------------------------------------------------------ MobileNet-V3

Graph
buildMobileNetV3()
{
    Graph g;
    NodeId x = input(g, {3, 224, 224});
    x = conv(g, x, 16, 3, 2, 1);

    // (expand, out, stride, SE) -- MobileNetV3-Large schedule (3x3 only).
    const struct
    {
        int64_t expand, out, stride;
        bool se;
    } blocks[] = {
        {16, 16, 1, false},   {64, 24, 2, false},  {72, 24, 1, false},
        {72, 40, 2, true},    {120, 40, 1, true},  {120, 40, 1, true},
        {240, 80, 2, false},  {200, 80, 1, false}, {184, 80, 1, false},
        {184, 80, 1, false},  {480, 112, 1, true}, {672, 112, 1, true},
        {672, 160, 2, true},  {960, 160, 1, true}, {960, 160, 1, true},
    };
    int64_t inC = 16;
    for (const auto &blk : blocks) {
        x = invertedResidual(g, x, inC, blk.expand, blk.out, blk.stride,
                             blk.se);
        inC = blk.out;
    }
    x = conv(g, x, 960, 1, 1, 0);
    x = g.add(OpType::GlobalAvgPool, {x});
    NodeAttrs flat;
    flat.targetShape = {1, 960};
    x = g.add(OpType::Reshape, {x}, flat);
    x = dense(g, x, 1280, /*relu=*/true);
    x = dense(g, x, 1000);
    finish(g, x);
    return g;
}

// --------------------------------------------------------- EfficientNet-b0

NodeId
efficientNetBackbone(Graph &g, NodeId x,
                     std::vector<NodeId> *featureTaps = nullptr)
{
    x = conv(g, x, 32, 3, 2, 1);
    const struct
    {
        int64_t repeat, expandRatio, out, stride;
    } blocks[] = {
        {1, 1, 16, 1}, {2, 6, 24, 2},  {2, 6, 40, 2},
        {3, 6, 80, 2}, {3, 6, 112, 1}, {4, 6, 192, 2},
        {1, 6, 320, 1},
    };
    int64_t inC = 32;
    int stageIdx = 0;
    for (const auto &blk : blocks) {
        for (int64_t r = 0; r < blk.repeat; ++r) {
            const int64_t stride = (r == 0) ? blk.stride : 1;
            x = invertedResidual(g, x, inC, inC * blk.expandRatio, blk.out,
                                 stride, /*se=*/true);
            inC = blk.out;
        }
        ++stageIdx;
        // Taps after stages 3, 5, 7 feed detection necks (P3-P5).
        if (featureTaps &&
            (stageIdx == 3 || stageIdx == 5 || stageIdx == 7))
            featureTaps->push_back(x);
    }
    return x;
}

Graph
buildEfficientNetB0()
{
    Graph g;
    NodeId x = input(g, {3, 224, 224});
    x = efficientNetBackbone(g, x);
    x = conv(g, x, 1280, 1, 1, 0);
    x = g.add(OpType::GlobalAvgPool, {x});
    NodeAttrs flat;
    flat.targetShape = {1, 1280};
    x = g.add(OpType::Reshape, {x}, flat);
    x = dense(g, x, 1000);
    finish(g, x);
    return g;
}

// ------------------------------------------------------- FST style transfer

NodeId
residualConvBlock(Graph &g, NodeId x, int64_t channels)
{
    NodeId y = conv(g, x, channels, 3, 1, 1);
    y = g.add(OpType::LayerNorm, {y});
    y = conv(g, y, channels, 3, 1, 1, /*relu=*/false);
    y = g.add(OpType::LayerNorm, {y});
    return add(g, y, x);
}

Graph
buildFst()
{
    Graph g;
    // High-resolution stylization: the paper's FST runs at full image
    // resolution, which is what makes it 161 GMACs.
    NodeId x = input(g, {3, 1024, 1024});
    x = conv(g, x, 32, 9, 1, 4);
    x = g.add(OpType::LayerNorm, {x});
    x = conv(g, x, 64, 3, 2, 1);
    x = g.add(OpType::LayerNorm, {x});
    x = conv(g, x, 128, 3, 2, 1);
    x = g.add(OpType::LayerNorm, {x});
    for (int i = 0; i < 5; ++i)
        x = residualConvBlock(g, x, 128);
    x = g.add(OpType::Upsample, {x});
    x = conv(g, x, 64, 3, 1, 1);
    x = g.add(OpType::Upsample, {x});
    x = conv(g, x, 32, 3, 1, 1);
    x = conv(g, x, 3, 9, 1, 4, /*relu=*/false);
    finish(g, x);
    return g;
}

// ----------------------------------------------------------------- CycleGAN

Graph
buildCycleGan()
{
    Graph g;
    NodeId x = input(g, {3, 464, 464});
    x = conv(g, x, 64, 7, 1, 3);
    x = g.add(OpType::LayerNorm, {x});
    x = conv(g, x, 128, 3, 2, 1);
    x = conv(g, x, 256, 3, 2, 1);
    for (int i = 0; i < 9; ++i)
        x = residualConvBlock(g, x, 256);
    x = g.add(OpType::Upsample, {x});
    x = conv(g, x, 128, 3, 1, 1);
    x = g.add(OpType::Upsample, {x});
    x = conv(g, x, 64, 3, 1, 1);
    x = conv(g, x, 3, 7, 1, 3, /*relu=*/false);
    x = g.add(OpType::Tanh, {x});
    finish(g, x);
    return g;
}

// ------------------------------------------------------------------- WDSR-b

Graph
buildWdsrB()
{
    Graph g;
    NodeId x = input(g, {3, 208, 368});
    NodeId head = conv(g, x, 32, 3, 1, 1, /*relu=*/false);
    NodeId body = head;
    for (int i = 0; i < 8; ++i) {
        // WDSR-B block: wide 1x1 expand, ReLU, 1x1 shrink, 3x3.
        NodeId y = conv(g, body, 192, 1, 1, 0);
        y = conv(g, y, 25, 1, 1, 0, /*relu=*/false);
        y = conv(g, y, 32, 3, 1, 1, /*relu=*/false);
        body = add(g, body, y);
    }
    // x2 pixel-shuffle tail: conv to 12 channels, depth-to-space.
    NodeId tail = conv(g, body, 12, 3, 1, 1, /*relu=*/false);
    NodeAttrs up;
    up.targetShape = {3, 416, 736};
    NodeId shuffled = g.add(OpType::Reshape, {tail}, up);
    // Global skip: 3-channel conv on the input, upsampled.
    NodeId skip = conv(g, x, 12, 3, 1, 1, /*relu=*/false);
    NodeId skipUp = g.add(OpType::Reshape, {skip}, up);
    NodeId sum = add(g, shuffled, skipUp);
    finish(g, sum);
    return g;
}

// ---------------------------------------------------------- EfficientDet-d0

Graph
buildEfficientDetD0()
{
    Graph g;
    NodeId x = input(g, {3, 512, 512});
    std::vector<NodeId> taps;
    efficientNetBackbone(g, x, &taps);
    GCD2_ASSERT(taps.size() == 3, "expected P3-P5 taps");

    const int64_t fpnC = 64;
    // Lateral 1x1s onto the BiFPN width + two extra downsampled levels.
    std::vector<NodeId> levels;
    for (NodeId tap : taps)
        levels.push_back(conv(g, tap, fpnC, 1, 1, 0, /*relu=*/false));
    NodeAttrs pool;
    pool.poolK = 2;
    pool.poolStride = 2;
    levels.push_back(g.add(OpType::MaxPool, {levels.back()}, pool)); // P6
    levels.push_back(g.add(OpType::MaxPool, {levels.back()}, pool)); // P7

    auto fuse = [&](NodeId a, NodeId b) {
        NodeId sum = add(g, a, b);
        NodeAttrs clamp;
        NodeId act = g.add(OpType::Clamp, {sum}, clamp);
        // Depthwise-separable conv characteristic of BiFPN nodes.
        NodeId dw = dwConv(g, act, 3, 1, 1, /*relu=*/false);
        return conv(g, dw, fpnC, 1, 1, 0, /*relu=*/false);
    };

    // Three BiFPN repeats: top-down then bottom-up pathways.
    for (int repeat = 0; repeat < 3; ++repeat) {
        std::vector<NodeId> td(levels.size());
        td.back() = levels.back();
        for (int i = static_cast<int>(levels.size()) - 2; i >= 0; --i) {
            NodeId upsampled = g.add(OpType::Upsample, {td[i + 1]});
            td[i] = fuse(levels[i], upsampled);
        }
        std::vector<NodeId> bu(levels.size());
        bu.front() = td.front();
        for (size_t i = 1; i < levels.size(); ++i) {
            NodeId down = g.add(OpType::MaxPool, {bu[i - 1]}, pool);
            NodeId fused = fuse(td[i], down);
            // Residual connection with the original level input.
            bu[i] = add(g, fused, levels[i]);
        }
        levels = bu;
    }

    // Class and box heads: 3 depthwise-separable convs each, shared
    // structure across the 5 levels, plus the prediction convs.
    std::vector<NodeId> outputs;
    for (NodeId level : levels) {
        NodeId cls = level;
        NodeId box = level;
        for (int d = 0; d < 3; ++d) {
            cls = conv(g, dwConv(g, cls, 3, 1, 1, false), fpnC, 1, 1, 0);
            box = conv(g, dwConv(g, box, 3, 1, 1, false), fpnC, 1, 1, 0);
        }
        outputs.push_back(conv(g, cls, 90 * 9, 1, 1, 0, false));
        outputs.push_back(conv(g, box, 4 * 9, 1, 1, 0, false));
    }
    // Flatten every prediction map and concatenate.
    std::vector<NodeId> flat;
    for (NodeId out : outputs) {
        graph::inferShapes(g);
        NodeAttrs reshape;
        reshape.targetShape = {g.node(out).shape.elements()};
        flat.push_back(g.add(OpType::Reshape, {out}, reshape));
    }
    NodeAttrs concat;
    concat.axis = 0;
    NodeId merged = g.add(OpType::Concat, flat, concat);
    finish(g, merged);
    return g;
}

// -------------------------------------------------------------------- PixOr

Graph
buildPixOr()
{
    Graph g;
    // Bird's-eye-view LiDAR occupancy input.
    NodeId x = input(g, {36, 352, 320});
    x = conv(g, x, 32, 3, 1, 1);
    x = conv(g, x, 32, 3, 1, 1);

    // Backbone: four residual stages.
    NodeId c2 = bottleneck(g, x, 32, 24, 96, 2);
    c2 = bottleneck(g, c2, 96, 24, 96, 1);
    c2 = bottleneck(g, c2, 96, 24, 96, 1);
    NodeId c3 = bottleneck(g, c2, 96, 48, 192, 2);
    for (int i = 0; i < 5; ++i)
        c3 = bottleneck(g, c3, 192, 48, 192, 1);
    NodeId c4 = bottleneck(g, c3, 192, 64, 256, 2);
    for (int i = 0; i < 4; ++i)
        c4 = bottleneck(g, c4, 256, 64, 256, 1);
    NodeId c5 = bottleneck(g, c4, 256, 96, 384, 2);
    for (int i = 0; i < 2; ++i)
        c5 = bottleneck(g, c5, 384, 96, 384, 1);

    // FPN-style decoder back to the c3 resolution.
    NodeId p5 = conv(g, c5, 128, 1, 1, 0, false);
    NodeId p4 = add(g, g.add(OpType::Upsample, {p5}),
                    conv(g, c4, 128, 1, 1, 0, false));
    NodeId p3 = add(g, g.add(OpType::Upsample, {p4}),
                    conv(g, c3, 128, 1, 1, 0, false));

    // Header: four shared convs, then classification + regression maps.
    NodeId h = p3;
    for (int i = 0; i < 4; ++i)
        h = conv(g, h, 96, 3, 1, 1);
    NodeId cls = conv(g, h, 1, 3, 1, 1, false);
    NodeId reg = conv(g, h, 6, 3, 1, 1, false);
    NodeAttrs concat;
    concat.axis = 0;
    NodeId out = g.add(OpType::Concat, {cls, reg}, concat);
    finish(g, out);
    return g;
}

// ----------------------------------------------------------------- TinyBERT

Graph
buildTinyBert()
{
    Graph g;
    const int64_t seq = 196, hidden = 312, heads = 12, ffn = 1200;
    NodeId x = input(g, {seq, hidden});
    // Embedding projection (factorized embedding characteristic of
    // TinyBERT) + positional add + norm.
    x = dense(g, x, hidden);
    NodeId pos = constant(g, {seq, hidden});
    x = add(g, x, pos);
    x = g.add(OpType::LayerNorm, {x});
    for (int layer = 0; layer < 6; ++layer)
        x = transformerLayer(g, x, seq, hidden, heads, ffn);
    x = g.add(OpType::LayerNorm, {x});
    // Pooler (applied across the sequence; the real model gathers [CLS],
    // which has negligible cost).
    NodeId pooled = dense(g, x, hidden);
    NodeId gate = g.add(OpType::Tanh, {pooled});
    NodeId logits = dense(g, gate, 2);
    finish(g, logits);
    return g;
}

// ---------------------------------------------------------------- Conformer

NodeId
conformerBlock(Graph &g, NodeId x, int64_t seq, int64_t hidden,
               int64_t heads)
{
    // Half-step FFN.
    NodeId n1 = g.add(OpType::LayerNorm, {x});
    NodeId f1 = dense(g, n1, hidden * 4, /*relu=*/false);
    f1 = g.add(OpType::Gelu, {f1});
    f1 = dense(g, f1, hidden);
    NodeId halfConst = constant(g, {1});
    f1 = g.add(OpType::Mul, {f1, halfConst});
    x = add(g, x, f1);

    // Multi-head self-attention.
    x = transformerLayer(g, x, seq, hidden, heads, hidden * 4);

    // Convolution module: pointwise GLU -> depthwise (k=15 over time) ->
    // pointwise.
    NodeId n2 = g.add(OpType::LayerNorm, {x});
    NodeId pw1 = dense(g, n2, hidden * 2, /*relu=*/false);
    NodeId gateIn = dense(g, n2, hidden * 2, /*relu=*/false);
    NodeId gate = g.add(OpType::Sigmoid, {gateIn});
    NodeId glu = g.add(OpType::Mul, {pw1, gate});
    NodeId squeeze = dense(g, glu, hidden, /*relu=*/false);
    // Depthwise over time: view (seq, hidden) as (hidden, seq, 1).
    NodeAttrs permAttrs;
    permAttrs.perm = {1, 0};
    NodeId t = g.add(OpType::Transpose, {squeeze}, permAttrs);
    NodeAttrs viewAttrs;
    viewAttrs.targetShape = {hidden, seq, 1};
    NodeId view = g.add(OpType::Reshape, {t}, viewAttrs);
    NodeAttrs dwAttrs;
    dwAttrs.kH = 15;
    dwAttrs.kW = 1;
    dwAttrs.padH = 7;
    NodeId dw = g.add(OpType::DepthwiseConv2D, {view}, dwAttrs);
    NodeAttrs clampAttrs;
    NodeId act = g.add(OpType::Clamp, {dw}, clampAttrs);
    NodeAttrs backView;
    backView.targetShape = {hidden, seq};
    NodeId flatBack = g.add(OpType::Reshape, {act}, backView);
    NodeAttrs backPerm;
    backPerm.perm = {1, 0};
    NodeId back = g.add(OpType::Transpose, {flatBack}, backPerm);
    NodeId pw2 = dense(g, back, hidden, /*relu=*/false);
    return add(g, x, pw2);
}

Graph
buildConformer()
{
    Graph g;
    const int64_t seq = 200, hidden = 256, heads = 4;
    // Subsampled filterbank features.
    NodeId x = input(g, {seq, 80});
    x = dense(g, x, hidden, /*relu=*/true);
    for (int block = 0; block < 16; ++block)
        x = conformerBlock(g, x, seq, hidden, heads);
    x = g.add(OpType::LayerNorm, {x});
    NodeId logits = dense(g, x, 1024); // vocabulary
    finish(g, logits);
    return g;
}

const std::vector<ModelInfo> kModels = {
    {ModelId::MobileNetV3, "MobileNet-V3", "2D CNN", "Classification",
     0.22, 193},
    {ModelId::EfficientNetB0, "EfficientNet-b0", "2D CNN",
     "Classification", 0.40, 254},
    {ModelId::ResNet50, "ResNet-50", "2D CNN", "Classification", 4.1,
     140},
    {ModelId::FST, "FST", "2D CNN", "Style transfer", 161.0, 64},
    {ModelId::CycleGAN, "CycleGAN", "GAN", "Image translation", 186.0,
     84},
    {ModelId::WdsrB, "WDSR-b", "2D CNN", "Super resolution", 11.5, 32},
    {ModelId::EfficientDetD0, "EfficientDet-d0", "2D CNN",
     "2D object detection", 2.6, 822},
    {ModelId::PixOr, "PixOr", "2D CNN", "3D object detection", 8.8, 150},
    {ModelId::TinyBert, "TinyBERT", "Transformer", "NLP", 1.4, 211},
    {ModelId::Conformer, "Conformer", "Transformer",
     "Speech recognition", 5.6, 675},
};

} // namespace

const std::vector<ModelInfo> &
allModels()
{
    return kModels;
}

const ModelInfo &
modelInfo(ModelId id)
{
    for (const ModelInfo &info : kModels)
        if (info.id == id)
            return info;
    GCD2_PANIC("unknown model id");
}

graph::Graph
buildModel(ModelId id)
{
    switch (id) {
      case ModelId::MobileNetV3:
        return buildMobileNetV3();
      case ModelId::EfficientNetB0:
        return buildEfficientNetB0();
      case ModelId::ResNet50:
        return buildResNet50();
      case ModelId::FST:
        return buildFst();
      case ModelId::CycleGAN:
        return buildCycleGan();
      case ModelId::WdsrB:
        return buildWdsrB();
      case ModelId::EfficientDetD0:
        return buildEfficientDetD0();
      case ModelId::PixOr:
        return buildPixOr();
      case ModelId::TinyBert:
        return buildTinyBert();
      case ModelId::Conformer:
        return buildConformer();
    }
    GCD2_PANIC("unknown model id");
}

} // namespace gcd2::models
