/**
 * @file
 * Synthetic model zoo: structurally faithful builders for the ten DNNs of
 * the paper's evaluation (Table IV).
 *
 * Weights are synthetic (the graphs carry shapes, not values -- kernels
 * receive seeded random tensors at execution time), but the operator mix,
 * tensor shapes, operator counts, and MAC totals track the real networks,
 * since those are what determine inference latency (the paper itself notes
 * the dataset/values have negligible latency impact).
 */
#ifndef GCD2_MODELS_ZOO_H
#define GCD2_MODELS_ZOO_H

#include <vector>

#include "graph/graph.h"

namespace gcd2::models {

/** The ten evaluation models. */
enum class ModelId : uint8_t
{
    MobileNetV3,
    EfficientNetB0,
    ResNet50,
    FST,
    CycleGAN,
    WdsrB,
    EfficientDetD0,
    PixOr,
    TinyBert,
    Conformer,
};

/** Static metadata mirroring Table IV's descriptive columns. */
struct ModelInfo
{
    ModelId id;
    const char *name;
    const char *type;
    const char *task;
    /** Paper-reported numbers for cross-checking (Table IV). */
    double paperGMacs;
    int paperOperators;
};

/** All models in Table IV order. */
const std::vector<ModelInfo> &allModels();

const ModelInfo &modelInfo(ModelId id);

/** Build the (optimized-shape-inferred) computational graph of a model. */
graph::Graph buildModel(ModelId id);

} // namespace gcd2::models

#endif // GCD2_MODELS_ZOO_H
