#include "models/builders.h"

#include "common/logging.h"
#include "graph/passes.h"

namespace gcd2::models {

NodeId
input(Graph &g, std::vector<int64_t> shape)
{
    NodeAttrs attrs;
    attrs.targetShape = std::move(shape);
    return g.add(OpType::Input, {}, attrs);
}

NodeId
constant(Graph &g, std::vector<int64_t> shape)
{
    NodeAttrs attrs;
    attrs.targetShape = std::move(shape);
    return g.add(OpType::Constant, {}, attrs);
}

NodeId
conv(Graph &g, NodeId x, int64_t outC, int64_t k, int64_t stride,
     int64_t pad, bool relu)
{
    NodeAttrs attrs;
    attrs.outC = outC;
    attrs.kH = attrs.kW = k;
    attrs.strideH = attrs.strideW = stride;
    attrs.padH = attrs.padW = pad;
    NodeId y = g.add(OpType::Conv2D, {x}, attrs);
    if (relu) {
        NodeAttrs clamp;
        clamp.clampLo = 0;
        clamp.clampHi = 255;
        y = g.add(OpType::Clamp, {y}, clamp);
    }
    return y;
}

NodeId
dwConv(Graph &g, NodeId x, int64_t k, int64_t stride, int64_t pad,
       bool relu)
{
    NodeAttrs attrs;
    attrs.kH = attrs.kW = k;
    attrs.strideH = attrs.strideW = stride;
    attrs.padH = attrs.padW = pad;
    NodeId y = g.add(OpType::DepthwiseConv2D, {x}, attrs);
    if (relu) {
        NodeAttrs clamp;
        y = g.add(OpType::Clamp, {y}, clamp);
    }
    return y;
}

NodeId
dense(Graph &g, NodeId x, int64_t outFeatures, bool relu)
{
    // The weight constant's reduction dimension comes from the producer's
    // output shape, so resolve shapes up to this point first.
    graph::inferShapes(g);
    const tensor::Shape &shape = g.node(x).shape;
    const int64_t k = shape.dim(shape.rank() - 1);
    NodeId w = constant(g, {k, outFeatures});
    NodeId y = g.add(OpType::MatMul, {x, w});
    if (relu) {
        NodeAttrs clamp;
        y = g.add(OpType::Clamp, {y}, clamp);
    }
    return y;
}

NodeId
add(Graph &g, NodeId a, NodeId b)
{
    return g.add(OpType::Add, {a, b});
}

NodeId
squeezeExcite(Graph &g, NodeId x, int64_t channels, int64_t reduced)
{
    NodeId pooled = g.add(OpType::GlobalAvgPool, {x});
    NodeId squeeze = conv(g, pooled, reduced, 1, 1, 0, /*relu=*/true);
    NodeId expand = conv(g, squeeze, channels, 1, 1, 0, /*relu=*/false);
    NodeId gate = g.add(OpType::Sigmoid, {expand});
    return g.add(OpType::Mul, {x, gate});
}

NodeId
bottleneck(Graph &g, NodeId x, int64_t inC, int64_t midC, int64_t outC,
           int64_t stride)
{
    NodeId y = conv(g, x, midC, 1, 1, 0);
    y = conv(g, y, midC, 3, stride, 1);
    y = conv(g, y, outC, 1, 1, 0, /*relu=*/false);
    NodeId shortcut = x;
    if (stride != 1 || inC != outC)
        shortcut = conv(g, x, outC, 1, stride, 0, /*relu=*/false);
    NodeId sum = add(g, y, shortcut);
    NodeAttrs clamp;
    return g.add(OpType::Clamp, {sum}, clamp);
}

NodeId
invertedResidual(Graph &g, NodeId x, int64_t inC, int64_t expand,
                 int64_t outC, int64_t stride, bool se)
{
    NodeId y = x;
    if (expand != inC)
        y = conv(g, y, expand, 1, 1, 0);
    y = dwConv(g, y, 3, stride, 1);
    if (se)
        y = squeezeExcite(g, y, expand, std::max<int64_t>(8, expand / 4));
    y = conv(g, y, outC, 1, 1, 0, /*relu=*/false);
    if (stride == 1 && inC == outC)
        y = add(g, y, x);
    return y;
}

NodeId
transformerLayer(Graph &g, NodeId x, int64_t seq, int64_t hidden,
                 int64_t heads, int64_t ffn)
{
    GCD2_REQUIRE(hidden % heads == 0, "hidden must divide by heads");
    const int64_t headDim = hidden / heads;

    // Multi-head self-attention.
    NodeId norm1 = g.add(OpType::LayerNorm, {x});
    NodeId q = dense(g, norm1, hidden);
    NodeId k = dense(g, norm1, hidden);
    NodeId v = dense(g, norm1, hidden);

    auto splitHeads = [&](NodeId t) {
        NodeAttrs reshape;
        reshape.targetShape = {seq, heads, headDim};
        NodeId r = g.add(OpType::Reshape, {t}, reshape);
        NodeAttrs perm;
        perm.perm = {1, 0, 2};
        return g.add(OpType::Transpose, {r}, perm); // (heads, seq, dim)
    };
    NodeId qh = splitHeads(q);
    NodeId kh = splitHeads(k);
    NodeId vh = splitHeads(v);

    NodeAttrs mm;
    mm.transposeB = true;
    NodeId scores = g.add(OpType::MatMul, {qh, kh}, mm); // (h, s, s)
    NodeId scaleConst = constant(g, {1});
    NodeId scaled = g.add(OpType::Mul, {scores, scaleConst});
    NodeAttrs smAttrs;
    smAttrs.axis = -1;
    NodeId probs = g.add(OpType::Softmax, {scaled}, smAttrs);
    NodeId ctx = g.add(OpType::MatMul, {probs, vh}); // (h, s, d)

    NodeAttrs backPerm;
    backPerm.perm = {1, 0, 2};
    NodeId merged = g.add(OpType::Transpose, {ctx}, backPerm);
    NodeAttrs mergeShape;
    mergeShape.targetShape = {seq, hidden};
    NodeId flat = g.add(OpType::Reshape, {merged}, mergeShape);
    NodeId proj = dense(g, flat, hidden);
    NodeId attnOut = add(g, proj, x);

    // Feed-forward network.
    NodeId norm2 = g.add(OpType::LayerNorm, {attnOut});
    NodeId up = dense(g, norm2, ffn);
    NodeId act = g.add(OpType::Gelu, {up});
    NodeId down = dense(g, act, hidden);
    return add(g, down, attnOut);
}

void
finish(Graph &g, NodeId result)
{
    g.add(OpType::Output, {result});
    graph::optimize(g);
}

} // namespace gcd2::models
