/**
 * @file
 * The paper's matrix data layouts (Fig. 2) and their transformations.
 *
 * Each SIMD multiply instruction demands a specific panel layout of the
 * (logical row-major) operand matrix:
 *
 *  - OneColumn (vmpy): 128-row panels stored column-major. Loading one
 *    vector grabs one column of a panel; all 128 values multiply by the
 *    same splatted weight byte.
 *  - TwoColumn (vmpa): 64-row panels; two adjacent columns interleaved per
 *    row, so a vector pair covers 64 rows x 4 columns.
 *  - FourColumn (vrmpy): 32-row panels; four adjacent columns per row, so
 *    each 4-byte group is one vrmpy reduction input.
 *  - RowMajor: plain C order (the layout tensors arrive in).
 *
 * Rows pad to the panel height and columns to the column-group width; the
 * padded totals reproduce the "Total Data Size w/ Pad" column of Table II.
 */
#ifndef GCD2_TENSOR_LAYOUT_H
#define GCD2_TENSOR_LAYOUT_H

#include <cstdint>
#include <vector>

namespace gcd2::tensor {

/** Matrix storage layouts from the paper. */
enum class Layout : uint8_t
{
    RowMajor,
    OneColumn,  ///< vmpy: 128-row panels, column-major
    TwoColumn,  ///< vmpa: 64-row panels, column pairs
    FourColumn, ///< vrmpy: 32-row panels, column quads
};

const char *layoutName(Layout layout);

/** Panel height (row padding unit) of a layout. */
int layoutPanelRows(Layout layout);

/** Column group width (column padding unit) of a layout. */
int layoutColGroup(Layout layout);

/** Rows rounded up to the layout's panel height. */
int64_t paddedRows(Layout layout, int64_t rows);

/** Columns rounded up to the layout's column group. */
int64_t paddedCols(Layout layout, int64_t cols);

/** Total bytes of an int8 rows x cols matrix stored in @p layout. */
int64_t packedByteSize(Layout layout, int64_t rows, int64_t cols);

/**
 * Linear byte offset of logical element (r, c) in the packed buffer.
 * Padding positions are the offsets not reachable from valid (r, c).
 */
int64_t layoutOffset(Layout layout, int64_t rows, int64_t cols, int64_t r,
                     int64_t c);

/**
 * Pack a row-major int8 matrix into @p layout. The output buffer is
 * resized to packedByteSize and padding bytes are zero-filled (zero is the
 * additive identity of the accumulators, so padded lanes never corrupt
 * results).
 */
void packMatrix(const int8_t *rowMajor, int64_t rows, int64_t cols,
                Layout layout, std::vector<int8_t> &out);

/** Inverse of packMatrix. */
void unpackMatrix(const int8_t *packed, int64_t rows, int64_t cols,
                  Layout layout, std::vector<int8_t> &rowMajorOut);

/**
 * Transform a packed matrix directly between two layouts (the
 * "data transformation" whose cost the global optimizer weighs).
 */
void transformMatrix(const int8_t *packed, int64_t rows, int64_t cols,
                     Layout from, Layout to, std::vector<int8_t> &out);

/**
 * Estimated DSP cycles of transforming rows x cols int8 data from one
 * layout to another: every vector must be loaded, permuted, and stored
 * back. Zero when the layouts already agree.
 */
uint64_t layoutTransformCycles(Layout from, Layout to, int64_t rows,
                               int64_t cols);

} // namespace gcd2::tensor

#endif // GCD2_TENSOR_LAYOUT_H
