#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gcd2::tensor {

int64_t
roundShift(int64_t value, int shift)
{
    if (shift <= 0)
        return value;
    return (value + (int64_t{1} << (shift - 1))) >> shift;
}

int8_t
sat8(int32_t value)
{
    return static_cast<int8_t>(std::clamp(value, -128, 127));
}

int16_t
sat16(int64_t value)
{
    return static_cast<int16_t>(
        std::clamp<int64_t>(value, INT16_MIN, INT16_MAX));
}

int8_t
requantize16(int16_t acc, int shift)
{
    return sat8(static_cast<int32_t>(roundShift(acc, shift)));
}

int8_t
requantize32(int32_t acc, int shiftToHalf, int shiftToByte)
{
    const int16_t half = sat16(roundShift(acc, shiftToHalf));
    return sat8(static_cast<int32_t>(roundShift(half, shiftToByte)));
}

int
chooseShiftForRange(int64_t maxAbsAccumulator, int64_t targetMaxAbs)
{
    GCD2_REQUIRE(targetMaxAbs > 0, "target range must be positive");
    int shift = 0;
    int64_t v = maxAbsAccumulator;
    while (v > targetMaxAbs && shift < 31) {
        v >>= 1;
        ++shift;
    }
    return shift;
}

std::vector<int8_t>
quantizeLinear(const float *data, size_t n, const QuantParams &params)
{
    std::vector<int8_t> out(n);
    for (size_t i = 0; i < n; ++i) {
        const float scaled = data[i] / params.scale +
                             static_cast<float>(params.zeroPoint);
        out[i] = sat8(static_cast<int32_t>(std::lround(scaled)));
    }
    return out;
}

std::vector<float>
dequantizeLinear(const int8_t *data, size_t n, const QuantParams &params)
{
    std::vector<float> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = (static_cast<float>(data[i]) -
                  static_cast<float>(params.zeroPoint)) *
                 params.scale;
    return out;
}

QuantParams
chooseQuantParams(float minValue, float maxValue)
{
    GCD2_REQUIRE(minValue <= maxValue, "empty range");
    const float maxAbs =
        std::max(std::abs(minValue), std::abs(maxValue));
    QuantParams params;
    params.scale = maxAbs > 0.0f ? maxAbs / 127.0f : 1.0f;
    params.zeroPoint = 0;
    return params;
}

} // namespace gcd2::tensor
