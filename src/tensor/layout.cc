#include "tensor/layout.h"

#include "common/logging.h"
#include "dsp/isa.h"

namespace gcd2::tensor {

namespace {

int64_t
roundUp(int64_t v, int64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

} // namespace

const char *
layoutName(Layout layout)
{
    switch (layout) {
      case Layout::RowMajor:
        return "row_major";
      case Layout::OneColumn:
        return "1-column";
      case Layout::TwoColumn:
        return "2-column";
      case Layout::FourColumn:
        return "4-column";
    }
    return "?";
}

int
layoutPanelRows(Layout layout)
{
    switch (layout) {
      case Layout::RowMajor:
        return 1;
      case Layout::OneColumn:
        return 128;
      case Layout::TwoColumn:
        return 64;
      case Layout::FourColumn:
        return 32;
    }
    return 1;
}

int
layoutColGroup(Layout layout)
{
    switch (layout) {
      case Layout::RowMajor:
        return 1;
      case Layout::OneColumn:
        return 1;
      case Layout::TwoColumn:
        return 2;
      case Layout::FourColumn:
        return 4;
    }
    return 1;
}

int64_t
paddedRows(Layout layout, int64_t rows)
{
    return roundUp(rows, layoutPanelRows(layout));
}

int64_t
paddedCols(Layout layout, int64_t cols)
{
    return roundUp(cols, layoutColGroup(layout));
}

int64_t
packedByteSize(Layout layout, int64_t rows, int64_t cols)
{
    return paddedRows(layout, rows) * paddedCols(layout, cols);
}

int64_t
layoutOffset(Layout layout, int64_t rows, int64_t cols, int64_t r, int64_t c)
{
    GCD2_ASSERT(r >= 0 && r < rows && c >= 0 && c < cols,
                "element (" << r << ", " << c << ") outside " << rows << "x"
                            << cols);
    if (layout == Layout::RowMajor)
        return r * cols + c;

    const int64_t panel = layoutPanelRows(layout);
    const int64_t group = layoutColGroup(layout);
    const int64_t colsP = paddedCols(layout, cols);
    const int64_t panelBase = (r / panel) * panel * colsP;
    const int64_t groupBase = (c / group) * panel * group;
    return panelBase + groupBase + (r % panel) * group + (c % group);
}

void
packMatrix(const int8_t *rowMajor, int64_t rows, int64_t cols, Layout layout,
           std::vector<int8_t> &out)
{
    out.assign(static_cast<size_t>(packedByteSize(layout, rows, cols)), 0);
    for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < cols; ++c)
            out[static_cast<size_t>(layoutOffset(layout, rows, cols, r, c))] =
                rowMajor[r * cols + c];
}

void
unpackMatrix(const int8_t *packed, int64_t rows, int64_t cols, Layout layout,
             std::vector<int8_t> &rowMajorOut)
{
    rowMajorOut.assign(static_cast<size_t>(rows * cols), 0);
    for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < cols; ++c)
            rowMajorOut[static_cast<size_t>(r * cols + c)] = packed
                [static_cast<size_t>(layoutOffset(layout, rows, cols, r, c))];
}

void
transformMatrix(const int8_t *packed, int64_t rows, int64_t cols, Layout from,
                Layout to, std::vector<int8_t> &out)
{
    std::vector<int8_t> rowMajor;
    unpackMatrix(packed, rows, cols, from, rowMajor);
    packMatrix(rowMajor.data(), rows, cols, to, out);
}

uint64_t
layoutTransformCycles(Layout from, Layout to, int64_t rows, int64_t cols)
{
    if (from == to)
        return 0;
    // A panel-layout change is a strided gather/scatter: the bytes of one
    // output vector come from dozens of distinct source lines, so the
    // repack streams far below the sequential-copy rate (single permute
    // unit, single store port, poor locality). Effective throughput is on
    // the order of 3.5 bytes per cycle -- ~36 cycles per 128-byte vector.
    const int64_t inBytes = packedByteSize(from, rows, cols);
    const int64_t outBytes = packedByteSize(to, rows, cols);
    const int64_t vectors =
        (inBytes + outBytes + dsp::kVectorBytes - 1) / dsp::kVectorBytes;
    return static_cast<uint64_t>(36 * vectors + 16);
}

} // namespace gcd2::tensor
