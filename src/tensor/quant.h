/**
 * @file
 * Post-training quantization helpers.
 *
 * The reproduction follows the paper's setting: 8-bit weights and
 * activations, 16/32-bit accumulation, and a requantization epilogue that
 * the kernels implement with the narrowing vector shifts (VASRWH then
 * VASRHB). To keep the simulated epilogue exact, requantization uses
 * power-of-two scales (round-to-nearest shifts with saturation) -- the
 * same family of multiplier-free requantization used by integer-only
 * deployments when scales are constrained to powers of two.
 */
#ifndef GCD2_TENSOR_QUANT_H
#define GCD2_TENSOR_QUANT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcd2::tensor {

/** Affine quantization parameters of a tensor. */
struct QuantParams
{
    float scale = 1.0f;
    int32_t zeroPoint = 0;
};

/** Round-to-nearest arithmetic right shift (matches VASR semantics). */
int64_t roundShift(int64_t value, int shift);

/** Saturate to int8 / int16. */
int8_t sat8(int32_t value);
int16_t sat16(int64_t value);

/**
 * Requantize a 16-bit accumulator to int8 with one narrowing shift
 * (the VASRHB path used after vmpy/vmpa).
 */
int8_t requantize16(int16_t acc, int shift);

/**
 * Requantize a 32-bit accumulator to int8 through the two-stage
 * VASRWH -> VASRHB pipeline used after vrmpy.
 */
int8_t requantize32(int32_t acc, int shiftToHalf, int shiftToByte);

/**
 * Pick the smallest shift so that the largest-magnitude accumulator fits
 * int8 after requantize16/32 (kernel generators use this to derive
 * epilogue shifts from operand ranges).
 */
int chooseShiftForRange(int64_t maxAbsAccumulator, int64_t targetMaxAbs);

/** Quantize float data linearly to int8 with the given parameters. */
std::vector<int8_t> quantizeLinear(const float *data, size_t n,
                                   const QuantParams &params);

/** Dequantize int8 data back to float. */
std::vector<float> dequantizeLinear(const int8_t *data, size_t n,
                                    const QuantParams &params);

/** Derive symmetric quantization parameters from a float range. */
QuantParams chooseQuantParams(float minValue, float maxValue);

} // namespace gcd2::tensor

#endif // GCD2_TENSOR_QUANT_H
