/**
 * @file
 * Dense tensor container for the quantized DNN pipeline.
 *
 * Everything the compiler moves around is int8 activations / weights with
 * int32 accumulators (paper Section III: 8-bit operands, 16-bit products,
 * 32-bit accumulation, requantization to 8-bit outputs). Float is kept for
 * host-side reference math in tests.
 */
#ifndef GCD2_TENSOR_TENSOR_H
#define GCD2_TENSOR_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"

namespace gcd2::tensor {

/** Element types. */
enum class DType : uint8_t { Int8, UInt8, Int16, Int32, Float };

/** Bytes per element. */
constexpr int
dtypeSize(DType t)
{
    switch (t) {
      case DType::Int8:
      case DType::UInt8:
        return 1;
      case DType::Int16:
        return 2;
      case DType::Int32:
      case DType::Float:
        return 4;
    }
    return 0;
}

const char *dtypeName(DType t);

/** A tensor shape (row-major logical ordering). */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<int64_t> dims) : dims_(dims) { check(); }
    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims))
    {
        check();
    }

    int rank() const { return static_cast<int>(dims_.size()); }
    int64_t
    dim(int i) const
    {
        GCD2_REQUIRE(i >= 0 && i < rank(), "dim " << i << " out of range");
        return dims_[static_cast<size_t>(i)];
    }
    const std::vector<int64_t> &dims() const { return dims_; }

    int64_t
    elements() const
    {
        return std::accumulate(dims_.begin(), dims_.end(), int64_t{1},
                               std::multiplies<>());
    }

    bool operator==(const Shape &other) const = default;

    std::string toString() const;

  private:
    void
    check() const
    {
        for (int64_t d : dims_)
            GCD2_REQUIRE(d >= 0, "negative dimension in shape");
    }

    std::vector<int64_t> dims_;
};

/** A dense host tensor. */
class Tensor
{
  public:
    Tensor() = default;
    Tensor(DType dtype, Shape shape)
        : dtype_(dtype), shape_(std::move(shape)),
          data_(static_cast<size_t>(shape_.elements()) *
                static_cast<size_t>(dtypeSize(dtype)))
    {
    }

    DType dtype() const { return dtype_; }
    const Shape &shape() const { return shape_; }
    int64_t elements() const { return shape_.elements(); }
    size_t byteSize() const { return data_.size(); }

    uint8_t *raw() { return data_.data(); }
    const uint8_t *raw() const { return data_.data(); }

    template <typename T>
    T *
    data()
    {
        GCD2_ASSERT(sizeof(T) == static_cast<size_t>(dtypeSize(dtype_)),
                    "element size mismatch");
        return reinterpret_cast<T *>(data_.data());
    }

    template <typename T>
    const T *
    data() const
    {
        GCD2_ASSERT(sizeof(T) == static_cast<size_t>(dtypeSize(dtype_)),
                    "element size mismatch");
        return reinterpret_cast<const T *>(data_.data());
    }

  private:
    DType dtype_ = DType::Int8;
    Shape shape_;
    std::vector<uint8_t> data_;
};

} // namespace gcd2::tensor

#endif // GCD2_TENSOR_TENSOR_H
