#include "tensor/tensor.h"

#include <sstream>

namespace gcd2::tensor {

const char *
dtypeName(DType t)
{
    switch (t) {
      case DType::Int8:
        return "int8";
      case DType::UInt8:
        return "uint8";
      case DType::Int16:
        return "int16";
      case DType::Int32:
        return "int32";
      case DType::Float:
        return "float";
    }
    return "?";
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            oss << "x";
        oss << dims_[i];
    }
    oss << "]";
    return oss.str();
}

} // namespace gcd2::tensor
