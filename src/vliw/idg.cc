#include "vliw/idg.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace gcd2::vliw {

using dsp::DepKind;
using dsp::Dependency;

Idg::Idg(const dsp::Program &prog, const BasicBlock &block,
         const dsp::AliasAnalysis &alias, SoftDepPolicy policy)
    : block_(block)
{
    const size_t n = block.size();
    nodes_.resize(n);
    removed_.assign(n, false);
    remaining_ = n;

    for (size_t i = 0; i < n; ++i)
        nodes_[i].latency = prog.code[block.begin + i].info().latency;

    // Pairwise classification. Edges always point forward in program
    // order; transitively implied edges are kept (they are harmless for
    // freedom/critical-path queries and make penalty lookups direct).
    for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < j; ++i) {
            Dependency dep = dsp::classifyDependency(
                prog.code[block.begin + i], prog.code[block.begin + j],
                alias.mayAlias(block.begin + i, block.begin + j));
            if (dep.kind == DepKind::None)
                continue;
            if (policy == SoftDepPolicy::AsHard &&
                dep.kind == DepKind::Soft && dep.penalty > 0) {
                dep = Dependency{DepKind::Hard, 0};
            }
            nodes_[i].succs.push_back(
                IdgEdge{static_cast<int>(j), dep.kind, dep.penalty});
            nodes_[j].preds.push_back(
                IdgEdge{static_cast<int>(i), dep.kind, dep.penalty});
        }
    }

    // Keep every instruction at or before the block-terminating branch.
    if (n > 0 && prog.code[block.end - 1].isBranch()) {
        const size_t branch = n - 1;
        for (size_t i = 0; i + 1 < n; ++i) {
            const bool hasEdge = std::any_of(
                nodes_[i].succs.begin(), nodes_[i].succs.end(),
                [&](const IdgEdge &e) {
                    return e.other == static_cast<int>(branch);
                });
            if (!hasEdge) {
                // Ordering-only edge: co-packing with the branch is always
                // legal and free, under every policy.
                nodes_[i].succs.push_back(
                    IdgEdge{static_cast<int>(branch), DepKind::Soft, 0});
                nodes_[branch].preds.push_back(
                    IdgEdge{static_cast<int>(i), DepKind::Soft, 0});
            }
        }
    }

    // i.order: longest-path rank from the artificial entry. Nodes are in
    // topological (program) order already.
    for (size_t j = 0; j < n; ++j) {
        int order = 0;
        for (const IdgEdge &e : nodes_[j].preds)
            order = std::max(order, nodes_[e.other].order + 1);
        nodes_[j].order = order;
    }

    // i.pred: transitive predecessor count via forward bitset sweep.
    const size_t words = (n + 63) / 64;
    std::vector<uint64_t> reach(n * words, 0);
    for (size_t j = 0; j < n; ++j) {
        uint64_t *mine = reach.data() + j * words;
        for (const IdgEdge &e : nodes_[j].preds) {
            const uint64_t *theirs =
                reach.data() + static_cast<size_t>(e.other) * words;
            for (size_t w = 0; w < words; ++w)
                mine[w] |= theirs[w];
            mine[e.other / 64] |= 1ULL << (e.other % 64);
        }
        int count = 0;
        for (size_t w = 0; w < words; ++w)
            count += std::popcount(mine[w]);
        nodes_[j].predCount = count;
    }
}

void
Idg::remove(size_t i)
{
    GCD2_ASSERT(!removed_[i], "node " << i << " removed twice");
    removed_[i] = true;
    --remaining_;
}

std::vector<size_t>
Idg::criticalPath() const
{
    const size_t n = nodes_.size();
    // Longest accumulated latency from each remaining node to any exit,
    // computed in reverse topological (reverse program) order.
    std::vector<int64_t> dist(n, INT64_MIN);
    std::vector<int> next(n, -1);

    for (size_t ri = n; ri-- > 0;) {
        if (removed_[ri])
            continue;
        dist[ri] = nodes_[ri].latency;
        for (const IdgEdge &e : nodes_[ri].succs) {
            const auto j = static_cast<size_t>(e.other);
            if (removed_[j])
                continue;
            if (nodes_[ri].latency + dist[j] > dist[ri]) {
                dist[ri] = nodes_[ri].latency + dist[j];
                next[ri] = e.other;
            }
        }
    }

    // The path starts at the remaining *source* (no remaining preds) with
    // the largest distance.
    int best = -1;
    for (size_t i = 0; i < n; ++i) {
        if (removed_[i])
            continue;
        const bool isSource = std::none_of(
            nodes_[i].preds.begin(), nodes_[i].preds.end(),
            [&](const IdgEdge &e) {
                return !removed_[static_cast<size_t>(e.other)];
            });
        if (!isSource)
            continue;
        if (best < 0 || dist[i] > dist[static_cast<size_t>(best)])
            best = static_cast<int>(i);
    }

    std::vector<size_t> path;
    for (int cur = best; cur >= 0; cur = next[static_cast<size_t>(cur)])
        path.push_back(static_cast<size_t>(cur));
    return path;
}

bool
Idg::isFree(size_t i, const std::vector<size_t> &candidatePacket) const
{
    if (removed_[i])
        return false;
    for (const IdgEdge &e : nodes_[i].succs) {
        const auto j = static_cast<size_t>(e.other);
        const bool inPacket =
            std::find(candidatePacket.begin(), candidatePacket.end(), j) !=
            candidatePacket.end();
        if (inPacket) {
            // Successor shares the packet under construction: only legal
            // across a soft edge.
            if (e.kind != DepKind::Soft)
                return false;
        } else if (!removed_[j]) {
            return false;
        }
    }
    return true;
}

std::vector<size_t>
Idg::freeInstructions(const std::vector<size_t> &candidatePacket) const
{
    std::vector<size_t> free;
    freeInstructions(candidatePacket, free);
    return free;
}

void
Idg::freeInstructions(const std::vector<size_t> &candidatePacket,
                      std::vector<size_t> &out) const
{
    out.clear();
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const bool inPacket =
            std::find(candidatePacket.begin(), candidatePacket.end(), i) !=
            candidatePacket.end();
        if (!inPacket && isFree(i, candidatePacket))
            out.push_back(i);
    }
}

} // namespace gcd2::vliw
