#include "vliw/packer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dsp/timing_sim.h"

namespace gcd2::vliw {

namespace {

using dsp::DepKind;
using dsp::Packet;

/** Map packet-local node ids to sorted program instruction indices. */
std::vector<size_t>
toInstIndices(const Idg &idg, const std::vector<size_t> &nodes)
{
    std::vector<size_t> insts;
    insts.reserve(nodes.size());
    for (size_t n : nodes)
        insts.push_back(idg.instIndex(n));
    std::sort(insts.begin(), insts.end());
    return insts;
}

uint64_t
packetCostOf(const dsp::Program &prog, const dsp::AliasAnalysis &alias,
             const Idg &idg, const std::vector<size_t> &nodes)
{
    const Packet packet{toInstIndices(idg, nodes)};
    return dsp::TimingSimulator::packetCost(prog, packet, alias);
}

std::vector<std::vector<size_t>> listScheduleNodes(const dsp::Program &prog,
                                                   const Idg &idg);

/**
 * Algorithm 1, select_instruction: pick the most profitable free
 * instruction for the packet under construction, or -1 if none fits.
 */
int
selectInstruction(const dsp::Program &prog, const dsp::AliasAnalysis &alias,
                  const Idg &idg, const std::vector<size_t> &freeInsts,
                  const std::vector<size_t> &curPacket,
                  const PackOptions &opts, std::vector<size_t> &withScratch)
{
    // resource_constraint(free_insts, packet): candidates that satisfy the
    // slot constraints together with the packet members.
    const Packet current{toInstIndices(idg, curPacket)};

    int hiLat = 0;
    for (size_t n : curPacket)
        hiLat = std::max(hiLat, idg.node(n).latency);

    const uint64_t costWithout =
        packetCostOf(prog, alias, idg, curPacket);

    int best = -1;
    double bestScore = 0.0;
    bool bestStalls = false;
    int stallingCandidates = 0;
    for (size_t i : freeInsts) {
        if (!dsp::slotsFeasibleWith(prog, current, idg.instIndex(i)))
            continue;

        const IdgNode &node = idg.node(i);
        // Eq. 4: i.score = (i.order + i.pred) * w
        //                  - |hi_lat - i.lat| * (1 - w)
        double score =
            (node.order + node.predCount) * opts.w -
            std::abs(hiLat - node.latency) * (1.0 - opts.w);

        // p(i, packet): the stall the soft dependencies of i against the
        // current packet members would cause. (Caller-owned scratch: this
        // runs once per candidate per packet slot.)
        withScratch.assign(curPacket.begin(), curPacket.end());
        withScratch.push_back(i);
        const uint64_t costWith =
            packetCostOf(prog, alias, idg, withScratch);
        const uint64_t baseline =
            std::max(costWithout, static_cast<uint64_t>(node.latency));
        const bool stalls = costWith > baseline;
        if (stalls) {
            ++stallingCandidates;
            if (opts.policy != PackPolicy::SoftToNone) {
                // Lines 27-28 of Algorithm 1 (removed under soft_to_none).
                score -= static_cast<double>(costWith - baseline) *
                         opts.penaltyScale;
            }
        }

        // Paper line 29: ties go to the later (deeper) candidate.
        if (best < 0 || score >= bestScore) {
            best = static_cast<int>(i);
            bestScore = score;
            bestStalls = stalls;
        }
    }

    // "If a sufficient number of instructions are available without any
    // dependencies between them, we prefer to not pack instructions with
    // soft dependencies together": when every viable candidate would stall
    // this packet and at least two such candidates exist, close the packet
    // -- two mutually free instructions can share a later packet without
    // stalling, whereas a lone soft-dependent instruction is still better
    // packed here than issued alone (Fig. 4).
    if (opts.policy != PackPolicy::SoftToNone && bestStalls &&
        stallingCandidates >= 2) {
        return -1;
    }
    return best;
}

} // namespace

/**
 * Pipelined cost of one pass over a block schedule, mirroring the timing
 * simulator's issue/interlock model: packets issue at most one per cycle,
 * stall until cross-packet source operands are written back, and pay the
 * Fig. 4 overlap penalty for intra-packet soft dependencies.
 *
 * @p belief is the scheduler's model of soft dependencies, not the
 * hardware's: the soft_to_none ablation *believes* soft dependencies cost
 * nothing (scalar results available immediately, no co-packing penalty),
 * so its schedules optimize the wrong objective and pay real stalls at
 * execution time -- exactly the paper's ablation semantics.
 */
uint64_t
pipelinedBlockCost(const dsp::Program &prog, const dsp::AliasAnalysis &alias,
                   const Idg &idg,
                   const std::vector<std::vector<size_t>> &packets,
                   SoftDepPolicy belief)
{
    const bool ignoreSoft = belief == SoftDepPolicy::AsNone;
    std::vector<uint64_t> ready(
        static_cast<size_t>(dsp::kNumScalarRegs + dsp::kNumVectorRegs), 0);
    uint64_t issue = 0;
    uint64_t completion = 0;
    bool first = true;

    std::vector<size_t> insts;
    std::vector<int> delay;
    for (const auto &nodes : packets) {
        insts = toInstIndices(idg, nodes);
        delay.assign(insts.size(), 0);
        uint64_t minIssue = first ? 0 : issue + 1;
        for (size_t k = 0; k < insts.size(); ++k) {
            for (size_t m = 0; m < k; ++m) {
                const dsp::Dependency dep = dsp::classifyDependency(
                    prog.code[insts[m]], prog.code[insts[k]],
                    alias.mayAlias(insts[m], insts[k]));
                if (!ignoreSoft && dep.kind == DepKind::Soft &&
                    dep.penalty > 0)
                    delay[k] = std::max(delay[k], delay[m] + dep.penalty);
            }
            for (int uid : dsp::regReads(prog.code[insts[k]]))
                minIssue = std::max(minIssue,
                                    ready[static_cast<size_t>(uid)]);
        }
        issue = minIssue;
        first = false;
        for (size_t k = 0; k < insts.size(); ++k) {
            const uint64_t done =
                issue + static_cast<uint64_t>(delay[k]) +
                static_cast<uint64_t>(prog.code[insts[k]].info().latency);
            completion = std::max(completion, done);
            for (int uid : dsp::regWrites(prog.code[insts[k]])) {
                // Soft (scalar) results look immediately available to the
                // soft-blind belief model.
                ready[static_cast<size_t>(uid)] =
                    (ignoreSoft && uid < dsp::kNumScalarRegs) ? issue + 1
                                                              : done;
            }
        }
    }
    return completion;
}

/**
 * Post-scheduling repair: greedy bottom-up packing sometimes leaves
 * schedules with avoidable interlock stalls or co-packed stalls. Try to
 * move single instructions between packets (or into fresh packets) when
 * the move is dependence-legal, slot-feasible, and reduces the block's
 * pipelined cost.
 */
void
improveBlockSchedule(const dsp::Program &prog,
                     const dsp::AliasAnalysis &alias, const Idg &idg,
                     std::vector<std::vector<size_t>> &packets,
                     SoftDepPolicy belief)
{
    const size_t n = idg.size();

    std::vector<size_t> packetOf(n, 0);
    auto rebuildIndex = [&]() {
        for (size_t p = 0; p < packets.size(); ++p)
            for (size_t node : packets[p])
                packetOf[node] = p;
    };
    rebuildIndex();

    auto legalIn = [&](size_t node, size_t target) {
        // Producers must complete in earlier packets, or share the target
        // packet through a soft edge; consumers symmetrically.
        for (const IdgEdge &e : idg.node(node).preds) {
            const size_t p = packetOf[static_cast<size_t>(e.other)];
            if (p > target ||
                (p == target && e.kind != dsp::DepKind::Soft))
                return false;
        }
        for (const IdgEdge &e : idg.node(node).succs) {
            const size_t p = packetOf[static_cast<size_t>(e.other)];
            if (p < target ||
                (p == target && e.kind != dsp::DepKind::Soft))
                return false;
        }
        return true;
    };

    uint64_t bestCost =
        pipelinedBlockCost(prog, alias, idg, packets, belief);
    bool changed = true;
    for (int round = 0; round < 6 && changed; ++round) {
        changed = false;
        for (size_t p = 0; p < packets.size(); ++p) {
            // Signed: the restart decrement below may take slot to -1
            // (rescan from the front); an unsigned index would wrap and
            // trip the structure-changed guard, silently abandoning the
            // rest of this packet's repair round.
            for (ptrdiff_t slot = 0;
                 slot < static_cast<ptrdiff_t>(packets[p].size());
                 ++slot) {
                const size_t node =
                    packets[p][static_cast<size_t>(slot)];

                // Candidate targets: every other packet.
                for (size_t q = 0; q < packets.size(); ++q) {
                    if (q == p)
                        continue;
                    std::vector<size_t> with = packets[q];
                    with.push_back(node);
                    if (!dsp::slotsFeasible(prog,
                                            toInstIndices(idg, with)))
                        continue;
                    packetOf[node] = q;
                    const bool legal = legalIn(node, q);
                    if (!legal) {
                        packetOf[node] = p;
                        continue;
                    }
                    // Apply tentatively.
                    packets[q].push_back(node);
                    packets[p].erase(packets[p].begin() + slot);
                    const bool erased = packets[p].empty();
                    std::vector<std::vector<size_t>> trial = packets;
                    if (erased)
                        trial.erase(trial.begin() +
                                    static_cast<long>(p));
                    const uint64_t cost =
                        pipelinedBlockCost(prog, alias, idg, trial, belief);
                    if (cost < bestCost ||
                        (erased && cost <= bestCost)) {
                        bestCost = cost;
                        if (erased) {
                            packets = std::move(trial);
                            rebuildIndex();
                        }
                        changed = true;
                        // Node moved: restart scanning this packet slot.
                        --slot;
                        break;
                    }
                    // Revert.
                    packets[q].pop_back();
                    packets[p].insert(packets[p].begin() + slot, node);
                    packetOf[node] = p;
                }
                if (packets.size() <= p ||
                    static_cast<ptrdiff_t>(packets[p].size()) <= slot)
                    break; // structure changed under us
            }
        }
    }
}

namespace {

/** Bottom-up Algorithm 1 construction (consumes a fresh IDG). */
std::vector<std::vector<size_t>>
buildSdaSchedule(const dsp::Program &prog, const BasicBlock &block,
                 const dsp::AliasAnalysis &alias, const PackOptions &opts)
{
    const SoftDepPolicy graphPolicy = opts.policy == PackPolicy::SoftToHard
                                          ? SoftDepPolicy::AsHard
                                          : SoftDepPolicy::Aware;
    Idg idg(prog, block, alias, graphPolicy);

    // Packets are created bottom-up (the seed is the *last* unpacked
    // instruction of the critical path) and pushed onto a stack. The
    // free-set and candidate-packet scratch vectors are hoisted out of
    // the per-packet loop and reused across iterations.
    std::vector<std::vector<size_t>> stack;
    std::vector<size_t> freeInsts;
    std::vector<size_t> withScratch;
    while (idg.remainingCount() > 0) {
        const std::vector<size_t> path = idg.criticalPath();
        GCD2_ASSERT(!path.empty(), "no critical path with nodes remaining");
        const size_t seed = path.back();

        std::vector<size_t> cur{seed};
        idg.remove(seed);
        while (cur.size() < static_cast<size_t>(dsp::kPacketSlots)) {
            idg.freeInstructions(cur, freeInsts);
            const int inst = selectInstruction(prog, alias, idg, freeInsts,
                                               cur, opts, withScratch);
            if (inst < 0)
                break;
            cur.push_back(static_cast<size_t>(inst));
            idg.remove(static_cast<size_t>(inst));
        }
        stack.push_back(std::move(cur));
    }
    // Creation order is bottom-up; reverse into execution order.
    return {stack.rbegin(), stack.rend()};
}

/** The SDA family (Sda / SoftToHard / SoftToNone): Algorithm 1 plus the
 *  believed-cost repair pass and candidate selection. */
std::vector<Packet>
packBlockSda(const dsp::Program &prog, const BasicBlock &block,
             const dsp::AliasAnalysis &alias, const PackOptions &opts)
{
    const SoftDepPolicy graphPolicy = opts.policy == PackPolicy::SoftToHard
                                          ? SoftDepPolicy::AsHard
                                          : SoftDepPolicy::Aware;
    // A non-consumed IDG for structure queries (repair, cost, emission).
    Idg idg(prog, block, alias, graphPolicy);

    // Each policy repairs its candidates under its *believed* model of
    // soft dependencies; the ablations optimize wrong beliefs and pay the
    // difference at execution time.
    const SoftDepPolicy belief = opts.policy == PackPolicy::SoftToNone
                                     ? SoftDepPolicy::AsNone
                                     : opts.policy == PackPolicy::SoftToHard
                                           ? SoftDepPolicy::AsHard
                                           : SoftDepPolicy::Aware;

    std::vector<std::vector<std::vector<size_t>>> candidates;
    candidates.push_back(buildSdaSchedule(prog, block, alias, opts));
    candidates.push_back(listScheduleNodes(prog, idg));
    const size_t believedCount = candidates.size();
    if (opts.policy == PackPolicy::Sda) {
        // The full packer also considers the constructions the ablations
        // would produce (soft-blind and soft-conservative), each repaired
        // along its own trajectory -- all judged under the true cost
        // below, so SDA's candidate set dominates both ablations'.
        PackOptions blind = opts;
        blind.policy = PackPolicy::SoftToNone;
        PackOptions conservative = opts;
        conservative.policy = PackPolicy::SoftToHard;
        candidates.push_back(buildSdaSchedule(prog, block, alias, blind));
        candidates.push_back(candidates[1]);
        candidates.push_back(
            buildSdaSchedule(prog, block, alias, conservative));
        // Exact clone of the soft_to_hard pipeline (its restricted IDG
        // constrains the repair differently than the aware one).
        Idg idgHard(prog, block, alias, SoftDepPolicy::AsHard);
        candidates.push_back(candidates[4]); // hard construction, hard repair
        candidates.push_back(candidates[1]); // list schedule, hard repair
        improveBlockSchedule(prog, alias, idg, candidates[2],
                             SoftDepPolicy::AsNone);
        improveBlockSchedule(prog, alias, idg, candidates[3],
                             SoftDepPolicy::AsNone);
        improveBlockSchedule(prog, alias, idg, candidates[4],
                             SoftDepPolicy::Aware);
        improveBlockSchedule(prog, alias, idgHard, candidates[5],
                             SoftDepPolicy::AsHard);
        improveBlockSchedule(prog, alias, idgHard, candidates[6],
                             SoftDepPolicy::AsHard);
    }
    for (size_t c = 0; c < believedCount; ++c)
        improveBlockSchedule(prog, alias, idg, candidates[c], belief);

    size_t bestIdx = 0;
    uint64_t bestCost = UINT64_MAX;
    for (size_t c = 0; c < candidates.size(); ++c) {
        const uint64_t cost =
            pipelinedBlockCost(prog, alias, idg, candidates[c], belief);
        if (cost < bestCost) {
            bestCost = cost;
            bestIdx = c;
        }
    }
    const auto &ordered = candidates[bestIdx];

    std::vector<Packet> packets;
    packets.reserve(ordered.size());
    for (const auto &nodes : ordered)
        packets.push_back(Packet{toInstIndices(idg, nodes)});
    return packets;
}

/** Is co-packing node @p i with packet member @p m legal (baselines)? */
bool
baselineCoPackLegal(const Idg &idg, size_t m, size_t i)
{
    // Edges always point from the lower program index to the higher one.
    const size_t lo = std::min(m, i);
    const size_t hi = std::max(m, i);
    for (const IdgEdge &e : idg.node(lo).succs) {
        if (static_cast<size_t>(e.other) != hi)
            continue;
        // Under the AsHard graph policy the surviving soft edges are the
        // free ordering/WAR ones; anything else blocks co-packing.
        if (e.kind != DepKind::Soft || e.penalty > 0)
            return false;
    }
    return true;
}

/** Greedy in-order packetizer (Halide-style LLVM back-end). */
std::vector<Packet>
packBlockInOrder(const dsp::Program &prog, const BasicBlock &block,
                 const dsp::AliasAnalysis &alias)
{
    Idg idg(prog, block, alias, SoftDepPolicy::AsHard);

    std::vector<Packet> packets;
    std::vector<size_t> cur; // node ids
    auto flush = [&]() {
        if (!cur.empty()) {
            packets.push_back(Packet{toInstIndices(idg, cur)});
            cur.clear();
        }
    };

    for (size_t i = 0; i < idg.size(); ++i) {
        bool fits = cur.size() < static_cast<size_t>(dsp::kPacketSlots);
        for (size_t m : cur)
            fits = fits && baselineCoPackLegal(idg, m, i);
        if (fits) {
            const Packet current{toInstIndices(idg, cur)};
            fits = dsp::slotsFeasibleWith(prog, current, idg.instIndex(i));
        }
        if (!fits)
            flush();
        cur.push_back(i);
    }
    flush();
    return packets;
}

/** Top-down critical-path list scheduling over an existing IDG,
 *  returning packet node lists (candidate generator). */
std::vector<std::vector<size_t>>
listScheduleNodes(const dsp::Program &prog, const Idg &idg)
{
    const size_t n = idg.size();

    // Priority: longest latency path to any exit (static).
    std::vector<int64_t> height(n, 0);
    for (size_t ri = n; ri-- > 0;) {
        height[ri] = idg.node(ri).latency;
        for (const IdgEdge &e : idg.node(ri).succs) {
            height[ri] = std::max(
                height[ri],
                idg.node(ri).latency + height[static_cast<size_t>(e.other)]);
        }
    }

    std::vector<bool> done(n, false);
    std::vector<std::vector<size_t>> packets;
    size_t scheduled = 0;
    while (scheduled < n) {
        // Ready set: all predecessors already completed in prior packets.
        std::vector<size_t> ready;
        for (size_t i = 0; i < n; ++i) {
            if (done[i])
                continue;
            const bool isReady = std::all_of(
                idg.node(i).preds.begin(), idg.node(i).preds.end(),
                [&](const IdgEdge &e) {
                    return done[static_cast<size_t>(e.other)];
                });
            if (isReady)
                ready.push_back(i);
        }
        GCD2_ASSERT(!ready.empty(), "list scheduler deadlock");
        std::sort(ready.begin(), ready.end(), [&](size_t a, size_t b) {
            return height[a] != height[b] ? height[a] > height[b] : a < b;
        });

        std::vector<size_t> cur;
        for (size_t i : ready) {
            if (cur.size() == static_cast<size_t>(dsp::kPacketSlots))
                break;
            const Packet current{toInstIndices(idg, cur)};
            if (dsp::slotsFeasibleWith(prog, current, idg.instIndex(i)))
                cur.push_back(i);
        }
        for (size_t i : cur)
            done[i] = true;
        scheduled += cur.size();
        packets.push_back(std::move(cur));
    }
    return packets;
}

/** The TVM/RAKE-style baseline: soft-dependency-blind list scheduling. */
std::vector<Packet>
packBlockListSched(const dsp::Program &prog, const BasicBlock &block,
                   const dsp::AliasAnalysis &alias)
{
    Idg idg(prog, block, alias, SoftDepPolicy::AsHard);
    std::vector<Packet> packets;
    for (const auto &nodes : listScheduleNodes(prog, idg))
        packets.push_back(Packet{toInstIndices(idg, nodes)});
    return packets;
}

} // namespace

dsp::PackedProgram
packReference(const dsp::Program &prog, const PackOptions &opts)
{
    dsp::PackedProgram packed;
    packed.program = prog;

    const dsp::AliasAnalysis alias(prog);
    const Cfg cfg = buildCfg(prog);

    // Remember which packet each block begins at for label resolution.
    std::vector<size_t> blockStartPacket;
    blockStartPacket.reserve(cfg.blocks.size());

    for (const BasicBlock &block : cfg.blocks) {
        blockStartPacket.push_back(packed.packets.size());
        std::vector<Packet> blockPackets;
        switch (opts.policy) {
          case PackPolicy::Sda:
          case PackPolicy::SoftToHard:
          case PackPolicy::SoftToNone:
            blockPackets = packBlockSda(prog, block, alias, opts);
            break;
          case PackPolicy::InOrder:
            blockPackets = packBlockInOrder(prog, block, alias);
            break;
          case PackPolicy::ListSched:
            blockPackets = packBlockListSched(prog, block, alias);
            break;
        }
        for (auto &packet : blockPackets)
            packed.packets.push_back(std::move(packet));
    }

    packed.labelPacket.resize(prog.labels.size());
    for (size_t l = 0; l < prog.labels.size(); ++l) {
        const size_t target = prog.labels[l];
        if (target == prog.code.size()) {
            packed.labelPacket[l] = packed.packets.size();
            continue;
        }
        bool found = false;
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            if (cfg.blocks[b].begin == target) {
                packed.labelPacket[l] = blockStartPacket[b];
                found = true;
                break;
            }
        }
        GCD2_ASSERT(found, "label " << l << " is not a block leader");
    }
    return packed;
}

const char *
packPolicyName(PackPolicy policy)
{
    switch (policy) {
      case PackPolicy::Sda:
        return "SDA";
      case PackPolicy::SoftToHard:
        return "soft_to_hard";
      case PackPolicy::SoftToNone:
        return "soft_to_none";
      case PackPolicy::InOrder:
        return "in_order";
      case PackPolicy::ListSched:
        return "list_sched";
    }
    return "?";
}

} // namespace gcd2::vliw
