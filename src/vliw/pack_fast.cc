/**
 * @file
 * Scalable implementation of vliw::pack() on top of FastIdg.
 *
 * Every routine here is a bit-identical mirror of its counterpart in
 * packer.cc (the retained reference path, vliw::packReference): the same
 * candidate ensemble, the same Eq. 4 scoring expression evaluated in the
 * same floating-point order, the same tie-breaks, the same repair
 * trajectory. What changes is the machinery underneath:
 *
 *  - dependency queries go through FastIdg's chain-built CSR graph and
 *    mask-based pair classification instead of all-pairs
 *    classifyDependency calls (which allocate four uid vectors per pair);
 *  - packet construction uses the incremental free set and cached
 *    critical-path distances (no per-packet O(n^2) rescans);
 *  - cost evaluation (packetCost / pipelinedBlockCost mirrors) runs on
 *    fixed-size stack arrays, and the repair pass models the
 *    "erase-empty-packet" trial with a skip index instead of copying the
 *    whole schedule per candidate move.
 *
 * Intra-packet stall charging deliberately does NOT consult the FastIdg
 * edge set: a transitively implied scalar-RAW pair (a writes r, b
 * rewrites r, c reads r) has no chain edge (a, c) yet still stalls when a
 * and c share a packet without b. copackDelay() classifies the pair
 * directly from the register masks, exactly like the reference's
 * classifyDependency calls.
 *
 * Differential fuzz across all five policies
 * (tests/vliw/pack_differential_test.cc) enforces pack() ==
 * packReference() on the full PackedProgram.
 */
#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "vliw/fast_idg.h"
#include "vliw/packer.h"

namespace gcd2::vliw {

namespace {

using dsp::Packet;

constexpr size_t kSlots = static_cast<size_t>(dsp::kPacketSlots);
constexpr size_t kNoSkip = static_cast<size_t>(-1);

/** Map packet-local node ids to sorted program instruction indices. */
std::vector<size_t>
toInstIndices(const FastIdg &idg, const std::vector<size_t> &nodes)
{
    std::vector<size_t> insts;
    insts.reserve(nodes.size());
    for (size_t n : nodes)
        insts.push_back(idg.instIndex(n));
    std::sort(insts.begin(), insts.end());
    return insts;
}

/**
 * TimingSimulator::packetCost on ascending node ids (ascending node id ==
 * ascending instruction index within one block, so the delay recurrence
 * visits pairs in the same order as the reference).
 */
uint64_t
packetCostNodes(const FastIdg &idg, const size_t *nodes, size_t count)
{
    std::array<int, kSlots> delay{};
    uint64_t cost = 0;
    for (size_t k = 0; k < count; ++k) {
        delay[k] = 0;
        for (size_t m = 0; m < k; ++m) {
            const int pen = idg.copackDelay(nodes[m], nodes[k]);
            if (pen > 0)
                delay[k] = std::max(delay[k], delay[m] + pen);
        }
        cost = std::max(
            cost, static_cast<uint64_t>(delay[k] + idg.latency(nodes[k])));
    }
    return cost;
}

/** selectInstruction mirror (Algorithm 1, select_instruction). */
int
selectInstructionFast(const dsp::Program &prog, const FastIdg &idg,
                      const std::vector<size_t> &freeInsts,
                      const size_t *curSorted, size_t curCount,
                      const PackOptions &opts)
{
    Packet current;
    current.insts.reserve(curCount);
    for (size_t k = 0; k < curCount; ++k)
        current.insts.push_back(idg.instIndex(curSorted[k]));

    int hiLat = 0;
    for (size_t k = 0; k < curCount; ++k)
        hiLat = std::max(hiLat, idg.latency(curSorted[k]));

    const uint64_t costWithout = packetCostNodes(idg, curSorted, curCount);

    int best = -1;
    double bestScore = 0.0;
    bool bestStalls = false;
    int stallingCandidates = 0;
    std::array<size_t, kSlots> with{};
    for (size_t i : freeInsts) {
        if (!dsp::slotsFeasibleWith(prog, current, idg.instIndex(i)))
            continue;

        // Eq. 4, in the reference's exact floating-point order.
        double score =
            (idg.order(i) + idg.predCount(i)) * opts.w -
            std::abs(hiLat - idg.latency(i)) * (1.0 - opts.w);

        // Merge candidate i into the sorted members.
        size_t w = 0;
        while (w < curCount && curSorted[w] < i) {
            with[w] = curSorted[w];
            ++w;
        }
        with[w] = i;
        for (size_t k = w; k < curCount; ++k)
            with[k + 1] = curSorted[k];

        const uint64_t costWith =
            packetCostNodes(idg, with.data(), curCount + 1);
        const uint64_t baseline = std::max(
            costWithout, static_cast<uint64_t>(idg.latency(i)));
        const bool stalls = costWith > baseline;
        if (stalls) {
            ++stallingCandidates;
            if (opts.policy != PackPolicy::SoftToNone) {
                score -= static_cast<double>(costWith - baseline) *
                         opts.penaltyScale;
            }
        }

        if (best < 0 || score >= bestScore) {
            best = static_cast<int>(i);
            bestScore = score;
            bestStalls = stalls;
        }
    }

    if (opts.policy != PackPolicy::SoftToNone && bestStalls &&
        stallingCandidates >= 2) {
        return -1;
    }
    return best;
}

/** buildSdaSchedule mirror; consumes its (by-value) graph copy. */
std::vector<std::vector<size_t>>
buildSdaFast(const dsp::Program &prog, FastIdg idg, const PackOptions &opts)
{
    std::vector<std::vector<size_t>> stack;
    std::vector<size_t> freeInsts;
    while (idg.remainingCount() > 0) {
        const size_t seed = idg.criticalSeed();

        std::vector<size_t> cur{seed};
        std::array<size_t, kSlots> sorted{};
        sorted[0] = seed;
        idg.beginPacket();
        idg.take(seed);
        while (cur.size() < kSlots) {
            idg.collectFree(freeInsts);
            const int inst = selectInstructionFast(
                prog, idg, freeInsts, sorted.data(), cur.size(), opts);
            if (inst < 0)
                break;
            const auto node = static_cast<size_t>(inst);
            size_t w = cur.size();
            while (w > 0 && sorted[w - 1] > node) {
                sorted[w] = sorted[w - 1];
                --w;
            }
            sorted[w] = node;
            cur.push_back(node);
            idg.take(node);
        }
        stack.push_back(std::move(cur));
    }
    return {stack.rbegin(), stack.rend()};
}

/**
 * pipelinedBlockCost mirror. @p skipPacket models the reference repair
 * pass's "erase the emptied packet" trial without copying the schedule
 * (an erased empty packet contributes nothing -- not even the issue-slot
 * advance a kept empty packet pays).
 */
uint64_t
blockCostFast(const FastIdg &idg,
              const std::vector<std::vector<size_t>> &packets,
              SoftDepPolicy belief, size_t skipPacket)
{
    const bool ignoreSoft = belief == SoftDepPolicy::AsNone;
    std::array<uint64_t, dsp::kNumRegUids> ready{};
    uint64_t issue = 0;
    uint64_t completion = 0;
    bool first = true;

    std::array<size_t, kSlots> sorted{};
    std::array<int, kSlots> delay{};
    for (size_t p = 0; p < packets.size(); ++p) {
        if (p == skipPacket)
            continue;
        const auto &nodes = packets[p];
        const size_t count = nodes.size();
        GCD2_ASSERT(count <= kSlots, "oversized packet in block cost");
        for (size_t k = 0; k < count; ++k) {
            size_t w = k;
            while (w > 0 && sorted[w - 1] > nodes[k]) {
                sorted[w] = sorted[w - 1];
                --w;
            }
            sorted[w] = nodes[k];
        }

        uint64_t minIssue = first ? 0 : issue + 1;
        for (size_t k = 0; k < count; ++k) {
            delay[k] = 0;
            if (!ignoreSoft) {
                for (size_t m = 0; m < k; ++m) {
                    const int pen = idg.copackDelay(sorted[m], sorted[k]);
                    if (pen > 0)
                        delay[k] = std::max(delay[k], delay[m] + pen);
                }
            }
            for (uint64_t bits = idg.readMask(sorted[k]); bits != 0;
                 bits &= bits - 1) {
                minIssue = std::max(
                    minIssue,
                    ready[static_cast<size_t>(std::countr_zero(bits))]);
            }
        }
        issue = minIssue;
        first = false;
        for (size_t k = 0; k < count; ++k) {
            const uint64_t done =
                issue + static_cast<uint64_t>(delay[k]) +
                static_cast<uint64_t>(idg.latency(sorted[k]));
            completion = std::max(completion, done);
            for (uint64_t bits = idg.writeMask(sorted[k]); bits != 0;
                 bits &= bits - 1) {
                const auto uid =
                    static_cast<size_t>(std::countr_zero(bits));
                ready[uid] = (ignoreSoft && uid < static_cast<size_t>(
                                                      dsp::kNumScalarRegs))
                                 ? issue + 1
                                 : done;
            }
        }
    }
    return completion;
}

/** improveBlockSchedule mirror (same move order, same accept rule). */
void
improveFast(const dsp::Program &prog, const FastIdg &idg,
            std::vector<std::vector<size_t>> &packets, SoftDepPolicy belief)
{
    const size_t n = idg.size();

    std::vector<size_t> packetOf(n, 0);
    auto rebuildIndex = [&]() {
        for (size_t p = 0; p < packets.size(); ++p)
            for (size_t node : packets[p])
                packetOf[node] = p;
    };
    rebuildIndex();

    auto legalIn = [&](size_t node, size_t target) {
        const FastIdg::EdgeList preds = idg.predList(node);
        for (size_t e = 0; e < preds.count; ++e) {
            const size_t p = packetOf[static_cast<size_t>(preds.dst[e])];
            if (p > target || (p == target && preds.hard[e]))
                return false;
        }
        const FastIdg::EdgeList succs = idg.succList(node);
        for (size_t e = 0; e < succs.count; ++e) {
            const size_t p = packetOf[static_cast<size_t>(succs.dst[e])];
            if (p < target || (p == target && succs.hard[e]))
                return false;
        }
        return true;
    };

    std::vector<size_t> withInsts;
    uint64_t bestCost = blockCostFast(idg, packets, belief, kNoSkip);
    bool changed = true;
    for (int round = 0; round < 6 && changed; ++round) {
        changed = false;
        for (size_t p = 0; p < packets.size(); ++p) {
            for (ptrdiff_t slot = 0;
                 slot < static_cast<ptrdiff_t>(packets[p].size());
                 ++slot) {
                const size_t node =
                    packets[p][static_cast<size_t>(slot)];

                for (size_t q = 0; q < packets.size(); ++q) {
                    if (q == p)
                        continue;
                    // slotsFeasible rejects >4 instructions outright;
                    // skip building the list for full packets.
                    if (packets[q].size() >= kSlots)
                        continue;
                    withInsts.clear();
                    for (size_t member : packets[q])
                        withInsts.push_back(idg.instIndex(member));
                    withInsts.push_back(idg.instIndex(node));
                    std::sort(withInsts.begin(), withInsts.end());
                    if (!dsp::slotsFeasible(prog, withInsts))
                        continue;
                    packetOf[node] = q;
                    const bool legal = legalIn(node, q);
                    if (!legal) {
                        packetOf[node] = p;
                        continue;
                    }
                    packets[q].push_back(node);
                    packets[p].erase(packets[p].begin() + slot);
                    const bool erased = packets[p].empty();
                    const uint64_t cost = blockCostFast(
                        idg, packets, belief, erased ? p : kNoSkip);
                    if (cost < bestCost ||
                        (erased && cost <= bestCost)) {
                        bestCost = cost;
                        if (erased) {
                            packets.erase(packets.begin() +
                                          static_cast<long>(p));
                            rebuildIndex();
                        }
                        changed = true;
                        --slot;
                        break;
                    }
                    packets[q].pop_back();
                    packets[p].insert(packets[p].begin() + slot, node);
                    packetOf[node] = p;
                }
                if (packets.size() <= p ||
                    static_cast<ptrdiff_t>(packets[p].size()) <= slot)
                    break; // structure changed under us
            }
        }
    }
}

/** listScheduleNodes mirror with incremental remaining-pred counts. */
std::vector<std::vector<size_t>>
listScheduleFast(const dsp::Program &prog, const FastIdg &idg)
{
    const size_t n = idg.size();

    std::vector<int64_t> height(n, 0);
    for (size_t ri = n; ri-- > 0;) {
        height[ri] = idg.latency(ri);
        const FastIdg::EdgeList succs = idg.succList(ri);
        for (size_t e = 0; e < succs.count; ++e) {
            height[ri] = std::max(
                height[ri],
                idg.latency(ri) +
                    height[static_cast<size_t>(succs.dst[e])]);
        }
    }

    std::vector<int32_t> predRemaining(n);
    for (size_t i = 0; i < n; ++i)
        predRemaining[i] = static_cast<int32_t>(idg.predList(i).count);

    std::vector<bool> done(n, false);
    std::vector<std::vector<size_t>> packets;
    std::vector<size_t> ready;
    size_t scheduled = 0;
    while (scheduled < n) {
        ready.clear();
        for (size_t i = 0; i < n; ++i)
            if (!done[i] && predRemaining[i] == 0)
                ready.push_back(i);
        GCD2_ASSERT(!ready.empty(), "list scheduler deadlock");
        std::sort(ready.begin(), ready.end(), [&](size_t a, size_t b) {
            return height[a] != height[b] ? height[a] > height[b] : a < b;
        });

        std::vector<size_t> cur;
        for (size_t i : ready) {
            if (cur.size() == kSlots)
                break;
            const Packet current{toInstIndices(idg, cur)};
            if (dsp::slotsFeasibleWith(prog, current, idg.instIndex(i)))
                cur.push_back(i);
        }
        for (size_t i : cur) {
            done[i] = true;
            const FastIdg::EdgeList succs = idg.succList(i);
            for (size_t e = 0; e < succs.count; ++e)
                --predRemaining[static_cast<size_t>(succs.dst[e])];
        }
        scheduled += cur.size();
        packets.push_back(std::move(cur));
    }
    return packets;
}

/** packBlockSda mirror: Algorithm 1 + candidate ensemble + repair. */
std::vector<Packet>
packBlockSdaFast(const dsp::Program &prog, const BasicBlock &block,
                 const dsp::AliasAnalysis &alias, const PackOptions &opts)
{
    const SoftDepPolicy graphPolicy = opts.policy == PackPolicy::SoftToHard
                                          ? SoftDepPolicy::AsHard
                                          : SoftDepPolicy::Aware;
    // One chain construction per block; every consumed candidate build
    // takes a by-value copy, and the AsHard ensemble view is a cheap
    // kind-only transform of the same graph.
    FastIdg idg(prog, block, alias, graphPolicy);

    const SoftDepPolicy belief = opts.policy == PackPolicy::SoftToNone
                                     ? SoftDepPolicy::AsNone
                                     : opts.policy == PackPolicy::SoftToHard
                                           ? SoftDepPolicy::AsHard
                                           : SoftDepPolicy::Aware;

    std::vector<std::vector<std::vector<size_t>>> candidates;
    candidates.push_back(buildSdaFast(prog, idg, opts));
    candidates.push_back(listScheduleFast(prog, idg));
    const size_t believedCount = candidates.size();
    if (opts.policy == PackPolicy::Sda) {
        PackOptions blind = opts;
        blind.policy = PackPolicy::SoftToNone;
        PackOptions conservative = opts;
        conservative.policy = PackPolicy::SoftToHard;
        // The conservative construction runs on the AsHard graph, exactly
        // like the reference's fresh Idg(..., AsHard).
        const FastIdg idgHard = idg.hardened();
        candidates.push_back(buildSdaFast(prog, idg, blind));
        candidates.push_back(candidates[1]);
        candidates.push_back(buildSdaFast(prog, idgHard, conservative));
        candidates.push_back(candidates[4]); // hard construction, hard repair
        candidates.push_back(candidates[1]); // list schedule, hard repair
        improveFast(prog, idg, candidates[2], SoftDepPolicy::AsNone);
        improveFast(prog, idg, candidates[3], SoftDepPolicy::AsNone);
        improveFast(prog, idg, candidates[4], SoftDepPolicy::Aware);
        improveFast(prog, idgHard, candidates[5], SoftDepPolicy::AsHard);
        improveFast(prog, idgHard, candidates[6], SoftDepPolicy::AsHard);
    }
    for (size_t c = 0; c < believedCount; ++c)
        improveFast(prog, idg, candidates[c], belief);

    size_t bestIdx = 0;
    uint64_t bestCost = UINT64_MAX;
    for (size_t c = 0; c < candidates.size(); ++c) {
        const uint64_t cost =
            blockCostFast(idg, candidates[c], belief, kNoSkip);
        if (cost < bestCost) {
            bestCost = cost;
            bestIdx = c;
        }
    }
    const auto &ordered = candidates[bestIdx];

    std::vector<Packet> packets;
    packets.reserve(ordered.size());
    for (const auto &nodes : ordered)
        packets.push_back(Packet{toInstIndices(idg, nodes)});
    return packets;
}

/** baselineCoPackLegal mirror (AsHard graph: surviving soft edges are the
 *  free ordering/WAR ones). */
bool
coPackLegalFast(const FastIdg &idg, size_t m, size_t i)
{
    const size_t lo = std::min(m, i);
    const size_t hi = std::max(m, i);
    const FastIdg::EdgeList succs = idg.succList(lo);
    for (size_t e = 0; e < succs.count; ++e) {
        if (static_cast<size_t>(succs.dst[e]) != hi)
            continue;
        if (succs.hard[e] || succs.penalty[e] > 0)
            return false;
    }
    return true;
}

/** packBlockInOrder mirror. */
std::vector<Packet>
packBlockInOrderFast(const dsp::Program &prog, const BasicBlock &block,
                     const dsp::AliasAnalysis &alias)
{
    FastIdg idg(prog, block, alias, SoftDepPolicy::AsHard);

    std::vector<Packet> packets;
    std::vector<size_t> cur;
    auto flush = [&]() {
        if (!cur.empty()) {
            packets.push_back(Packet{toInstIndices(idg, cur)});
            cur.clear();
        }
    };

    for (size_t i = 0; i < idg.size(); ++i) {
        bool fits = cur.size() < kSlots;
        for (size_t m : cur)
            fits = fits && coPackLegalFast(idg, m, i);
        if (fits) {
            const Packet current{toInstIndices(idg, cur)};
            fits = dsp::slotsFeasibleWith(prog, current, idg.instIndex(i));
        }
        if (!fits)
            flush();
        cur.push_back(i);
    }
    flush();
    return packets;
}

/** packBlockListSched mirror. */
std::vector<Packet>
packBlockListSchedFast(const dsp::Program &prog, const BasicBlock &block,
                       const dsp::AliasAnalysis &alias)
{
    FastIdg idg(prog, block, alias, SoftDepPolicy::AsHard);
    std::vector<Packet> packets;
    for (const auto &nodes : listScheduleFast(prog, idg))
        packets.push_back(Packet{toInstIndices(idg, nodes)});
    return packets;
}

} // namespace

dsp::PackedProgram
pack(const dsp::Program &prog, const PackOptions &opts)
{
    dsp::PackedProgram packed;
    packed.program = prog;

    const dsp::AliasAnalysis alias(prog);
    const Cfg cfg = buildCfg(prog);

    std::vector<size_t> blockStartPacket;
    blockStartPacket.reserve(cfg.blocks.size());

    for (const BasicBlock &block : cfg.blocks) {
        blockStartPacket.push_back(packed.packets.size());
        std::vector<Packet> blockPackets;
        switch (opts.policy) {
          case PackPolicy::Sda:
          case PackPolicy::SoftToHard:
          case PackPolicy::SoftToNone:
            blockPackets = packBlockSdaFast(prog, block, alias, opts);
            break;
          case PackPolicy::InOrder:
            blockPackets = packBlockInOrderFast(prog, block, alias);
            break;
          case PackPolicy::ListSched:
            blockPackets = packBlockListSchedFast(prog, block, alias);
            break;
        }
        for (auto &packet : blockPackets)
            packed.packets.push_back(std::move(packet));
    }

    packed.labelPacket.resize(prog.labels.size());
    for (size_t l = 0; l < prog.labels.size(); ++l) {
        const size_t target = prog.labels[l];
        if (target == prog.code.size()) {
            packed.labelPacket[l] = packed.packets.size();
            continue;
        }
        bool found = false;
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            if (cfg.blocks[b].begin == target) {
                packed.labelPacket[l] = blockStartPacket[b];
                found = true;
                break;
            }
        }
        GCD2_ASSERT(found, "label " << l << " is not a block leader");
    }
    return packed;
}

} // namespace gcd2::vliw
