/**
 * @file
 * VLIW instruction packing algorithms.
 *
 * The centerpiece is the paper's Soft-Dependencies-Aware (SDA) packer
 * (Algorithm 1): bottom-up, critical-path seeded, with the Eq. 4 scoring
 * function and a stall penalty for co-packing across soft dependencies.
 * The ablations from Section V-C (soft_to_hard, soft_to_none) and the
 * baseline packetizers used to model Halide/TVM/RAKE back-ends (in-order
 * and top-down list scheduling, both soft-dependency-blind) share the same
 * entry point.
 *
 * Two implementations share that entry point's semantics. pack() (defined
 * in pack_fast.cc) runs on FastIdg -- chain-built CSR dependency graph,
 * incremental free set and critical-path cache, allocation-free pair
 * classification -- and is the production path. packReference() is the
 * original direct transcription kept as the bit-identity oracle: per
 * block it pays O(n^2) classifyDependency calls to build the Idg, a full
 * O(n + e) reverse sweep per packet for criticalPath(), and O(n * |packet|)
 * free-set rescans, so it is cubic-ish in block size while pack() is
 * near-linear outside the repair pass. Differential fuzz
 * (tests/vliw/pack_differential_test.cc) pins pack() == packReference()
 * across all five policies.
 */
#ifndef GCD2_VLIW_PACKER_H
#define GCD2_VLIW_PACKER_H

#include "dsp/packet.h"
#include "vliw/idg.h"

namespace gcd2::vliw {

/** Which packing algorithm to run. */
enum class PackPolicy : uint8_t
{
    Sda,        ///< GCD2: soft-dependency-aware (Algorithm 1)
    SoftToHard, ///< SDA structure, soft deps may never share a packet
    SoftToNone, ///< SDA structure, soft-dep stall penalty ignored
    InOrder,    ///< greedy in-order packetizer (Halide-style back-end)
    ListSched,  ///< top-down critical-path list scheduler (TVM/RAKE-style)
};

/** Tunables of the SDA scoring function (Eq. 4). */
struct PackOptions
{
    PackPolicy policy = PackPolicy::Sda;
    /** Weight `w`: order/pred importance vs. latency similarity. */
    double w = 0.6;
    /** Scale applied to the soft-dependency stall penalty `p`. */
    double penaltyScale = 8.0;
};

/** Pack a program into VLIW packets under the given policy. */
dsp::PackedProgram pack(const dsp::Program &prog,
                        const PackOptions &opts = {});

/**
 * The retained reference packer: bit-identical output to pack(), built on
 * the all-pairs Idg. Slow on large blocks; exists as the differential
 * oracle for tests and the baseline for bench/pack_throughput.
 */
dsp::PackedProgram packReference(const dsp::Program &prog,
                                 const PackOptions &opts = {});

/**
 * Believed pipelined cost of a block schedule (packets of IDG node ids)
 * under @p belief's model of soft dependencies. Exposed so tests and the
 * audit tooling can judge repair passes directly.
 */
uint64_t pipelinedBlockCost(const dsp::Program &prog,
                            const dsp::AliasAnalysis &alias, const Idg &idg,
                            const std::vector<std::vector<size_t>> &packets,
                            SoftDepPolicy belief = SoftDepPolicy::Aware);

/**
 * Post-scheduling repair: greedily move single instructions between
 * packets (or drop emptied packets) while each move is dependence-legal,
 * slot-feasible, and lowers pipelinedBlockCost. Exposed for directed
 * tests; pack() applies it to every candidate schedule internally.
 */
void improveBlockSchedule(const dsp::Program &prog,
                          const dsp::AliasAnalysis &alias, const Idg &idg,
                          std::vector<std::vector<size_t>> &packets,
                          SoftDepPolicy belief = SoftDepPolicy::Aware);

/** Human-readable policy name (bench output). */
const char *packPolicyName(PackPolicy policy);

} // namespace gcd2::vliw

#endif // GCD2_VLIW_PACKER_H
