#include "vliw/audit.h"

#include <sstream>

#include "dsp/alias.h"
#include "dsp/deps.h"

namespace gcd2::vliw {

using common::Diag;
using common::DiagSeverity;

std::vector<Diag>
auditSchedule(const dsp::PackedProgram &packed)
{
    std::vector<Diag> findings;
    const auto fail = [&](int64_t node, std::string message) {
        findings.push_back(Diag{DiagSeverity::Error, "vliw-audit", node,
                                std::move(message)});
    };

    const dsp::Program &prog = packed.program;
    std::vector<int> seen(prog.code.size(), 0);
    dsp::AliasAnalysis alias(prog);

    for (size_t p = 0; p < packed.packets.size(); ++p) {
        const dsp::Packet &packet = packed.packets[p];
        if (packet.insts.empty()) {
            fail(-1, "packet " + std::to_string(p) + " is empty");
            continue;
        }
        if (packet.insts.size() > static_cast<size_t>(dsp::kPacketSlots))
            fail(-1, "packet " + std::to_string(p) + " holds " +
                         std::to_string(packet.insts.size()) +
                         " instructions (max " +
                         std::to_string(dsp::kPacketSlots) + ")");
        bool indicesValid = true;
        for (size_t idx : packet.insts)
            if (idx >= prog.code.size()) {
                fail(static_cast<int64_t>(idx),
                     "packet " + std::to_string(p) +
                         " references out-of-range instruction");
                indicesValid = false;
            }
        if (!indicesValid)
            continue;
        if (!dsp::slotsFeasible(prog, packet.insts))
            fail(-1, "packet " + std::to_string(p) +
                         " violates slot constraints");
        for (size_t k = 0; k < packet.insts.size(); ++k) {
            const size_t idx = packet.insts[k];
            ++seen[idx];
            if (k > 0 && packet.insts[k - 1] >= idx)
                fail(static_cast<int64_t>(idx),
                     "packet " + std::to_string(p) +
                         " members not in program order");
            for (size_t m = 0; m < k; ++m) {
                const size_t earlier = packet.insts[m];
                const dsp::Dependency dep = dsp::classifyDependency(
                    prog.code[earlier], prog.code[idx],
                    alias.mayAlias(earlier, idx));
                if (dep.kind == dsp::DepKind::Hard) {
                    std::ostringstream msg;
                    msg << "hard dependency inside packet " << p << ": "
                        << prog.code[earlier].toString() << " -> "
                        << prog.code[idx].toString();
                    fail(static_cast<int64_t>(idx), msg.str());
                }
            }
        }
    }

    for (size_t i = 0; i < seen.size(); ++i)
        if (seen[i] != 1)
            fail(static_cast<int64_t>(i),
                 "instruction appears " + std::to_string(seen[i]) +
                     " times in packets (" + prog.code[i].toString() +
                     ")");

    if (packed.labelPacket.size() != prog.labels.size()) {
        fail(-1, "labelPacket size " +
                     std::to_string(packed.labelPacket.size()) +
                     " != label count " +
                     std::to_string(prog.labels.size()));
        return findings;
    }
    for (size_t l = 0; l < prog.labels.size(); ++l) {
        const size_t packetIdx = packed.labelPacket[l];
        // One past the last packet is legal: a branch to program end.
        if (packetIdx > packed.packets.size()) {
            fail(-1, "label L" + std::to_string(l) +
                         " maps past the last packet");
            continue;
        }
        // Everything belonging to the labelled region must be scheduled
        // no earlier than the label's packet.
        const size_t target = prog.labels[l];
        for (size_t p = 0; p < packetIdx; ++p)
            for (size_t idx : packed.packets[p].insts)
                if (idx >= target)
                    fail(static_cast<int64_t>(idx),
                         "instruction scheduled before label L" +
                             std::to_string(l) + " but belongs after it");
    }
    return findings;
}

} // namespace gcd2::vliw
