#include "vliw/audit.h"

#include "dsp/schedule_checks.h"

namespace gcd2::vliw {

using common::Diag;
using common::DiagSeverity;

std::vector<Diag>
auditSchedule(const dsp::PackedProgram &packed)
{
    // Same invariant table as dsp::validatePackedProgram and the
    // decode-time guard; this consumer's policy is collect-everything.
    std::vector<Diag> findings;
    dsp::runScheduleChecks(
        packed, dsp::CheckDepth::Full,
        [&](common::DiagCode code, int64_t node, const std::string &msg) {
            findings.push_back(
                Diag{DiagSeverity::Error, "vliw-audit", node, msg, code});
        });
    return findings;
}

} // namespace gcd2::vliw
