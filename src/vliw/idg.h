/**
 * @file
 * Instruction Dependency Graph (IDG) for one basic block.
 *
 * Vertices are the block's instructions; edges carry the hard/soft
 * classification from dsp::classifyDependency. Matches the structure used
 * by Algorithm 1 and Fig. 5 of the paper: solid (hard) and dotted (soft)
 * edges, per-node rank (distance from the artificial entry), transitive
 * predecessor counts, and critical-path extraction by accumulated latency.
 *
 * Complexity: construction classifies all O(n^2) instruction pairs (each
 * classifyDependency call allocates four uid vectors), criticalPath() is
 * a full O(n + e) reverse sweep per call with e itself O(n^2), and
 * freeInstructions() rescans all nodes with an O(|packet|) membership
 * probe per successor. That is fine for the small blocks this reference
 * implementation now serves; large blocks go through vliw::FastIdg
 * (fast_idg.h), whose chain-built subset graph and incremental state are
 * differentially tested against this class.
 */
#ifndef GCD2_VLIW_IDG_H
#define GCD2_VLIW_IDG_H

#include <cstdint>
#include <vector>

#include "dsp/alias.h"
#include "dsp/deps.h"
#include "vliw/cfg.h"

namespace gcd2::vliw {

/** How the packer should interpret soft dependencies (ablations, §V-C). */
enum class SoftDepPolicy : uint8_t
{
    Aware,  ///< GCD2 SDA: pack across soft edges, penalize the stall
    AsHard, ///< "soft_to_hard": soft edges forbid co-packing
    AsNone, ///< "soft_to_none": pack across soft edges, ignore the stall
};

/** One classified dependency edge. */
struct IdgEdge
{
    int other;          ///< node index at the far end
    dsp::DepKind kind;  ///< Soft or Hard (None edges are not stored)
    int penalty;        ///< stall cycles if co-packed (soft only)
};

/** Per-instruction dependency-graph node. */
struct IdgNode
{
    std::vector<IdgEdge> succs;
    std::vector<IdgEdge> preds;
    int order = 0;     ///< longest-path distance from the entry (i.order)
    int predCount = 0; ///< transitive predecessor count (i.pred)
    int latency = 0;   ///< pipeline occupancy (i.lat)
};

/**
 * The dependency graph of one basic block, with the bookkeeping the SDA
 * packer needs (node removal, critical-path queries on the remaining
 * sub-graph).
 */
class Idg
{
  public:
    /**
     * Build the IDG for @p block of @p prog.
     *
     * @param policy AsHard upgrades every soft edge to hard at build time;
     *        Aware/AsNone keep the classification (AsNone only changes the
     *        packer's scoring, not graph structure).
     *
     * If the block ends in a branch, soft zero-penalty ordering edges are
     * added from every other instruction to the branch so that no
     * instruction is scheduled after the control transfer.
     */
    Idg(const dsp::Program &prog, const BasicBlock &block,
        const dsp::AliasAnalysis &alias, SoftDepPolicy policy);

    size_t size() const { return nodes_.size(); }
    const IdgNode &node(size_t i) const { return nodes_[i]; }

    /** Program instruction index of node @p i. */
    size_t instIndex(size_t i) const { return block_.begin + i; }

    bool removed(size_t i) const { return removed_[i]; }

    /** Remove a scheduled node from the remaining sub-graph. */
    void remove(size_t i);

    size_t remainingCount() const { return remaining_; }

    /**
     * Critical path (by summed latency) through the *remaining* nodes,
     * returned entry-to-exit. Empty iff no nodes remain.
     */
    std::vector<size_t> criticalPath() const;

    /**
     * A node is free when every not-yet-removed successor is reachable
     * only through soft edges into the set @p candidatePacket (nodes that
     * will share the packet). With an empty packet this reduces to
     * "no unscheduled successors".
     */
    bool isFree(size_t i, const std::vector<size_t> &candidatePacket) const;

    /** All currently free nodes given the current packet contents. */
    std::vector<size_t>
    freeInstructions(const std::vector<size_t> &candidatePacket) const;

    /** Allocation-free variant: clears and refills @p out (the packer
     *  reuses one scratch vector across all packets of a block). */
    void freeInstructions(const std::vector<size_t> &candidatePacket,
                          std::vector<size_t> &out) const;

  private:
    BasicBlock block_;
    std::vector<IdgNode> nodes_;
    std::vector<bool> removed_;
    size_t remaining_ = 0;
};

} // namespace gcd2::vliw

#endif // GCD2_VLIW_IDG_H
