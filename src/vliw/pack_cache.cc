#include "vliw/pack_cache.h"

#include <bit>
#include <type_traits>

#include "common/timer.h"

namespace gcd2::vliw {

namespace {

/** FNV-1a, same lane construction as the decode cache. */
class Fnv
{
  public:
    explicit Fnv(uint64_t seed) : h_(seed) {}

    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ULL;
        }
    }

    template <typename T>
    void
    value(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(v));
    }

    uint64_t digest() const { return h_; }

  private:
    uint64_t h_;
};

void
hashRequest(const dsp::Program &prog, const PackOptions &opts, Fnv &fnv)
{
    for (const dsp::Instruction &inst : prog.code) {
        fnv.value(static_cast<uint8_t>(inst.op));
        fnv.value(static_cast<uint8_t>(inst.dst[0].cls));
        fnv.value(inst.dst[0].idx);
        for (const dsp::Operand &src : inst.src) {
            fnv.value(static_cast<uint8_t>(src.cls));
            fnv.value(src.idx);
        }
        fnv.value(inst.imm);
    }
    fnv.value(uint64_t{0xfeed});
    for (size_t label : prog.labels)
        fnv.value(static_cast<uint64_t>(label));
    fnv.value(uint64_t{0xbeef});
    for (int8_t reg : prog.noaliasRegs)
        fnv.value(reg);
    // Options: the policy plus the exact bit patterns of the scoring
    // tunables (two doubles that differ in any bit pack differently).
    fnv.value(uint64_t{0x9acc});
    fnv.value(static_cast<uint8_t>(opts.policy));
    fnv.value(std::bit_cast<uint64_t>(opts.w));
    fnv.value(std::bit_cast<uint64_t>(opts.penaltyScale));
}

} // namespace

PackKey
fingerprintForPacking(const dsp::Program &prog, const PackOptions &opts)
{
    Fnv a(0xcbf29ce484222325ULL);
    Fnv b(0x9e3779b97f4a7c15ULL);
    hashRequest(prog, opts, a);
    hashRequest(prog, opts, b);
    b.value(uint64_t{0x5eed});
    PackKey key;
    key.h0 = a.digest();
    key.h1 = b.digest();
    key.instructions = prog.code.size();
    key.policy = static_cast<uint8_t>(opts.policy);
    return key;
}

std::shared_ptr<const dsp::PackedProgram>
PackCache::lookupOrPack(const dsp::Program &prog, const PackOptions &opts)
{
    const PackKey key = fingerprintForPacking(prog, opts);
    if (auto hit = lru_.lookup(key))
        return *std::move(hit);

    // Pack outside the lock: two threads may race on the same program,
    // but packing is a pure function so either result is usable; the
    // first insert wins.
    Timer timer;
    auto packed =
        std::make_shared<const dsp::PackedProgram>(pack(prog, opts));
    packNanos_.fetch_add(static_cast<uint64_t>(timer.seconds() * 1e9),
                         std::memory_order_relaxed);
    return lru_.insert(key, std::move(packed));
}

PackCache::Stats
PackCache::stats() const
{
    const common::CacheStats s = lru_.stats();
    return Stats{s.hits, s.misses, s.evictions,
                 static_cast<double>(
                     packNanos_.load(std::memory_order_relaxed)) *
                     1e-9};
}

void
PackCache::clear()
{
    lru_.clear();
    packNanos_.store(0, std::memory_order_relaxed);
}

PackCache &
PackCache::global()
{
    static PackCache cache;
    return cache;
}

} // namespace gcd2::vliw
