#include "vliw/pack_cache.h"

#include <bit>
#include <mutex>
#include <type_traits>

#include "common/timer.h"

namespace gcd2::vliw {

namespace {

/** FNV-1a, same lane construction as the decode cache. */
class Fnv
{
  public:
    explicit Fnv(uint64_t seed) : h_(seed) {}

    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ULL;
        }
    }

    template <typename T>
    void
    value(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(v));
    }

    uint64_t digest() const { return h_; }

  private:
    uint64_t h_;
};

void
hashRequest(const dsp::Program &prog, const PackOptions &opts, Fnv &fnv)
{
    for (const dsp::Instruction &inst : prog.code) {
        fnv.value(static_cast<uint8_t>(inst.op));
        fnv.value(static_cast<uint8_t>(inst.dst[0].cls));
        fnv.value(inst.dst[0].idx);
        for (const dsp::Operand &src : inst.src) {
            fnv.value(static_cast<uint8_t>(src.cls));
            fnv.value(src.idx);
        }
        fnv.value(inst.imm);
    }
    fnv.value(uint64_t{0xfeed});
    for (size_t label : prog.labels)
        fnv.value(static_cast<uint64_t>(label));
    fnv.value(uint64_t{0xbeef});
    for (int8_t reg : prog.noaliasRegs)
        fnv.value(reg);
    // Options: the policy plus the exact bit patterns of the scoring
    // tunables (two doubles that differ in any bit pack differently).
    fnv.value(uint64_t{0x9acc});
    fnv.value(static_cast<uint8_t>(opts.policy));
    fnv.value(std::bit_cast<uint64_t>(opts.w));
    fnv.value(std::bit_cast<uint64_t>(opts.penaltyScale));
}

} // namespace

PackKey
fingerprintForPacking(const dsp::Program &prog, const PackOptions &opts)
{
    Fnv a(0xcbf29ce484222325ULL);
    Fnv b(0x9e3779b97f4a7c15ULL);
    hashRequest(prog, opts, a);
    hashRequest(prog, opts, b);
    b.value(uint64_t{0x5eed});
    PackKey key;
    key.h0 = a.digest();
    key.h1 = b.digest();
    key.instructions = prog.code.size();
    key.policy = static_cast<uint8_t>(opts.policy);
    return key;
}

std::shared_ptr<const dsp::PackedProgram>
PackCache::lookupOrPack(const dsp::Program &prog, const PackOptions &opts)
{
    const PackKey key = fingerprintForPacking(prog, opts);
    {
        std::shared_lock lock(mu_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            return it->second;
        }
    }

    // Pack outside the lock: two threads may race on the same program,
    // but packing is a pure function so either result is usable.
    Timer timer;
    auto packed =
        std::make_shared<const dsp::PackedProgram>(pack(prog, opts));
    const double seconds = timer.seconds();

    std::unique_lock lock(mu_);
    ++misses_;
    packSeconds_ += seconds;
    if (map_.size() >= maxEntries_) {
        map_.clear();
        ++evictions_;
    }
    const auto [it, inserted] = map_.emplace(key, packed);
    return inserted ? packed : it->second;
}

PackCache::Stats
PackCache::stats() const
{
    std::shared_lock lock(mu_);
    return Stats{hits_, misses_, evictions_, packSeconds_};
}

size_t
PackCache::size() const
{
    std::shared_lock lock(mu_);
    return map_.size();
}

void
PackCache::clear()
{
    std::unique_lock lock(mu_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    packSeconds_ = 0.0;
}

PackCache &
PackCache::global()
{
    static PackCache cache;
    return cache;
}

} // namespace gcd2::vliw
