/**
 * @file
 * Control-flow graph over DSP programs.
 *
 * Basic blocks are maximal straight-line regions: a block begins at
 * instruction 0, at every label target, and after every branch; it ends
 * before the next block begins. The packers schedule one block at a time
 * (Algorithm 1 of the paper iterates `for each block in cfg.block`).
 */
#ifndef GCD2_VLIW_CFG_H
#define GCD2_VLIW_CFG_H

#include <cstddef>
#include <vector>

#include "dsp/isa.h"

namespace gcd2::vliw {

/** A half-open instruction index range [begin, end). */
struct BasicBlock
{
    size_t begin = 0;
    size_t end = 0;

    size_t size() const { return end - begin; }
};

/** The blocks of a program, in program order. */
struct Cfg
{
    std::vector<BasicBlock> blocks;

    /**
     * The block whose computation kernel a cost model should inspect:
     * the largest block, which for generated kernels is the innermost
     * loop body (paper Section IV-C).
     */
    const BasicBlock &largestBlock() const;
};

/** Partition @p prog into basic blocks. */
Cfg buildCfg(const dsp::Program &prog);

} // namespace gcd2::vliw

#endif // GCD2_VLIW_CFG_H
