/**
 * @file
 * Scalable instruction-dependency graph for the SDA packer.
 *
 * Replaces the all-pairs O(n^2) classifyDependency sweep of vliw::Idg
 * with def-use chain construction: per-register last-writer /
 * readers-since-last-write tables emit only the candidate pairs that can
 * actually carry a dependency, and memory ordering enumerates
 * store-involving pairs through the alias oracle directly. The resulting
 * edge set is a *subset* of the reference graph with an identical
 * transitive closure, which is exactly the property every consumer needs:
 *
 *  - node ranks (`order`) and transitive predecessor counts are equal
 *    because both are closure properties;
 *  - critical-path distances are equal because a transitively implied
 *    edge is always dominated by its implying chain;
 *  - freedom / co-packing legality is equal under the packer's
 *    succ-closed removal discipline (a node is only removed once all of
 *    its successors are), because the first hop of any implying chain
 *    reproduces the constraint.
 *
 * Differential tests (tests/vliw/fast_idg_test.cc) enforce all of this
 * against the reference Idg on seeded random programs.
 *
 * Complexity: construction is O(n + e + m^2) where e is the chain-derived
 * edge count (O(n) per register pressure class in practice) and m the
 * number of memory instructions (each pair costs one O(1) alias probe;
 * only may-aliasing store pairs become edges), plus one O(e * n/64)
 * bitset sweep for transitive predecessor counts. Adjacency is flat CSR,
 * so iteration is allocation-free.
 *
 * Scheduling state is incremental: remaining-successor counts and a free
 * bitset are updated on remove() (no O(n) rescans), and critical-path
 * exit distances are cached and repaired lazily -- a removal only dirties
 * predecessors whose cached best successor died, and a query recomputes
 * the dirty frontier in reverse topological order, falling back to the
 * full reverse sweep when the frontier exceeds a quarter of the block.
 */
#ifndef GCD2_VLIW_FAST_IDG_H
#define GCD2_VLIW_FAST_IDG_H

#include <cstdint>
#include <vector>

#include "dsp/alias.h"
#include "dsp/copack.h"
#include "dsp/decoded.h"
#include "dsp/deps.h"
#include "vliw/cfg.h"
#include "vliw/idg.h"

namespace gcd2::vliw {

/** Chain-built, incrementally maintained IDG over one basic block. */
class FastIdg
{
  public:
    /**
     * Build the graph for @p block of @p prog. Policy semantics match
     * vliw::Idg: AsHard upgrades penalized soft edges to hard at build
     * time. @p alias must outlive the graph.
     */
    FastIdg(const dsp::Program &prog, const BasicBlock &block,
            const dsp::AliasAnalysis &alias, SoftDepPolicy policy);

    /**
     * A copy under SoftDepPolicy::AsHard edge semantics, without
     * re-running chain construction (edge existence, ranks and
     * predecessor counts are policy-invariant; only kinds change).
     */
    FastIdg hardened() const;

    size_t size() const { return n_; }
    size_t instIndex(size_t i) const { return blockBegin_ + i; }
    int order(size_t i) const { return order_[i]; }
    int predCount(size_t i) const { return predCount_[i]; }
    int latency(size_t i) const { return pair_.latency(i); }

    bool removed(size_t i) const { return removed_[i] != 0; }
    size_t remainingCount() const { return remaining_; }

    /** Remove a scheduled node (reference Idg::remove semantics). */
    void remove(size_t i);

    // ---- Algorithm 1 hot-path API -----------------------------------

    /** Start a fresh packet (clears the per-packet co-pack blocks). */
    void beginPacket();

    /**
     * Remove node @p i into the current packet: updates the free set and
     * blocks its hard predecessors from joining this packet.
     */
    void take(size_t i);

    /**
     * Free nodes given the current packet, ascending. Identical to the
     * reference freeInstructions(cur) when every cur member was take()n
     * this packet. O(n/64 + |free|).
     */
    void collectFree(std::vector<size_t> &out) const;

    /**
     * Last node of the critical path through the remaining sub-graph
     * (the bottom-up packet seed). Requires remainingCount() > 0.
     */
    size_t criticalSeed();

    /** Full remaining critical path, entry-to-exit (reference parity). */
    std::vector<size_t> criticalPath();

    // ---- Reference-parity queries (tests, baselines) ----------------

    /** Reference Idg::isFree semantics (cur looked up by scan). */
    bool isFree(size_t i, const std::vector<size_t> &candidatePacket) const;

    /** Successor / predecessor edges as reference-style IdgEdge lists. */
    std::vector<IdgEdge> succs(size_t i) const;
    std::vector<IdgEdge> preds(size_t i) const;

    /** Flat CSR edge view (allocation-free legality scans). */
    struct EdgeList
    {
        const int32_t *dst;
        const uint8_t *hard;
        const int8_t *penalty;
        size_t count;
    };
    EdgeList succList(size_t i) const;
    EdgeList predList(size_t i) const;

    // ---- Allocation-free pair classification ------------------------

    /**
     * Stall cycles instruction @p b pays when co-packed after @p a
     * (a < b, node ids). Forwards to the embedded dsp::CopackModel, so
     * the delay the hazard lint re-derives from that model is the very
     * value the packer's cost functions charge.
     */
    int copackDelay(size_t a, size_t b) const
    {
        return pair_.copackDelay(a, b);
    }

    /** The embedded pair-classification tables. */
    const dsp::CopackModel &pairModel() const { return pair_; }

    uint64_t readMask(size_t i) const { return pair_.readMask(i); }
    uint64_t writeMask(size_t i) const { return pair_.writeMask(i); }

    /** Register-uid mask of the scalar (forwardable) register file. */
    static constexpr uint64_t kScalarUidMask = dsp::kScalarUidMask;
    static constexpr uint64_t kVectorUidMask = dsp::kVectorUidMask;

  private:
    void rebuildDistances();
    void refreshDistances();
    void recomputeNode(size_t p);
    void markDirty(size_t p);
    int bestSource() const;

    size_t n_ = 0;
    size_t blockBegin_ = 0;

    /** Pair-classification tables (masks, memory class, penalties,
     *  latencies), shared with every pair-only consumer. */
    dsp::CopackModel pair_;

    // Flat CSR adjacency (edges point forward in program order; succs of
    // each node ascend by target id, matching the reference edge order).
    std::vector<int32_t> succOff_, succDst_;
    std::vector<int32_t> predOff_, predDst_;
    std::vector<uint8_t> succHard_, predHard_;
    std::vector<int8_t> succPen_, predPen_;

    std::vector<int32_t> order_, predCount_;

    // Incremental scheduling state.
    std::vector<uint8_t> removed_;
    std::vector<int32_t> liveSuccCount_;
    std::vector<uint64_t> freeWords_;
    std::vector<uint32_t> blockedEpoch_;
    uint32_t epoch_ = 0;
    size_t remaining_ = 0;

    // Cached critical-path state (exit distances, best-successor links).
    std::vector<int64_t> dist_;
    std::vector<int32_t> next_;
    std::vector<uint64_t> dirtyWords_;
    size_t dirtyCount_ = 0;
};

} // namespace gcd2::vliw

#endif // GCD2_VLIW_FAST_IDG_H
