/**
 * @file
 * Process-wide cache of packed programs, keyed by content fingerprint.
 *
 * Packing is a pure function of (Program, PackOptions), and the compiler
 * packs the same few canonical kernel programs over and over: every
 * cost-model probe of a (plan, kernel) candidate, every kernel-generation
 * run, and (before PR 4) the audit pass each re-ran the full SDA ensemble
 * on identical inputs -- across plans, partitions, and whole compiles.
 * PackCache memoizes the PackedProgram exactly like dsp::DecodeCache
 * memoizes decoded programs; the two compose into a layered pipeline
 * (pack once -> decode once -> simulate many), with select::CostCache
 * above both memoizing the resulting kernel statistics.
 *
 * Keying mirrors DecodeCache: two independent FNV-1a lanes over the
 * instruction stream, labels and noalias ABI declaration, plus the
 * packing-relevant PackOptions fields (policy and the exact bit patterns
 * of the Eq. 4 tunables). Storage is the managed cache tier's bounded
 * sharded LRU (common::ShardedLru, DESIGN.md section 14): per-entry
 * least-recently-used eviction at the capacity bound, so the hot
 * canonical kernels survive indefinitely instead of being dropped by
 * the old wholesale epoch clear.
 */
#ifndef GCD2_VLIW_PACK_CACHE_H
#define GCD2_VLIW_PACK_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/lru_cache.h"
#include "vliw/packer.h"

namespace gcd2::vliw {

/** Content fingerprint of a (Program, PackOptions) packing request. */
struct PackKey
{
    uint64_t h0 = 0;
    uint64_t h1 = 0;
    uint64_t instructions = 0;
    uint8_t policy = 0;

    bool operator==(const PackKey &other) const = default;
};

/** Fingerprint covering everything pack() depends on. */
PackKey fingerprintForPacking(const dsp::Program &prog,
                              const PackOptions &opts);

/**
 * Thread-safe pack cache. Reads take a shared lock; a miss packs outside
 * any lock (packing is pure, so concurrent duplicate work is safe) and
 * publishes under an exclusive lock.
 */
class PackCache
{
  public:
    explicit PackCache(size_t maxEntries = 4096) : lru_(maxEntries) {}

    /** Packed form of @p prog under @p opts, cached by content. */
    std::shared_ptr<const dsp::PackedProgram>
    lookupOrPack(const dsp::Program &prog, const PackOptions &opts = {});

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0; ///< per-entry LRU evictions
        /** Wall-clock seconds spent inside pack() on misses. */
        double packSeconds = 0.0;
    };

    Stats stats() const;
    size_t size() const { return lru_.size(); }
    /** Enforced entry bound (size() never exceeds it). */
    size_t capacity() const { return lru_.capacity(); }
    void clear();

    /** Process-wide cache used by kernels::runKernel and the pipeline. */
    static PackCache &global();

  private:
    struct KeyHash
    {
        size_t operator()(const PackKey &key) const
        {
            return static_cast<size_t>(key.h0 ^ (key.h1 * 0x9e3779b9u));
        }
    };

    common::ShardedLru<PackKey,
                       std::shared_ptr<const dsp::PackedProgram>, KeyHash>
        lru_;
    /** Nanoseconds spent packing on misses (atomic: misses race). */
    std::atomic<uint64_t> packNanos_{0};
};

} // namespace gcd2::vliw

#endif // GCD2_VLIW_PACK_CACHE_H
