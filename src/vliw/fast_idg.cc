#include "vliw/fast_idg.h"

#include <algorithm>
#include <bit>
#include <climits>

#include "common/logging.h"

namespace gcd2::vliw {

using dsp::DepKind;

namespace {

/** One discovered edge before CSR packing. */
struct TempEdge
{
    int32_t i;
    int32_t j;
    uint8_t hard;
    int8_t penalty;
};

} // namespace

FastIdg::FastIdg(const dsp::Program &prog, const BasicBlock &block,
                 const dsp::AliasAnalysis &alias, SoftDepPolicy policy)
    : n_(block.size()), blockBegin_(block.begin),
      pair_(prog, block.begin, block.size(), alias)
{
    const size_t n = n_;

    // Chain-based candidate generation: rather than classifying all
    // O(n^2) pairs, walk the block once keeping, per register uid, the
    // last writer and the readers since that write; only those pairs
    // (plus store-involving may-alias memory pairs) can carry an edge.
    // Each candidate is then classified with the same aspect priority as
    // dsp::classifyDependency (hard memory/vector-RAW/WAW beats soft
    // scalar-RAW beats free WAR), so a kept edge is bit-identical to the
    // reference edge for that pair.
    std::vector<int32_t> lastWriter(dsp::kNumRegUids, -1);
    std::vector<std::vector<int32_t>> readersSince(dsp::kNumRegUids);
    std::vector<int32_t> memSoFar, storesSoFar;
    std::vector<int32_t> stamp(n, -1);
    std::vector<int32_t> cand;
    std::vector<TempEdge> edges;
    edges.reserve(4 * n);

    for (size_t j = 0; j < n; ++j) {
        cand.clear();
        auto consider = [&](int32_t i) {
            if (i >= 0 && stamp[i] != static_cast<int32_t>(j)) {
                stamp[i] = static_cast<int32_t>(j);
                cand.push_back(i);
            }
        };

        for (uint64_t bits = pair_.readMask(j); bits != 0; bits &= bits - 1)
            consider(lastWriter[std::countr_zero(bits)]);
        for (uint64_t bits = pair_.writeMask(j); bits != 0; bits &= bits - 1) {
            const int uid = std::countr_zero(bits);
            consider(lastWriter[uid]);
            for (int32_t r : readersSince[uid])
                consider(r);
        }
        if (pair_.memClass(j) == 2) {
            for (int32_t m : memSoFar)
                if (alias.mayAlias(blockBegin_ + m, blockBegin_ + j))
                    consider(m);
        } else if (pair_.memClass(j) == 1) {
            for (int32_t s : storesSoFar)
                if (alias.mayAlias(blockBegin_ + s, blockBegin_ + j))
                    consider(s);
        }

        std::sort(cand.begin(), cand.end());
        for (int32_t i : cand) {
            const auto ui = static_cast<size_t>(i);
            uint8_t hard = 0;
            int8_t pen = 0;
            if ((pair_.writeMask(ui) & pair_.writeMask(j)) != 0 ||
                (pair_.writeMask(ui) & pair_.readMask(j) & kVectorUidMask) != 0 ||
                (pair_.memClass(ui) != 0 && pair_.memClass(j) != 0 &&
                 (pair_.memClass(ui) | pair_.memClass(j)) > 1 &&
                 alias.mayAlias(blockBegin_ + ui, blockBegin_ + j))) {
                hard = 1;
            } else if ((pair_.writeMask(ui) & pair_.readMask(j)) != 0) {
                pen = pair_.forwardPenalty(ui);
                if (policy == SoftDepPolicy::AsHard && pen > 0) {
                    hard = 1;
                    pen = 0;
                }
            }
            // Remaining candidates are WAR pairs: soft, penalty 0.
            edges.push_back(
                TempEdge{i, static_cast<int32_t>(j), hard, pen});
        }

        for (uint64_t bits = pair_.writeMask(j); bits != 0; bits &= bits - 1) {
            const int uid = std::countr_zero(bits);
            readersSince[uid].clear();
            lastWriter[uid] = static_cast<int32_t>(j);
        }
        for (uint64_t bits = pair_.readMask(j); bits != 0; bits &= bits - 1)
            readersSince[std::countr_zero(bits)].push_back(
                static_cast<int32_t>(j));
        if (pair_.memClass(j) != 0) {
            memSoFar.push_back(static_cast<int32_t>(j));
            if (pair_.memClass(j) == 2)
                storesSoFar.push_back(static_cast<int32_t>(j));
        }
    }

    // Edges into a block-terminating branch, exactly as the reference:
    // every earlier node gets one. The chain loop above only emitted the
    // chain-adjacent ones, so classify each remaining pair directly from
    // the masks (the reference stores the pair's real classification even
    // when a chain covers it transitively -- e.g. an older writer of the
    // branch condition is still a penalized soft RAW) and fall back to
    // the soft free ordering edge for genuinely independent pairs.
    // Branch edges sit at the tail of `edges` (the branch is the last
    // classified j), so membership is a single backward scan.
    if (n > 0 && prog.code[block.end - 1].isBranch()) {
        const auto branch = static_cast<int32_t>(n - 1);
        const auto ub = static_cast<size_t>(branch);
        std::vector<uint8_t> hasEdge(n, 0);
        for (size_t e = edges.size(); e-- > 0;) {
            if (edges[e].j != branch)
                break;
            hasEdge[edges[e].i] = 1;
        }
        for (int32_t i = 0; i + 1 < static_cast<int32_t>(n); ++i) {
            if (hasEdge[i])
                continue;
            const auto ui = static_cast<size_t>(i);
            uint8_t hard = 0;
            int8_t pen = 0;
            if ((pair_.writeMask(ui) & pair_.writeMask(ub)) != 0 ||
                (pair_.writeMask(ui) & pair_.readMask(ub) & kVectorUidMask) != 0) {
                hard = 1; // WAW / vector RAW (branches are not memory)
            } else if ((pair_.writeMask(ui) & pair_.readMask(ub)) != 0) {
                pen = pair_.forwardPenalty(ui); // scalar RAW into the condition
                if (policy == SoftDepPolicy::AsHard && pen > 0) {
                    hard = 1;
                    pen = 0;
                }
            }
            // WAR and independent pairs land at soft, penalty 0 -- the
            // same shape as the reference's ordering-only edge.
            edges.push_back(TempEdge{i, branch, hard, pen});
        }
    }

    // CSR packing. `edges` is grouped by ascending j (preds come out
    // grouped directly, ascending i within a group, ordering edges last
    // for the branch -- matching the reference pred order); a stable
    // counting sort on i yields succ rows ascending in j, again matching
    // the reference succ order.
    const size_t m = edges.size();
    predOff_.assign(n + 1, 0);
    succOff_.assign(n + 1, 0);
    for (const TempEdge &e : edges) {
        ++predOff_[static_cast<size_t>(e.j) + 1];
        ++succOff_[static_cast<size_t>(e.i) + 1];
    }
    for (size_t v = 0; v < n; ++v) {
        predOff_[v + 1] += predOff_[v];
        succOff_[v + 1] += succOff_[v];
    }
    predDst_.resize(m);
    predHard_.resize(m);
    predPen_.resize(m);
    succDst_.resize(m);
    succHard_.resize(m);
    succPen_.resize(m);
    std::vector<int32_t> predFill(predOff_.begin(), predOff_.end() - 1);
    std::vector<int32_t> succFill(succOff_.begin(), succOff_.end() - 1);
    for (const TempEdge &e : edges) {
        const auto p = static_cast<size_t>(predFill[e.j]++);
        predDst_[p] = e.i;
        predHard_[p] = e.hard;
        predPen_[p] = e.penalty;
        const auto s = static_cast<size_t>(succFill[e.i]++);
        succDst_[s] = e.j;
        succHard_[s] = e.hard;
        succPen_[s] = e.penalty;
    }

    // Longest-path rank from the artificial entry. Program order is a
    // topological order, and ranks over the chain subgraph equal ranks
    // over the reference graph: a transitively implied edge (i, k) is
    // covered by a chain i -> ... -> k of length >= 2, which already
    // forces order[k] >= order[i] + 2 > order[i] + 1.
    order_.assign(n, 0);
    for (size_t j = 0; j < n; ++j) {
        int32_t order = 0;
        for (int32_t p = predOff_[j]; p < predOff_[j + 1]; ++p)
            order = std::max(order, order_[predDst_[p]] + 1);
        order_[j] = order;
    }

    // Transitive predecessor counts via the same forward bitset sweep as
    // the reference; equal closures give equal counts.
    const size_t words = (n + 63) / 64;
    predCount_.assign(n, 0);
    std::vector<uint64_t> reach(n * words, 0);
    for (size_t j = 0; j < n; ++j) {
        uint64_t *mine = reach.data() + j * words;
        for (int32_t p = predOff_[j]; p < predOff_[j + 1]; ++p) {
            const auto other = static_cast<size_t>(predDst_[p]);
            const uint64_t *theirs = reach.data() + other * words;
            for (size_t w = 0; w < words; ++w)
                mine[w] |= theirs[w];
            mine[other / 64] |= uint64_t{1} << (other % 64);
        }
        int count = 0;
        for (size_t w = 0; w < words; ++w)
            count += std::popcount(mine[w]);
        predCount_[j] = count;
    }

    // Mutable scheduling state.
    removed_.assign(n, 0);
    remaining_ = n;
    liveSuccCount_.resize(n);
    freeWords_.assign(words == 0 ? 1 : words, 0);
    blockedEpoch_.assign(n, 0);
    epoch_ = 1;
    for (size_t i = 0; i < n; ++i) {
        liveSuccCount_[i] = succOff_[i + 1] - succOff_[i];
        if (liveSuccCount_[i] == 0)
            freeWords_[i / 64] |= uint64_t{1} << (i % 64);
    }

    dist_.assign(n, INT64_MIN);
    next_.assign(n, -1);
    dirtyWords_.assign(freeWords_.size(), 0);
    dirtyCount_ = 0;
    rebuildDistances();
}

FastIdg
FastIdg::hardened() const
{
    FastIdg out = *this;
    for (size_t e = 0; e < out.succHard_.size(); ++e) {
        if (!out.succHard_[e] && out.succPen_[e] > 0) {
            out.succHard_[e] = 1;
            out.succPen_[e] = 0;
        }
    }
    for (size_t e = 0; e < out.predHard_.size(); ++e) {
        if (!out.predHard_[e] && out.predPen_[e] > 0) {
            out.predHard_[e] = 1;
            out.predPen_[e] = 0;
        }
    }
    return out;
}

void
FastIdg::markDirty(size_t p)
{
    uint64_t &word = dirtyWords_[p / 64];
    const uint64_t bit = uint64_t{1} << (p % 64);
    if ((word & bit) == 0) {
        word |= bit;
        ++dirtyCount_;
    }
}

void
FastIdg::remove(size_t i)
{
    GCD2_ASSERT(!removed_[i], "node " << i << " removed twice");
    removed_[i] = 1;
    --remaining_;
    freeWords_[i / 64] &= ~(uint64_t{1} << (i % 64));
    {
        uint64_t &word = dirtyWords_[i / 64];
        const uint64_t bit = uint64_t{1} << (i % 64);
        if ((word & bit) != 0) {
            word &= ~bit;
            --dirtyCount_;
        }
    }
    for (int32_t p = predOff_[i]; p < predOff_[i + 1]; ++p) {
        const auto pred = static_cast<size_t>(predDst_[p]);
        if (--liveSuccCount_[pred] == 0 && !removed_[pred])
            freeWords_[pred / 64] |= uint64_t{1} << (pred % 64);
        // Exit distances only change for predecessors whose cached best
        // successor just died: any other contribution was dominated and
        // can only shrink.
        if (!removed_[pred] && next_[pred] == static_cast<int32_t>(i))
            markDirty(pred);
    }
}

void
FastIdg::beginPacket()
{
    ++epoch_;
}

void
FastIdg::take(size_t i)
{
    remove(i);
    // Reference isFree: a hard successor inside the packet under
    // construction disqualifies the candidate, so hard predecessors of a
    // packet member are blocked for the rest of this packet.
    for (int32_t p = predOff_[i]; p < predOff_[i + 1]; ++p)
        if (predHard_[p])
            blockedEpoch_[static_cast<size_t>(predDst_[p])] = epoch_;
}

void
FastIdg::collectFree(std::vector<size_t> &out) const
{
    out.clear();
    for (size_t w = 0; w < freeWords_.size(); ++w) {
        for (uint64_t bits = freeWords_[w]; bits != 0; bits &= bits - 1) {
            const size_t i = w * 64 + std::countr_zero(bits);
            if (blockedEpoch_[i] != epoch_)
                out.push_back(i);
        }
    }
}

void
FastIdg::recomputeNode(size_t p)
{
    int64_t dist = pair_.latency(p);
    int32_t next = -1;
    for (int32_t s = succOff_[p]; s < succOff_[p + 1]; ++s) {
        const auto j = static_cast<size_t>(succDst_[s]);
        if (removed_[j])
            continue;
        if (pair_.latency(p) + dist_[j] > dist) {
            dist = pair_.latency(p) + dist_[j];
            next = succDst_[s];
        }
    }
    next_[p] = next;
    if (dist != dist_[p]) {
        dist_[p] = dist;
        for (int32_t q = predOff_[p]; q < predOff_[p + 1]; ++q) {
            const auto pred = static_cast<size_t>(predDst_[q]);
            if (!removed_[pred] && next_[pred] == static_cast<int32_t>(p))
                markDirty(pred);
        }
    }
}

void
FastIdg::rebuildDistances()
{
    for (size_t ri = n_; ri-- > 0;) {
        if (removed_[ri])
            continue;
        int64_t dist = pair_.latency(ri);
        int32_t next = -1;
        for (int32_t s = succOff_[ri]; s < succOff_[ri + 1]; ++s) {
            const auto j = static_cast<size_t>(succDst_[s]);
            if (removed_[j])
                continue;
            if (pair_.latency(ri) + dist_[j] > dist) {
                dist = pair_.latency(ri) + dist_[j];
                next = succDst_[s];
            }
        }
        dist_[ri] = dist;
        next_[ri] = next;
    }
    std::fill(dirtyWords_.begin(), dirtyWords_.end(), 0);
    dirtyCount_ = 0;
}

void
FastIdg::refreshDistances()
{
    if (dirtyCount_ == 0)
        return;
    if (dirtyCount_ * 4 > n_) {
        rebuildDistances();
        return;
    }
    // Repair the dirty frontier in reverse topological (descending id)
    // order: a recompute reads only successor distances (higher ids,
    // already clean) and may dirty only predecessors (lower ids), so one
    // high-to-low pass converges. Re-read each word after a recompute --
    // propagation can set lower bits inside the current word.
    for (size_t w = dirtyWords_.size(); w-- > 0;) {
        while (dirtyWords_[w] != 0) {
            const int bit = 63 - std::countl_zero(dirtyWords_[w]);
            dirtyWords_[w] &= ~(uint64_t{1} << bit);
            --dirtyCount_;
            const size_t p = w * 64 + static_cast<size_t>(bit);
            if (!removed_[p])
                recomputeNode(p);
        }
    }
}

int
FastIdg::bestSource() const
{
    int best = -1;
    for (size_t i = 0; i < n_; ++i) {
        if (removed_[i])
            continue;
        bool isSource = true;
        for (int32_t p = predOff_[i]; p < predOff_[i + 1] && isSource; ++p)
            isSource = removed_[static_cast<size_t>(predDst_[p])] != 0;
        if (!isSource)
            continue;
        if (best < 0 || dist_[i] > dist_[static_cast<size_t>(best)])
            best = static_cast<int>(i);
    }
    return best;
}

size_t
FastIdg::criticalSeed()
{
    GCD2_ASSERT(remaining_ > 0, "critical seed of an empty graph");
    refreshDistances();
    int cur = bestSource();
    GCD2_ASSERT(cur >= 0, "no remaining source");
    while (next_[static_cast<size_t>(cur)] >= 0)
        cur = next_[static_cast<size_t>(cur)];
    return static_cast<size_t>(cur);
}

std::vector<size_t>
FastIdg::criticalPath()
{
    refreshDistances();
    std::vector<size_t> path;
    for (int cur = bestSource(); cur >= 0;
         cur = next_[static_cast<size_t>(cur)])
        path.push_back(static_cast<size_t>(cur));
    return path;
}

bool
FastIdg::isFree(size_t i, const std::vector<size_t> &candidatePacket) const
{
    if (removed_[i])
        return false;
    for (int32_t s = succOff_[i]; s < succOff_[i + 1]; ++s) {
        const auto j = static_cast<size_t>(succDst_[s]);
        const bool inPacket =
            std::find(candidatePacket.begin(), candidatePacket.end(), j) !=
            candidatePacket.end();
        if (inPacket) {
            if (succHard_[s])
                return false;
        } else if (!removed_[j]) {
            return false;
        }
    }
    return true;
}

std::vector<IdgEdge>
FastIdg::succs(size_t i) const
{
    std::vector<IdgEdge> out;
    for (int32_t s = succOff_[i]; s < succOff_[i + 1]; ++s)
        out.push_back(IdgEdge{succDst_[s],
                              succHard_[s] ? DepKind::Hard : DepKind::Soft,
                              succPen_[s]});
    return out;
}

std::vector<IdgEdge>
FastIdg::preds(size_t i) const
{
    std::vector<IdgEdge> out;
    for (int32_t p = predOff_[i]; p < predOff_[i + 1]; ++p)
        out.push_back(IdgEdge{predDst_[p],
                              predHard_[p] ? DepKind::Hard : DepKind::Soft,
                              predPen_[p]});
    return out;
}

FastIdg::EdgeList
FastIdg::succList(size_t i) const
{
    const auto begin = static_cast<size_t>(succOff_[i]);
    return EdgeList{succDst_.data() + begin, succHard_.data() + begin,
                    succPen_.data() + begin,
                    static_cast<size_t>(succOff_[i + 1]) - begin};
}

FastIdg::EdgeList
FastIdg::predList(size_t i) const
{
    const auto begin = static_cast<size_t>(predOff_[i]);
    return EdgeList{predDst_.data() + begin, predHard_.data() + begin,
                    predPen_.data() + begin,
                    static_cast<size_t>(predOff_[i + 1]) - begin};
}

} // namespace gcd2::vliw
