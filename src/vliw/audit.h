/**
 * @file
 * Non-throwing packet-schedule auditor.
 *
 * Checks the same invariants as dsp::validatePackedProgram -- every
 * instruction in exactly one packet, slot feasibility, program order
 * inside packets, hard dependencies strictly cross-packet, labels
 * landing on packet boundaries -- but reports violations as structured
 * diagnostics instead of panicking, so the compilation pipeline can run
 * it on every served schedule (cheap: one linear scan of the packets)
 * and ship findings in the PipelineReport.
 */
#ifndef GCD2_VLIW_AUDIT_H
#define GCD2_VLIW_AUDIT_H

#include <vector>

#include "common/diag.h"
#include "dsp/packet.h"

namespace gcd2::vliw {

/**
 * Audit one packed program. Returns one Error diagnostic (pass
 * "vliw-audit", node = instruction index where that is meaningful) per
 * violated invariant; empty means the schedule is legal.
 */
std::vector<common::Diag> auditSchedule(const dsp::PackedProgram &packed);

} // namespace gcd2::vliw

#endif // GCD2_VLIW_AUDIT_H
