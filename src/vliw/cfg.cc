#include "vliw/cfg.h"

#include <algorithm>

#include "common/logging.h"

namespace gcd2::vliw {

const BasicBlock &
Cfg::largestBlock() const
{
    GCD2_REQUIRE(!blocks.empty(), "empty CFG");
    return *std::max_element(blocks.begin(), blocks.end(),
                             [](const BasicBlock &a, const BasicBlock &b) {
                                 return a.size() < b.size();
                             });
}

Cfg
buildCfg(const dsp::Program &prog)
{
    std::vector<bool> leader(prog.code.size() + 1, false);
    leader[0] = true;
    leader[prog.code.size()] = true;

    for (size_t target : prog.labels) {
        GCD2_ASSERT(target != SIZE_MAX, "unbound label in program");
        GCD2_ASSERT(target <= prog.code.size(), "label out of range");
        leader[target] = true;
    }
    for (size_t i = 0; i < prog.code.size(); ++i) {
        if (prog.code[i].isBranch() && i + 1 <= prog.code.size())
            leader[i + 1] = true;
    }

    Cfg cfg;
    size_t begin = 0;
    for (size_t i = 1; i <= prog.code.size(); ++i) {
        if (leader[i]) {
            if (i > begin)
                cfg.blocks.push_back(BasicBlock{begin, i});
            begin = i;
        }
    }
    return cfg;
}

} // namespace gcd2::vliw
