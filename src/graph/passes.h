/**
 * @file
 * Graph optimization passes applied before global layout selection
 * (the "computational graph optimizations" step of Fig. 6).
 */
#ifndef GCD2_GRAPH_PASSES_H
#define GCD2_GRAPH_PASSES_H

#include "graph/graph.h"

namespace gcd2::graph {

/** Result counters of a pass run. */
struct PassStats
{
    int64_t foldedNodes = 0;
    int64_t fusedActivations = 0;
    int64_t removedNodes = 0;

    // eliminateLayoutTransforms, per rule.
    int64_t cancelledTransforms = 0; ///< inverse pairs / identities gone
    int64_t sunkTransforms = 0;      ///< pushed below layout-agnostic ops
    int64_t fusedTransforms = 0;     ///< folded into producer epilogues
    /** Estimated standalone transform cycles removed from the graph
     *  (analytic copy estimate; epilogue residue is charged to plans). */
    int64_t transformCyclesSaved = 0;

    // Extended fusion (OptimizeOptions::extendedFusion).
    int64_t fusedLuts = 0;
    int64_t fusedResiduals = 0;
};

/** Knobs for optimize(). Defaults preserve historical behavior: model
 *  builders bake in only fold/clamp-fuse/DCE, so built graphs keep their
 *  Reshape/Transpose nodes and the compile pipeline decides (via
 *  runtime::CompileOptions) whether to eliminate them. */
struct OptimizeOptions
{
    /** Cancel / sink / fuse layout transforms (Reshape, Transpose). */
    bool eliminateLayoutTransforms = false;
    /** Also run fuseLutActivations + fuseResidualAdds. */
    bool extendedFusion = false;
};

/**
 * Constant folding: ops whose inputs are all Constant become Constant
 * nodes themselves (shape-level; weights are synthetic, so the fold keeps
 * the inferred shape but drops the computation).
 */
int64_t foldConstants(Graph &graph);

/**
 * Fuse a Clamp whose producer is a Conv2D / DepthwiseConv2D / MatMul /
 * Add with a single consumer into that producer (free on the DSP: the
 * requantization epilogue applies the clamp bounds).
 */
int64_t fuseClampActivations(Graph &graph);

/** Mark nodes that do not reach any Output as dead. */
int64_t eliminateDeadNodes(Graph &graph);

/**
 * DSP-friendly operator fusion (the paper's future-work extension):
 * fold a single-consumer lookup-table nonlinearity (Sigmoid / Tanh /
 * Gelu / Pow) into the producing Conv2D / MatMul kernel's epilogue --
 * the requantized bytes flow through one extra VLUT before the store
 * instead of a separate load/lookup/store pass over the tensor.
 * Not part of the default pipeline; enable explicitly.
 */
int64_t fuseLutActivations(Graph &graph);

/**
 * Companion fusion: fold a single-consumer residual Add into the
 * producing Conv2D / MatMul epilogue (the second operand streams through
 * the store path), saving a full pass over the output tensor. Part of
 * the same extension; enable explicitly.
 */
int64_t fuseResidualAdds(Graph &graph);

/**
 * Transform-elimination pass group (SmartMem-style, applied before
 * layout selection so the plan table prices the reduced graph):
 *
 *   1. cancel   -- drop identity Reshape/Transpose nodes, compose
 *                  Reshape-of-Reshape and Transpose-of-Transpose chains
 *                  (inverse pairs cancel to identity and vanish);
 *   2. sink     -- push a transform below a layout-agnostic consumer
 *                  (unary elementwise, or a binary elementwise whose
 *                  operands went through identical transforms, or whose
 *                  other operand is a scalar broadcast), re-exposing
 *                  producer/consumer pairs the other rules can collapse;
 *   3. fuse     -- fold a surviving single-consumer transform into its
 *                  matmul-family producer as an epilogue attribute
 *                  (attrs.fusedTransform / fusedOutShape): the kernel
 *                  stores directly in the transformed view and the edge
 *                  transform cost disappears.
 *
 * Runs the rules to a fixpoint with shape re-inference between rounds;
 * updates stats.{cancelled,sunk,fused}Transforms and
 * stats.transformCyclesSaved. Returns the number of rewrites applied.
 */
int64_t eliminateLayoutTransforms(Graph &graph, PassStats &stats);

/** Run the standard pipeline: fold, fuse, eliminate; then re-infer.
 *  OptimizeOptions gates the transform-elimination and extended-fusion
 *  rewrites (both off by default). */
PassStats optimize(Graph &graph, const OptimizeOptions &options = {});

} // namespace gcd2::graph

#endif // GCD2_GRAPH_PASSES_H
