/**
 * @file
 * Graph optimization passes applied before global layout selection
 * (the "computational graph optimizations" step of Fig. 6).
 */
#ifndef GCD2_GRAPH_PASSES_H
#define GCD2_GRAPH_PASSES_H

#include "graph/graph.h"

namespace gcd2::graph {

/** Result counters of a pass run. */
struct PassStats
{
    int64_t foldedNodes = 0;
    int64_t fusedActivations = 0;
    int64_t removedNodes = 0;
};

/**
 * Constant folding: ops whose inputs are all Constant become Constant
 * nodes themselves (shape-level; weights are synthetic, so the fold keeps
 * the inferred shape but drops the computation).
 */
int64_t foldConstants(Graph &graph);

/**
 * Fuse a Clamp whose producer is a Conv2D / DepthwiseConv2D / MatMul /
 * Add with a single consumer into that producer (free on the DSP: the
 * requantization epilogue applies the clamp bounds).
 */
int64_t fuseClampActivations(Graph &graph);

/** Mark nodes that do not reach any Output as dead. */
int64_t eliminateDeadNodes(Graph &graph);

/**
 * DSP-friendly operator fusion (the paper's future-work extension):
 * fold a single-consumer lookup-table nonlinearity (Sigmoid / Tanh /
 * Gelu / Pow) into the producing Conv2D / MatMul kernel's epilogue --
 * the requantized bytes flow through one extra VLUT before the store
 * instead of a separate load/lookup/store pass over the tensor.
 * Not part of the default pipeline; enable explicitly.
 */
int64_t fuseLutActivations(Graph &graph);

/**
 * Companion fusion: fold a single-consumer residual Add into the
 * producing Conv2D / MatMul epilogue (the second operand streams through
 * the store path), saving a full pass over the output tensor. Part of
 * the same extension; enable explicitly.
 */
int64_t fuseResidualAdds(Graph &graph);

/** Run the standard pipeline: fold, fuse, eliminate; then re-infer. */
PassStats optimize(Graph &graph);

} // namespace gcd2::graph

#endif // GCD2_GRAPH_PASSES_H
