/**
 * @file
 * Operator catalog of the computational-graph IR.
 *
 * The set covers everything the paper's ten evaluation models need:
 * convolutions (regular / depthwise / pointwise), matrix multiplies,
 * elementwise arithmetic, activations and lookup-table nonlinearities,
 * pooling, normalization, softmax (whose division feeds the paper's
 * div-to-LUT optimization), and the layout-changing shape operators
 * (Reshape / Transpose) that are pivotal for the partitioning heuristic
 * of Section IV-B.
 */
#ifndef GCD2_GRAPH_OP_H
#define GCD2_GRAPH_OP_H

#include <cstdint>
#include <string>
#include <vector>

namespace gcd2::graph {

/** Operator kinds. */
enum class OpType : uint8_t
{
    Input,
    Constant,
    Output,

    Conv2D,
    DepthwiseConv2D,
    MatMul,

    Add,
    Mul,
    Sub,
    Div,
    Pow,

    Clamp, ///< ReLU / ReLU6 / hard clip
    Sigmoid,
    Tanh,
    Gelu,
    Softmax,

    MaxPool,
    AvgPool,
    GlobalAvgPool,
    Upsample, ///< nearest-neighbor 2x (super-resolution / GAN decoders)

    LayerNorm,

    Reshape,
    Transpose,
    Concat,

    kNumOps
};

const char *opTypeName(OpType type);

/** True for ops that change only the view, not the values. */
bool isLayoutTransformOp(OpType type);

/** True for ops realized by a matmul-family kernel (Conv2D / MatMul). */
bool isMatMulFamily(OpType type);

/** True for nonlinearities realized through a 256-entry lookup table. */
bool isLutActivation(OpType type);

/** Per-node attributes (only the fields relevant to the op are used). */
struct NodeAttrs
{
    // Convolutions.
    int64_t outC = 0;
    int64_t kH = 1;
    int64_t kW = 1;
    int64_t strideH = 1;
    int64_t strideW = 1;
    int64_t padH = 0;
    int64_t padW = 0;

    // MatMul.
    bool transposeB = false;

    // Pooling.
    int64_t poolK = 2;
    int64_t poolStride = 2;

    // Clamp.
    int clampLo = 0;
    int clampHi = 255;

    // Softmax / Concat axis.
    int axis = -1;

    // Pow exponent.
    double exponent = 2.0;

    // Reshape target.
    std::vector<int64_t> targetShape;

    // Transpose permutation.
    std::vector<int> perm;

    /** Fused activation clamp (set by the fusion pass). */
    bool fusedClamp = false;
    int fusedLo = 0;
    int fusedHi = 255;
    /** Fused lookup-table nonlinearity (DSP-friendly fusion extension). */
    bool fusedLut = false;
    /** Fused residual add: the extra input streams through the epilogue. */
    bool fusedAdd = false;
    /** Fused epilogue layout transform (set by eliminateLayoutTransforms):
     *  the kernel writes its result directly in the transformed view, so
     *  no standalone Reshape/Transpose node runs afterwards. */
    bool fusedTransform = false;
    /** Final output dims once the fused transform chain is applied. */
    std::vector<int64_t> fusedOutShape;
    /** True iff a non-identity Transpose was folded in (the store pass
     *  permutes; a pure Reshape epilogue is free metadata). */
    bool fusedTransformPermutes = false;
};

} // namespace gcd2::graph

#endif // GCD2_GRAPH_OP_H
