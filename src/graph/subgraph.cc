#include "graph/subgraph.h"

#include <map>

#include "common/logging.h"

namespace gcd2::graph {

Graph
extractOperatorWindow(const Graph &graph, int64_t firstOp, int64_t count)
{
    GCD2_REQUIRE(firstOp >= 0 && count > 0, "bad operator window");

    // Collect the window's node ids (operators only) in topo order.
    std::vector<NodeId> window;
    int64_t seen = 0;
    for (const Node &node : graph.nodes()) {
        if (node.dead || node.op == OpType::Input ||
            node.op == OpType::Constant || node.op == OpType::Output)
            continue;
        if (seen >= firstOp &&
            seen < firstOp + count)
            window.push_back(node.id);
        ++seen;
    }
    GCD2_REQUIRE(static_cast<int64_t>(window.size()) == count,
                 "graph has only " << seen << " operators, window "
                                   << firstOp << "+" << count
                                   << " out of range");

    Graph out;
    std::map<NodeId, NodeId> mapped; // old id -> new id

    auto materializeInput = [&](NodeId oldId) {
        const auto it = mapped.find(oldId);
        if (it != mapped.end())
            return it->second;
        const Node &src = graph.node(oldId);
        NodeAttrs attrs;
        attrs.targetShape = src.shape.dims();
        const OpType kind = src.op == OpType::Constant ? OpType::Constant
                                                       : OpType::Input;
        const NodeId newId = out.add(kind, {}, attrs, src.name);
        mapped[oldId] = newId;
        return newId;
    };

    for (NodeId oldId : window) {
        const Node &src = graph.node(oldId);
        std::vector<NodeId> inputs;
        inputs.reserve(src.inputs.size());
        for (NodeId in : src.inputs)
            inputs.push_back(mapped.count(in) ? mapped[in]
                                              : materializeInput(in));
        mapped[oldId] = out.add(src.op, std::move(inputs), src.attrs,
                                src.name);
    }

    // Every window value without an internal consumer becomes an output.
    const auto succ = graph.successors();
    for (NodeId oldId : window) {
        bool consumedInside = false;
        for (NodeId consumer : succ[static_cast<size_t>(oldId)])
            if (mapped.count(consumer) &&
                graph.node(consumer).op != OpType::Output)
                consumedInside = true;
        if (!consumedInside)
            out.add(OpType::Output, {mapped[oldId]});
    }

    inferShapes(out);
    return out;
}

} // namespace gcd2::graph
