#include "graph/graph.h"

#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace gcd2::graph {

using tensor::Shape;

NodeId
Graph::add(OpType op, std::vector<NodeId> inputs, NodeAttrs attrs,
           std::string name)
{
    const auto id = static_cast<NodeId>(nodes_.size());
    for (NodeId in : inputs) {
        GCD2_REQUIRE(in >= 0 && in < id,
                     "node inputs must precede the node (topological "
                     "append); got input "
                         << in << " for node " << id);
    }
    Node node;
    node.id = id;
    node.op = op;
    node.inputs = std::move(inputs);
    node.attrs = std::move(attrs);
    node.name = name.empty()
                    ? std::string(opTypeName(op)) + "_" + std::to_string(id)
                    : std::move(name);
    nodes_.push_back(std::move(node));
    return id;
}

Node &
Graph::node(NodeId id)
{
    GCD2_REQUIRE(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
                 "bad node id " << id);
    return nodes_[static_cast<size_t>(id)];
}

const Node &
Graph::node(NodeId id) const
{
    GCD2_REQUIRE(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
                 "bad node id " << id);
    return nodes_[static_cast<size_t>(id)];
}

int64_t
Graph::operatorCount() const
{
    int64_t count = 0;
    for (const Node &node : nodes_) {
        if (node.dead)
            continue;
        if (node.op == OpType::Input || node.op == OpType::Constant ||
            node.op == OpType::Output)
            continue;
        ++count;
    }
    return count;
}

int64_t
Graph::nodeMacs(NodeId id) const
{
    const Node &n = node(id);
    if (n.dead)
        return 0;
    switch (n.op) {
      case OpType::Conv2D: {
        const Shape &in = node(n.inputs[0]).shape;
        return n.shape.elements() * in.dim(0) * n.attrs.kH * n.attrs.kW;
      }
      case OpType::DepthwiseConv2D:
        return n.shape.elements() * n.attrs.kH * n.attrs.kW;
      case OpType::MatMul: {
        const Shape &a = node(n.inputs[0]).shape;
        const int64_t k = a.dim(a.rank() - 1);
        return n.shape.elements() * k;
      }
      default:
        return 0;
    }
}

int64_t
Graph::totalMacs() const
{
    int64_t total = 0;
    for (const Node &n : nodes_)
        total += nodeMacs(n.id);
    return total;
}

std::vector<NodeId>
Graph::topoOrder() const
{
    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    for (const Node &n : nodes_)
        if (!n.dead)
            order.push_back(n.id);
    return order;
}

std::vector<std::vector<NodeId>>
Graph::successors() const
{
    std::vector<std::vector<NodeId>> succ(nodes_.size());
    for (const Node &n : nodes_) {
        if (n.dead)
            continue;
        for (NodeId in : n.inputs)
            if (!node(in).dead)
                succ[static_cast<size_t>(in)].push_back(n.id);
    }
    return succ;
}

std::string
Graph::toString() const
{
    std::ostringstream oss;
    for (const Node &n : nodes_) {
        if (n.dead)
            continue;
        oss << "%" << n.id << " = " << opTypeName(n.op) << "(";
        for (size_t i = 0; i < n.inputs.size(); ++i) {
            if (i)
                oss << ", ";
            oss << "%" << n.inputs[i];
        }
        oss << ") : " << n.shape.toString() << "  // " << n.name << "\n";
    }
    return oss.str();
}

namespace {

/** Pool output extent with implicit valid padding. */
int64_t
pooledDim(int64_t in, int64_t k, int64_t stride)
{
    GCD2_REQUIRE(in >= k, "pool window larger than input");
    return (in - k) / stride + 1;
}

} // namespace

tensor::Shape
naturalNodeShape(const Node &node, const std::vector<Shape> &inputs)
{
    const NodeAttrs &a = node.attrs;
    auto in = [&](size_t i) -> const Shape & {
        GCD2_REQUIRE(i < inputs.size(),
                     opTypeName(node.op) << " missing input " << i);
        return inputs[i];
    };

    switch (node.op) {
      case OpType::Input:
      case OpType::Constant:
        return Shape(a.targetShape);

      case OpType::Output:
        return in(0);

      case OpType::Conv2D: {
        const Shape &x = in(0);
        GCD2_REQUIRE(x.rank() == 3, "Conv2D input must be (C, H, W)");
        const int64_t oh =
            (x.dim(1) + 2 * a.padH - a.kH) / a.strideH + 1;
        const int64_t ow =
            (x.dim(2) + 2 * a.padW - a.kW) / a.strideW + 1;
        GCD2_REQUIRE(oh > 0 && ow > 0, "Conv2D output is empty");
        return Shape{a.outC, oh, ow};
      }
      case OpType::DepthwiseConv2D: {
        const Shape &x = in(0);
        GCD2_REQUIRE(x.rank() == 3,
                     "DepthwiseConv2D input must be (C, H, W)");
        const int64_t oh =
            (x.dim(1) + 2 * a.padH - a.kH) / a.strideH + 1;
        const int64_t ow =
            (x.dim(2) + 2 * a.padW - a.kW) / a.strideW + 1;
        return Shape{x.dim(0), oh, ow};
      }
      case OpType::MatMul: {
        const Shape &x = in(0);
        const Shape &w = in(1);
        GCD2_REQUIRE(x.rank() >= 2 && w.rank() >= 2,
                     "MatMul needs rank >= 2 operands");
        const int64_t k = x.dim(x.rank() - 1);
        const int64_t wk =
            a.transposeB ? w.dim(w.rank() - 1) : w.dim(w.rank() - 2);
        const int64_t n =
            a.transposeB ? w.dim(w.rank() - 2) : w.dim(w.rank() - 1);
        GCD2_REQUIRE(k == wk, "MatMul reduction mismatch: " << k << " vs "
                                                            << wk);
        std::vector<int64_t> dims = x.dims();
        dims.back() = n;
        return Shape(dims);
      }

      case OpType::Add:
      case OpType::Mul:
      case OpType::Sub:
      case OpType::Div:
        GCD2_REQUIRE(in(0).elements() >= in(1).elements(),
                     "broadcast operand must come second");
        return in(0);

      case OpType::Pow:
      case OpType::Clamp:
      case OpType::Sigmoid:
      case OpType::Tanh:
      case OpType::Gelu:
      case OpType::Softmax:
      case OpType::LayerNorm:
        return in(0);

      case OpType::MaxPool:
      case OpType::AvgPool: {
        const Shape &x = in(0);
        GCD2_REQUIRE(x.rank() == 3, "pool input must be (C, H, W)");
        return Shape{x.dim(0), pooledDim(x.dim(1), a.poolK, a.poolStride),
                     pooledDim(x.dim(2), a.poolK, a.poolStride)};
      }
      case OpType::GlobalAvgPool: {
        const Shape &x = in(0);
        GCD2_REQUIRE(x.rank() == 3,
                     "global pool input must be (C, H, W)");
        return Shape{x.dim(0), 1, 1};
      }
      case OpType::Upsample: {
        const Shape &x = in(0);
        GCD2_REQUIRE(x.rank() == 3, "upsample input must be (C, H, W)");
        return Shape{x.dim(0), 2 * x.dim(1), 2 * x.dim(2)};
      }

      case OpType::Reshape: {
        const Shape target(a.targetShape);
        GCD2_REQUIRE(target.elements() == in(0).elements(),
                     "Reshape changes element count: "
                         << in(0).toString() << " -> "
                         << target.toString());
        return target;
      }
      case OpType::Transpose: {
        const Shape &x = in(0);
        GCD2_REQUIRE(static_cast<int>(a.perm.size()) == x.rank(),
                     "Transpose permutation rank mismatch");
        std::vector<int64_t> dims(a.perm.size());
        for (size_t i = 0; i < a.perm.size(); ++i)
            dims[i] = x.dim(a.perm[i]);
        return Shape(dims);
      }
      case OpType::Concat: {
        const Shape &first = in(0);
        const int axis =
            a.axis < 0 ? first.rank() + a.axis : a.axis;
        GCD2_REQUIRE(axis >= 0 && axis < first.rank(),
                     "Concat axis out of range");
        std::vector<int64_t> dims = first.dims();
        for (size_t i = 1; i < inputs.size(); ++i)
            dims[static_cast<size_t>(axis)] +=
                inputs[i].dim(axis);
        return Shape(dims);
      }

      case OpType::kNumOps:
        break;
    }
    GCD2_PANIC("unhandled op in shape inference");
}

tensor::Shape
naturalNodeShape(const Graph &graph, const Node &node)
{
    std::vector<Shape> inputs;
    inputs.reserve(node.inputs.size());
    for (NodeId in : node.inputs)
        inputs.push_back(graph.node(in).shape);
    return naturalNodeShape(node, inputs);
}

tensor::Shape
inferNodeShape(const Node &node, const std::vector<Shape> &inputs)
{
    Shape natural = naturalNodeShape(node, inputs);
    if (!node.attrs.fusedTransform)
        return natural;
    const Shape fused(node.attrs.fusedOutShape);
    GCD2_REQUIRE(fused.elements() == natural.elements(),
                 "fused transform changes element count: "
                     << natural.toString() << " -> " << fused.toString());
    return fused;
}

void
inferShapes(Graph &graph)
{
    for (Node &node : graph.nodes()) {
        if (node.dead)
            continue;
        std::vector<Shape> inputs;
        inputs.reserve(node.inputs.size());
        for (NodeId in : node.inputs)
            inputs.push_back(graph.node(in).shape);
        node.shape = inferNodeShape(node, inputs);
    }
}

} // namespace gcd2::graph
