/**
 * @file
 * Sub-graph extraction (the Fig. 10 methodology: "partial computational
 * graphs are extracted from ResNet-50 using contiguous operators").
 */
#ifndef GCD2_GRAPH_SUBGRAPH_H
#define GCD2_GRAPH_SUBGRAPH_H

#include "graph/graph.h"

namespace gcd2::graph {

/**
 * Copy @p count contiguous live operators of @p graph (topological order,
 * starting at the @p firstOp -th operator, skipping Input/Constant/Output
 * nodes when counting). Values produced outside the window become fresh
 * Input nodes of matching shape; Constant inputs are copied; every
 * window-internal value without an internal consumer feeds a new Output.
 */
Graph extractOperatorWindow(const Graph &graph, int64_t firstOp,
                            int64_t count);

} // namespace gcd2::graph

#endif // GCD2_GRAPH_SUBGRAPH_H
