#include "graph/op.h"

namespace gcd2::graph {

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Input:
        return "Input";
      case OpType::Constant:
        return "Constant";
      case OpType::Output:
        return "Output";
      case OpType::Conv2D:
        return "Conv2D";
      case OpType::DepthwiseConv2D:
        return "DepthwiseConv2D";
      case OpType::MatMul:
        return "MatMul";
      case OpType::Add:
        return "Add";
      case OpType::Mul:
        return "Mul";
      case OpType::Sub:
        return "Sub";
      case OpType::Div:
        return "Div";
      case OpType::Pow:
        return "Pow";
      case OpType::Clamp:
        return "Clamp";
      case OpType::Sigmoid:
        return "Sigmoid";
      case OpType::Tanh:
        return "Tanh";
      case OpType::Gelu:
        return "Gelu";
      case OpType::Softmax:
        return "Softmax";
      case OpType::MaxPool:
        return "MaxPool";
      case OpType::AvgPool:
        return "AvgPool";
      case OpType::GlobalAvgPool:
        return "GlobalAvgPool";
      case OpType::Upsample:
        return "Upsample";
      case OpType::LayerNorm:
        return "LayerNorm";
      case OpType::Reshape:
        return "Reshape";
      case OpType::Transpose:
        return "Transpose";
      case OpType::Concat:
        return "Concat";
      case OpType::kNumOps:
        break;
    }
    return "?";
}

bool
isLayoutTransformOp(OpType type)
{
    return type == OpType::Reshape || type == OpType::Transpose;
}

bool
isMatMulFamily(OpType type)
{
    return type == OpType::Conv2D || type == OpType::MatMul;
}

bool
isLutActivation(OpType type)
{
    return type == OpType::Sigmoid || type == OpType::Tanh ||
           type == OpType::Gelu;
}

} // namespace gcd2::graph
