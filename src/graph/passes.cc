#include "graph/passes.h"

#include <algorithm>

#include "common/logging.h"

namespace gcd2::graph {

int64_t
foldConstants(Graph &graph)
{
    int64_t folded = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || node.op == OpType::Constant ||
            node.op == OpType::Input || node.op == OpType::Output)
            continue;
        const bool allConst = !node.inputs.empty() &&
            std::all_of(node.inputs.begin(), node.inputs.end(),
                        [&](NodeId in) {
                            return graph.node(in).op == OpType::Constant;
                        });
        if (!allConst)
            continue;
        // Replace with a Constant of the already-inferred shape.
        node.attrs.targetShape = node.shape.dims();
        node.op = OpType::Constant;
        node.inputs.clear();
        ++folded;
    }
    return folded;
}

int64_t
fuseClampActivations(Graph &graph)
{
    const auto succ = graph.successors();
    int64_t fused = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || node.op != OpType::Clamp)
            continue;
        const NodeId producerId = node.inputs[0];
        Node &producer = graph.node(producerId);
        const bool fusable = producer.op == OpType::Conv2D ||
                             producer.op == OpType::DepthwiseConv2D ||
                             producer.op == OpType::MatMul ||
                             producer.op == OpType::Add;
        // Only fuse when the clamp is the producer's only consumer.
        if (!fusable ||
            succ[static_cast<size_t>(producerId)].size() != 1)
            continue;
        producer.attrs.fusedClamp = true;
        producer.attrs.fusedLo = node.attrs.clampLo;
        producer.attrs.fusedHi = node.attrs.clampHi;
        // The clamp becomes a pass-through that dead-node elimination
        // removes: rewire its consumers to the producer.
        for (Node &consumer : graph.nodes()) {
            if (consumer.dead)
                continue;
            for (NodeId &in : consumer.inputs)
                if (in == node.id)
                    in = producerId;
        }
        node.dead = true;
        ++fused;
    }
    return fused;
}

int64_t
eliminateDeadNodes(Graph &graph)
{
    // Backward reachability from Output nodes.
    std::vector<bool> live(graph.size(), false);
    std::vector<NodeId> work;
    for (const Node &node : graph.nodes()) {
        if (!node.dead && node.op == OpType::Output) {
            live[static_cast<size_t>(node.id)] = true;
            work.push_back(node.id);
        }
    }
    GCD2_REQUIRE(!work.empty(), "graph has no Output node");
    while (!work.empty()) {
        const NodeId id = work.back();
        work.pop_back();
        for (NodeId in : graph.node(id).inputs) {
            if (!live[static_cast<size_t>(in)]) {
                live[static_cast<size_t>(in)] = true;
                work.push_back(in);
            }
        }
    }

    int64_t removed = 0;
    for (Node &node : graph.nodes()) {
        if (!node.dead && !live[static_cast<size_t>(node.id)]) {
            node.dead = true;
            ++removed;
        }
    }
    return removed;
}

int64_t
fuseLutActivations(Graph &graph)
{
    const auto succ = graph.successors();
    int64_t fused = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || !isLutActivation(node.op))
            continue;
        const NodeId producerId = node.inputs[0];
        Node &producer = graph.node(producerId);
        if (!isMatMulFamily(producer.op) || producer.attrs.fusedLut ||
            succ[static_cast<size_t>(producerId)].size() != 1)
            continue;
        producer.attrs.fusedLut = true;
        for (Node &consumer : graph.nodes()) {
            if (consumer.dead)
                continue;
            for (NodeId &in : consumer.inputs)
                if (in == node.id)
                    in = producerId;
        }
        node.dead = true;
        ++fused;
    }
    if (fused > 0)
        eliminateDeadNodes(graph);
    return fused;
}

int64_t
fuseResidualAdds(Graph &graph)
{
    const auto succ = graph.successors();
    int64_t fused = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || node.op != OpType::Add || node.inputs.size() != 2)
            continue;
        // Fuse into whichever operand is a matmul-family producer whose
        // only consumer is this add.
        for (size_t which = 0; which < 2; ++which) {
            const NodeId producerId = node.inputs[which];
            Node &producer = graph.node(producerId);
            if (!isMatMulFamily(producer.op) || producer.attrs.fusedAdd ||
                succ[static_cast<size_t>(producerId)].size() != 1)
                continue;
            const NodeId other = node.inputs[1 - which];
            // The residual operand must precede the producer so the
            // rewritten graph stays topological.
            if (other >= producerId)
                continue;
            producer.attrs.fusedAdd = true;
            producer.inputs.push_back(other);
            for (Node &consumer : graph.nodes()) {
                if (consumer.dead)
                    continue;
                for (NodeId &in : consumer.inputs)
                    if (in == node.id)
                        in = producerId;
            }
            node.dead = true;
            ++fused;
            break;
        }
    }
    if (fused > 0)
        eliminateDeadNodes(graph);
    return fused;
}

// ---- layout-transform elimination -----------------------------------

namespace {

/** Rewire every live consumer of `from` to read `to` instead. */
void
rewireConsumers(Graph &graph, NodeId from, NodeId to)
{
    for (Node &consumer : graph.nodes()) {
        if (consumer.dead)
            continue;
        for (NodeId &in : consumer.inputs)
            if (in == from)
                in = to;
    }
}

bool
isIdentityPerm(const std::vector<int> &perm)
{
    for (size_t i = 0; i < perm.size(); ++i)
        if (perm[i] != static_cast<int>(i))
            return false;
    return true;
}

/** Unary ops that apply the same function to every element regardless
 *  of its position -- safe to commute with any layout transform. */
bool
isUnaryElementwise(OpType op)
{
    return op == OpType::Clamp || op == OpType::Sigmoid ||
           op == OpType::Tanh || op == OpType::Gelu || op == OpType::Pow;
}

/** Binary elementwise ops (positionally independent per lane). */
bool
isBinaryElementwise(OpType op)
{
    return op == OpType::Add || op == OpType::Mul ||
           op == OpType::Sub || op == OpType::Div;
}

/** Two transforms with byte-for-byte identical semantics? */
bool
sameTransformSpec(const Node &a, const Node &b)
{
    if (a.op != b.op)
        return false;
    if (a.op == OpType::Reshape)
        return a.attrs.targetShape == b.attrs.targetShape;
    return a.attrs.perm == b.attrs.perm;
}

/** Analytic standalone cost of a live transform node, mirroring the
 *  cost model: a Reshape is a zero-copy row-major view; a Transpose is
 *  a vectorized copy at ~4 cycles per 128-byte vector plus setup. */
int64_t
standingTransformCycles(const Graph &graph)
{
    int64_t cycles = 0;
    for (const Node &node : graph.nodes()) {
        if (node.dead || node.op != OpType::Transpose)
            continue;
        const int64_t elements =
            graph.node(node.inputs[0]).shape.elements();
        cycles += 4 * ((elements + 127) / 128) + 8;
    }
    return cycles;
}

/** Rule 1: identity transforms vanish; chained transforms compose.
 *  Applies at most one rewrite (caller loops to fixpoint). */
bool
cancelOneTransform(Graph &graph, PassStats &stats)
{
    for (Node &node : graph.nodes()) {
        if (node.dead || !isLayoutTransformOp(node.op))
            continue;
        const Node &producer = graph.node(node.inputs[0]);

        // Identity Reshape / Transpose: consumers read the input.
        const bool identity =
            node.op == OpType::Reshape
                ? node.attrs.targetShape == producer.shape.dims()
                : isIdentityPerm(node.attrs.perm);
        if (identity) {
            rewireConsumers(graph, node.id, node.inputs[0]);
            node.dead = true;
            ++stats.cancelledTransforms;
            return true;
        }

        // Reshape(Reshape(x)) -> Reshape(x): only the outer target
        // matters under row-major views.
        if (node.op == OpType::Reshape &&
            producer.op == OpType::Reshape) {
            node.inputs[0] = producer.inputs[0];
            ++stats.cancelledTransforms;
            return true;
        }

        // Transpose(Transpose(x)) -> Transpose(x) with composed perm;
        // inverse pairs compose to the identity and cancel next sweep.
        if (node.op == OpType::Transpose &&
            producer.op == OpType::Transpose) {
            const std::vector<int> &inner = producer.attrs.perm;
            const std::vector<int> &outer = node.attrs.perm;
            GCD2_REQUIRE(inner.size() == outer.size(),
                         "composing transposes of different rank");
            std::vector<int> composed(outer.size());
            for (size_t i = 0; i < outer.size(); ++i)
                composed[i] = inner[static_cast<size_t>(outer[i])];
            node.attrs.perm = std::move(composed);
            node.inputs[0] = producer.inputs[0];
            ++stats.cancelledTransforms;
            return true;
        }
    }
    return false;
}

/** Rule 2: sink a transform below a layout-agnostic consumer by
 *  swapping the two nodes in place (keeps ids topological: the
 *  elementwise moves up into the transform's slot, the transform moves
 *  down into the elementwise's slot). */
bool
sinkOneTransform(Graph &graph, PassStats &stats)
{
    const auto succ = graph.successors();
    for (Node &node : graph.nodes()) {
        if (node.dead || !isLayoutTransformOp(node.op))
            continue;
        if (succ[static_cast<size_t>(node.id)].size() != 1)
            continue;
        const NodeId consumerId = succ[static_cast<size_t>(node.id)][0];
        Node &consumer = graph.node(consumerId);

        // Unary elementwise: T -> E  becomes  E -> T.
        if (isUnaryElementwise(consumer.op) &&
            consumer.inputs.size() == 1) {
            Node elem = consumer; // E's op + attrs (clamp bounds, exponent)
            Node xform = node;    // T's op + attrs (targetShape / perm)
            elem.id = node.id;
            elem.inputs = {node.inputs[0]};
            xform.id = consumerId;
            xform.inputs = {node.id};
            graph.nodes()[static_cast<size_t>(node.id)] = std::move(elem);
            graph.nodes()[static_cast<size_t>(consumerId)] =
                std::move(xform);
            ++stats.sunkTransforms;
            return true;
        }

        if (!isBinaryElementwise(consumer.op) ||
            consumer.inputs.size() != 2)
            continue;
        const size_t which = consumer.inputs[0] == node.id ? 0 : 1;
        const NodeId otherId = consumer.inputs[1 - which];
        const Node &other = graph.node(otherId);

        // Matching binary sink: E(T1(a), T2(b)) with identical transform
        // specs over equal input shapes becomes T(E(a, b)).
        if (isLayoutTransformOp(other.op) && otherId != node.id &&
            succ[static_cast<size_t>(otherId)].size() == 1 &&
            sameTransformSpec(node, other) &&
            graph.node(node.inputs[0]).shape.dims() ==
                graph.node(other.inputs[0]).shape.dims()) {
            const NodeId hi = std::max(node.id, otherId);
            const NodeId lo = std::min(node.id, otherId);
            Node elem = consumer;
            elem.id = hi;
            elem.inputs = {graph.node(consumer.inputs[0]).inputs[0],
                           graph.node(consumer.inputs[1]).inputs[0]};
            Node xform = node;
            xform.id = consumerId;
            xform.inputs = {hi};
            graph.nodes()[static_cast<size_t>(hi)] = std::move(elem);
            graph.nodes()[static_cast<size_t>(consumerId)] =
                std::move(xform);
            graph.node(lo).dead = true;
            stats.sunkTransforms += 2;
            ++stats.cancelledTransforms; // the pair shared one transform
            return true;
        }

        // Scalar-broadcast sink: E(T(a), c) with |c| == 1 becomes
        // T(E(a, c)) -- a scalar operand is position-independent. The
        // scalar must precede T's slot to keep ids topological, and the
        // transform operand must be first (shape-inference broadcast
        // rule: the larger operand comes first).
        if (which == 0 && other.shape.elements() == 1 &&
            otherId < node.id) {
            Node elem = consumer;
            elem.id = node.id;
            elem.inputs = {node.inputs[0], otherId};
            Node xform = node;
            xform.id = consumerId;
            xform.inputs = {node.id};
            graph.nodes()[static_cast<size_t>(node.id)] = std::move(elem);
            graph.nodes()[static_cast<size_t>(consumerId)] =
                std::move(xform);
            ++stats.sunkTransforms;
            return true;
        }
    }
    return false;
}

/** Rule 3: fold a single-consumer transform into its matmul-family
 *  producer as an epilogue attribute. Chains compose: once the producer
 *  carries a fused shape, a following transform sees that shape and can
 *  fold on top. */
bool
fuseOneTransform(Graph &graph, PassStats &stats)
{
    const auto succ = graph.successors();
    for (Node &node : graph.nodes()) {
        if (node.dead || !isLayoutTransformOp(node.op))
            continue;
        const NodeId producerId = node.inputs[0];
        Node &producer = graph.node(producerId);
        if (!isMatMulFamily(producer.op) &&
            producer.op != OpType::DepthwiseConv2D)
            continue;
        if (succ[static_cast<size_t>(producerId)].size() != 1)
            continue;
        producer.attrs.fusedTransform = true;
        producer.attrs.fusedOutShape = node.shape.dims();
        if (node.op == OpType::Transpose)
            producer.attrs.fusedTransformPermutes = true;
        rewireConsumers(graph, node.id, producerId);
        node.dead = true;
        ++stats.fusedTransforms;
        return true;
    }
    return false;
}

} // namespace

int64_t
eliminateLayoutTransforms(Graph &graph, PassStats &stats)
{
    inferShapes(graph);
    const int64_t before = standingTransformCycles(graph);
    int64_t total = 0;
    // Each applied rewrite re-infers shapes, so every rule always sees
    // consistent producer shapes. Graphs are small (hundreds of nodes);
    // the quadratic sweep is well under a millisecond.
    for (bool changed = true; changed;) {
        changed = false;
        while (cancelOneTransform(graph, stats)) {
            inferShapes(graph);
            changed = true;
            ++total;
        }
        while (sinkOneTransform(graph, stats)) {
            inferShapes(graph);
            changed = true;
            ++total;
        }
        while (fuseOneTransform(graph, stats)) {
            inferShapes(graph);
            changed = true;
            ++total;
        }
        if (changed) {
            eliminateDeadNodes(graph);
            inferShapes(graph);
        }
    }
    stats.transformCyclesSaved += before - standingTransformCycles(graph);
    return total;
}

PassStats
optimize(Graph &graph, const OptimizeOptions &options)
{
    inferShapes(graph);
    PassStats stats;
    stats.foldedNodes = foldConstants(graph);
    stats.fusedActivations = fuseClampActivations(graph);
    if (options.eliminateLayoutTransforms) {
        eliminateLayoutTransforms(graph, stats);
        // Sinking can re-expose Clamp-under-producer patterns.
        stats.fusedActivations += fuseClampActivations(graph);
    }
    if (options.extendedFusion) {
        stats.fusedLuts = fuseLutActivations(graph);
        stats.fusedResiduals = fuseResidualAdds(graph);
    }
    stats.removedNodes = eliminateDeadNodes(graph);
    inferShapes(graph);
    return stats;
}

} // namespace gcd2::graph
