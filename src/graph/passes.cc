#include "graph/passes.h"

#include <algorithm>

#include "common/logging.h"

namespace gcd2::graph {

int64_t
foldConstants(Graph &graph)
{
    int64_t folded = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || node.op == OpType::Constant ||
            node.op == OpType::Input || node.op == OpType::Output)
            continue;
        const bool allConst = !node.inputs.empty() &&
            std::all_of(node.inputs.begin(), node.inputs.end(),
                        [&](NodeId in) {
                            return graph.node(in).op == OpType::Constant;
                        });
        if (!allConst)
            continue;
        // Replace with a Constant of the already-inferred shape.
        node.attrs.targetShape = node.shape.dims();
        node.op = OpType::Constant;
        node.inputs.clear();
        ++folded;
    }
    return folded;
}

int64_t
fuseClampActivations(Graph &graph)
{
    const auto succ = graph.successors();
    int64_t fused = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || node.op != OpType::Clamp)
            continue;
        const NodeId producerId = node.inputs[0];
        Node &producer = graph.node(producerId);
        const bool fusable = producer.op == OpType::Conv2D ||
                             producer.op == OpType::DepthwiseConv2D ||
                             producer.op == OpType::MatMul ||
                             producer.op == OpType::Add;
        // Only fuse when the clamp is the producer's only consumer.
        if (!fusable ||
            succ[static_cast<size_t>(producerId)].size() != 1)
            continue;
        producer.attrs.fusedClamp = true;
        producer.attrs.fusedLo = node.attrs.clampLo;
        producer.attrs.fusedHi = node.attrs.clampHi;
        // The clamp becomes a pass-through that dead-node elimination
        // removes: rewire its consumers to the producer.
        for (Node &consumer : graph.nodes()) {
            if (consumer.dead)
                continue;
            for (NodeId &in : consumer.inputs)
                if (in == node.id)
                    in = producerId;
        }
        node.dead = true;
        ++fused;
    }
    return fused;
}

int64_t
eliminateDeadNodes(Graph &graph)
{
    // Backward reachability from Output nodes.
    std::vector<bool> live(graph.size(), false);
    std::vector<NodeId> work;
    for (const Node &node : graph.nodes()) {
        if (!node.dead && node.op == OpType::Output) {
            live[static_cast<size_t>(node.id)] = true;
            work.push_back(node.id);
        }
    }
    GCD2_REQUIRE(!work.empty(), "graph has no Output node");
    while (!work.empty()) {
        const NodeId id = work.back();
        work.pop_back();
        for (NodeId in : graph.node(id).inputs) {
            if (!live[static_cast<size_t>(in)]) {
                live[static_cast<size_t>(in)] = true;
                work.push_back(in);
            }
        }
    }

    int64_t removed = 0;
    for (Node &node : graph.nodes()) {
        if (!node.dead && !live[static_cast<size_t>(node.id)]) {
            node.dead = true;
            ++removed;
        }
    }
    return removed;
}

int64_t
fuseLutActivations(Graph &graph)
{
    const auto succ = graph.successors();
    int64_t fused = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || !isLutActivation(node.op))
            continue;
        const NodeId producerId = node.inputs[0];
        Node &producer = graph.node(producerId);
        if (!isMatMulFamily(producer.op) || producer.attrs.fusedLut ||
            succ[static_cast<size_t>(producerId)].size() != 1)
            continue;
        producer.attrs.fusedLut = true;
        for (Node &consumer : graph.nodes()) {
            if (consumer.dead)
                continue;
            for (NodeId &in : consumer.inputs)
                if (in == node.id)
                    in = producerId;
        }
        node.dead = true;
        ++fused;
    }
    if (fused > 0)
        eliminateDeadNodes(graph);
    return fused;
}

int64_t
fuseResidualAdds(Graph &graph)
{
    const auto succ = graph.successors();
    int64_t fused = 0;
    for (Node &node : graph.nodes()) {
        if (node.dead || node.op != OpType::Add || node.inputs.size() != 2)
            continue;
        // Fuse into whichever operand is a matmul-family producer whose
        // only consumer is this add.
        for (size_t which = 0; which < 2; ++which) {
            const NodeId producerId = node.inputs[which];
            Node &producer = graph.node(producerId);
            if (!isMatMulFamily(producer.op) || producer.attrs.fusedAdd ||
                succ[static_cast<size_t>(producerId)].size() != 1)
                continue;
            const NodeId other = node.inputs[1 - which];
            // The residual operand must precede the producer so the
            // rewritten graph stays topological.
            if (other >= producerId)
                continue;
            producer.attrs.fusedAdd = true;
            producer.inputs.push_back(other);
            for (Node &consumer : graph.nodes()) {
                if (consumer.dead)
                    continue;
                for (NodeId &in : consumer.inputs)
                    if (in == node.id)
                        in = producerId;
            }
            node.dead = true;
            ++fused;
            break;
        }
    }
    if (fused > 0)
        eliminateDeadNodes(graph);
    return fused;
}

PassStats
optimize(Graph &graph)
{
    inferShapes(graph);
    PassStats stats;
    stats.foldedNodes = foldConstants(graph);
    stats.fusedActivations = fuseClampActivations(graph);
    stats.removedNodes = eliminateDeadNodes(graph);
    inferShapes(graph);
    return stats;
}

} // namespace gcd2::graph
