/**
 * @file
 * The computational graph (CG) intermediate representation.
 *
 * Matches the IR described in Section IV-A: vertices are operations, each
 * producing exactly one output tensor; a directed edge (vi, vj) means vi's
 * output is an input of vj. Node ids are stable indices into the graph's
 * node vector; builders append in topological order (inputs before
 * consumers), which the structure validates.
 */
#ifndef GCD2_GRAPH_GRAPH_H
#define GCD2_GRAPH_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op.h"
#include "tensor/tensor.h"

namespace gcd2::graph {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/** One operation in the CG. */
struct Node
{
    NodeId id = kInvalidNode;
    OpType op = OpType::Input;
    std::string name;
    std::vector<NodeId> inputs;
    NodeAttrs attrs;
    tensor::Shape shape; ///< output shape (set by shape inference)
    bool dead = false;   ///< marked by elimination passes
};

/** The DAG of a model. */
class Graph
{
  public:
    /** Append a node; inputs must already exist (topological append). */
    NodeId add(OpType op, std::vector<NodeId> inputs,
               NodeAttrs attrs = {}, std::string name = {});

    Node &node(NodeId id);
    const Node &node(NodeId id) const;

    size_t size() const { return nodes_.size(); }

    /** Live (non-dead) operator count, excluding Input/Constant/Output. */
    int64_t operatorCount() const;

    /** Multiply-accumulate count of one node (0 for non-compute ops). */
    int64_t nodeMacs(NodeId id) const;

    /** Total MACs over live nodes. */
    int64_t totalMacs() const;

    /** Ids of live nodes in topological (append) order. */
    std::vector<NodeId> topoOrder() const;

    /** Consumers of each node (live nodes only). */
    std::vector<std::vector<NodeId>> successors() const;

    const std::vector<Node> &nodes() const { return nodes_; }
    std::vector<Node> &nodes() { return nodes_; }

    std::string toString() const;

  private:
    std::vector<Node> nodes_;
};

/** Infer output shapes for every node (inputs must carry shapes). */
void inferShapes(Graph &graph);

/** Per-op shape inference given resolved input shapes. Applies the
 *  fused epilogue transform (attrs.fusedTransform), if any. */
tensor::Shape inferNodeShape(const Node &node,
                             const std::vector<tensor::Shape> &inputs);

/** The shape the node's kernel computes before any fused epilogue
 *  transform is applied -- what the compute loops and the cost model's
 *  scheme mapping see. Equals inferNodeShape when nothing is fused. */
tensor::Shape naturalNodeShape(const Node &node,
                               const std::vector<tensor::Shape> &inputs);

/** naturalNodeShape with input shapes resolved from the graph. */
tensor::Shape naturalNodeShape(const Graph &graph, const Node &node);

} // namespace gcd2::graph

#endif // GCD2_GRAPH_GRAPH_H
