/**
 * @file
 * Non-throwing selection auditor.
 *
 * Proves (or disproves) on every compile that a served Selection actually
 * has the properties the solvers claim:
 *  - structural sanity: every live node carries an in-range plan index,
 *    dead nodes carry none;
 *  - cost honesty: the recorded totalCost re-derives from Eq. 1 via
 *    aggCost;
 *  - solver-quality floor (optional): a global solver's result is never
 *    worse than selectLocal's, the cheapest bar any solver must clear;
 *  - deep mode (optional, expensive): on graphs small enough to solve
 *    exactly, the result's cost matches selectGlobalOptimal's.
 *
 * Violations come back as structured Error diagnostics (pass
 * "selection-audit") rather than panics, so the pipeline can serve the
 * artifact while flagging it suspect.
 */
#ifndef GCD2_SELECT_AUDIT_H
#define GCD2_SELECT_AUDIT_H

#include <vector>

#include "common/diag.h"
#include "select/selector.h"

namespace gcd2::select {

struct SelectionAuditOptions
{
    /**
     * Check selection.totalCost <= selectLocal's Agg_Cost. Only sound
     * for solvers that dominate the local baseline by construction
     * (partitioned / global / budget-seeded); modes that deliberately
     * override plans (Uniform) must leave it off.
     */
    bool checkNotWorseThanLocal = false;
    /** Re-solve exactly and require cost equality on small graphs. */
    bool deep = false;
    /** Free-node cap above which deep mode silently skips (exponential). */
    size_t deepMaxFreeNodes = 12;
};

/**
 * Audit @p selection against @p table. Returns one Error diagnostic per
 * violated invariant (empty = all checks passed). Derived checks that
 * would crash on a structurally broken selection are skipped once the
 * structural pass fails, so the auditor itself never throws.
 */
std::vector<common::Diag>
auditSelection(const PlanTable &table, const Selection &selection,
               const SelectionAuditOptions &opts = {});

/**
 * Deep tiered-costing audit (expensive): re-cost every live node's plans
 * through a scratch *exhaustive* cost model -- tiered costing off, a
 * fresh private CostCache, so nothing the tiered path memoized can leak
 * in -- and prove the table the selection was solved over is what full
 * costing produces. Every plan must either match exactly or carry a
 * valid dominance certificate (its stored bound is a true lower bound,
 * an earlier identical-layout plan is exactly costed strictly below it),
 * and the *selected* plan of every node must match exactly -- which,
 * with TC independent of costing, proves the served Eq.-1 total is
 * bit-identical to unpruned costing. Returns Error diagnostics (pass
 * "tiered-audit"; empty = proven).
 */
std::vector<common::Diag>
auditTieredCosts(const PlanTable &table, const Selection &selection,
                 const CostModelOptions &options);

} // namespace gcd2::select

#endif // GCD2_SELECT_AUDIT_H
