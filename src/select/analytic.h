/**
 * @file
 * Tier-1 analytic cost bounds: certified lower/upper cycle bounds for a
 * kernel program derived from static slot pressure and loop trip counts,
 * with no simulation (DESIGN.md section 16).
 *
 * The analyzer recognizes the loop shape every generated kernel uses --
 * well-nested do-while loops with a backward JUMPNZ -- and certifies
 * each loop's trip count through the global value-flow analysis
 * (analysis/valueflow.h): the counter's value at the branch must
 * value-number to an affine constant over the loop's own induction
 * variable. That covers the classic MOVI-init/decrement idiom and any
 * register-trip variant that reduces to it (trip counts hoisted through
 * MOVs, non-unit negative strides, counters rematerialized from other
 * registers). Static instruction counts multiplied through the trip
 * counts give exact dynamic execution counts.
 *
 * From those counts:
 *  - the *lower bound* is dynamic-packet pressure: the simulator issues at
 *    most one packet per cycle and every packet respects the machine's
 *    slot constraints (4 slots, 2 memory, 1 store port, 1 shift unit,
 *    1 permute unit, 2 multiply pipelines, 1 branch), so cycles >=
 *    max over resources of ceil(dynamic demand / resource width);
 *  - the *upper bound* assumes every instruction issues alone and pays
 *    the worst dependence stall the scoreboard can charge (producer
 *    latency plus the maximum forwarding penalty), plus the drain of the
 *    longest-latency instruction at program end.
 *
 * Programs whose control flow the analyzer cannot resolve (forward
 * branches, unconditional jumps, unrecognized counter idioms) yield
 * `certified == false`, and callers must not prune based on the bounds.
 * Soundness of dominance pruning (select/tiered_cost.h) rests only on
 * `lower <= simulated cycles` for certified programs.
 */
#ifndef GCD2_SELECT_ANALYTIC_H
#define GCD2_SELECT_ANALYTIC_H

#include <cstdint>

#include "dsp/isa.h"

namespace gcd2::select {

/** Certified cycle bounds for one kernel program. */
struct AnalyticBounds
{
    /** Cycles the timing simulator cannot beat (0 when uncertified). */
    uint64_t lower = 0;
    /** Cycles the timing simulator cannot exceed (0 when uncertified). */
    uint64_t upper = 0;
    /** Dynamic instruction count implied by the resolved trip counts. */
    uint64_t dynamicInstructions = 0;
    /** Loop structure fully resolved; bounds are trustworthy. */
    bool certified = false;
};

/**
 * Analyze @p prog and derive certified cycle bounds. Pure static
 * analysis; never packs or simulates. Returns certified == false (with
 * zero bounds) when the program's control flow does not match the
 * recognized well-nested counted-loop shape.
 */
AnalyticBounds analyzeProgram(const dsp::Program &prog);

} // namespace gcd2::select

#endif // GCD2_SELECT_ANALYTIC_H
