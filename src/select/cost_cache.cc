#include "select/cost_cache.h"

#include <bit>

namespace gcd2::select {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
mix(uint64_t hash, uint64_t value)
{
    hash ^= value;
    return hash * kFnvPrime;
}

} // namespace

size_t
CostKeyHash::operator()(const CostKey &key) const noexcept
{
    uint64_t hash = kFnvOffset;
    hash = mix(hash, static_cast<uint64_t>(key.kind));
    hash = mix(hash, static_cast<uint64_t>(static_cast<int64_t>(key.tag)));
    hash = mix(hash, static_cast<uint64_t>(key.unrollOut));
    hash = mix(hash, static_cast<uint64_t>(key.unrollCols));
    hash = mix(hash, static_cast<uint64_t>(key.unrollK));
    hash = mix(hash, static_cast<uint64_t>(key.extent));
    hash = mix(hash, static_cast<uint64_t>(key.policy));
    hash = mix(hash, std::bit_cast<uint64_t>(key.packW));
    hash = mix(hash, std::bit_cast<uint64_t>(key.packPenaltyScale));
    return static_cast<size_t>(hash);
}

} // namespace gcd2::select
