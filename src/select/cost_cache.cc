#include "select/cost_cache.h"

#include <bit>

namespace gcd2::select {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
mix(uint64_t hash, uint64_t value)
{
    hash ^= value;
    return hash * kFnvPrime;
}

} // namespace

size_t
CostKeyHash::operator()(const CostKey &key) const noexcept
{
    uint64_t hash = kFnvOffset;
    hash = mix(hash, static_cast<uint64_t>(key.kind));
    hash = mix(hash, static_cast<uint64_t>(static_cast<int64_t>(key.tag)));
    hash = mix(hash, static_cast<uint64_t>(key.unrollOut));
    hash = mix(hash, static_cast<uint64_t>(key.unrollCols));
    hash = mix(hash, static_cast<uint64_t>(key.unrollK));
    hash = mix(hash, static_cast<uint64_t>(key.extent));
    hash = mix(hash, static_cast<uint64_t>(key.policy));
    hash = mix(hash, std::bit_cast<uint64_t>(key.packW));
    hash = mix(hash, std::bit_cast<uint64_t>(key.packPenaltyScale));
    return static_cast<size_t>(hash);
}

CostCache::Shard &
CostCache::shardFor(const CostKey &key)
{
    return shards_[CostKeyHash{}(key) % kShardCount];
}

NodeExecStats
CostCache::lookupOrCompute(const CostKey &key,
                           const std::function<NodeExecStats()> &compute)
{
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    // Simulate outside the lock; the value is a pure function of the
    // key, so a concurrent duplicate computation is wasted work at
    // worst, never a different answer.
    const NodeExecStats value = compute();
    misses_.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.map.try_emplace(key, value);
    return it->second;
}

size_t
CostCache::size() const
{
    size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

void
CostCache::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

} // namespace gcd2::select
