#include "select/selector.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "select/free_graph.h"

namespace gcd2::select {

using graph::NodeId;
using graph::OpType;

namespace {

/**
 * Structural node signature (tier 3 of tiered costing, DESIGN.md
 * section 16): two live nodes with equal signatures produce identical
 * costedPlans vectors, because plan enumeration and the cost model read
 * nothing else about a node -- its op, its full attribute set, its
 * output shape, and its inputs' ops and shapes. Compared exactly (no
 * hashing), so equal signatures really do mean identical costing
 * inputs.
 */
std::vector<int64_t>
nodeSignature(const graph::Graph &graph, const graph::Node &node)
{
    std::vector<int64_t> sig;
    auto pushShape = [&sig](const tensor::Shape &shape) {
        sig.push_back(shape.rank());
        for (int64_t d : shape.dims())
            sig.push_back(d);
    };
    auto pushVec = [&sig](const auto &values) {
        sig.push_back(static_cast<int64_t>(values.size()));
        for (const auto v : values)
            sig.push_back(static_cast<int64_t>(v));
    };
    sig.push_back(static_cast<int64_t>(node.op));
    pushShape(node.shape);

    const graph::NodeAttrs &a = node.attrs;
    sig.insert(sig.end(),
               {a.outC, a.kH, a.kW, a.strideH, a.strideW, a.padH, a.padW,
                a.transposeB ? 1 : 0, a.poolK, a.poolStride, a.clampLo,
                a.clampHi, a.axis, a.fusedClamp ? 1 : 0, a.fusedLo,
                a.fusedHi, a.fusedLut ? 1 : 0, a.fusedAdd ? 1 : 0,
                a.fusedTransform ? 1 : 0,
                a.fusedTransformPermutes ? 1 : 0});
    int64_t exponentBits = 0;
    static_assert(sizeof(exponentBits) == sizeof(a.exponent));
    std::memcpy(&exponentBits, &a.exponent, sizeof(exponentBits));
    sig.push_back(exponentBits);
    pushVec(a.targetShape);
    pushVec(a.perm);
    pushVec(a.fusedOutShape);

    sig.push_back(static_cast<int64_t>(node.inputs.size()));
    for (NodeId in : node.inputs) {
        const graph::Node &producer = graph.node(in);
        sig.push_back(static_cast<int64_t>(producer.op));
        pushShape(producer.shape);
    }
    return sig;
}

} // namespace

PlanTable::PlanTable(const graph::Graph &graph, const CostModel &model,
                     ThreadPool *pool)
    : graph_(&graph), model_(&model)
{
    plans_.resize(graph.size());
    const std::vector<graph::Node> &nodes = graph.nodes();
    // Every table lookup below is keyed by node id, so ids must be a
    // dense [0, size) enumeration matching storage order. Check once
    // here rather than trusting each path to agree.
    for (size_t i = 0; i < nodes.size(); ++i)
        GCD2_ASSERT(static_cast<size_t>(nodes[i].id) == i,
                    "graph node ids must be dense and positional (node "
                        << nodes[i].id << " at index " << i << ")");
    if (model.options().tieredCosting) {
        // Shape-class canonicalization: group live nodes by structural
        // signature, cost one representative per class (batched through
        // the pool -- classes, not nodes, are the unit of work), and
        // copy its plan vector to every member. Identical signatures
        // feed the cost model identical inputs, so the copies are what
        // per-node costing would have produced bit for bit.
        std::map<std::vector<int64_t>, std::vector<NodeId>> classes;
        for (const graph::Node &node : nodes)
            if (!node.dead)
                classes[nodeSignature(graph, node)].push_back(node.id);
        std::vector<const std::vector<NodeId> *> groups;
        groups.reserve(classes.size());
        for (const auto &entry : classes)
            groups.push_back(&entry.second);
        auto costClass = [&](const std::vector<NodeId> &members) {
            // Members are disjoint across groups, so parallel writes
            // never touch the same plan slot.
            const NodeId rep = members.front();
            plans_[static_cast<size_t>(rep)] =
                model.costedPlans(graph, rep);
            for (size_t m = 1; m < members.size(); ++m)
                plans_[static_cast<size_t>(members[m])] =
                    plans_[static_cast<size_t>(rep)];
        };
        if (pool != nullptr && pool->size() > 1) {
            pool->parallelFor(
                static_cast<int64_t>(groups.size()), [&](int64_t i) {
                    costClass(*groups[static_cast<size_t>(i)]);
                });
        } else {
            for (const std::vector<NodeId> *members : groups)
                costClass(*members);
        }
        stats_.shapeClasses = classes.size();
        for (const auto &entry : classes) {
            const size_t copies = entry.second.size() - 1;
            stats_.sharedNodes += copies;
            stats_.sharedPlans +=
                copies *
                plans_[static_cast<size_t>(entry.second.front())].size();
        }
    } else if (pool != nullptr && pool->size() > 1) {
        // Each node's plan set is an independent pure computation (the
        // cost model's memo cache is thread-safe), so any iteration
        // order yields the same table.
        pool->parallelFor(
            static_cast<int64_t>(nodes.size()), [&](int64_t i) {
                const graph::Node &node = nodes[static_cast<size_t>(i)];
                if (!node.dead)
                    plans_[static_cast<size_t>(node.id)] =
                        model.costedPlans(graph, node.id);
            });
    } else {
        for (const graph::Node &node : nodes)
            if (!node.dead)
                plans_[static_cast<size_t>(node.id)] =
                    model.costedPlans(graph, node.id);
    }
    // Edge and free-node enumeration stays serial so their order (which
    // downstream solvers iterate in) is independent of thread count.
    for (const graph::Node &node : nodes) {
        if (node.dead)
            continue;
        for (NodeId in : node.inputs)
            if (!graph.node(in).dead)
                edges_.emplace_back(in, node.id);
        if (plans_[static_cast<size_t>(node.id)].size() > 1)
            freeNodes_.push_back(node.id);
    }
}

uint64_t
PlanTable::tc(NodeId producer, NodeId consumer, int producerPlan,
              int consumerPlan) const
{
    const graph::Node &src = graph_->node(producer);
    // Constants (weights, tables) are packed at compile time: free.
    if (src.op == OpType::Constant)
        return 0;
    const ExecutionPlan &from =
        plans_[static_cast<size_t>(producer)]
              [static_cast<size_t>(producerPlan)];
    const ExecutionPlan &to =
        plans_[static_cast<size_t>(consumer)]
              [static_cast<size_t>(consumerPlan)];
    return model_->transformCost(src.shape, from.outLayout, to.inLayout);
}

uint64_t
aggCost(const PlanTable &table, const Selection &selection)
{
    const graph::Graph &graph = table.graph();
    uint64_t total = 0;
    for (const graph::Node &node : graph.nodes()) {
        if (node.dead)
            continue;
        const int plan =
            selection.planIndex[static_cast<size_t>(node.id)];
        GCD2_ASSERT(plan >= 0, "live node " << node.id << " unselected");
        total += table.plans(node.id)[static_cast<size_t>(plan)].cycles;
    }
    for (const auto &[src, dst] : table.edges()) {
        total += table.tc(src, dst,
                          selection.planIndex[static_cast<size_t>(src)],
                          selection.planIndex[static_cast<size_t>(dst)]);
    }
    return total;
}

namespace {

Selection
emptySelection(const PlanTable &table)
{
    Selection sel;
    sel.planIndex.assign(table.graph().size(), -1);
    for (const graph::Node &node : table.graph().nodes())
        if (!node.dead)
            sel.planIndex[static_cast<size_t>(node.id)] = 0;
    return sel;
}

/** Pre-assign every free node its cheapest plan (selectLocal's argmin
 *  and tie-breaking), so chunked or budget-truncated searches start
 *  from -- and, solving one subset at a time with the rest fixed, can
 *  only improve on -- the local baseline. */
void
seedCheapestPlans(const PlanTable &table, Selection &sel)
{
    for (NodeId id : table.freeNodes()) {
        const auto &plans = table.plans(id);
        int bestPlan = 0;
        for (size_t p = 1; p < plans.size(); ++p)
            if (plans[p].cycles <
                plans[static_cast<size_t>(bestPlan)].cycles)
                bestPlan = static_cast<int>(p);
        sel.planIndex[static_cast<size_t>(id)] = bestPlan;
    }
}

/**
 * Branch-and-bound optimal assignment of @p subset (free nodes), given
 * that every node with planIndex >= 0 outside the subset is already
 * decided. Edges to undecided nodes outside the subset are ignored
 * (their chunks pay the cost when they are solved).
 *
 * @p evalLimit is an *absolute* cap on the shared @p evaluations
 * counter (0 = unlimited), so several calls drawing from one pool --
 * the chunks and polish windows of an oversized component -- cannot
 * each re-grant themselves a fresh budget. Once the counter reaches the
 * cap the search stops and serves the best complete assignment seen,
 * setting @p truncated; a call entered with the pool already exhausted
 * keeps the caller's standing assignment untouched. Budgeted searches
 * are seeded with complete incumbents (the caller's current assignment,
 * adopted without charge, plus the per-node-cheapest plans and the
 * greedy argmin of the folded base costs), so even a spent budget
 * yields an assignment no worse than any of those.
 */
void
solveSubsetOptimal(const PlanTable &table, const std::vector<NodeId> &subset,
                   Selection &sel, uint64_t &evaluations,
                   uint64_t evalLimit, bool &truncated)
{
    const size_t n = subset.size();
    if (n == 0)
        return;
    if (evalLimit != 0 && evaluations >= evalLimit) {
        truncated = true;
        return; // pool exhausted by earlier subproblems: keep the prior
    }

    std::vector<int> posOf(table.graph().size(), -1);
    for (size_t i = 0; i < n; ++i)
        posOf[static_cast<size_t>(subset[i])] = static_cast<int>(i);

    // Remember any pre-existing assignment: it becomes an incumbent so
    // budget-truncated polish passes can only improve on it.
    std::vector<int> prior(n, -1);
    bool priorComplete = true;
    for (size_t i = 0; i < n; ++i) {
        prior[i] = sel.planIndex[static_cast<size_t>(subset[i])];
        if (prior[i] < 0 ||
            prior[i] >=
                static_cast<int>(table.plans(subset[i]).size()))
            priorComplete = false;
    }

    // Mark subset nodes as undecided for base-cost computation.
    for (NodeId id : subset)
        sel.planIndex[static_cast<size_t>(id)] = -1;

    // base[i][p]: node cost + TC on edges whose other endpoint is already
    // decided outside the subset.
    std::vector<std::vector<uint64_t>> base(n);
    for (size_t i = 0; i < n; ++i) {
        const auto &plans = table.plans(subset[i]);
        base[i].resize(plans.size());
        for (size_t p = 0; p < plans.size(); ++p)
            base[i][p] = plans[p].cycles;
    }

    struct PairEdge
    {
        int a, b; // positions in subset, a < b in iteration order
        std::vector<std::vector<uint64_t>> tc;
    };
    std::vector<PairEdge> pairs;
    // pairsAt[i]: pair edges whose later endpoint is i.
    std::vector<std::vector<int>> pairsAt(n);

    for (const auto &[src, dst] : table.edges()) {
        const int pi = posOf[static_cast<size_t>(src)];
        const int pj = posOf[static_cast<size_t>(dst)];
        if (pi >= 0 && pj >= 0) {
            PairEdge edge;
            edge.a = std::min(pi, pj);
            edge.b = std::max(pi, pj);
            const auto &aPlans = table.plans(subset[edge.a]);
            const auto &bPlans = table.plans(subset[edge.b]);
            edge.tc.assign(aPlans.size(),
                           std::vector<uint64_t>(bPlans.size(), 0));
            for (size_t pa = 0; pa < aPlans.size(); ++pa)
                for (size_t pb = 0; pb < bPlans.size(); ++pb) {
                    const int srcPlan = pi == edge.a
                                            ? static_cast<int>(pa)
                                            : static_cast<int>(pb);
                    const int dstPlan = pi == edge.a
                                            ? static_cast<int>(pb)
                                            : static_cast<int>(pa);
                    edge.tc[pa][pb] =
                        table.tc(src, dst, srcPlan, dstPlan);
                }
            pairsAt[static_cast<size_t>(edge.b)].push_back(
                static_cast<int>(pairs.size()));
            pairs.push_back(std::move(edge));
        } else if (pi >= 0 || pj >= 0) {
            // One endpoint inside: fold into base if the outside endpoint
            // is decided.
            const int inside = pi >= 0 ? pi : pj;
            const NodeId outsideId = pi >= 0 ? dst : src;
            const int outsidePlan =
                sel.planIndex[static_cast<size_t>(outsideId)];
            if (outsidePlan < 0)
                continue;
            auto &row = base[static_cast<size_t>(inside)];
            for (size_t p = 0; p < row.size(); ++p) {
                const int srcPlan =
                    pi >= 0 ? static_cast<int>(p) : outsidePlan;
                const int dstPlan =
                    pi >= 0 ? outsidePlan : static_cast<int>(p);
                row[p] += table.tc(src, dst, srcPlan, dstPlan);
            }
        }
    }

    // Admissible remainder bound: best base cost of each later node.
    std::vector<uint64_t> suffixLb(n + 1, 0);
    for (size_t i = n; i-- > 0;)
        suffixLb[i] = suffixLb[i + 1] +
                      *std::min_element(base[i].begin(), base[i].end());

    // Full-assignment cost under the same metric the search minimizes
    // (folded base + intra-subset pair edges).
    const auto assignmentCost = [&](const std::vector<int> &assign) {
        uint64_t cost = 0;
        for (size_t i = 0; i < n; ++i)
            cost += base[i][static_cast<size_t>(assign[i])];
        for (const PairEdge &edge : pairs)
            cost += edge.tc[static_cast<size_t>(
                assign[static_cast<size_t>(edge.a)])]
                           [static_cast<size_t>(
                               assign[static_cast<size_t>(edge.b)])];
        return cost;
    };

    std::vector<int> best(n, 0);
    uint64_t bestCost = UINT64_MAX;
    const auto seedIncumbent = [&](const std::vector<int> &assign,
                                   bool charged) {
        if (charged) {
            if (evaluations >= evalLimit)
                return; // the pool is spent; prior was adopted free
            ++evaluations;
        }
        const uint64_t cost = assignmentCost(assign);
        if (cost < bestCost) {
            bestCost = cost;
            best = assign;
        }
    };

    // Incumbents bound how bad a budget-truncated answer can get. Only
    // seeded when a budget is active: an unbudgeted search always runs
    // to proven optimality anyway, and seeding would change its pruning
    // and hence its evaluation telemetry (which benches compare).
    // Adopting the caller's standing assignment is free (it is not a
    // newly examined combination), so the strict budget bound holds
    // while every call still returns a complete assignment.
    if (evalLimit != 0) {
        if (priorComplete)
            seedIncumbent(prior, /*charged=*/false);
        std::vector<int> seed(n, 0);
        for (size_t i = 0; i < n; ++i) {
            const auto &plans = table.plans(subset[i]);
            int arg = 0;
            for (size_t p = 1; p < plans.size(); ++p)
                if (plans[p].cycles <
                    plans[static_cast<size_t>(arg)].cycles)
                    arg = static_cast<int>(p);
            seed[i] = arg;
        }
        seedIncumbent(seed, /*charged=*/true); // per-node cheapest
        for (size_t i = 0; i < n; ++i) {
            seed[i] = static_cast<int>(
                std::min_element(base[i].begin(), base[i].end()) -
                base[i].begin());
        }
        seedIncumbent(seed, /*charged=*/true); // greedy folded argmin
    }

    // Iterative depth-first branch and bound.
    std::vector<int> current(n, -1);
    std::vector<uint64_t> partial(n + 1, 0);
    size_t depth = 0;
    while (true) {
        if (current[depth] + 1 >=
            static_cast<int>(base[depth].size())) {
            // Exhausted this level: backtrack.
            current[depth] = -1;
            if (depth == 0)
                break;
            --depth;
            continue;
        }
        if (evalLimit != 0 && evaluations >= evalLimit) {
            truncated = true;
            break; // serve the best incumbent found so far
        }
        ++current[depth];
        ++evaluations;

        uint64_t cost = partial[depth] +
                        base[depth][static_cast<size_t>(current[depth])];
        for (int e : pairsAt[depth]) {
            const PairEdge &edge = pairs[static_cast<size_t>(e)];
            cost += edge.tc[static_cast<size_t>(
                current[static_cast<size_t>(edge.a)])]
                           [static_cast<size_t>(current[depth])];
        }
        if (cost + suffixLb[depth + 1] >= bestCost)
            continue; // prune
        if (depth + 1 == n) {
            bestCost = cost;
            best = current;
            continue;
        }
        partial[depth + 1] = cost;
        ++depth;
    }

    GCD2_ASSERT(bestCost != UINT64_MAX, "branch and bound found nothing");
    for (size_t i = 0; i < n; ++i)
        sel.planIndex[static_cast<size_t>(subset[i])] = best[i];
}

/** Connected components of the free nodes via free-free edges. */
std::vector<std::vector<NodeId>>
freeComponents(const PlanTable &table)
{
    const auto &free = table.freeNodes();
    std::vector<int> comp(table.graph().size(), -1);
    for (NodeId id : free)
        comp[static_cast<size_t>(id)] = static_cast<int>(id);

    // Union-find (path-halving).
    std::vector<int> parent(table.graph().size());
    for (size_t i = 0; i < parent.size(); ++i)
        parent[i] = static_cast<int>(i);
    auto find = [&](int x) {
        while (parent[static_cast<size_t>(x)] != x) {
            parent[static_cast<size_t>(x)] =
                parent[static_cast<size_t>(
                    parent[static_cast<size_t>(x)])];
            x = parent[static_cast<size_t>(x)];
        }
        return x;
    };
    for (const auto &[src, dst] : table.edges()) {
        if (comp[static_cast<size_t>(src)] >= 0 &&
            comp[static_cast<size_t>(dst)] >= 0) {
            parent[static_cast<size_t>(find(src))] = find(dst);
        }
    }

    std::map<int, std::vector<NodeId>> byRoot;
    for (NodeId id : free)
        byRoot[find(id)].push_back(id);

    std::vector<std::vector<NodeId>> components;
    for (auto &[root, nodes] : byRoot) {
        std::sort(nodes.begin(), nodes.end()); // topological (append) order
        components.push_back(std::move(nodes));
    }
    return components;
}

/**
 * Eq. 2 chain/in-tree DP with first-visitor reconstruction and
 * coordinate-descent conflict repair -- the historical middle rung,
 * kept as the fallback for components whose biconnected blocks are too
 * large to enumerate exactly. Expects @p result pre-initialized with a
 * complete selection (every live node assigned); overwrites it.
 */
void
chainDpClassic(const PlanTable &table, SelectorResult &result)
{
    const graph::Graph &graph = table.graph();

    // Eq. 2, generalized from chains to in-trees: process in topological
    // order; dp[v][p] = Cost(ep_p(v)) + sum over inputs of
    // min_q (dp[in][q] + TC(ep_q(in), ep_p(v))).
    std::vector<std::vector<uint64_t>> dp(graph.size());
    std::vector<std::vector<std::vector<int>>> choice(graph.size());

    for (const graph::Node &node : graph.nodes()) {
        if (node.dead)
            continue;
        const auto &plans = table.plans(node.id);
        dp[static_cast<size_t>(node.id)].resize(plans.size());
        choice[static_cast<size_t>(node.id)].resize(plans.size());
        for (size_t p = 0; p < plans.size(); ++p) {
            uint64_t cost = plans[p].cycles;
            auto &picks = choice[static_cast<size_t>(node.id)][p];
            for (NodeId in : node.inputs) {
                if (graph.node(in).dead)
                    continue;
                const auto &inDp = dp[static_cast<size_t>(in)];
                uint64_t bestIn = UINT64_MAX;
                int bestQ = 0;
                for (size_t q = 0; q < inDp.size(); ++q) {
                    const uint64_t c =
                        inDp[q] + table.tc(in, node.id,
                                           static_cast<int>(q),
                                           static_cast<int>(p));
                    ++result.evaluations;
                    if (c < bestIn) {
                        bestIn = c;
                        bestQ = static_cast<int>(q);
                    }
                }
                cost += bestIn;
                picks.push_back(bestQ);
            }
            dp[static_cast<size_t>(node.id)][p] = cost;
        }
    }

    // Reconstruct from the outputs downward. On in-trees every producer
    // is visited once and the reconstruction is exact. With fan-out a
    // producer may be claimed by several consumers that each want a
    // different plan; the first visitor wins provisionally and the node
    // is marked conflicted for repair below.
    std::vector<bool> assigned(graph.size(), false);
    std::vector<bool> conflicted(graph.size(), false);
    bool anyConflict = false;
    std::vector<std::pair<NodeId, int>> work;
    for (const graph::Node &node : graph.nodes())
        if (!node.dead && node.op == OpType::Output)
            work.emplace_back(node.id, 0);
    while (!work.empty()) {
        const auto [id, plan] = work.back();
        work.pop_back();
        if (assigned[static_cast<size_t>(id)]) {
            if (result.selection.planIndex[static_cast<size_t>(id)] !=
                plan) {
                conflicted[static_cast<size_t>(id)] = true;
                anyConflict = true;
            }
            continue;
        }
        assigned[static_cast<size_t>(id)] = true;
        result.selection.planIndex[static_cast<size_t>(id)] = plan;
        const graph::Node &node = graph.node(id);
        size_t liveInput = 0;
        for (NodeId in : node.inputs) {
            if (graph.node(in).dead)
                continue;
            work.emplace_back(
                in, choice[static_cast<size_t>(id)]
                          [static_cast<size_t>(plan)][liveInput]);
            ++liveInput;
        }
    }

    // Conflict repair: the first-visitor choice can be strictly worse
    // than even selectLocal's on fan-out DAGs. Re-resolve each
    // conflicted producer by picking the plan minimizing its share of
    // the re-evaluated Agg_Cost with every other choice held fixed --
    // plain coordinate descent, monotone in Agg_Cost, with a strict-<
    // acceptance so it terminates and is deterministic.
    if (anyConflict) {
        const auto &edges = table.edges();
        std::vector<std::vector<size_t>> edgesAt(graph.size());
        for (size_t e = 0; e < edges.size(); ++e) {
            edgesAt[static_cast<size_t>(edges[e].first)].push_back(e);
            edgesAt[static_cast<size_t>(edges[e].second)].push_back(e);
        }
        auto &sel = result.selection.planIndex;
        const auto localShare = [&](NodeId id, int p) {
            uint64_t c =
                table.plans(id)[static_cast<size_t>(p)].cycles;
            for (size_t e : edgesAt[static_cast<size_t>(id)]) {
                const auto &[src, dst] = edges[e];
                if (src == id)
                    c += table.tc(src, dst, p,
                                  sel[static_cast<size_t>(dst)]);
                else
                    c += table.tc(src, dst,
                                  sel[static_cast<size_t>(src)], p);
            }
            return c;
        };
        bool changed = true;
        for (int round = 0; round < 8 && changed; ++round) {
            changed = false;
            for (const graph::Node &node : graph.nodes()) {
                if (node.dead || !conflicted[static_cast<size_t>(
                                     node.id)])
                    continue;
                const auto &plans = table.plans(node.id);
                const int cur = sel[static_cast<size_t>(node.id)];
                int bestPlan = cur;
                uint64_t bestShare = localShare(node.id, cur);
                for (size_t p = 0; p < plans.size(); ++p) {
                    if (static_cast<int>(p) == cur)
                        continue;
                    ++result.evaluations;
                    const uint64_t share =
                        localShare(node.id, static_cast<int>(p));
                    if (share < bestShare) {
                        bestShare = share;
                        bestPlan = static_cast<int>(p);
                    }
                }
                if (bestPlan != cur) {
                    sel[static_cast<size_t>(node.id)] = bestPlan;
                    changed = true;
                }
            }
        }
    }
}

/** Enumeration guard for one biconnected block: past this many plan
 *  combinations the block is not exhaustively solvable and the
 *  component falls back to chainDpClassic. */
constexpr uint64_t kMaxBlockCombos = 200000;

/** One biconnected block of the free graph: node positions plus the fg
 *  edge indices inside it. Cut vertices appear in several blocks. */
struct BcBlock
{
    std::vector<int> nodes;
    std::vector<int> edges;
};

/** Biconnected components of @p fg restricted to @p component
 *  (iterative Tarjan over the merged free-free edges; fg has no
 *  parallel edges or self loops, so the parent edge is unique). */
std::vector<BcBlock>
biconnectedBlocks(const FreeGraph &fg, const std::vector<int> &component)
{
    std::vector<BcBlock> blocks;
    std::vector<int> disc(fg.size(), -1);
    std::vector<int> low(fg.size(), 0);
    std::vector<int> stamp(fg.size(), -1);
    std::vector<int> edgeStack;
    int clock = 0;

    const auto popBlock = [&](int untilEdge) {
        BcBlock block;
        while (true) {
            const int e = edgeStack.back();
            edgeStack.pop_back();
            block.edges.push_back(e);
            const FreeGraph::Edge &edge =
                fg.edges[static_cast<size_t>(e)];
            for (const int endpoint : {edge.a, edge.b}) {
                if (stamp[static_cast<size_t>(endpoint)] !=
                    static_cast<int>(blocks.size())) {
                    stamp[static_cast<size_t>(endpoint)] =
                        static_cast<int>(blocks.size());
                    block.nodes.push_back(endpoint);
                }
            }
            if (e == untilEdge)
                break;
        }
        blocks.push_back(std::move(block));
    };

    struct Frame
    {
        int node;
        int parentEdge;
        size_t next;
    };
    std::vector<Frame> frames;
    for (const int start : component) {
        if (disc[static_cast<size_t>(start)] >= 0)
            continue;
        disc[static_cast<size_t>(start)] =
            low[static_cast<size_t>(start)] = clock++;
        frames.push_back({start, -1, 0});
        while (!frames.empty()) {
            Frame &f = frames.back();
            const int u = f.node;
            if (f.next < fg.adj[static_cast<size_t>(u)].size()) {
                const int e =
                    fg.adj[static_cast<size_t>(u)][f.next++];
                if (e == f.parentEdge)
                    continue;
                const int w = fg.otherEnd(e, u);
                if (disc[static_cast<size_t>(w)] < 0) {
                    edgeStack.push_back(e);
                    disc[static_cast<size_t>(w)] =
                        low[static_cast<size_t>(w)] = clock++;
                    // Invalidates f: fall to the loop top immediately.
                    frames.push_back({w, e, 0});
                } else if (disc[static_cast<size_t>(w)] <
                           disc[static_cast<size_t>(u)]) {
                    // Back edge to an ancestor (forward-seen edges were
                    // already stacked from the other side).
                    edgeStack.push_back(e);
                    low[static_cast<size_t>(u)] =
                        std::min(low[static_cast<size_t>(u)],
                                 disc[static_cast<size_t>(w)]);
                }
                continue;
            }
            const int pe = f.parentEdge;
            frames.pop_back();
            if (frames.empty())
                continue;
            Frame &pf = frames.back();
            low[static_cast<size_t>(pf.node)] =
                std::min(low[static_cast<size_t>(pf.node)],
                         low[static_cast<size_t>(u)]);
            if (low[static_cast<size_t>(u)] >=
                disc[static_cast<size_t>(pf.node)])
                popBlock(pe); // pf.node is a cut vertex (or the root)
        }
    }
    return blocks;
}

/**
 * Exact solve of one free-graph component via its block-cut tree: each
 * biconnected block is enumerated exhaustively, and blocks compose
 * through their cut vertices with per-plan messages -- chain DP across
 * the tree, so the result is an Agg_Cost optimum of the component.
 * Returns false, leaving @p assign untouched, when any block's
 * combination count exceeds kMaxBlockCombos.
 */
bool
treeDpComponent(const FreeGraph &fg, const std::vector<int> &component,
                std::vector<int> &assign, uint64_t &evaluations)
{
    if (component.size() == 1) {
        const int i = component[0];
        const auto &vec = fg.vectors[static_cast<size_t>(i)];
        assign[static_cast<size_t>(i)] = static_cast<int>(
            std::min_element(vec.begin(), vec.end()) - vec.begin());
        evaluations += vec.size();
        return true;
    }

    const std::vector<BcBlock> blocks =
        biconnectedBlocks(fg, component);
    GCD2_ASSERT(!blocks.empty(), "connected component without blocks");
    for (const BcBlock &block : blocks) {
        uint64_t combos = 1;
        for (const int i : block.nodes) {
            combos *= fg.planCount(i);
            if (combos > kMaxBlockCombos)
                return false; // oversized block: nothing mutated yet
        }
    }

    // Root the block-cut tree at block 0: BFS order plus, per block,
    // the cut vertex shared with its parent (-1 at the root).
    std::map<int, std::vector<int>> blocksOfCut;
    {
        std::map<int, int> blockCount;
        for (const BcBlock &block : blocks)
            for (const int i : block.nodes)
                ++blockCount[i];
        for (size_t b = 0; b < blocks.size(); ++b)
            for (const int i : blocks[b].nodes)
                if (blockCount[i] > 1)
                    blocksOfCut[i].push_back(static_cast<int>(b));
    }
    std::vector<int> order{0};
    std::vector<int> parentCut(blocks.size(), -1);
    std::vector<uint8_t> visited(blocks.size(), 0);
    visited[0] = 1;
    for (size_t head = 0; head < order.size(); ++head) {
        const int b = order[head];
        for (const int cut : blocks[static_cast<size_t>(b)].nodes) {
            if (cut == parentCut[static_cast<size_t>(b)])
                continue;
            const auto it = blocksOfCut.find(cut);
            if (it == blocksOfCut.end())
                continue;
            for (const int nb : it->second) {
                if (visited[static_cast<size_t>(nb)])
                    continue;
                visited[static_cast<size_t>(nb)] = 1;
                parentCut[static_cast<size_t>(nb)] = cut;
                order.push_back(nb);
            }
        }
    }
    GCD2_ASSERT(order.size() == blocks.size(),
                "block-cut tree of a connected component is connected");

    // Upward pass (reverse BFS): solve each block for every plan q of
    // its parent cut vertex, excluding the cut's own vector cost, and
    // fold the resulting message into the cut's working vector. The
    // root block is solved once outright; its cost then covers the
    // whole component.
    std::vector<std::vector<uint64_t>> workVec(fg.size());
    for (const int i : component)
        workVec[static_cast<size_t>(i)] =
            fg.vectors[static_cast<size_t>(i)];
    // blockChoice[b][q]: argmin plans of the block's non-cut nodes
    // (block node order, cut skipped) given the parent cut at plan q.
    std::vector<std::vector<std::vector<int>>> blockChoice(
        blocks.size());
    std::vector<int> planAt(fg.size(), 0);

    for (size_t bi = order.size(); bi-- > 0;) {
        const int b = order[bi];
        const BcBlock &block = blocks[static_cast<size_t>(b)];
        const int c = parentCut[static_cast<size_t>(b)];
        std::vector<int> others;
        for (const int i : block.nodes)
            if (i != c)
                others.push_back(i);
        const size_t qn = c >= 0 ? fg.planCount(c) : 1;
        blockChoice[static_cast<size_t>(b)].assign(qn, {});
        for (size_t q = 0; q < qn; ++q) {
            if (c >= 0)
                planAt[static_cast<size_t>(c)] = static_cast<int>(q);
            std::vector<int> cur(others.size(), 0);
            for (const int i : others)
                planAt[static_cast<size_t>(i)] = 0;
            uint64_t bestCost = UINT64_MAX;
            std::vector<int> bestAssign;
            while (true) {
                ++evaluations;
                uint64_t cost = 0;
                for (size_t t = 0; t < others.size(); ++t)
                    cost += workVec[static_cast<size_t>(others[t])]
                                   [static_cast<size_t>(cur[t])];
                for (const int e : block.edges) {
                    const FreeGraph::Edge &edge =
                        fg.edges[static_cast<size_t>(e)];
                    cost += edge.cost[static_cast<size_t>(
                        planAt[static_cast<size_t>(edge.a)])]
                                     [static_cast<size_t>(
                                         planAt[static_cast<size_t>(
                                             edge.b)])];
                }
                if (cost < bestCost) {
                    bestCost = cost;
                    bestAssign = cur;
                }
                size_t t = 0;
                while (t < others.size()) {
                    ++cur[t];
                    if (cur[t] < static_cast<int>(
                                     fg.planCount(others[t]))) {
                        planAt[static_cast<size_t>(others[t])] =
                            cur[t];
                        break;
                    }
                    cur[t] = 0;
                    planAt[static_cast<size_t>(others[t])] = 0;
                    ++t;
                }
                if (t == others.size())
                    break;
            }
            blockChoice[static_cast<size_t>(b)][q] =
                std::move(bestAssign);
            if (c >= 0)
                workVec[static_cast<size_t>(c)][q] += bestCost;
        }
        if (c < 0)
            for (size_t t = 0; t < others.size(); ++t)
                assign[static_cast<size_t>(others[t])] =
                    blockChoice[static_cast<size_t>(b)][0][t];
    }

    // Downward pass (BFS order): every non-root block's parent cut is
    // assigned by an earlier block; apply its stored argmin.
    for (size_t bi = 1; bi < order.size(); ++bi) {
        const int b = order[bi];
        const int c = parentCut[static_cast<size_t>(b)];
        const int q = assign[static_cast<size_t>(c)];
        GCD2_ASSERT(q >= 0, "cut vertex unassigned before child block");
        const std::vector<int> &pick =
            blockChoice[static_cast<size_t>(b)][static_cast<size_t>(q)];
        size_t t = 0;
        for (const int i : blocks[static_cast<size_t>(b)].nodes)
            if (i != c)
                assign[static_cast<size_t>(i)] = pick[t++];
    }
    return true;
}

} // namespace

SelectorResult
selectLocal(const PlanTable &table)
{
    const Timer timer;
    SelectorResult result;
    result.selection = emptySelection(table);
    for (const graph::Node &node : table.graph().nodes()) {
        if (node.dead)
            continue;
        const auto &plans = table.plans(node.id);
        int bestPlan = 0;
        for (size_t p = 1; p < plans.size(); ++p) {
            if (plans[p].cycles < plans[static_cast<size_t>(bestPlan)]
                                      .cycles)
                bestPlan = static_cast<int>(p);
        }
        result.selection.planIndex[static_cast<size_t>(node.id)] =
            bestPlan;
        result.evaluations += plans.size();
    }
    result.selection.totalCost = aggCost(table, result.selection);
    result.seconds = timer.seconds();
    return result;
}

SelectorResult
selectChainDp(const PlanTable &table)
{
    const Timer timer;
    SelectorResult result;
    result.selection = emptySelection(table);

    // Decompose the free graph into connected components and each
    // component into its block-cut tree. A component whose biconnected
    // blocks are all enumerable is solved *exactly* -- tree DP across
    // blocks, chain-DP composition at cut vertices -- retiring the
    // first-visitor conflict repair there. Only components with an
    // oversized block still use the classic Eq. 2 pass (run once over
    // the whole graph, then overwritten per decomposable component;
    // sound because free components are independent given the pinned
    // operators, so a per-component optimum can only improve the sum).
    const FreeGraph fg = FreeGraph::build(table);
    std::vector<std::vector<int>> comps;
    {
        std::vector<uint8_t> seen(fg.size(), 0);
        for (size_t i = 0; i < fg.size(); ++i) {
            if (seen[i])
                continue;
            seen[i] = 1;
            comps.push_back({static_cast<int>(i)});
            std::vector<int> &comp = comps.back();
            for (size_t head = 0; head < comp.size(); ++head) {
                const int u = comp[head];
                for (const int e : fg.adj[static_cast<size_t>(u)]) {
                    const int w = fg.otherEnd(e, u);
                    if (!seen[static_cast<size_t>(w)]) {
                        seen[static_cast<size_t>(w)] = 1;
                        comp.push_back(w);
                    }
                }
            }
        }
    }

    std::vector<int> assign(fg.size(), -1);
    std::vector<uint8_t> exact(comps.size(), 0);
    bool allExact = true;
    for (size_t i = 0; i < comps.size(); ++i) {
        exact[i] = treeDpComponent(fg, comps[i], assign,
                                   result.evaluations)
                       ? 1
                       : 0;
        allExact = allExact && exact[i] != 0;
    }

    if (!allExact)
        chainDpClassic(table, result);
    for (size_t i = 0; i < comps.size(); ++i) {
        if (exact[i] == 0)
            continue;
        for (const int pos : comps[i])
            result.selection.planIndex[static_cast<size_t>(
                fg.nodes[static_cast<size_t>(pos)])] =
                assign[static_cast<size_t>(pos)];
    }

    result.selection.totalCost = aggCost(table, result.selection);
    result.seconds = timer.seconds();
    return result;
}

SelectorResult
selectGlobalOptimal(const PlanTable &table, size_t maxFreeNodes,
                    uint64_t maxEvaluations)
{
    // An unbudgeted search must refuse oversized graphs (it cannot bail
    // out mid-flight); a budgeted one degrades to best-so-far instead.
    if (maxEvaluations == 0) {
        GCD2_REQUIRE(table.freeNodes().size() <= maxFreeNodes,
                     "global optimal search over "
                         << table.freeNodes().size()
                         << " free operators would take too long (cap "
                         << maxFreeNodes << ")");
    }
    const Timer timer;
    SelectorResult result;
    result.selection = emptySelection(table);
    // Budgeted searches start from the local baseline so even a
    // first-combination truncation serves an assignment no worse than
    // selectLocal's; unbudgeted searches keep their historical seeding
    // (none) so their evaluation telemetry is untouched.
    if (maxEvaluations != 0)
        seedCheapestPlans(table, result.selection);
    solveSubsetOptimal(table, table.freeNodes(), result.selection,
                       result.evaluations, maxEvaluations,
                       result.truncated);
    result.selection.totalCost = aggCost(table, result.selection);
    result.seconds = timer.seconds();
    return result;
}

namespace {

/**
 * Solve one free-operator component: small components exactly, oversized
 * ones via topological chunks followed by overlapping boundary polish --
 * each window is re-optimized exactly, conditioned on the rest, so every
 * polish step is monotone in Agg_Cost. Touches only the component's own
 * planIndex entries (plus reads of already-fixed pinned nodes), which is
 * what makes concurrent component solves race-free.
 */
void
solveComponent(const PlanTable &table, const std::vector<NodeId> &component,
               int maxPartition, Selection &sel, uint64_t &evaluations,
               uint64_t maxEvaluations, bool &truncated)
{
    // One shared pool for the whole component: the topological chunks
    // and the overlapping polish windows below all draw from a single
    // absolute cap on the component's evaluation counter. (Granting
    // each subproblem a fresh maxEvaluations -- the pre-fix behavior --
    // overshot the budget by roughly 2 * n / maxPartition times, so the
    // budget a service derives from its wall-clock target did not
    // actually bound work.)
    const uint64_t evalLimit =
        maxEvaluations == 0 ? 0 : evaluations + maxEvaluations;

    if (static_cast<int>(component.size()) <= maxPartition) {
        solveSubsetOptimal(table, component, sel, evaluations,
                           evalLimit, truncated);
        return;
    }
    // Oversized component: cut into topological chunks and solve them
    // in order with earlier decisions fixed ("complementary edges").
    std::vector<NodeId> chunk;
    auto flush = [&]() {
        if (!chunk.empty()) {
            solveSubsetOptimal(table, chunk, sel, evaluations,
                               evalLimit, truncated);
            chunk.clear();
        }
    };
    for (size_t i = 0; i < component.size(); ++i) {
        chunk.push_back(component[i]);
        if (static_cast<int>(chunk.size()) >= maxPartition)
            flush();
    }
    flush();

    // Polish windows re-solve with the current assignment as an
    // incumbent, so even budget-truncated windows are monotone.
    const size_t window = static_cast<size_t>(maxPartition);
    const size_t stride = std::max<size_t>(1, window / 2);
    for (size_t start = stride; start < component.size();
         start += stride) {
        const size_t end = std::min(component.size(), start + window);
        const std::vector<NodeId> slice(
            component.begin() + static_cast<long>(start),
            component.begin() + static_cast<long>(end));
        solveSubsetOptimal(table, slice, sel, evaluations,
                           evalLimit, truncated);
    }
}

} // namespace

SelectorResult
selectGcd2Partitioned(const PlanTable &table, int maxPartition,
                      ThreadPool *pool, uint64_t maxEvaluations)
{
    GCD2_REQUIRE(maxPartition >= 1, "partition bound must be positive");
    const Timer timer;

    SelectorResult result;
    result.selection = emptySelection(table);
    // Start every free node at its cheapest plan: chunked solves then
    // condition on (and polish from) the local baseline, which makes
    // the audit's not-worse-than-local floor hold by construction --
    // chunks and polish windows are exact block-coordinate descents in
    // Agg_Cost from that start, and budgeted solves adopt it as a free
    // incumbent.
    seedCheapestPlans(table, result.selection);

    // Layout-pinned operators are forced; components of free operators
    // between them can be optimized independently (the cost-optimal
    // partitioning of Definition IV.1: pinned nodes fix the layout on
    // every crossing edge). Independence also means the components can
    // be solved concurrently: each one writes a disjoint slice of the
    // selection, and per-component evaluation counts and truncation
    // flags are reduced in component order so the telemetry is
    // thread-count-invariant too.
    const std::vector<std::vector<NodeId>> components =
        freeComponents(table);
    std::vector<uint64_t> evaluations(components.size(), 0);
    // uint8_t, not vector<bool>: concurrent writes to distinct indices.
    std::vector<uint8_t> truncatedFlags(components.size(), 0);
    if (pool != nullptr && pool->size() > 1) {
        pool->parallelFor(
            static_cast<int64_t>(components.size()), [&](int64_t i) {
                bool componentTruncated = false;
                solveComponent(table, components[static_cast<size_t>(i)],
                               maxPartition, result.selection,
                               evaluations[static_cast<size_t>(i)],
                               maxEvaluations, componentTruncated);
                truncatedFlags[static_cast<size_t>(i)] =
                    componentTruncated ? 1 : 0;
            });
    } else {
        for (size_t i = 0; i < components.size(); ++i) {
            bool componentTruncated = false;
            solveComponent(table, components[i], maxPartition,
                           result.selection, evaluations[i],
                           maxEvaluations, componentTruncated);
            truncatedFlags[i] = componentTruncated ? 1 : 0;
        }
    }
    for (uint64_t count : evaluations)
        result.evaluations += count;
    for (uint8_t flag : truncatedFlags)
        result.truncated = result.truncated || flag != 0;

    result.selection.totalCost = aggCost(table, result.selection);
    result.seconds = timer.seconds();
    return result;
}

} // namespace gcd2::select
