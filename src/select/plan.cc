#include "select/plan.h"

#include "common/logging.h"

namespace gcd2::select {

using graph::OpType;
using kernels::MatMulScheme;
using tensor::Layout;

bool
isLayoutAgnostic(OpType op)
{
    switch (op) {
      case OpType::Add:
      case OpType::Mul:
      case OpType::Sub:
      case OpType::Div:
      case OpType::Pow:
      case OpType::Clamp:
      case OpType::Sigmoid:
      case OpType::Tanh:
      case OpType::Gelu:
        return true;
      default:
        return false;
    }
}

std::vector<ExecutionPlan>
enumeratePlans(const graph::Graph &graph, graph::NodeId id)
{
    const graph::Node &node = graph.node(id);
    std::vector<ExecutionPlan> plans;

    if (graph::isMatMulFamily(node.op)) {
        for (MatMulScheme scheme :
             {MatMulScheme::Vmpy, MatMulScheme::Vmpa,
              MatMulScheme::Vrmpy}) {
            ExecutionPlan plan;
            plan.scheme = scheme;
            plan.inLayout = kernels::schemeLayout(scheme);
            // A fused epilogue transform stores the result directly in
            // the row-major transformed view: downstream edges price
            // from RowMajor and the epilogue residue is charged to the
            // plan's cycles by the cost model (Eq.-1 consistency).
            plan.outLayout = node.attrs.fusedTransform
                                 ? Layout::RowMajor
                                 : kernels::schemeLayout(scheme);
            plans.push_back(plan);
        }
        return plans;
    }

    if (isLayoutAgnostic(node.op)) {
        for (Layout layout : {Layout::RowMajor, Layout::OneColumn,
                              Layout::TwoColumn, Layout::FourColumn}) {
            ExecutionPlan plan;
            plan.inLayout = layout;
            plan.outLayout = layout;
            plans.push_back(plan);
        }
        return plans;
    }

    // Layout-pinned ops: a single row-major plan.
    plans.push_back(ExecutionPlan{});
    return plans;
}

MatrixView
matrixView(const tensor::Shape &shape)
{
    MatrixView view;
    if (shape.rank() == 0) {
        return view;
    }
    view.cols = shape.dim(shape.rank() - 1);
    GCD2_ASSERT(view.cols > 0, "empty tensor in matrix view");
    view.rows = shape.elements() / view.cols;
    return view;
}

} // namespace gcd2::select
