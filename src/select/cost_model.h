/**
 * @file
 * Simulator-backed operator cost model.
 *
 * Cost(ep_i(O)) from Section IV-A: the cycles of executing operator O
 * under plan ep_i, assuming inputs already sit in the plan's layout (the
 * layout-transformation term TC is separate). Matmul-family operators are
 * costed by *simulating one kernel tile* (one row panel x one column tile,
 * full reduction depth) on the DSP timing simulator and scaling by the
 * panel/tile trip counts -- exact, because the generated kernels do
 * identical work per tile (padding included). Elementwise and pooling
 * operators scale a simulated canonical length; reductions and
 * normalizations use documented compositions of simulated primitives.
 *
 * The options mirror the ablations of the paper's Fig. 9/11/12: which
 * VLIW packer generates the code, which unrolling strategy is used, and
 * whether the division-to-lookup-table optimization is applied.
 *
 * Thread safety: every public query is const and safe to call from
 * multiple threads concurrently -- the canonical-kernel simulations are
 * memoized in a sharded CostCache (see cost_cache.h). By default each
 * model owns a private cache; pass a shared one to reuse simulations
 * across compiles with identical kernel-level options.
 *
 * Simulations run through the pre-decoded execution engine
 * (dsp/decoded.h), whose DecodeCache deduplicates the decode work one
 * level below this cache: a CostCache hit skips simulation entirely,
 * while a miss that re-simulates a previously seen program still reuses
 * its decoded form. See DESIGN.md section 9.
 */
#ifndef GCD2_SELECT_COST_MODEL_H
#define GCD2_SELECT_COST_MODEL_H

#include <memory>

#include "graph/graph.h"
#include "kernels/elementwise.h"
#include "kernels/unroll.h"
#include "select/cost_cache.h"
#include "select/exec_stats.h"
#include "select/plan.h"
#include "select/tiered_cost.h"
#include "vliw/packer.h"

namespace gcd2::select {

/** Cost-model configuration (the Fig. 9 optimization toggles). */
struct CostModelOptions
{
    vliw::PackOptions packOptions{};
    kernels::UnrollStrategy unroll = kernels::UnrollStrategy::Adaptive;
    /** "Other optimizations": replace divisions with table lookups. */
    bool lutOptimization = true;
    /**
     * Tiered plan costing (DESIGN.md section 16): analytic bound
     * prefilter, same-layout dominance pruning, and shared-structure
     * affine costing with packet transplantation. Produces bit-identical
     * costs, selections, and served schedules to the exhaustive path
     * (enforced by the always-on audit and the deep exhaustive re-cost),
     * so it only trades compile time -- deliberately *not* part of the
     * service request fingerprint (service/fingerprint.cc).
     */
    bool tieredCosting = true;
};

/** Memoizing cost model. */
class CostModel
{
  public:
    /**
     * @param cache memo table for canonical-kernel simulations; a fresh
     *        private cache is created when omitted. Sharing a cache
     *        between models is sound because every option that affects
     *        a simulation is part of the cache key.
     */
    explicit CostModel(CostModelOptions options = {},
                       std::shared_ptr<CostCache> cache = nullptr);
    ~CostModel();

    const CostModelOptions &options() const { return options_; }

    /** The memo table (for telemetry and cross-compile sharing). */
    const CostCache &cache() const { return *cache_; }

    /** The tiered coster (nullptr when tieredCosting is off); exposes
     *  tier counters, tier timings, and the cheap self-audit. */
    const TieredCoster *tieredCoster() const { return tiered_.get(); }

    /** Candidate plans of a node with cycles filled in. */
    std::vector<ExecutionPlan> costedPlans(const graph::Graph &graph,
                                           graph::NodeId id) const;

    /** Full event statistics of a node under a plan. */
    NodeExecStats planStats(const graph::Graph &graph, graph::NodeId id,
                            const ExecutionPlan &plan) const;

    /** TC: cycles to transform a tensor between layouts (0 if equal). */
    uint64_t transformCost(const tensor::Shape &shape, tensor::Layout from,
                           tensor::Layout to) const;

    /** Event statistics of a layout transformation (for reporting). */
    NodeExecStats transformStats(const tensor::Shape &shape,
                                 tensor::Layout from,
                                 tensor::Layout to) const;

    /**
     * Stats of a standalone matmul kernel under this model's unroll
     * strategy and packer (tile-simulated and scaled; also used by the
     * per-kernel compiler baselines).
     */
    NodeExecStats matmulStats(const kernels::MatMulShape &shape,
                              kernels::MatMulScheme scheme,
                              uint64_t extraCycles) const;

    /**
     * The schedule served for (node, plan): the packed program of the
     * same canonical kernel this model simulates when costing the plan,
     * fetched through the process-wide vliw::PackCache (a cache hit once
     * the plan has been costed). The pipeline retains these in
     * CompiledModel so the audit pass audits served schedules directly.
     * Returns nullptr for operators costed analytically (no kernel
     * program exists for them).
     */
    std::shared_ptr<const dsp::PackedProgram>
    canonicalSchedule(const graph::Graph &graph, graph::NodeId id,
                      const ExecutionPlan &plan) const;

  private:
    /** Key prefix shared by every simulation under these options. */
    CostKey baseKey(CostKind kind) const;

    /** The unroll choice matmulStats uses for @p shape under this
     *  model's strategy (Exhaustive scans the candidate set by cost). */
    kernels::UnrollChoice unrollFor(const kernels::MatMulShape &shape,
                                    kernels::MatMulScheme scheme) const;

    NodeExecStats matmulTileStats(kernels::MatMulScheme scheme,
                                  const kernels::UnrollChoice &choice,
                                  int64_t k) const;
    NodeExecStats depthwiseRowStats(int stride) const;
    NodeExecStats elementwiseStats(kernels::EwOp op, int64_t length) const;
    NodeExecStats computeStats(const graph::Graph &graph, graph::NodeId id,
                               const ExecutionPlan &plan) const;

    /** Certified analytic lower bound on a plan's cycles (0 = no bound);
     *  used by the same-layout dominance filter in costedPlans. */
    uint64_t planLowerBound(const graph::Graph &graph, graph::NodeId id,
                            const ExecutionPlan &plan) const;

    CostModelOptions options_;
    std::shared_ptr<CostCache> cache_;
    std::unique_ptr<TieredCoster> tiered_;
};

} // namespace gcd2::select

#endif // GCD2_SELECT_COST_MODEL_H
