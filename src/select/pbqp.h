/**
 * @file
 * PBQP plan selection (the Anderson & Gregg formulation of DNN
 * primitive selection, which Eq. 1 is an instance of).
 *
 * The free-operator graph (see free_graph.h) carries a cost vector per
 * node and a cost matrix per edge; the solver repeatedly removes the
 * lowest-degree node:
 *
 *  - R0 (degree 0): the node is independent; resolved by vector argmin
 *    during back-propagation.
 *  - R1 (degree 1): fold min_p (v_i[p] + M(p, q)) into the neighbor's
 *    vector; exact.
 *  - R2 (degree 2): combine the node's two matrices into one new matrix
 *    between its neighbors (merging with any existing edge); exact.
 *  - RN (degree >= 3): heuristic -- pick the plan minimizing the node's
 *    vector cost plus the row-minimum of every incident matrix, fold
 *    that row into each neighbor, and reconsider the choice during
 *    back-propagation once the neighbors are assigned.
 *
 * When only R0/R1/R2 fire the back-propagated assignment is a proven
 * optimum of the instance (and hence of Agg_Cost); any RN application
 * makes the result heuristic, so the caller must not claim optimality.
 * Either way the served selection is floored at the local baseline, so
 * the rung always satisfies the audit's not-worse-than-local check.
 *
 * Complexity is polynomial (no branch-and-bound, no evaluation budget),
 * which is what qualifies PBQP as the ladder rung between the budgeted
 * partitioned solver and the chain DP.
 */
#ifndef GCD2_SELECT_PBQP_H
#define GCD2_SELECT_PBQP_H

#include "select/selector.h"

namespace gcd2::select {

/** Reduction-rule telemetry of one PBQP solve. */
struct PbqpStats
{
    uint64_t r0 = 0; ///< degree-0 removals (vector argmin)
    uint64_t r1 = 0; ///< degree-1 folds
    uint64_t r2 = 0; ///< degree-2 matrix combinations
    uint64_t rn = 0; ///< heuristic removals (degree >= 3)

    /** True iff no heuristic reduction fired: the assignment is a
     *  proven Agg_Cost optimum, safe for the deep audit's exact
     *  re-solve to cross-check. */
    bool provablyOptimal() const { return rn == 0; }
};

SelectorResult selectPbqp(const PlanTable &table,
                          PbqpStats *stats = nullptr);

} // namespace gcd2::select

#endif // GCD2_SELECT_PBQP_H
