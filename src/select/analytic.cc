#include "select/analytic.h"

#include <algorithm>
#include <vector>

namespace gcd2::select {

namespace {

using dsp::Instruction;
using dsp::MemKind;
using dsp::Opcode;
using dsp::Program;
using dsp::RegClass;
using dsp::UnitKind;

/** A resolved counted loop: body [start, branch] inclusive. */
struct Loop
{
    size_t start = 0;  ///< first body instruction (the label target)
    size_t branch = 0; ///< the backward JUMPNZ
    int cond = -1;     ///< scalar counter register
    uint64_t trips = 0;
};

bool
writesScalar(const Instruction &inst, int reg)
{
    return inst.dst[0].cls == RegClass::Scalar && inst.dst[0].idx == reg;
}

/** Dynamic counts above this are treated as unanalyzable (overflow guard). */
constexpr uint64_t kMaxDynamic = uint64_t(1) << 50;

} // namespace

AnalyticBounds
analyzeProgram(const Program &prog)
{
    AnalyticBounds bounds;
    const size_t n = prog.code.size();
    if (n == 0) {
        bounds.certified = true;
        return bounds;
    }

    // 1. Resolve control flow: only well-nested backward JUMPNZ loops.
    std::vector<Loop> loops;
    for (size_t i = 0; i < n; ++i) {
        const Instruction &inst = prog.code[i];
        if (!inst.isBranch())
            continue;
        if (inst.op != Opcode::JUMPNZ)
            return bounds; // JUMP: trip counts unresolvable
        if (inst.imm < 0 ||
            static_cast<size_t>(inst.imm) >= prog.labels.size())
            return bounds;
        const size_t target = prog.labels[static_cast<size_t>(inst.imm)];
        if (target > i)
            return bounds; // forward branch: skipped-path ambiguity
        Loop loop;
        loop.start = target;
        loop.branch = i;
        loop.cond = inst.src[0].idx;
        loops.push_back(loop);
    }
    for (const Loop &a : loops) {
        for (const Loop &b : loops) {
            if (&a == &b)
                continue;
            const bool disjoint = a.branch < b.start || b.branch < a.start;
            const bool aInB = b.start <= a.start && a.branch <= b.branch;
            const bool bInA = a.start <= b.start && b.branch <= a.branch;
            if (!disjoint && !aInB && !bInA)
                return bounds; // improperly nested
        }
    }

    // The innermost loop containing instruction j (or -1). Loops are
    // well-nested, so "smallest containing interval" is well defined.
    auto innermost = [&](size_t j) -> int {
        int best = -1;
        for (size_t l = 0; l < loops.size(); ++l) {
            if (loops[l].start <= j && j <= loops[l].branch &&
                (best < 0 || loops[l].branch - loops[l].start <
                                 loops[static_cast<size_t>(best)].branch -
                                     loops[static_cast<size_t>(best)].start))
                best = static_cast<int>(l);
        }
        return best;
    };

    // 2. Resolve each loop's trip count: the counter must be set by a
    // MOVI that is the last write before the loop and decremented by
    // exactly one ADDI(cond, cond, -1) inside it, in the loop's own body
    // (not a nested loop). Do-while shape => the body runs `imm` times.
    for (size_t l = 0; l < loops.size(); ++l) {
        Loop &loop = loops[l];
        const Instruction *init = nullptr;
        for (size_t j = loop.start; j-- > 0;) {
            if (writesScalar(prog.code[j], loop.cond)) {
                init = &prog.code[j];
                break;
            }
        }
        if (init == nullptr || init->op != Opcode::MOVI || init->imm < 1)
            return bounds;
        size_t decrements = 0;
        for (size_t j = loop.start; j <= loop.branch; ++j) {
            if (!writesScalar(prog.code[j], loop.cond))
                continue;
            const Instruction &inst = prog.code[j];
            if (inst.op != Opcode::ADDI || inst.imm != -1 ||
                inst.src[0].cls != RegClass::Scalar ||
                inst.src[0].idx != loop.cond)
                return bounds;
            if (innermost(j) != static_cast<int>(l))
                return bounds; // decrement hidden inside a nested loop
            ++decrements;
        }
        if (decrements != 1)
            return bounds;
        loop.trips = static_cast<uint64_t>(init->imm);
    }

    // 3. Dynamic execution count of each instruction = product of the
    // trip counts of its enclosing loops.
    uint64_t total = 0;    // all instructions
    uint64_t mem = 0;      // loads + stores (2 memory slots)
    uint64_t stores = 0;   // 1 store port
    uint64_t shifts = 0;   // 1 shift unit
    uint64_t permutes = 0; // 1 permute unit
    uint64_t mults = 0;    // multiply-pipeline demand (2 pipelines)
    uint64_t branches = 0; // at most 1 branch per packet
    uint64_t upper = 0;
    int maxLatency = 0;
    for (size_t j = 0; j < n; ++j) {
        uint64_t count = 1;
        for (const Loop &loop : loops) {
            if (loop.start <= j && j <= loop.branch) {
                count *= loop.trips;
                if (count > kMaxDynamic)
                    return bounds;
            }
        }
        const dsp::OpcodeInfo &info = prog.code[j].info();
        total += count;
        if (total > kMaxDynamic)
            return bounds;
        if (info.mem != MemKind::None)
            mem += count;
        if (info.mem == MemKind::Store)
            stores += count;
        if (info.unit == UnitKind::Shift)
            shifts += count;
        if (info.unit == UnitKind::Permute)
            permutes += count;
        if (info.unit == UnitKind::Branch)
            branches += count;
        mults += count * static_cast<uint64_t>(info.multUnits);
        // Worst case the instruction issues alone and its consumer pays
        // full latency plus the maximum forwarding penalty (2 cycles,
        // scalar multiply producers; see dsp/deps.cc).
        upper += count * static_cast<uint64_t>(info.latency + 2);
        maxLatency = std::max(maxLatency, info.latency);
    }

    // 4. Lower bound: one packet per cycle, packets obey slot widths.
    uint64_t lower = (total + dsp::kPacketSlots - 1) / dsp::kPacketSlots;
    lower = std::max(lower, (mem + 1) / 2);
    lower = std::max(lower, stores);
    lower = std::max(lower, shifts);
    lower = std::max(lower, permutes);
    lower = std::max(lower, (mults + 1) / 2);
    lower = std::max(lower, branches);

    bounds.lower = lower;
    bounds.upper = upper + static_cast<uint64_t>(maxLatency);
    bounds.dynamicInstructions = total;
    bounds.certified = true;
    return bounds;
}

} // namespace gcd2::select
