#include "select/analytic.h"

#include <algorithm>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/valueflow.h"

namespace gcd2::select {

namespace {

using dsp::MemKind;
using dsp::Program;
using dsp::UnitKind;

/** Dynamic counts above this are treated as unanalyzable (overflow guard). */
constexpr uint64_t kMaxDynamic = uint64_t(1) << 50;

} // namespace

AnalyticBounds
analyzeProgram(const Program &prog)
{
    AnalyticBounds bounds;
    const size_t n = prog.code.size();
    if (n == 0) {
        bounds.certified = true;
        return bounds;
    }

    // 1.+2. Resolve control flow and trip counts through the global
    // value-flow analysis: tripsResolved means every branch is a
    // backward JUMPNZ forming well-nested counted loops and every
    // loop's counter value-numbers to a compile-time affine constant at
    // its branch. Anything weaker refuses certification.
    const analysis::BlockGraph graph = analysis::buildBlockGraph(prog);
    const analysis::ValueFlow flow = analysis::computeValueFlow(graph);
    if (!flow.tripsResolved)
        return bounds;
    for (const analysis::VfLoop &loop : flow.loops)
        if (loop.trips == 0 || loop.trips > kMaxDynamic)
            return bounds;

    // 3. Dynamic execution count of each instruction = product of the
    // trip counts of its enclosing loops.
    uint64_t total = 0;    // all instructions
    uint64_t mem = 0;      // loads + stores (2 memory slots)
    uint64_t stores = 0;   // 1 store port
    uint64_t shifts = 0;   // 1 shift unit
    uint64_t permutes = 0; // 1 permute unit
    uint64_t mults = 0;    // multiply-pipeline demand (2 pipelines)
    uint64_t branches = 0; // at most 1 branch per packet
    uint64_t upper = 0;
    int maxLatency = 0;
    for (size_t j = 0; j < n; ++j) {
        uint64_t count = 1;
        for (const analysis::VfLoop &loop : flow.loops) {
            if (loop.startInst <= j && j <= loop.branchInst) {
                count *= loop.trips;
                if (count > kMaxDynamic)
                    return bounds;
            }
        }
        const dsp::OpcodeInfo &info = prog.code[j].info();
        total += count;
        if (total > kMaxDynamic)
            return bounds;
        if (info.mem != MemKind::None)
            mem += count;
        if (info.mem == MemKind::Store)
            stores += count;
        if (info.unit == UnitKind::Shift)
            shifts += count;
        if (info.unit == UnitKind::Permute)
            permutes += count;
        if (info.unit == UnitKind::Branch)
            branches += count;
        mults += count * static_cast<uint64_t>(info.multUnits);
        // Worst case the instruction issues alone and its consumer pays
        // full latency plus the maximum forwarding penalty (2 cycles,
        // scalar multiply producers; see dsp/deps.cc).
        upper += count * static_cast<uint64_t>(info.latency + 2);
        maxLatency = std::max(maxLatency, info.latency);
    }

    // 4. Lower bound: one packet per cycle, packets obey slot widths.
    uint64_t lower = (total + dsp::kPacketSlots - 1) / dsp::kPacketSlots;
    lower = std::max(lower, (mem + 1) / 2);
    lower = std::max(lower, stores);
    lower = std::max(lower, shifts);
    lower = std::max(lower, permutes);
    lower = std::max(lower, (mults + 1) / 2);
    lower = std::max(lower, branches);

    bounds.lower = lower;
    bounds.upper = upper + static_cast<uint64_t>(maxLatency);
    bounds.dynamicInstructions = total;
    bounds.certified = true;
    return bounds;
}

} // namespace gcd2::select
