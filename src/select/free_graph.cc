#include "select/free_graph.h"

#include <algorithm>
#include <map>

namespace gcd2::select {

using graph::NodeId;

FreeGraph
FreeGraph::build(const PlanTable &table)
{
    FreeGraph fg;
    fg.nodes = table.freeNodes();
    const size_t n = fg.nodes.size();
    fg.posOf.assign(table.graph().size(), -1);
    for (size_t i = 0; i < n; ++i)
        fg.posOf[static_cast<size_t>(fg.nodes[i])] = static_cast<int>(i);

    fg.vectors.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const auto &plans = table.plans(fg.nodes[i]);
        fg.vectors[i].resize(plans.size());
        for (size_t p = 0; p < plans.size(); ++p)
            fg.vectors[i][p] = plans[p].cycles;
    }

    // Merge parallel tensor edges between one node pair into a single
    // matrix (keyed by the unordered pair); fold edges whose other
    // endpoint is pinned -- a live node with exactly one plan, always
    // plan 0 -- into the free endpoint's vector.
    std::map<std::pair<int, int>, size_t> edgeIndex;
    for (const auto &[src, dst] : table.edges()) {
        const int a = fg.posOf[static_cast<size_t>(src)];
        const int b = fg.posOf[static_cast<size_t>(dst)];
        if (a >= 0 && b >= 0) {
            if (a == b) {
                // Self loop (an operator consuming its own output twice
                // reduces to one node): diagonal folds into the vector.
                auto &vec = fg.vectors[static_cast<size_t>(a)];
                for (size_t p = 0; p < vec.size(); ++p)
                    vec[p] += table.tc(src, dst, static_cast<int>(p),
                                       static_cast<int>(p));
                continue;
            }
            const int lo = std::min(a, b);
            const int hi = std::max(a, b);
            const auto [it, inserted] =
                edgeIndex.try_emplace({lo, hi}, fg.edges.size());
            if (inserted) {
                Edge edge;
                edge.a = lo;
                edge.b = hi;
                edge.cost.assign(
                    fg.planCount(lo),
                    std::vector<uint64_t>(fg.planCount(hi), 0));
                fg.edges.push_back(std::move(edge));
            }
            Edge &edge = fg.edges[it->second];
            for (size_t pa = 0; pa < fg.planCount(lo); ++pa)
                for (size_t pb = 0; pb < fg.planCount(hi); ++pb) {
                    const int srcPlan = a == lo ? static_cast<int>(pa)
                                                : static_cast<int>(pb);
                    const int dstPlan = a == lo ? static_cast<int>(pb)
                                                : static_cast<int>(pa);
                    edge.cost[pa][pb] +=
                        table.tc(src, dst, srcPlan, dstPlan);
                }
        } else if (a >= 0 || b >= 0) {
            const int inside = a >= 0 ? a : b;
            auto &vec = fg.vectors[static_cast<size_t>(inside)];
            for (size_t p = 0; p < vec.size(); ++p) {
                const int srcPlan = a >= 0 ? static_cast<int>(p) : 0;
                const int dstPlan = a >= 0 ? 0 : static_cast<int>(p);
                vec[p] += table.tc(src, dst, srcPlan, dstPlan);
            }
        }
    }

    fg.adj.resize(n);
    for (size_t e = 0; e < fg.edges.size(); ++e) {
        fg.adj[static_cast<size_t>(fg.edges[e].a)].push_back(
            static_cast<int>(e));
        fg.adj[static_cast<size_t>(fg.edges[e].b)].push_back(
            static_cast<int>(e));
    }
    return fg;
}

} // namespace gcd2::select
