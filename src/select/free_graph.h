/**
 * @file
 * Reduced pairwise view of a PlanTable: the selection problem restricted
 * to the free operators (two or more candidate plans). Pinned neighbors
 * (exactly one plan) contribute constants folded into per-node cost
 * vectors, and all parallel tensor edges between two free operators
 * merge into one undirected cost matrix. The result is exactly the
 * Partitioned Boolean Quadratic Problem instance (Anderson & Gregg) that
 * both the PBQP rung and the block-cut tree-DP middle rung solve:
 *
 *   min over assignments x of
 *     sum_i vectors[i][x_i] + sum_{(a,b)} edge.cost[x_a][x_b]
 *
 * which equals Agg_Cost (Eq. 1) minus the constant contributed by pinned
 * nodes and pinned-pinned edges -- so an argmin here, with every pinned
 * node at its single plan, is an Agg_Cost argmin.
 */
#ifndef GCD2_SELECT_FREE_GRAPH_H
#define GCD2_SELECT_FREE_GRAPH_H

#include <cstdint>
#include <vector>

#include "select/selector.h"

namespace gcd2::select {

struct FreeGraph
{
    struct Edge
    {
        int a = 0, b = 0; ///< node indices into nodes, a < b
        /** cost[pa][pb]: summed TC of every parallel tensor edge between
         *  the pair, whichever direction each runs. */
        std::vector<std::vector<uint64_t>> cost;
    };

    std::vector<graph::NodeId> nodes; ///< free nodes, PlanTable order
    std::vector<int> posOf;           ///< graph-sized map, -1 = not free
    /** vectors[i][p]: plan cycles plus TC on edges to pinned neighbors
     *  (and any self-loop diagonal). */
    std::vector<std::vector<uint64_t>> vectors;
    std::vector<Edge> edges;
    /** Incident edge indices per node; one entry per distinct neighbor. */
    std::vector<std::vector<int>> adj;

    static FreeGraph build(const PlanTable &table);

    size_t size() const { return nodes.size(); }

    size_t planCount(int i) const
    {
        return vectors[static_cast<size_t>(i)].size();
    }

    int otherEnd(int e, int i) const
    {
        const Edge &edge = edges[static_cast<size_t>(e)];
        return edge.a == i ? edge.b : edge.a;
    }

    /** Edge cost oriented from node i's plan p to the other end's q. */
    uint64_t
    edgeCost(int e, int i, int p, int q) const
    {
        const Edge &edge = edges[static_cast<size_t>(e)];
        return edge.a == i
                   ? edge.cost[static_cast<size_t>(p)]
                              [static_cast<size_t>(q)]
                   : edge.cost[static_cast<size_t>(q)]
                              [static_cast<size_t>(p)];
    }
};

} // namespace gcd2::select

#endif // GCD2_SELECT_FREE_GRAPH_H
