/**
 * @file
 * Architectural event totals of one node execution (scaled from the
 * canonical simulated kernel). Split out of the cost model so the cost
 * cache and reporting code can use the type without pulling in kernel
 * generation.
 */
#ifndef GCD2_SELECT_EXEC_STATS_H
#define GCD2_SELECT_EXEC_STATS_H

#include <cstdint>

namespace gcd2::select {

/** Architectural event totals for one node execution (scaled). */
struct NodeExecStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t packets = 0;
    uint64_t bytesLoaded = 0;
    uint64_t bytesStored = 0;

    NodeExecStats &operator+=(const NodeExecStats &other);
    NodeExecStats scaled(double factor) const;
};

} // namespace gcd2::select

#endif // GCD2_SELECT_EXEC_STATS_H
