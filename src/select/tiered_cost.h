/**
 * @file
 * Tier-2 of the tiered plan coster: shared-structure affine costing of
 * matmul tile kernels with packet transplantation, plus the same-layout
 * dominance filter (DESIGN.md section 16).
 *
 * Cold compiles are dominated by costing candidate plans: every matmul
 * tile is generated, VLIW-packed, and simulated at its full reduction
 * depth. But tiles of one (scheme, unroll choice, tile geometry) *class*
 * differ only in reduction depth K, and the generated loop nests encode K
 * purely in immediates of non-memory instructions (trip-count MOVIs and
 * pointer-step ADDIs -- pointer increments create fresh register
 * versions, so the alias analysis never compares offsets across them).
 * The packer reads immediates only through the alias analysis of memory
 * instructions, so two class members have bit-identical dependence
 * graphs and therefore bit-identical packet structure:
 *
 *  - *packet transplantation*: pack one class member, reuse its packet
 *    index lists (and label->packet map) verbatim on every other member.
 *    This is not an approximation -- it is the same schedule the packer
 *    would produce, checked structurally before every reuse and
 *    re-verified against direct packs in tests;
 *  - *affine derivation*: the timing simulator charges cycles as a pure
 *    function of packet structure, static alias relations, and trip
 *    counts, so each stat field is affine in the inner-loop trip count.
 *    Three anchor simulations (8/12/16 iterations) certify the fit with
 *    exact integer collinearity -- f(12)-f(8) == f(16)-f(12), divisible
 *    slope, non-negative base -- and every deeper member's stats are
 *    derived in O(1). Shallower members (< 8 iterations) and anything
 *    failing the structural check fall back to a real simulation.
 *
 * One pack + three short simulations per class replace one pack + one
 * full-depth simulation per *candidate*, which is where the >=2x
 * cold-compile win comes from; the deep audit (select/audit.h) re-costs
 * served selections through the exhaustive path to prove bit-equality.
 */
#ifndef GCD2_SELECT_TIERED_COST_H
#define GCD2_SELECT_TIERED_COST_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kernels/matmul.h"
#include "select/analytic.h"
#include "select/exec_stats.h"
#include "select/plan.h"
#include "vliw/packer.h"

namespace gcd2::select {

/** Monotone counters of the tiered coster (for PipelineReport). */
struct TieredCounters
{
    uint64_t plansDerived = 0;      ///< stats from a certified affine fit
    uint64_t plansSimulated = 0;    ///< stats from a real simulation
    uint64_t plansPruned = 0;       ///< candidates pruned by dominance
    uint64_t anchorSims = 0;        ///< certification anchor simulations
    uint64_t transplantedPacks = 0; ///< schedules served by transplant
    uint64_t certifiedClasses = 0;
    uint64_t uncertifiedClasses = 0;
    uint64_t structuralFallbacks = 0; ///< certified class, program mismatch
};

/**
 * Shared-structure coster for matmul tile kernels. One instance per
 * CostModel; thread-safe (concurrent costing of different classes
 * proceeds in parallel, same-class requests serialize on the class).
 */
class TieredCoster
{
  public:
    explicit TieredCoster(const vliw::PackOptions &packOptions);
    ~TieredCoster();

    TieredCoster(const TieredCoster &) = delete;
    TieredCoster &operator=(const TieredCoster &) = delete;

    /**
     * Raw simulated-equivalent stats of the tile kernel for @p tile under
     * @p config (no drain adjustment -- the cost model layers that on
     * top, since it is piecewise in K rather than affine in iterations).
     * Exact: either a real simulation or a certified affine derivation.
     */
    NodeExecStats tileStats(const kernels::MatMulShape &tile,
                            const kernels::MatMulConfig &config);

    /**
     * The schedule to serve for the tile kernel: the transplanted packet
     * structure of the class anchor when certified (memoized, so every
     * node of the class shares one PackedProgram object), or a direct
     * PackCache pack otherwise. Bit-identical to packing the program
     * directly either way.
     */
    std::shared_ptr<const dsp::PackedProgram>
    tileSchedule(const kernels::MatMulShape &tile,
                 const kernels::MatMulConfig &config);

    /**
     * Certified analytic lower bound on the tile's raw simulated cycles
     * (tier 1; memoized per class and depth). Returns 0 when the program
     * cannot be certified -- callers must treat 0 as "no bound".
     */
    uint64_t tileLowerBound(const kernels::MatMulShape &tile,
                            const kernels::MatMulConfig &config);

    /** Record dominance prunes decided by the caller (cost model). */
    void notePruned(uint64_t count);

    TieredCounters counters() const;

    /** Wall time spent certifying classes (packs + anchor sims). */
    double certifySeconds() const;
    /** Wall time spent in tier-1 analytic bound computations. */
    double analyticSeconds() const;

    /**
     * Cheap always-on self-audit: re-derives every certified class's
     * anchor stats from the stored affine fit and re-checks the analytic
     * bounds bracket the anchor simulation. Returns human-readable
     * violations (empty = pass) and the number of classes checked.
     */
    std::vector<std::string> audit(size_t *classesChecked = nullptr) const;

  private:
    struct TileClass;

    TileClass &classFor(const kernels::MatMulShape &tile,
                        const kernels::MatMulConfig &config);
    void certify(TileClass &cls, const kernels::MatMulShape &tile,
                 const kernels::MatMulConfig &config);

    vliw::PackOptions packOptions_;

    mutable std::mutex mu_; ///< guards classes_ (map nodes are stable)
    std::map<std::vector<int64_t>, std::unique_ptr<TileClass>> classes_;

    mutable std::atomic<uint64_t> plansDerived_{0};
    mutable std::atomic<uint64_t> plansSimulated_{0};
    mutable std::atomic<uint64_t> plansPruned_{0};
    mutable std::atomic<uint64_t> anchorSims_{0};
    mutable std::atomic<uint64_t> transplantedPacks_{0};
    mutable std::atomic<uint64_t> certifiedClasses_{0};
    mutable std::atomic<uint64_t> uncertifiedClasses_{0};
    mutable std::atomic<uint64_t> structuralFallbacks_{0};
    mutable std::atomic<uint64_t> certifyMicros_{0};
    mutable std::atomic<uint64_t> analyticMicros_{0};
};

/**
 * Two programs are transplant-compatible when the deterministic packer
 * provably emits bit-identical packet structures for both: same opcodes,
 * operands, labels, and noalias declarations, equal branch immediates,
 * and -- where memory-access immediates differ (strides scale with the
 * reduction depth) -- an identical AliasAnalysis::mayAlias relation on
 * every store/mem pair. Those are the only lenses through which the
 * packer's dependence analysis reads immediates (dsp/alias.cc,
 * dsp/deps.cc), so equal relations force identical dependency graphs
 * and therefore identical packs.
 */
bool transplantCompatible(const dsp::Program &a, const dsp::Program &b);

/**
 * Same-layout dominance filter (tier 2 of the plan coster). Walks
 * @p plans in order; a plan whose certified analytic lower bound
 * *strictly* exceeds the exact cost of an earlier plan with identical
 * input and output layouts is pruned -- its cycles are set to that lower
 * bound and @p exactCycles is never called for it. Everything else gets
 * exact cycles.
 *
 * Soundness: layout-transform costs (TC) depend only on layouts, so the
 * dominating plan is at least as good in every selection context; the
 * strict inequality keeps the pruned plan's stored cycles strictly worse
 * than the dominating plan's, so no min-fold or first-index tie-break in
 * any solver can ever pick it. A lower bound of 0 (uncertified) never
 * prunes. Returns the number of plans pruned.
 */
size_t applySameLayoutDominance(
    std::vector<ExecutionPlan> &plans,
    const std::function<uint64_t(const ExecutionPlan &)> &exactCycles,
    const std::function<uint64_t(const ExecutionPlan &)> &lowerBound);

} // namespace gcd2::select

#endif // GCD2_SELECT_TIERED_COST_H
