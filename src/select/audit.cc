#include "select/audit.h"

#include <string>

namespace gcd2::select {

using common::Diag;
using common::DiagSeverity;

std::vector<Diag>
auditSelection(const PlanTable &table, const Selection &selection,
               const SelectionAuditOptions &opts)
{
    std::vector<Diag> findings;
    const auto fail = [&](int64_t node, std::string message) {
        findings.push_back(Diag{DiagSeverity::Error, "selection-audit",
                                node, std::move(message)});
    };

    const graph::Graph &graph = table.graph();
    bool structural = true;
    if (selection.planIndex.size() != graph.size()) {
        fail(-1, "selection covers " +
                     std::to_string(selection.planIndex.size()) +
                     " nodes, graph has " + std::to_string(graph.size()));
        return findings; // nothing below is safe to evaluate
    }
    for (const graph::Node &node : graph.nodes()) {
        const int plan = selection.planIndex[static_cast<size_t>(node.id)];
        if (node.dead) {
            if (plan >= 0) {
                fail(node.id, "dead node carries plan index " +
                                  std::to_string(plan));
                structural = false;
            }
            continue;
        }
        const int planCount =
            static_cast<int>(table.plans(node.id).size());
        if (plan < 0 || plan >= planCount) {
            fail(node.id, "live node plan index " + std::to_string(plan) +
                              " outside [0, " + std::to_string(planCount) +
                              ")");
            structural = false;
        }
    }
    if (!structural)
        return findings; // aggCost would assert on a broken selection

    const uint64_t derived = aggCost(table, selection);
    if (derived != selection.totalCost)
        fail(-1, "totalCost " + std::to_string(selection.totalCost) +
                     " does not re-derive via Agg_Cost (" +
                     std::to_string(derived) + ")");

    if (opts.checkNotWorseThanLocal) {
        const SelectorResult local = selectLocal(table);
        if (derived > local.selection.totalCost)
            fail(-1, "selection cost " + std::to_string(derived) +
                         " worse than the local baseline " +
                         std::to_string(local.selection.totalCost));
    }

    if (opts.deep && table.freeNodes().size() <= opts.deepMaxFreeNodes) {
        const SelectorResult opt =
            selectGlobalOptimal(table, opts.deepMaxFreeNodes);
        if (derived != opt.selection.totalCost)
            fail(-1, "deep audit: cost " + std::to_string(derived) +
                         " differs from the exact optimum " +
                         std::to_string(opt.selection.totalCost) + " (" +
                         std::to_string(table.freeNodes().size()) +
                         " free nodes)");
    }
    return findings;
}

std::vector<Diag>
auditTieredCosts(const PlanTable &table, const Selection &selection,
                 const CostModelOptions &options)
{
    std::vector<Diag> findings;
    const auto fail = [&](int64_t node, std::string message) {
        findings.push_back(Diag{DiagSeverity::Error, "tiered-audit", node,
                                std::move(message)});
    };

    // A scratch exhaustive model: tiered costing off and a private
    // cache, so every cost below comes from a genuine generate + pack +
    // simulate, independent of anything the tiered path produced. (The
    // process-wide PackCache only holds packs that are bit-identical to
    // a direct pack by construction, so sharing it does not weaken the
    // re-cost.)
    CostModelOptions exhaustiveOptions = options;
    exhaustiveOptions.tieredCosting = false;
    const CostModel exhaustive(exhaustiveOptions);

    const graph::Graph &graph = table.graph();
    for (const graph::Node &node : graph.nodes()) {
        if (node.dead)
            continue;
        const std::vector<ExecutionPlan> &tiered = table.plans(node.id);
        const std::vector<ExecutionPlan> exact =
            exhaustive.costedPlans(graph, node.id);
        if (tiered.size() != exact.size()) {
            fail(node.id, "tiered table has " +
                              std::to_string(tiered.size()) +
                              " plans, exhaustive costing has " +
                              std::to_string(exact.size()));
            continue;
        }
        const int selected =
            selection.planIndex[static_cast<size_t>(node.id)];
        for (size_t i = 0; i < tiered.size(); ++i) {
            if (tiered[i].scheme != exact[i].scheme ||
                tiered[i].inLayout != exact[i].inLayout ||
                tiered[i].outLayout != exact[i].outLayout) {
                fail(node.id, "plan " + std::to_string(i) +
                                  " differs structurally from the "
                                  "exhaustive enumeration");
                continue;
            }
            if (tiered[i].cycles == exact[i].cycles)
                continue;
            // Not exact: only acceptable as a pruned plan with a valid
            // dominance certificate.
            if (static_cast<int>(i) == selected) {
                fail(node.id,
                     "selected plan " + std::to_string(i) + " costs " +
                         std::to_string(tiered[i].cycles) +
                         " tiered but " + std::to_string(exact[i].cycles) +
                         " exhaustively");
                continue;
            }
            if (tiered[i].cycles > exact[i].cycles) {
                fail(node.id,
                     "pruned plan " + std::to_string(i) + " stores " +
                         std::to_string(tiered[i].cycles) +
                         ", above its exhaustive cost " +
                         std::to_string(exact[i].cycles) +
                         " (not a lower bound)");
                continue;
            }
            bool dominated = false;
            for (size_t j = 0; j < i && !dominated; ++j) {
                dominated = tiered[j].inLayout == tiered[i].inLayout &&
                            tiered[j].outLayout == tiered[i].outLayout &&
                            tiered[j].cycles == exact[j].cycles &&
                            tiered[j].cycles < tiered[i].cycles;
            }
            if (!dominated) {
                fail(node.id,
                     "plan " + std::to_string(i) +
                         " is inexact without an earlier identical-"
                         "layout dominator costed exactly below it");
            }
        }
    }
    return findings;
}

} // namespace gcd2::select
