#include "select/audit.h"

#include <string>

namespace gcd2::select {

using common::Diag;
using common::DiagSeverity;

std::vector<Diag>
auditSelection(const PlanTable &table, const Selection &selection,
               const SelectionAuditOptions &opts)
{
    std::vector<Diag> findings;
    const auto fail = [&](int64_t node, std::string message) {
        findings.push_back(Diag{DiagSeverity::Error, "selection-audit",
                                node, std::move(message)});
    };

    const graph::Graph &graph = table.graph();
    bool structural = true;
    if (selection.planIndex.size() != graph.size()) {
        fail(-1, "selection covers " +
                     std::to_string(selection.planIndex.size()) +
                     " nodes, graph has " + std::to_string(graph.size()));
        return findings; // nothing below is safe to evaluate
    }
    for (const graph::Node &node : graph.nodes()) {
        const int plan = selection.planIndex[static_cast<size_t>(node.id)];
        if (node.dead) {
            if (plan >= 0) {
                fail(node.id, "dead node carries plan index " +
                                  std::to_string(plan));
                structural = false;
            }
            continue;
        }
        const int planCount =
            static_cast<int>(table.plans(node.id).size());
        if (plan < 0 || plan >= planCount) {
            fail(node.id, "live node plan index " + std::to_string(plan) +
                              " outside [0, " + std::to_string(planCount) +
                              ")");
            structural = false;
        }
    }
    if (!structural)
        return findings; // aggCost would assert on a broken selection

    const uint64_t derived = aggCost(table, selection);
    if (derived != selection.totalCost)
        fail(-1, "totalCost " + std::to_string(selection.totalCost) +
                     " does not re-derive via Agg_Cost (" +
                     std::to_string(derived) + ")");

    if (opts.checkNotWorseThanLocal) {
        const SelectorResult local = selectLocal(table);
        if (derived > local.selection.totalCost)
            fail(-1, "selection cost " + std::to_string(derived) +
                         " worse than the local baseline " +
                         std::to_string(local.selection.totalCost));
    }

    if (opts.deep && table.freeNodes().size() <= opts.deepMaxFreeNodes) {
        const SelectorResult opt =
            selectGlobalOptimal(table, opts.deepMaxFreeNodes);
        if (derived != opt.selection.totalCost)
            fail(-1, "deep audit: cost " + std::to_string(derived) +
                         " differs from the exact optimum " +
                         std::to_string(opt.selection.totalCost) + " (" +
                         std::to_string(table.freeNodes().size()) +
                         " free nodes)");
    }
    return findings;
}

} // namespace gcd2::select
