/**
 * @file
 * Thread-safe memo table for simulated kernel costs.
 *
 * The cost model prices operators by simulating one canonical kernel
 * (a matmul tile, a depthwise row pass, an elementwise run) and scaling.
 * Those simulations dominate compile time, so their results are memoized
 * under a typed key -- every field that can change the simulated cycles
 * (kernel kind, scheme/op, unroll choice, reduction depth / run length,
 * and the full VLIW packing configuration) is part of the key, which
 * replaces the descriptor strings the cache used to be keyed on.
 *
 * The table is the managed cache tier's sharded bounded LRU
 * (common::ShardedLru, DESIGN.md section 14): each shard sits behind its
 * own mutex, so concurrent plan costing from the compile-time worker
 * pool scales without a global lock, and capacity overflow evicts the
 * least-recently-used entry instead of growing without bound. Values
 * are returned *by value*; the old reference-returning API could hand
 * out a reference that a concurrent rehash of the underlying map would
 * invalidate.
 *
 * Because an entry's value is a pure function of its key, the cache is
 * safe to share between CostModel instances (and across compiles): if
 * two threads miss the same key they both simulate, and whichever
 * inserts first wins -- with identical bits either way, so compilation
 * results never depend on thread timing.
 */
#ifndef GCD2_SELECT_COST_CACHE_H
#define GCD2_SELECT_COST_CACHE_H

#include <cstdint>
#include <functional>

#include "common/lru_cache.h"
#include "select/exec_stats.h"
#include "vliw/packer.h"

namespace gcd2::select {

/** What canonical simulation a cache entry holds. */
enum class CostKind : uint8_t
{
    MatMulTile,   ///< one row-panel x column-tile, full reduction depth
    DepthwiseRow, ///< one canonical depthwise output-row pass
    Elementwise,  ///< one canonical elementwise run
};

/** Typed cache key: everything that determines the simulated stats. */
struct CostKey
{
    CostKind kind = CostKind::MatMulTile;
    /** MatMulScheme / EwOp ordinal, or the depthwise stride. */
    int32_t tag = 0;
    /** Unroll choice (matmul tiles); unused otherwise. */
    int32_t unrollOut = 0;
    int32_t unrollCols = 0;
    int32_t unrollK = 0;
    /** Reduction depth (matmul) or simulated length (elementwise). */
    int64_t extent = 0;
    /** Full packing configuration (policy and Eq. 4 tunables). */
    vliw::PackPolicy policy = vliw::PackPolicy::Sda;
    double packW = 0.0;
    double packPenaltyScale = 0.0;

    friend bool operator==(const CostKey &, const CostKey &) = default;
};

/** FNV-style field-combining hash for CostKey. */
struct CostKeyHash
{
    size_t operator()(const CostKey &key) const noexcept;
};

class CostCache
{
  public:
    /** @param maxEntries capacity bound (entries are ~100 bytes, so the
     *        default comfortably covers every distinct canonical kernel
     *        the model zoo generates while still bounding a service). */
    explicit CostCache(size_t maxEntries = 1 << 16)
        : lru_(maxEntries, kShardCount)
    {
    }

    /**
     * Return the stats for @p key, running @p compute on a miss. The
     * computation executes outside the shard lock, so concurrent misses
     * on other keys (and even the same key) proceed in parallel; the
     * first inserted value wins and is what every caller sees.
     */
    NodeExecStats
    lookupOrCompute(const CostKey &key,
                    const std::function<NodeExecStats()> &compute)
    {
        return lru_.lookupOrCompute(key, compute);
    }

    /** Cached entry count (approximate under concurrency). */
    size_t size() const { return lru_.size(); }
    /** Enforced entry bound (size() never exceeds it). */
    size_t capacity() const { return lru_.capacity(); }

    uint64_t hits() const { return lru_.stats().hits; }
    uint64_t misses() const { return lru_.stats().misses; }
    uint64_t evictions() const { return lru_.stats().evictions; }
    common::CacheStats stats() const { return lru_.stats(); }

    void clear() { lru_.clear(); }

  private:
    static constexpr size_t kShardCount = 16;

    common::ShardedLru<CostKey, NodeExecStats, CostKeyHash> lru_;
};

} // namespace gcd2::select

#endif // GCD2_SELECT_COST_CACHE_H
