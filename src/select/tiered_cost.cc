#include "select/tiered_cost.h"

#include <sstream>

#include "common/timer.h"
#include "kernels/runner.h"
#include "dsp/alias.h"
#include "vliw/pack_cache.h"

namespace gcd2::select {

namespace {

using kernels::MatMulConfig;
using kernels::MatMulShape;

/** Anchor inner-loop trip counts for the affine certification. */
constexpr int64_t kAnchors[3] = {8, 12, 16};

NodeExecStats
fromRun(const kernels::KernelRunResult &run)
{
    NodeExecStats stats;
    stats.cycles = run.stats.cycles;
    stats.instructions = run.stats.instructionsExecuted;
    stats.packets = run.stats.packetsExecuted;
    stats.bytesLoaded = run.stats.bytesLoaded;
    stats.bytesStored = run.stats.bytesStored;
    return stats;
}

/** field-wise base + iters * slope. */
NodeExecStats
affineAt(const NodeExecStats &base, const NodeExecStats &slope,
         int64_t iters)
{
    const uint64_t n = static_cast<uint64_t>(iters);
    NodeExecStats out;
    out.cycles = base.cycles + n * slope.cycles;
    out.instructions = base.instructions + n * slope.instructions;
    out.packets = base.packets + n * slope.packets;
    out.bytesLoaded = base.bytesLoaded + n * slope.bytesLoaded;
    out.bytesStored = base.bytesStored + n * slope.bytesStored;
    return out;
}

/**
 * Exact integer affine fit of one stat field from the three anchors:
 * f(a) = base + a * slope with equal deltas across both anchor gaps and
 * an exactly divisible slope. Returns false when the field is not affine
 * in the trip count (the class then stays uncertified).
 */
bool
fitField(uint64_t f8, uint64_t f12, uint64_t f16, uint64_t *base,
         uint64_t *slope)
{
    if (f12 < f8 || f16 < f12)
        return false;
    const uint64_t d1 = f12 - f8;
    const uint64_t d2 = f16 - f12;
    if (d1 != d2 || d1 % (kAnchors[1] - kAnchors[0]) != 0)
        return false;
    *slope = d1 / (kAnchors[1] - kAnchors[0]);
    if (f8 < static_cast<uint64_t>(kAnchors[0]) * *slope)
        return false;
    *base = f8 - static_cast<uint64_t>(kAnchors[0]) * *slope;
    return true;
}

int64_t
itersFor(const MatMulShape &tile, const MatMulConfig &config)
{
    const int64_t quantum = kernels::kQuantum(config.scheme,
                                              config.unrollK);
    return (tile.k + quantum - 1) / quantum;
}

std::vector<int64_t>
classKeyOf(const MatMulShape &tile, const MatMulConfig &config)
{
    return {static_cast<int64_t>(config.scheme),
            config.unrollOut,
            config.unrollCols,
            config.unrollK,
            config.shift16,
            config.shiftWordHalf,
            config.shiftHalfByte,
            tile.m,
            tile.n};
}

} // namespace

bool
transplantCompatible(const dsp::Program &a, const dsp::Program &b)
{
    if (a.code.size() != b.code.size() || a.labels != b.labels ||
        a.noaliasRegs != b.noaliasRegs)
        return false;
    bool memImmDiffers = false;
    for (size_t i = 0; i < a.code.size(); ++i) {
        const dsp::Instruction &x = a.code[i];
        const dsp::Instruction &y = b.code[i];
        if (x.op != y.op || x.dst != y.dst || x.src != y.src)
            return false;
        if (x.imm == y.imm)
            continue;
        if (x.isBranch())
            return false; // label resolution reads branch immediates
        if (x.info().mem != dsp::MemKind::None)
            memImmDiffers = true; // defer to the alias-relation check
    }
    if (!memImmDiffers)
        return true;

    // Memory offsets differ (loop strides scale with the reduction
    // depth). The packer reads memory immediates through exactly one
    // lens: AliasAnalysis::mayAlias, and classifyDependency consults
    // that bit only for mem/mem pairs where at least one side is a
    // store. If that relation is identical across the two programs,
    // they build identical dependency graphs, and the deterministic
    // packer emits bit-identical packets.
    std::vector<size_t> mems;
    std::vector<size_t> stores;
    for (size_t i = 0; i < a.code.size(); ++i) {
        const dsp::MemKind kind = a.code[i].info().mem;
        if (kind == dsp::MemKind::None)
            continue;
        mems.push_back(i);
        if (kind == dsp::MemKind::Store)
            stores.push_back(i);
    }
    const dsp::AliasAnalysis aliasA(a);
    const dsp::AliasAnalysis aliasB(b);
    for (const size_t s : stores)
        for (const size_t m : mems)
            if (m != s && aliasA.mayAlias(s, m) != aliasB.mayAlias(s, m))
                return false;
    return true;
}

struct TieredCoster::TileClass
{
    std::mutex mu;
    bool tried = false;
    bool certified = false;
    /** Program at the low anchor; the structural template of the class. */
    dsp::Program canonical;
    /** The one real pack of the class (low anchor, via the PackCache). */
    std::shared_ptr<const dsp::PackedProgram> anchorPack;
    NodeExecStats base;            ///< affine fit: f(iters) = base +
    NodeExecStats slope;           ///<   iters * slope, per field
    NodeExecStats anchorStats[3];  ///< raw anchor sims (audit evidence)
    AnalyticBounds canonicalBounds;///< tier-1 bounds of the low anchor
    /** Transplanted schedules by trip count (shared across nodes). */
    std::map<int64_t, std::shared_ptr<const dsp::PackedProgram>> packs;
    /** Tier-1 analytic bounds by trip count. */
    std::map<int64_t, AnalyticBounds> bounds;
};

TieredCoster::TieredCoster(const vliw::PackOptions &packOptions)
    : packOptions_(packOptions)
{
}

TieredCoster::~TieredCoster() = default;

TieredCoster::TileClass &
TieredCoster::classFor(const MatMulShape &tile, const MatMulConfig &config)
{
    const std::vector<int64_t> key = classKeyOf(tile, config);
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<TileClass> &slot = classes_[key];
    if (!slot)
        slot = std::make_unique<TileClass>();
    return *slot;
}

void
TieredCoster::certify(TileClass &cls, const MatMulShape &tile,
                      const MatMulConfig &config)
{
    cls.tried = true;
    const Timer timer;
    const int64_t quantum =
        kernels::kQuantum(config.scheme, config.unrollK);

    NodeExecStats stats[3];
    for (int a = 0; a < 3; ++a) {
        MatMulShape anchorTile = tile;
        anchorTile.k = quantum * kAnchors[a];
        const kernels::MatMulKernel kernel(anchorTile, config);
        if (a == 0) {
            cls.canonical = kernel.program();
            cls.anchorPack = vliw::PackCache::global().lookupOrPack(
                cls.canonical, packOptions_);
            cls.packs[kAnchors[0]] = cls.anchorPack;
        } else if (!transplantCompatible(cls.canonical,
                                         kernel.program())) {
            uncertifiedClasses_.fetch_add(1, std::memory_order_relaxed);
            certifyMicros_.fetch_add(
                static_cast<uint64_t>(timer.seconds() * 1e6),
                std::memory_order_relaxed);
            return;
        }
        std::shared_ptr<const dsp::PackedProgram> packed =
            cls.anchorPack;
        if (a != 0) {
            packed = std::make_shared<const dsp::PackedProgram>(
                dsp::PackedProgram{kernel.program(),
                                   cls.anchorPack->packets,
                                   cls.anchorPack->labelPacket});
            cls.packs[kAnchors[a]] = packed;
        }
        const kernels::KernelRunResult run = kernels::runPackedKernel(
            packed, kernel.buffers(), {}, {});
        anchorSims_.fetch_add(1, std::memory_order_relaxed);
        stats[a] = fromRun(run);
        cls.anchorStats[a] = stats[a];
    }

    NodeExecStats base;
    NodeExecStats slope;
    const bool affine =
        fitField(stats[0].cycles, stats[1].cycles, stats[2].cycles,
                 &base.cycles, &slope.cycles) &&
        fitField(stats[0].instructions, stats[1].instructions,
                 stats[2].instructions, &base.instructions,
                 &slope.instructions) &&
        fitField(stats[0].packets, stats[1].packets, stats[2].packets,
                 &base.packets, &slope.packets) &&
        fitField(stats[0].bytesLoaded, stats[1].bytesLoaded,
                 stats[2].bytesLoaded, &base.bytesLoaded,
                 &slope.bytesLoaded) &&
        fitField(stats[0].bytesStored, stats[1].bytesStored,
                 stats[2].bytesStored, &base.bytesStored,
                 &slope.bytesStored);

    cls.canonicalBounds = analyzeProgram(cls.canonical);
    const bool bracketed =
        !cls.canonicalBounds.certified ||
        (cls.canonicalBounds.lower <= stats[0].cycles &&
         stats[0].cycles <= cls.canonicalBounds.upper);

    if (affine && bracketed) {
        cls.base = base;
        cls.slope = slope;
        cls.certified = true;
        certifiedClasses_.fetch_add(1, std::memory_order_relaxed);
    } else {
        uncertifiedClasses_.fetch_add(1, std::memory_order_relaxed);
    }
    certifyMicros_.fetch_add(
        static_cast<uint64_t>(timer.seconds() * 1e6),
        std::memory_order_relaxed);
}

NodeExecStats
TieredCoster::tileStats(const MatMulShape &tile, const MatMulConfig &config)
{
    const int64_t iters = itersFor(tile, config);
    TileClass &cls = classFor(tile, config);
    std::lock_guard<std::mutex> lock(cls.mu);
    if (!cls.tried)
        certify(cls, tile, config);

    const kernels::MatMulKernel kernel(tile, config);
    if (cls.certified &&
        transplantCompatible(cls.canonical, kernel.program())) {
        if (iters >= kAnchors[0]) {
            plansDerived_.fetch_add(1, std::memory_order_relaxed);
            return affineAt(cls.base, cls.slope, iters);
        }
        // Shallow reductions sit below the certified anchor range;
        // simulate them on the transplanted schedule (still one pack
        // for the whole class).
        std::shared_ptr<const dsp::PackedProgram> &packed =
            cls.packs[iters];
        if (!packed) {
            packed = std::make_shared<const dsp::PackedProgram>(
                dsp::PackedProgram{kernel.program(),
                                   cls.anchorPack->packets,
                                   cls.anchorPack->labelPacket});
            transplantedPacks_.fetch_add(1, std::memory_order_relaxed);
        }
        plansSimulated_.fetch_add(1, std::memory_order_relaxed);
        return fromRun(
            kernels::runPackedKernel(packed, kernel.buffers(), {}, {}));
    }

    if (cls.certified)
        structuralFallbacks_.fetch_add(1, std::memory_order_relaxed);
    plansSimulated_.fetch_add(1, std::memory_order_relaxed);
    return fromRun(kernels::runKernel(kernel.program(), kernel.buffers(),
                                      {}, {}, packOptions_));
}

std::shared_ptr<const dsp::PackedProgram>
TieredCoster::tileSchedule(const MatMulShape &tile,
                           const MatMulConfig &config)
{
    const int64_t iters = itersFor(tile, config);
    TileClass &cls = classFor(tile, config);
    std::lock_guard<std::mutex> lock(cls.mu);
    if (!cls.tried)
        certify(cls, tile, config);

    const kernels::MatMulKernel kernel(tile, config);
    if (cls.certified &&
        transplantCompatible(cls.canonical, kernel.program())) {
        std::shared_ptr<const dsp::PackedProgram> &packed =
            cls.packs[iters];
        if (!packed) {
            packed = std::make_shared<const dsp::PackedProgram>(
                dsp::PackedProgram{kernel.program(),
                                   cls.anchorPack->packets,
                                   cls.anchorPack->labelPacket});
            transplantedPacks_.fetch_add(1, std::memory_order_relaxed);
        }
        return packed;
    }
    if (cls.certified)
        structuralFallbacks_.fetch_add(1, std::memory_order_relaxed);
    return vliw::PackCache::global().lookupOrPack(kernel.program(),
                                                  packOptions_);
}

uint64_t
TieredCoster::tileLowerBound(const MatMulShape &tile,
                             const MatMulConfig &config)
{
    const int64_t iters = itersFor(tile, config);
    TileClass &cls = classFor(tile, config);
    std::lock_guard<std::mutex> lock(cls.mu);
    auto it = cls.bounds.find(iters);
    if (it == cls.bounds.end()) {
        const Timer timer;
        const kernels::MatMulKernel kernel(tile, config);
        it = cls.bounds.emplace(iters, analyzeProgram(kernel.program()))
                 .first;
        analyticMicros_.fetch_add(
            static_cast<uint64_t>(timer.seconds() * 1e6),
            std::memory_order_relaxed);
    }
    return it->second.certified ? it->second.lower : 0;
}

void
TieredCoster::notePruned(uint64_t count)
{
    plansPruned_.fetch_add(count, std::memory_order_relaxed);
}

TieredCounters
TieredCoster::counters() const
{
    TieredCounters c;
    c.plansDerived = plansDerived_.load(std::memory_order_relaxed);
    c.plansSimulated = plansSimulated_.load(std::memory_order_relaxed);
    c.plansPruned = plansPruned_.load(std::memory_order_relaxed);
    c.anchorSims = anchorSims_.load(std::memory_order_relaxed);
    c.transplantedPacks =
        transplantedPacks_.load(std::memory_order_relaxed);
    c.certifiedClasses = certifiedClasses_.load(std::memory_order_relaxed);
    c.uncertifiedClasses =
        uncertifiedClasses_.load(std::memory_order_relaxed);
    c.structuralFallbacks =
        structuralFallbacks_.load(std::memory_order_relaxed);
    return c;
}

double
TieredCoster::certifySeconds() const
{
    return static_cast<double>(
               certifyMicros_.load(std::memory_order_relaxed)) *
           1e-6;
}

double
TieredCoster::analyticSeconds() const
{
    return static_cast<double>(
               analyticMicros_.load(std::memory_order_relaxed)) *
           1e-6;
}

std::vector<std::string>
TieredCoster::audit(size_t *classesChecked) const
{
    std::vector<std::string> errors;
    size_t checked = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &entry : classes_) {
        TileClass &cls = *entry.second;
        std::lock_guard<std::mutex> classLock(cls.mu);
        if (!cls.certified)
            continue;
        ++checked;
        for (int a = 0; a < 3; ++a) {
            const NodeExecStats derived =
                affineAt(cls.base, cls.slope, kAnchors[a]);
            const NodeExecStats &simmed = cls.anchorStats[a];
            if (derived.cycles != simmed.cycles ||
                derived.instructions != simmed.instructions ||
                derived.packets != simmed.packets ||
                derived.bytesLoaded != simmed.bytesLoaded ||
                derived.bytesStored != simmed.bytesStored) {
                std::ostringstream msg;
                msg << "tiered class fit does not reproduce anchor "
                    << kAnchors[a] << " (derived " << derived.cycles
                    << " cycles, simulated " << simmed.cycles << ")";
                errors.push_back(msg.str());
            }
        }
        if (cls.canonicalBounds.certified &&
            (cls.canonicalBounds.lower > cls.anchorStats[0].cycles ||
             cls.anchorStats[0].cycles > cls.canonicalBounds.upper)) {
            std::ostringstream msg;
            msg << "analytic bounds [" << cls.canonicalBounds.lower
                << ", " << cls.canonicalBounds.upper
                << "] do not bracket anchor simulation "
                << cls.anchorStats[0].cycles;
            errors.push_back(msg.str());
        }
    }
    if (classesChecked != nullptr)
        *classesChecked = checked;
    return errors;
}

size_t
applySameLayoutDominance(
    std::vector<ExecutionPlan> &plans,
    const std::function<uint64_t(const ExecutionPlan &)> &exactCycles,
    const std::function<uint64_t(const ExecutionPlan &)> &lowerBound)
{
    size_t pruned = 0;
    // Best exact cost seen so far per (input layout, output layout).
    std::map<std::pair<int, int>, uint64_t> bestByLayout;
    for (ExecutionPlan &plan : plans) {
        const std::pair<int, int> layouts{
            static_cast<int>(plan.inLayout),
            static_cast<int>(plan.outLayout)};
        const auto it = bestByLayout.find(layouts);
        if (it != bestByLayout.end()) {
            const uint64_t lb = lowerBound(plan);
            if (lb > it->second) {
                // Strictly dominated: an earlier identical-layout plan is
                // exactly costed below this plan's certified floor, and
                // identical layouts mean identical TC terms in every
                // selection context. Store the bound (strictly worse than
                // the dominator) so min-folds can never pick this plan.
                plan.cycles = lb;
                ++pruned;
                continue;
            }
        }
        plan.cycles = exactCycles(plan);
        if (it == bestByLayout.end())
            bestByLayout.emplace(layouts, plan.cycles);
        else
            it->second = std::min(it->second, plan.cycles);
    }
    return pruned;
}

} // namespace gcd2::select
