/**
 * @file
 * Execution plans: the per-operator choices the global optimizer selects
 * (Section IV-A).
 *
 * Every operator has a set of candidate plans EP(O). For matmul-family
 * operators a plan is one of the SIMD multiply schemes with its input and
 * output layout; elementwise operators run unchanged in any layout
 * (byte-position-independent math), so they offer one layout-preserving
 * plan per layout; layout-sensitive operators (pooling, shape ops,
 * normalizations, depthwise) are pinned to row-major -- which is exactly
 * what creates the desirable partitioning edges of Section IV-B.
 */
#ifndef GCD2_SELECT_PLAN_H
#define GCD2_SELECT_PLAN_H

#include <vector>

#include "graph/graph.h"
#include "kernels/matmul.h"
#include "tensor/layout.h"

namespace gcd2::select {

/** One candidate implementation of an operator. */
struct ExecutionPlan
{
    /** SIMD multiply scheme (matmul-family plans only). */
    kernels::MatMulScheme scheme = kernels::MatMulScheme::Vrmpy;
    /** Layout every (tensor) input must arrive in. */
    tensor::Layout inLayout = tensor::Layout::RowMajor;
    /** Layout the output tensor is produced in. */
    tensor::Layout outLayout = tensor::Layout::RowMajor;
    /** Execution cost in cycles, filled by the cost model. */
    uint64_t cycles = 0;

    bool
    isMatMulPlan() const
    {
        return inLayout != tensor::Layout::RowMajor ||
               outLayout != tensor::Layout::RowMajor;
    }
};

/**
 * Enumerate the candidate plans of a node (costs not yet filled).
 * Never empty; single-element for layout-pinned operators.
 */
std::vector<ExecutionPlan> enumeratePlans(const graph::Graph &graph,
                                          graph::NodeId id);

/** Does the op execute identically under any layout (plan per layout)? */
bool isLayoutAgnostic(graph::OpType op);

/**
 * Matrix view of a tensor for layout packing/transform costing:
 * (rows = elements / last-dim, cols = last-dim).
 */
struct MatrixView
{
    int64_t rows = 1;
    int64_t cols = 1;
};

MatrixView matrixView(const tensor::Shape &shape);

} // namespace gcd2::select

#endif // GCD2_SELECT_PLAN_H
