#include "select/pbqp.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/timer.h"
#include "select/free_graph.h"

namespace gcd2::select {

namespace {

/**
 * One reduction popped during back-propagation: the removed node plus
 * the neighbors and (detached) matrices it was incident to at removal.
 * Every rule resolves the same way once the neighbors are assigned:
 *
 *   x_i = argmin_p vectors[i][p] + sum_j M_ij(p, x_j)
 *
 * For R0 that is a plain vector argmin, for R1/R2 the exact optimal
 * completion, and for RN a reconsideration of the heuristic choice that
 * can only improve on it.
 */
struct Decision
{
    int node = 0;
    std::vector<int> neighbors; ///< node indices at reduction time
    std::vector<int> matrices;  ///< matrix index aligned with neighbors
};

/** Mutable PBQP instance: FreeGraph costs plus a reduction worklist. */
class Reducer
{
  public:
    Reducer(const FreeGraph &fg, SelectorResult &result, PbqpStats &stats)
        : fg_(fg), result_(result), stats_(stats),
          vectors_(fg.vectors), matrices_(fg.edges),
          alive_(fg.size(), true), adj_(fg.size())
    {
        for (size_t e = 0; e < matrices_.size(); ++e) {
            adj_[static_cast<size_t>(matrices_[e].a)]
                .emplace(matrices_[e].b, static_cast<int>(e));
            adj_[static_cast<size_t>(matrices_[e].b)]
                .emplace(matrices_[e].a, static_cast<int>(e));
        }
    }

    /** Reduce every node, then back-propagate the assignment. */
    std::vector<int>
    solve()
    {
        const size_t n = fg_.size();
        for (size_t round = 0; round < n; ++round) {
            const int i = lowestDegreeAlive();
            const size_t degree = adj_[static_cast<size_t>(i)].size();
            if (degree == 0)
                reduce0(i);
            else if (degree == 1)
                reduce1(i);
            else if (degree == 2)
                reduce2(i);
            else
                reduceN(i);
        }

        std::vector<int> assign(n, -1);
        for (size_t d = stack_.size(); d-- > 0;) {
            const Decision &dec = stack_[d];
            const auto &vec = vectors_[static_cast<size_t>(dec.node)];
            uint64_t bestCost = UINT64_MAX;
            int bestPlan = 0;
            for (size_t p = 0; p < vec.size(); ++p) {
                uint64_t cost = vec[p];
                for (size_t j = 0; j < dec.neighbors.size(); ++j) {
                    const int other =
                        assign[static_cast<size_t>(dec.neighbors[j])];
                    GCD2_ASSERT(other >= 0,
                                "pbqp back-propagation out of order");
                    cost += cost_(dec.matrices[j], dec.node,
                                  static_cast<int>(p), other);
                }
                ++result_.evaluations;
                if (cost < bestCost) {
                    bestCost = cost;
                    bestPlan = static_cast<int>(p);
                }
            }
            assign[static_cast<size_t>(dec.node)] = bestPlan;
        }
        return assign;
    }

  private:
    int
    lowestDegreeAlive() const
    {
        int best = -1;
        size_t bestDegree = 0;
        for (size_t i = 0; i < fg_.size(); ++i) {
            if (!alive_[i])
                continue;
            const size_t degree = adj_[i].size();
            if (best < 0 || degree < bestDegree) {
                best = static_cast<int>(i);
                bestDegree = degree;
            }
        }
        GCD2_ASSERT(best >= 0, "pbqp reduction ran out of nodes");
        return best;
    }

    uint64_t
    cost_(int m, int i, int p, int q) const
    {
        const FreeGraph::Edge &edge = matrices_[static_cast<size_t>(m)];
        return edge.a == i ? edge.cost[static_cast<size_t>(p)]
                                      [static_cast<size_t>(q)]
                           : edge.cost[static_cast<size_t>(q)]
                                      [static_cast<size_t>(p)];
    }

    /** Detach node i, returning its incident (neighbor, matrix) pairs in
     *  ascending neighbor order. */
    Decision
    detach(int i)
    {
        Decision dec;
        dec.node = i;
        for (const auto &[j, m] : adj_[static_cast<size_t>(i)]) {
            dec.neighbors.push_back(j);
            dec.matrices.push_back(m);
            adj_[static_cast<size_t>(j)].erase(i);
        }
        adj_[static_cast<size_t>(i)].clear();
        alive_[static_cast<size_t>(i)] = false;
        return dec;
    }

    void
    reduce0(int i)
    {
        ++stats_.r0;
        result_.evaluations += vectors_[static_cast<size_t>(i)].size();
        stack_.push_back(detach(i));
    }

    void
    reduce1(int i)
    {
        ++stats_.r1;
        Decision dec = detach(i);
        const int j = dec.neighbors[0];
        const int m = dec.matrices[0];
        const auto &vi = vectors_[static_cast<size_t>(i)];
        auto &vj = vectors_[static_cast<size_t>(j)];
        for (size_t q = 0; q < vj.size(); ++q) {
            uint64_t best = UINT64_MAX;
            for (size_t p = 0; p < vi.size(); ++p) {
                best = std::min(best,
                                vi[p] + cost_(m, i, static_cast<int>(p),
                                              static_cast<int>(q)));
                ++result_.evaluations;
            }
            vj[q] += best;
        }
        stack_.push_back(std::move(dec));
    }

    void
    reduce2(int i)
    {
        ++stats_.r2;
        Decision dec = detach(i);
        const int j = dec.neighbors[0];
        const int k = dec.neighbors[1];
        const int mj = dec.matrices[0];
        const int mk = dec.matrices[1];
        const auto &vi = vectors_[static_cast<size_t>(i)];
        const size_t nj = vectors_[static_cast<size_t>(j)].size();
        const size_t nk = vectors_[static_cast<size_t>(k)].size();

        // D(qj, qk) = min_p vi[p] + Mij(p, qj) + Mik(p, qk), merged into
        // the (possibly new) j-k matrix.
        FreeGraph::Edge *target = edgeBetween(j, k);
        for (size_t qj = 0; qj < nj; ++qj)
            for (size_t qk = 0; qk < nk; ++qk) {
                uint64_t best = UINT64_MAX;
                for (size_t p = 0; p < vi.size(); ++p) {
                    best = std::min(
                        best,
                        vi[p] +
                            cost_(mj, i, static_cast<int>(p),
                                  static_cast<int>(qj)) +
                            cost_(mk, i, static_cast<int>(p),
                                  static_cast<int>(qk)));
                    ++result_.evaluations;
                }
                if (target->a == j)
                    target->cost[qj][qk] += best;
                else
                    target->cost[qk][qj] += best;
            }
        stack_.push_back(std::move(dec));
    }

    void
    reduceN(int i)
    {
        ++stats_.rn;
        Decision dec = detach(i);
        const auto &vi = vectors_[static_cast<size_t>(i)];

        // Heuristic choice: the plan minimizing the vector cost plus the
        // row minimum of every incident matrix (the cheapest this node
        // can possibly be, whatever the neighbors decide).
        uint64_t bestCost = UINT64_MAX;
        int bestPlan = 0;
        for (size_t p = 0; p < vi.size(); ++p) {
            uint64_t cost = vi[p];
            for (size_t j = 0; j < dec.neighbors.size(); ++j) {
                const size_t nq =
                    vectors_[static_cast<size_t>(dec.neighbors[j])]
                        .size();
                uint64_t rowMin = UINT64_MAX;
                for (size_t q = 0; q < nq; ++q) {
                    rowMin = std::min(
                        rowMin, cost_(dec.matrices[j], i,
                                      static_cast<int>(p),
                                      static_cast<int>(q)));
                    ++result_.evaluations;
                }
                cost += rowMin;
            }
            if (cost < bestCost) {
                bestCost = cost;
                bestPlan = static_cast<int>(p);
            }
        }

        // Fold the chosen row into every neighbor so the remaining
        // problem prices this node's presence; back-propagation
        // reconsiders the choice against the actual assignment.
        for (size_t j = 0; j < dec.neighbors.size(); ++j) {
            auto &vj =
                vectors_[static_cast<size_t>(dec.neighbors[j])];
            for (size_t q = 0; q < vj.size(); ++q)
                vj[q] += cost_(dec.matrices[j], i, bestPlan,
                               static_cast<int>(q));
        }
        stack_.push_back(std::move(dec));
    }

    /** The alive j-k matrix, created zero-filled when absent. */
    FreeGraph::Edge *
    edgeBetween(int j, int k)
    {
        auto &adjJ = adj_[static_cast<size_t>(j)];
        const auto it = adjJ.find(k);
        if (it != adjJ.end())
            return &matrices_[static_cast<size_t>(it->second)];
        FreeGraph::Edge edge;
        edge.a = std::min(j, k);
        edge.b = std::max(j, k);
        edge.cost.assign(
            vectors_[static_cast<size_t>(edge.a)].size(),
            std::vector<uint64_t>(
                vectors_[static_cast<size_t>(edge.b)].size(), 0));
        const int idx = static_cast<int>(matrices_.size());
        matrices_.push_back(std::move(edge));
        adjJ.emplace(k, idx);
        adj_[static_cast<size_t>(k)].emplace(j, idx);
        return &matrices_[static_cast<size_t>(idx)];
    }

    const FreeGraph &fg_;
    SelectorResult &result_;
    PbqpStats &stats_;
    std::vector<std::vector<uint64_t>> vectors_;
    /** All matrices ever created. A matrix referenced by a stack
     *  Decision is detached at that moment and never mutated again, so
     *  back-propagation reads it as it was at reduction time. */
    std::vector<FreeGraph::Edge> matrices_;
    std::vector<bool> alive_;
    /** Alive adjacency: neighbor node -> matrix index. */
    std::vector<std::map<int, int>> adj_;
    std::vector<Decision> stack_;
};

Selection
baseSelection(const PlanTable &table)
{
    Selection sel;
    sel.planIndex.assign(table.graph().size(), -1);
    for (const graph::Node &node : table.graph().nodes())
        if (!node.dead)
            sel.planIndex[static_cast<size_t>(node.id)] = 0;
    return sel;
}

} // namespace

SelectorResult
selectPbqp(const PlanTable &table, PbqpStats *stats)
{
    const Timer timer;
    SelectorResult result;
    PbqpStats localStats;
    PbqpStats &st = stats != nullptr ? *stats : localStats;
    st = PbqpStats{};

    result.selection = baseSelection(table);
    const FreeGraph fg = FreeGraph::build(table);
    if (!fg.nodes.empty()) {
        Reducer reducer(fg, result, st);
        const std::vector<int> assign = reducer.solve();
        for (size_t i = 0; i < fg.nodes.size(); ++i)
            result.selection.planIndex[static_cast<size_t>(fg.nodes[i])] =
                assign[i];
    }
    result.selection.totalCost = aggCost(table, result.selection);

    // Floor at the local baseline (same argmin and tie-breaking as
    // selectLocal) so the rung always satisfies the audit's
    // not-worse-than-local check even after a heuristic RN round. With
    // rn == 0 the solve is optimal and the floor can never fire.
    Selection local = result.selection;
    for (graph::NodeId id : fg.nodes) {
        const auto &plans = table.plans(id);
        int bestPlan = 0;
        for (size_t p = 1; p < plans.size(); ++p)
            if (plans[p].cycles <
                plans[static_cast<size_t>(bestPlan)].cycles)
                bestPlan = static_cast<int>(p);
        local.planIndex[static_cast<size_t>(id)] = bestPlan;
    }
    local.totalCost = aggCost(table, local);
    if (local.totalCost < result.selection.totalCost)
        result.selection = std::move(local);

    result.seconds = timer.seconds();
    return result;
}

} // namespace gcd2::select
