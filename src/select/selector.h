/**
 * @file
 * Global layout & instruction selection (Sections IV-A and IV-B).
 *
 * The optimization problem: pick one execution plan per operator so that
 *   Agg_Cost(G) = sum_v Cost(ep_v) + sum_e TC(ep_src(e), ep_dst(e))
 * is minimal (Eq. 1). Solvers provided:
 *
 *  - Local: per-operator argmin, ignoring transformation costs (the
 *    "local optimal" baseline of Fig. 10).
 *  - ChainDp: block-cut tree DP over the free-operator graph. Each
 *    connected component is decomposed into its biconnected blocks;
 *    blocks are solved exhaustively and composed through cut vertices
 *    with per-plan messages, so the result is *exact* on every
 *    component whose blocks stay enumerable (chains, in-trees, and any
 *    DAG whose fan-out reconverges within a small block -- diamonds
 *    included). Components with an oversized block fall back to the
 *    historical Eq. 2 in-tree DP with monotone coordinate-descent
 *    conflict repair (heuristic there, and only there).
 *  - GlobalOptimal: branch-and-bound exhaustive search over all
 *    free-choice operators (exponential; the Fig. 10 "global optimal").
 *  - Gcd2Partitioned: the paper's solution -- split the graph at
 *    desirable partitioning edges (single-predecessor layout-pinned
 *    operators and profitable-transformation edges naturally pin
 *    layouts), bound each partition by a maximum operator count (the
 *    "GCD2(13)" / "GCD2(17)" parameter), and solve partitions
 *    independently and optimally.
 */
#ifndef GCD2_SELECT_SELECTOR_H
#define GCD2_SELECT_SELECTOR_H

#include <vector>

#include "select/cost_model.h"

namespace gcd2 {
class ThreadPool;
}

namespace gcd2::select {

/** One plan choice per node (index into PlanTable::plans). */
struct Selection
{
    std::vector<int> planIndex; ///< -1 for dead nodes
    uint64_t totalCost = 0;     ///< Agg_Cost of the selection
};

/** Costed plans of every live node plus transformation-cost queries. */
class PlanTable
{
  public:
    /**
     * Cost every candidate plan of every live node. Plan costing
     * simulates canonical kernels, which dominates compile time; when a
     * @p pool with more than one worker is supplied, nodes are costed
     * concurrently (bit-identical to serial: each node's plans are an
     * independent pure computation).
     */
    PlanTable(const graph::Graph &graph, const CostModel &model,
              ThreadPool *pool = nullptr);

    /** Shape-class sharing telemetry (tier 3 of tiered costing). */
    struct Stats
    {
        uint64_t shapeClasses = 0; ///< distinct structural signatures
        uint64_t sharedNodes = 0;  ///< live nodes served by a class rep
        uint64_t sharedPlans = 0;  ///< plan entries copied, not costed
    };

    const Stats &stats() const { return stats_; }

    const graph::Graph &graph() const { return *graph_; }

    const std::vector<ExecutionPlan> &
    plans(graph::NodeId id) const
    {
        return plans_[static_cast<size_t>(id)];
    }

    /** TC along edge producer->consumer under the given plan indices. */
    uint64_t tc(graph::NodeId producer, graph::NodeId consumer,
                int producerPlan, int consumerPlan) const;

    /** All (producer, consumer) tensor edges between live nodes. */
    const std::vector<std::pair<graph::NodeId, graph::NodeId>> &
    edges() const
    {
        return edges_;
    }

    /** Nodes with more than one candidate plan. */
    const std::vector<graph::NodeId> &freeNodes() const
    {
        return freeNodes_;
    }

  private:
    const graph::Graph *graph_;
    const CostModel *model_;
    std::vector<std::vector<ExecutionPlan>> plans_;
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges_;
    std::vector<graph::NodeId> freeNodes_;
    Stats stats_;
};

/** Evaluate Agg_Cost (Eq. 1) of a complete selection. */
uint64_t aggCost(const PlanTable &table, const Selection &selection);

/** Solver telemetry for the Fig. 10 search-time comparison. */
struct SelectorResult
{
    Selection selection;
    double seconds = 0.0;        ///< wall-clock search time
    uint64_t evaluations = 0;    ///< plan combinations examined
    /**
     * An evaluation budget expired before the branch-and-bound search
     * proved optimality; the selection is the best complete assignment
     * found so far (never worse than the per-node-cheapest incumbent
     * the search is seeded with, hence always valid and servable).
     */
    bool truncated = false;
};

SelectorResult selectLocal(const PlanTable &table);

SelectorResult selectChainDp(const PlanTable &table);

/**
 * Exhaustive global optimum via branch-and-bound.
 * @param maxFreeNodes refuse (fatal) above this many free nodes so
 *        benches cannot accidentally run for hours. The cap is only
 *        enforced when @p maxEvaluations is 0 (unbounded search): a
 *        budgeted search degrades to best-so-far instead of refusing.
 * @param maxEvaluations branch-and-bound evaluation budget (0 =
 *        unlimited). When exhausted the result is marked truncated.
 */
SelectorResult selectGlobalOptimal(const PlanTable &table,
                                   size_t maxFreeNodes = 22,
                                   uint64_t maxEvaluations = 0);

/**
 * The paper's partitioned solver with bounded sub-graph size.
 *
 * Partitions (connected components of free operators) are independent
 * subproblems: every edge leaving a component ends at a layout-pinned
 * operator whose plan is fixed up front, so no component's solution can
 * influence another's. With a @p pool of more than one worker the
 * components are solved concurrently; the resulting Selection, cost,
 * and evaluation count are bit-identical to the serial solve.
 *
 * @param maxEvaluations per-*component* branch-and-bound budget (0 =
 *        unlimited): an oversized component's chunks and polish windows
 *        all draw from one shared pool, so the component's total
 *        evaluation count never exceeds the budget. Deterministic at
 *        any thread count because every component carries its own pool;
 *        an exhausted pool marks the result truncated and serves the
 *        best assignment found, never worse than the local baseline the
 *        solve is seeded with.
 */
SelectorResult selectGcd2Partitioned(const PlanTable &table,
                                     int maxPartition = 13,
                                     ThreadPool *pool = nullptr,
                                     uint64_t maxEvaluations = 0);

} // namespace gcd2::select

#endif // GCD2_SELECT_SELECTOR_H
