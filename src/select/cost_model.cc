#include "select/cost_model.h"

#include <algorithm>

#include "common/logging.h"
#include "kernels/conv.h"
#include "kernels/runner.h"
#include "vliw/pack_cache.h"

namespace gcd2::select {

using graph::NodeId;
using graph::OpType;
using kernels::EwOp;
using kernels::MatMulScheme;
using kernels::MatMulShape;
using kernels::UnrollChoice;
using kernels::UnrollStrategy;
using tensor::Layout;

namespace {

int64_t
roundUp(int64_t v, int64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

int
panelRowsOf(MatMulScheme scheme)
{
    return tensor::layoutPanelRows(kernels::schemeLayout(scheme));
}

int
colsPerUnitOf(MatMulScheme scheme)
{
    return scheme == MatMulScheme::Vmpy  ? 1
           : scheme == MatMulScheme::Vmpa ? 2
                                          : 4;
}

/** Scalar-division cycles per row for reductions (DIV + glue). */
constexpr uint64_t kScalarDivCycles = 56;
/** Reciprocal-lookup cycles per row when the LUT optimization is on. */
constexpr uint64_t kLutDivCycles = 8;

NodeExecStats
fromTiming(const kernels::KernelRunResult &run)
{
    NodeExecStats stats;
    stats.cycles = run.stats.cycles;
    stats.instructions = run.stats.instructionsExecuted;
    stats.packets = run.stats.packetsExecuted;
    stats.bytesLoaded = run.stats.bytesLoaded;
    stats.bytesStored = run.stats.bytesStored;
    return stats;
}

/** Analytic data-movement stats: @p vectors 128-byte vectors each way. */
NodeExecStats
analyticCopy(int64_t vectors, uint64_t cyclesPerVector)
{
    NodeExecStats stats;
    stats.cycles = static_cast<uint64_t>(vectors) * cyclesPerVector + 8;
    stats.instructions = static_cast<uint64_t>(vectors) * 3;
    stats.packets = std::max<uint64_t>(1, stats.cycles / 3);
    stats.bytesLoaded = static_cast<uint64_t>(vectors) * 128;
    stats.bytesStored = static_cast<uint64_t>(vectors) * 128;
    return stats;
}

} // namespace

NodeExecStats &
NodeExecStats::operator+=(const NodeExecStats &other)
{
    cycles += other.cycles;
    instructions += other.instructions;
    packets += other.packets;
    bytesLoaded += other.bytesLoaded;
    bytesStored += other.bytesStored;
    return *this;
}

NodeExecStats
NodeExecStats::scaled(double factor) const
{
    NodeExecStats out;
    out.cycles = static_cast<uint64_t>(static_cast<double>(cycles) * factor);
    out.instructions =
        static_cast<uint64_t>(static_cast<double>(instructions) * factor);
    out.packets =
        static_cast<uint64_t>(static_cast<double>(packets) * factor);
    out.bytesLoaded =
        static_cast<uint64_t>(static_cast<double>(bytesLoaded) * factor);
    out.bytesStored =
        static_cast<uint64_t>(static_cast<double>(bytesStored) * factor);
    return out;
}

CostModel::CostModel(CostModelOptions options,
                     std::shared_ptr<CostCache> cache)
    : options_(options), cache_(std::move(cache))
{
    if (!cache_)
        cache_ = std::make_shared<CostCache>();
    if (options_.tieredCosting)
        tiered_ = std::make_unique<TieredCoster>(options_.packOptions);
}

CostModel::~CostModel() = default;

namespace {

/** The periodic 16-bit accumulator-drain charge of matmulTileStats,
 *  exposed so dominance pruning can bound exact costs analytically. */
uint64_t
drainCycles(MatMulScheme scheme, const UnrollChoice &choice, int64_t k)
{
    if (scheme == MatMulScheme::Vrmpy)
        return 0;
    const int accPairs =
        choice.cols * (scheme == MatMulScheme::Vmpa ? 2 : 1);
    const int64_t drains = std::max<int64_t>(0, (k + 31) / 32 - 1);
    return static_cast<uint64_t>(drains) *
           static_cast<uint64_t>(accPairs) * 14;
}

/** The canonical tile kernel matmulTileStats simulates. */
MatMulShape
tileShapeOf(MatMulScheme scheme, const UnrollChoice &choice, int64_t k)
{
    MatMulShape tile;
    tile.m = static_cast<int64_t>(panelRowsOf(scheme)) * choice.outer;
    tile.k = k;
    tile.n = static_cast<int64_t>(colsPerUnitOf(scheme)) * choice.cols;
    return tile;
}

kernels::MatMulConfig
tileConfigOf(MatMulScheme scheme, const UnrollChoice &choice)
{
    kernels::MatMulConfig config;
    config.scheme = scheme;
    return kernels::withUnroll(config, choice);
}

} // namespace

CostKey
CostModel::baseKey(CostKind kind) const
{
    CostKey key;
    key.kind = kind;
    key.policy = options_.packOptions.policy;
    key.packW = options_.packOptions.w;
    key.packPenaltyScale = options_.packOptions.penaltyScale;
    return key;
}

NodeExecStats
CostModel::matmulTileStats(MatMulScheme scheme, const UnrollChoice &choice,
                           int64_t k) const
{
    CostKey key = baseKey(CostKind::MatMulTile);
    key.tag = static_cast<int32_t>(scheme);
    key.unrollOut = choice.outer;
    key.unrollCols = choice.cols;
    key.unrollK = choice.k;
    key.extent = k;
    return cache_->lookupOrCompute(key, [&] {
        // One row panel x one column tile, full reduction depth: every
        // other tile of the kernel does identical work, so scaling is
        // exact.
        const MatMulShape tile = tileShapeOf(scheme, choice, k);
        const kernels::MatMulConfig config = tileConfigOf(scheme, choice);

        NodeExecStats entry;
        if (tiered_) {
            // Shared-structure path: a certified affine derivation or a
            // transplant-scheduled simulation, exact either way.
            entry = tiered_->tileStats(tile, config);
        } else {
            const kernels::MatMulKernel kernel(tile, config);
            const kernels::KernelRunResult run =
                kernels::runKernel(kernel.program(), kernel.buffers(), {},
                                   {}, options_.packOptions);
            entry = fromTiming(run);
        }

        // 16-bit accumulator drain: vmpy/vmpa accumulate 8-bit products
        // into halfword lanes, which is only overflow-safe for a bounded
        // number of accumulation steps; production kernels periodically
        // widen the partial sums into 32-bit lanes. The generated kernels
        // implement the drain-free building block; the model charges the
        // periodic widening (one widen + re-zero sequence per live
        // accumulator pair every 32 reduction steps), which is what makes
        // vrmpy (native 32-bit accumulation) win deep reductions -- the
        // shape-dependent instruction trade-off behind Table II and
        // Fig. 10.
        if (scheme != MatMulScheme::Vrmpy) {
            const int accPairs =
                choice.cols * (scheme == MatMulScheme::Vmpa ? 2 : 1);
            // Drain every 32 reduction steps (requantized-operand
            // headroom in the halfword lanes); each drain reads the pair,
            // widen-adds into the 32-bit partials and re-zeroes it -- ~14
            // cycles per pair through the single shift and permute units.
            const int64_t drains = std::max<int64_t>(0, (k + 31) / 32 - 1);
            entry.cycles += static_cast<uint64_t>(drains) *
                            static_cast<uint64_t>(accPairs) * 14;
            entry.instructions += static_cast<uint64_t>(drains) *
                                  static_cast<uint64_t>(accPairs) * 8;
        }
        return entry;
    });
}

UnrollChoice
CostModel::unrollFor(const MatMulShape &shape, MatMulScheme scheme) const
{
    UnrollChoice choice{1, 1, 1};
    switch (options_.unroll) {
      case UnrollStrategy::None:
        break;
      case UnrollStrategy::Outer:
        choice = UnrollChoice{4, 1, 1};
        break;
      case UnrollStrategy::Mid:
        choice = UnrollChoice{1, 4, 1};
        break;
      case UnrollStrategy::Mid2:
        choice = UnrollChoice{1, 2, 1};
        break;
      case UnrollStrategy::Adaptive:
        choice = kernels::adaptiveUnroll(shape, scheme);
        break;
      case UnrollStrategy::Exhaustive: {
        const int panel = panelRowsOf(scheme);
        const int unit = colsPerUnitOf(scheme);
        uint64_t best = UINT64_MAX;
        for (const UnrollChoice &candidate : kernels::unrollCandidates()) {
            const int64_t panelSpan =
                static_cast<int64_t>(panel) * candidate.outer;
            const int64_t tileSpan =
                static_cast<int64_t>(unit) * candidate.cols;
            const double panels = static_cast<double>(
                roundUp(shape.m, panelSpan) / panelSpan);
            const double tiles = static_cast<double>(
                roundUp(shape.n, tileSpan) / tileSpan);
            if (tiered_ && best != UINT64_MAX) {
                // Tier-1 prefilter: a candidate whose certified analytic
                // floor (raw bound + the same drain charge and trip-count
                // scaling the exact path applies) already exceeds the
                // best exact cost can never win the `cycles < best`
                // argmin, so skip its pack + simulation entirely.
                const uint64_t rawLb = tiered_->tileLowerBound(
                    tileShapeOf(scheme, candidate, shape.k),
                    tileConfigOf(scheme, candidate));
                if (rawLb > 0) {
                    const uint64_t scaledLb = static_cast<uint64_t>(
                        static_cast<double>(
                            rawLb +
                            drainCycles(scheme, candidate, shape.k)) *
                        (panels * tiles));
                    if (scaledLb > best) {
                        tiered_->notePruned(1);
                        continue;
                    }
                }
            }
            const uint64_t cycles =
                matmulTileStats(scheme, candidate, shape.k)
                    .scaled(panels * tiles)
                    .cycles;
            if (cycles < best) {
                best = cycles;
                choice = candidate;
            }
        }
        break;
      }
    }
    return choice;
}

NodeExecStats
CostModel::matmulStats(const MatMulShape &shape, MatMulScheme scheme,
                       uint64_t extraCycles) const
{
    const int panel = panelRowsOf(scheme);
    const int unit = colsPerUnitOf(scheme);
    const UnrollChoice choice = unrollFor(shape, scheme);

    const int64_t panelSpan = static_cast<int64_t>(panel) * choice.outer;
    const int64_t tileSpan = static_cast<int64_t>(unit) * choice.cols;
    const double panels =
        static_cast<double>(roundUp(shape.m, panelSpan) / panelSpan);
    const double tiles =
        static_cast<double>(roundUp(shape.n, tileSpan) / tileSpan);
    NodeExecStats stats =
        matmulTileStats(scheme, choice, shape.k).scaled(panels * tiles);
    stats.cycles += extraCycles;
    return stats;
}

NodeExecStats
CostModel::depthwiseRowStats(int stride) const
{
    CostKey key = baseKey(CostKind::DepthwiseRow);
    key.tag = stride;
    return cache_->lookupOrCompute(key, [&] {
        kernels::DepthwiseConfig config;
        config.channels = 1;
        config.stride = stride;
        config.inH = stride == 2 ? 5 : 4; // two output rows
        config.inW = 256;
        const kernels::DepthwiseKernel kernel(config);
        const kernels::KernelRunResult run =
            kernels::runKernel(kernel.program(), kernel.buffers(), {}, {},
                               options_.packOptions);
        return fromTiming(run).scaled(0.5); // per output row tile
    });
}

NodeExecStats
CostModel::elementwiseStats(EwOp op, int64_t length) const
{
    const bool scalarOp = op == EwOp::Div || op == EwOp::DivLut;
    const int64_t simLen =
        std::min<int64_t>(length, scalarOp ? 512 : 8192);

    CostKey key = baseKey(CostKind::Elementwise);
    key.tag = static_cast<int32_t>(op);
    key.extent = simLen;
    const NodeExecStats entry = cache_->lookupOrCompute(key, [&] {
        kernels::EwConfig config;
        config.op = op;
        config.length = simLen;
        const kernels::ElementwiseKernel kernel(config);
        const kernels::KernelRunResult run =
            kernels::runKernel(kernel.program(), kernel.buffers(), {}, {},
                               options_.packOptions);
        return fromTiming(run);
    });

    const double factor =
        static_cast<double>(length) / static_cast<double>(simLen);
    return factor == 1.0 ? entry : entry.scaled(factor);
}

NodeExecStats
CostModel::computeStats(const graph::Graph &graph, NodeId id,
                        const ExecutionPlan &plan) const
{
    const graph::Node &node = graph.node(id);
    const MatrixView view = matrixView(node.shape);
    const int64_t elements = node.shape.elements();
    // Elementwise work covers the plan layout's padding too.
    const int64_t paddedElements =
        tensor::packedByteSize(plan.inLayout, view.rows, view.cols);
    const int64_t rows = std::max<int64_t>(1, view.rows);
    const uint64_t perRowDiv =
        options_.lutOptimization ? kLutDivCycles : kScalarDivCycles;

    // Epilogue of a fused layout transform (attrs.fusedTransform): the
    // kernel's store pass writes the transformed row-major view
    // directly. Charged at half the standalone unpack cost (the store
    // traffic is already paid by the kernel; only the scatter pattern
    // and setup remain), plus one permute-unit op per output vector
    // when a non-identity Transpose was folded in. Living in the plan's
    // cycles keeps auditSelection's Eq.-1 re-derivation consistent: the
    // edge sees a RowMajor producer layout and prices 0.
    const auto fusedTransformEpilogue = [&](NodeExecStats &stats) {
        if (!node.attrs.fusedTransform)
            return;
        const tensor::Shape natural =
            graph::naturalNodeShape(graph, node);
        uint64_t cycles =
            transformCost(natural, plan.inLayout, Layout::RowMajor) / 2;
        if (node.attrs.fusedTransformPermutes) {
            const uint64_t vectors = static_cast<uint64_t>(
                (natural.elements() + 127) / 128);
            cycles += vectors;
            stats.instructions += vectors;
        }
        stats.cycles += cycles;
    };

    switch (node.op) {
      case OpType::Input:
      case OpType::Constant:
      case OpType::Output:
      case OpType::Reshape: // zero-copy view in row-major
        return {};

      case OpType::Conv2D: {
        const tensor::Shape &in = graph.node(node.inputs[0]).shape;
        kernels::ConvShape conv;
        conv.inC = in.dim(0);
        conv.inH = in.dim(1);
        conv.inW = in.dim(2);
        conv.outC = node.attrs.outC;
        conv.kH = node.attrs.kH;
        conv.kW = node.attrs.kW;
        conv.strideH = node.attrs.strideH;
        conv.strideW = node.attrs.strideW;
        conv.padH = node.attrs.padH;
        conv.padW = node.attrs.padW;

        uint64_t im2col = 0;
        NodeExecStats extraTraffic;
        if (!conv.isPointwise()) {
            const int64_t patchBytes = conv.matmulShape().m *
                                       conv.matmulShape().k;
            im2col = static_cast<uint64_t>(
                4 * (patchBytes / dsp::kVectorBytes) + 16);
            extraTraffic.bytesLoaded =
                static_cast<uint64_t>(patchBytes);
            extraTraffic.bytesStored =
                static_cast<uint64_t>(patchBytes);
            extraTraffic.instructions = static_cast<uint64_t>(
                3 * (patchBytes / dsp::kVectorBytes));
        }
        NodeExecStats stats =
            matmulStats(conv.matmulShape(), plan.scheme, im2col);
        stats += extraTraffic;
        if (node.attrs.fusedLut) {
            // Fused nonlinearity: one extra VLUT per output vector in the
            // epilogue (permute-unit bound), vs. a whole separate pass.
            stats.cycles += static_cast<uint64_t>(
                (node.shape.elements() + 127) / 128);
        }
        if (node.attrs.fusedAdd) {
            // Fused residual: stream the second operand through the
            // epilogue (one load + one byte-average per output vector).
            const uint64_t vectors = static_cast<uint64_t>(
                (node.shape.elements() + 127) / 128);
            stats.cycles += 2 * vectors;
            stats.bytesLoaded += vectors * 128;
            stats.instructions += 2 * vectors;
        }
        fusedTransformEpilogue(stats);
        return stats;
      }

      case OpType::MatMul: {
        const tensor::Shape &a = graph.node(node.inputs[0]).shape;
        // node.shape may carry a fused epilogue transform; the kernel's
        // own output columns come from the natural (pre-transform) shape.
        const tensor::Shape natural = graph::naturalNodeShape(graph, node);
        MatMulShape shape;
        shape.m = a.dim(a.rank() - 2);
        shape.k = a.dim(a.rank() - 1);
        shape.n = natural.dim(natural.rank() - 1);
        const int64_t batch =
            std::max<int64_t>(1, a.elements() / (shape.m * shape.k));
        NodeExecStats stats = matmulStats(shape, plan.scheme, 0);
        if (batch != 1)
            stats = stats.scaled(static_cast<double>(batch));
        if (node.attrs.fusedLut) {
            stats.cycles += static_cast<uint64_t>(
                (node.shape.elements() + 127) / 128);
        }
        if (node.attrs.fusedAdd) {
            const uint64_t vectors = static_cast<uint64_t>(
                (node.shape.elements() + 127) / 128);
            stats.cycles += 2 * vectors;
            stats.bytesLoaded += vectors * 128;
            stats.instructions += 2 * vectors;
        }
        fusedTransformEpilogue(stats);
        return stats;
      }

      case OpType::DepthwiseConv2D: {
        // Compute-loop extents come from the natural shape (a fused
        // transform only changes the stored view).
        const tensor::Shape natural = graph::naturalNodeShape(graph, node);
        const int64_t c = natural.dim(0);
        const int64_t oh = natural.dim(1);
        const int64_t ow = natural.dim(2);
        const int stride = node.attrs.strideW == 1 ? 1 : 2;
        // Stride-2 tiles yield 128 outputs per pass, stride-1 tiles 256.
        const int64_t tileOut = stride == 2 ? 128 : 256;
        double rowTiles = static_cast<double>(c) *
                          static_cast<double>(oh) *
                          static_cast<double>((ow + tileOut - 1) /
                                              tileOut);
        // The canonical tile is 3x3; other kernel extents scale by taps.
        rowTiles *= static_cast<double>(node.attrs.kH * node.attrs.kW) /
                    9.0;
        NodeExecStats stats = depthwiseRowStats(stride).scaled(rowTiles);
        fusedTransformEpilogue(stats);
        return stats;
      }

      case OpType::Add:
      case OpType::Sub:
      case OpType::Mul:
        return elementwiseStats(EwOp::Add, paddedElements);

      case OpType::Div: {
        if (options_.lutOptimization) {
            // Reciprocal lookup + multiply: two LUT-class passes.
            NodeExecStats stats =
                elementwiseStats(EwOp::Lut, paddedElements);
            stats += elementwiseStats(EwOp::Lut, paddedElements);
            return stats;
        }
        return elementwiseStats(EwOp::Div, paddedElements);
      }

      case OpType::Pow:
      case OpType::Sigmoid:
      case OpType::Tanh:
      case OpType::Gelu:
        // Vectorizing byte-table lookups with VLUT is itself one of the
        // "other optimizations"; without it the nonlinearity runs as a
        // scalar lookup loop.
        return elementwiseStats(options_.lutOptimization ? EwOp::Lut
                                                         : EwOp::DivLut,
                                paddedElements);

      case OpType::Clamp:
        return elementwiseStats(EwOp::Clamp, paddedElements);

      case OpType::Softmax: {
        // exp lookup + row-sum reduce + per-row normalization.
        NodeExecStats stats = elementwiseStats(
            options_.lutOptimization ? EwOp::Lut : EwOp::DivLut,
            elements);
        stats += elementwiseStats(EwOp::Add, elements); // reduction tree
        if (options_.lutOptimization) {
            stats += elementwiseStats(EwOp::Lut, elements); // recip scale
            stats.cycles += static_cast<uint64_t>(rows) * kLutDivCycles;
        } else {
            stats += elementwiseStats(EwOp::Div, elements);
            stats.cycles += static_cast<uint64_t>(rows) *
                            kScalarDivCycles;
        }
        return stats;
      }

      case OpType::LayerNorm: {
        // mean + variance reductions, then a scale/shift pass.
        NodeExecStats stats = elementwiseStats(EwOp::Add, elements);
        stats += elementwiseStats(EwOp::Add, elements);
        stats += elementwiseStats(EwOp::Lut, elements);
        stats.cycles += static_cast<uint64_t>(rows) * perRowDiv;
        return stats;
      }

      case OpType::MaxPool:
      case OpType::AvgPool: {
        const int64_t window = node.attrs.poolK * node.attrs.poolK;
        const int64_t passes = (window + 1) / 2;
        const EwOp op = node.op == OpType::MaxPool ? EwOp::MaxPool
                                                   : EwOp::AvgPool;
        return elementwiseStats(op, 2 * elements)
            .scaled(static_cast<double>(passes));
      }

      case OpType::GlobalAvgPool: {
        const int64_t inElements =
            graph.node(node.inputs[0]).shape.elements();
        NodeExecStats stats = elementwiseStats(EwOp::Add, inElements);
        stats.cycles +=
            static_cast<uint64_t>(node.shape.elements()) * perRowDiv;
        return stats;
      }

      case OpType::Upsample:
      case OpType::Concat:
        return analyticCopy((elements + 127) / 128, 3);

      case OpType::Transpose:
        return analyticCopy((elements + 127) / 128, 4);

      case OpType::kNumOps:
        break;
    }
    GCD2_PANIC("unhandled op in cost model");
}

std::vector<ExecutionPlan>
CostModel::costedPlans(const graph::Graph &graph, NodeId id) const
{
    std::vector<ExecutionPlan> plans = enumeratePlans(graph, id);
    if (tiered_) {
        // Tier 2: same-layout dominance. The current plan enumeration
        // gives matmul-family plans pairwise distinct layout pairs, so
        // this filter is usually a no-op on zoo graphs -- it earns its
        // keep under exhaustive unroll scans and future enumerations
        // that propose several kernels per layout.
        tiered_->notePruned(applySameLayoutDominance(
            plans,
            [&](const ExecutionPlan &plan) {
                return computeStats(graph, id, plan).cycles;
            },
            [&](const ExecutionPlan &plan) {
                return planLowerBound(graph, id, plan);
            }));
        return plans;
    }
    for (ExecutionPlan &plan : plans)
        plan.cycles = computeStats(graph, id, plan).cycles;
    return plans;
}

uint64_t
CostModel::planLowerBound(const graph::Graph &graph, NodeId id,
                          const ExecutionPlan &plan) const
{
    if (!tiered_)
        return 0;
    const graph::Node &node = graph.node(id);
    // Only matmul-family plans have a certified analytic floor; every
    // other operator reports "no bound" (0), which never prunes.
    MatMulShape shape;
    int64_t batch = 1;
    switch (node.op) {
      case OpType::Conv2D: {
        const tensor::Shape &in = graph.node(node.inputs[0]).shape;
        kernels::ConvShape conv;
        conv.inC = in.dim(0);
        conv.inH = in.dim(1);
        conv.inW = in.dim(2);
        conv.outC = node.attrs.outC;
        conv.kH = node.attrs.kH;
        conv.kW = node.attrs.kW;
        conv.strideH = node.attrs.strideH;
        conv.strideW = node.attrs.strideW;
        conv.padH = node.attrs.padH;
        conv.padW = node.attrs.padW;
        shape = conv.matmulShape();
        break;
      }
      case OpType::MatMul: {
        const tensor::Shape &a = graph.node(node.inputs[0]).shape;
        const tensor::Shape natural = graph::naturalNodeShape(graph, node);
        shape.m = a.dim(a.rank() - 2);
        shape.k = a.dim(a.rank() - 1);
        shape.n = natural.dim(natural.rank() - 1);
        batch = std::max<int64_t>(1, a.elements() / (shape.m * shape.k));
        break;
      }
      default:
        return 0;
    }

    const UnrollChoice choice = unrollFor(shape, plan.scheme);
    const uint64_t rawLb = tiered_->tileLowerBound(
        tileShapeOf(plan.scheme, choice, shape.k),
        tileConfigOf(plan.scheme, choice));
    if (rawLb == 0)
        return 0;

    // Mirror computeStats' scaling exactly (same double multiplications
    // and truncations), dropping every non-negative extra term (im2col,
    // fused epilogues) so the result stays a true floor.
    const int64_t panelSpan =
        static_cast<int64_t>(panelRowsOf(plan.scheme)) * choice.outer;
    const int64_t tileSpan =
        static_cast<int64_t>(colsPerUnitOf(plan.scheme)) * choice.cols;
    const double panels =
        static_cast<double>(roundUp(shape.m, panelSpan) / panelSpan);
    const double tiles =
        static_cast<double>(roundUp(shape.n, tileSpan) / tileSpan);
    uint64_t bound = static_cast<uint64_t>(
        static_cast<double>(rawLb +
                            drainCycles(plan.scheme, choice, shape.k)) *
        (panels * tiles));
    if (batch != 1) {
        bound = static_cast<uint64_t>(static_cast<double>(bound) *
                                      static_cast<double>(batch));
    }
    return bound;
}

NodeExecStats
CostModel::planStats(const graph::Graph &graph, NodeId id,
                     const ExecutionPlan &plan) const
{
    return computeStats(graph, id, plan);
}

std::shared_ptr<const dsp::PackedProgram>
CostModel::canonicalSchedule(const graph::Graph &graph, NodeId id,
                             const ExecutionPlan &plan) const
{
    const graph::Node &node = graph.node(id);
    const MatrixView view = matrixView(node.shape);
    const int64_t elements = node.shape.elements();
    const int64_t paddedElements =
        tensor::packedByteSize(plan.inLayout, view.rows, view.cols);

    auto packOf = [&](const dsp::Program &prog) {
        return vliw::PackCache::global().lookupOrPack(
            prog, options_.packOptions);
    };
    auto matmulSchedule = [&](const MatMulShape &shape,
                              MatMulScheme scheme) {
        // Rebuild the exact canonical tile kernel matmulTileStats
        // simulates for this shape's unroll choice.
        const UnrollChoice choice = unrollFor(shape, scheme);
        const MatMulShape tile = tileShapeOf(scheme, choice, shape.k);
        const kernels::MatMulConfig config = tileConfigOf(scheme, choice);
        // The tiered coster serves the class anchor's packet structure
        // transplanted onto this kernel -- bit-identical to packing it
        // (transplantCompatible programs share one dependence graph),
        // and one shared PackedProgram object per (class, depth) so
        // downstream passes that dedupe by pointer still coalesce.
        if (tiered_)
            return tiered_->tileSchedule(tile, config);
        return packOf(kernels::MatMulKernel(tile, config).program());
    };
    auto elementwiseSchedule = [&](EwOp op, int64_t length) {
        // Mirror elementwiseStats' canonical simulation length.
        const bool scalarOp = op == EwOp::Div || op == EwOp::DivLut;
        kernels::EwConfig config;
        config.op = op;
        config.length = std::min<int64_t>(length, scalarOp ? 512 : 8192);
        return packOf(kernels::ElementwiseKernel(config).program());
    };

    switch (node.op) {
      case OpType::Input:
      case OpType::Constant:
      case OpType::Output:
      case OpType::Reshape:
      case OpType::Upsample:
      case OpType::Concat:
      case OpType::Transpose:
        return nullptr; // costed analytically; no kernel program served

      case OpType::Conv2D: {
        const tensor::Shape &in = graph.node(node.inputs[0]).shape;
        kernels::ConvShape conv;
        conv.inC = in.dim(0);
        conv.inH = in.dim(1);
        conv.inW = in.dim(2);
        conv.outC = node.attrs.outC;
        conv.kH = node.attrs.kH;
        conv.kW = node.attrs.kW;
        conv.strideH = node.attrs.strideH;
        conv.strideW = node.attrs.strideW;
        conv.padH = node.attrs.padH;
        conv.padW = node.attrs.padW;
        return matmulSchedule(conv.matmulShape(), plan.scheme);
      }

      case OpType::MatMul: {
        const tensor::Shape &a = graph.node(node.inputs[0]).shape;
        // Mirror computeStats: kernel columns from the natural shape.
        const tensor::Shape natural = graph::naturalNodeShape(graph, node);
        MatMulShape shape;
        shape.m = a.dim(a.rank() - 2);
        shape.k = a.dim(a.rank() - 1);
        shape.n = natural.dim(natural.rank() - 1);
        return matmulSchedule(shape, plan.scheme);
      }

      case OpType::DepthwiseConv2D: {
        const int stride = node.attrs.strideW == 1 ? 1 : 2;
        kernels::DepthwiseConfig config;
        config.channels = 1;
        config.stride = stride;
        config.inH = stride == 2 ? 5 : 4;
        config.inW = 256;
        return packOf(kernels::DepthwiseKernel(config).program());
      }

      case OpType::Add:
      case OpType::Sub:
      case OpType::Mul:
        return elementwiseSchedule(EwOp::Add, paddedElements);

      case OpType::Div:
        return elementwiseSchedule(options_.lutOptimization ? EwOp::Lut
                                                            : EwOp::Div,
                                   paddedElements);

      case OpType::Pow:
      case OpType::Sigmoid:
      case OpType::Tanh:
      case OpType::Gelu:
        return elementwiseSchedule(options_.lutOptimization ? EwOp::Lut
                                                            : EwOp::DivLut,
                                   paddedElements);

      case OpType::Clamp:
        return elementwiseSchedule(EwOp::Clamp, paddedElements);

      case OpType::Softmax:
        return elementwiseSchedule(options_.lutOptimization ? EwOp::Lut
                                                            : EwOp::DivLut,
                                   elements);

      case OpType::LayerNorm:
        return elementwiseSchedule(EwOp::Add, elements);

      case OpType::MaxPool:
      case OpType::AvgPool:
        return elementwiseSchedule(node.op == OpType::MaxPool
                                       ? EwOp::MaxPool
                                       : EwOp::AvgPool,
                                   2 * elements);

      case OpType::GlobalAvgPool:
        return elementwiseSchedule(
            EwOp::Add, graph.node(node.inputs[0]).shape.elements());

      case OpType::kNumOps:
        break;
    }
    GCD2_PANIC("unhandled op in canonicalSchedule");
}

uint64_t
CostModel::transformCost(const tensor::Shape &shape, Layout from,
                         Layout to) const
{
    const MatrixView view = matrixView(shape);
    return tensor::layoutTransformCycles(from, to, view.rows, view.cols);
}

NodeExecStats
CostModel::transformStats(const tensor::Shape &shape, Layout from,
                          Layout to) const
{
    NodeExecStats stats;
    stats.cycles = transformCost(shape, from, to);
    if (stats.cycles == 0)
        return stats;
    const MatrixView view = matrixView(shape);
    const int64_t inBytes =
        tensor::packedByteSize(from, view.rows, view.cols);
    const int64_t outBytes =
        tensor::packedByteSize(to, view.rows, view.cols);
    stats.bytesLoaded = static_cast<uint64_t>(inBytes);
    stats.bytesStored = static_cast<uint64_t>(outBytes);
    stats.instructions =
        static_cast<uint64_t>(3 * ((inBytes + outBytes) / 128));
    stats.packets = std::max<uint64_t>(1, stats.cycles / 3);
    return stats;
}

} // namespace gcd2::select
