#include "common/logging.h"

#include <cstring>
#include <iostream>

namespace gcd2 {

namespace {

bool verboseLogging = false;

/** Strip the leading directories so messages show a repo-relative path. */
const char *
baseName(const char *path)
{
    const char *slash = std::strrchr(path, '/');
    return slash ? slash + 1 : path;
}

} // namespace

namespace detail {

std::string
formatMessage(const char *kind, const char *file, int line,
              const std::string &msg)
{
    std::ostringstream oss;
    oss << kind << " (" << baseName(file) << ":" << line << "): " << msg;
    return oss.str();
}

} // namespace detail

void
warnAt(const char *file, int line, const std::string &msg)
{
    std::cerr << detail::formatMessage("warn", file, line, msg) << "\n";
}

void
inform(const std::string &msg)
{
    if (verboseLogging)
        std::cerr << "info: " << msg << "\n";
}

void
setVerboseLogging(bool enabled)
{
    verboseLogging = enabled;
}

} // namespace gcd2
