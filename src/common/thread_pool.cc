#include "common/thread_pool.h"

#include <atomic>

namespace gcd2 {

int
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int numThreads)
{
    size_ = numThreads <= 0 ? hardwareThreads() : numThreads;
    if (size_ == 1)
        return; // inline mode: no workers, submit() executes directly
    workers_.reserve(static_cast<size_t>(size_));
    for (int i = 0; i < size_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::recordError(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!firstError_)
        firstError_ = std::move(error);
}

void
ThreadPool::runTask(const std::function<void()> &task)
{
    try {
        task();
    } catch (...) {
        recordError(std::current_exception());
    }
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        runTask(task);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
            if (pending_ == 0)
                allDone_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        runTask(task);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++pending_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return pending_ == 0; });
        error = std::move(firstError_);
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(int64_t n, const std::function<void(int64_t)> &body)
{
    if (n <= 0)
        return;
    if (workers_.empty() || n == 1) {
        // Inline mode matches the historical serial loop exactly.
        std::exception_ptr error;
        for (int64_t i = 0; i < n && !error; ++i) {
            try {
                body(i);
            } catch (...) {
                error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    // One task per worker; iterations are claimed through a shared
    // counter so load imbalance between iterations evens out.
    auto next = std::make_shared<std::atomic<int64_t>>(0);
    const int64_t tasks =
        std::min<int64_t>(static_cast<int64_t>(size_), n);
    for (int64_t t = 0; t < tasks; ++t) {
        submit([next, n, &body] {
            for (int64_t i = next->fetch_add(1); i < n;
                 i = next->fetch_add(1))
                body(i);
        });
    }
    wait();
}

} // namespace gcd2
