#include "common/rng.h"

#include "common/logging.h"

namespace gcd2 {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    // Expand the seed with splitmix64 as recommended by the xoshiro authors.
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    GCD2_ASSERT(lo <= hi, "empty range [" << lo << ", " << hi << "]");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::uniformDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<int8_t>
Rng::int8Vector(size_t n)
{
    std::vector<int8_t> out(n);
    for (auto &v : out)
        v = static_cast<int8_t>(uniformInt(-128, 127));
    return out;
}

std::vector<uint8_t>
Rng::uint8Vector(size_t n)
{
    std::vector<uint8_t> out(n);
    for (auto &v : out)
        v = static_cast<uint8_t>(uniformInt(0, 255));
    return out;
}

} // namespace gcd2
