/**
 * @file
 * Error-reporting and logging primitives for the GCD2 reproduction.
 *
 * Follows the gem5 convention: fatal() for user errors that make it
 * impossible to continue (bad shapes, unsupported configuration) and
 * panic() for internal invariant violations (compiler bugs).
 */
#ifndef GCD2_COMMON_LOGGING_H
#define GCD2_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gcd2 {

/** Exception thrown for unrecoverable user-facing errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

std::string formatMessage(const char *kind, const char *file, int line,
                          const std::string &msg);

} // namespace detail

/** Report a user error: the requested operation cannot continue. */
[[noreturn]] inline void
fatalAt(const char *file, int line, const std::string &msg)
{
    throw FatalError(detail::formatMessage("fatal", file, line, msg));
}

/** Report an internal bug: an invariant that must always hold was broken. */
[[noreturn]] inline void
panicAt(const char *file, int line, const std::string &msg)
{
    throw PanicError(detail::formatMessage("panic", file, line, msg));
}

/** Emit a non-fatal warning on stderr. */
void warnAt(const char *file, int line, const std::string &msg);

/** Emit an informational message on stderr (suppressed unless verbose). */
void inform(const std::string &msg);

/** Toggle informational logging (off by default to keep benches quiet). */
void setVerboseLogging(bool enabled);

} // namespace gcd2

#define GCD2_FATAL(msg)                                                      \
    do {                                                                     \
        std::ostringstream gcd2_oss_;                                        \
        gcd2_oss_ << msg;                                                    \
        ::gcd2::fatalAt(__FILE__, __LINE__, gcd2_oss_.str());                \
    } while (0)

#define GCD2_PANIC(msg)                                                      \
    do {                                                                     \
        std::ostringstream gcd2_oss_;                                        \
        gcd2_oss_ << msg;                                                    \
        ::gcd2::panicAt(__FILE__, __LINE__, gcd2_oss_.str());                \
    } while (0)

#define GCD2_WARN(msg)                                                       \
    do {                                                                     \
        std::ostringstream gcd2_oss_;                                        \
        gcd2_oss_ << msg;                                                    \
        ::gcd2::warnAt(__FILE__, __LINE__, gcd2_oss_.str());                 \
    } while (0)

/** Check an invariant; violations are internal bugs (panic). */
#define GCD2_ASSERT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            GCD2_PANIC("assertion failed: " #cond ": " << msg);              \
        }                                                                    \
    } while (0)

/** Validate a user-supplied condition; violations are fatal errors. */
#define GCD2_REQUIRE(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            GCD2_FATAL("requirement failed: " #cond ": " << msg);            \
        }                                                                    \
    } while (0)

#endif // GCD2_COMMON_LOGGING_H
