#include "common/diag.h"

#include <sstream>

namespace gcd2::common {

const char *
diagSeverityName(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::Info:
        return "info";
      case DiagSeverity::Warning:
        return "warning";
      case DiagSeverity::Error:
        return "error";
    }
    return "?";
}

const char *
diagCodeName(DiagCode code)
{
    switch (code) {
      case DiagCode::None:
        return "none";
      case DiagCode::SchedEmptyPacket:
        return "sched-empty-packet";
      case DiagCode::SchedOversizedPacket:
        return "sched-oversized-packet";
      case DiagCode::SchedBadInstIndex:
        return "sched-bad-inst-index";
      case DiagCode::SchedSlotInfeasible:
        return "sched-slot-infeasible";
      case DiagCode::SchedPacketOrder:
        return "sched-packet-order";
      case DiagCode::SchedHardDepInPacket:
        return "sched-hard-dep-in-packet";
      case DiagCode::SchedInstCoverage:
        return "sched-inst-coverage";
      case DiagCode::SchedLabelMapSize:
        return "sched-label-map-size";
      case DiagCode::SchedLabelPastEnd:
        return "sched-label-past-end";
      case DiagCode::SchedLabelBoundary:
        return "sched-label-boundary";
      case DiagCode::LintUseBeforeDef:
        return "lint-use-before-def";
      case DiagCode::LintMaybeUninit:
        return "lint-maybe-uninit";
      case DiagCode::LintDeadStore:
        return "lint-dead-store";
      case DiagCode::LintDeadPacket:
        return "lint-dead-packet";
      case DiagCode::LintWriteConflict:
        return "lint-write-conflict";
      case DiagCode::LintSlotOvercommit:
        return "lint-slot-overcommit";
      case DiagCode::LintDelayClaim:
        return "lint-delay-claim";
      case DiagCode::LintNoaliasOverlap:
        return "lint-noalias-overlap";
      case DiagCode::LintNoaliasDupBase:
        return "lint-noalias-dup-base";
      case DiagCode::LintRedundantLoad:
        return "lint-redundant-load";
      case DiagCode::LintOutOfBounds:
        return "lint-out-of-bounds";
    }
    return "?";
}

std::string
Diag::toString() const
{
    std::ostringstream out;
    out << "[" << diagSeverityName(severity) << "] " << pass;
    if (node >= 0)
        out << " (node " << node << ")";
    if (code != DiagCode::None)
        out << " [" << diagCodeName(code) << "]";
    out << ": " << message;
    return out.str();
}

void
DiagLog::add(Diag diag)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(std::move(diag));
}

void
DiagLog::add(DiagSeverity severity, std::string pass, int64_t node,
             std::string message)
{
    add(Diag{severity, std::move(pass), node, std::move(message)});
}

std::vector<Diag>
DiagLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

size_t
DiagLog::count(DiagSeverity severity) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const Diag &diag : entries_)
        if (diag.severity == severity)
            ++n;
    return n;
}

size_t
DiagLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace gcd2::common
