#include "common/diag.h"

#include <sstream>

namespace gcd2::common {

const char *
diagSeverityName(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::Info:
        return "info";
      case DiagSeverity::Warning:
        return "warning";
      case DiagSeverity::Error:
        return "error";
    }
    return "?";
}

std::string
Diag::toString() const
{
    std::ostringstream out;
    out << "[" << diagSeverityName(severity) << "] " << pass;
    if (node >= 0)
        out << " (node " << node << ")";
    out << ": " << message;
    return out.str();
}

void
DiagLog::add(Diag diag)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(std::move(diag));
}

void
DiagLog::add(DiagSeverity severity, std::string pass, int64_t node,
             std::string message)
{
    add(Diag{severity, std::move(pass), node, std::move(message)});
}

std::vector<Diag>
DiagLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

size_t
DiagLog::count(DiagSeverity severity) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const Diag &diag : entries_)
        if (diag.severity == severity)
            ++n;
    return n;
}

size_t
DiagLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace gcd2::common
