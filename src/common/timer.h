/**
 * @file
 * Minimal monotonic stopwatch used for pass instrumentation and solver
 * telemetry. One definition so every reported "seconds" in the system
 * comes off the same clock.
 */
#ifndef GCD2_COMMON_TIMER_H
#define GCD2_COMMON_TIMER_H

#include <chrono>

namespace gcd2 {

class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace gcd2

#endif // GCD2_COMMON_TIMER_H
