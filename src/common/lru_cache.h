/**
 * @file
 * Generic sharded, capacity-bounded LRU cache -- the shared primitive of
 * the managed cache tier (DESIGN.md section 14).
 *
 * Before this layer existed the process-wide caches (select::CostCache,
 * vliw::PackCache, dsp::DecodeCache) each hand-rolled their own table:
 * two grew without bound and one evicted by clearing itself wholesale at
 * an entry budget, so a long-lived compile service would either leak or
 * periodically throw away its entire working set. ShardedLru replaces
 * all three bodies with one implementation:
 *
 *  - Sharded: the key hash picks a shard; each shard is an independent
 *    (mutex, unordered_map, intrusive recency list) triple, so concurrent
 *    lookups from the compile worker pool scale without a global lock.
 *  - Bounded: each shard holds at most ceil(capacity / shards) entries
 *    and evicts its least-recently-used entry on overflow, so the whole
 *    cache never exceeds capacity() entries -- asserted by the cache
 *    tests and checked at the end of the pack/sim throughput benches.
 *  - Counted: hits, misses, and per-entry evictions are relaxed atomics
 *    surfaced through Stats; the pipeline report and the compile
 *    service's ServiceReport both read them.
 *
 * lookupOrCompute() runs the miss computation *outside* the shard lock.
 * Every cache in this system stores pure functions of the key, so two
 * threads racing on one key may both compute, with bit-identical results
 * -- whichever inserts first wins and is what later lookups observe.
 * Values are returned by value (shared_ptr or small structs), never by
 * reference into the map, so eviction can never invalidate a caller.
 */
#ifndef GCD2_COMMON_LRU_CACHE_H
#define GCD2_COMMON_LRU_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gcd2::common {

/** Hit/miss/evict counters of one cache (monotonic since clear()). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0; ///< entries displaced by the capacity bound

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLru
{
  public:
    /**
     * @param capacity total entry bound (floored at one per shard)
     * @param shardCount concurrency width; rounded up so every shard
     *        holds an equal share of the capacity
     */
    explicit ShardedLru(size_t capacity = 4096, size_t shardCount = 8)
        : shards_(shardCount == 0 ? 1 : shardCount)
    {
        const size_t count = shards_.size();
        perShard_ = (capacity + count - 1) / count;
        if (perShard_ == 0)
            perShard_ = 1;
    }

    ShardedLru(const ShardedLru &) = delete;
    ShardedLru &operator=(const ShardedLru &) = delete;

    /** Enforced total entry bound (>= the requested capacity). */
    size_t capacity() const { return perShard_ * shards_.size(); }

    /** Cached value for @p key, promoting it to most-recently-used. */
    std::optional<Value>
    lookup(const Key &key)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it == shard.index.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->second;
    }

    /**
     * Insert (or refresh) @p key, evicting the shard's least-recently-
     * used entry if it is full. Returns the value now cached under the
     * key: when another thread inserted first, that earlier value wins
     * and is returned instead of @p value (first-insert-wins keeps
     * results independent of thread timing).
     */
    Value
    insert(const Key &key, Value value)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            shard.order.splice(shard.order.begin(), shard.order,
                               it->second);
            return it->second->second;
        }
        if (shard.order.size() >= perShard_) {
            shard.index.erase(shard.order.back().first);
            shard.order.pop_back();
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.order.emplace_front(key, std::move(value));
        shard.index.emplace(key, shard.order.begin());
        return shard.order.front().second;
    }

    /**
     * lookup() falling back to @p compute on a miss. The computation
     * runs outside the shard lock (concurrent misses on any keys, even
     * the same key, proceed in parallel); the first inserted value wins
     * and is what every caller receives.
     */
    Value
    lookupOrCompute(const Key &key,
                    const std::function<Value()> &compute)
    {
        if (std::optional<Value> hit = lookup(key))
            return *std::move(hit);
        return insert(key, compute());
    }

    CacheStats
    stats() const
    {
        CacheStats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.evictions = evictions_.load(std::memory_order_relaxed);
        return s;
    }

    /** Current entry count (exact; takes every shard lock briefly). */
    size_t
    size() const
    {
        size_t n = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            n += shard.order.size();
        }
        return n;
    }

    /** Drop every entry and reset the counters. */
    void
    clear()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.index.clear();
            shard.order.clear();
        }
        hits_.store(0, std::memory_order_relaxed);
        misses_.store(0, std::memory_order_relaxed);
        evictions_.store(0, std::memory_order_relaxed);
    }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        /** Front = most recently used. */
        std::list<std::pair<Key, Value>> order;
        std::unordered_map<Key,
                           typename std::list<std::pair<Key, Value>>::
                               iterator,
                           Hash>
            index;
    };

    Shard &
    shardFor(const Key &key)
    {
        return shards_[Hash{}(key) % shards_.size()];
    }

    std::vector<Shard> shards_;
    size_t perShard_ = 1;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
};

} // namespace gcd2::common

#endif // GCD2_COMMON_LRU_CACHE_H
