/**
 * @file
 * Structured compilation diagnostics.
 *
 * A Diag records one per-pass (and optionally per-node) event that the
 * pipeline chose to report instead of throwing: audit findings, fallback
 * decisions, truncated searches. Diagnostics flow through a thread-safe
 * DiagLog owned by the CompilationSession and ship inside the
 * PipelineReport, so a served compile always tells the caller *how* it
 * was produced -- which degradation rung ran, which invariants were
 * checked, and what (if anything) looked wrong.
 *
 * Severity semantics:
 *  - Info: normal bookkeeping worth surfacing (audit passed, budget used).
 *  - Warning: the compile succeeded but degraded (fallback rung served,
 *    branch-and-bound truncated to best-so-far).
 *  - Error: an auditor found a violated invariant; the artifact may be
 *    wrong and callers should treat the compile as suspect.
 */
#ifndef GCD2_COMMON_DIAG_H
#define GCD2_COMMON_DIAG_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gcd2::common {

enum class DiagSeverity : uint8_t
{
    Info,
    Warning,
    Error,
};

const char *diagSeverityName(DiagSeverity severity);

/**
 * Machine-readable classification of a diagnostic. Codes are stable
 * identifiers (golden tests and CI scripts match on them, not on message
 * text): `Sched*` codes come from the shared packed-schedule check table
 * (dsp/schedule_checks.h) and always mean a violated structural
 * invariant; `Lint*` codes come from the static dataflow analyzers
 * (analysis/lint.h). None marks diagnostics that predate the code
 * taxonomy (fallback decisions, audit summaries).
 */
enum class DiagCode : uint16_t
{
    None = 0,

    // Packed-schedule structural invariants (shared check table).
    SchedEmptyPacket,
    SchedOversizedPacket,
    SchedBadInstIndex,
    SchedSlotInfeasible,
    SchedPacketOrder,
    SchedHardDepInPacket,
    SchedInstCoverage,
    SchedLabelMapSize,
    SchedLabelPastEnd,
    SchedLabelBoundary,

    // Dataflow lint analyzers.
    LintUseBeforeDef,   ///< read with no prior write on any path (Error)
    LintMaybeUninit,    ///< read with no prior write on some path (Warning)
    LintDeadStore,      ///< register write never observed (Warning)
    LintDeadPacket,     ///< every write in the packet is dead (Warning)
    LintWriteConflict,  ///< two same-packet writes of one register
    LintSlotOvercommit, ///< packet oversubscribes mult/branch resources
    LintDelayClaim,     ///< packer delay claim contradicts dsp::deps
    LintNoaliasOverlap, ///< claimed-noalias pair provably overlaps
    LintNoaliasDupBase, ///< one register declared as two disjoint buffers
    LintRedundantLoad,  ///< load of a value provably already in a register
    LintOutOfBounds,    ///< access provably outside its declared buffer
};

/** Stable kebab-case name of a code ("sched-empty-packet", ...). */
const char *diagCodeName(DiagCode code);

/** One structured diagnostic event. */
struct Diag
{
    DiagSeverity severity = DiagSeverity::Info;
    /** Pipeline pass or subsystem that produced it ("selection", ...). */
    std::string pass;
    /** Graph node id / instruction index the event is about; -1 = whole
     *  artifact. */
    int64_t node = -1;
    std::string message;
    /** Machine-readable classification (None for uncoded events). */
    DiagCode code = DiagCode::None;

    /** "[error] selection (node 7) [lint-dead-store]: ..." rendering. */
    std::string toString() const;
};

/**
 * Thread-safe diagnostic sink. Appends may come from pool workers (deep
 * kernel audits run under parallelFor); reads take a snapshot. The log
 * deliberately never throws and never filters -- policy (abort on error,
 * ignore warnings) belongs to the caller inspecting the report.
 */
class DiagLog
{
  public:
    void add(Diag diag);
    void add(DiagSeverity severity, std::string pass, int64_t node,
             std::string message);

    /** Copy of everything recorded so far, in append order. */
    std::vector<Diag> snapshot() const;

    size_t count(DiagSeverity severity) const;
    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Diag> entries_;
};

} // namespace gcd2::common

#endif // GCD2_COMMON_DIAG_H
