/**
 * @file
 * Structured compilation diagnostics.
 *
 * A Diag records one per-pass (and optionally per-node) event that the
 * pipeline chose to report instead of throwing: audit findings, fallback
 * decisions, truncated searches. Diagnostics flow through a thread-safe
 * DiagLog owned by the CompilationSession and ship inside the
 * PipelineReport, so a served compile always tells the caller *how* it
 * was produced -- which degradation rung ran, which invariants were
 * checked, and what (if anything) looked wrong.
 *
 * Severity semantics:
 *  - Info: normal bookkeeping worth surfacing (audit passed, budget used).
 *  - Warning: the compile succeeded but degraded (fallback rung served,
 *    branch-and-bound truncated to best-so-far).
 *  - Error: an auditor found a violated invariant; the artifact may be
 *    wrong and callers should treat the compile as suspect.
 */
#ifndef GCD2_COMMON_DIAG_H
#define GCD2_COMMON_DIAG_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gcd2::common {

enum class DiagSeverity : uint8_t
{
    Info,
    Warning,
    Error,
};

const char *diagSeverityName(DiagSeverity severity);

/** One structured diagnostic event. */
struct Diag
{
    DiagSeverity severity = DiagSeverity::Info;
    /** Pipeline pass or subsystem that produced it ("selection", ...). */
    std::string pass;
    /** Graph node id / instruction index the event is about; -1 = whole
     *  artifact. */
    int64_t node = -1;
    std::string message;

    /** "[error] selection (node 7): ..." single-line rendering. */
    std::string toString() const;
};

/**
 * Thread-safe diagnostic sink. Appends may come from pool workers (deep
 * kernel audits run under parallelFor); reads take a snapshot. The log
 * deliberately never throws and never filters -- policy (abort on error,
 * ignore warnings) belongs to the caller inspecting the report.
 */
class DiagLog
{
  public:
    void add(Diag diag);
    void add(DiagSeverity severity, std::string pass, int64_t node,
             std::string message);

    /** Copy of everything recorded so far, in append order. */
    std::vector<Diag> snapshot() const;

    size_t count(DiagSeverity severity) const;
    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Diag> entries_;
};

} // namespace gcd2::common

#endif // GCD2_COMMON_DIAG_H
