#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/logging.h"

namespace gcd2 {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    GCD2_REQUIRE(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    GCD2_REQUIRE(row.size() == header_.size(),
                 "row has " << row.size() << " cells, header has "
                            << header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };

    auto printRule = [&]() {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
    };

    printRule();
    printRow(header_);
    printRule();
    for (const auto &row : rows_)
        printRow(row);
    printRule();
}

std::string
fmtDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtSpeedup(double factor, int decimals)
{
    return fmtDouble(factor, decimals) + "x";
}

double
geometricMean(const std::vector<double> &values)
{
    GCD2_REQUIRE(!values.empty(), "geometric mean of empty series");
    double logSum = 0.0;
    for (double v : values) {
        GCD2_REQUIRE(v > 0.0, "geometric mean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace gcd2
