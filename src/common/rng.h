/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic choice in the reproduction (synthetic weights, workload
 * inputs) flows through this RNG so that test and bench runs are exactly
 * repeatable across machines.
 */
#ifndef GCD2_COMMON_RNG_H
#define GCD2_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcd2 {

/**
 * A small, fast, seedable PRNG (xoshiro256**). Not cryptographic; used only
 * for generating synthetic tensors and jittering workloads.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** A vector of int8 values spanning the full quantized range. */
    std::vector<int8_t> int8Vector(size_t n);

    /** A vector of uint8 values. */
    std::vector<uint8_t> uint8Vector(size_t n);

  private:
    uint64_t state_[4];
};

} // namespace gcd2

#endif // GCD2_COMMON_RNG_H
