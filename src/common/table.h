/**
 * @file
 * ASCII table formatting for benchmark harness output.
 *
 * Every bench binary reproduces one table or figure from the paper; this
 * helper renders rows in an aligned, diff-friendly layout.
 */
#ifndef GCD2_COMMON_TABLE_H
#define GCD2_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace gcd2 {

/** An aligned ASCII table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with column alignment to the given stream. */
    void print(std::ostream &os) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimal places. */
std::string fmtDouble(double value, int decimals = 2);

/** Format a speedup factor like "2.8x". */
std::string fmtSpeedup(double factor, int decimals = 1);

/** Geometric mean of a series of positive values. */
double geometricMean(const std::vector<double> &values);

} // namespace gcd2

#endif // GCD2_COMMON_TABLE_H
