/**
 * @file
 * Small fixed-size worker pool for compile-time parallelism.
 *
 * The compiler's parallel regions (per-node plan costing, independent
 * GCD2 partition solves) are coarse-grained and deterministic: tasks
 * write to disjoint state and the pool only adds *scheduling* freedom,
 * never *result* freedom. A pool of size 1 runs every task inline on the
 * submitting thread, which is bit-identical to the historical serial
 * code path (and is what `CompileOptions::numThreads = 1` selects).
 *
 * Exceptions thrown by tasks are captured; the first one is rethrown
 * from wait() / parallelFor() on the submitting thread so GCD2_PANIC /
 * GCD2_FATAL diagnostics keep propagating as they do serially.
 */
#ifndef GCD2_COMMON_THREAD_POOL_H
#define GCD2_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcd2 {

class ThreadPool
{
  public:
    /**
     * @param numThreads worker count; <= 0 picks the hardware
     *        concurrency. 1 means no workers: tasks run inline.
     */
    explicit ThreadPool(int numThreads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Effective parallelism (>= 1). */
    int size() const { return size_; }

    /** Enqueue a task (runs inline immediately when size() == 1). */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished; rethrows the first
     * task exception, if any.
     */
    void wait();

    /**
     * Run body(0..n-1) across the pool and wait. Iterations are handed
     * out through an atomic counter, so any iteration may run on any
     * thread -- bodies must only touch per-iteration state.
     */
    void parallelFor(int64_t n, const std::function<void(int64_t)> &body);

    /** Hardware concurrency with a sane floor of 1. */
    static int hardwareThreads();

  private:
    void workerLoop();
    void recordError(std::exception_ptr error);
    void runTask(const std::function<void()> &task);

    int size_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    int64_t pending_ = 0; ///< queued + currently running tasks
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

} // namespace gcd2

#endif // GCD2_COMMON_THREAD_POOL_H
