#include "service/artifact_store.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "analysis/lint.h"
#include "common/thread_pool.h"
#include "vliw/audit.h"

namespace gcd2::service {

namespace {

using common::Diag;
using common::DiagSeverity;
using runtime::CompiledModel;

/** Artifact file layout version; bump on any payload format change. */
constexpr uint32_t kFormatVersion = 2;
constexpr char kMagic[8] = {'G', 'C', 'D', '2', 'A', 'R', 'T', '\1'};

/** Sanity bound on any serialized element count: a valid payload never
 *  claims more elements than it has bytes left, so anything larger is
 *  corruption (and would otherwise be a multi-GB allocation). */
constexpr uint64_t kMaxCount = uint64_t{1} << 32;

/** FNV-1a over 8-byte words (byte-serial FNV is too slow for multi-MB
 *  payloads on every load); the tail is padded with the length, so
 *  truncation within the last word still changes the digest. */
uint64_t
fnv64(const uint8_t *data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t word = 0;
        std::memcpy(&word, data + i, 8);
        h ^= word;
        h *= 0x100000001b3ULL;
    }
    uint64_t tail = n;
    for (int shift = 0; i < n; ++i, shift += 8)
        tail ^= static_cast<uint64_t>(data[i]) << (8 + shift);
    h ^= tail;
    h *= 0x100000001b3ULL;
    return h;
}

void
reject(std::vector<Diag> *diags, std::string message)
{
    if (diags == nullptr)
        return;
    Diag diag;
    diag.severity = DiagSeverity::Warning;
    diag.pass = "artifact-load";
    diag.message = std::move(message);
    diags->push_back(std::move(diag));
}

// Little-endian byte writer --------------------------------------------

class Writer
{
  public:
    std::vector<uint8_t> take() { return std::move(buf_); }

    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        uint8_t le[4];
        for (int i = 0; i < 4; ++i)
            le[i] = static_cast<uint8_t>(v >> (8 * i));
        buf_.insert(buf_.end(), le, le + 4);
    }

    void
    u64(uint64_t v)
    {
        uint8_t le[8];
        for (int i = 0; i < 8; ++i)
            le[i] = static_cast<uint8_t>(v >> (8 * i));
        buf_.insert(buf_.end(), le, le + 8);
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    void
    sizeVec(const std::vector<size_t> &values)
    {
        u64(values.size());
        for (size_t v : values)
            u64(v);
    }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked little-endian reader. Every read checks the remaining
 * byte count first; past the first failure the reader sticks at !ok()
 * and returns zeros, so parse code can read straight through and check
 * once per structure.
 */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &buf) : buf_(&buf) {}

    bool ok() const { return ok_; }
    bool atEnd() const { return ok_ && pos_ == buf_->size(); }
    size_t remaining() const { return buf_->size() - pos_; }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return (*buf_)[pos_++];
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        const uint8_t *p = buf_->data() + pos_;
        pos_ += 4;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[i]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        const uint8_t *p = buf_->data() + pos_;
        pos_ += 8;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[i]) << (8 * i);
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }

    /**
     * Element count for a sequence of @p elemBytes-sized elements. Fails
     * the reader when the count could not possibly fit in the remaining
     * bytes, so corrupt counts never drive allocations.
     */
    size_t
    count(size_t elemBytes)
    {
        const uint64_t n = u64();
        if (!ok_)
            return 0;
        if (n > kMaxCount || n * elemBytes > remaining()) {
            ok_ = false;
            return 0;
        }
        return static_cast<size_t>(n);
    }

    std::vector<size_t>
    sizeVec()
    {
        std::vector<size_t> out(count(8));
        for (size_t &v : out)
            v = static_cast<size_t>(u64());
        return out;
    }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || remaining() < n)
            ok_ = false;
        return ok_;
    }

    const std::vector<uint8_t> *buf_;
    size_t pos_ = 0;
    bool ok_ = true;
};

// CompiledModel payload ------------------------------------------------

void
writeOperand(Writer &w, const dsp::Operand &op)
{
    w.u8(static_cast<uint8_t>(op.cls));
    w.u8(static_cast<uint8_t>(op.idx));
}

dsp::Operand
readOperand(Reader &r)
{
    dsp::Operand op;
    const uint8_t cls = r.u8();
    op.cls = cls <= static_cast<uint8_t>(dsp::RegClass::Vector)
                 ? static_cast<dsp::RegClass>(cls)
                 : dsp::RegClass::None;
    op.idx = static_cast<int8_t>(r.u8());
    return op;
}

void
writeProgram(Writer &w, const dsp::PackedProgram &packed)
{
    const dsp::Program &prog = packed.program;
    w.u64(prog.code.size());
    for (const dsp::Instruction &inst : prog.code) {
        w.u8(static_cast<uint8_t>(inst.op));
        writeOperand(w, inst.dst[0]);
        writeOperand(w, inst.src[0]);
        writeOperand(w, inst.src[1]);
        w.i64(inst.imm);
    }
    w.sizeVec(prog.labels);
    w.u64(prog.noaliasRegs.size());
    for (int8_t reg : prog.noaliasRegs)
        w.u8(static_cast<uint8_t>(reg));
    // Extents ride behind the regs they describe (format v2); a
    // well-formed program has them parallel, but serialize the actual
    // vector so hand-built programs round-trip exactly.
    w.u64(prog.noaliasExtents.size());
    for (int64_t extent : prog.noaliasExtents)
        w.i64(extent);

    w.u64(packed.packets.size());
    for (const dsp::Packet &packet : packed.packets)
        w.sizeVec(packet.insts);
    w.sizeVec(packed.labelPacket);
}

std::shared_ptr<const dsp::PackedProgram>
readProgram(Reader &r)
{
    auto packed = std::make_shared<dsp::PackedProgram>();
    dsp::Program &prog = packed->program;

    prog.code.resize(r.count(15)); // op + 3 operands + imm
    for (dsp::Instruction &inst : prog.code) {
        const uint8_t op = r.u8();
        if (op >= static_cast<uint8_t>(dsp::Opcode::kNumOpcodes)) {
            // An out-of-range opcode would make every later info() table
            // lookup undefined; treat it as a parse failure.
            return nullptr;
        }
        inst.op = static_cast<dsp::Opcode>(op);
        inst.dst[0] = readOperand(r);
        inst.src[0] = readOperand(r);
        inst.src[1] = readOperand(r);
        inst.imm = r.i64();
    }
    prog.labels = r.sizeVec();
    prog.noaliasRegs.resize(r.count(1));
    for (int8_t &reg : prog.noaliasRegs)
        reg = static_cast<int8_t>(r.u8());
    prog.noaliasExtents.resize(r.count(8));
    for (int64_t &extent : prog.noaliasExtents)
        extent = r.i64();

    packed->packets.resize(r.count(8));
    for (dsp::Packet &packet : packed->packets)
        packet.insts = r.sizeVec();
    packed->labelPacket = r.sizeVec();
    return r.ok() ? packed : nullptr;
}

void
writeStats(Writer &w, const select::NodeExecStats &s)
{
    w.u64(s.cycles);
    w.u64(s.instructions);
    w.u64(s.packets);
    w.u64(s.bytesLoaded);
    w.u64(s.bytesStored);
}

select::NodeExecStats
readStats(Reader &r)
{
    select::NodeExecStats s;
    s.cycles = r.u64();
    s.instructions = r.u64();
    s.packets = r.u64();
    s.bytesLoaded = r.u64();
    s.bytesStored = r.u64();
    return s;
}

void
writeSelection(Writer &w, const select::Selection &sel)
{
    w.u64(sel.planIndex.size());
    for (int p : sel.planIndex)
        w.i64(p);
    w.u64(sel.totalCost);
}

select::Selection
readSelection(Reader &r)
{
    select::Selection sel;
    sel.planIndex.resize(r.count(8));
    for (int &p : sel.planIndex)
        p = static_cast<int>(r.i64());
    sel.totalCost = r.u64();
    return sel;
}

} // namespace

std::vector<uint8_t>
serializeModel(const CompiledModel &model)
{
    Writer w;

    writeSelection(w, model.selection);
    writeSelection(w, model.selector.selection);
    // selector.seconds is deliberately NOT serialized: wall-clock search
    // time is telemetry of the compiling process, not model content, and
    // keeping it out makes serializeModel() a bit-stable function of the
    // compile *result* -- the property the coalescing and warm-start
    // tests compare on.
    w.u64(model.selector.evaluations);
    w.u8(model.selector.truncated ? 1 : 0);

    writeStats(w, model.totals);
    writeStats(w, model.transformOnly);
    w.i64(model.liveOperators);
    w.i64(model.totalMacs);
    w.i64(model.demandBytes);

    w.u64(model.nodeCycles.size());
    for (uint64_t c : model.nodeCycles)
        w.u64(c);

    // Provenance of the served selection (which ladder rung compiled it).
    w.u64(model.report.servedSelection.size());
    for (char c : model.report.servedSelection)
        w.u8(static_cast<uint8_t>(c));
    w.i64(model.report.selectionRung);

    // Distinct served programs once; schedules reference them by index
    // (the on-disk mirror of the PackCache sharing in memory).
    std::vector<const dsp::PackedProgram *> programs;
    std::vector<std::pair<graph::NodeId, uint64_t>> refs;
    for (const CompiledModel::ServedSchedule &sched : model.schedules) {
        size_t index = programs.size();
        for (size_t i = 0; i < programs.size(); ++i)
            if (programs[i] == sched.program.get()) {
                index = i;
                break;
            }
        if (index == programs.size())
            programs.push_back(sched.program.get());
        refs.emplace_back(sched.node, index);
    }
    w.u64(programs.size());
    for (const dsp::PackedProgram *prog : programs)
        writeProgram(w, *prog);
    w.u64(refs.size());
    for (const auto &[node, index] : refs) {
        w.u64(static_cast<uint64_t>(node));
        w.u64(index);
    }

    return w.take();
}

std::shared_ptr<CompiledModel>
deserializeModel(const std::vector<uint8_t> &payload,
                 std::vector<Diag> *diags)
{
    Reader r(payload);
    auto model = std::make_shared<CompiledModel>();

    model->selection = readSelection(r);
    model->selector.selection = readSelection(r);
    model->selector.seconds = 0.0; // not serialized (see serializeModel)
    model->selector.evaluations = r.u64();
    model->selector.truncated = r.u8() != 0;

    model->totals = readStats(r);
    model->transformOnly = readStats(r);
    model->liveOperators = r.i64();
    model->totalMacs = r.i64();
    model->demandBytes = r.i64();

    model->nodeCycles.resize(r.count(8));
    for (uint64_t &c : model->nodeCycles)
        c = r.u64();

    std::string servedSelection(r.count(1), '\0');
    for (char &c : servedSelection)
        c = static_cast<char>(r.u8());
    model->report.servedSelection = std::move(servedSelection);
    model->report.selectionRung = static_cast<int>(r.i64());

    std::vector<std::shared_ptr<const dsp::PackedProgram>> programs(
        r.count(1));
    for (auto &prog : programs) {
        prog = readProgram(r);
        if (prog == nullptr) {
            reject(diags, "artifact payload: malformed packed program");
            return nullptr;
        }
    }
    const size_t refCount = r.count(16);
    model->schedules.reserve(refCount);
    for (size_t i = 0; i < refCount; ++i) {
        CompiledModel::ServedSchedule sched;
        sched.node = static_cast<graph::NodeId>(r.u64());
        const uint64_t index = r.u64();
        if (r.ok() && index >= programs.size()) {
            reject(diags, "artifact payload: schedule references "
                          "program " +
                              std::to_string(index) + " of " +
                              std::to_string(programs.size()));
            return nullptr;
        }
        if (r.ok())
            sched.program = programs[static_cast<size_t>(index)];
        model->schedules.push_back(std::move(sched));
    }

    if (!r.ok() || !r.atEnd()) {
        reject(diags, "artifact payload: truncated or trailing bytes");
        return nullptr;
    }
    return model;
}

bool
writeArtifactFile(const std::string &path, const ModelKey &key,
                  const std::vector<uint8_t> &payload)
{
    Writer header;
    for (char c : kMagic)
        header.u8(static_cast<uint8_t>(c));
    header.u32(kFormatVersion);
    header.u64(key.h0);
    header.u64(key.h1);
    header.u64(key.nodes);
    header.u64(payload.size());
    header.u64(fnv64(payload.data(), payload.size()));
    const std::vector<uint8_t> head = header.take();

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(head.data()),
              static_cast<std::streamsize>(head.size()));
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    return static_cast<bool>(out);
}

ArtifactStore::ArtifactStore(std::string dir, uint64_t maxBytes)
    : dir_(std::move(dir)), maxBytes_(maxBytes)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // A failure surfaces as save/load misses, never as a throw: the
    // service degrades to cold compiles when the store is unusable.
}

std::string
ArtifactStore::pathFor(const ModelKey &key) const
{
    return dir_ + "/" + toHex(key) + ".gcd2art";
}

bool
ArtifactStore::save(const ModelKey &key, const CompiledModel &model,
                    std::vector<Diag> *diags)
{
    const std::vector<uint8_t> payload = serializeModel(model);

    // Temp file + rename: concurrent writers of one key each write a
    // private temp file and the last rename wins atomically, so readers
    // never observe a half-written artifact.
    const std::string path = pathFor(key);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    if (!writeArtifactFile(tmp, key, payload)) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        reject(diags, "artifact store: failed to write " + tmp);
        return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        reject(diags, "artifact store: failed to rename into " + path);
        return false;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.saves;
        stats_.saveBytes += payload.size();
    }
    if (maxBytes_ > 0)
        gc(diags);
    return true;
}

size_t
ArtifactStore::gc(std::vector<Diag> *diags)
{
    if (maxBytes_ == 0)
        return 0;

    namespace fs = std::filesystem;
    struct Entry
    {
        fs::file_time_type mtime;
        uint64_t bytes = 0;
        fs::path path;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() != ".gcd2art")
            continue;
        Entry entry;
        entry.path = it->path();
        entry.bytes = it->file_size(ec);
        if (ec) // disappeared mid-scan (concurrent gc or operator)
            continue;
        entry.mtime = it->last_write_time(ec);
        if (ec)
            continue;
        total += entry.bytes;
        entries.push_back(std::move(entry));
    }
    if (total <= maxBytes_)
        return 0;

    // Oldest mtime first. load() touches the file on every verified
    // hit, so mtime orders artifacts by last use, not creation.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    size_t evicted = 0;
    uint64_t evictedBytes = 0;
    for (const Entry &entry : entries) {
        if (total <= maxBytes_)
            break;
        if (!fs::remove(entry.path, ec) || ec) {
            reject(diags, "artifact gc: failed to remove " +
                              entry.path.string());
            continue;
        }
        total -= entry.bytes;
        evictedBytes += entry.bytes;
        ++evicted;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evictions += evicted;
    stats_.evictedBytes += evictedBytes;
    return evicted;
}

std::shared_ptr<CompiledModel>
ArtifactStore::load(const ModelKey &key, const graph::Graph &graph,
                    std::vector<Diag> *diags, ThreadPool *pool)
{
    const std::string path = pathFor(key);

    std::vector<uint8_t> bytes;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.loadMisses;
            return nullptr;
        }
        const std::streamsize size = in.tellg();
        in.seekg(0);
        bytes.resize(static_cast<size_t>(size));
        in.read(reinterpret_cast<char *>(bytes.data()), size);
        if (!in) {
            reject(diags, "artifact store: short read of " + path);
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.loadRejects;
            return nullptr;
        }
    }

    const auto rejected = [&](std::string message) {
        reject(diags, std::move(message));
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.loadRejects;
        return nullptr;
    };

    // Gate 1: header.
    Reader r(bytes);
    for (char expect : kMagic)
        if (static_cast<char>(r.u8()) != expect || !r.ok())
            return rejected("artifact " + path + ": bad magic");
    if (const uint32_t version = r.u32(); version != kFormatVersion)
        return rejected("artifact " + path + ": format version " +
                        std::to_string(version) + ", expected " +
                        std::to_string(kFormatVersion));
    ModelKey echoed;
    echoed.h0 = r.u64();
    echoed.h1 = r.u64();
    echoed.nodes = r.u64();
    if (!r.ok() || !(echoed == key))
        return rejected("artifact " + path + ": key echo mismatch");

    // Gate 2: checksum over the exact payload byte range.
    const uint64_t payloadSize = r.u64();
    const uint64_t checksum = r.u64();
    if (!r.ok() || payloadSize != r.remaining())
        return rejected("artifact " + path + ": truncated payload");
    std::vector<uint8_t> payload(bytes.end() -
                                     static_cast<ptrdiff_t>(payloadSize),
                                 bytes.end());
    if (fnv64(payload.data(), payload.size()) != checksum)
        return rejected("artifact " + path + ": checksum mismatch");

    // Gate 3: bounds-checked parse.
    std::shared_ptr<CompiledModel> model =
        deserializeModel(payload, diags);
    if (model == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.loadRejects;
        return nullptr;
    }

    // Gate 4: shape against the request graph.
    if (model->selection.planIndex.size() != graph.size() ||
        model->nodeCycles.size() != graph.size())
        return rejected("artifact " + path +
                        ": model sized for a different graph");
    for (const CompiledModel::ServedSchedule &sched : model->schedules)
        if (static_cast<size_t>(sched.node) >= graph.size())
            return rejected("artifact " + path +
                            ": schedule for out-of-range node " +
                            std::to_string(sched.node));

    // Gate 5: re-audit + re-lint every distinct served program -- the
    // same structural + hazard gate a fresh Cheap-audit compile passes.
    // An artifact that fails here parsed fine but would serve an illegal
    // schedule (the corruption the checksum cannot catch: a valid file
    // containing wrong bits).
    analysis::LintOptions lintOpts;
    lintOpts.useBeforeDef = false;
    lintOpts.deadStore = false;
    lintOpts.hazards = true;
    lintOpts.noalias = false;
    lintOpts.redundantLoad = false;
    lintOpts.bounds = false;

    std::vector<const dsp::PackedProgram *> programs;
    std::set<const dsp::PackedProgram *> seen;
    for (const CompiledModel::ServedSchedule &sched : model->schedules) {
        if (sched.program == nullptr)
            return rejected("artifact " + path + ": null schedule");
        if (seen.insert(sched.program.get()).second)
            programs.push_back(sched.program.get());
    }

    // Each distinct program's audit is an independent pure check;
    // per-program findings land in disjoint slots, so running them
    // across the pool is bit-identical to the serial loop.
    std::vector<std::vector<Diag>> findings(programs.size());
    std::vector<size_t> errors(programs.size(), 0);
    const auto auditOne = [&](int64_t i) {
        const auto index = static_cast<size_t>(i);
        const dsp::PackedProgram &program = *programs[index];
        findings[index] = vliw::auditSchedule(program);
        const analysis::LintResult linted =
            analysis::lintPackedProgram(program, lintOpts);
        errors[index] = findings[index].size() + linted.counts.errors;
        findings[index].insert(findings[index].end(),
                               linted.diags.begin(), linted.diags.end());
    };
    if (pool != nullptr)
        pool->parallelFor(static_cast<int64_t>(programs.size()),
                          auditOne);
    else
        for (size_t i = 0; i < programs.size(); ++i)
            auditOne(static_cast<int64_t>(i));

    const uint64_t audited = programs.size();
    size_t failures = 0;
    for (size_t i = 0; i < programs.size(); ++i) {
        failures += errors[i];
        if (diags != nullptr)
            diags->insert(diags->end(),
                          std::make_move_iterator(findings[i].begin()),
                          std::make_move_iterator(findings[i].end()));
    }
    if (failures > 0)
        return rejected("artifact " + path + ": re-audit found " +
                        std::to_string(failures) +
                        " violations; refusing to serve");

    // The served report describes *this* load, not the original compile
    // (whose pass timings died with its process); provenance fields were
    // restored from the payload above.
    runtime::PassReport pass;
    pass.name = "artifact-load";
    pass.counters.emplace_back("payload-bytes", payload.size());
    pass.counters.emplace_back("programs-audited", audited);
    model->report.passes.push_back(std::move(pass));

    // Touch the file so gc()'s oldest-mtime-first eviction treats this
    // artifact as recently used (best-effort; a failure just ages it).
    std::error_code touchEc;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), touchEc);

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.loadHits;
    return model;
}

ArtifactStore::Stats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace gcd2::service
