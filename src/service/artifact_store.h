/**
 * @file
 * Content-addressed on-disk store of compiled models, so warm starts
 * survive process restarts (DESIGN.md section 14).
 *
 * Every artifact is one file, `<dir>/<32-hex-key>.gcd2art`:
 *
 *   magic "GCD2ART\1" | format version u32 | ModelKey (h0,h1,nodes)
 *   | payload byte count u64 | FNV-1a-64 payload checksum | payload
 *
 * The payload is the serialized CompiledModel: selection + selector
 * telemetry, aggregate statistics, per-node cycles, the served-selection
 * provenance, and the served schedules (distinct PackedPrograms stored
 * once, schedules referencing them by index -- mirroring how the
 * PackCache shares programs across nodes in memory).
 *
 * Integrity gate on load, in order:
 *  1. header: magic/version match, key echo matches the request key;
 *  2. checksum: the FNV-1a digest of the payload bytes matches;
 *  3. bounds-checked parse (a truncated or overrunning payload rejects,
 *     never crashes);
 *  4. shape: planIndex / nodeCycles sized to the request graph and
 *     schedule node ids in range;
 *  5. re-audit + re-lint: every distinct served program is run back
 *     through vliw::auditSchedule (the structural invariants) and the
 *     per-packet hazard lint -- the same Cheap-audit gate a fresh
 *     compile passes -- before the artifact may be served.
 *
 * Any failed stage rejects the artifact (structured Diag explaining
 * why); the compile service then falls back to a clean compile and
 * overwrites the bad file. Writes go to a temp file renamed into place,
 * so a crashed writer never leaves a half-artifact under the key.
 *
 * Serialization helpers are exposed so tests can craft artifacts that
 * pass the checksum but fail the re-audit (proving the audit gate is
 * load-bearing, not just the checksum).
 */
#ifndef GCD2_SERVICE_ARTIFACT_STORE_H
#define GCD2_SERVICE_ARTIFACT_STORE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/diag.h"
#include "runtime/compiler.h"
#include "service/fingerprint.h"

namespace gcd2 {
class ThreadPool;
}

namespace gcd2::service {

/** Serialize the servable parts of a compiled model (see file doc). */
std::vector<uint8_t> serializeModel(const runtime::CompiledModel &model);

/**
 * Parse a payload produced by serializeModel. Returns nullptr (with a
 * Diag appended) on any malformed/truncated input; never throws on bad
 * bytes and never reads out of bounds.
 */
std::shared_ptr<runtime::CompiledModel>
deserializeModel(const std::vector<uint8_t> &payload,
                 std::vector<common::Diag> *diags);

/**
 * Write a complete artifact file (header + checksum + payload) for
 * @p key at @p path. Exposed for tests; production code uses
 * ArtifactStore::save. Returns false on I/O failure.
 */
bool writeArtifactFile(const std::string &path, const ModelKey &key,
                       const std::vector<uint8_t> &payload);

class ArtifactStore
{
  public:
    /**
     * @param dir artifact directory (created if absent).
     * @param maxBytes size bound on the directory's artifact bytes;
     *        0 = unbounded. When bounded, every save triggers gc(),
     *        which evicts least-recently-used artifacts (by file mtime;
     *        load hits touch the file, so mtime is a recency clock)
     *        until the store fits. Eviction only ever deletes whole
     *        verified-format files; an evicted key simply falls back to
     *        a clean compile next time.
     */
    explicit ArtifactStore(std::string dir, uint64_t maxBytes = 0);

    const std::string &dir() const { return dir_; }
    uint64_t maxBytes() const { return maxBytes_; }

    /**
     * Enforce the size bound now: scan the directory's `*.gcd2art`
     * files and delete oldest-mtime-first until their total size is
     * within maxBytes. Returns the number of artifacts evicted (0 when
     * unbounded or already within bound). Safe to run concurrently with
     * save/load: a file that disappears mid-scan is skipped, a reader
     * of an evicted key sees an ordinary miss.
     */
    size_t gc(std::vector<common::Diag> *diags = nullptr);

    /** File path an artifact for @p key lives at. */
    std::string pathFor(const ModelKey &key) const;

    /**
     * Persist @p model under @p key (temp file + rename). Returns false
     * and appends a Diag on I/O failure; never throws.
     */
    bool save(const ModelKey &key, const runtime::CompiledModel &model,
              std::vector<common::Diag> *diags = nullptr);

    /**
     * Load, verify, and return the artifact for @p key, or nullptr when
     * absent or rejected by the integrity gate (stages in the file doc;
     * reasons appended to @p diags). @p graph is the request graph the
     * artifact must shape-match. The loaded model's report carries one
     * "artifact-load" pass with verification counters.
     *
     * @p pool, when non-null and wider than one worker, runs the
     * re-audit + re-lint of distinct programs concurrently (they are
     * independent pure checks); findings and the accept/reject verdict
     * are bit-identical to the serial path. The compile service passes
     * its verify pool here so a warm start is not serialized behind
     * auditing each served kernel one by one.
     */
    std::shared_ptr<runtime::CompiledModel>
    load(const ModelKey &key, const graph::Graph &graph,
         std::vector<common::Diag> *diags = nullptr,
         ThreadPool *pool = nullptr);

    struct Stats
    {
        uint64_t saves = 0;
        uint64_t saveBytes = 0;
        uint64_t loadHits = 0;    ///< artifacts served after verification
        uint64_t loadMisses = 0;  ///< no artifact on disk for the key
        uint64_t loadRejects = 0; ///< artifacts rejected by the gate
        uint64_t evictions = 0;   ///< artifacts deleted by gc()
        uint64_t evictedBytes = 0;
    };

    Stats stats() const;

  private:
    std::string dir_;
    uint64_t maxBytes_ = 0;    ///< 0 = unbounded (gc() never evicts)
    mutable std::mutex mutex_; ///< guards stats_ only (I/O is lock-free)
    Stats stats_;
};

} // namespace gcd2::service

#endif // GCD2_SERVICE_ARTIFACT_STORE_H
