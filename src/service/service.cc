#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/timer.h"

namespace gcd2::service {

namespace {

using common::Diag;
using common::DiagSeverity;
using runtime::CompiledModel;

/** EWMA weight of the newest compile's timing sample. */
constexpr double kTimingAlpha = 0.3;

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t index = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[index];
}

} // namespace

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)),
      costCache_(options_.compile.costCache
                     ? options_.compile.costCache
                     : std::make_shared<select::CostCache>()),
      modelCache_(options_.modelCacheEntries, /*shardCount=*/8),
      pool_(options_.numWorkers)
{
    if (!options_.artifactDir.empty()) {
        artifacts_ = std::make_unique<ArtifactStore>(
            options_.artifactDir, options_.artifactMaxBytes);
        verifyPool_ = std::make_unique<ThreadPool>(
            std::min(8, ThreadPool::hardwareThreads()));
    }
}

CompileService::~CompileService()
{
    // Every in-flight promise is owned by a queued task; finish them so
    // no waiter is left hanging on a destroyed service.
    pool_.wait();
}

Ticket
CompileService::submit(const graph::Graph &graph,
                       const std::string &tenant,
                       const runtime::CompileOptions *overrides)
{
    runtime::CompileOptions compileOptions =
        overrides != nullptr ? *overrides : options_.compile;
    compileOptions.costCache = costCache_;
    compileOptions.numThreads = options_.compileThreads;

    Ticket ticket;
    ticket.key = fingerprintRequest(graph, compileOptions);

    std::shared_ptr<Inflight> job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TenantCounters &counters = tenants_[tenant];
        ++counters.submits;
        ++totalSubmits_;

        // Tier 1: the in-memory compiled-model LRU.
        if (auto hit = modelCache_.lookup(ticket.key)) {
            ++counters.modelCacheHits;
            std::promise<std::shared_ptr<const CompiledModel>> ready;
            ready.set_value(*std::move(hit));
            ticket.accepted = true;
            ticket.path = Ticket::Path::ModelCacheHit;
            ticket.result = ready.get_future().share();
            return ticket;
        }

        // Tier 2: coalesce onto an identical in-flight compile.
        if (const auto it = inflight_.find(ticket.key);
            it != inflight_.end()) {
            ++counters.coalescedHits;
            ticket.accepted = true;
            ticket.path = Ticket::Path::Coalesced;
            ticket.result = it->second->future;
            return ticket;
        }

        // Admission control: only requests that would *start* a compile
        // count against the depth bound -- coalesced followers and cache
        // hits are free.
        if (inflight_.size() >= options_.maxQueueDepth) {
            ++counters.rejected;
            ticket.rejection.severity = DiagSeverity::Warning;
            ticket.rejection.pass = "service";
            ticket.rejection.message =
                "admission control: " +
                std::to_string(inflight_.size()) +
                " compiles in flight (max " +
                std::to_string(options_.maxQueueDepth) +
                "); resubmit later";
            return ticket;
        }

        job = std::make_shared<Inflight>();
        job->future = job->promise.get_future().share();
        inflight_.emplace(ticket.key, job);
    }

    ticket.accepted = true;
    ticket.path = Ticket::Path::Scheduled;
    ticket.result = job->future;

    // The task owns copies of everything it needs; the caller's graph
    // reference is dead the moment submit() returns.
    pool_.submit([this, key = ticket.key, graph, compileOptions,
                  tenant]() mutable {
        serve(key, std::move(graph), std::move(compileOptions), tenant);
    });
    return ticket;
}

void
CompileService::serve(ModelKey key, graph::Graph graph,
                      runtime::CompileOptions options, std::string tenant)
{
    std::shared_ptr<Inflight> job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job = inflight_.at(key);
    }

    std::shared_ptr<const CompiledModel> model;
    std::exception_ptr failure;
    try {
        // Warm start: a verified on-disk artifact skips the compile.
        std::vector<Diag> loadDiags;
        bool artifactHit = false;
        if (artifacts_ != nullptr) {
            if (auto loaded = artifacts_->load(key, graph, &loadDiags,
                                               verifyPool_.get())) {
                model = std::move(loaded);
                artifactHit = true;
            }
        }

        if (!artifactHit) {
            // Adaptive budget: only when the service has a wall-clock
            // target and the caller left the budget open.
            if (options.maxSelectorEvaluations == 0)
                options.maxSelectorEvaluations = derivedBudget();

            const Timer timer;
            CompiledModel compiled = runtime::compile(graph, options);
            const double wallSeconds = timer.seconds();
            observeCompile(compiled, wallSeconds);

            // An artifact the integrity gate rejected is explained in
            // the fresh compile's diagnostics, then overwritten below.
            for (Diag &diag : loadDiags)
                compiled.report.diagnostics.push_back(std::move(diag));

            if (artifacts_ != nullptr)
                artifacts_->save(key, compiled);

            model = std::make_shared<const CompiledModel>(
                std::move(compiled));
        }

        modelCache_.insert(key, model);

        std::lock_guard<std::mutex> lock(mutex_);
        TenantCounters &counters = tenants_[tenant];
        if (artifactHit) {
            ++counters.artifactHits;
        } else {
            ++counters.compiles;
            ++totalCompiles_;
            counters.compileMs.push_back(
                model->report.totalSeconds * 1e3);
        }
    } catch (...) {
        failure = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(key);
    }
    // Fulfill after the key is retired: a waiter that resubmits on
    // failure must start a fresh compile, not coalesce onto this one.
    if (failure != nullptr)
        job->promise.set_exception(failure);
    else
        job->promise.set_value(std::move(model));
}

void
CompileService::observeCompile(const CompiledModel &model,
                               double wallSeconds)
{
    const double selectionSeconds =
        std::max(model.selector.seconds, 1e-9);
    const double overhead =
        std::max(wallSeconds - selectionSeconds, 0.0);
    const double rate =
        static_cast<double>(model.selector.evaluations) /
        selectionSeconds;
    if (rate <= 0.0)
        return;

    std::lock_guard<std::mutex> lock(mutex_);
    if (!haveTimingSamples_) {
        evalsPerSecond_ = rate;
        overheadSeconds_ = overhead;
        haveTimingSamples_ = true;
        return;
    }
    evalsPerSecond_ += kTimingAlpha * (rate - evalsPerSecond_);
    overheadSeconds_ += kTimingAlpha * (overhead - overheadSeconds_);
}

uint64_t
CompileService::derivedBudget() const
{
    if (options_.targetCompileMs <= 0.0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!haveTimingSamples_)
        return 0;
    const double searchSeconds = std::max(
        options_.targetCompileMs / 1e3 - overheadSeconds_, 0.0);
    const double budget = evalsPerSecond_ * searchSeconds;
    if (budget >= 1e18) // effectively unbounded; keep it finite
        return uint64_t{1} << 60;
    return std::max(options_.minSelectorEvaluations,
                    static_cast<uint64_t>(budget));
}

void
CompileService::drain()
{
    pool_.wait();
}

ServiceReport
CompileService::report() const
{
    ServiceReport report;
    report.modelCache = modelCache_.stats();
    report.modelCacheSize = modelCache_.size();
    report.modelCacheCapacity = modelCache_.capacity();
    report.costCache = costCache_->stats();
    if (artifacts_ != nullptr)
        report.artifacts = artifacts_->stats();
    report.currentDerivedBudget = derivedBudget();

    std::lock_guard<std::mutex> lock(mutex_);
    report.totalSubmits = totalSubmits_;
    report.totalCompiles = totalCompiles_;
    report.inflight = inflight_.size();
    for (const auto &[tenant, counters] : tenants_) {
        TenantStats stats;
        stats.tenant = tenant;
        stats.submits = counters.submits;
        stats.rejected = counters.rejected;
        stats.modelCacheHits = counters.modelCacheHits;
        stats.coalescedHits = counters.coalescedHits;
        stats.compiles = counters.compiles;
        stats.artifactHits = counters.artifactHits;
        std::vector<double> sorted = counters.compileMs;
        std::sort(sorted.begin(), sorted.end());
        stats.compileMsP50 = percentile(sorted, 0.50);
        stats.compileMsP95 = percentile(sorted, 0.95);
        stats.compileMsMax = sorted.empty() ? 0.0 : sorted.back();
        report.tenants.push_back(std::move(stats));
    }
    return report;
}

std::string
ServiceReport::toString() const
{
    std::ostringstream out;
    out << "compile service: " << totalSubmits << " submits, "
        << totalCompiles << " compiles, " << inflight << " in flight\n";
    out << "  model cache: " << modelCacheSize << "/"
        << modelCacheCapacity << " entries, " << modelCache.hits
        << " hits / " << modelCache.misses << " misses / "
        << modelCache.evictions << " evictions\n";
    out << "  cost cache: " << costCache.hits << " hits / "
        << costCache.misses << " misses / " << costCache.evictions
        << " evictions\n";
    out << "  artifacts: " << artifacts.saves << " saved, "
        << artifacts.loadHits << " served, " << artifacts.loadRejects
        << " rejected, " << artifacts.loadMisses << " misses, "
        << artifacts.evictions << " evicted";
    if (artifacts.evictedBytes > 0)
        out << " (" << artifacts.evictedBytes << " bytes)";
    out << "\n";
    if (currentDerivedBudget > 0)
        out << "  derived selector budget: " << currentDerivedBudget
            << " evaluations\n";
    for (const TenantStats &t : tenants) {
        out << "  tenant '" << t.tenant << "': " << t.submits
            << " submits, " << t.compiles << " compiles, "
            << t.coalescedHits << " coalesced, " << t.modelCacheHits
            << " cache hits, " << t.artifactHits << " artifact hits, "
            << t.rejected << " rejected";
        if (t.compiles > 0)
            out << "; compile ms p50/p95/max " << t.compileMsP50 << "/"
                << t.compileMsP95 << "/" << t.compileMsMax;
        out << "\n";
    }
    return out.str();
}

} // namespace gcd2::service
