/**
 * @file
 * Compile service: a coalescing worker pool over runtime::compile with a
 * managed cache tier (DESIGN.md section 14).
 *
 * Request path, in order:
 *
 *  1. Fingerprint the (graph, options) request (service/fingerprint.h).
 *  2. Compiled-model LRU: an identical request already compiled this
 *     process is served immediately from memory.
 *  3. Coalescing: a request identical to one currently *in flight*
 *     attaches to that compile's future instead of compiling again --
 *     N concurrent identical submissions cost exactly one compile and
 *     observe the same CompiledModel object (bit-identity for free).
 *  4. Admission control: a request that would start a new compile while
 *     maxQueueDepth compiles are already in flight is rejected up front
 *     with a structured Diag (pass "service") -- predictable backpressure
 *     instead of an unbounded queue.
 *  5. A pool worker serves the compile: artifact-store warm start when
 *     the on-disk store has a verified artifact for the key (gated by
 *     re-audit + re-lint, see service/artifact_store.h), clean compile
 *     otherwise -- with the selector budget derived adaptively from the
 *     service's wall-clock target -- then writes the artifact back and
 *     populates the model LRU.
 *
 * Adaptive budget: when ServiceOptions::targetCompileMs > 0 and the
 * caller did not pin a budget, the service derives
 * CompileOptions::maxSelectorEvaluations from instrumented pass timings
 * of previous compiles (an EWMA of selector evaluations/second and of
 * the non-selection pipeline overhead), so a slow machine or a pricey
 * model class automatically tightens the search instead of blowing the
 * latency target. A tightened search that truncates degrades along the
 * selector's existing gcd2 -> chain-dp -> local fallback ladder and is
 * reported in the model's diagnostics, never refused.
 *
 * Every public method is thread-safe; submit() never blocks on compile
 * work (only on the admission bookkeeping mutex).
 */
#ifndef GCD2_SERVICE_SERVICE_H
#define GCD2_SERVICE_SERVICE_H

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/thread_pool.h"
#include "runtime/compiler.h"
#include "service/artifact_store.h"
#include "service/fingerprint.h"

namespace gcd2::service {

/** Service-wide configuration (per-request knobs ride in `compile`). */
struct ServiceOptions
{
    /** Base compile options every request starts from. The service owns
     *  costCache (a shared cross-compile cache is installed) and may
     *  derive maxSelectorEvaluations when the caller left it 0. */
    runtime::CompileOptions compile{};
    /** Pool workers serving compiles; <= 0 picks hardware concurrency. */
    int numWorkers = 0;
    /** Threads *inside* each compile. Workers give throughput across
     *  requests; per-compile parallelism is for near-idle services. */
    int compileThreads = 1;
    /** In-flight compile bound; requests beyond it are rejected. */
    size_t maxQueueDepth = 64;
    /** Compiled-model LRU capacity (whole models, so keep it small). */
    size_t modelCacheEntries = 32;
    /** Artifact directory; empty disables the on-disk store. */
    std::string artifactDir;
    /** Artifact-store size bound in bytes; 0 = unbounded. When set, the
     *  store garbage-collects after every save, evicting least-recently
     *  -used artifacts (see ArtifactStore::gc). */
    uint64_t artifactMaxBytes = 0;
    /** Wall-clock compile target driving the adaptive selector budget;
     *  0 disables derivation (unbudgeted unless the caller set one). */
    double targetCompileMs = 0.0;
    /** Floor under the derived budget: the search always gets at least
     *  this many evaluations, however far behind target we run. */
    uint64_t minSelectorEvaluations = 2000;
};

/** Outcome of one submit() call. */
struct Ticket
{
    /** False = rejected by admission control; `rejection` says why and
     *  `result` is invalid. */
    bool accepted = false;
    common::Diag rejection;
    ModelKey key;
    /** How submit() resolved the request (telemetry; the model future
     *  behaves identically in all accepted cases). */
    enum class Path : uint8_t
    {
        Rejected,
        ModelCacheHit, ///< served from the in-memory LRU, already ready
        Coalesced,     ///< attached to an identical in-flight compile
        Scheduled,     ///< this request started the compile
    } path = Path::Rejected;
    /** The compiled model (shared -- coalesced requests see the same
     *  object). get() rethrows the compile's FatalError, if any. */
    std::shared_future<std::shared_ptr<const runtime::CompiledModel>>
        result;
};

/** Per-tenant service counters. */
struct TenantStats
{
    std::string tenant;
    uint64_t submits = 0;
    uint64_t rejected = 0;
    uint64_t modelCacheHits = 0;
    uint64_t coalescedHits = 0;
    uint64_t compiles = 0;      ///< clean compiles run on behalf of tenant
    uint64_t artifactHits = 0;  ///< served from the verified disk store
    double compileMsP50 = 0.0;
    double compileMsP95 = 0.0;
    double compileMsMax = 0.0;
};

/** Snapshot of service state and the whole managed cache tier. */
struct ServiceReport
{
    std::vector<TenantStats> tenants; ///< sorted by tenant name
    uint64_t totalSubmits = 0;
    uint64_t totalCompiles = 0;
    uint64_t inflight = 0;
    common::CacheStats modelCache; ///< in-memory compiled-model LRU
    size_t modelCacheSize = 0;
    size_t modelCacheCapacity = 0;
    ArtifactStore::Stats artifacts{}; ///< zero when the store is off
    common::CacheStats costCache; ///< service-shared kernel-cost cache
    /** Selector budget the service would hand the next derivable
     *  request (0 = no samples yet or derivation disabled). */
    uint64_t currentDerivedBudget = 0;

    std::string toString() const;
};

class CompileService
{
  public:
    explicit CompileService(ServiceOptions options = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /**
     * Submit one compile request. Never blocks on compile work; the
     * returned ticket's future resolves when a worker (or a cache) has
     * the model. @p overrides, when non-null, replaces the service's
     * base CompileOptions for this request (the service still installs
     * its shared cost cache and derived budget on top).
     */
    Ticket submit(const graph::Graph &graph, const std::string &tenant,
                  const runtime::CompileOptions *overrides = nullptr);

    /** Block until every accepted request has resolved. */
    void drain();

    /** Point-in-time counters (callable while compiles run). */
    ServiceReport report() const;

    /** Budget the adaptive policy would assign right now (test hook;
     *  0 = disabled or no timing samples yet). */
    uint64_t derivedBudget() const;

    const ServiceOptions &options() const { return options_; }

  private:
    struct Inflight
    {
        std::promise<std::shared_ptr<const runtime::CompiledModel>>
            promise;
        std::shared_future<std::shared_ptr<const runtime::CompiledModel>>
            future;
    };

    struct TenantCounters
    {
        uint64_t submits = 0;
        uint64_t rejected = 0;
        uint64_t modelCacheHits = 0;
        uint64_t coalescedHits = 0;
        uint64_t compiles = 0;
        uint64_t artifactHits = 0;
        std::vector<double> compileMs;
    };

    void serve(ModelKey key, graph::Graph graph,
               runtime::CompileOptions options, std::string tenant);
    void observeCompile(const runtime::CompiledModel &model,
                        double wallSeconds);

    ServiceOptions options_;
    std::shared_ptr<select::CostCache> costCache_;
    /** Small pool the artifact loader's re-audit gate fans out on. A
     *  second pool (not pool_): serve() runs *on* a pool_ worker, and
     *  ThreadPool::parallelFor waits for all pending pool tasks, so
     *  nesting it on pool_ would deadlock on the serve task itself. */
    std::unique_ptr<ThreadPool> verifyPool_;
    common::ShardedLru<ModelKey,
                       std::shared_ptr<const runtime::CompiledModel>,
                       ModelKeyHash>
        modelCache_;
    std::unique_ptr<ArtifactStore> artifacts_; ///< null when disabled
    ThreadPool pool_;

    mutable std::mutex mutex_;
    std::unordered_map<ModelKey, std::shared_ptr<Inflight>, ModelKeyHash>
        inflight_;
    std::map<std::string, TenantCounters> tenants_;
    uint64_t totalSubmits_ = 0;
    uint64_t totalCompiles_ = 0;
    /** EWMA state behind the adaptive budget (guarded by mutex_). */
    double evalsPerSecond_ = 0.0;  ///< selector evaluations / second
    double overheadSeconds_ = 0.0; ///< non-selection pipeline seconds
    bool haveTimingSamples_ = false;
};

} // namespace gcd2::service

#endif // GCD2_SERVICE_SERVICE_H
