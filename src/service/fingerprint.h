/**
 * @file
 * Content fingerprint of one compile request: (graph, CompileOptions).
 *
 * The compile service keys everything on this fingerprint -- request
 * coalescing (concurrent identical submissions share one compile), the
 * in-memory compiled-model LRU, and the on-disk artifact store -- so
 * the key must cover exactly the inputs that determine the served
 * CompiledModel bits:
 *
 *  - every live-relevant node field (op, inputs, attrs including the
 *    fusion/epilogue state, inferred shape, dead flag), and
 *  - every semantic CompileOptions field: cost-model options (pack
 *    policy + exact tunable bit patterns, unroll strategy, LUT opt),
 *    selection mode/partition bound/uniform scheme, overhead and
 *    library-boundary modeling, the graph-pass toggles, and the
 *    *caller-requested* selector evaluation budget.
 *
 * Deliberately excluded: numThreads (bit-identical at any count, by the
 * determinism suite), audit mode (changes diagnostics, never the
 * artifact), the costCache pointer (a memo of pure functions), the test
 * fault hooks (null in production), and any budget the service itself
 * derives under load -- a coalesced group compiles once, so its members
 * agree by construction, and an artifact hit skips selection entirely.
 *
 * Same two-lane FNV-1a construction as dsp::DecodeKey/vliw::PackKey:
 * 128 bits of independent hash plus the node count, making accidental
 * collisions across a model zoo astronomically unlikely.
 */
#ifndef GCD2_SERVICE_FINGERPRINT_H
#define GCD2_SERVICE_FINGERPRINT_H

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "runtime/compiler.h"

namespace gcd2::service {

/** Content fingerprint of a (graph, options) compile request. */
struct ModelKey
{
    uint64_t h0 = 0;
    uint64_t h1 = 0;
    uint64_t nodes = 0;

    bool operator==(const ModelKey &other) const = default;
};

struct ModelKeyHash
{
    size_t
    operator()(const ModelKey &key) const noexcept
    {
        return static_cast<size_t>(key.h0 ^ (key.h1 * 0x9e3779b9u));
    }
};

/** Fingerprint covering everything that determines the compiled bits. */
ModelKey fingerprintRequest(const graph::Graph &graph,
                            const runtime::CompileOptions &options);

/** 32-hex-digit rendering (artifact file names, logs). */
std::string toHex(const ModelKey &key);

} // namespace gcd2::service

#endif // GCD2_SERVICE_FINGERPRINT_H
