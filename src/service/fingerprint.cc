#include "service/fingerprint.h"

#include <bit>
#include <type_traits>

namespace gcd2::service {

namespace {

/** FNV-1a, same lane construction as the decode and pack caches. */
class Fnv
{
  public:
    explicit Fnv(uint64_t seed) : h_(seed) {}

    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ULL;
        }
    }

    template <typename T>
    void
    value(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(v));
    }

    template <typename T>
    void
    sequence(const std::vector<T> &values)
    {
        value(static_cast<uint64_t>(values.size()));
        for (const T &v : values)
            value(v);
    }

    uint64_t digest() const { return h_; }

  private:
    uint64_t h_;
};

void
hashNode(const graph::Node &node, Fnv &fnv)
{
    fnv.value(static_cast<uint8_t>(node.op));
    fnv.value(node.dead);
    fnv.sequence(node.inputs);
    fnv.sequence(node.shape.dims());

    const graph::NodeAttrs &a = node.attrs;
    fnv.value(a.outC);
    fnv.value(a.kH);
    fnv.value(a.kW);
    fnv.value(a.strideH);
    fnv.value(a.strideW);
    fnv.value(a.padH);
    fnv.value(a.padW);
    fnv.value(a.transposeB);
    fnv.value(a.poolK);
    fnv.value(a.poolStride);
    fnv.value(a.clampLo);
    fnv.value(a.clampHi);
    fnv.value(a.axis);
    fnv.value(std::bit_cast<uint64_t>(a.exponent));
    fnv.sequence(a.targetShape);
    fnv.sequence(a.perm);
    fnv.value(a.fusedClamp);
    fnv.value(a.fusedLo);
    fnv.value(a.fusedHi);
    fnv.value(a.fusedLut);
    fnv.value(a.fusedAdd);
    fnv.value(a.fusedTransform);
    fnv.sequence(a.fusedOutShape);
    fnv.value(a.fusedTransformPermutes);
}

void
hashRequest(const graph::Graph &graph,
            const runtime::CompileOptions &options, Fnv &fnv)
{
    fnv.value(static_cast<uint64_t>(graph.size()));
    for (const graph::Node &node : graph.nodes())
        hashNode(node, fnv);

    fnv.value(uint64_t{0x0971'0f75}); // graph | options separator

    const select::CostModelOptions &cost = options.cost;
    fnv.value(static_cast<uint8_t>(cost.packOptions.policy));
    fnv.value(std::bit_cast<uint64_t>(cost.packOptions.w));
    fnv.value(std::bit_cast<uint64_t>(cost.packOptions.penaltyScale));
    fnv.value(static_cast<uint8_t>(cost.unroll));
    fnv.value(cost.lutOptimization);

    fnv.value(static_cast<uint8_t>(options.selection));
    fnv.value(options.maxPartition);
    fnv.value(static_cast<uint8_t>(options.uniformScheme));
    fnv.value(options.perOpOverheadCycles);
    fnv.value(options.libraryStyleBoundaries);
    fnv.value(options.runGraphPasses);
    fnv.value(options.eliminateLayoutTransforms);
    fnv.value(options.deadCodeElimination);
    fnv.value(options.enableExtendedFusion);
    fnv.value(options.maxSelectorEvaluations);
}

} // namespace

ModelKey
fingerprintRequest(const graph::Graph &graph,
                   const runtime::CompileOptions &options)
{
    Fnv a(0xcbf29ce484222325ULL);
    Fnv b(0x9e3779b97f4a7c15ULL);
    hashRequest(graph, options, a);
    hashRequest(graph, options, b);
    b.value(uint64_t{0x5eed});
    ModelKey key;
    key.h0 = a.digest();
    key.h1 = b.digest();
    key.nodes = graph.size();
    return key;
}

std::string
toHex(const ModelKey &key)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (uint64_t lane : {key.h0, key.h1})
        for (int shift = 60; shift >= 0; shift -= 4)
            out.push_back(digits[(lane >> shift) & 0xF]);
    return out;
}

} // namespace gcd2::service
