/**
 * @file
 * Noalias claim audit (see analysis/lint.h).
 *
 * The packer reorders memory instructions on the strength of the alias
 * oracle's "provably disjoint" answers; a wrong answer silently
 * miscompiles. This analyzer re-derives addresses *independently*: a
 * per-block symbolic walk where every scalar register at block entry is
 * an opaque base symbol and MOVI/MOV/ADDI/ADD/SUB propagate
 * (symbol, constant offset) pairs. Two accesses with the same symbol and
 * overlapping [offset, offset + size) intervals touch the same bytes on
 * every execution of the block -- if the oracle claimed them disjoint,
 * the claim is a lie (Error LintNoaliasOverlap).
 *
 * Same-block only, by design: the packer only co-schedules within a
 * block, and block-entry symbols change meaning across iterations of a
 * loop, so cross-block interval comparison would be unsound.
 */
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "dsp/alias.h"
#include "dsp/deps.h"

namespace gcd2::analysis {

using common::Diag;
using common::DiagCode;
using common::DiagSeverity;

namespace {

/** A scalar register's value as "base symbol + constant offset". Symbols
 *  0..31 are block-entry register values; kConstRoot is the literal zero
 *  base (MOVI results compare as absolute addresses); higher ids are
 *  fresh opaque values (one per non-derivable def, never equal). */
struct SymVal
{
    int root = 0;
    int64_t offset = 0;
};

constexpr int kConstRoot = dsp::kNumScalarRegs;

/** One memory access with a derived symbolic address. */
struct SymRef
{
    size_t inst = 0;
    bool isStore = false;
    int root = 0;
    int64_t begin = 0;
    int64_t end = 0;
};

} // namespace

size_t
analyzeNoalias(const BlockGraph &graph, const LintOptions &options,
               std::vector<Diag> &diags)
{
    const dsp::Program &prog = graph.packed->program;
    size_t findings = 0;

    // --- duplicate noalias bases ------------------------------------
    // One register declared twice means two "pairwise disjoint" buffers
    // share a base address: every disjointness conclusion drawn from the
    // declaration is suspect.
    std::vector<int> declared(dsp::kNumScalarRegs, 0);
    for (int8_t reg : prog.noaliasRegs) {
        if (reg < 0 || reg >= dsp::kNumScalarRegs)
            continue;
        if (++declared[reg] == 2) {
            ++findings;
            diags.push_back(Diag{DiagSeverity::Error, "lint", -1,
                                 "register r" + std::to_string(reg) +
                                     " declared twice in noaliasRegs",
                                 DiagCode::LintNoaliasDupBase});
        }
    }
    if (prog.code.empty())
        return findings;

    // The claims the packer acted on. Production callers leave this unset
    // and get the real AliasAnalysis; tests inject liars.
    const dsp::AliasAnalysis alias(prog);
    auto claimsMayAlias = [&](size_t i, size_t j) {
        return options.mayAliasClaim ? options.mayAliasClaim(i, j)
                                     : alias.mayAlias(i, j);
    };

    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        // Block-entry state: register i holds opaque symbol i.
        std::vector<SymVal> state(dsp::kNumScalarRegs);
        for (int r = 0; r < dsp::kNumScalarRegs; ++r)
            state[static_cast<size_t>(r)] = SymVal{r, 0};
        int nextOpaque = kConstRoot + 1;

        // Value of a scalar source operand (fresh opaque if malformed).
        auto valueOf = [&](const dsp::Operand &op) {
            if (op.cls == dsp::RegClass::Scalar && op.idx >= 0 &&
                op.idx < dsp::kNumScalarRegs)
                return state[static_cast<size_t>(op.idx)];
            return SymVal{nextOpaque++, 0};
        };

        std::vector<SymRef> refs;
        for (size_t i : graph.scheduled[b]) {
            const dsp::Instruction &inst = prog.code[i];

            // Record the access before updating state: the base operand
            // is read with its pre-instruction value.
            const int bytes = dsp::memAccessBytes(inst);
            if (bytes > 0 && inst.src[0].cls == dsp::RegClass::Scalar) {
                const SymVal base = valueOf(inst.src[0]);
                refs.push_back(
                    SymRef{i, inst.info().mem == dsp::MemKind::Store,
                           base.root, base.offset + inst.imm,
                           base.offset + inst.imm + bytes});
            }

            if (!inst.dst[0].valid() ||
                inst.dst[0].cls != dsp::RegClass::Scalar)
                continue;
            SymVal &dst = state[static_cast<size_t>(inst.dst[0].idx)];
            switch (inst.op) {
            case dsp::Opcode::MOVI:
                dst = SymVal{kConstRoot, inst.imm};
                break;
            case dsp::Opcode::MOV:
                dst = valueOf(inst.src[0]);
                break;
            case dsp::Opcode::ADDI: {
                const SymVal src = valueOf(inst.src[0]);
                dst = SymVal{src.root, src.offset + inst.imm};
                break;
            }
            case dsp::Opcode::ADD:
            case dsp::Opcode::SUB: {
                const SymVal lhs = valueOf(inst.src[0]);
                const SymVal rhs = valueOf(inst.src[1]);
                if (rhs.root == kConstRoot)
                    dst = SymVal{lhs.root,
                                 inst.op == dsp::Opcode::ADD
                                     ? lhs.offset + rhs.offset
                                     : lhs.offset - rhs.offset};
                else if (lhs.root == kConstRoot &&
                         inst.op == dsp::Opcode::ADD)
                    dst = SymVal{rhs.root, lhs.offset + rhs.offset};
                else
                    dst = SymVal{nextOpaque++, 0};
                break;
            }
            default:
                // Loads, shifts, multiplies, ... -- not derivable as
                // base + constant; a fresh symbol never matches anything.
                dst = SymVal{nextOpaque++, 0};
                break;
            }
        }

        // --- provable overlap vs. the oracle's claims ----------------
        // Load/load pairs never constrain packing (no ordering hazard),
        // so only store-involving pairs can expose a lying claim.
        for (size_t x = 0; x < refs.size(); ++x)
            for (size_t y = x + 1; y < refs.size(); ++y) {
                const SymRef &a = refs[x];
                const SymRef &c = refs[y];
                if (!a.isStore && !c.isStore)
                    continue;
                if (a.root != c.root)
                    continue; // different bases: no proof either way
                if (a.begin >= c.end || c.begin >= a.end)
                    continue; // disjoint intervals
                const size_t first = std::min(a.inst, c.inst);
                const size_t second = std::max(a.inst, c.inst);
                if (claimsMayAlias(first, second))
                    continue; // oracle already says "may overlap"
                ++findings;
                diags.push_back(Diag{
                    DiagSeverity::Error, "lint",
                    static_cast<int64_t>(second),
                    "accesses '" + prog.code[first].toString() +
                        "' and '" + prog.code[second].toString() +
                        "' provably overlap but were claimed noalias",
                    DiagCode::LintNoaliasOverlap});
            }
    }
    return findings;
}

} // namespace gcd2::analysis
