/**
 * @file
 * Noalias claim audit (see analysis/lint.h).
 *
 * The packer reorders memory instructions on the strength of the alias
 * oracle's "provably disjoint" answers; a wrong answer silently
 * miscompiles. This analyzer re-derives every access address
 * *independently* from the value-flow lattice (analysis/valueflow.h)
 * and compares accesses whole-program: two accesses whose symbolic
 * addresses provably cover a common byte on some realized pair of
 * executions, while the oracle claimed the pair disjoint, expose a
 * lying claim (Error LintNoaliasOverlap).
 *
 * What counts as a proof (Error severity demands certainty):
 *
 *  - Same root, same induction-term list: the two addresses keep a
 *    constant distance on every iteration vector, so a static interval
 *    overlap is realized whenever both execute -- and a pair that can
 *    only overlap when both execute is exactly what a may-alias oracle
 *    answers about. Entry roots mean the same base in every block;
 *    def-site roots are value numbers that cannot survive a loop head
 *    join, so two occurrences always denote the same dynamic def.
 *
 *  - Singleton vs. a single own-term value (a fixed address against a
 *    strided induction walk): overlap iff the interval inequality has
 *    an integer solution among the iterations that provably execute --
 *    iteration 0 always does (do-while bodies run at least once), all
 *    of [0, trips) when the loop's trip count is resolved.
 *
 * Anything else (differing multi-term shapes, unresolved control flow)
 * is not provable either way and stays silent. Blocks unreachable from
 * entry have bottom solved states; they are replayed with a fresh
 * entry-seeded walker and compared within the block only, preserving
 * the old per-block audit's coverage there.
 */
#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "dsp/alias.h"
#include "dsp/deps.h"

namespace gcd2::analysis {

using common::Diag;
using common::DiagCode;
using common::DiagSeverity;

namespace {

/** Comparing every pair within a root group is quadratic; groups beyond
 *  this size are skipped (sound: fewer findings, never wrong ones). */
constexpr size_t kMaxGroupRefs = 2048;

/** One memory access with its derived symbolic address. */
struct VfRef
{
    size_t inst = 0;
    int block = 0;
    bool isStore = false;
    VfValue addr;  ///< affine address (imm already folded in)
    int64_t bytes = 0;
};

/** Iterations of @p loop that provably execute: all of [0, trips) when
 *  resolved, just iteration 0 otherwise (do-while bodies run once). */
int64_t
provenTrips(const ValueFlow &flow, int loop)
{
    const VfLoop &l = flow.loops[static_cast<size_t>(loop)];
    if (!l.tripKnown || l.trips == 0)
        return 1;
    const uint64_t cap =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
    return l.trips > cap ? static_cast<int64_t>(cap)
                         : static_cast<int64_t>(l.trips);
}

/** Does [aBegin, aBegin + aBytes) intersect [bBegin, bBegin + bBytes)?
 *  128-bit arithmetic: offsets are attacker-ish inputs. */
bool
intervalsOverlap(int64_t aBegin, int64_t aBytes, int64_t bBegin,
                 int64_t bBytes)
{
    const __int128 a0 = aBegin;
    const __int128 b0 = bBegin;
    return a0 < b0 + bBytes && b0 < a0 + aBytes;
}

/**
 * Singleton @p fix vs. single-term @p walk (term {loop, stride}): does
 * some provably-executed iteration t put
 * [walk.offset + stride * t, + walkBytes) into [fix.offset, + fixBytes)?
 */
bool
stridedOverlap(const ValueFlow &flow, const VfValue &fix,
               int64_t fixBytes, const VfValue &walk, int64_t walkBytes)
{
    const VfTerm &term = walk.terms[0];
    const __int128 s = term.stride;
    const __int128 lo = static_cast<__int128>(fix.offset) - walkBytes;
    const __int128 hi = static_cast<__int128>(fix.offset) + fixBytes;
    // Overlap at iteration t iff lo < walk.offset + s*t < hi.
    const __int128 base = walk.offset;
    const int64_t trips = provenTrips(flow, term.loop);
    if (s == 0)
        return false; // withTerm never stores zero strides
    // Integer t range solving the strict inequalities.
    const auto floorDiv = [](__int128 a, __int128 b) {
        __int128 q = a / b;
        if ((a % b != 0) && ((a < 0) != (b < 0)))
            --q;
        return q;
    };
    __int128 tMin, tMax;
    if (s > 0) {
        tMin = floorDiv(lo - base, s) + 1;  // base + s*t > lo
        tMax = floorDiv(hi - base - 1, s);  // base + s*t < hi
    } else {
        tMin = floorDiv(base - hi, -s) + 1; // base + s*t < hi
        tMax = floorDiv(base - lo - 1, -s); // base + s*t > lo
    }
    if (tMin < 0)
        tMin = 0;
    if (tMax > trips - 1)
        tMax = trips - 1;
    return tMin <= tMax;
}

/** Provable overlap of two same-root affine accesses (see file doc). */
bool
provableOverlap(const ValueFlow &flow, const VfRef &a, const VfRef &b)
{
    const VfValue &va = a.addr;
    const VfValue &vb = b.addr;
    if (va.sameShape(vb))
        return intervalsOverlap(va.offset, a.bytes, vb.offset, b.bytes);
    if (va.isSingleton() && vb.numTerms == 1)
        return stridedOverlap(flow, va, a.bytes, vb, b.bytes);
    if (vb.isSingleton() && va.numTerms == 1)
        return stridedOverlap(flow, vb, b.bytes, va, a.bytes);
    return false;
}

} // namespace

size_t
analyzeNoalias(const BlockGraph &graph, const ValueFlow &flow,
               const LintOptions &options, std::vector<Diag> &diags)
{
    const dsp::Program &prog = *graph.program;
    size_t findings = 0;

    // --- duplicate noalias bases ------------------------------------
    // One register declared twice means two "pairwise disjoint" buffers
    // share a base address: every disjointness conclusion drawn from the
    // declaration is suspect.
    std::vector<int> declared(dsp::kNumScalarRegs, 0);
    for (int8_t reg : prog.noaliasRegs) {
        if (reg < 0 || reg >= dsp::kNumScalarRegs)
            continue;
        if (++declared[reg] == 2) {
            ++findings;
            diags.push_back(Diag{DiagSeverity::Error, "lint", -1,
                                 "register r" + std::to_string(reg) +
                                     " declared twice in noaliasRegs",
                                 DiagCode::LintNoaliasDupBase});
        }
    }
    if (prog.code.empty())
        return findings;

    // The claims the packer acted on. Production callers leave this unset
    // and get the real AliasAnalysis; tests inject liars.
    const dsp::AliasAnalysis alias(prog);
    auto claimsMayAlias = [&](size_t i, size_t j) {
        return options.mayAliasClaim ? options.mayAliasClaim(i, j)
                                     : alias.mayAlias(i, j);
    };

    // Load/load pairs never constrain packing (no ordering hazard), so
    // only store-involving pairs can expose a lying claim.
    auto auditGroup = [&](const std::vector<VfRef> &refs) {
        if (refs.size() > kMaxGroupRefs)
            return;
        for (size_t x = 0; x < refs.size(); ++x)
            for (size_t y = x + 1; y < refs.size(); ++y) {
                const VfRef &a = refs[x];
                const VfRef &b = refs[y];
                if (!a.isStore && !b.isStore)
                    continue;
                if (!provableOverlap(flow, a, b))
                    continue;
                const size_t first = std::min(a.inst, b.inst);
                const size_t second = std::max(a.inst, b.inst);
                if (claimsMayAlias(first, second))
                    continue; // oracle already says "may overlap"
                ++findings;
                diags.push_back(Diag{
                    DiagSeverity::Error, "lint",
                    static_cast<int64_t>(second),
                    "accesses '" + prog.code[first].toString() +
                        "' and '" + prog.code[second].toString() +
                        "' provably overlap but were claimed noalias",
                    DiagCode::LintNoaliasOverlap});
            }
    };

    // Collect reachable-code accesses into per-root groups (roots never
    // compare across groups: differing bases prove nothing either way).
    auto collect = [&](VfWalker &walker, size_t b,
                       std::vector<std::vector<VfRef>> &groups,
                       std::vector<int> &groupOfRoot) {
        for (size_t i : graph.scheduled[b]) {
            const dsp::Instruction &inst = prog.code[i];
            const int bytes = dsp::memAccessBytes(inst);
            if (bytes > 0 && inst.src[0].cls == dsp::RegClass::Scalar) {
                const VfValue addr =
                    walker.eval(inst.src[0]).plus(inst.imm);
                if (addr.isAffine()) {
                    auto it = std::find(groupOfRoot.begin(),
                                        groupOfRoot.end(), addr.root);
                    size_t g;
                    if (it == groupOfRoot.end()) {
                        g = groups.size();
                        groups.emplace_back();
                        groupOfRoot.push_back(addr.root);
                    } else {
                        g = static_cast<size_t>(
                            it - groupOfRoot.begin());
                    }
                    groups[g].push_back(
                        VfRef{i, static_cast<int>(b),
                              inst.info().mem == dsp::MemKind::Store,
                              addr, bytes});
                }
            }
            walker.step(i);
        }
    };

    std::vector<std::vector<VfRef>> groups;
    std::vector<int> groupOfRoot;
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        if (!graph.reachable[b])
            continue;
        VfWalker walker(graph, flow, static_cast<int>(b));
        collect(walker, b, groups, groupOfRoot);
    }
    for (const std::vector<VfRef> &group : groups)
        auditGroup(group);

    // Unreachable blocks have bottom solved states; replay each with an
    // entry-seeded walker and compare within the block only (entry
    // roots mean "this block's entry" there, nothing more).
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        if (graph.reachable[b])
            continue;
        VfWalker walker(graph, flow, static_cast<int>(b));
        walker.seedEntry();
        std::vector<std::vector<VfRef>> local;
        std::vector<int> localRoots;
        collect(walker, b, local, localRoots);
        for (const std::vector<VfRef> &group : local)
            auditGroup(group);
    }
    return findings;
}

} // namespace gcd2::analysis
