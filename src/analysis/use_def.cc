/**
 * @file
 * Use-before-def and dead-store analyzers (see analysis/lint.h).
 */
#include <string>

#include "analysis/lint.h"
#include "dsp/deps.h"

namespace gcd2::analysis {

using common::Diag;
using common::DiagCode;
using common::DiagSeverity;

namespace {

std::string
regName(int uid)
{
    const bool scalar = uid < dsp::kNumScalarRegs;
    std::string name(1, scalar ? 'r' : 'v');
    name += std::to_string(scalar ? uid : uid - dsp::kNumScalarRegs);
    return name;
}

RegSet
readMask(const dsp::Instruction &inst)
{
    return dsp::regMasks(inst).reads;
}

RegSet
writeMask(const dsp::Instruction &inst)
{
    return dsp::regMasks(inst).writes;
}

/** Per-block register write masks, in scheduled order (order does not
 *  matter for the block-level transfer, but reuse keeps it obvious). */
std::vector<RegSet>
blockWriteMasks(const BlockGraph &graph)
{
    std::vector<RegSet> writes(graph.numBlocks(), 0);
    for (size_t b = 0; b < graph.numBlocks(); ++b)
        for (size_t i : graph.scheduled[b])
            writes[b] |= writeMask(graph.program->code[i]);
    return writes;
}

} // namespace

size_t
analyzeUseBeforeDef(const BlockGraph &graph, const LintOptions &options,
                    std::vector<Diag> &diags)
{
    const dsp::Program &prog = *graph.program;
    if (prog.code.empty())
        return 0;

    RegSet entry = 0;
    const std::vector<int8_t> &entryRegs = options.entryDefinedRegs
                                               ? *options.entryDefinedRegs
                                               : prog.noaliasRegs;
    for (int8_t reg : entryRegs)
        if (reg >= 0 && reg < dsp::kNumScalarRegs)
            entry |= RegSet{1} << reg;

    // Both problems share the transfer "out = in | writes" (a block is
    // straight-line, so every write in it is unconditional); they differ
    // only in the meet. Union answers "written on SOME path", intersection
    // "written on EVERY path".
    DataflowProblem problem;
    problem.direction = DataflowProblem::Direction::Forward;
    problem.boundary = entry;
    problem.gen = blockWriteMasks(graph);
    problem.kill.assign(graph.numBlocks(), 0);

    problem.meet = DataflowProblem::Meet::Union;
    const DataflowResult maybe = solveDataflow(graph, problem);
    problem.meet = DataflowProblem::Meet::Intersect;
    const DataflowResult definite = solveDataflow(graph, problem);

    size_t findings = 0;
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        if (!graph.reachable[b])
            continue; // no execution reaches it; structural lint's job
        RegSet maybeSet = maybe.in[b];
        RegSet definiteSet = definite.in[b];
        for (size_t i : graph.scheduled[b]) {
            const dsp::Instruction &inst = prog.code[i];
            for (int uid : dsp::regReads(inst)) {
                const RegSet bit = RegSet{1} << uid;
                if (!(maybeSet & bit)) {
                    ++findings;
                    diags.push_back(Diag{
                        DiagSeverity::Error, "lint",
                        static_cast<int64_t>(i),
                        "read of " + regName(uid) +
                            " which no path ever writes, in '" +
                            inst.toString() + "'",
                        DiagCode::LintUseBeforeDef});
                } else if (!(definiteSet & bit)) {
                    ++findings;
                    diags.push_back(Diag{
                        DiagSeverity::Warning, "lint",
                        static_cast<int64_t>(i),
                        "read of " + regName(uid) +
                            " which some path never writes, in '" +
                            inst.toString() + "'",
                        DiagCode::LintMaybeUninit});
                }
                // Report each register once: treat the flagged read as a
                // def so later reads of the same garbage stay quiet.
                maybeSet |= bit;
                definiteSet |= bit;
            }
            const RegSet writes = writeMask(inst);
            maybeSet |= writes;
            definiteSet |= writes;
        }
    }
    return findings;
}

std::vector<uint8_t>
deadInstructionMask(const BlockGraph &graph,
                    const std::vector<uint8_t> *removed)
{
    const dsp::Program &prog = *graph.program;
    std::vector<uint8_t> dead(prog.code.size(), 0);
    if (prog.code.empty())
        return dead;
    const auto skip = [&](size_t i) {
        return removed != nullptr && (*removed)[i] != 0;
    };

    // Backward liveness. Per block (walking the scheduled order
    // backwards): gen = upward-exposed reads, kill = writes. Nothing is
    // live at program exit -- kernel results leave through stores, not
    // registers (the buffer ABI). Instructions in @p removed are treated
    // as already deleted: their reads keep nothing alive.
    DataflowProblem problem;
    problem.direction = DataflowProblem::Direction::Backward;
    problem.meet = DataflowProblem::Meet::Union;
    problem.boundary = 0;
    problem.gen.assign(graph.numBlocks(), 0);
    problem.kill.assign(graph.numBlocks(), 0);
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        RegSet &gen = problem.gen[b];
        RegSet &kill = problem.kill[b];
        const std::vector<size_t> &order = graph.scheduled[b];
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            if (skip(*it))
                continue;
            const dsp::Instruction &inst = prog.code[*it];
            const RegSet writes = writeMask(inst);
            gen &= ~writes;
            kill |= writes;
            gen |= readMask(inst);
        }
    }
    const DataflowResult live = solveDataflow(graph, problem);

    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        RegSet liveSet = live.out[b];
        const std::vector<size_t> &order = graph.scheduled[b];
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const size_t i = *it;
            if (skip(i))
                continue;
            const dsp::Instruction &inst = prog.code[i];
            const RegSet writes = writeMask(inst);
            // A register-writing instruction with no other architectural
            // effect whose every result is dead does nothing. Stores and
            // branches have effects beyond registers; NOPs write nothing.
            if (writes != 0 && (writes & liveSet) == 0 &&
                inst.info().mem != dsp::MemKind::Store &&
                !inst.isBranch())
                dead[i] = 1;
            liveSet &= ~writes;
            liveSet |= readMask(inst);
        }
    }
    return dead;
}

size_t
analyzeDeadStores(const BlockGraph &graph, std::vector<Diag> &diags)
{
    const dsp::Program &prog = *graph.program;
    if (prog.code.empty())
        return 0;

    const std::vector<uint8_t> dead = deadInstructionMask(graph, nullptr);

    size_t findings = 0;
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        const std::vector<size_t> &order = graph.scheduled[b];
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const size_t i = *it;
            if (!dead[i])
                continue;
            ++findings;
            diags.push_back(
                Diag{DiagSeverity::Warning, "lint",
                     static_cast<int64_t>(i),
                     "result of '" + prog.code[i].toString() +
                         "' is never used on any path",
                     DiagCode::LintDeadStore});
        }
    }

    // A packet whose every member is dead stalls the machine for nothing:
    // the packer should never have emitted it. (Bare-program graphs have
    // no packets to flag.)
    const size_t numPackets =
        graph.packed ? graph.packed->packets.size() : 0;
    for (size_t p = 0; p < numPackets; ++p) {
        const std::vector<size_t> &insts = graph.packed->packets[p].insts;
        if (insts.empty())
            continue;
        bool allDead = true;
        for (size_t idx : insts)
            if (idx >= dead.size() || !dead[idx])
                allDead = false;
        if (allDead) {
            ++findings;
            diags.push_back(Diag{DiagSeverity::Warning, "lint",
                                 static_cast<int64_t>(insts.front()),
                                 "packet " + std::to_string(p) +
                                     " computes only dead results",
                                 DiagCode::LintDeadPacket});
        }
    }
    return findings;
}

} // namespace gcd2::analysis
