/**
 * @file
 * Global value flow: a flow-sensitive value-numbering / abstract-
 * interpretation pass over a BlockGraph (DESIGN.md section 17).
 *
 * Every (block, scalar register) pair is assigned a lattice value
 *
 *     bottom  <  affine  <  top
 *
 * where an affine value is `root + offset + sum_i stride_i * t_i`: a
 * symbolic base plus a constant plus one linear term per enclosing
 * counted loop, with t_i the (0-based) iteration index of loop i. Roots
 * are stable value numbers:
 *
 *  - 0..31: the value a scalar register held at *program entry* (the
 *    kernel buffer ABI roots, Program::noaliasRegs, live here);
 *  - kVfConstRoot: the literal zero base, so MOVI results compare as
 *    absolute constants;
 *  - kVfFirstDefRoot + i: the value produced by instruction i when it is
 *    not derivable as base-plus-constant (loads, multiplies, ...). A
 *    def-site root is an SSA-ish value number: two points sharing it saw
 *    the *same dynamic instance* of that def, because a def-site value
 *    cannot survive the head join of any loop containing its def (the
 *    entry path carries a different value, and mismatched joins widen to
 *    top).
 *
 * Loop structure is recognized syntactically -- backward JUMPNZ branches
 * whose body intervals are well nested, the only shape the kernel
 * generators emit -- and solved with the generic lattice engine
 * (analysis/dataflow.h): back-edge joins *fold* a constant per-iteration
 * delta into a linear term instead of widening, loop-exit edges
 * concretize terms with the loop's resolved trip count, and a head-in
 * change resets the body states so stale back-edge values never force a
 * spurious widening. Programs with forward branches, unconditional
 * jumps, or improper nesting fall back to the plain exact-or-top join:
 * still sound, just without induction terms.
 *
 * Trip counts fall out of the same analysis: the JUMPNZ counter's value
 * at the branch must be an absolute constant C plus a single own-loop
 * term of stride s < 0 with C >= 0 and s | C -- the loop then runs
 * exactly C / -s + 1 iterations (do-while shape). This is what
 * select::analyzeProgram consumes to certify register-trip counted
 * loops that the old last-write-must-be-MOVI idiom refused.
 *
 * Exactness (what makes Error-severity findings sound): a non-top
 * affine value is not an approximation -- on every execution reaching
 * its program point with loop iteration vector (t_1..t_k), the register
 * holds exactly root + offset + sum stride_i * t_i, because forward
 * joins require exact equality, back-edge joins require the exact
 * one-step advance, and counted do-while loops realize every iteration
 * vector in the box [0, trips_i).
 */
#ifndef GCD2_ANALYSIS_VALUEFLOW_H
#define GCD2_ANALYSIS_VALUEFLOW_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataflow.h"

namespace gcd2::analysis {

/** Root id of the literal zero base (MOVI results). */
inline constexpr int kVfConstRoot = dsp::kNumScalarRegs;
/** First def-site root: kVfFirstDefRoot + instruction index. */
inline constexpr int kVfFirstDefRoot = dsp::kNumScalarRegs + 1;
/** Linear terms per value; more enclosing loops than this widens. */
inline constexpr int kVfMaxTerms = 4;

/** One linear component: + stride * t over iterations t of `loop`. */
struct VfTerm
{
    int loop = -1; ///< index into ValueFlow::loops
    int64_t stride = 0;

    bool operator==(const VfTerm &other) const
    {
        return loop == other.loop && stride == other.stride;
    }
};

/** Lattice value of one scalar register at one program point. */
struct VfValue
{
    enum class Kind : uint8_t { Bottom, Affine, Top };

    Kind kind = Kind::Bottom;
    int32_t root = 0;
    int64_t offset = 0;
    uint8_t numTerms = 0;
    std::array<VfTerm, kVfMaxTerms> terms{};

    static VfValue bottom() { return VfValue{}; }
    static VfValue top()
    {
        VfValue v;
        v.kind = Kind::Top;
        return v;
    }
    static VfValue base(int32_t root, int64_t offset = 0)
    {
        VfValue v;
        v.kind = Kind::Affine;
        v.root = root;
        v.offset = offset;
        return v;
    }

    bool isAffine() const { return kind == Kind::Affine; }
    /** Affine with no linear terms: one fixed address per execution. */
    bool isSingleton() const { return isAffine() && numTerms == 0; }

    /** Stride of the @p loop term, 0 when absent. */
    int64_t strideOf(int loop) const;
    bool hasTerm(int loop) const { return strideOf(loop) != 0; }
    /** Same root and identical term lists (offsets may differ). */
    bool sameShape(const VfValue &other) const;
    /** This value plus a constant (affine only; others unchanged). */
    VfValue plus(int64_t delta) const;
    /** Copy with the @p loop term added (sorted); top when full. */
    VfValue withTerm(int loop, int64_t stride) const;
    /** Copy with the @p loop term removed. */
    VfValue withoutTerm(int loop) const;

    bool operator==(const VfValue &other) const;
    bool operator!=(const VfValue &other) const
    {
        return !(*this == other);
    }

    /** "r3+128+8*t0" style rendering for diagnostics and tests. */
    std::string toString() const;
};

/** Plain (forward-edge) join: bottom is the identity, equal values are
 *  kept, anything else widens to top. */
VfValue vfJoin(const VfValue &a, const VfValue &b);

/** One recognized counted loop: body blocks [head, tail] inclusive. */
struct VfLoop
{
    int head = 0;           ///< loop-head block (the label target)
    int tail = 0;           ///< back-edge block (ends in the JUMPNZ)
    size_t startInst = 0;   ///< first body instruction
    size_t branchInst = 0;  ///< the backward JUMPNZ
    int cond = -1;          ///< scalar trip-counter register
    int parent = -1;        ///< innermost enclosing loop, -1 = none
    bool tripKnown = false; ///< trip count resolved to a constant
    uint64_t trips = 0;     ///< iterations of the body per loop entry
};

/** The solved value flow of one program. */
struct ValueFlow
{
    /** Recognized loops, outermost-first in program order. */
    std::vector<VfLoop> loops;
    /** Every branch is a backward JUMPNZ forming a well-nested loop
     *  with a unique head and tail; induction terms are live. */
    bool controlResolved = false;
    /** controlResolved, converged, and every loop has a compile-time
     *  trip count -- the precondition for execution-count arguments
     *  (trip certification, provable out-of-bounds). */
    bool tripsResolved = false;
    /** The fixpoint converged under the round cap (when false, every
     *  state is top and nothing may be concluded). */
    bool converged = true;
    int rounds = 0;
    /** Per block, per scalar register: value at block entry / exit. */
    std::vector<std::vector<VfValue>> in;
    std::vector<std::vector<VfValue>> out;

    /** Innermost loop whose body contains @p block, -1 when none. */
    int loopOf(int block) const;
};

/** Run the value-flow analysis over @p graph. */
ValueFlow computeValueFlow(const BlockGraph &graph);

/**
 * Replay one block's scheduled instructions from its solved entry
 * state. Analyzers use this to read the value of any scalar operand
 * immediately before each instruction executes.
 */
class VfWalker
{
  public:
    VfWalker(const BlockGraph &graph, const ValueFlow &flow, int block);

    /** Reset every register to its entry base (analyzers use this to
     *  replay *unreachable* blocks, whose solved entry state is bottom,
     *  with block-local facts only). */
    void seedEntry();

    /** Value of scalar register @p reg before the current instruction. */
    const VfValue &reg(int reg) const;
    /** Value of @p op (top for non-scalar / malformed operands). */
    VfValue eval(const dsp::Operand &op) const;
    /** Apply instruction @p instIdx and advance. */
    void step(size_t instIdx);

  private:
    const BlockGraph &graph_;
    std::vector<VfValue> state_;
};

/**
 * Exact range [lo, hi] the value's offset-from-root takes across all
 * loop iterations (each term contributes stride * t, t in [0, trips)).
 * False when the value is not affine, a term's loop has no resolved
 * trip count, or the range overflows the guard bound.
 */
bool vfValueRange(const ValueFlow &flow, const VfValue &value,
                  int64_t &lo, int64_t &hi);

} // namespace gcd2::analysis

#endif // GCD2_ANALYSIS_VALUEFLOW_H
