#include "analysis/rewrite.h"

#include <numeric>
#include <string>

#include "analysis/dataflow.h"
#include "analysis/lint.h"
#include "vliw/audit.h"
#include "vliw/pack_cache.h"

namespace gcd2::analysis {

using common::Diag;
using common::DiagCode;
using common::DiagSeverity;

DceResult
rewriteDeadCode(std::shared_ptr<const dsp::PackedProgram> packed,
                const vliw::PackOptions &packOptions)
{
    DceResult result;
    result.program = packed;
    if (!packed || packed->program.code.empty())
        return result;

    const dsp::Program &prog = packed->program;
    const BlockGraph graph = buildBlockGraph(*packed);

    // Liveness fixpoint: deleting a dead instruction removes its reads,
    // which can strand the instructions that fed it. Re-run the mask
    // with the accumulated removals until nothing new dies. Branches
    // and stores are never dead, so the CFG shape is stable across
    // rounds and the one BlockGraph stays valid.
    std::vector<uint8_t> removed(prog.code.size(), 0);
    size_t removedCount = 0;
    for (;;) {
        ++result.stats.rounds;
        const std::vector<uint8_t> dead =
            deadInstructionMask(graph, &removed);
        bool grew = false;
        for (size_t i = 0; i < dead.size(); ++i) {
            if (dead[i] && !removed[i]) {
                removed[i] = 1;
                ++removedCount;
                grew = true;
            }
        }
        if (!grew)
            break;
    }
    if (removedCount == 0)
        return result; // nothing to do: serve the original

    // Materialize the compacted program: live instructions in original
    // program order; every label re-targets the count of live
    // instructions before it (a label one past the end stays legal, and
    // a label on a removed instruction slides to the next live one --
    // sound, because a dead instruction has no effect on any path).
    std::vector<size_t> liveBefore(prog.code.size() + 1, 0);
    for (size_t i = 0; i < prog.code.size(); ++i)
        liveBefore[i + 1] = liveBefore[i] + (removed[i] ? 0 : 1);

    dsp::Program compact;
    compact.code.reserve(prog.code.size() - removedCount);
    for (size_t i = 0; i < prog.code.size(); ++i)
        if (!removed[i])
            compact.code.push_back(prog.code[i]);
    compact.labels.reserve(prog.labels.size());
    for (size_t target : prog.labels)
        compact.labels.push_back(
            liveBefore[std::min(target, prog.code.size())]);
    compact.noaliasRegs = prog.noaliasRegs;

    // Re-pack through the content-addressed cache: distinct nodes that
    // shared the original program keep sharing the rewritten one.
    std::shared_ptr<const dsp::PackedProgram> repacked =
        vliw::PackCache::global().lookupOrPack(compact, packOptions);

    // Serve the rewrite only if it is provably clean: structurally legal
    // and free of remaining dead stores and Error-class lint findings.
    std::vector<Diag> auditFindings = vliw::auditSchedule(*repacked);
    const LintResult relint = lintPackedProgram(*repacked);
    const bool clean = auditFindings.empty() &&
                       relint.counts.deadStore == 0 &&
                       relint.counts.errors == 0;
    if (!clean) {
        result.diags.push_back(
            Diag{DiagSeverity::Warning, "dce", -1,
                 "dead-code rewrite rejected (" +
                     std::to_string(auditFindings.size()) +
                     " audit findings, " +
                     std::to_string(relint.counts.deadStore) +
                     " residual dead stores, " +
                     std::to_string(relint.counts.errors) +
                     " lint errors); serving the original schedule",
                 DiagCode::LintDeadStore});
        for (Diag &diag : auditFindings)
            result.diags.push_back(std::move(diag));
        return result;
    }

    result.stats.removedInstructions = removedCount;
    if (repacked->packets.size() < packed->packets.size())
        result.stats.removedPackets =
            packed->packets.size() - repacked->packets.size();
    result.stats.rewritten = true;
    result.program = std::move(repacked);
    return result;
}

} // namespace gcd2::analysis
