#include "analysis/lint.h"

#include <algorithm>

namespace gcd2::analysis {

using common::DiagSeverity;

DiagSeverity
LintResult::maxSeverity() const
{
    DiagSeverity worst = DiagSeverity::Info;
    for (const common::Diag &diag : diags)
        worst = std::max(worst, diag.severity);
    return worst;
}

LintResult
lintPackedProgram(const dsp::PackedProgram &packed,
                  const LintOptions &options)
{
    LintResult result;
    const BlockGraph graph = buildBlockGraph(packed);

    if (options.useBeforeDef)
        result.counts.useBeforeDef =
            analyzeUseBeforeDef(graph, options, result.diags);
    if (options.deadStore)
        result.counts.deadStore = analyzeDeadStores(graph, result.diags);
    if (options.hazards)
        result.counts.hazards = analyzeHazards(graph, result.diags);

    // The address-based analyzers share one value-flow solve.
    if (options.noalias || options.redundantLoad || options.bounds) {
        const ValueFlow flow = computeValueFlow(graph);
        if (options.noalias)
            result.counts.noalias =
                analyzeNoalias(graph, flow, options, result.diags);
        if (options.redundantLoad)
            result.counts.redundantLoad =
                analyzeRedundantLoads(graph, flow, result.diags);
        if (options.bounds)
            result.counts.bounds =
                analyzeBounds(graph, flow, result.diags);
    }

    for (const common::Diag &diag : result.diags) {
        if (diag.severity == DiagSeverity::Error)
            ++result.counts.errors;
        else if (diag.severity == DiagSeverity::Warning)
            ++result.counts.warnings;
    }
    return result;
}

} // namespace gcd2::analysis
