/**
 * @file
 * Intra-packet hazard lint (see analysis/lint.h): write-write register
 * conflicts, slot/unit resource overcommit, and a differential check of
 * the packer's mask-based co-pack delay claims against the ground-truth
 * dsp::deps classification. The claims are queried from dsp::CopackModel
 * -- the exact tables vliw::FastIdg embeds and forwards its copackDelay
 * to, built here in one O(n) pass over the whole program instead of one
 * scheduling graph per block (the lint never needs edges, ranks, or
 * critical paths). The cross-check is deliberately against
 * classifyDependency, not the pruned FastIdg edge set -- the edge set is
 * what the packer already believes, so checking against it would verify
 * nothing.
 */
#include <sstream>
#include <string>

#include "analysis/lint.h"
#include "dsp/alias.h"
#include "dsp/copack.h"
#include "dsp/deps.h"

namespace gcd2::analysis {

using common::Diag;
using common::DiagCode;
using common::DiagSeverity;

namespace {

std::string
regName(int uid)
{
    const bool scalar = uid < dsp::kNumScalarRegs;
    std::string name(1, scalar ? 'r' : 'v');
    name += std::to_string(scalar ? uid : uid - dsp::kNumScalarRegs);
    return name;
}

} // namespace

size_t
analyzeHazards(const BlockGraph &graph, std::vector<Diag> &diags)
{
    if (graph.packed == nullptr)
        return 0; // packet hazards only exist on packed schedules
    const dsp::PackedProgram &packed = *graph.packed;
    const dsp::Program &prog = packed.program;
    if (prog.code.empty())
        return 0;

    size_t findings = 0;
    auto report = [&](DiagCode code, size_t node, std::string message) {
        ++findings;
        diags.push_back(Diag{DiagSeverity::Error, "lint",
                             static_cast<int64_t>(node),
                             std::move(message), code});
    };

    const dsp::AliasAnalysis alias(prog);
    const dsp::CopackModel copack(prog, alias);

    for (size_t p = 0; p < packed.packets.size(); ++p) {
        const std::vector<size_t> &insts = packed.packets[p].insts;

        // Structurally corrupt packets (out-of-range members) belong to
        // the schedule check table; skip them here.
        bool valid = true;
        for (size_t idx : insts)
            if (idx >= prog.code.size())
                valid = false;
        if (!valid || insts.empty())
            continue;

        // --- write-write conflicts ---------------------------------
        // Two same-packet writes of one register race in the write
        // stage; the dependency classifier calls every WAW hard.
        RegSet written = 0;
        for (size_t idx : insts) {
            for (int uid : dsp::regWrites(prog.code[idx])) {
                const RegSet bit = RegSet{1} << uid;
                if (written & bit)
                    report(DiagCode::LintWriteConflict, idx,
                           "packet " + std::to_string(p) +
                               " writes " + regName(uid) +
                               " twice ('" + prog.code[idx].toString() +
                               "')");
                written |= bit;
            }
        }

        // --- resource overcommit -----------------------------------
        int branches = 0;
        int multUnits = 0;
        for (size_t idx : insts) {
            if (prog.code[idx].isBranch())
                ++branches;
            multUnits += prog.code[idx].info().multUnits;
        }
        if (branches > 1)
            report(DiagCode::LintSlotOvercommit, insts.front(),
                   "packet " + std::to_string(p) + " holds " +
                       std::to_string(branches) +
                       " branches (the branch unit takes one)");
        if (multUnits > 2)
            report(DiagCode::LintSlotOvercommit, insts.front(),
                   "packet " + std::to_string(p) + " needs " +
                       std::to_string(multUnits) +
                       " multiply pipelines (the DSP has 2)");
        if (branches <= 1 && multUnits <= 2 &&
            insts.size() <= static_cast<size_t>(dsp::kPacketSlots) &&
            !dsp::slotsFeasible(prog, insts))
            report(DiagCode::LintSlotOvercommit, insts.front(),
                   "packet " + std::to_string(p) +
                       " has no feasible slot assignment");

        // --- delay-claim cross-check -------------------------------
        // Packets spanning blocks carry no packer claim to verify (a
        // legal packet never spans; spanning ones are flagged by the
        // label checks), so skip them here.
        const int b = graph.blockOf(insts.front());
        if (b < 0 ||
            insts.back() >= graph.cfg.blocks[static_cast<size_t>(b)].end)
            continue;
        for (size_t k = 0; k < insts.size(); ++k)
            for (size_t m = 0; m < k; ++m) {
                const size_t early = insts[m];
                const size_t late = insts[k];
                const dsp::Dependency dep = dsp::classifyDependency(
                    prog.code[early], prog.code[late],
                    alias.mayAlias(early, late));
                const int expected =
                    dep.kind == dsp::DepKind::Soft ? dep.penalty : 0;
                const int claimed = copack.copackDelay(early, late);
                if (claimed != expected) {
                    std::ostringstream msg;
                    msg << "packet " << p << ": packer claims "
                        << claimed << " stall cycle(s) for '"
                        << prog.code[early].toString() << "' -> '"
                        << prog.code[late].toString()
                        << "' but the dependency classifier says "
                        << expected;
                    report(DiagCode::LintDelayClaim, late, msg.str());
                }
            }
    }
    return findings;
}

} // namespace gcd2::analysis
