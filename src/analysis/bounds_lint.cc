/**
 * @file
 * Induction-range bounds analyzer (see analysis/lint.h).
 *
 * Kernel generators declare each noalias base register's buffer byte
 * extent (Program::noaliasExtents, mirroring the runner's allocation).
 * When the value flow fully resolves control and trip counts, the
 * range an access address takes across all loop iterations is *exact*:
 * every iteration vector in the box is realized, and every reachable
 * block executes (the counted-loop control shape has no conditional
 * skips). An access range escaping [0, extent) is therefore a certain
 * out-of-bounds access on a realized execution: Error LintOutOfBounds.
 *
 * Unknown extents (0), non-entry roots, top addresses, and programs
 * with unresolved control or trip counts produce no findings -- an
 * Error here must never be a guess.
 */
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "dsp/deps.h"

namespace gcd2::analysis {

using common::Diag;
using common::DiagCode;
using common::DiagSeverity;

size_t
analyzeBounds(const BlockGraph &graph, const ValueFlow &flow,
              std::vector<Diag> &diags)
{
    const dsp::Program &prog = *graph.program;
    if (!flow.converged || !flow.tripsResolved)
        return 0;

    // extentOf[r] > 0 iff r is a declared noalias base with known size.
    std::vector<int64_t> extentOf(dsp::kNumScalarRegs, 0);
    for (size_t i = 0;
         i < prog.noaliasRegs.size() && i < prog.noaliasExtents.size();
         ++i) {
        const int8_t reg = prog.noaliasRegs[i];
        if (reg >= 0 && reg < dsp::kNumScalarRegs)
            extentOf[reg] = std::max(extentOf[reg],
                                     prog.noaliasExtents[i]);
    }

    size_t findings = 0;
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        if (!graph.reachable[b])
            continue;
        VfWalker walker(graph, flow, static_cast<int>(b));
        for (size_t i : graph.scheduled[b]) {
            const dsp::Instruction &inst = prog.code[i];
            const int bytes = dsp::memAccessBytes(inst);
            if (bytes > 0 && inst.src[0].cls == dsp::RegClass::Scalar) {
                const VfValue addr =
                    walker.eval(inst.src[0]).plus(inst.imm);
                int64_t lo = 0;
                int64_t hi = 0;
                if (addr.isAffine() && addr.root >= 0 &&
                    addr.root < dsp::kNumScalarRegs &&
                    extentOf[addr.root] > 0 &&
                    vfValueRange(flow, addr, lo, hi)) {
                    const int64_t extent = extentOf[addr.root];
                    if (lo < 0 || hi > extent - bytes) {
                        const __int128 hiEnd =
                            static_cast<__int128>(hi) + bytes;
                        ++findings;
                        diags.push_back(Diag{
                            DiagSeverity::Error, "lint",
                            static_cast<int64_t>(i),
                            "access '" + inst.toString() +
                                "' provably reaches bytes [" +
                                std::to_string(lo) + ", " +
                                std::to_string(
                                    static_cast<long long>(hiEnd)) +
                                ") of buffer r" +
                                std::to_string(addr.root) +
                                " with declared extent " +
                                std::to_string(extent),
                            DiagCode::LintOutOfBounds});
                    }
                }
            }
            walker.step(i);
        }
    }
    return findings;
}

} // namespace gcd2::analysis
