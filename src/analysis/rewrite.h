/**
 * @file
 * Dead-code elimination over served packed programs.
 *
 * PR 5's dataflow lint layer only *warned* about dead stores in served
 * schedules; this pass closes the loop. It consumes the same backward-
 * liveness solution (analysis::deadInstructionMask), iterated to a
 * fixpoint so a value chain that only fed a dead result dies with it,
 * deletes the dead instructions from the underlying dsp::Program,
 * remaps branch labels, and re-packs the compacted program through the
 * process-wide vliw::PackCache. The rewritten schedule is only served
 * if it survives the full structural audit (vliw::auditSchedule) and a
 * re-lint showing zero remaining dead stores and zero Error findings;
 * otherwise the original program is returned untouched with a Warning
 * diagnostic -- graceful degradation, never a worse artifact.
 *
 * Determinism: the dead mask is a pure function of the input program,
 * the materialization walks instructions in original program order, and
 * PackCache keys by content -- so repeated compiles and any thread
 * count produce bit-identical rewritten schedules.
 */
#ifndef GCD2_ANALYSIS_REWRITE_H
#define GCD2_ANALYSIS_REWRITE_H

#include <memory>
#include <vector>

#include "common/diag.h"
#include "dsp/packet.h"
#include "vliw/packer.h"

namespace gcd2::analysis {

/** Outcome counters of one rewriteDeadCode run. */
struct DceStats
{
    /** Dead instructions deleted from the program. */
    size_t removedInstructions = 0;
    /** Net packets saved (original minus re-packed packet count). */
    size_t removedPackets = 0;
    /** Liveness fixpoint rounds (>= 1 when anything was removed). */
    int rounds = 0;
    /** True iff a rewritten program is being served. */
    bool rewritten = false;
};

/** A (possibly) rewritten schedule plus its provenance. */
struct DceResult
{
    /** The schedule to serve: rewritten, or the original on a no-op or
     *  a rejected rewrite. Never null when the input was non-null. */
    std::shared_ptr<const dsp::PackedProgram> program;
    DceStats stats;
    /** Rejection diagnostics (empty on no-op or clean rewrite). */
    std::vector<common::Diag> diags;
};

/**
 * Delete dead stores/packets from @p packed and re-pack under
 * @p packOptions (which must be the options the original was packed
 * with, so the rewritten schedule is policy-consistent).
 */
DceResult
rewriteDeadCode(std::shared_ptr<const dsp::PackedProgram> packed,
                const vliw::PackOptions &packOptions = {});

} // namespace gcd2::analysis

#endif // GCD2_ANALYSIS_REWRITE_H
