/**
 * @file
 * Dataflow lint layer over packed DSP programs.
 *
 * Four analyzers, all reporting through common::Diag with stable
 * DiagCodes (pass name "lint"):
 *
 *  - Use-before-def (use_def.cc): two forward dataflow problems over the
 *    scheduled instruction order. A read outside the *maybe*-assigned set
 *    (union meet) can never have been written on any path: Error
 *    LintUseBeforeDef. A read inside maybe- but outside the
 *    *definitely*-assigned set (intersection meet) is uninitialized on at
 *    least one path: Warning LintMaybeUninit. Registers declared in
 *    Program::noaliasRegs are entry-defined (the kernel buffer ABI),
 *    matching dsp::verifyProgram.
 *
 *  - Dead-store (use_def.cc): backward liveness. A side-effect-free
 *    instruction none of whose written registers are live afterwards is a
 *    dead store (Warning LintDeadStore); a packet made up entirely of
 *    dead instructions is a dead packet (Warning LintDeadPacket).
 *
 *  - Intra-packet hazards (hazards.cc): per-packet pair scan. Write-write
 *    register conflicts (Error LintWriteConflict), resource overcommit
 *    beyond the slot/unit model (Error LintSlotOvercommit), and a
 *    differential check of the packer's mask-based co-pack delay claims
 *    (dsp::CopackModel::copackDelay, the tables FastIdg embeds) against
 *    the ground-truth dsp::deps classification (Error LintDelayClaim) --
 *    deliberately *not* checked against the pruned FastIdg edge set,
 *    which would be circular.
 *
 *  - Noalias audit (noalias_audit.cc): whole-program symbolic address
 *    comparison over the value-flow lattice (analysis/valueflow.h).
 *    A store-involving access pair -- same block, across branches, or
 *    across loop iterations via induction terms -- whose addresses
 *    provably overlap while the alias oracle claims disjointness is a
 *    lying claim: Error LintNoaliasOverlap. Duplicate
 *    Program::noaliasRegs entries (two "disjoint" buffers with the same
 *    base) are Error LintNoaliasDupBase.
 *
 *  - Redundant load (redundant_load.cc): a load whose symbolic address
 *    value-numbers equal to a prior same-block load or store with no
 *    possibly-clobbering store in between re-reads a value the program
 *    already holds: Warning LintRedundantLoad (fodder for the rewrite /
 *    DCE machinery, never a correctness claim).
 *
 *  - Induction-range bounds (bounds_lint.cc): when control and trip
 *    counts are fully resolved, every access range off a declared
 *    noalias base with a known byte extent (Program::noaliasExtents) is
 *    exact; a range escaping the buffer is a provable out-of-bounds
 *    access on a realized iteration: Error LintOutOfBounds.
 *
 * Severity policy: only findings that prove a miscompile, a lying
 * oracle, or a certain out-of-bounds access are Errors;
 * maybe-uninitialized, dead and redundant code are Warnings so
 * conservatively generated kernels cannot fail CI on them.
 */
#ifndef GCD2_ANALYSIS_LINT_H
#define GCD2_ANALYSIS_LINT_H

#include <cstddef>
#include <functional>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/valueflow.h"
#include "common/diag.h"
#include "dsp/packet.h"

namespace gcd2::analysis {

/** Which analyzers to run and with what environment assumptions. */
struct LintOptions
{
    bool useBeforeDef = true;
    bool deadStore = true;
    bool hazards = true;
    bool noalias = true;
    bool redundantLoad = true;
    bool bounds = true;

    /**
     * Scalar registers holding valid values at program entry. When unset,
     * defaults to Program::noaliasRegs -- the kernel buffer ABI, the same
     * convention dsp::verifyProgram checks against.
     */
    const std::vector<int8_t> *entryDefinedRegs = nullptr;

    /**
     * The may-alias oracle whose claims the noalias audit cross-checks
     * (what the packer was told). When unset, a dsp::AliasAnalysis of the
     * program is built -- the production configuration. Tests inject
     * lying oracles here.
     */
    std::function<bool(size_t, size_t)> mayAliasClaim;
};

/** Finding counts, by analyzer and by severity. */
struct LintCounts
{
    size_t useBeforeDef = 0;
    size_t deadStore = 0;
    size_t hazards = 0;
    size_t noalias = 0;
    size_t redundantLoad = 0;
    size_t bounds = 0;
    size_t errors = 0;
    size_t warnings = 0;

    size_t total() const
    {
        return useBeforeDef + deadStore + hazards + noalias +
               redundantLoad + bounds;
    }
};

/** All findings of one lint run. */
struct LintResult
{
    std::vector<common::Diag> diags;
    LintCounts counts;

    common::DiagSeverity maxSeverity() const;
};

/** Run the enabled analyzers over @p packed. */
LintResult lintPackedProgram(const dsp::PackedProgram &packed,
                             const LintOptions &options = {});

// Individual analyzers (append to @p diags, return finding count) -----

size_t analyzeUseBeforeDef(const BlockGraph &graph,
                           const LintOptions &options,
                           std::vector<common::Diag> &diags);
size_t analyzeDeadStores(const BlockGraph &graph,
                         std::vector<common::Diag> &diags);

/**
 * Backward-liveness dead mask: dead[i] = 1 iff instruction i writes only
 * registers no path ever reads afterwards (and has no memory/control
 * effect). Instructions flagged in @p removed (optional) are treated as
 * already deleted -- their reads keep nothing alive -- which is what
 * lets rewriteDeadCode iterate the mask to a fixpoint. The single source
 * of truth behind both analyzeDeadStores and the DCE rewrite.
 */
std::vector<uint8_t>
deadInstructionMask(const BlockGraph &graph,
                    const std::vector<uint8_t> *removed = nullptr);
size_t analyzeHazards(const BlockGraph &graph,
                      std::vector<common::Diag> &diags);
size_t analyzeNoalias(const BlockGraph &graph, const ValueFlow &flow,
                      const LintOptions &options,
                      std::vector<common::Diag> &diags);
size_t analyzeRedundantLoads(const BlockGraph &graph,
                             const ValueFlow &flow,
                             std::vector<common::Diag> &diags);
size_t analyzeBounds(const BlockGraph &graph, const ValueFlow &flow,
                     std::vector<common::Diag> &diags);

} // namespace gcd2::analysis

#endif // GCD2_ANALYSIS_LINT_H
