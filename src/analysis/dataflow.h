/**
 * @file
 * Reusable dataflow engine over DSP programs.
 *
 * Two layers:
 *
 *  - A generic join-semilattice fixpoint solver (solveLattice). The
 *    problem supplies the lattice (init/boundary states, an edge-aware
 *    join, a per-block transfer, equality); the engine owns the visit
 *    order (round-robin over reverse postorder, reversed for backward
 *    problems), the fixpoint loop, and a round cap so non-monotone or
 *    infinite-height problems still terminate (converged == false).
 *
 *  - The classic gen/kill bit-vector instantiation (solveDataflow). The
 *    register files are small (32 scalar + 32 vector = 64 uids, see
 *    dsp::regUid), so a fact set over registers is one uint64_t and a
 *    whole analysis state is one word per basic block; forward/backward
 *    under union ("may") or intersection ("must") meet.
 *
 * Analyses run over the *scheduled* instruction order when a packed
 * program is given: the packer reorders instructions within a block
 * across packets, and what the analyzers verify is the program the
 * machine executes, not the program the code generator emitted.
 * BlockGraph therefore pairs every Cfg block with its instruction
 * sequence sorted by (packet, in-packet position). A BlockGraph can also
 * be built from a bare (unpacked) dsp::Program -- the scheduled order is
 * then simply program order and `packed` stays null -- which is what
 * lets pre-pack consumers (select::analyzeProgram) reuse the same
 * analyses.
 */
#ifndef GCD2_ANALYSIS_DATAFLOW_H
#define GCD2_ANALYSIS_DATAFLOW_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "dsp/packet.h"
#include "vliw/cfg.h"

namespace gcd2::analysis {

/** A set of register uids (bit i = uid i, scalars then vectors). */
using RegSet = uint64_t;

/** All 64 register uids. */
inline constexpr RegSet kAllRegs = ~RegSet{0};

/**
 * The control-flow structure of one program: Cfg blocks plus explicit
 * successor/predecessor edges, exit edges, a reverse-postorder visit
 * sequence, and the scheduled instruction sequence of every block.
 */
struct BlockGraph
{
    /** The underlying instruction sequence (always set for non-empty
     *  graphs; points into `packed` when one was given). */
    const dsp::Program *program = nullptr;
    /** The packed schedule, or null when built from a bare program. */
    const dsp::PackedProgram *packed = nullptr;
    vliw::Cfg cfg;
    std::vector<std::vector<int>> succs;
    std::vector<std::vector<int>> preds;
    /** Block b ends in (or falls through to) program exit. */
    std::vector<bool> exitEdge;
    /** Reverse postorder; blocks unreachable from entry appended last. */
    std::vector<int> rpo;
    /** Block b is reachable from the entry block. */
    std::vector<bool> reachable;
    /**
     * Per block: its instruction indices in scheduled order -- sorted by
     * (packet index, position in packet) when packed, program order
     * otherwise. Instructions missing from all packets (corrupt
     * schedules; the structural auditors flag them) sort last in
     * original program order so analyses stay total.
     */
    std::vector<std::vector<size_t>> scheduled;
    /** packetOf[i] = packet holding instruction i (SIZE_MAX = none). */
    std::vector<size_t> packetOf;

    size_t numBlocks() const { return cfg.blocks.size(); }

    /** Block containing instruction @p instIdx. */
    int blockOf(size_t instIdx) const;
};

/** Build the block graph of @p packed (empty program = empty graph). */
BlockGraph buildBlockGraph(const dsp::PackedProgram &packed);

/** Build the block graph of a bare @p prog: scheduled order is program
 *  order and `packed` is null. The caller keeps @p prog alive. */
BlockGraph buildBlockGraph(const dsp::Program &prog);

// Generic join-semilattice fixpoint engine ----------------------------

/** Solved states of a lattice problem, always in *program-order* sense:
 *  `in` holds at the top of the block, `out` at the bottom, for both
 *  directions. */
template <typename State>
struct LatticeResult
{
    std::vector<State> in;
    std::vector<State> out;
    /** Fixpoint rounds taken (bounded by loop depth + 2 for monotone
     *  finite-height problems). */
    int rounds = 0;
    /** False when the round cap fired before a fixpoint; callers must
     *  treat every state as unknown. */
    bool converged = true;
};

/**
 * Solve @p problem over @p graph by round-robin iteration to a fixpoint.
 *
 * The Problem contract:
 *
 *   using State = ...;
 *   bool forward() const;
 *   State init() const;       // join identity (bottom / top seed)
 *   State boundary() const;   // flows into entry (fwd) / exits (bwd)
 *   void joinEdge(State &acc, const State &src, int to, int from);
 *                             // fold src into acc; from == -1 for the
 *                             // boundary pseudo-edge. May be edge-aware
 *                             // (loop back edges, region exits).
 *   State transfer(int block, const State &in);
 *                             // may record side facts (trip counts)
 *   bool equal(const State &a, const State &b) const;
 *   int resetEnd(int block) const;
 *                             // when in[block] changes, blocks in
 *                             // (block, resetEnd] are reset to init()
 *                             // before the sweep continues -- lets
 *                             // loop-region problems discard stale
 *                             // body states instead of widening on
 *                             // transient mismatches. Return `block`
 *                             // for "no reset" (the common case).
 *
 * The problem is taken by reference and its transfer/joinEdge may
 * mutate problem-side fact tables; the engine itself only reads it.
 */
template <typename Problem>
LatticeResult<typename Problem::State>
solveLattice(const BlockGraph &graph, Problem &problem,
             int maxRounds = 128)
{
    using State = typename Problem::State;

    LatticeResult<State> result;
    const size_t numBlocks = graph.numBlocks();
    result.in.assign(numBlocks, problem.init());
    result.out.assign(numBlocks, problem.init());
    if (numBlocks == 0)
        return result;

    const bool forward = problem.forward();

    // Visit order: RPO for forward flows, reverse RPO for backward, so
    // acyclic graphs converge in one round and loops in depth + 2.
    std::vector<int> visit = graph.rpo;
    if (!forward)
        std::reverse(visit.begin(), visit.end());

    bool changed = true;
    while (changed) {
        if (result.rounds >= maxRounds) {
            result.converged = false;
            return result;
        }
        changed = false;
        ++result.rounds;
        for (int bi : visit) {
            const size_t b = static_cast<size_t>(bi);

            // Join the boundary fact set on entry (forward) / exit-edge
            // blocks (backward), then flow predecessors. The boundary
            // folds first so non-commutative edge-aware joins (loop
            // back edges folding against the entry-path value) always
            // see the boundary contribution in the accumulator.
            State met = problem.init();
            const bool atBoundary =
                forward ? b == 0 : graph.exitEdge[b] != false;
            if (atBoundary) {
                const State bnd = problem.boundary();
                problem.joinEdge(met, bnd, bi, -1);
            }
            const std::vector<int> &sources =
                forward ? graph.preds[b] : graph.succs[b];
            for (int s : sources)
                problem.joinEdge(met,
                                 forward ? result.out[static_cast<size_t>(s)]
                                         : result.in[static_cast<size_t>(s)],
                                 bi, s);

            State &inSet = forward ? result.in[b] : result.out[b];
            State &outSet = forward ? result.out[b] : result.in[b];
            State transferred = problem.transfer(bi, met);
            const bool inChanged = !problem.equal(met, inSet);
            if (inChanged || !problem.equal(transferred, outSet)) {
                inSet = std::move(met);
                outSet = std::move(transferred);
                changed = true;
                if (inChanged) {
                    const int last = problem.resetEnd(bi);
                    for (int rb = bi + 1; rb <= last; ++rb) {
                        result.in[static_cast<size_t>(rb)] = problem.init();
                        result.out[static_cast<size_t>(rb)] =
                            problem.init();
                    }
                }
            }
        }
    }
    return result;
}

// Gen/kill bit-vector instantiation -----------------------------------

/** One gen/kill dataflow problem over a BlockGraph. */
struct DataflowProblem
{
    enum class Direction : uint8_t { Forward, Backward };
    enum class Meet : uint8_t { Union, Intersect };

    Direction direction = Direction::Forward;
    Meet meet = Meet::Union;
    /**
     * Boundary fact set: flows into the entry block (Forward) or into
     * every block with an exit edge (Backward).
     */
    RegSet boundary = 0;
    /** Per block: facts generated by the block (in flow direction). */
    std::vector<RegSet> gen;
    /** Per block: facts killed by the block (in flow direction). */
    std::vector<RegSet> kill;
};

/** Solved in/out sets, always in *program-order* sense: `in` holds at
 *  the top of the block, `out` at the bottom, for both directions. */
struct DataflowResult
{
    std::vector<RegSet> in;
    std::vector<RegSet> out;
    /** Fixpoint rounds taken (diagnostics; bounded by loop depth + 2). */
    int rounds = 0;
};

/** Solve @p problem to its (unique) least/greatest fixpoint. */
DataflowResult solveDataflow(const BlockGraph &graph,
                             const DataflowProblem &problem);

} // namespace gcd2::analysis

#endif // GCD2_ANALYSIS_DATAFLOW_H
