#include "analysis/dataflow.h"

#include <algorithm>

#include "common/logging.h"

namespace gcd2::analysis {

int
BlockGraph::blockOf(size_t instIdx) const
{
    // Blocks are sorted half-open ranges; binary search on begin.
    int lo = 0;
    int hi = static_cast<int>(cfg.blocks.size()) - 1;
    while (lo <= hi) {
        const int mid = lo + (hi - lo) / 2;
        const vliw::BasicBlock &block = cfg.blocks[static_cast<size_t>(mid)];
        if (instIdx < block.begin)
            hi = mid - 1;
        else if (instIdx >= block.end)
            lo = mid + 1;
        else
            return mid;
    }
    return -1;
}

namespace {

void
postorder(const std::vector<std::vector<int>> &succs, int block,
          std::vector<uint8_t> &state, std::vector<int> &order)
{
    // Iterative DFS; blocks can number in the thousands for big kernels.
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(block, 0);
    state[static_cast<size_t>(block)] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const auto &out = succs[static_cast<size_t>(b)];
        if (next < out.size()) {
            const int s = out[next++];
            if (!state[static_cast<size_t>(s)]) {
                state[static_cast<size_t>(s)] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            order.push_back(b);
            stack.pop_back();
        }
    }
}

/** Everything except the schedule: blocks, edges, RPO, reachability. */
void
buildStructure(BlockGraph &graph, const dsp::Program &prog)
{
    graph.program = &prog;
    if (prog.code.empty())
        return;

    graph.cfg = vliw::buildCfg(prog);
    const size_t numBlocks = graph.cfg.blocks.size();
    graph.succs.resize(numBlocks);
    graph.preds.resize(numBlocks);
    graph.exitEdge.assign(numBlocks, false);

    for (size_t b = 0; b < numBlocks; ++b) {
        const vliw::BasicBlock &block = graph.cfg.blocks[b];
        const dsp::Instruction &last = prog.code[block.end - 1];
        auto addEdge = [&](size_t to) {
            graph.succs[b].push_back(static_cast<int>(to));
            graph.preds[to].push_back(static_cast<int>(b));
        };
        if (last.op != dsp::Opcode::JUMP) {
            if (b + 1 < numBlocks)
                addEdge(b + 1);
            else
                graph.exitEdge[b] = true;
        }
        if (last.isBranch()) {
            const size_t labelId = static_cast<size_t>(last.imm);
            GCD2_ASSERT(labelId < prog.labels.size(),
                        "branch to unknown label");
            const size_t target = prog.labels[labelId];
            if (target >= prog.code.size()) {
                graph.exitEdge[b] = true;
            } else {
                const int tb = graph.blockOf(target);
                GCD2_ASSERT(tb >= 0 &&
                                graph.cfg.blocks[static_cast<size_t>(tb)]
                                        .begin == target,
                            "branch target is not a block head");
                addEdge(static_cast<size_t>(tb));
            }
        }
    }

    // Reverse postorder from the entry block. Blocks unreachable from
    // entry (possible in hand-corrupted test programs) are appended in
    // program order so every block still gets visited.
    std::vector<uint8_t> state(numBlocks, 0);
    std::vector<int> post;
    post.reserve(numBlocks);
    postorder(graph.succs, 0, state, post);
    graph.rpo.assign(post.rbegin(), post.rend());
    for (size_t b = 0; b < numBlocks; ++b)
        if (!state[b])
            graph.rpo.push_back(static_cast<int>(b));
    graph.reachable.resize(numBlocks);
    for (size_t b = 0; b < numBlocks; ++b)
        graph.reachable[b] = state[b] != 0;
}

} // namespace

BlockGraph
buildBlockGraph(const dsp::PackedProgram &packed)
{
    BlockGraph graph;
    graph.packed = &packed;
    const dsp::Program &prog = packed.program;
    buildStructure(graph, prog);
    if (prog.code.empty())
        return graph;

    // Scheduled instruction order: sort each block's instructions by
    // (packet, position in packet). Unpacked instructions sort last.
    const size_t numBlocks = graph.numBlocks();
    graph.packetOf.assign(prog.code.size(), SIZE_MAX);
    std::vector<size_t> posInPacket(prog.code.size(), 0);
    for (size_t p = 0; p < packed.packets.size(); ++p)
        for (size_t k = 0; k < packed.packets[p].insts.size(); ++k) {
            const size_t idx = packed.packets[p].insts[k];
            if (idx < prog.code.size() && graph.packetOf[idx] == SIZE_MAX) {
                graph.packetOf[idx] = p;
                posInPacket[idx] = k;
            }
        }
    graph.scheduled.resize(numBlocks);
    for (size_t b = 0; b < numBlocks; ++b) {
        const vliw::BasicBlock &block = graph.cfg.blocks[b];
        std::vector<size_t> &order = graph.scheduled[b];
        order.reserve(block.size());
        for (size_t i = block.begin; i < block.end; ++i)
            order.push_back(i);
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t c) {
                             if (graph.packetOf[a] != graph.packetOf[c])
                                 return graph.packetOf[a] <
                                        graph.packetOf[c];
                             return posInPacket[a] < posInPacket[c];
                         });
    }
    return graph;
}

BlockGraph
buildBlockGraph(const dsp::Program &prog)
{
    BlockGraph graph;
    buildStructure(graph, prog);
    if (prog.code.empty())
        return graph;

    // No packets: the scheduled order of a bare program is program order.
    graph.packetOf.assign(prog.code.size(), SIZE_MAX);
    graph.scheduled.resize(graph.numBlocks());
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        const vliw::BasicBlock &block = graph.cfg.blocks[b];
        graph.scheduled[b].reserve(block.size());
        for (size_t i = block.begin; i < block.end; ++i)
            graph.scheduled[b].push_back(i);
    }
    return graph;
}

namespace {

/** The gen/kill bit-vector problem as a lattice-engine instantiation:
 *  the join identity doubles as the iteration seed (empty set for union
 *  meets, the full set for intersection meets) and the transfer is the
 *  classic gen | (in & ~kill). */
struct RegSetProblem
{
    using State = RegSet;

    const DataflowProblem &p;

    bool forward() const
    {
        return p.direction == DataflowProblem::Direction::Forward;
    }
    State init() const
    {
        return p.meet == DataflowProblem::Meet::Union ? RegSet{0}
                                                      : kAllRegs;
    }
    State boundary() const { return p.boundary; }
    void joinEdge(State &acc, const State &src, int, int) const
    {
        if (p.meet == DataflowProblem::Meet::Union)
            acc |= src;
        else
            acc &= src;
    }
    State transfer(int block, const State &in) const
    {
        const size_t b = static_cast<size_t>(block);
        return p.gen[b] | (in & ~p.kill[b]);
    }
    bool equal(const State &a, const State &b) const { return a == b; }
    int resetEnd(int block) const { return block; }
};

} // namespace

DataflowResult
solveDataflow(const BlockGraph &graph, const DataflowProblem &problem)
{
    GCD2_ASSERT(problem.gen.size() == graph.numBlocks() &&
                    problem.kill.size() == graph.numBlocks(),
                "gen/kill must cover every block");

    RegSetProblem adapted{problem};
    // Bitset transfers are monotone over a height-64 lattice, so the
    // engine's default round cap is unreachable.
    LatticeResult<RegSet> solved =
        solveLattice(graph, adapted, 1 << 20);
    GCD2_ASSERT(solved.converged, "gen/kill fixpoint must converge");

    DataflowResult result;
    result.in = std::move(solved.in);
    result.out = std::move(solved.out);
    result.rounds = solved.rounds;
    return result;
}

} // namespace gcd2::analysis
