#include "analysis/valueflow.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace gcd2::analysis {

namespace {

bool
addOv(int64_t a, int64_t b, int64_t *out)
{
    return __builtin_add_overflow(a, b, out);
}

bool
mulOv(int64_t a, int64_t b, int64_t *out)
{
    return __builtin_mul_overflow(a, b, out);
}

/** Absolute compile-time constant: const root, no induction terms. */
bool
isAbsConst(const VfValue &v)
{
    return v.isSingleton() && v.root == kVfConstRoot;
}

} // namespace

// VfValue -------------------------------------------------------------

int64_t
VfValue::strideOf(int loop) const
{
    for (int i = 0; i < numTerms; ++i)
        if (terms[static_cast<size_t>(i)].loop == loop)
            return terms[static_cast<size_t>(i)].stride;
    return 0;
}

bool
VfValue::sameShape(const VfValue &other) const
{
    if (!isAffine() || !other.isAffine() || root != other.root ||
        numTerms != other.numTerms)
        return false;
    for (int i = 0; i < numTerms; ++i)
        if (!(terms[static_cast<size_t>(i)] ==
              other.terms[static_cast<size_t>(i)]))
            return false;
    return true;
}

VfValue
VfValue::plus(int64_t delta) const
{
    if (!isAffine())
        return *this;
    VfValue out = *this;
    if (addOv(offset, delta, &out.offset))
        return top();
    return out;
}

VfValue
VfValue::withTerm(int loop, int64_t stride) const
{
    if (!isAffine() || stride == 0)
        return *this;
    if (numTerms == kVfMaxTerms)
        return top();
    VfValue out = *this;
    int pos = 0;
    while (pos < out.numTerms &&
           out.terms[static_cast<size_t>(pos)].loop < loop)
        ++pos;
    for (int i = out.numTerms; i > pos; --i)
        out.terms[static_cast<size_t>(i)] =
            out.terms[static_cast<size_t>(i - 1)];
    out.terms[static_cast<size_t>(pos)] = VfTerm{loop, stride};
    ++out.numTerms;
    return out;
}

VfValue
VfValue::withoutTerm(int loop) const
{
    if (!isAffine())
        return *this;
    VfValue out = *this;
    int w = 0;
    for (int i = 0; i < out.numTerms; ++i)
        if (out.terms[static_cast<size_t>(i)].loop != loop)
            out.terms[static_cast<size_t>(w++)] =
                out.terms[static_cast<size_t>(i)];
    for (int i = w; i < out.numTerms; ++i)
        out.terms[static_cast<size_t>(i)] = VfTerm{};
    out.numTerms = static_cast<uint8_t>(w);
    return out;
}

bool
VfValue::operator==(const VfValue &other) const
{
    if (kind != other.kind)
        return false;
    if (kind != Kind::Affine)
        return true;
    return offset == other.offset && sameShape(other);
}

std::string
VfValue::toString() const
{
    if (kind == Kind::Bottom)
        return "bot";
    if (kind == Kind::Top)
        return "top";
    std::string s;
    if (root == kVfConstRoot) {
        s = std::to_string(offset);
    } else {
        if (root < dsp::kNumScalarRegs)
            s = "r" + std::to_string(root);
        else
            s = "def@" + std::to_string(root - kVfFirstDefRoot);
        if (offset > 0)
            s += "+" + std::to_string(offset);
        else if (offset < 0)
            s += std::to_string(offset);
    }
    for (int i = 0; i < numTerms; ++i) {
        const VfTerm &t = terms[static_cast<size_t>(i)];
        if (t.stride >= 0)
            s += "+";
        s += std::to_string(t.stride) + "*t" + std::to_string(t.loop);
    }
    return s;
}

VfValue
vfJoin(const VfValue &a, const VfValue &b)
{
    if (a.kind == VfValue::Kind::Bottom)
        return b;
    if (b.kind == VfValue::Kind::Bottom)
        return a;
    if (a.kind == VfValue::Kind::Top || b.kind == VfValue::Kind::Top)
        return VfValue::top();
    return a == b ? a : VfValue::top();
}

// Per-instruction transfer --------------------------------------------

namespace {

/** Apply instruction @p instIdx to the scalar register state. Only the
 *  derivable shapes (MOVI/MOV/ADDI, ADD/SUB against an absolute
 *  constant) stay affine; every other scalar def gets a fresh def-site
 *  root. Vector defs are not tracked. */
void
applyInst(std::vector<VfValue> &state, const dsp::Program &prog,
          size_t instIdx)
{
    const dsp::Instruction &inst = prog.code[instIdx];
    const dsp::Operand &dst = inst.dst[0];
    if (dst.cls != dsp::RegClass::Scalar || dst.idx < 0 ||
        dst.idx >= dsp::kNumScalarRegs)
        return;
    const size_t d = static_cast<size_t>(dst.idx);
    const auto scalarSrc = [&](int i) -> const VfValue * {
        const dsp::Operand &op = inst.src[static_cast<size_t>(i)];
        if (op.cls != dsp::RegClass::Scalar || op.idx < 0 ||
            op.idx >= dsp::kNumScalarRegs)
            return nullptr;
        return &state[static_cast<size_t>(op.idx)];
    };

    switch (inst.op) {
    case dsp::Opcode::MOVI:
        state[d] = VfValue::base(kVfConstRoot, inst.imm);
        return;
    case dsp::Opcode::MOV:
        if (const VfValue *s = scalarSrc(0)) {
            state[d] = *s;
            return;
        }
        break;
    case dsp::Opcode::ADDI:
        if (const VfValue *s = scalarSrc(0)) {
            state[d] = s->plus(inst.imm);
            return;
        }
        break;
    case dsp::Opcode::ADD: {
        const VfValue *a = scalarSrc(0);
        const VfValue *b = scalarSrc(1);
        if (a && b) {
            if (isAbsConst(*b)) {
                state[d] = a->plus(b->offset);
                return;
            }
            if (isAbsConst(*a)) {
                state[d] = b->plus(a->offset);
                return;
            }
        }
        break;
    }
    case dsp::Opcode::SUB: {
        const VfValue *a = scalarSrc(0);
        const VfValue *b = scalarSrc(1);
        int64_t neg = 0;
        if (a && b && isAbsConst(*b) &&
            !__builtin_sub_overflow(int64_t{0}, b->offset, &neg)) {
            state[d] = a->plus(neg);
            return;
        }
        break;
    }
    default:
        break;
    }
    state[d] = VfValue::base(
        kVfFirstDefRoot + static_cast<int32_t>(instIdx));
}

// Loop discovery ------------------------------------------------------

/**
 * Recognize the counted-loop control shape: every branch is a backward
 * JUMPNZ on a scalar register targeting a block head, and the resulting
 * [head, tail] body intervals are well nested with unique heads. Any
 * other control flow (unconditional jumps, forward branches,
 * conditional exits, straddling or head-sharing intervals) returns
 * false and the analysis runs in the plain exact-or-top join mode.
 */
bool
discoverLoops(const BlockGraph &graph, std::vector<VfLoop> &loops)
{
    const dsp::Program &prog = *graph.program;
    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        const vliw::BasicBlock &block = graph.cfg.blocks[b];
        const dsp::Instruction &last = prog.code[block.end - 1];
        if (last.op == dsp::Opcode::JUMP)
            return false;
        if (last.op != dsp::Opcode::JUMPNZ)
            continue;
        if (last.src[0].cls != dsp::RegClass::Scalar ||
            last.src[0].idx < 0 ||
            last.src[0].idx >= dsp::kNumScalarRegs)
            return false;
        const size_t target =
            prog.labels[static_cast<size_t>(last.imm)];
        if (target >= prog.code.size() || target > block.end - 1)
            return false;
        const int head = graph.blockOf(target);
        GCD2_ASSERT(head >= 0, "loop target outside every block");
        VfLoop loop;
        loop.head = head;
        loop.tail = static_cast<int>(b);
        loop.startInst = graph.cfg.blocks[static_cast<size_t>(head)].begin;
        loop.branchInst = block.end - 1;
        loop.cond = last.src[0].idx;
        loops.push_back(loop);
    }

    // Outermost-first: by head ascending, containing interval first.
    std::sort(loops.begin(), loops.end(),
              [](const VfLoop &a, const VfLoop &b) {
                  if (a.head != b.head)
                      return a.head < b.head;
                  return a.tail > b.tail;
              });
    for (size_t i = 0; i < loops.size(); ++i)
        for (size_t j = i + 1; j < loops.size(); ++j) {
            if (loops[j].head == loops[i].head)
                return false; // shared head
            if (loops[j].head > loops[i].tail)
                continue; // disjoint
            if (loops[j].tail > loops[i].tail)
                return false; // straddling intervals
        }
    for (size_t i = 0; i < loops.size(); ++i) {
        loops[i].parent = -1;
        for (size_t j = 0; j < i; ++j)
            if (loops[j].head <= loops[i].head &&
                loops[i].tail <= loops[j].tail)
                loops[i].parent = static_cast<int>(j);
    }
    return true;
}

// The lattice problem -------------------------------------------------

struct ValueFlowProblem
{
    using State = std::vector<VfValue>;

    const BlockGraph &graph;
    std::vector<VfLoop> &loops;
    bool useLoops = false;
    /** Per block: innermost containing loop / loop tailed here / loop
     *  headed here, -1 when none. */
    std::vector<int> innerLoop;
    std::vector<int> tailLoop;
    std::vector<int> headLoop;

    ValueFlowProblem(const BlockGraph &g, std::vector<VfLoop> &l,
                     bool use)
        : graph(g), loops(l), useLoops(use)
    {
        const size_t n = graph.numBlocks();
        innerLoop.assign(n, -1);
        tailLoop.assign(n, -1);
        headLoop.assign(n, -1);
        if (!useLoops)
            return;
        for (size_t i = 0; i < loops.size(); ++i) {
            // Outermost-first order: inner loops overwrite.
            for (int b = loops[i].head; b <= loops[i].tail; ++b)
                innerLoop[static_cast<size_t>(b)] =
                    static_cast<int>(i);
            tailLoop[static_cast<size_t>(loops[i].tail)] =
                static_cast<int>(i);
            headLoop[static_cast<size_t>(loops[i].head)] =
                static_cast<int>(i);
        }
    }

    bool forward() const { return true; }
    State init() const
    {
        return State(static_cast<size_t>(dsp::kNumScalarRegs));
    }
    State boundary() const
    {
        State s(static_cast<size_t>(dsp::kNumScalarRegs));
        for (int r = 0; r < dsp::kNumScalarRegs; ++r)
            s[static_cast<size_t>(r)] = VfValue::base(r);
        return s;
    }
    bool equal(const State &a, const State &b) const { return a == b; }
    int resetEnd(int block) const
    {
        const int l = useLoops
                          ? headLoop[static_cast<size_t>(block)]
                          : -1;
        return l >= 0 ? loops[static_cast<size_t>(l)].tail : block;
    }

    bool contains(int loop, int block) const
    {
        const VfLoop &l = loops[static_cast<size_t>(loop)];
        return l.head <= block && block <= l.tail;
    }

    /**
     * Fold the back-edge value into the head accumulator for loop
     * @p loop. The accumulator holds the *entry-path* value (the engine
     * folds boundary and fall-through predecessors first, and it is
     * recomputed from scratch every round, so it never carries the
     * loop's own term):
     *
     *  - identical values are loop-invariant;
     *  - a constant offset delta on the same root and term list becomes
     *    the loop's induction term (first round the term forms);
     *  - a back value already carrying the loop's own term {loop, s}
     *    confirms it iff stripping the term leaves entry + s -- the
     *    head value H(t) = entry + s*t advanced one iteration is
     *    exactly H(t+1) = (entry + s) + s*t (the established-term
     *    fixpoint check);
     *  - anything else widens to top.
     */
    VfValue joinBackReg(const VfValue &base, const VfValue &back,
                        int loop) const
    {
        if (back.kind == VfValue::Kind::Bottom)
            return base;
        if (base.kind == VfValue::Kind::Bottom)
            return base; // no entry value yet; body is dead anyway
        if (base.kind == VfValue::Kind::Top ||
            back.kind == VfValue::Kind::Top ||
            base.strideOf(loop) != 0)
            return VfValue::top();
        const int64_t stride = back.strideOf(loop);
        if (stride != 0) {
            const VfValue expect = base.plus(stride);
            if (expect.isAffine() && back.withoutTerm(loop) == expect)
                return base.withTerm(loop, stride);
            return VfValue::top();
        }
        if (back == base)
            return base;
        int64_t delta = 0;
        if (back.sameShape(base) &&
            !__builtin_sub_overflow(back.offset, base.offset, &delta))
            return base.withTerm(loop, delta);
        return VfValue::top();
    }

    /** Leave loop @p loop: fold its term into the offset using the last
     *  iteration index (trips - 1); top when the trip count is unknown
     *  or the arithmetic overflows. */
    VfValue concretizeReg(const VfValue &v, int loop) const
    {
        if (!v.isAffine())
            return v;
        const int64_t stride = v.strideOf(loop);
        if (stride == 0)
            return v;
        const VfLoop &l = loops[static_cast<size_t>(loop)];
        if (!l.tripKnown || l.trips == 0 ||
            l.trips - 1 >
                static_cast<uint64_t>(
                    std::numeric_limits<int64_t>::max()))
            return VfValue::top();
        int64_t span = 0;
        if (mulOv(stride, static_cast<int64_t>(l.trips - 1), &span))
            return VfValue::top();
        VfValue out = v.withoutTerm(loop);
        if (addOv(out.offset, span, &out.offset))
            return VfValue::top();
        return out;
    }

    void joinEdge(State &acc, const State &src, int to, int from)
    {
        const size_t nregs = acc.size();
        if (useLoops && from >= 0) {
            const int lt = tailLoop[static_cast<size_t>(from)];
            if (lt >= 0 &&
                loops[static_cast<size_t>(lt)].head == to) {
                for (size_t r = 0; r < nregs; ++r)
                    acc[r] = joinBackReg(acc[r], src[r], lt);
                return;
            }
            int l = innerLoop[static_cast<size_t>(from)];
            if (l >= 0 && !contains(l, to)) {
                State adj = src;
                for (; l >= 0 && !contains(l, to);
                     l = loops[static_cast<size_t>(l)].parent)
                    for (size_t r = 0; r < nregs; ++r)
                        adj[r] = concretizeReg(adj[r], l);
                for (size_t r = 0; r < nregs; ++r)
                    acc[r] = vfJoin(acc[r], adj[r]);
                return;
            }
        }
        for (size_t r = 0; r < nregs; ++r)
            acc[r] = vfJoin(acc[r], src[r]);
    }

    /** Trip count of a do-while JUMPNZ whose counter holds @p v at the
     *  branch: an absolute constant C with a single own-loop term of
     *  stride s < 0, C >= 0, s | C runs C / -s + 1 iterations (the
     *  branch falls through when the counter hits zero); a literal zero
     *  runs once. Re-evaluated on every tail transfer so stale facts
     *  from earlier rounds never survive. */
    void resolveTrip(VfLoop &loop, int loopIdx, const State &state)
    {
        loop.tripKnown = false;
        loop.trips = 0;
        const VfValue &v = state[static_cast<size_t>(loop.cond)];
        if (!v.isAffine() || v.root != kVfConstRoot)
            return;
        if (v.numTerms == 0) {
            if (v.offset == 0) {
                loop.tripKnown = true;
                loop.trips = 1;
            }
            return;
        }
        if (v.numTerms != 1 || v.terms[0].loop != loopIdx)
            return;
        const int64_t stride = v.terms[0].stride;
        if (stride >= 0 || v.offset < 0 ||
            stride == std::numeric_limits<int64_t>::min())
            return;
        const int64_t step = -stride;
        if (v.offset % step != 0)
            return;
        loop.tripKnown = true;
        loop.trips = static_cast<uint64_t>(v.offset / step) + 1;
    }

    State transfer(int block, const State &in)
    {
        State state = in;
        const int lt =
            useLoops ? tailLoop[static_cast<size_t>(block)] : -1;
        for (size_t idx :
             graph.scheduled[static_cast<size_t>(block)]) {
            if (lt >= 0 &&
                idx == loops[static_cast<size_t>(lt)].branchInst)
                resolveTrip(loops[static_cast<size_t>(lt)], lt,
                            state);
            applyInst(state, *graph.program, idx);
        }
        return state;
    }
};

} // namespace

// Driver --------------------------------------------------------------

int
ValueFlow::loopOf(int block) const
{
    int found = -1;
    for (size_t i = 0; i < loops.size(); ++i)
        if (loops[i].head <= block && block <= loops[i].tail)
            found = static_cast<int>(i); // outermost-first: last wins
    return found;
}

ValueFlow
computeValueFlow(const BlockGraph &graph)
{
    ValueFlow flow;
    const size_t numBlocks = graph.numBlocks();
    if (numBlocks == 0) {
        flow.controlResolved = true;
        flow.tripsResolved = true;
        return flow;
    }
    GCD2_ASSERT(graph.program != nullptr,
                "value flow needs the underlying program");

    const bool useLoops = discoverLoops(graph, flow.loops);
    if (!useLoops)
        flow.loops.clear();

    ValueFlowProblem problem(graph, flow.loops, useLoops);
    // Head states advance through a short finite chain per register
    // (bottom, affine, one term per enclosing loop, top) and each
    // advance costs one body resweep, so real kernels converge in a
    // handful of rounds; the cap is a backstop for adversarial inputs.
    LatticeResult<ValueFlowProblem::State> solved =
        solveLattice(graph, problem, 512);
    flow.rounds = solved.rounds;
    flow.converged = solved.converged;
    if (!solved.converged) {
        // No fixpoint: degrade every fact to unknown.
        flow.loops.clear();
        flow.controlResolved = false;
        flow.tripsResolved = false;
        flow.in.assign(numBlocks,
                       std::vector<VfValue>(
                           static_cast<size_t>(dsp::kNumScalarRegs),
                           VfValue::top()));
        flow.out = flow.in;
        return flow;
    }
    flow.in = std::move(solved.in);
    flow.out = std::move(solved.out);
    flow.controlResolved = useLoops;
    flow.tripsResolved = useLoops;
    for (const VfLoop &loop : flow.loops)
        if (!loop.tripKnown)
            flow.tripsResolved = false;
    return flow;
}

// VfWalker ------------------------------------------------------------

VfWalker::VfWalker(const BlockGraph &graph, const ValueFlow &flow,
                   int block)
    : graph_(graph)
{
    if (block >= 0 && static_cast<size_t>(block) < flow.in.size())
        state_ = flow.in[static_cast<size_t>(block)];
    else
        state_.assign(static_cast<size_t>(dsp::kNumScalarRegs),
                      VfValue::top());
}

void
VfWalker::seedEntry()
{
    state_.assign(static_cast<size_t>(dsp::kNumScalarRegs),
                  VfValue{});
    for (int r = 0; r < dsp::kNumScalarRegs; ++r)
        state_[static_cast<size_t>(r)] = VfValue::base(r);
}

const VfValue &
VfWalker::reg(int reg) const
{
    GCD2_ASSERT(reg >= 0 && reg < dsp::kNumScalarRegs,
                "scalar register out of range");
    return state_[static_cast<size_t>(reg)];
}

VfValue
VfWalker::eval(const dsp::Operand &op) const
{
    if (op.cls != dsp::RegClass::Scalar || op.idx < 0 ||
        op.idx >= dsp::kNumScalarRegs)
        return VfValue::top();
    return state_[static_cast<size_t>(op.idx)];
}

void
VfWalker::step(size_t instIdx)
{
    applyInst(state_, *graph_.program, instIdx);
}

bool
vfValueRange(const ValueFlow &flow, const VfValue &value, int64_t &lo,
             int64_t &hi)
{
    if (!value.isAffine())
        return false;
    int64_t l = value.offset;
    int64_t h = value.offset;
    for (int i = 0; i < value.numTerms; ++i) {
        const VfTerm &t = value.terms[static_cast<size_t>(i)];
        if (t.loop < 0 ||
            static_cast<size_t>(t.loop) >= flow.loops.size())
            return false;
        const VfLoop &loop = flow.loops[static_cast<size_t>(t.loop)];
        if (!loop.tripKnown || loop.trips == 0 ||
            loop.trips - 1 >
                static_cast<uint64_t>(
                    std::numeric_limits<int64_t>::max()))
            return false;
        int64_t span = 0;
        if (mulOv(t.stride, static_cast<int64_t>(loop.trips - 1),
                  &span))
            return false;
        if (span >= 0) {
            if (addOv(h, span, &h))
                return false;
        } else {
            if (addOv(l, span, &l))
                return false;
        }
    }
    lo = l;
    hi = h;
    return true;
}

} // namespace gcd2::analysis
