/**
 * @file
 * Redundant-load analyzer (see analysis/lint.h).
 *
 * A load whose symbolic address value-numbers equal to an earlier load
 * or store in the same block -- same value-flow address, same access
 * width, and no possibly-clobbering store in between -- re-reads bytes
 * whose value the program already holds in a register. That is never a
 * correctness problem, so the finding is a Warning
 * (LintRedundantLoad): fodder for the rewrite / DCE machinery and a
 * code-quality signal for the kernel generators.
 *
 * Availability is deliberately block-local (a prior same-block access
 * dominates in scheduled order; no cross-block dominance machinery
 * needed) and invalidation is conservative: an intervening store kills
 * every available address it cannot be proven disjoint from -- proven
 * means same affine root with statically disjoint constant-distance
 * intervals. Stores with top addresses kill everything.
 */
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "dsp/deps.h"

namespace gcd2::analysis {

using common::Diag;
using common::DiagCode;
using common::DiagSeverity;

namespace {

/** One available memory value: the bytes at `addr` were loaded or
 *  stored by instruction `inst` and not clobbered since. */
struct AvailSlot
{
    size_t inst = 0;
    VfValue addr;
    int64_t bytes = 0;
};

/** Constant-distance disjointness: only same-root, same-term-shape
 *  addresses keep a provable distance. */
bool
provablyDisjoint(const VfValue &a, int64_t aBytes, const VfValue &b,
                 int64_t bBytes)
{
    if (!a.sameShape(b))
        return false;
    const __int128 a0 = a.offset;
    const __int128 b0 = b.offset;
    return a0 + aBytes <= b0 || b0 + bBytes <= a0;
}

} // namespace

size_t
analyzeRedundantLoads(const BlockGraph &graph, const ValueFlow &flow,
                      std::vector<Diag> &diags)
{
    const dsp::Program &prog = *graph.program;
    size_t findings = 0;

    for (size_t b = 0; b < graph.numBlocks(); ++b) {
        if (!graph.reachable[b])
            continue;
        VfWalker walker(graph, flow, static_cast<int>(b));
        std::vector<AvailSlot> avail;

        for (size_t i : graph.scheduled[b]) {
            const dsp::Instruction &inst = prog.code[i];
            const int bytes = dsp::memAccessBytes(inst);
            if (bytes > 0 && inst.src[0].cls == dsp::RegClass::Scalar) {
                const VfValue addr =
                    walker.eval(inst.src[0]).plus(inst.imm);
                const bool isStore =
                    inst.info().mem == dsp::MemKind::Store;

                if (!isStore && addr.isAffine()) {
                    for (const AvailSlot &slot : avail) {
                        if (slot.addr == addr && slot.bytes == bytes) {
                            ++findings;
                            diags.push_back(Diag{
                                DiagSeverity::Warning, "lint",
                                static_cast<int64_t>(i),
                                "load '" + inst.toString() +
                                    "' re-reads bytes made available "
                                    "by '" +
                                    prog.code[slot.inst].toString() +
                                    "' at address " + addr.toString(),
                                DiagCode::LintRedundantLoad});
                            break;
                        }
                    }
                }
                if (isStore) {
                    // Kill everything the store may touch.
                    if (!addr.isAffine()) {
                        avail.clear();
                    } else {
                        std::vector<AvailSlot> kept;
                        for (AvailSlot &slot : avail)
                            if (provablyDisjoint(slot.addr, slot.bytes,
                                                 addr, bytes))
                                kept.push_back(std::move(slot));
                        avail = std::move(kept);
                    }
                }
                if (addr.isAffine())
                    avail.push_back(AvailSlot{i, addr, bytes});
            }
            walker.step(i);
        }
    }
    return findings;
}

} // namespace gcd2::analysis
