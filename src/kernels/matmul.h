/**
 * @file
 * Matrix-multiplication kernel generators (Section III of the paper).
 *
 * One generator per SIMD multiply instruction, each demanding its layout:
 *
 *  - Vmpy / 1-column: per output column, walk K one column-vector at a
 *    time; each weight byte is splatted (LOADB + COMBINE4) and multiplied
 *    against 128 rows at once. Products are 16-bit pairs, shuffled back to
 *    row order and requantized with VASRHUB.
 *  - Vmpa / 2-column: k advances four columns per step using a vector pair
 *    (two interleaved column pairs); each vmpa retires 256 MACs. The two
 *    halves of the accumulator pair are folded with VADDH (paper: "the two
 *    corresponding output elements ... need to be further added").
 *  - Vrmpy / 4-column: each vector holds 32 rows x 4 columns; vrmpy
 *    accumulates 4-element dot products into 32-bit lanes, requantized
 *    through VASRWH + VASRHUB with word/halfword shuffles restoring the
 *    4-column output order.
 *
 * Data types follow the quantized pipeline: uint8 activations x int8
 * weights, 16-bit (vmpy/vmpa) or 32-bit (vrmpy) accumulation, uint8
 * output. C = requantize(A x W).
 *
 * Unrolling (Section IV-C "Impact of Unrolling"): `unrollOut` replicates
 * the row-panel body (loop-overhead amortization only), `unrollCols`
 * widens the output-column tile (more live accumulators = more ILP, until
 * registers spill), `unrollK` replicates the reduction step. Columns
 * beyond the accumulator register budget are spilled to scratch memory,
 * reproducing the performance fall-off at large factors (Fig. 12).
 */
#ifndef GCD2_KERNELS_MATMUL_H
#define GCD2_KERNELS_MATMUL_H

#include <cstdint>
#include <vector>

#include "dsp/isa.h"
#include "tensor/layout.h"

namespace gcd2::kernels {

/** Which SIMD multiply implements the kernel. */
enum class MatMulScheme : uint8_t { Vmpy, Vmpa, Vrmpy };

const char *schemeName(MatMulScheme scheme);

/** Activation layout required / produced by a scheme. */
tensor::Layout schemeLayout(MatMulScheme scheme);

/**
 * K elements consumed per inner-loop iteration of a scheme at a given
 * reduction unroll factor: the generator pads K up to a multiple of this
 * quantum and the inner loop runs paddedK() / quantum times. Vmpy walks
 * one K column per step; vmpa and vrmpy consume four interleaved columns
 * per step. The tiered cost model (select/tiered_cost.h) keys its
 * per-iteration affine fits on this quantum.
 */
int64_t kQuantum(MatMulScheme scheme, int unrollK);

/** Problem shape: C(M x N) = A(M x K) x W(K x N). */
struct MatMulShape
{
    int64_t m = 0;
    int64_t k = 0;
    int64_t n = 0;
};

/** Generator configuration. */
struct MatMulConfig
{
    MatMulScheme scheme = MatMulScheme::Vrmpy;
    int unrollOut = 1;  ///< row panels per outer-loop iteration
    int unrollCols = 1; ///< output-column tiles per mid-loop iteration
    int unrollK = 1;    ///< reduction steps per inner-loop iteration
    /** Requantization shift, 16-bit accumulator path (vmpy/vmpa). */
    int shift16 = 7;
    /** Requantization shifts, 32-bit path (vrmpy): word->half, half->byte. */
    int shiftWordHalf = 6;
    int shiftHalfByte = 4;
};

/**
 * Register conventions of every generated kernel: the harness sets
 *   r1 = packed activation base, r2 = packed weight base,
 *   r3 = packed output base, r4 = scratch base (spills),
 * then runs the program. All other registers are clobbered.
 */
struct KernelBuffers
{
    int64_t inputBytes = 0;
    int64_t weightBytes = 0;
    int64_t outputBytes = 0;
    int64_t scratchBytes = 0;
};

/** Scalar register numbers of the kernel ABI. */
inline constexpr int kRegInput = 1;
inline constexpr int kRegWeights = 2;
inline constexpr int kRegOutput = 3;
inline constexpr int kRegScratch = 4;

/**
 * Declare the kernel ABI registers noalias on @p prog, carrying the
 * exact extent the runner backs each segment with (the distance from
 * the segment base to the next segment's base under runner.cc's
 * 128-byte-aligned layout). The bounds lint proves accesses against
 * these extents. @p scratch controls whether r4 is declared (matmul
 * spills; conv/elementwise never touch scratch).
 */
void declareKernelNoalias(dsp::Program &prog, const KernelBuffers &buffers,
                          bool scratch);

/**
 * A generated MatMul kernel: the DSP program plus the host-side packing
 * glue and the exact-semantics reference.
 */
class MatMulKernel
{
  public:
    MatMulKernel(const MatMulShape &shape, const MatMulConfig &config);

    const dsp::Program &program() const { return prog_; }
    const KernelBuffers &buffers() const { return buffers_; }
    const MatMulShape &shape() const { return shape_; }
    const MatMulConfig &config() const { return config_; }

    /** Column-padded K / N the generator actually iterates over. */
    int64_t paddedK() const { return kp_; }
    int64_t paddedN() const { return np_; }
    int64_t paddedM() const { return mp_; }

    /** Inner-loop trip count: paddedK() / kQuantum(scheme, unrollK). */
    int64_t kIters() const
    {
        return kp_ / kQuantum(config_.scheme, config_.unrollK);
    }

    /** Pack a row-major uint8 activation matrix into the input buffer. */
    std::vector<uint8_t> packInput(const uint8_t *rowMajor) const;

    /** Pack a row-major int8 weight matrix into the weight buffer. */
    std::vector<uint8_t> packWeights(const int8_t *rowMajor) const;

    /** Unpack the packed uint8 output back to row-major M x N. */
    std::vector<uint8_t> unpackOutput(const uint8_t *packed) const;

    /**
     * Exact reference: same accumulation width, wraparound, and
     * requantization as the generated instructions, so simulator output
     * must match bit for bit.
     */
    static std::vector<uint8_t> reference(const uint8_t *a, const int8_t *w,
                                          const MatMulShape &shape,
                                          const MatMulConfig &config);

    /** Multiply-accumulate count of the logical problem (2*M*K*N ops). */
    int64_t macs() const { return shape_.m * shape_.k * shape_.n; }

  private:
    void generateVmpy();
    void generateVmpa();
    void generateVrmpy();

    MatMulShape shape_;
    MatMulConfig config_;
    int64_t mp_ = 0; ///< M padded to the scheme's panel height
    int64_t kp_ = 0; ///< K padded to column group x unrollK
    int64_t np_ = 0; ///< N padded to the output tile width
    dsp::Program prog_;
    KernelBuffers buffers_;
};

} // namespace gcd2::kernels

#endif // GCD2_KERNELS_MATMUL_H
