/**
 * @file
 * Loop-unrolling strategies (Section IV-C, "Impact of Unrolling").
 *
 * GCD2 uses a low-cost shape-adaptive heuristic: the output tensor shape
 * (skinny / near-square / fat) picks the unroll setting directly, instead
 * of an exhaustive search over factor combinations. The alternatives the
 * paper compares against in Fig. 12 are expressible here too: unrolling
 * only the outer-most loop (Out), only the mid loop (Mid), no unrolling,
 * and exhaustive search over a candidate grid.
 */
#ifndef GCD2_KERNELS_UNROLL_H
#define GCD2_KERNELS_UNROLL_H

#include <vector>

#include "kernels/matmul.h"

namespace gcd2::kernels {

/** One unroll setting: (outer panels, column tiles, k steps). */
struct UnrollChoice
{
    int outer = 1;
    int cols = 1;
    int k = 1;
};

/** The strategies compared in Fig. 12. */
enum class UnrollStrategy : uint8_t
{
    None,       ///< factor 1 everywhere
    Outer,      ///< unroll the outer-most (row panel) loop only
    Mid,        ///< unroll the mid (output column) loop only (factor 4)
    Mid2,       ///< fixed mid-loop factor 2 (library-default unrolling)
    Adaptive,   ///< GCD2: shape-adaptive selection
    Exhaustive, ///< search the candidate grid (expensive)
};

const char *unrollStrategyName(UnrollStrategy strategy);

/** Output-shape classes driving the adaptive heuristic. */
enum class OutputShapeClass : uint8_t { Skinny, NearSquare, Fat };

/** Classify an output matrix (M rows x N columns). */
OutputShapeClass classifyOutputShape(int64_t m, int64_t n);

/**
 * GCD2's shape-adaptive unroll choice for a matmul on @p scheme.
 * Skinny outputs (tall, few columns) lean on k-unrolling, fat outputs on
 * wide column tiles, near-square outputs on a balanced 4-4 setting.
 */
UnrollChoice adaptiveUnroll(const MatMulShape &shape, MatMulScheme scheme);

/** Candidate grid used by the Exhaustive strategy and Fig. 12 sweeps. */
std::vector<UnrollChoice> unrollCandidates();

/** Apply a choice to a config. */
MatMulConfig withUnroll(MatMulConfig config, const UnrollChoice &choice);

} // namespace gcd2::kernels

#endif // GCD2_KERNELS_UNROLL_H
