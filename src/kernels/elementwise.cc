#include "kernels/elementwise.h"

#include <algorithm>

#include "common/logging.h"

namespace gcd2::kernels {

namespace {

using dsp::Opcode;
using dsp::makeAddi;
using dsp::makeBinary;
using dsp::makeJumpNz;
using dsp::makeLoad;
using dsp::makeMov;
using dsp::makeMovi;
using dsp::makeStore;
using dsp::makeVecBinary;
using dsp::makeVload;
using dsp::makeVlut;
using dsp::makeVshuff;
using dsp::makeVsplatw;
using dsp::makeVstore;
using dsp::sreg;
using dsp::vreg;

constexpr int kRegCtr = 5;
constexpr int kRegIn = 6;
constexpr int kRegSecond = 7;
constexpr int kRegOut = 8;

int64_t
roundUp(int64_t v, int64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

uint32_t
byteSplat(int v)
{
    const uint32_t b = static_cast<uint32_t>(v) & 0xff;
    return b | (b << 8) | (b << 16) | (b << 24);
}

} // namespace

const char *
ewOpName(EwOp op)
{
    switch (op) {
      case EwOp::Add:
        return "add";
      case EwOp::MaxPool:
        return "maxpool";
      case EwOp::AvgPool:
        return "avgpool";
      case EwOp::Clamp:
        return "clamp";
      case EwOp::Requant:
        return "requant";
      case EwOp::Div:
        return "div";
      case EwOp::DivLut:
        return "div_lut";
      case EwOp::Lut:
        return "lut";
    }
    return "?";
}

ElementwiseKernel::ElementwiseKernel(const EwConfig &config)
    : config_(config)
{
    GCD2_REQUIRE(config.length > 0, "elementwise length must be positive");
    GCD2_REQUIRE(config.unroll >= 1, "unroll must be >= 1");
    GCD2_REQUIRE(config.denominator > 0, "denominator must be positive");

    if (config_.op == EwOp::Div || config_.op == EwOp::DivLut)
        generateScalarDiv();
    else
        generateVector();
}

int64_t
ElementwiseKernel::outputLength() const
{
    return (config_.op == EwOp::MaxPool || config_.op == EwOp::AvgPool)
               ? config_.length / 2
               : config_.length;
}

void
ElementwiseKernel::generateVector()
{
    const bool pooling =
        config_.op == EwOp::MaxPool || config_.op == EwOp::AvgPool;
    const int64_t bytesPerIterIn =
        (pooling ? 256 : 128) * config_.unroll;
    paddedLen_ = roundUp(config_.length, bytesPerIterIn);
    const int64_t iters = paddedLen_ / bytesPerIterIn;

    buffers_.inputBytes = paddedLen_;
    buffers_.weightBytes = config_.op == EwOp::Add
                               ? paddedLen_
                               : (config_.op == EwOp::Lut ? 256 : 0);
    buffers_.outputBytes = pooling ? paddedLen_ / 2 : paddedLen_;
    buffers_.scratchBytes = 0;
    declareKernelNoalias(prog_, buffers_, /*scratch=*/false);

    prog_.push(makeMovi(sreg(0), 0));
    prog_.push(makeMovi(sreg(kRegCtr), iters));
    prog_.push(makeMov(sreg(kRegIn), sreg(kRegInput)));
    prog_.push(makeMov(sreg(kRegSecond), sreg(kRegWeights)));
    prog_.push(makeMov(sreg(kRegOut), sreg(kRegOutput)));

    // Loop-invariant constant vectors.
    if (config_.op == EwOp::Lut) {
        // The 256-byte lookup table lives in the pair v30:v31.
        prog_.push(makeVload(vreg(30), sreg(kRegSecond), 0));
        prog_.push(makeVload(vreg(31), sreg(kRegSecond), 128));
    } else if (config_.op == EwOp::Clamp) {
        prog_.push(makeMovi(sreg(9),
                            static_cast<int64_t>(byteSplat(config_.clampLo))));
        prog_.push(makeVsplatw(vreg(30), sreg(9)));
        prog_.push(makeMovi(sreg(10),
                            static_cast<int64_t>(byteSplat(config_.clampHi))));
        prog_.push(makeVsplatw(vreg(31), sreg(10)));
    } else if (config_.op == EwOp::Requant) {
        prog_.push(makeVsplatw(vreg(29), sreg(0)));
    }

    const int loop = prog_.newLabel();
    prog_.bindLabel(loop);
    for (int u = 0; u < config_.unroll; ++u) {
        // Rotate temp banks so unrolled iterations are independent: eight
        // 3-register banks for the 1-in-1-out ops, four 6-register banks
        // (pair-aligned) for pooling.
        const bool pooling2 =
            config_.op == EwOp::MaxPool || config_.op == EwOp::AvgPool;
        const int base = pooling2 ? (u % 4) * 6 : (u % 8) * 3;
        const int64_t inOff =
            static_cast<int64_t>(u) * (pooling ? 256 : 128);
        const int64_t outOff = static_cast<int64_t>(u) * 128;
        switch (config_.op) {
          case EwOp::Add:
            prog_.push(makeVload(vreg(base), sreg(kRegIn), inOff));
            prog_.push(makeVload(vreg(base + 1), sreg(kRegSecond), inOff));
            prog_.push(makeVecBinary(Opcode::VAVGB, vreg(base + 2),
                                     vreg(base), vreg(base + 1)));
            prog_.push(makeVstore(sreg(kRegOut), vreg(base + 2), outOff));
            break;
          case EwOp::MaxPool:
          case EwOp::AvgPool: {
            prog_.push(makeVload(vreg(base), sreg(kRegIn), inOff));
            prog_.push(makeVload(vreg(base + 1), sreg(kRegIn),
                                 inOff + 128));
            prog_.push(makeVshuff(Opcode::VDEAL, vreg(base + 2),
                                  vreg(base), vreg(base + 1), 0));
            const Opcode combine = config_.op == EwOp::MaxPool
                                       ? Opcode::VMAXUB
                                       : Opcode::VAVGB;
            prog_.push(makeVecBinary(combine, vreg(base + 4),
                                     vreg(base + 2), vreg(base + 3)));
            prog_.push(makeVstore(sreg(kRegOut), vreg(base + 4), outOff));
            break;
          }
          case EwOp::Requant:
            prog_.push(makeVload(vreg(base), sreg(kRegIn), inOff));
            prog_.push(makeVecBinary(Opcode::VAVGB, vreg(base + 1),
                                     vreg(base), vreg(29)));
            prog_.push(makeVstore(sreg(kRegOut), vreg(base + 1), outOff));
            break;
          case EwOp::Clamp:
            prog_.push(makeVload(vreg(base), sreg(kRegIn), inOff));
            prog_.push(makeVecBinary(Opcode::VMAXUB, vreg(base + 1),
                                     vreg(base), vreg(30)));
            prog_.push(makeVecBinary(Opcode::VMINUB, vreg(base + 2),
                                     vreg(base + 1), vreg(31)));
            prog_.push(makeVstore(sreg(kRegOut), vreg(base + 2), outOff));
            break;
          case EwOp::Lut:
            prog_.push(makeVload(vreg(base), sreg(kRegIn), inOff));
            prog_.push(makeVlut(vreg(base + 1), vreg(30), vreg(base)));
            prog_.push(makeVstore(sreg(kRegOut), vreg(base + 1), outOff));
            break;
          case EwOp::Div:
          case EwOp::DivLut:
            GCD2_PANIC("scalar ops use generateScalarDiv");
        }
    }
    prog_.push(makeAddi(sreg(kRegIn), sreg(kRegIn), bytesPerIterIn));
    if (config_.op == EwOp::Add)
        prog_.push(makeAddi(sreg(kRegSecond), sreg(kRegSecond),
                            bytesPerIterIn));
    prog_.push(makeAddi(sreg(kRegOut), sreg(kRegOut),
                        static_cast<int64_t>(config_.unroll) * 128));
    prog_.push(makeAddi(sreg(kRegCtr), sreg(kRegCtr), -1));
    prog_.push(makeJumpNz(sreg(kRegCtr), loop));
}

void
ElementwiseKernel::generateScalarDiv()
{
    paddedLen_ = roundUp(config_.length, config_.unroll);
    const int64_t iters = paddedLen_ / config_.unroll;

    buffers_.inputBytes = paddedLen_;
    buffers_.weightBytes = config_.op == EwOp::DivLut ? 256 : 0;
    buffers_.outputBytes = paddedLen_;
    buffers_.scratchBytes = 0;
    declareKernelNoalias(prog_, buffers_, /*scratch=*/false);

    prog_.push(makeMovi(sreg(0), 0));
    prog_.push(makeMovi(sreg(kRegCtr), iters));
    prog_.push(makeMov(sreg(kRegIn), sreg(kRegInput)));
    prog_.push(makeMov(sreg(kRegSecond), sreg(kRegWeights))); // LUT base
    prog_.push(makeMov(sreg(kRegOut), sreg(kRegOutput)));
    prog_.push(makeMovi(sreg(11), config_.denominator));
    prog_.push(makeMovi(sreg(12), 0xff));

    const int loop = prog_.newLabel();
    prog_.bindLabel(loop);
    for (int u = 0; u < config_.unroll; ++u) {
        // Rotate over four scalar temp banks.
        const int t = 13 + 4 * (u % 4);
        prog_.push(makeLoad(Opcode::LOADB, sreg(t), sreg(kRegIn), u));
        if (config_.op == EwOp::Div) {
            prog_.push(makeBinary(Opcode::DIV, sreg(t + 1), sreg(t),
                                  sreg(11)));
            prog_.push(makeStore(Opcode::STOREB, sreg(kRegOut),
                                 sreg(t + 1), u));
        } else {
            // Zero-extend the byte, index the 256-entry lookup table.
            prog_.push(makeBinary(Opcode::AND, sreg(t + 1), sreg(t),
                                  sreg(12)));
            prog_.push(makeBinary(Opcode::ADD, sreg(t + 2),
                                  sreg(kRegSecond), sreg(t + 1)));
            prog_.push(makeLoad(Opcode::LOADB, sreg(t + 3), sreg(t + 2),
                                0));
            prog_.push(makeStore(Opcode::STOREB, sreg(kRegOut),
                                 sreg(t + 3), u));
        }
    }
    prog_.push(makeAddi(sreg(kRegIn), sreg(kRegIn), config_.unroll));
    prog_.push(makeAddi(sreg(kRegOut), sreg(kRegOut), config_.unroll));
    prog_.push(makeAddi(sreg(kRegCtr), sreg(kRegCtr), -1));
    prog_.push(makeJumpNz(sreg(kRegCtr), loop));
}

std::vector<uint8_t>
ElementwiseKernel::packInput(const uint8_t *data) const
{
    std::vector<uint8_t> out(static_cast<size_t>(buffers_.inputBytes), 0);
    std::copy(data, data + config_.length, out.begin());
    return out;
}

std::vector<uint8_t>
ElementwiseKernel::packSecond(const uint8_t *b) const
{
    if (config_.op == EwOp::Add) {
        GCD2_REQUIRE(b != nullptr, "Add needs a second operand");
        std::vector<uint8_t> out(static_cast<size_t>(buffers_.weightBytes),
                                 0);
        std::copy(b, b + config_.length, out.begin());
        return out;
    }
    if (config_.op == EwOp::Lut) {
        std::vector<uint8_t> table(256);
        for (int v = 0; v < 256; ++v)
            table[static_cast<size_t>(v)] =
                config_.table.empty() ? static_cast<uint8_t>(v)
                                      : config_.table[static_cast<size_t>(v)];
        return table;
    }
    if (config_.op == EwOp::DivLut) {
        // lut[v] = sign-extended(v) / denom: exactly what the DIV variant
        // computes, so both produce identical outputs.
        std::vector<uint8_t> lut(256);
        for (int v = 0; v < 256; ++v) {
            const auto sv = static_cast<int32_t>(static_cast<int8_t>(v));
            lut[static_cast<size_t>(v)] =
                static_cast<uint8_t>(sv / config_.denominator);
        }
        return lut;
    }
    return {};
}

std::vector<uint8_t>
ElementwiseKernel::unpackOutput(const uint8_t *packed) const
{
    return std::vector<uint8_t>(packed, packed + outputLength());
}

std::vector<uint8_t>
ElementwiseKernel::reference(const uint8_t *a, const uint8_t *b,
                             const EwConfig &config)
{
    const int64_t len = config.length;
    std::vector<uint8_t> out;
    switch (config.op) {
      case EwOp::Add:
        GCD2_REQUIRE(b != nullptr, "Add needs a second operand");
        out.resize(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i)
            out[static_cast<size_t>(i)] = static_cast<uint8_t>(
                (static_cast<uint32_t>(a[i]) + b[i] + 1) >> 1);
        break;
      case EwOp::MaxPool:
        out.resize(static_cast<size_t>(len / 2));
        for (int64_t i = 0; i < len / 2; ++i)
            out[static_cast<size_t>(i)] = std::max(a[2 * i], a[2 * i + 1]);
        break;
      case EwOp::AvgPool:
        out.resize(static_cast<size_t>(len / 2));
        for (int64_t i = 0; i < len / 2; ++i)
            out[static_cast<size_t>(i)] = static_cast<uint8_t>(
                (static_cast<uint32_t>(a[2 * i]) + a[2 * i + 1] + 1) >> 1);
        break;
      case EwOp::Clamp:
        out.resize(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i)
            out[static_cast<size_t>(i)] = static_cast<uint8_t>(
                std::clamp<int>(a[i], config.clampLo, config.clampHi));
        break;
      case EwOp::Requant:
        out.resize(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i)
            out[static_cast<size_t>(i)] =
                static_cast<uint8_t>((static_cast<uint32_t>(a[i]) + 1) >> 1);
        break;
      case EwOp::Div:
      case EwOp::DivLut:
        out.resize(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i) {
            const auto sv =
                static_cast<int32_t>(static_cast<int8_t>(a[i]));
            out[static_cast<size_t>(i)] =
                static_cast<uint8_t>(sv / config.denominator);
        }
        break;
      case EwOp::Lut:
        out.resize(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i)
            out[static_cast<size_t>(i)] =
                config.table.empty() ? a[i] : config.table[a[i]];
        break;
    }
    return out;
}

} // namespace gcd2::kernels
