/**
 * @file
 * Convolution kernel generators.
 *
 * Conv2D lowers onto the MatMul schemes through im2col: the input patch
 * matrix is A (M = outH*outW rows, K = inC*kH*kW columns) and the filter
 * bank is W (K x outC). The patch matrix is materialized at pack time by
 * the host (for 1x1 stride-1 convolutions it is the identity reshape);
 * its construction cost on-device is accounted by im2colCycles(), which
 * the cost model adds to the kernel cycles.
 *
 * Depthwise 3x3 convolutions use the dedicated triple-tap multiply
 * (vtmpy): one instruction filters 256 input pixels of a channel row into
 * 128 stride-2 outputs, accumulated over the three filter rows and
 * requantized with VASRHUB. Stride-1 kernels run an even and an odd vtmpy
 * phase (the odd phase reads the rows shifted one byte) and
 * byte-interleave the two requantized streams. The generator handles the
 * canonical 256-pixel-wide row tile; wider images are tiled by the
 * executor.
 */
#ifndef GCD2_KERNELS_CONV_H
#define GCD2_KERNELS_CONV_H

#include <cstdint>
#include <vector>

#include "kernels/matmul.h"

namespace gcd2::kernels {

/** Conv2D problem description (NCHW, batch 1). */
struct ConvShape
{
    int64_t inC = 0;
    int64_t inH = 0;
    int64_t inW = 0;
    int64_t outC = 0;
    int64_t kH = 1;
    int64_t kW = 1;
    int64_t strideH = 1;
    int64_t strideW = 1;
    int64_t padH = 0;
    int64_t padW = 0;

    int64_t outH() const { return (inH + 2 * padH - kH) / strideH + 1; }
    int64_t outW() const { return (inW + 2 * padW - kW) / strideW + 1; }

    /** Multiply-accumulates of the convolution. */
    int64_t
    macs() const
    {
        return outH() * outW() * outC * inC * kH * kW;
    }

    /** The equivalent im2col matmul shape. */
    MatMulShape
    matmulShape() const
    {
        return MatMulShape{outH() * outW(), inC * kH * kW, outC};
    }

    /** 1x1 stride-1 unpadded convolutions reshape for free. */
    bool
    isPointwise() const
    {
        return kH == 1 && kW == 1 && strideH == 1 && strideW == 1 &&
               padH == 0 && padW == 0;
    }
};

/**
 * Conv2D kernel: an im2col wrapper over MatMulKernel, sharing its
 * instruction-scheme configuration and exact reference semantics.
 */
class ConvKernel
{
  public:
    ConvKernel(const ConvShape &shape, const MatMulConfig &config);

    const dsp::Program &program() const { return matmul_.program(); }
    const KernelBuffers &buffers() const { return matmul_.buffers(); }
    const ConvShape &shape() const { return shape_; }
    const MatMulKernel &matmul() const { return matmul_; }

    /** Host-side im2col: NCHW input -> (outH*outW) x (inC*kH*kW). */
    std::vector<uint8_t> im2col(const uint8_t *nchw) const;

    /** im2col + layout packing into the kernel's input buffer. */
    std::vector<uint8_t> packInput(const uint8_t *nchw) const;

    /** OIHW filters -> K x N weight matrix -> packed weights. */
    std::vector<uint8_t> packWeights(const int8_t *oihw) const;

    /** Packed output -> NCHW (outC, outH, outW). */
    std::vector<uint8_t> unpackOutput(const uint8_t *packed) const;

    /**
     * Estimated cycles to materialize the patch matrix on-device (zero
     * for pointwise convolutions): every patch byte is moved through the
     * vector units once.
     */
    uint64_t im2colCycles() const;

    /** Exact reference (direct conv with scheme accumulation semantics). */
    static std::vector<uint8_t> reference(const uint8_t *nchw,
                                          const int8_t *oihw,
                                          const ConvShape &shape,
                                          const MatMulConfig &config);

  private:
    ConvShape shape_;
    MatMulKernel matmul_;
};

/**
 * Depthwise 3x3 configuration (canonical 256-wide row tile).
 *
 * stride 2 runs one vtmpy per filter row; stride 1 runs an even and an
 * odd vtmpy pass per filter row (the odd pass reads the input shifted by
 * one byte) and byte-interleaves the two result streams.
 */
struct DepthwiseConfig
{
    int64_t channels = 1;
    int64_t inH = 0;
    int64_t inW = 256; ///< <= 256, even; rows zero-padded in the buffer
    int64_t stride = 2; ///< 1 or 2 (both spatial dimensions)
    int shift16 = 7;    ///< requantization shift
    int unrollRows = 1;

    int64_t outH() const { return (inH - 3) / stride + 1; }
    int64_t
    outW() const
    {
        return stride == 2 ? inW / 2 : inW - 2;
    }
    int64_t macs() const { return channels * outH() * outW() * 9; }
};

/** Depthwise 3x3 kernel built on vtmpy. */
class DepthwiseKernel
{
  public:
    explicit DepthwiseKernel(const DepthwiseConfig &config);

    const dsp::Program &program() const { return prog_; }
    const KernelBuffers &buffers() const { return buffers_; }
    const DepthwiseConfig &config() const { return config_; }

    /** Channel-major (C, inH, 256) input with zero column padding. */
    std::vector<uint8_t> packInput(const uint8_t *chw) const;

    /** Per-channel 3x3 filters -> 3 coefficient words per channel. */
    std::vector<uint8_t> packWeights(const int8_t *c33) const;

    /** Raw output -> (C, outH, outW). */
    std::vector<uint8_t> unpackOutput(const uint8_t *packed) const;

    /** Exact reference (16-bit wrap per filter row, VASRHUB epilogue). */
    static std::vector<uint8_t> reference(const uint8_t *chw,
                                          const int8_t *c33,
                                          const DepthwiseConfig &config);

  private:
    DepthwiseConfig config_;
    dsp::Program prog_;
    KernelBuffers buffers_;
};

} // namespace gcd2::kernels

#endif // GCD2_KERNELS_CONV_H
