#include "kernels/unroll.h"

#include <algorithm>

namespace gcd2::kernels {

const char *
unrollStrategyName(UnrollStrategy strategy)
{
    switch (strategy) {
      case UnrollStrategy::None:
        return "none";
      case UnrollStrategy::Outer:
        return "out";
      case UnrollStrategy::Mid:
        return "mid";
      case UnrollStrategy::Mid2:
        return "mid2";
      case UnrollStrategy::Adaptive:
        return "gcd2";
      case UnrollStrategy::Exhaustive:
        return "exhaustive";
    }
    return "?";
}

OutputShapeClass
classifyOutputShape(int64_t m, int64_t n)
{
    if (n * 4 <= m)
        return OutputShapeClass::Skinny;
    if (m * 4 <= n)
        return OutputShapeClass::Fat;
    return OutputShapeClass::NearSquare;
}

UnrollChoice
adaptiveUnroll(const MatMulShape &shape, MatMulScheme scheme)
{
    // Columns consumed per unit of the column-tile factor.
    const int colsPerUnit = scheme == MatMulScheme::Vmpy  ? 1
                            : scheme == MatMulScheme::Vmpa ? 2
                                                           : 4;
    UnrollChoice choice;
    switch (classifyOutputShape(shape.m, shape.n)) {
      case OutputShapeClass::Skinny:
        // Few output columns: widen the reduction instead.
        choice = UnrollChoice{1, 2, 4};
        break;
      case OutputShapeClass::NearSquare:
        // The paper's exhaustive search lands on 4-4 here.
        choice = UnrollChoice{1, 4, 4};
        break;
      case OutputShapeClass::Fat:
        // Many output columns: maximize live accumulators (without
        // spilling) and keep k modest.
        choice = UnrollChoice{1, 8, 2};
        break;
    }

    // Never request more column tiles than the output provides, and stay
    // within the no-spill accumulator budget.
    const int maxTiles = static_cast<int>(
        std::max<int64_t>(1, (shape.n + colsPerUnit - 1) / colsPerUnit));
    choice.cols = std::min(choice.cols, maxTiles);
    const int noSpillLimit = scheme == MatMulScheme::Vmpy  ? 8
                             : scheme == MatMulScheme::Vmpa ? 4
                                                            : 4;
    choice.cols = std::min(choice.cols, noSpillLimit);

    // Keep k-unrolling within the reduction depth.
    const int kStep = scheme == MatMulScheme::Vmpy ? 1 : 4;
    const int maxK = static_cast<int>(
        std::max<int64_t>(1, (shape.k + kStep - 1) / kStep));
    choice.k = std::min(choice.k, maxK);
    return choice;
}

std::vector<UnrollChoice>
unrollCandidates()
{
    std::vector<UnrollChoice> grid;
    for (int outer : {1, 2})
        for (int cols : {1, 2, 4, 8})
            for (int k : {1, 2, 4, 8})
                grid.push_back(UnrollChoice{outer, cols, k});
    return grid;
}

MatMulConfig
withUnroll(MatMulConfig config, const UnrollChoice &choice)
{
    config.unrollOut = choice.outer;
    config.unrollCols = choice.cols;
    config.unrollK = choice.k;
    return config;
}

} // namespace gcd2::kernels
