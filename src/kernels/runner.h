/**
 * @file
 * Harness that executes generated kernels on the DSP simulator.
 *
 * Lays the kernel's buffers out in simulator memory (128-byte aligned
 * segments: input, weights, output, scratch), binds the kernel ABI
 * registers (r1..r4), packs the program with a chosen VLIW policy, runs
 * the timing simulator, and returns the raw output bytes plus the timing
 * statistics. Used by correctness tests, the cost model, and the bench
 * harnesses alike, so every reported cycle comes from the same path.
 *
 * Execution goes through TimingSimulator::run, i.e. the pre-decoded
 * engine (dsp/decoded.h) -- bit-identical to the reference interpreting
 * loop but several times faster, with repeated runs of the same program
 * hitting the process-wide DecodeCache. Packing likewise goes through the
 * process-wide vliw::PackCache, so re-probing the same kernel program
 * (across plans, partitions, and compiles) packs it once.
 */
#ifndef GCD2_KERNELS_RUNNER_H
#define GCD2_KERNELS_RUNNER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "dsp/timing_sim.h"
#include "kernels/matmul.h"
#include "vliw/packer.h"

namespace gcd2::kernels {

/** Result of one simulated kernel execution. */
struct KernelRunResult
{
    std::vector<uint8_t> output; ///< packed output buffer contents
    dsp::TimingStats stats;
    size_t staticPackets = 0; ///< packets in the scheduled program
    size_t staticInstructions = 0;
    /** The schedule that was executed (shared with the PackCache); the
     *  pipeline retains these so the audit pass can audit the programs
     *  actually served rather than a re-pack. */
    std::shared_ptr<const dsp::PackedProgram> packed;
};

/**
 * Execute an already-generated kernel program.
 *
 * @param prog kernel program following the r1..r4 buffer ABI
 * @param buffers buffer byte sizes (input/weights/output/scratch)
 * @param input packed input bytes (copied to the input segment)
 * @param weights packed weight bytes (may be empty)
 * @param packOpts VLIW packing policy for code generation
 * @param validate run full packed-program validation (slower; tests)
 */
KernelRunResult runKernel(const dsp::Program &prog,
                          const KernelBuffers &buffers,
                          const std::vector<uint8_t> &input,
                          const std::vector<uint8_t> &weights,
                          const vliw::PackOptions &packOpts = {},
                          bool validate = false);

/**
 * Execute an already-packed kernel program. Identical buffer layout and
 * ABI binding as runKernel, but the caller supplies the schedule instead
 * of going through the PackCache -- used by the tiered cost model, which
 * reuses one packet structure across structurally identical programs
 * (packet transplantation) and must time exactly the schedule it will
 * serve.
 */
KernelRunResult runPackedKernel(
    std::shared_ptr<const dsp::PackedProgram> packed,
    const KernelBuffers &buffers, const std::vector<uint8_t> &input,
    const std::vector<uint8_t> &weights, bool validate = false);

/**
 * Convenience wrapper: pack a row-major matmul, run it, unpack the
 * row-major result.
 */
struct MatMulRunResult
{
    std::vector<uint8_t> output; ///< row-major M x N
    dsp::TimingStats stats;
    size_t staticPackets = 0;
};

MatMulRunResult runMatMul(const MatMulKernel &kernel, const uint8_t *a,
                          const int8_t *w,
                          const vliw::PackOptions &packOpts = {},
                          bool validate = false);

} // namespace gcd2::kernels

#endif // GCD2_KERNELS_RUNNER_H
