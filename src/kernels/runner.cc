#include "kernels/runner.h"

#include "common/logging.h"
#include "dsp/verify.h"
#include "vliw/pack_cache.h"

namespace gcd2::kernels {

namespace {

int64_t
alignUp(int64_t v, int64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

} // namespace

KernelRunResult
runKernel(const dsp::Program &prog, const KernelBuffers &buffers,
          const std::vector<uint8_t> &input,
          const std::vector<uint8_t> &weights,
          const vliw::PackOptions &packOpts, bool validate)
{
    if (validate) {
        dsp::requireVerified(prog, {kRegInput, kRegWeights, kRegOutput,
                                    kRegScratch});
    }
    return runPackedKernel(
        vliw::PackCache::global().lookupOrPack(prog, packOpts), buffers,
        input, weights, validate);
}

KernelRunResult
runPackedKernel(std::shared_ptr<const dsp::PackedProgram> packed,
                const KernelBuffers &buffers,
                const std::vector<uint8_t> &input,
                const std::vector<uint8_t> &weights, bool validate)
{
    // Segment layout: | guard | input | weights | output | scratch |.
    const int64_t base = dsp::kVectorBytes;
    const int64_t inputBase = base;
    const int64_t weightBase =
        alignUp(inputBase + buffers.inputBytes, dsp::kVectorBytes);
    const int64_t outputBase =
        alignUp(weightBase + buffers.weightBytes, dsp::kVectorBytes);
    const int64_t scratchBase =
        alignUp(outputBase + buffers.outputBytes, dsp::kVectorBytes);
    const int64_t total =
        alignUp(scratchBase + buffers.scratchBytes + dsp::kVectorBytes,
                dsp::kVectorBytes);

    dsp::Memory mem(static_cast<size_t>(total));
    GCD2_REQUIRE(static_cast<int64_t>(input.size()) <= buffers.inputBytes,
                 "input larger than declared buffer");
    GCD2_REQUIRE(static_cast<int64_t>(weights.size()) <=
                     buffers.weightBytes,
                 "weights larger than declared buffer");
    if (!input.empty())
        mem.writeBytes(static_cast<uint64_t>(inputBase), input.data(),
                       input.size());
    if (!weights.empty())
        mem.writeBytes(static_cast<uint64_t>(weightBase), weights.data(),
                       weights.size());

    dsp::TimingSimulator sim(mem);
    sim.regs().scalar[kRegInput] = static_cast<uint32_t>(inputBase);
    sim.regs().scalar[kRegWeights] = static_cast<uint32_t>(weightBase);
    sim.regs().scalar[kRegOutput] = static_cast<uint32_t>(outputBase);
    sim.regs().scalar[kRegScratch] = static_cast<uint32_t>(scratchBase);

    KernelRunResult result;
    result.stats = sim.run(*packed, validate);
    result.staticPackets = packed->packets.size();
    result.staticInstructions = packed->program.code.size();
    result.packed = std::move(packed);
    result.output.resize(static_cast<size_t>(buffers.outputBytes));
    if (buffers.outputBytes > 0)
        mem.readBytes(static_cast<uint64_t>(outputBase),
                      result.output.data(), result.output.size());
    return result;
}

MatMulRunResult
runMatMul(const MatMulKernel &kernel, const uint8_t *a, const int8_t *w,
          const vliw::PackOptions &packOpts, bool validate)
{
    const auto input = kernel.packInput(a);
    const auto weights = kernel.packWeights(w);
    const KernelRunResult raw = runKernel(
        kernel.program(), kernel.buffers(), input, weights, packOpts,
        validate);

    MatMulRunResult result;
    result.output = kernel.unpackOutput(raw.output.data());
    result.stats = raw.stats;
    result.staticPackets = raw.staticPackets;
    return result;
}

} // namespace gcd2::kernels
