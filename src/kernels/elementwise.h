/**
 * @file
 * Elementwise / reduction-free kernel generators.
 *
 * These cover the non-matmul operators of the DNN graphs:
 *
 *  - Add: requantized residual addition of two uint8 tensors with equal
 *    scales, implemented with the rounding byte-average VAVGB (the
 *    standard multiplier-free form when out_scale = 2 * in_scale).
 *  - MaxPool / AvgPool: pairwise pooling along the innermost axis via
 *    VDEAL + VMAXUB / VAVGB; 2D pools apply it per axis.
 *  - Clamp: ReLU-style saturation to [lo, hi] via VMAXUB + VMINUB.
 *  - Requant: halving rescale (VAVGB with zero), modeling scale-change
 *    operators.
 *  - Div / DivLut: scalar division by a constant denominator, either with
 *    the slow DIV instruction or with the byte-indexed lookup table that
 *    the paper's "other optimizations" pass substitutes ("replacing an
 *    expensive division operation with a database lookup").
 *
 * ABI matches the matmul kernels: r1 = input, r2 = second input / LUT,
 * r3 = output, r4 = scratch.
 */
#ifndef GCD2_KERNELS_ELEMENTWISE_H
#define GCD2_KERNELS_ELEMENTWISE_H

#include <cstdint>
#include <vector>

#include "dsp/isa.h"
#include "kernels/matmul.h"

namespace gcd2::kernels {

/** Supported elementwise operations. */
enum class EwOp : uint8_t
{
    Add,     ///< out = avg(a, b) (requantized residual add)
    MaxPool, ///< out[i] = max(a[2i], a[2i+1])
    AvgPool, ///< out[i] = avg(a[2i], a[2i+1])
    Clamp,   ///< out = min(max(a, lo), hi)
    Requant, ///< out = (a + 1) >> 1
    Div,     ///< out = a / denom (scalar DIV instruction)
    DivLut,  ///< out = lut[a] with lut[v] = v / denom
    Lut,     ///< out = table[a] via the vector VLUT instruction
             ///< (quantized sigmoid / tanh / gelu / pow nonlinearities)
};

const char *ewOpName(EwOp op);

/** Configuration for the elementwise generator. */
struct EwConfig
{
    EwOp op = EwOp::Add;
    int64_t length = 0; ///< elements (bytes) of the input
    int unroll = 2;     ///< vectors (or scalar elements) per iteration
    int clampLo = 0;    ///< Clamp bounds
    int clampHi = 255;
    int denominator = 8; ///< Div / DivLut divisor (positive)
    /** 256-entry table for EwOp::Lut (identity if empty). */
    std::vector<uint8_t> table;
};

/** An elementwise kernel with packing glue and host reference. */
class ElementwiseKernel
{
  public:
    explicit ElementwiseKernel(const EwConfig &config);

    const dsp::Program &program() const { return prog_; }
    const KernelBuffers &buffers() const { return buffers_; }
    const EwConfig &config() const { return config_; }

    /** Number of output elements. */
    int64_t outputLength() const;

    /** Zero-padded copy of a flat input for the input segment. */
    std::vector<uint8_t> packInput(const uint8_t *data) const;

    /**
     * Contents of the second buffer: the second operand for Add, the
     * 256-entry lookup table for DivLut, empty otherwise.
     */
    std::vector<uint8_t> packSecond(const uint8_t *b) const;

    /** First outputLength() bytes of the raw output segment. */
    std::vector<uint8_t> unpackOutput(const uint8_t *packed) const;

    /** Host reference with identical integer semantics. */
    static std::vector<uint8_t> reference(const uint8_t *a,
                                          const uint8_t *b,
                                          const EwConfig &config);

  private:
    void generateVector();
    void generateScalarDiv();

    EwConfig config_;
    int64_t paddedLen_ = 0;
    dsp::Program prog_;
    KernelBuffers buffers_;
};

} // namespace gcd2::kernels

#endif // GCD2_KERNELS_ELEMENTWISE_H
