#include "kernels/matmul.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/quant.h"

namespace gcd2::kernels {

namespace {

using dsp::Opcode;
using dsp::Program;
using dsp::makeAddi;
using dsp::makeCombine4;
using dsp::makeJumpNz;
using dsp::makeLoad;
using dsp::makeMov;
using dsp::makeMovi;
using dsp::makeVasr;
using dsp::makeVecBinary;
using dsp::makeVload;
using dsp::makeVmpa;
using dsp::makeVmpy;
using dsp::makeVrmpy;
using dsp::makeVshuff;
using dsp::makeVsplatw;
using dsp::makeVstore;
using dsp::sreg;
using dsp::vreg;

// Scalar register allocation (beyond the ABI registers r1-r4; r0 is zero).
constexpr int kRegPanelCtr = 5;
constexpr int kRegTileCtr = 6;
constexpr int kRegKCtr = 7;
constexpr int kRegAPanel = 8;
constexpr int kRegWTile = 9;
constexpr int kRegCPanel = 10;
constexpr int kRegCCol = 11;
constexpr int kRegAK = 12;
constexpr int kRegWK = 13;
constexpr int kRegWTemp = 14; // r14..r21: four (load, combine) pairs
constexpr int kRegKTrip = 22; // inner trip count, hoisted out of the nest

// Vector register allocation: v0/v1 (and v30/v31) stage inputs, v2..v17
// hold accumulators, v18/v19 stage spilled accumulators, v20..v29 are
// epilogue temporaries.
constexpr int kFirstAccReg = 2;
constexpr int kAccRegCount = 16;
constexpr int kSpillStage = 18;

int64_t
roundUp(int64_t v, int64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

} // namespace

void
declareKernelNoalias(Program &prog, const KernelBuffers &buffers,
                     bool scratch)
{
    // Extents mirror the runner's segment layout (runner.cc):
    // | guard | input | weights | output | scratch |, every base aligned
    // up to the vector width with one trailing guard vector after
    // scratch -- so each base register may address up to the next
    // segment's base. A zero extent means "size unknown" to the lint.
    prog.declareNoalias(kRegInput,
                        roundUp(buffers.inputBytes, dsp::kVectorBytes));
    prog.declareNoalias(kRegWeights,
                        roundUp(buffers.weightBytes, dsp::kVectorBytes));
    prog.declareNoalias(kRegOutput,
                        roundUp(buffers.outputBytes, dsp::kVectorBytes));
    if (scratch)
        prog.declareNoalias(kRegScratch,
                            roundUp(buffers.scratchBytes +
                                        dsp::kVectorBytes,
                                    dsp::kVectorBytes));
}

const char *
schemeName(MatMulScheme scheme)
{
    switch (scheme) {
      case MatMulScheme::Vmpy:
        return "vmpy";
      case MatMulScheme::Vmpa:
        return "vmpa";
      case MatMulScheme::Vrmpy:
        return "vrmpy";
    }
    return "?";
}

int64_t
kQuantum(MatMulScheme scheme, int unrollK)
{
    // Mirrors the padding in generateVmpy / generateVmpa / generateVrmpy:
    // kp_ = roundUp(k, quantum) and the inner loop runs kp_ / quantum
    // times (vmpy steps one K column, vmpa/vrmpy step four).
    switch (scheme) {
      case MatMulScheme::Vmpy:
        return unrollK;
      case MatMulScheme::Vmpa:
      case MatMulScheme::Vrmpy:
        return 4 * static_cast<int64_t>(unrollK);
    }
    return unrollK;
}

tensor::Layout
schemeLayout(MatMulScheme scheme)
{
    switch (scheme) {
      case MatMulScheme::Vmpy:
        return tensor::Layout::OneColumn;
      case MatMulScheme::Vmpa:
        return tensor::Layout::TwoColumn;
      case MatMulScheme::Vrmpy:
        return tensor::Layout::FourColumn;
    }
    return tensor::Layout::RowMajor;
}

MatMulKernel::MatMulKernel(const MatMulShape &shape,
                           const MatMulConfig &config)
    : shape_(shape), config_(config)
{
    GCD2_REQUIRE(shape.m > 0 && shape.k > 0 && shape.n > 0,
                 "matmul shape must be positive");
    GCD2_REQUIRE(config.unrollOut >= 1 && config.unrollCols >= 1 &&
                     config.unrollK >= 1,
                 "unroll factors must be >= 1");

    switch (config_.scheme) {
      case MatMulScheme::Vmpy:
        generateVmpy();
        break;
      case MatMulScheme::Vmpa:
        generateVmpa();
        break;
      case MatMulScheme::Vrmpy:
        generateVrmpy();
        break;
    }
}

namespace {

/**
 * Shared loop-nest emitter. The three schemes differ only in the panel
 * height, k step, columns per tile, the inner multiply sequence, and the
 * requantization epilogue; this driver owns the loop/pointer scaffolding.
 */
class LoopNestBuilder
{
  public:
    struct Params
    {
        int64_t panels;       ///< outer trip count (already / unrollOut)
        int64_t colTiles;     ///< mid trip count
        int64_t kIters;       ///< inner trip count (already / unrollK)
        int unrollOut;
        int64_t aPanelStride; ///< bytes per panel of packed A
        int64_t cPanelStride; ///< bytes per panel of packed C
        int64_t wTileStride;  ///< bytes per column tile of packed W
        int64_t cTileStride;  ///< bytes per column tile of packed C
        int64_t aKStep;       ///< A pointer bytes per inner iteration
        int64_t wKStep;       ///< W pointer bytes per inner iteration
    };

    LoopNestBuilder(Program &prog, const Params &params)
        : prog_(prog), p_(params)
    {
    }

    /**
     * Emit the full nest. @p zeroAccs, @p body and @p epilogue are invoked
     * per unrollOut replica with the replica index o; the body is also
     * given the inner unroll step u.
     */
    template <typename ZeroFn, typename BodyFn, typename EpilogueFn>
    void
    emit(int unrollK, ZeroFn zeroAccs, BodyFn body, EpilogueFn epilogue)
    {
        prog_.push(makeMovi(sreg(0), 0));
        prog_.push(makeMovi(sreg(kRegPanelCtr), p_.panels));
        // The inner trip count is loop-invariant: materialize it once and
        // reload the counter from the register inside the nest. The
        // value-flow analysis still certifies the trip count (the MOV
        // copies an absolute constant), and the idiom exercises the
        // register-trip path end to end.
        prog_.push(makeMovi(sreg(kRegKTrip), p_.kIters));
        prog_.push(makeMov(sreg(kRegAPanel), sreg(kRegInput)));
        prog_.push(makeMov(sreg(kRegCPanel), sreg(kRegOutput)));

        const int panelLabel = prog_.newLabel();
        prog_.bindLabel(panelLabel);
        prog_.push(makeMovi(sreg(kRegTileCtr), p_.colTiles));
        prog_.push(makeMov(sreg(kRegWTile), sreg(kRegWeights)));
        prog_.push(makeMov(sreg(kRegCCol), sreg(kRegCPanel)));

        const int tileLabel = prog_.newLabel();
        prog_.bindLabel(tileLabel);
        for (int o = 0; o < p_.unrollOut; ++o) {
            zeroAccs(o);
            prog_.push(makeMov(sreg(kRegKCtr), sreg(kRegKTrip)));
            prog_.push(makeMov(sreg(kRegAK), sreg(kRegAPanel)));
            prog_.push(makeMov(sreg(kRegWK), sreg(kRegWTile)));

            const int kLabel = prog_.newLabel();
            prog_.bindLabel(kLabel);
            for (int u = 0; u < unrollK; ++u)
                body(o, u);
            prog_.push(makeAddi(sreg(kRegAK), sreg(kRegAK),
                                p_.aKStep * unrollK));
            prog_.push(makeAddi(sreg(kRegWK), sreg(kRegWK),
                                p_.wKStep * unrollK));
            prog_.push(makeAddi(sreg(kRegKCtr), sreg(kRegKCtr), -1));
            prog_.push(makeJumpNz(sreg(kRegKCtr), kLabel));

            epilogue(o);
        }
        prog_.push(makeAddi(sreg(kRegWTile), sreg(kRegWTile),
                            p_.wTileStride));
        prog_.push(makeAddi(sreg(kRegCCol), sreg(kRegCCol), p_.cTileStride));
        prog_.push(makeAddi(sreg(kRegTileCtr), sreg(kRegTileCtr), -1));
        prog_.push(makeJumpNz(sreg(kRegTileCtr), tileLabel));

        prog_.push(makeAddi(sreg(kRegAPanel), sreg(kRegAPanel),
                            p_.aPanelStride * p_.unrollOut));
        prog_.push(makeAddi(sreg(kRegCPanel), sreg(kRegCPanel),
                            p_.cPanelStride * p_.unrollOut));
        prog_.push(makeAddi(sreg(kRegPanelCtr), sreg(kRegPanelCtr), -1));
        prog_.push(makeJumpNz(sreg(kRegPanelCtr), panelLabel));
    }

  private:
    Program &prog_;
    Params p_;
};

/** Weight-staging scalar register pair for the t-th rotation slot. */
struct WTemp
{
    int loadReg;
    int packedReg;
};

WTemp
wtemp(int t)
{
    return WTemp{kRegWTemp + 2 * (t % 4), kRegWTemp + 2 * (t % 4) + 1};
}

} // namespace

void
MatMulKernel::generateVmpy()
{
    const int uo = config_.unrollOut;
    const int un = config_.unrollCols;
    const int uk = config_.unrollK;

    mp_ = roundUp(shape_.m, 128 * uo);
    kp_ = roundUp(shape_.k, uk);
    np_ = roundUp(shape_.n, un);

    const int64_t panels = mp_ / (128 * uo);
    const int64_t colTiles = np_ / un;
    const int64_t kIters = kp_ / uk;

    const int maxAccPairs = kAccRegCount / 2; // 8 live column accumulators
    const int spillCols = std::max(0, un - maxAccPairs);

    buffers_.inputBytes = mp_ * kp_;
    // vmpy splats one weight across a whole vector; the compile-time
    // weight packer pre-replicates every weight byte into a 4-byte word so
    // the kernel needs a single LOADW per (column, k) instead of a
    // load + splat pair (the "pre-designed" layouts of Section III).
    buffers_.weightBytes = np_ * kp_ * 4;
    buffers_.outputBytes = mp_ * np_;
    buffers_.scratchBytes = static_cast<int64_t>(spillCols) * 256;
    declareKernelNoalias(prog_, buffers_, /*scratch=*/true);

    LoopNestBuilder::Params params;
    params.panels = panels;
    params.colTiles = colTiles;
    params.kIters = kIters;
    params.unrollOut = uo;
    params.aPanelStride = 128 * kp_;
    params.cPanelStride = 128 * np_;
    params.wTileStride = static_cast<int64_t>(un) * kp_ * 4;
    params.cTileStride = static_cast<int64_t>(un) * 128;
    params.aKStep = 128;
    params.wKStep = 4;

    auto accPair = [&](int j) { return kFirstAccReg + 2 * j; };
    auto spilled = [&](int j) { return j >= maxAccPairs; };
    auto spillOff = [&](int j) {
        return static_cast<int64_t>(j - maxAccPairs) * 256;
    };

    LoopNestBuilder nest(prog_, params);
    nest.emit(
        uk,
        // Zero the accumulators (spilled columns live in scratch).
        [&](int) {
            for (int j = 0; j < un; ++j) {
                if (!spilled(j)) {
                    prog_.push(makeVsplatw(vreg(accPair(j)), sreg(0)));
                    prog_.push(makeVsplatw(vreg(accPair(j) + 1), sreg(0)));
                } else {
                    prog_.push(makeVsplatw(vreg(kSpillStage), sreg(0)));
                    prog_.push(makeVsplatw(vreg(kSpillStage + 1), sreg(0)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage), spillOff(j)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage + 1),
                                          spillOff(j) + 128));
                }
            }
        },
        // Inner body: one activation column vector feeds all tile columns.
        [&](int o, int u) {
            const int in = u % 2; // v0 / v1 rotation
            prog_.push(makeVload(vreg(in), sreg(kRegAK),
                                 u * 128 + static_cast<int64_t>(o) * 128 *
                                               kp_));
            for (int j = 0; j < un; ++j) {
                const WTemp w = wtemp(u * un + j);
                prog_.push(makeLoad(Opcode::LOADW, sreg(w.packedReg),
                                    sreg(kRegWK),
                                    (static_cast<int64_t>(j) * kp_ + u) *
                                        4));
                if (!spilled(j)) {
                    prog_.push(makeVmpy(Opcode::VMPYACC, vreg(accPair(j)),
                                        vreg(in), sreg(w.packedReg)));
                } else {
                    prog_.push(makeVload(vreg(kSpillStage),
                                         sreg(kRegScratch), spillOff(j)));
                    prog_.push(makeVload(vreg(kSpillStage + 1),
                                         sreg(kRegScratch),
                                         spillOff(j) + 128));
                    prog_.push(makeVmpy(Opcode::VMPYACC, vreg(kSpillStage),
                                        vreg(in), sreg(w.packedReg)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage), spillOff(j)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage + 1),
                                          spillOff(j) + 128));
                }
            }
        },
        // Epilogue: reorder even/odd products, requantize, store.
        [&](int o) {
            for (int j = 0; j < un; ++j) {
                const int shuffBase = (j % 2 == 0) ? 20 : 24;
                const int asrDst = (j % 2 == 0) ? 22 : 26;
                int src = accPair(j);
                if (spilled(j)) {
                    prog_.push(makeVload(vreg(kSpillStage),
                                         sreg(kRegScratch), spillOff(j)));
                    prog_.push(makeVload(vreg(kSpillStage + 1),
                                         sreg(kRegScratch),
                                         spillOff(j) + 128));
                    src = kSpillStage;
                }
                prog_.push(makeVshuff(Opcode::VSHUFF, vreg(shuffBase),
                                      vreg(src), vreg(src + 1),
                                      /*laneLog2=*/1));
                prog_.push(makeVasr(Opcode::VASRHUB, vreg(asrDst),
                                    vreg(shuffBase), config_.shift16));
                prog_.push(makeVstore(sreg(kRegCCol), vreg(asrDst),
                                      static_cast<int64_t>(j) * 128 +
                                          static_cast<int64_t>(o) * 128 *
                                              np_));
            }
        });
}

void
MatMulKernel::generateVmpa()
{
    const int uo = config_.unrollOut;
    const int un = config_.unrollCols; // column *pairs* per tile
    const int uk = config_.unrollK;   // k-groups of 4 per iteration

    mp_ = roundUp(shape_.m, 64 * uo);
    kp_ = roundUp(shape_.k, 4 * uk);
    np_ = roundUp(shape_.n, 2 * un);

    const int64_t panels = mp_ / (64 * uo);
    const int64_t colTiles = np_ / (2 * un);
    const int64_t kIters = kp_ / (4 * uk);

    const int cols = 2 * un;
    const int maxAccPairs = kAccRegCount / 2;
    const int spillCols = std::max(0, cols - maxAccPairs);

    buffers_.inputBytes = mp_ * kp_;
    buffers_.weightBytes = np_ * kp_;
    buffers_.outputBytes = mp_ * np_;
    buffers_.scratchBytes = static_cast<int64_t>(spillCols) * 256;
    declareKernelNoalias(prog_, buffers_, /*scratch=*/true);

    LoopNestBuilder::Params params;
    params.panels = panels;
    params.colTiles = colTiles;
    params.kIters = kIters;
    params.unrollOut = uo;
    params.aPanelStride = 64 * kp_;
    params.cPanelStride = 64 * np_;
    params.wTileStride = static_cast<int64_t>(cols) * kp_;
    params.cTileStride = static_cast<int64_t>(un) * 128;
    params.aKStep = 256; // four columns = two 128-byte blocks
    params.wKStep = 4;

    auto accPair = [&](int c) { return kFirstAccReg + 2 * c; };
    auto spilled = [&](int c) { return c >= maxAccPairs; };
    auto spillOff = [&](int c) {
        return static_cast<int64_t>(c - maxAccPairs) * 256;
    };

    LoopNestBuilder nest(prog_, params);
    nest.emit(
        uk,
        [&](int) {
            for (int c = 0; c < cols; ++c) {
                if (!spilled(c)) {
                    prog_.push(makeVsplatw(vreg(accPair(c)), sreg(0)));
                    prog_.push(makeVsplatw(vreg(accPair(c) + 1), sreg(0)));
                } else {
                    prog_.push(makeVsplatw(vreg(kSpillStage), sreg(0)));
                    prog_.push(makeVsplatw(vreg(kSpillStage + 1), sreg(0)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage), spillOff(c)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage + 1),
                                          spillOff(c) + 128));
                }
            }
        },
        [&](int o, int u) {
            const int in = (u % 2 == 0) ? 0 : 30; // v0:v1 / v30:v31
            const int64_t aOff = static_cast<int64_t>(u) * 256 +
                                 static_cast<int64_t>(o) * 64 * kp_;
            prog_.push(makeVload(vreg(in), sreg(kRegAK), aOff));
            prog_.push(makeVload(vreg(in + 1), sreg(kRegAK), aOff + 128));
            for (int c = 0; c < cols; ++c) {
                const WTemp w = wtemp(u * cols + c);
                prog_.push(makeLoad(Opcode::LOADW, sreg(w.packedReg),
                                    sreg(kRegWK),
                                    static_cast<int64_t>(c) * kp_ + 4 * u));
                if (!spilled(c)) {
                    prog_.push(makeVmpa(Opcode::VMPA, vreg(accPair(c)),
                                        vreg(in), sreg(w.packedReg)));
                } else {
                    prog_.push(makeVload(vreg(kSpillStage),
                                         sreg(kRegScratch), spillOff(c)));
                    prog_.push(makeVload(vreg(kSpillStage + 1),
                                         sreg(kRegScratch),
                                         spillOff(c) + 128));
                    prog_.push(makeVmpa(Opcode::VMPA, vreg(kSpillStage),
                                        vreg(in), sreg(w.packedReg)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage), spillOff(c)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage + 1),
                                          spillOff(c) + 128));
                }
            }
        },
        [&](int o) {
            for (int cp = 0; cp < un; ++cp) {
                const bool alt = (cp % 2 != 0);
                const int fold0 = alt ? 22 : 20;
                const int fold1 = alt ? 23 : 21;
                const int shuffBase = alt ? 28 : 24;
                const int asrDst = alt ? 27 : 26;

                auto foldInto = [&](int c, int dst) {
                    int src = accPair(c);
                    if (spilled(c)) {
                        prog_.push(makeVload(vreg(kSpillStage),
                                             sreg(kRegScratch),
                                             spillOff(c)));
                        prog_.push(makeVload(vreg(kSpillStage + 1),
                                             sreg(kRegScratch),
                                             spillOff(c) + 128));
                        src = kSpillStage;
                    }
                    // Fold the k-high half into the k-low half (paper: the
                    // two output vectors "need to be further added").
                    prog_.push(makeVecBinary(Opcode::VADDH, vreg(dst),
                                             vreg(src), vreg(src + 1)));
                };
                foldInto(2 * cp, fold0);
                foldInto(2 * cp + 1, fold1);
                prog_.push(makeVshuff(Opcode::VSHUFF, vreg(shuffBase),
                                      vreg(fold0), vreg(fold1),
                                      /*laneLog2=*/1));
                prog_.push(makeVasr(Opcode::VASRHUB, vreg(asrDst),
                                    vreg(shuffBase), config_.shift16));
                prog_.push(makeVstore(sreg(kRegCCol), vreg(asrDst),
                                      static_cast<int64_t>(cp) * 128 +
                                          static_cast<int64_t>(o) * 64 *
                                              np_));
            }
        });
}

void
MatMulKernel::generateVrmpy()
{
    const int uo = config_.unrollOut;
    const int un = config_.unrollCols; // column *quads* per tile
    const int uk = config_.unrollK;    // k-groups of 4 per iteration

    mp_ = roundUp(shape_.m, 32 * uo);
    kp_ = roundUp(shape_.k, 4 * uk);
    np_ = roundUp(shape_.n, 4 * un);

    const int64_t panels = mp_ / (32 * uo);
    const int64_t colTiles = np_ / (4 * un);
    const int64_t kIters = kp_ / (4 * uk);

    const int cols = 4 * un;
    const int maxAccRegs = kAccRegCount; // one vector per column
    const int spillCols = std::max(0, cols - maxAccRegs);

    buffers_.inputBytes = mp_ * kp_;
    buffers_.weightBytes = np_ * kp_;
    buffers_.outputBytes = mp_ * np_;
    buffers_.scratchBytes = static_cast<int64_t>(spillCols) * 128;
    declareKernelNoalias(prog_, buffers_, /*scratch=*/true);

    LoopNestBuilder::Params params;
    params.panels = panels;
    params.colTiles = colTiles;
    params.kIters = kIters;
    params.unrollOut = uo;
    params.aPanelStride = 32 * kp_;
    params.cPanelStride = 32 * np_;
    params.wTileStride = static_cast<int64_t>(cols) * kp_;
    params.cTileStride = static_cast<int64_t>(un) * 128;
    params.aKStep = 128;
    params.wKStep = 4;

    auto accReg = [&](int c) { return kFirstAccReg + c; };
    auto spilled = [&](int c) { return c >= maxAccRegs; };
    auto spillOff = [&](int c) {
        return static_cast<int64_t>(c - maxAccRegs) * 128;
    };

    LoopNestBuilder nest(prog_, params);
    nest.emit(
        uk,
        [&](int) {
            for (int c = 0; c < cols; ++c) {
                if (!spilled(c)) {
                    prog_.push(makeVsplatw(vreg(accReg(c)), sreg(0)));
                } else {
                    prog_.push(makeVsplatw(vreg(kSpillStage), sreg(0)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage), spillOff(c)));
                }
            }
        },
        [&](int o, int u) {
            const int in = u % 2;
            prog_.push(makeVload(vreg(in), sreg(kRegAK),
                                 static_cast<int64_t>(u) * 128 +
                                     static_cast<int64_t>(o) * 32 * kp_));
            for (int c = 0; c < cols; ++c) {
                const WTemp w = wtemp(u * cols + c);
                prog_.push(makeLoad(Opcode::LOADW, sreg(w.packedReg),
                                    sreg(kRegWK),
                                    static_cast<int64_t>(c) * kp_ + 4 * u));
                if (!spilled(c)) {
                    prog_.push(makeVrmpy(vreg(accReg(c)), vreg(in),
                                         sreg(w.packedReg)));
                } else {
                    prog_.push(makeVload(vreg(kSpillStage),
                                         sreg(kRegScratch), spillOff(c)));
                    prog_.push(makeVrmpy(vreg(kSpillStage), vreg(in),
                                         sreg(w.packedReg)));
                    prog_.push(makeVstore(sreg(kRegScratch),
                                          vreg(kSpillStage), spillOff(c)));
                }
            }
        },
        [&](int o) {
            for (int q = 0; q < un; ++q) {
                // Bring the four column accumulators into registers.
                int src[4];
                for (int i = 0; i < 4; ++i) {
                    const int c = 4 * q + i;
                    if (spilled(c)) {
                        const int stage = kSpillStage + (i % 2);
                        prog_.push(makeVload(vreg(stage),
                                             sreg(kRegScratch),
                                             spillOff(c)));
                        // Immediately interleave to free the stage pair:
                        // handled by using distinct temporaries below.
                        prog_.push(makeVecBinary(Opcode::VMOV,
                                                 vreg(20 + i), vreg(stage),
                                                 vreg(stage)));
                        src[i] = 20 + i;
                    } else {
                        src[i] = accReg(c);
                    }
                }
                // Word-interleave column pairs, narrow to halfwords.
                prog_.push(makeVshuff(Opcode::VSHUFF, vreg(24),
                                      vreg(src[0]), vreg(src[1]),
                                      /*laneLog2=*/2));
                prog_.push(makeVshuff(Opcode::VSHUFF, vreg(26),
                                      vreg(src[2]), vreg(src[3]),
                                      /*laneLog2=*/2));
                prog_.push(makeVasr(Opcode::VASRWH, vreg(28), vreg(24),
                                    config_.shiftWordHalf));
                prog_.push(makeVasr(Opcode::VASRWH, vreg(29), vreg(26),
                                    config_.shiftWordHalf));
                // Interleave 4-byte units -> full row-major halfword order,
                // then narrow to the 4-column uint8 output block.
                prog_.push(makeVshuff(Opcode::VSHUFF, vreg(24), vreg(28),
                                      vreg(29), /*laneLog2=*/2));
                prog_.push(makeVasr(Opcode::VASRHUB, vreg(22), vreg(24),
                                    config_.shiftHalfByte));
                prog_.push(makeVstore(sreg(kRegCCol), vreg(22),
                                      static_cast<int64_t>(q) * 128 +
                                          static_cast<int64_t>(o) * 32 *
                                              np_));
            }
        });
}

std::vector<uint8_t>
MatMulKernel::packInput(const uint8_t *rowMajor) const
{
    // Zero-extend the K dimension to kp, then apply the panel layout.
    std::vector<int8_t> extended(
        static_cast<size_t>(shape_.m * kp_), 0);
    for (int64_t r = 0; r < shape_.m; ++r)
        for (int64_t c = 0; c < shape_.k; ++c)
            extended[static_cast<size_t>(r * kp_ + c)] =
                static_cast<int8_t>(rowMajor[r * shape_.k + c]);

    std::vector<int8_t> packed;
    tensor::packMatrix(extended.data(), shape_.m, kp_,
                       schemeLayout(config_.scheme), packed);
    std::vector<uint8_t> out(static_cast<size_t>(buffers_.inputBytes), 0);
    GCD2_ASSERT(packed.size() <= out.size(), "input packing overflow");
    std::copy(packed.begin(), packed.end(),
              reinterpret_cast<int8_t *>(out.data()));
    return out;
}

std::vector<uint8_t>
MatMulKernel::packWeights(const int8_t *rowMajor) const
{
    std::vector<uint8_t> out(static_cast<size_t>(buffers_.weightBytes), 0);
    if (config_.scheme == MatMulScheme::Vmpy) {
        // Column-major with each weight byte replicated into a word, so
        // the kernel's LOADW directly yields the 4-splat vmpy operand.
        for (int64_t k = 0; k < shape_.k; ++k)
            for (int64_t n = 0; n < shape_.n; ++n)
                for (int64_t r = 0; r < 4; ++r)
                    out[static_cast<size_t>((n * kp_ + k) * 4 + r)] =
                        static_cast<uint8_t>(rowMajor[k * shape_.n + n]);
        return out;
    }
    // Column-major np x kp with zero padding; vmpa/vrmpy read the weight
    // word for column n, group k at byte offset n * kp + k.
    for (int64_t k = 0; k < shape_.k; ++k)
        for (int64_t n = 0; n < shape_.n; ++n)
            out[static_cast<size_t>(n * kp_ + k)] =
                static_cast<uint8_t>(rowMajor[k * shape_.n + n]);
    return out;
}

std::vector<uint8_t>
MatMulKernel::unpackOutput(const uint8_t *packed) const
{
    std::vector<int8_t> rowMajor;
    tensor::unpackMatrix(reinterpret_cast<const int8_t *>(packed), shape_.m,
                         np_, schemeLayout(config_.scheme), rowMajor);
    std::vector<uint8_t> out(
        static_cast<size_t>(shape_.m * shape_.n));
    for (int64_t r = 0; r < shape_.m; ++r)
        for (int64_t c = 0; c < shape_.n; ++c)
            out[static_cast<size_t>(r * shape_.n + c)] =
                static_cast<uint8_t>(rowMajor[r * np_ + c]);
    return out;
}

std::vector<uint8_t>
MatMulKernel::reference(const uint8_t *a, const int8_t *w,
                        const MatMulShape &shape, const MatMulConfig &config)
{
    std::vector<uint8_t> out(static_cast<size_t>(shape.m * shape.n));
    for (int64_t m = 0; m < shape.m; ++m) {
        for (int64_t n = 0; n < shape.n; ++n) {
            auto aAt = [&](int64_t k) {
                return k < shape.k
                           ? static_cast<int32_t>(a[m * shape.k + k])
                           : 0;
            };
            auto wAt = [&](int64_t k) {
                return k < shape.k
                           ? static_cast<int32_t>(w[k * shape.n + n])
                           : 0;
            };
            uint8_t result = 0;
            switch (config.scheme) {
              case MatMulScheme::Vmpy: {
                // 16-bit accumulator, one wraparound per product.
                int16_t acc = 0;
                for (int64_t k = 0; k < shape.k; ++k)
                    acc = static_cast<int16_t>(acc + aAt(k) * wAt(k));
                result = static_cast<uint8_t>(std::clamp<int64_t>(
                    tensor::roundShift(acc, config.shift16), 0, 255));
                break;
              }
              case MatMulScheme::Vmpa: {
                // Two 16-bit accumulators (k-even pairs and k-odd pairs),
                // each wrapping once per instruction (two products), then
                // folded with a wrapping VADDH.
                int16_t lo = 0, hi = 0;
                const int64_t kp = (shape.k + 3) / 4 * 4;
                for (int64_t k = 0; k < kp; k += 4) {
                    lo = static_cast<int16_t>(lo + aAt(k) * wAt(k) +
                                              aAt(k + 1) * wAt(k + 1));
                    hi = static_cast<int16_t>(hi + aAt(k + 2) * wAt(k + 2) +
                                              aAt(k + 3) * wAt(k + 3));
                }
                const auto acc = static_cast<int16_t>(lo + hi);
                result = static_cast<uint8_t>(std::clamp<int64_t>(
                    tensor::roundShift(acc, config.shift16), 0, 255));
                break;
              }
              case MatMulScheme::Vrmpy: {
                // 32-bit accumulator, VASRWH then VASRHUB epilogue.
                int32_t acc = 0;
                for (int64_t k = 0; k < shape.k; ++k)
                    acc += aAt(k) * wAt(k);
                const int16_t half = tensor::sat16(
                    tensor::roundShift(acc, config.shiftWordHalf));
                result = static_cast<uint8_t>(std::clamp<int64_t>(
                    tensor::roundShift(half, config.shiftHalfByte), 0,
                    255));
                break;
              }
            }
            out[static_cast<size_t>(m * shape.n + n)] = result;
        }
    }
    return out;
}

} // namespace gcd2::kernels
