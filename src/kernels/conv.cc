#include "kernels/conv.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/quant.h"

namespace gcd2::kernels {

namespace {

using dsp::Opcode;
using dsp::makeAddi;
using dsp::makeJumpNz;
using dsp::makeLoad;
using dsp::makeMov;
using dsp::makeMovi;
using dsp::makeVasr;
using dsp::makeVload;
using dsp::makeVmpa;
using dsp::makeVsplatw;
using dsp::makeVstore;
using dsp::sreg;
using dsp::vreg;

/** Host im2col shared by packing and the reference. */
std::vector<uint8_t>
im2colHost(const uint8_t *nchw, const ConvShape &s)
{
    const int64_t m = s.outH() * s.outW();
    const int64_t k = s.inC * s.kH * s.kW;
    std::vector<uint8_t> out(static_cast<size_t>(m * k), 0);
    for (int64_t oy = 0; oy < s.outH(); ++oy) {
        for (int64_t ox = 0; ox < s.outW(); ++ox) {
            const int64_t row = oy * s.outW() + ox;
            for (int64_t c = 0; c < s.inC; ++c) {
                for (int64_t ky = 0; ky < s.kH; ++ky) {
                    for (int64_t kx = 0; kx < s.kW; ++kx) {
                        const int64_t iy = oy * s.strideH + ky - s.padH;
                        const int64_t ix = ox * s.strideW + kx - s.padW;
                        if (iy < 0 || iy >= s.inH || ix < 0 || ix >= s.inW)
                            continue;
                        const int64_t col =
                            (c * s.kH + ky) * s.kW + kx;
                        out[static_cast<size_t>(row * k + col)] =
                            nchw[(c * s.inH + iy) * s.inW + ix];
                    }
                }
            }
        }
    }
    return out;
}

/** OIHW filters to the K x N weight matrix of the im2col matmul. */
std::vector<int8_t>
filtersToMatrix(const int8_t *oihw, const ConvShape &s)
{
    const int64_t k = s.inC * s.kH * s.kW;
    std::vector<int8_t> out(static_cast<size_t>(k * s.outC));
    for (int64_t n = 0; n < s.outC; ++n)
        for (int64_t c = 0; c < s.inC; ++c)
            for (int64_t ky = 0; ky < s.kH; ++ky)
                for (int64_t kx = 0; kx < s.kW; ++kx) {
                    const int64_t kk = (c * s.kH + ky) * s.kW + kx;
                    out[static_cast<size_t>(kk * s.outC + n)] =
                        oihw[((n * s.inC + c) * s.kH + ky) * s.kW + kx];
                }
    return out;
}

} // namespace

ConvKernel::ConvKernel(const ConvShape &shape, const MatMulConfig &config)
    : shape_(shape), matmul_(shape.matmulShape(), config)
{
    GCD2_REQUIRE(shape.inC > 0 && shape.inH > 0 && shape.inW > 0 &&
                     shape.outC > 0,
                 "conv shape must be positive");
    GCD2_REQUIRE(shape.outH() > 0 && shape.outW() > 0,
                 "conv produces an empty output");
}

std::vector<uint8_t>
ConvKernel::im2col(const uint8_t *nchw) const
{
    return im2colHost(nchw, shape_);
}

std::vector<uint8_t>
ConvKernel::packInput(const uint8_t *nchw) const
{
    const auto patches = im2colHost(nchw, shape_);
    return matmul_.packInput(patches.data());
}

std::vector<uint8_t>
ConvKernel::packWeights(const int8_t *oihw) const
{
    const auto matrix = filtersToMatrix(oihw, shape_);
    return matmul_.packWeights(matrix.data());
}

std::vector<uint8_t>
ConvKernel::unpackOutput(const uint8_t *packed) const
{
    // The matmul output is (outH*outW) x outC row-major; NCHW output wants
    // channel-major planes.
    const auto hwc = matmul_.unpackOutput(packed);
    const int64_t m = shape_.outH() * shape_.outW();
    std::vector<uint8_t> out(static_cast<size_t>(m * shape_.outC));
    for (int64_t row = 0; row < m; ++row)
        for (int64_t n = 0; n < shape_.outC; ++n)
            out[static_cast<size_t>(n * m + row)] =
                hwc[static_cast<size_t>(row * shape_.outC + n)];
    return out;
}

uint64_t
ConvKernel::im2colCycles() const
{
    if (shape_.isPointwise())
        return 0;
    const int64_t patchBytes =
        shape_.outH() * shape_.outW() * shape_.inC * shape_.kH * shape_.kW;
    // Each patch byte flows through a load/permute/store pipeline with two
    // memory slots per packet: ~2 cycles per vector each way.
    return static_cast<uint64_t>(4 * (patchBytes / dsp::kVectorBytes) + 16);
}

std::vector<uint8_t>
ConvKernel::reference(const uint8_t *nchw, const int8_t *oihw,
                      const ConvShape &shape, const MatMulConfig &config)
{
    const auto patches = im2colHost(nchw, shape);
    const auto weights = filtersToMatrix(oihw, shape);
    const auto hwc = MatMulKernel::reference(
        patches.data(), weights.data(), shape.matmulShape(), config);
    const int64_t m = shape.outH() * shape.outW();
    std::vector<uint8_t> out(static_cast<size_t>(m * shape.outC));
    for (int64_t row = 0; row < m; ++row)
        for (int64_t n = 0; n < shape.outC; ++n)
            out[static_cast<size_t>(n * m + row)] =
                hwc[static_cast<size_t>(row * shape.outC + n)];
    return out;
}

// Depthwise -------------------------------------------------------------

namespace {

/** Row buffer stride: 256 data bytes + 128 zero bytes so the odd-phase
 *  (+1 shifted) vector loads stay in bounds. */
constexpr int64_t kDwRowBytes = 384;

} // namespace

DepthwiseKernel::DepthwiseKernel(const DepthwiseConfig &config)
    : config_(config)
{
    GCD2_REQUIRE(config.channels > 0, "depthwise needs channels");
    GCD2_REQUIRE(config.inH >= 3, "depthwise needs >= 3 input rows");
    GCD2_REQUIRE(config.inW > 0 && config.inW <= 256 &&
                     config.inW % 2 == 0,
                 "depthwise row tile must be even and <= 256");
    GCD2_REQUIRE(config.stride == 1 || config.stride == 2,
                 "depthwise stride must be 1 or 2");
    GCD2_REQUIRE(config.unrollRows >= 1 &&
                     config.outH() % config.unrollRows == 0,
                 "unrollRows must divide outH");
    GCD2_REQUIRE(config.stride == 2 || config.unrollRows == 1,
                 "stride-1 depthwise supports unrollRows == 1");


    const int64_t outRowBytes = config.stride == 2 ? 128 : 256;
    buffers_.inputBytes = config.channels * config.inH * kDwRowBytes;
    buffers_.weightBytes = config.channels * 3 * 4;
    buffers_.outputBytes = config.channels * config.outH() * outRowBytes;
    buffers_.scratchBytes = 0;
    declareKernelNoalias(prog_, buffers_, /*scratch=*/false);

    const int ur = config.unrollRows;
    prog_.push(makeMovi(sreg(0), 0));
    prog_.push(makeMovi(sreg(5), config.channels)); // channel counter
    prog_.push(makeMov(sreg(9), sreg(kRegInput)));  // channel input base
    prog_.push(makeMov(sreg(10), sreg(kRegOutput))); // channel output base
    prog_.push(makeMov(sreg(11), sreg(kRegWeights))); // weight pointer

    const int chanLoop = prog_.newLabel();
    prog_.bindLabel(chanLoop);
    // Hoist the three filter-row coefficient words for this channel.
    prog_.push(makeLoad(Opcode::LOADW, sreg(12), sreg(11), 0));
    prog_.push(makeLoad(Opcode::LOADW, sreg(13), sreg(11), 4));
    prog_.push(makeLoad(Opcode::LOADW, sreg(14), sreg(11), 8));
    prog_.push(makeMovi(sreg(6), config.outH() / ur)); // row counter
    prog_.push(makeMov(sreg(7), sreg(9)));             // row input ptr
    prog_.push(makeMov(sreg(8), sreg(10)));            // row output ptr

    const int rowLoop = prog_.newLabel();
    prog_.bindLabel(rowLoop);
    if (config.stride == 2) {
        for (int u = 0; u < ur; ++u) {
            const int accBase = (u % 2 == 0) ? 2 : 6; // pairs v2:3 / v6:7
            const int inBase = (u % 2 == 0) ? 0 : 8;  // v0,v1 / v8,v9
            const int outReg = (u % 2 == 0) ? 4 : 10;
            prog_.push(makeVsplatw(vreg(accBase), sreg(0)));
            prog_.push(makeVsplatw(vreg(accBase + 1), sreg(0)));
            for (int dy = 0; dy < 3; ++dy) {
                const int64_t off =
                    (static_cast<int64_t>(u) * 2 + dy) * kDwRowBytes;
                prog_.push(makeVload(vreg(inBase), sreg(7), off));
                prog_.push(makeVload(vreg(inBase + 1), sreg(7), off + 128));
                prog_.push(makeVmpa(Opcode::VTMPY, vreg(accBase),
                                    vreg(inBase), sreg(12 + dy)));
            }
            prog_.push(makeVasr(Opcode::VASRHUB, vreg(outReg),
                                vreg(accBase), config.shift16));
            prog_.push(makeVstore(sreg(8), vreg(outReg),
                                  static_cast<int64_t>(u) * 128));
        }
    } else {
        // Stride 1: even-phase outputs from the aligned rows, odd-phase
        // outputs from the rows shifted one byte; byte-interleave both
        // requantized streams back into pixel order.
        prog_.push(makeVsplatw(vreg(2), sreg(0)));  // even acc pair v2:3
        prog_.push(makeVsplatw(vreg(3), sreg(0)));
        prog_.push(makeVsplatw(vreg(6), sreg(0)));  // odd acc pair v6:7
        prog_.push(makeVsplatw(vreg(7), sreg(0)));
        for (int dy = 0; dy < 3; ++dy) {
            const int64_t off = static_cast<int64_t>(dy) * kDwRowBytes;
            const int evenIn = (dy % 2 == 0) ? 0 : 14;  // v0:1 / v14:15
            const int oddIn = (dy % 2 == 0) ? 8 : 16;   // v8:9 / v16:17
            prog_.push(makeVload(vreg(evenIn), sreg(7), off));
            prog_.push(makeVload(vreg(evenIn + 1), sreg(7), off + 128));
            prog_.push(makeVmpa(Opcode::VTMPY, vreg(2), vreg(evenIn),
                                sreg(12 + dy)));
            prog_.push(makeVload(vreg(oddIn), sreg(7), off + 1));
            prog_.push(makeVload(vreg(oddIn + 1), sreg(7), off + 129));
            prog_.push(makeVmpa(Opcode::VTMPY, vreg(6), vreg(oddIn),
                                sreg(12 + dy)));
        }
        prog_.push(makeVasr(Opcode::VASRHUB, vreg(4), vreg(2),
                            config.shift16)); // even bytes e0..e127
        prog_.push(makeVasr(Opcode::VASRHUB, vreg(10), vreg(6),
                            config.shift16)); // odd bytes o0..o127
        prog_.push(makeVshuff(Opcode::VSHUFF, vreg(12), vreg(4), vreg(10),
                              /*laneLog2=*/0)); // pixel order, pair v12:13
        prog_.push(makeVstore(sreg(8), vreg(12), 0));
        prog_.push(makeVstore(sreg(8), vreg(13), 128));
    }
    prog_.push(makeAddi(sreg(7), sreg(7),
                        config.stride * kDwRowBytes * ur));
    prog_.push(makeAddi(sreg(8), sreg(8), outRowBytes * ur));
    prog_.push(makeAddi(sreg(6), sreg(6), -1));
    prog_.push(makeJumpNz(sreg(6), rowLoop));

    prog_.push(makeAddi(sreg(9), sreg(9), config.inH * kDwRowBytes));
    prog_.push(makeAddi(sreg(10), sreg(10),
                        config.outH() * outRowBytes));
    prog_.push(makeAddi(sreg(11), sreg(11), 12));
    prog_.push(makeAddi(sreg(5), sreg(5), -1));
    prog_.push(makeJumpNz(sreg(5), chanLoop));
}

std::vector<uint8_t>
DepthwiseKernel::packInput(const uint8_t *chw) const
{
    std::vector<uint8_t> out(static_cast<size_t>(buffers_.inputBytes), 0);
    for (int64_t c = 0; c < config_.channels; ++c)
        for (int64_t y = 0; y < config_.inH; ++y)
            for (int64_t x = 0; x < config_.inW; ++x)
                out[static_cast<size_t>(
                    (c * config_.inH + y) * kDwRowBytes + x)] =
                    chw[(c * config_.inH + y) * config_.inW + x];
    return out;
}

std::vector<uint8_t>
DepthwiseKernel::packWeights(const int8_t *c33) const
{
    std::vector<uint8_t> out(static_cast<size_t>(buffers_.weightBytes), 0);
    for (int64_t c = 0; c < config_.channels; ++c)
        for (int64_t dy = 0; dy < 3; ++dy)
            for (int64_t j = 0; j < 3; ++j)
                out[static_cast<size_t>((c * 3 + dy) * 4 + j)] =
                    static_cast<uint8_t>(c33[(c * 3 + dy) * 3 + j]);
    return out;
}

std::vector<uint8_t>
DepthwiseKernel::unpackOutput(const uint8_t *packed) const
{
    const int64_t outH = config_.outH();
    const int64_t outW = config_.outW();
    const int64_t outRowBytes = config_.stride == 2 ? 128 : 256;
    std::vector<uint8_t> out(
        static_cast<size_t>(config_.channels * outH * outW));
    for (int64_t c = 0; c < config_.channels; ++c)
        for (int64_t y = 0; y < outH; ++y)
            for (int64_t x = 0; x < outW; ++x)
                out[static_cast<size_t>((c * outH + y) * outW + x)] =
                    packed[(c * outH + y) * outRowBytes + x];
    return out;
}

std::vector<uint8_t>
DepthwiseKernel::reference(const uint8_t *chw, const int8_t *c33,
                           const DepthwiseConfig &config)
{
    const int64_t outH = config.outH();
    const int64_t outW = config.outW();
    std::vector<uint8_t> out(
        static_cast<size_t>(config.channels * outH * outW));
    auto inAt = [&](int64_t c, int64_t y, int64_t x) -> int32_t {
        if (x >= config.inW || x >= 256)
            return 0; // zero column padding of the row tile
        return chw[(c * config.inH + y) * config.inW + x];
    };
    for (int64_t c = 0; c < config.channels; ++c) {
        for (int64_t y = 0; y < outH; ++y) {
            for (int64_t x = 0; x < outW; ++x) {
                // One 16-bit wraparound per filter row (one vtmpy each).
                int16_t acc = 0;
                for (int64_t dy = 0; dy < 3; ++dy) {
                    int32_t rowSum = 0;
                    for (int64_t j = 0; j < 3; ++j)
                        rowSum += inAt(c, config.stride * y + dy,
                                       config.stride * x + j) *
                                  c33[(c * 3 + dy) * 3 + j];
                    acc = static_cast<int16_t>(acc + rowSum);
                }
                out[static_cast<size_t>((c * outH + y) * outW + x)] =
                    static_cast<uint8_t>(std::clamp<int64_t>(
                        tensor::roundShift(acc, config.shift16), 0, 255));
            }
        }
    }
    return out;
}

} // namespace gcd2::kernels
