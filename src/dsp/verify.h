/**
 * @file
 * Static verification of DSP programs.
 *
 * Catches code-generation bugs before simulation: malformed operands,
 * unbound or out-of-range labels, reads of registers that no path has
 * written (beyond the declared ABI inputs), vector-pair misalignment,
 * and stores through never-initialized base registers.
 */
#ifndef GCD2_DSP_VERIFY_H
#define GCD2_DSP_VERIFY_H

#include <string>
#include <vector>

#include "dsp/isa.h"

namespace gcd2::dsp {

/** One verification finding. */
struct VerifyIssue
{
    size_t instIndex;   ///< offending instruction (SIZE_MAX = program)
    std::string message;
};

/**
 * Verify @p prog.
 *
 * @param abiScalarRegs scalar registers the caller initializes before
 *        entry (kernel ABI base pointers, defaults to noaliasRegs).
 * @return all findings (empty = clean).
 */
std::vector<VerifyIssue> verifyProgram(
    const Program &prog, std::vector<int8_t> abiScalarRegs = {});

/** Panics with a readable report if verification finds anything. */
void requireVerified(const Program &prog,
                     std::vector<int8_t> abiScalarRegs = {});

} // namespace gcd2::dsp

#endif // GCD2_DSP_VERIFY_H
