#include "dsp/packet.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/logging.h"
#include "dsp/alias.h"
#include "dsp/deps.h"

namespace gcd2::dsp {

namespace {

/** Backtracking assignment of instructions to distinct allowed slots. */
bool
assignSlots(const std::vector<uint8_t> &masks, size_t next, uint8_t used)
{
    if (next == masks.size())
        return true;
    for (int s = 0; s < kPacketSlots; ++s) {
        const uint8_t bit = static_cast<uint8_t>(1u << s);
        if ((masks[next] & bit) && !(used & bit)) {
            if (assignSlots(masks, next + 1, used | bit))
                return true;
        }
    }
    return false;
}

} // namespace

bool
slotsFeasible(const Program &prog, const std::vector<size_t> &insts)
{
    if (insts.size() > static_cast<size_t>(kPacketSlots))
        return false;

    std::vector<uint8_t> masks;
    masks.reserve(insts.size());
    int branches = 0;
    int multUnits = 0;
    for (size_t idx : insts) {
        GCD2_ASSERT(idx < prog.code.size(), "instruction index out of range");
        const Instruction &inst = prog.code[idx];
        masks.push_back(inst.info().slotMask);
        if (inst.isBranch())
            ++branches;
        multUnits += inst.info().multUnits;
    }
    if (branches > 1)
        return false;
    // Two multiply pipelines per packet; double-wide multiplies (vmpa,
    // vtmpy) consume both.
    if (multUnits > 2)
        return false;

    // Assign the most constrained instructions first so the backtracking
    // search terminates quickly.
    std::sort(masks.begin(), masks.end(), [](uint8_t a, uint8_t b) {
        return std::popcount(a) < std::popcount(b);
    });
    return assignSlots(masks, 0, 0);
}

bool
slotsFeasibleWith(const Program &prog, const Packet &packet, size_t candidate)
{
    std::vector<size_t> insts = packet.insts;
    insts.push_back(candidate);
    return slotsFeasible(prog, insts);
}

std::string
PackedProgram::toString() const
{
    std::ostringstream oss;
    for (size_t p = 0; p < packets.size(); ++p) {
        for (size_t l = 0; l < labelPacket.size(); ++l)
            if (labelPacket[l] == p)
                oss << "L" << l << ":\n";
        oss << "  {";
        for (size_t k = 0; k < packets[p].insts.size(); ++k) {
            if (k)
                oss << " ; ";
            oss << program.code[packets[p].insts[k]].toString();
        }
        oss << "}\n";
    }
    return oss.str();
}

void
validatePackedProgram(const PackedProgram &packed)
{
    const Program &prog = packed.program;
    std::vector<int> seen(prog.code.size(), 0);
    AliasAnalysis alias(prog);

    for (const Packet &packet : packed.packets) {
        GCD2_ASSERT(!packet.insts.empty(), "empty packet");
        GCD2_ASSERT(packet.insts.size() <=
                        static_cast<size_t>(kPacketSlots),
                    "packet exceeds " << kPacketSlots << " slots");
        GCD2_ASSERT(slotsFeasible(prog, packet.insts),
                    "packet violates slot constraints");
        for (size_t k = 0; k < packet.insts.size(); ++k) {
            const size_t idx = packet.insts[k];
            ++seen[idx];
            if (k > 0) {
                GCD2_ASSERT(packet.insts[k - 1] < idx,
                            "packet members not in program order");
            }
            for (size_t m = 0; m < k; ++m) {
                const size_t earlier = packet.insts[m];
                const Dependency dep = classifyDependency(
                    prog.code[earlier], prog.code[idx],
                    alias.mayAlias(earlier, idx));
                GCD2_ASSERT(dep.kind != DepKind::Hard,
                            "hard dependency inside packet: "
                                << prog.code[earlier].toString() << " -> "
                                << prog.code[idx].toString());
            }
        }
    }

    for (size_t i = 0; i < seen.size(); ++i) {
        GCD2_ASSERT(seen[i] == 1, "instruction " << i << " ("
                        << prog.code[i].toString() << ") appears "
                        << seen[i] << " times in packets");
    }

    GCD2_ASSERT(packed.labelPacket.size() == prog.labels.size(),
                "labelPacket size mismatch");
    for (size_t l = 0; l < prog.labels.size(); ++l) {
        const size_t packetIdx = packed.labelPacket[l];
        // A label may map one past the last packet: a branch to the
        // program's end (exit label).
        GCD2_ASSERT(packetIdx <= packed.packets.size(),
                    "label " << l << " maps past the last packet");
        // The label's target instruction must live at or after the start
        // of its packet: every instruction of the labelled block region
        // must be scheduled no earlier than the label's packet.
        const size_t target = prog.labels[l];
        for (size_t p = 0; p < packetIdx; ++p)
            for (size_t idx : packed.packets[p].insts)
                GCD2_ASSERT(idx < target,
                            "instruction " << idx
                                << " scheduled before label L" << l
                                << " but belongs after it");
    }
}

} // namespace gcd2::dsp
