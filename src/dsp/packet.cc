#include "dsp/packet.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/logging.h"
#include "dsp/schedule_checks.h"

namespace gcd2::dsp {

namespace {

/** Backtracking assignment of instructions to distinct allowed slots. */
bool
assignSlots(const std::vector<uint8_t> &masks, size_t next, uint8_t used)
{
    if (next == masks.size())
        return true;
    for (int s = 0; s < kPacketSlots; ++s) {
        const uint8_t bit = static_cast<uint8_t>(1u << s);
        if ((masks[next] & bit) && !(used & bit)) {
            if (assignSlots(masks, next + 1, used | bit))
                return true;
        }
    }
    return false;
}

} // namespace

bool
slotsFeasible(const Program &prog, const std::vector<size_t> &insts)
{
    if (insts.size() > static_cast<size_t>(kPacketSlots))
        return false;

    std::vector<uint8_t> masks;
    masks.reserve(insts.size());
    int branches = 0;
    int multUnits = 0;
    for (size_t idx : insts) {
        GCD2_ASSERT(idx < prog.code.size(), "instruction index out of range");
        const Instruction &inst = prog.code[idx];
        masks.push_back(inst.info().slotMask);
        if (inst.isBranch())
            ++branches;
        multUnits += inst.info().multUnits;
    }
    if (branches > 1)
        return false;
    // Two multiply pipelines per packet; double-wide multiplies (vmpa,
    // vtmpy) consume both.
    if (multUnits > 2)
        return false;

    // Assign the most constrained instructions first so the backtracking
    // search terminates quickly.
    std::sort(masks.begin(), masks.end(), [](uint8_t a, uint8_t b) {
        return std::popcount(a) < std::popcount(b);
    });
    return assignSlots(masks, 0, 0);
}

bool
slotsFeasibleWith(const Program &prog, const Packet &packet, size_t candidate)
{
    std::vector<size_t> insts = packet.insts;
    insts.push_back(candidate);
    return slotsFeasible(prog, insts);
}

std::string
PackedProgram::toString() const
{
    std::ostringstream oss;
    for (size_t p = 0; p < packets.size(); ++p) {
        for (size_t l = 0; l < labelPacket.size(); ++l)
            if (labelPacket[l] == p)
                oss << "L" << l << ":\n";
        oss << "  {";
        for (size_t k = 0; k < packets[p].insts.size(); ++k) {
            if (k)
                oss << " ; ";
            oss << program.code[packets[p].insts[k]].toString();
        }
        oss << "}\n";
    }
    return oss.str();
}

void
validatePackedProgram(const PackedProgram &packed)
{
    // The invariants live in the shared check table (schedule_checks.h);
    // this consumer's policy is panic-on-first-violation.
    runScheduleChecks(
        packed, CheckDepth::Full,
        [](common::DiagCode code, int64_t node, const std::string &msg) {
            GCD2_PANIC("packed program invariant '"
                       << common::diagCodeName(code) << "' violated"
                       << (node >= 0 ? " at instruction " +
                                           std::to_string(node)
                                     : std::string())
                       << ": " << msg);
        });
}

} // namespace gcd2::dsp
