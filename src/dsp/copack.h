/**
 * @file
 * Mask-based co-pack delay model over a range of instructions.
 *
 * The SDA packer's cost model charges a stall when two instructions with
 * a penalized soft dependency share a packet (paper Fig. 4). Answering
 * "how many stall cycles does `b` pay when co-packed after `a`?" needs
 * only four per-instruction facts -- read mask, write mask, memory class,
 * forwarding penalty -- plus one alias probe; none of the scheduling
 * graph. This model is those tables, built in one O(n) pass, so
 * consumers that only classify pairs (the hazard lint's differential
 * delay check, the IDG builders' edge classification) don't pay for
 * chain construction, CSR packing, or critical-path state.
 *
 * vliw::FastIdg embeds a CopackModel and forwards its copackDelay(), so
 * the delay the lint re-derives here is *the* delay the packer charges,
 * not a reimplementation that could drift.
 */
#ifndef GCD2_DSP_COPACK_H
#define GCD2_DSP_COPACK_H

#include <cstdint>
#include <vector>

#include "dsp/alias.h"
#include "dsp/deps.h"
#include "dsp/isa.h"

namespace gcd2::dsp {

/** Pair-classification tables for instructions [begin, begin+size). */
class CopackModel
{
  public:
    /**
     * Build tables for @p count instructions of @p prog starting at
     * @p begin. Indices into the model are local (0-based); @p alias is
     * probed with absolute program indices and must outlive the model.
     */
    CopackModel(const Program &prog, size_t begin, size_t count,
                const AliasAnalysis &alias);

    /** Whole-program model (local indices == program indices). */
    CopackModel(const Program &prog, const AliasAnalysis &alias)
        : CopackModel(prog, 0, prog.code.size(), alias)
    {
    }

    size_t size() const { return readMask_.size(); }

    /**
     * Stall cycles instruction @p b pays when co-packed after @p a
     * (a < b, local indices): the classifyDependency soft penalty, or 0
     * for hard / free / independent pairs -- exactly the pairs
     * packetCost and pipelinedBlockCost charge, with no heap traffic.
     */
    int copackDelay(size_t a, size_t b) const
    {
        if ((writeMask_[a] & writeMask_[b]) != 0)
            return 0; // WAW: hard
        if ((writeMask_[a] & readMask_[b] & kVectorUidMask) != 0)
            return 0; // vector RAW: hard
        if (memPair_[a] != 0 && memPair_[b] != 0 &&
            (memPair_[a] | memPair_[b]) > 1 &&
            alias_->mayAlias(begin_ + a, begin_ + b))
            return 0; // store-involving may-alias pair: hard
        if ((writeMask_[a] & readMask_[b]) != 0)
            return fwdPenalty_[a]; // scalar RAW: soft, penalized
        return 0;                  // WAR or independent: free
    }

    uint64_t readMask(size_t i) const { return readMask_[i]; }
    uint64_t writeMask(size_t i) const { return writeMask_[i]; }
    /** 0 = not memory, 1 = load, 2 = store (so `(a|b) > 1` means "a
     *  store is involved"). */
    uint8_t memClass(size_t i) const { return memPair_[i]; }
    /** Stall cycles a scalar RAW on producer @p i costs in-packet. */
    int forwardPenalty(size_t i) const { return fwdPenalty_[i]; }
    int latency(size_t i) const { return latency_[i]; }

    const AliasAnalysis &alias() const { return *alias_; }
    /** Absolute program index of local index @p i. */
    size_t instIndex(size_t i) const { return begin_ + i; }

  private:
    size_t begin_ = 0;
    const AliasAnalysis *alias_ = nullptr;
    std::vector<uint64_t> readMask_, writeMask_;
    std::vector<uint8_t> memPair_;
    std::vector<int8_t> fwdPenalty_;
    std::vector<int32_t> latency_;
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_COPACK_H
