/**
 * @file
 * Cycle-accounting simulator for packed (VLIW) programs.
 *
 * Timing model (paper Section IV-C and footnote 4, plus pipelining):
 *  - Instructions occupy a short pipeline (typically read / execute /
 *    write, one cycle each); OpcodeInfo::latency is the occupancy.
 *  - All instructions of a packet issue together; packets issue at most
 *    one per cycle and *interlock*: a packet stalls until every source
 *    register written by an earlier packet has completed write-back.
 *  - A *soft* dependency inside a packet delays the consumer's pipeline
 *    by the dependency's penalty. Both rules together reproduce Fig. 4
 *    exactly: two 3-cycle instructions with a load-use soft dependency
 *    cost 4 cycles co-packed and 6 cycles split across packets.
 *
 * The simulator simultaneously executes functional semantics (through
 * FunctionalSimulator::execute) so every timing run is also a correctness
 * run, and gathers the utilization / memory-bandwidth counters used by the
 * Fig. 8 and Fig. 9 experiments.
 */
#ifndef GCD2_DSP_TIMING_SIM_H
#define GCD2_DSP_TIMING_SIM_H

#include <cstdint>

#include "dsp/alias.h"
#include "dsp/functional_sim.h"
#include "dsp/packet.h"
#include "dsp/timing_stats.h"

namespace gcd2::dsp {

/**
 * Executes a PackedProgram against a Memory, producing both the final
 * architectural state (via the embedded functional simulator) and timing
 * statistics.
 */
class TimingSimulator
{
  public:
    explicit TimingSimulator(Memory &mem) : funcSim_(mem) {}

    RegisterFile &regs() { return funcSim_.regs(); }

    /** Cumulative architectural counters (differential tests). */
    const ExecStats &execStats() const { return funcSim_.stats(); }

    /**
     * Run the packed program to completion through the pre-decoded engine
     * (decoded.h): the program is fingerprinted, decoded once via the
     * process-wide DecodeCache, and executed with the register-mask
     * scoreboard and table dispatch. Bit-identical (architectural state
     * and TimingStats) to runReference for every program -- enforced by
     * the differential tests in tests/dsp/decoded_engine_test.cc.
     *
     * @param validate run full invariant validation first (tests).
     * @param maxPackets guard against runaway loops.
     */
    TimingStats run(const PackedProgram &packed, bool validate = false,
                    uint64_t maxPackets = 1ULL << 32);

    /**
     * Reference implementation: the original interpreting loop, which
     * re-derives register sets, intra-packet delays, and label targets
     * per dynamic packet. Kept as the semantic baseline the decoded
     * engine is differentially tested against.
     */
    TimingStats runReference(const PackedProgram &packed,
                             bool validate = false,
                             uint64_t maxPackets = 1ULL << 32);

    /**
     * Standalone cost of one packet (intra-packet soft-dependency stalls
     * only; no cross-packet interlocks), used by the SDA scorer's
     * penalty term p(i, packet). Also reports the stall portion through
     * @p stallOut when non-null.
     */
    static uint64_t packetCost(const Program &prog, const Packet &packet,
                               const AliasAnalysis &alias,
                               uint64_t *stallOut = nullptr);

    /** Sum of packetCost over all packets (straight-line estimate). */
    static uint64_t staticCost(const PackedProgram &packed);

  private:
    FunctionalSimulator funcSim_;
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_TIMING_SIM_H
