/**
 * @file
 * Cycle-accounting simulator for packed (VLIW) programs.
 *
 * Timing model (paper Section IV-C and footnote 4, plus pipelining):
 *  - Instructions occupy a short pipeline (typically read / execute /
 *    write, one cycle each); OpcodeInfo::latency is the occupancy.
 *  - All instructions of a packet issue together; packets issue at most
 *    one per cycle and *interlock*: a packet stalls until every source
 *    register written by an earlier packet has completed write-back.
 *  - A *soft* dependency inside a packet delays the consumer's pipeline
 *    by the dependency's penalty. Both rules together reproduce Fig. 4
 *    exactly: two 3-cycle instructions with a load-use soft dependency
 *    cost 4 cycles co-packed and 6 cycles split across packets.
 *
 * The simulator simultaneously executes functional semantics (through
 * FunctionalSimulator::execute) so every timing run is also a correctness
 * run, and gathers the utilization / memory-bandwidth counters used by the
 * Fig. 8 and Fig. 9 experiments.
 */
#ifndef GCD2_DSP_TIMING_SIM_H
#define GCD2_DSP_TIMING_SIM_H

#include <cstdint>

#include "dsp/alias.h"
#include "dsp/functional_sim.h"
#include "dsp/packet.h"

namespace gcd2::dsp {

/** Results of a timed execution. */
struct TimingStats
{
    uint64_t cycles = 0;
    uint64_t packetsExecuted = 0;
    uint64_t instructionsExecuted = 0;
    uint64_t stallCycles = 0;
    uint64_t bytesLoaded = 0;
    uint64_t bytesStored = 0;

    /** Fraction of issue capacity used: insts / (4 slots x packets). */
    double
    slotUtilization() const
    {
        return packetsExecuted == 0
                   ? 0.0
                   : static_cast<double>(instructionsExecuted) /
                         (static_cast<double>(kPacketSlots) *
                          static_cast<double>(packetsExecuted));
    }

    /** Issue-level parallelism per cycle (relative DSP utilization). */
    double
    computeUtilization() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructionsExecuted) /
                                 (static_cast<double>(kPacketSlots) *
                                  static_cast<double>(cycles));
    }

    /** Memory traffic per cycle in bytes (relative bandwidth). */
    double
    memoryBandwidth() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(bytesLoaded + bytesStored) /
                                 static_cast<double>(cycles);
    }
};

/**
 * Executes a PackedProgram against a Memory, producing both the final
 * architectural state (via the embedded functional simulator) and timing
 * statistics.
 */
class TimingSimulator
{
  public:
    explicit TimingSimulator(Memory &mem) : funcSim_(mem) {}

    RegisterFile &regs() { return funcSim_.regs(); }

    /**
     * Run the packed program to completion.
     *
     * @param validate run full invariant validation first (tests).
     * @param maxPackets guard against runaway loops.
     */
    TimingStats run(const PackedProgram &packed, bool validate = false,
                    uint64_t maxPackets = 1ULL << 32);

    /**
     * Standalone cost of one packet (intra-packet soft-dependency stalls
     * only; no cross-packet interlocks), used by the SDA scorer's
     * penalty term p(i, packet). Also reports the stall portion through
     * @p stallOut when non-null.
     */
    static uint64_t packetCost(const Program &prog, const Packet &packet,
                               const AliasAnalysis &alias,
                               uint64_t *stallOut = nullptr);

    /** Sum of packetCost over all packets (straight-line estimate). */
    static uint64_t staticCost(const PackedProgram &packed);

  private:
    FunctionalSimulator funcSim_;
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_TIMING_SIM_H
