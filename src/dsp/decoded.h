/**
 * @file
 * Pre-decoded execution engine for packed (VLIW) programs.
 *
 * The timing simulator is the innermost loop of the whole system: every
 * instruction-selection cost query, every SDA packing score, and every
 * end-to-end inference bottoms out in executing a PackedProgram. The
 * reference interpreter (timing_sim.cc runReference / functional_sim.cc)
 * re-derives everything per dynamic packet: register read/write sets are
 * materialized as heap-allocated vectors, intra-packet soft-dependency
 * delays come from classifyDependency over AliasAnalysis state, and branch
 * labels go through Program::labels indirection.
 *
 * DecodedProgram moves all of that to a one-time decode:
 *
 *  - Per packet, a 64-bit *register read mask* (32 scalar + 32 vector
 *    uids) so the issue-interlock scan is an O(popcount) scoreboard walk
 *    instead of vector allocations per instruction.
 *  - Per instruction, a 64-bit write mask, the pre-computed intra-packet
 *    soft-dependency delay, and the pipeline latency -- the dynamic loop
 *    touches no AliasAnalysis / classifyDependency state.
 *  - Branches carry their resolved target *packet index*; no label table
 *    lookups at run time.
 *  - Execution dispatches through a per-opcode function table whose wide
 *    SIMD handlers (vmpy / vmpa / vrmpy / shuffles / narrowing shifts)
 *    are tight lane loops over local copies, written to auto-vectorize.
 *    Instructions whose destination registers alias their vector sources
 *    (where lane-ordered execution is observable) fall back to the
 *    reference executeInstruction, so decoded execution is bit-identical
 *    to the interpreter for *every* program -- enforced by differential
 *    fuzz tests (tests/dsp/decoded_engine_test.cc).
 *
 * DecodedProgram instances are cached in a thread-safe DecodeCache keyed
 * on program content, so the cost model's repeated re-simulation of
 * canonical kernels and repeated inference invocations skip re-decoding
 * entirely. Decoding is a pure function of the program, which keeps
 * multi-threaded compilation deterministic (see DESIGN.md section 9).
 */
#ifndef GCD2_DSP_DECODED_H
#define GCD2_DSP_DECODED_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/lru_cache.h"
#include "dsp/functional_sim.h"
#include "dsp/packet.h"
#include "dsp/timing_stats.h"

namespace gcd2::dsp {

/** Total register uids (scalars then vectors); masks fit one uint64_t. */
inline constexpr int kNumRegUids = kNumScalarRegs + kNumVectorRegs;
static_assert(kNumRegUids <= 64, "register masks must fit in 64 bits");

/** One pre-decoded instruction. */
struct DecodedInst
{
    Opcode op = Opcode::NOP;
    /** Index into the dispatch table (opcode, or the fallback slot when
     *  destination registers alias vector sources). */
    uint8_t exec = 0;
    /** Pre-extracted register indices (-1 when absent). */
    int8_t d = -1;
    int8_t s0 = -1;
    int8_t s1 = -1;
    /** Pipeline occupancy (OpcodeInfo::latency). */
    int32_t latency = 1;
    /** Intra-packet soft-dependency delay before this pipeline begins. */
    int32_t delay = 0;
    /** Branch target packet index; kNotBranch otherwise, kBadTarget for a
     *  branch whose label id is out of range (panics only if taken, like
     *  the reference). */
    int32_t target = -1;
    /** Index into DecodedProgram::rawCode (fallback execution). */
    uint32_t rawIndex = 0;
    int64_t imm = 0;
    /** Registers written (uid bit set). */
    uint64_t writeMask = 0;

    static constexpr int32_t kNotBranch = -1;
    static constexpr int32_t kBadTarget = -2;
};

/** One pre-decoded packet: a range of DecodedInst plus its read set. */
struct DecodedPacket
{
    uint32_t begin = 0;
    uint32_t end = 0;
    /** Union of registers read by the packet (issue interlock scan). */
    uint64_t readMask = 0;
};

/** Content fingerprint of a PackedProgram (decode-cache key). */
struct DecodeKey
{
    uint64_t h0 = 0;
    uint64_t h1 = 0;
    uint64_t instructions = 0;
    uint64_t packets = 0;

    bool operator==(const DecodeKey &other) const = default;
};

/** Fingerprint covering everything decoding depends on: instructions,
 *  labels, packet structure, and the noalias ABI declaration. */
DecodeKey fingerprintProgram(const PackedProgram &packed);

/**
 * A PackedProgram lowered to the pre-decoded representation. Immutable
 * after build(); safe to share across threads.
 */
class DecodedProgram
{
  public:
    /** Decode a packed program (one-time cost; cache via DecodeCache). */
    static std::shared_ptr<const DecodedProgram>
    build(const PackedProgram &packed);

    std::vector<DecodedInst> insts;
    std::vector<DecodedPacket> packets;
    /** Copy of the original instructions for fallback execution. */
    std::vector<Instruction> rawCode;
    DecodeKey key;
};

/**
 * Execute a decoded program: pipelined packet issue with register
 * interlocks via the mask scoreboard, matching the reference
 * TimingSimulator::runReference cycle-for-cycle and bit-for-bit.
 *
 * @param regs architectural registers (updated in place)
 * @param mem simulator memory (updated in place)
 * @param stats cumulative architectural counters (updated in place;
 *        TimingStats byte counts are reported as deltas against it)
 * @param maxPackets runaway-loop guard, checked periodically with exact
 *        overflow behavior (panics after executing maxPackets packets)
 */
TimingStats runDecoded(const DecodedProgram &dec, RegisterFile &regs,
                       Memory &mem, ExecStats &stats,
                       uint64_t maxPackets = 1ULL << 32);

/**
 * Thread-safe bounded cache of decoded programs keyed on content
 * fingerprint -- a member of the managed cache tier (common::ShardedLru,
 * DESIGN.md section 14). A miss decodes outside any lock (two threads
 * may race to decode the same program; both results are identical and
 * one wins the insert); when a shard exceeds its share of the capacity
 * the least-recently-used entry is evicted, so a long-lived service
 * keeps its hot decoded kernels instead of periodically dropping the
 * whole working set.
 */
class DecodeCache
{
  public:
    explicit DecodeCache(size_t maxEntries = 4096) : lru_(maxEntries) {}

    /** Decoded form of @p packed, reusing a cached copy when present. */
    std::shared_ptr<const DecodedProgram>
    lookupOrDecode(const PackedProgram &packed);

    /** hits / misses / per-entry LRU evictions. */
    using Stats = common::CacheStats;

    Stats stats() const { return lru_.stats(); }
    size_t size() const { return lru_.size(); }
    /** Enforced entry bound (size() never exceeds it). */
    size_t capacity() const { return lru_.capacity(); }
    void clear() { lru_.clear(); }

    /** Process-wide cache used by TimingSimulator::run. */
    static DecodeCache &global();

  private:
    struct KeyHash
    {
        size_t operator()(const DecodeKey &key) const
        {
            return static_cast<size_t>(key.h0 ^ (key.h1 * 0x9e3779b9u));
        }
    };

    common::ShardedLru<DecodeKey, std::shared_ptr<const DecodedProgram>,
                       KeyHash>
        lru_;
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_DECODED_H
