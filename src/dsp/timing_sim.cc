#include "dsp/timing_sim.h"

#include <algorithm>

#include "common/logging.h"
#include "dsp/decoded.h"
#include "dsp/deps.h"

namespace gcd2::dsp {

uint64_t
TimingSimulator::packetCost(const Program &prog, const Packet &packet,
                            const AliasAnalysis &alias, uint64_t *stallOut)
{
    // delay[k]: extra cycles instruction k waits on in-packet soft
    // producers before its own pipeline begins.
    std::vector<int> delay(packet.insts.size(), 0);
    int maxLatency = 0;
    uint64_t cost = 0;

    for (size_t k = 0; k < packet.insts.size(); ++k) {
        const size_t idx = packet.insts[k];
        const Instruction &inst = prog.code[idx];
        for (size_t m = 0; m < k; ++m) {
            const size_t earlier = packet.insts[m];
            const Dependency dep = classifyDependency(
                prog.code[earlier], inst, alias.mayAlias(earlier, idx));
            if (dep.kind == DepKind::Soft && dep.penalty > 0)
                delay[k] = std::max(delay[k], delay[m] + dep.penalty);
        }
        maxLatency = std::max(maxLatency, inst.info().latency);
        cost = std::max(cost,
                        static_cast<uint64_t>(delay[k] +
                                              inst.info().latency));
    }

    if (stallOut)
        *stallOut = cost - static_cast<uint64_t>(maxLatency);
    return cost;
}

uint64_t
TimingSimulator::staticCost(const PackedProgram &packed)
{
    AliasAnalysis alias(packed.program);
    uint64_t total = 0;
    for (const Packet &packet : packed.packets)
        total += packetCost(packed.program, packet, alias);
    return total;
}

TimingStats
TimingSimulator::run(const PackedProgram &packed, bool validate,
                     uint64_t maxPackets)
{
    if (validate)
        validatePackedProgram(packed);

    const std::shared_ptr<const DecodedProgram> dec =
        DecodeCache::global().lookupOrDecode(packed);
    return runDecoded(*dec, funcSim_.regs(), funcSim_.memory(),
                      funcSim_.mutableStats(), maxPackets);
}

TimingStats
TimingSimulator::runReference(const PackedProgram &packed, bool validate,
                              uint64_t maxPackets)
{
    if (validate)
        validatePackedProgram(packed);

    const Program &prog = packed.program;
    AliasAnalysis alias(prog);

    // Pipelined issue with register interlocks: packets issue at most one
    // per cycle and stall until every source register's producer has
    // written back; soft dependencies *inside* a packet add the Fig. 4
    // overlap penalty on top of the issue cycle. This reproduces the
    // paper's Fig. 4 numbers exactly (load + dependent add: 4 cycles
    // co-packed, 6 cycles split) while charging split soft dependencies
    // their real interlock cost.
    //
    // Precompute per-packet intra-packet delays (static per packet).
    std::vector<std::vector<int>> delays(packed.packets.size());
    for (size_t p = 0; p < packed.packets.size(); ++p) {
        const Packet &packet = packed.packets[p];
        auto &delay = delays[p];
        delay.assign(packet.insts.size(), 0);
        for (size_t k = 0; k < packet.insts.size(); ++k) {
            for (size_t m = 0; m < k; ++m) {
                const Dependency dep = classifyDependency(
                    prog.code[packet.insts[m]], prog.code[packet.insts[k]],
                    alias.mayAlias(packet.insts[m], packet.insts[k]));
                if (dep.kind == DepKind::Soft && dep.penalty > 0)
                    delay[k] = std::max(delay[k],
                                        delay[m] + dep.penalty);
            }
        }
    }

    TimingStats stats;
    const uint64_t loadedBefore = funcSim_.stats().bytesLoaded;
    const uint64_t storedBefore = funcSim_.stats().bytesStored;

    // Cycle each register's value becomes readable by a later packet.
    std::vector<uint64_t> ready(kNumScalarRegs + kNumVectorRegs, 0);
    uint64_t issue = 0;        // issue cycle of the current packet
    uint64_t lastIssue = 0;    // previous packet's issue cycle
    uint64_t completion = 0;   // latest write-back seen so far
    bool first = true;

    // Runaway guard hoisted out of the hot loop: the inner loop runs a
    // chunk of the remaining packet budget, so on overflow exactly
    // maxPackets packets have executed before the panic -- identical to a
    // per-packet check.
    constexpr uint64_t kPacketCheckInterval = 4096;
    uint64_t budget = maxPackets;
    size_t pc = 0;
    while (pc < packed.packets.size()) {
        GCD2_ASSERT(budget > 0, "packed program exceeded " << maxPackets
                                                           << " packets");
        uint64_t chunk = std::min(budget, kPacketCheckInterval);
        budget -= chunk;
        while (chunk-- > 0 && pc < packed.packets.size()) {
            const Packet &packet = packed.packets[pc];

            // Issue no earlier than one cycle after the previous packet,
            // and no earlier than every cross-packet source operand's
            // readiness.
            issue = first ? 0 : lastIssue + 1;
            for (size_t idx : packet.insts)
                for (int uid : regReads(prog.code[idx]))
                    issue =
                        std::max(issue, ready[static_cast<size_t>(uid)]);
            stats.stallCycles += issue - (first ? 0 : lastIssue + 1);
            first = false;
            lastIssue = issue;

            ++stats.packetsExecuted;
            stats.instructionsExecuted += packet.insts.size();

            int takenLabel = -1;
            const auto &delay = delays[pc];
            for (size_t k = 0; k < packet.insts.size(); ++k) {
                const size_t idx = packet.insts[k];
                const Instruction &inst = prog.code[idx];
                const uint64_t done =
                    issue + static_cast<uint64_t>(delay[k]) +
                    static_cast<uint64_t>(inst.info().latency);
                completion = std::max(completion, done);
                for (int uid : regWrites(inst))
                    ready[static_cast<size_t>(uid)] = done;
                stats.stallCycles += static_cast<uint64_t>(delay[k]);

                const int label = funcSim_.execute(inst);
                if (label >= 0)
                    takenLabel = label;
            }

            if (takenLabel >= 0) {
                GCD2_ASSERT(static_cast<size_t>(takenLabel) <
                                packed.labelPacket.size(),
                            "branch to unknown label " << takenLabel);
                pc = packed.labelPacket[takenLabel];
            } else {
                ++pc;
            }
        }
    }

    stats.cycles = completion;
    stats.bytesLoaded = funcSim_.stats().bytesLoaded - loadedBefore;
    stats.bytesStored = funcSim_.stats().bytesStored - storedBefore;
    return stats;
}

} // namespace gcd2::dsp
