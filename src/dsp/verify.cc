#include "dsp/verify.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "dsp/deps.h"
#include "vliw/cfg.h"

namespace gcd2::dsp {

namespace {

constexpr int kTotalRegs = kNumScalarRegs + kNumVectorRegs;

using RegSet = std::vector<bool>; // indexed by regUid

void
addIssue(std::vector<VerifyIssue> &issues, size_t idx, std::string msg)
{
    issues.push_back(VerifyIssue{idx, std::move(msg)});
}

} // namespace

std::vector<VerifyIssue>
verifyProgram(const Program &prog, std::vector<int8_t> abiScalarRegs)
{
    std::vector<VerifyIssue> issues;

    if (abiScalarRegs.empty())
        abiScalarRegs = prog.noaliasRegs;

    // --- labels ----------------------------------------------------------
    for (size_t l = 0; l < prog.labels.size(); ++l) {
        if (prog.labels[l] == SIZE_MAX)
            addIssue(issues, SIZE_MAX,
                     "label L" + std::to_string(l) + " never bound");
        else if (prog.labels[l] > prog.code.size())
            addIssue(issues, SIZE_MAX,
                     "label L" + std::to_string(l) + " out of range");
    }

    // --- per-instruction shape -------------------------------------------
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Instruction &inst = prog.code[i];
        const OpcodeInfo &meta = inst.info();

        auto checkOperand = [&](const Operand &op, const char *what) {
            if (!op.valid())
                return;
            const int limit = op.cls == RegClass::Scalar ? kNumScalarRegs
                                                         : kNumVectorRegs;
            if (op.idx < 0 || op.idx >= limit)
                addIssue(issues, i,
                         std::string(what) + " register out of range");
        };
        checkOperand(inst.dst[0], "destination");
        checkOperand(inst.src[0], "source 0");
        checkOperand(inst.src[1], "source 1");

        if (meta.writesPair && inst.dst[0].valid() &&
            inst.dst[0].idx % 2 != 0)
            addIssue(issues, i, "pair destination must be even");
        if (meta.readsPairSrc && inst.src[0].valid() &&
            inst.src[0].idx % 2 != 0)
            addIssue(issues, i, "pair source must be even");

        if (inst.isBranch() &&
            (inst.imm < 0 ||
             static_cast<size_t>(inst.imm) >= prog.labels.size()))
            addIssue(issues, i, "branch to unknown label");
    }
    if (!issues.empty())
        return issues; // structural problems make dataflow meaningless

    // --- may-initialized dataflow (use before def) -------------------------
    const vliw::Cfg cfg = vliw::buildCfg(prog);
    const size_t numBlocks = cfg.blocks.size();

    // Successor blocks: fallthrough plus branch targets.
    auto blockOf = [&](size_t instIdx) {
        for (size_t b = 0; b < numBlocks; ++b)
            if (instIdx >= cfg.blocks[b].begin &&
                instIdx < cfg.blocks[b].end)
                return b;
        return numBlocks;
    };
    std::vector<std::vector<size_t>> succ(numBlocks);
    for (size_t b = 0; b < numBlocks; ++b) {
        const auto &block = cfg.blocks[b];
        const Instruction &last = prog.code[block.end - 1];
        const bool falls = !(last.op == Opcode::JUMP);
        if (falls && b + 1 < numBlocks)
            succ[b].push_back(b + 1);
        if (last.isBranch()) {
            const size_t target =
                prog.labels[static_cast<size_t>(last.imm)];
            if (target < prog.code.size())
                succ[b].push_back(blockOf(target));
        }
    }

    RegSet entry(kTotalRegs, false);
    for (int8_t reg : abiScalarRegs)
        entry[static_cast<size_t>(reg)] = true;

    std::vector<RegSet> in(numBlocks, RegSet(kTotalRegs, false));
    std::vector<RegSet> out(numBlocks, RegSet(kTotalRegs, false));
    in[0] = entry;

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < numBlocks; ++b) {
            RegSet state = in[b];
            for (size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end;
                 ++i)
                for (int uid : regWrites(prog.code[i]))
                    state[static_cast<size_t>(uid)] = true;
            if (state != out[b]) {
                out[b] = state;
                changed = true;
            }
            for (size_t s : succ[b]) {
                for (int uid = 0; uid < kTotalRegs; ++uid) {
                    if (out[b][static_cast<size_t>(uid)] &&
                        !in[s][static_cast<size_t>(uid)]) {
                        in[s][static_cast<size_t>(uid)] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    for (size_t b = 0; b < numBlocks; ++b) {
        RegSet state = in[b];
        for (size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
            for (int uid : regReads(prog.code[i])) {
                if (!state[static_cast<size_t>(uid)]) {
                    std::ostringstream oss;
                    oss << "read of never-written register "
                        << (uid < kNumScalarRegs
                                ? "r" + std::to_string(uid)
                                : "v" + std::to_string(uid -
                                                       kNumScalarRegs))
                        << " in '" << prog.code[i].toString() << "'";
                    addIssue(issues, i, oss.str());
                    state[static_cast<size_t>(uid)] = true; // report once
                }
            }
            for (int uid : regWrites(prog.code[i]))
                state[static_cast<size_t>(uid)] = true;
        }
    }
    return issues;
}

void
requireVerified(const Program &prog, std::vector<int8_t> abiScalarRegs)
{
    const auto issues = verifyProgram(prog, std::move(abiScalarRegs));
    if (issues.empty())
        return;
    std::ostringstream oss;
    oss << "program verification failed:";
    for (const VerifyIssue &issue : issues) {
        oss << "\n  ";
        if (issue.instIndex != SIZE_MAX)
            oss << "[" << issue.instIndex << "] ";
        oss << issue.message;
    }
    GCD2_PANIC(oss.str());
}

} // namespace gcd2::dsp
