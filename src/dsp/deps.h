/**
 * @file
 * Hard/soft dependency classification between DSP instructions.
 *
 * The paper's key architectural observation (Section IV-C): the VLIW
 * pipeline tolerates *soft* dependencies inside a packet -- the result is
 * still correct, but the packet stalls for some cycles -- whereas *hard*
 * dependencies make same-packet placement illegal. Soft dependencies can
 * only be RAW or WAR (paper, footnote 3). Examples from Fig. 4: a load (or
 * scalar arithmetic) feeding a consumer is soft; packing two such 3-cycle
 * instructions together costs 4 cycles instead of 3.
 *
 * Classification implemented here:
 *  - RAW where the producer writes a scalar register: Soft. Penalty 1 for
 *    ALU/shift/load producers (one extra overlap stage, matching Fig. 4),
 *    2 for the slower multiply pipeline.
 *  - RAW where the producer writes a vector register: Hard (no intra-packet
 *    forwarding path for 1024-bit results).
 *  - WAW: Hard.
 *  - WAR: Soft with penalty 0 (reads happen in the packet's read stage,
 *    before any write commits, so co-packing is free; across packets the
 *    ordering must still be respected).
 *  - Memory: store->load, load->store, store->store are Hard unless the
 *    caller proves the accesses disjoint.
 */
#ifndef GCD2_DSP_DEPS_H
#define GCD2_DSP_DEPS_H

#include <cstdint>

#include "dsp/isa.h"

namespace gcd2::dsp {

/** Dependency classes with respect to same-packet placement. */
enum class DepKind : uint8_t
{
    None, ///< no ordering constraint
    Soft, ///< same-packet placement allowed, costs `penalty` stall cycles
    Hard, ///< same-packet placement forbidden
};

/** A classified dependency edge. */
struct Dependency
{
    DepKind kind = DepKind::None;
    /** Stall cycles added when both ends share a packet (soft only). */
    int penalty = 0;
};

/** Unique id of a register (scalars then vectors). */
inline int
regUid(const Operand &op)
{
    return op.cls == RegClass::Scalar ? op.idx : kNumScalarRegs + op.idx;
}

/** Uid-mask of the scalar (forwardable) register file. */
inline constexpr uint64_t kScalarUidMask =
    (uint64_t{1} << kNumScalarRegs) - 1;
/** Uid-mask of the vector register file. */
inline constexpr uint64_t kVectorUidMask = ~kScalarUidMask;

/**
 * Fixed-capacity register-uid list. An instruction touches at most five
 * uids (paired destination, paired first source, second source), so the
 * accessor functions below can return by value without heap traffic --
 * they sit on every dependence-classification and dataflow hot path.
 */
class RegList
{
  public:
    void push(int uid) { uids_[count_++] = static_cast<int8_t>(uid); }

    const int8_t *begin() const { return uids_; }
    const int8_t *end() const { return uids_ + count_; }
    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    int operator[](size_t i) const { return uids_[i]; }

  private:
    int8_t uids_[5] = {};
    uint8_t count_ = 0;
};

/** Register uids written by an instruction (including pair highs). */
RegList regWrites(const Instruction &inst);

/**
 * Register uids read by an instruction (sources, pair-source highs, and
 * read-modify-write destinations).
 */
RegList regReads(const Instruction &inst);

/** An instruction's register footprint as uid bit-masks. */
struct RegMasks
{
    uint64_t reads = 0;
    uint64_t writes = 0;
};

/**
 * Mask form of regReads/regWrites, computed in a handful of shifts --
 * the hot-path representation (classifyDependency, the IDG builders,
 * the hazard lint, and the decoder all work on these masks).
 */
inline RegMasks
regMasks(const Instruction &inst)
{
    const OpcodeInfo &meta = inst.info();
    RegMasks m;
    if (inst.dst[0].valid()) {
        const int uid = regUid(inst.dst[0]);
        uint64_t bits = uint64_t{1} << uid;
        if (meta.writesPair)
            bits |= uint64_t{1} << (uid + 1);
        m.writes = bits;
        if (meta.readsDst)
            m.reads |= bits;
    }
    if (inst.src[0].valid()) {
        const int uid = regUid(inst.src[0]);
        m.reads |= uint64_t{1} << uid;
        if (meta.readsPairSrc)
            m.reads |= uint64_t{1} << (uid + 1);
    }
    if (inst.src[1].valid())
        m.reads |= uint64_t{1} << regUid(inst.src[1]);
    return m;
}

/**
 * Classify the dependency of @p late on @p early (program order:
 * early first).
 *
 * @param memMayAlias whether the two instructions' memory accesses (if
 *        any) may touch overlapping addresses; callers that track base
 *        register versions can pass false for provably disjoint accesses.
 */
Dependency classifyDependency(const Instruction &early,
                              const Instruction &late, bool memMayAlias);

/** Byte footprint of a memory access (0 for non-memory opcodes). */
int memAccessBytes(const Instruction &inst);

} // namespace gcd2::dsp

#endif // GCD2_DSP_DEPS_H
