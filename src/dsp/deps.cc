#include "dsp/deps.h"

#include <algorithm>

namespace gcd2::dsp {

namespace {

/** True if @p uid appears in @p uids. */
bool
contains(const std::vector<int> &uids, int uid)
{
    return std::find(uids.begin(), uids.end(), uid) != uids.end();
}

bool
intersects(const std::vector<int> &a, const std::vector<int> &b)
{
    for (int uid : a)
        if (contains(b, uid))
            return true;
    return false;
}

/** Soft-dependency stall for a RAW on a scalar producer. */
int
scalarForwardPenalty(const Instruction &producer)
{
    return producer.info().unit == UnitKind::Mult ? 2 : 1;
}

} // namespace

std::vector<int>
regWrites(const Instruction &inst)
{
    std::vector<int> out;
    const OpcodeInfo &meta = inst.info();
    if (inst.dst[0].valid()) {
        out.push_back(regUid(inst.dst[0]));
        if (meta.writesPair)
            out.push_back(regUid(inst.dst[0]) + 1);
    }
    return out;
}

std::vector<int>
regReads(const Instruction &inst)
{
    std::vector<int> out;
    const OpcodeInfo &meta = inst.info();
    if (inst.src[0].valid()) {
        out.push_back(regUid(inst.src[0]));
        if (meta.readsPairSrc)
            out.push_back(regUid(inst.src[0]) + 1);
    }
    if (inst.src[1].valid())
        out.push_back(regUid(inst.src[1]));
    if (meta.readsDst && inst.dst[0].valid()) {
        out.push_back(regUid(inst.dst[0]));
        if (meta.writesPair)
            out.push_back(regUid(inst.dst[0]) + 1);
    }
    return out;
}

int
memAccessBytes(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::LOADB:
      case Opcode::STOREB:
        return 1;
      case Opcode::LOADW:
      case Opcode::STOREW:
        return 4;
      case Opcode::VLOAD:
      case Opcode::VSTORE:
        return kVectorBytes;
      default:
        return 0;
    }
}

Dependency
classifyDependency(const Instruction &early, const Instruction &late,
                   bool memMayAlias)
{
    const auto earlyWrites = regWrites(early);
    const auto earlyReads = regReads(early);
    const auto lateWrites = regWrites(late);
    const auto lateReads = regReads(late);

    Dependency dep;

    auto upgrade = [&](DepKind kind, int penalty) {
        if (kind > dep.kind)
            dep = Dependency{kind, penalty};
        else if (kind == dep.kind && kind == DepKind::Soft)
            dep.penalty = std::max(dep.penalty, penalty);
    };

    // Memory ordering: any pair involving a store that may alias.
    const MemKind earlyMem = early.info().mem;
    const MemKind lateMem = late.info().mem;
    if (earlyMem != MemKind::None && lateMem != MemKind::None &&
        (earlyMem == MemKind::Store || lateMem == MemKind::Store) &&
        memMayAlias) {
        upgrade(DepKind::Hard, 0);
    }

    // RAW: late reads what early writes.
    for (int uid : earlyWrites) {
        if (contains(lateReads, uid)) {
            if (uid < kNumScalarRegs)
                upgrade(DepKind::Soft, scalarForwardPenalty(early));
            else
                upgrade(DepKind::Hard, 0);
        }
    }

    // WAW: both write the same register.
    if (intersects(earlyWrites, lateWrites))
        upgrade(DepKind::Hard, 0);

    // WAR: late writes what early reads (free when co-packed: all reads
    // happen in the read stage before any write commits).
    if (intersects(earlyReads, lateWrites))
        upgrade(DepKind::Soft, 0);

    return dep;
}

} // namespace gcd2::dsp
