#include "dsp/deps.h"

namespace gcd2::dsp {

namespace {

/** Soft-dependency stall for a RAW on a scalar producer. */
int
scalarForwardPenalty(const Instruction &producer)
{
    return producer.info().unit == UnitKind::Mult ? 2 : 1;
}

} // namespace

RegList
regWrites(const Instruction &inst)
{
    RegList out;
    const OpcodeInfo &meta = inst.info();
    if (inst.dst[0].valid()) {
        out.push(regUid(inst.dst[0]));
        if (meta.writesPair)
            out.push(regUid(inst.dst[0]) + 1);
    }
    return out;
}

RegList
regReads(const Instruction &inst)
{
    RegList out;
    const OpcodeInfo &meta = inst.info();
    if (inst.src[0].valid()) {
        out.push(regUid(inst.src[0]));
        if (meta.readsPairSrc)
            out.push(regUid(inst.src[0]) + 1);
    }
    if (inst.src[1].valid())
        out.push(regUid(inst.src[1]));
    if (meta.readsDst && inst.dst[0].valid()) {
        out.push(regUid(inst.dst[0]));
        if (meta.writesPair)
            out.push(regUid(inst.dst[0]) + 1);
    }
    return out;
}

int
memAccessBytes(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::LOADB:
      case Opcode::STOREB:
        return 1;
      case Opcode::LOADW:
      case Opcode::STOREW:
        return 4;
      case Opcode::VLOAD:
      case Opcode::VSTORE:
        return kVectorBytes;
      default:
        return 0;
    }
}

Dependency
classifyDependency(const Instruction &early, const Instruction &late,
                   bool memMayAlias)
{
    const RegMasks e = regMasks(early);
    const RegMasks l = regMasks(late);

    // The hard aspects dominate in the severity lattice, so each can
    // return as soon as it holds; among the soft aspects a penalized
    // scalar RAW dominates a free WAR.

    // Memory ordering: any pair involving a store that may alias.
    const MemKind earlyMem = early.info().mem;
    const MemKind lateMem = late.info().mem;
    if (earlyMem != MemKind::None && lateMem != MemKind::None &&
        (earlyMem == MemKind::Store || lateMem == MemKind::Store) &&
        memMayAlias)
        return Dependency{DepKind::Hard, 0};

    // WAW: both write the same register.
    if ((e.writes & l.writes) != 0)
        return Dependency{DepKind::Hard, 0};

    // RAW: late reads what early writes. No intra-packet forwarding
    // path exists for 1024-bit vector results, so a vector RAW is hard;
    // a scalar RAW is soft at the producer's forwarding penalty.
    const uint64_t raw = e.writes & l.reads;
    if ((raw & kVectorUidMask) != 0)
        return Dependency{DepKind::Hard, 0};
    if (raw != 0)
        return Dependency{DepKind::Soft, scalarForwardPenalty(early)};

    // WAR: late writes what early reads (free when co-packed: all reads
    // happen in the read stage before any write commits).
    if ((e.reads & l.writes) != 0)
        return Dependency{DepKind::Soft, 0};

    return Dependency{};
}

} // namespace gcd2::dsp
