/**
 * @file
 * VLIW packets, slot-assignment feasibility, and packed programs.
 *
 * A packet holds up to four instructions, each of which must be assignable
 * to a distinct slot allowed by its slot mask (this encodes all the
 * "limited number of slots for each type" constraints from the paper: one
 * store port, one shift unit, one permute unit, two multiply pipelines,
 * two memory slots). At most one branch per packet, and a taken branch
 * transfers control to the packet holding the target label.
 */
#ifndef GCD2_DSP_PACKET_H
#define GCD2_DSP_PACKET_H

#include <string>
#include <vector>

#include "dsp/isa.h"

namespace gcd2::dsp {

/** One VLIW packet: instruction indices into the owning program. */
struct Packet
{
    std::vector<size_t> insts;
};

/**
 * Can the given instructions legally share one packet, considering only
 * slot/resource constraints (dependence legality is the packer's job)?
 */
bool slotsFeasible(const Program &prog, const std::vector<size_t> &insts);

/** slotsFeasible() for an existing packet plus one candidate. */
bool slotsFeasibleWith(const Program &prog, const Packet &packet,
                       size_t candidate);

/**
 * A program grouped into VLIW packets.
 *
 * Invariants (checked by validatePackedProgram):
 *  - every instruction index appears in exactly one packet;
 *  - packet membership is slot-feasible and free of intra-packet hard
 *    dependencies;
 *  - instructions within a packet are listed in increasing original
 *    program order (so in-order execution respects soft RAW/WAR);
 *  - each label maps to the packet that begins with its target region, so
 *    branches land on packet boundaries.
 */
struct PackedProgram
{
    Program program;
    std::vector<Packet> packets;
    /** labelPacket[l] = packet index that label l begins. */
    std::vector<size_t> labelPacket;

    std::string toString() const;
};

/**
 * Panics if the packed program violates any invariant listed above.
 * Used by tests and (in debug paths) by the timing simulator.
 */
void validatePackedProgram(const PackedProgram &packed);

} // namespace gcd2::dsp

#endif // GCD2_DSP_PACKET_H
