/**
 * @file
 * Functional (architectural) simulator for the DSP ISA.
 *
 * Executes a Program in instruction order against a register file and a
 * Memory, implementing each opcode's exact integer semantics. The timing
 * simulator reuses the same per-instruction executor so the packed and
 * unpacked executions are guaranteed to compute identical results.
 */
#ifndef GCD2_DSP_FUNCTIONAL_SIM_H
#define GCD2_DSP_FUNCTIONAL_SIM_H

#include <array>
#include <cstdint>

#include "dsp/isa.h"
#include "dsp/memory.h"

namespace gcd2::dsp {

/** Architectural register state. */
struct RegisterFile
{
    std::array<uint32_t, kNumScalarRegs> scalar{};
    std::array<std::array<uint8_t, kVectorBytes>, kNumVectorRegs> vector{};

    int16_t
    vecHalf(int reg, int lane) const
    {
        int16_t v;
        std::memcpy(&v, vector[reg].data() + 2 * lane, 2);
        return v;
    }

    void
    setVecHalf(int reg, int lane, int16_t v)
    {
        std::memcpy(vector[reg].data() + 2 * lane, &v, 2);
    }

    int32_t
    vecWord(int reg, int lane) const
    {
        int32_t v;
        std::memcpy(&v, vector[reg].data() + 4 * lane, 4);
        return v;
    }

    void
    setVecWord(int reg, int lane, int32_t v)
    {
        std::memcpy(vector[reg].data() + 4 * lane, &v, 4);
    }
};

/** Cumulative architectural event counters. */
struct ExecStats
{
    uint64_t instructions = 0;
    uint64_t bytesLoaded = 0;
    uint64_t bytesStored = 0;
    uint64_t branchesTaken = 0;
};

/**
 * Instruction-at-a-time simulator.
 *
 * Branch semantics: the imm field of JUMP/JUMPNZ indexes Program::labels,
 * which holds the target instruction index.
 */
/**
 * Execute one instruction against explicit architectural state: the
 * single source of truth for opcode semantics. FunctionalSimulator wraps
 * it, and the pre-decoded engine (decoded.cc) falls back to it for the
 * rare operand-aliasing cases its vectorized lane loops do not model.
 *
 * @return the label id of the taken branch target, or -1 to fall through.
 */
int executeInstruction(const Instruction &inst, RegisterFile &regs,
                       Memory &mem, ExecStats &stats);

class FunctionalSimulator
{
  public:
    explicit FunctionalSimulator(Memory &mem) : mem_(mem) {}

    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }
    Memory &memory() { return mem_; }
    const ExecStats &stats() const { return stats_; }

    /** Mutable counters for engines that execute on this simulator's
     *  behalf (the decoded engine updates the same cumulative stats so
     *  TimingSimulator deltas are engine-agnostic). */
    ExecStats &mutableStats() { return stats_; }

    /**
     * Execute one instruction.
     *
     * @return the label id of the taken branch target, or -1 to fall
     *         through to the next instruction.
     */
    int execute(const Instruction &inst);

    /**
     * Run a whole program from instruction 0 until it falls off the end.
     *
     * @param maxSteps guard against infinite loops (panics if exceeded).
     */
    void run(const Program &prog, uint64_t maxSteps = 1ULL << 32);

  private:
    Memory &mem_;
    RegisterFile regs_;
    ExecStats stats_;
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_FUNCTIONAL_SIM_H
