#include "dsp/isa.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace gcd2::dsp {

namespace {

// Slot masks (bit s set => the instruction may occupy VLIW slot s).
constexpr uint8_t kAnySlot = 0b1111;
constexpr uint8_t kMemSlots = 0b0011;   // slots 0-1: load/store units
constexpr uint8_t kStoreSlot = 0b0001;  // slot 0: the single store port
constexpr uint8_t kMultSlots = 0b1100;  // slots 2-3: multiply pipelines
constexpr uint8_t kShiftSlot = 0b0100;  // slot 2: the single shift unit
constexpr uint8_t kPermSlot = 0b1000;   // slot 3: the single permute unit
constexpr uint8_t kBranchSlots = 0b1100;

// Shorthand for building the opcode table rows.
constexpr OpcodeInfo
row(const char *name, UnitKind unit, MemKind mem, int lat, uint8_t slots,
    bool readsDst = false, bool writesPair = false, bool readsPairSrc = false,
    int multUnits = -1)
{
    if (multUnits < 0)
        multUnits = unit == UnitKind::Mult ? 1 : 0;
    return OpcodeInfo{name, unit, mem, lat, slots,
                      readsDst, writesPair, readsPairSrc, multUnits};
}

const std::array<OpcodeInfo, static_cast<size_t>(Opcode::kNumOpcodes)>
opcodeTable = {
    // Scalar ALU.
    row("nop", UnitKind::Alu, MemKind::None, 1, kAnySlot),
    row("movi", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("mov", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("add", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("addi", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("sub", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("mul", UnitKind::Mult, MemKind::None, 4, kMultSlots),
    row("shl", UnitKind::Shift, MemKind::None, 3, kShiftSlot),
    row("shra", UnitKind::Shift, MemKind::None, 3, kShiftSlot),
    row("and", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("or", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("xor", UnitKind::Alu, MemKind::None, 3, kAnySlot),
    row("div", UnitKind::Mult, MemKind::None, 48, kMultSlots),
    row("combine4", UnitKind::Alu, MemKind::None, 3, kAnySlot),

    // Scalar memory.
    row("loadb", UnitKind::Mem, MemKind::Load, 3, kMemSlots),
    row("loadw", UnitKind::Mem, MemKind::Load, 3, kMemSlots),
    row("storeb", UnitKind::Mem, MemKind::Store, 3, kStoreSlot),
    row("storew", UnitKind::Mem, MemKind::Store, 3, kStoreSlot),

    // Control flow.
    row("jump", UnitKind::Branch, MemKind::None, 2, kBranchSlots),
    row("jumpnz", UnitKind::Branch, MemKind::None, 2, kBranchSlots),

    // Vector memory / moves.
    row("vload", UnitKind::Mem, MemKind::Load, 3, kMemSlots),
    row("vstore", UnitKind::Mem, MemKind::Store, 3, kStoreSlot),
    row("vmov", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vsplatw", UnitKind::Permute, MemKind::None, 3, kPermSlot),

    // Vector integer ALU.
    row("vaddb", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vaddh", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vaddw", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vsubh", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vsubw", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vmaxb", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vminb", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vmaxub", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vminub", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),
    row("vavgb", UnitKind::VecAlu, MemKind::None, 3, kAnySlot),

    // SIMD multiplies.
    row("vmpy", UnitKind::Mult, MemKind::None, 4, kMultSlots,
        /*readsDst=*/false, /*writesPair=*/true),
    row("vmpyacc", UnitKind::Mult, MemKind::None, 4, kMultSlots,
        /*readsDst=*/true, /*writesPair=*/true),
    // vmpa retires two vectors' worth of multiplies: it occupies both
    // multiply pipelines, so at most one fits per packet.
    row("vmpa", UnitKind::Mult, MemKind::None, 4, kMultSlots,
        /*readsDst=*/true, /*writesPair=*/true, /*readsPairSrc=*/true,
        /*multUnits=*/2),
    row("vrmpy", UnitKind::Mult, MemKind::None, 4, kMultSlots,
        /*readsDst=*/true),
    row("vtmpy", UnitKind::Mult, MemKind::None, 4, kMultSlots,
        /*readsDst=*/true, /*writesPair=*/true, /*readsPairSrc=*/true,
        /*multUnits=*/2),
    row("vmpye", UnitKind::Mult, MemKind::None, 4, kMultSlots),
    row("vmpyiw", UnitKind::Mult, MemKind::None, 4, kMultSlots),

    // Vector shift / narrowing.
    row("vasrhb", UnitKind::Shift, MemKind::None, 3, kShiftSlot,
        /*readsDst=*/false, /*writesPair=*/false, /*readsPairSrc=*/true),
    row("vasrhub", UnitKind::Shift, MemKind::None, 3, kShiftSlot,
        /*readsDst=*/false, /*writesPair=*/false, /*readsPairSrc=*/true),
    row("vasrwh", UnitKind::Shift, MemKind::None, 3, kShiftSlot,
        /*readsDst=*/false, /*writesPair=*/false, /*readsPairSrc=*/true),

    // Vector permutes.
    row("vshuff", UnitKind::Permute, MemKind::None, 3, kPermSlot,
        /*readsDst=*/false, /*writesPair=*/true),
    row("vdeal", UnitKind::Permute, MemKind::None, 3, kPermSlot,
        /*readsDst=*/false, /*writesPair=*/true),
    row("vshuffe", UnitKind::Permute, MemKind::None, 3, kPermSlot),
    row("vshuffo", UnitKind::Permute, MemKind::None, 3, kPermSlot),
    row("vlut", UnitKind::Permute, MemKind::None, 4, kPermSlot,
        /*readsDst=*/false, /*writesPair=*/false, /*readsPairSrc=*/true),
};

std::string
operandToString(const Operand &op)
{
    if (!op.valid())
        return "?";
    std::ostringstream oss;
    oss << (op.cls == RegClass::Scalar ? 'r' : 'v') << int(op.idx);
    return oss.str();
}

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = static_cast<size_t>(op);
    GCD2_ASSERT(idx < opcodeTable.size(), "bad opcode " << idx);
    return opcodeTable[idx];
}

std::string
Instruction::toString() const
{
    const OpcodeInfo &meta = info();
    std::ostringstream oss;
    oss << meta.mnemonic;
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        oss << (first ? " " : ", ");
        first = false;
        return oss;
    };
    if (dst[0].valid()) {
        if (meta.writesPair) {
            sep() << operandToString(Operand{dst[0].cls,
                                             static_cast<int8_t>(
                                                 dst[0].idx + 1)})
                  << ":" << operandToString(dst[0]);
        } else {
            sep() << operandToString(dst[0]);
        }
    }
    for (const auto &s : src) {
        if (s.valid())
            sep() << operandToString(s);
    }
    switch (info().mem) {
      case MemKind::Load:
      case MemKind::Store:
        sep() << "#" << imm;
        break;
      case MemKind::None:
        if (isBranch()) {
            sep() << "L" << imm;
        } else if (op == Opcode::MOVI || op == Opcode::ADDI ||
                   op == Opcode::SHL || op == Opcode::SHRA ||
                   op == Opcode::VASRHB || op == Opcode::VASRHUB ||
                   op == Opcode::VASRWH) {
            sep() << "#" << imm;
        }
        break;
    }
    return oss.str();
}

void
Program::declareNoalias(int reg, int64_t extentBytes)
{
    GCD2_ASSERT(reg >= 0 && reg < kNumScalarRegs,
                "noalias base must be a scalar register");
    GCD2_ASSERT(extentBytes >= 0, "negative buffer extent");
    noaliasExtents.resize(noaliasRegs.size(), 0);
    for (size_t i = 0; i < noaliasRegs.size(); ++i)
        if (noaliasRegs[i] == reg) {
            noaliasExtents[i] = std::max(noaliasExtents[i], extentBytes);
            return;
        }
    noaliasRegs.push_back(static_cast<int8_t>(reg));
    noaliasExtents.push_back(extentBytes);
}

int
Program::newLabel()
{
    labels.push_back(SIZE_MAX);
    return static_cast<int>(labels.size()) - 1;
}

void
Program::bindLabel(int label)
{
    GCD2_ASSERT(label >= 0 && static_cast<size_t>(label) < labels.size(),
                "unknown label " << label);
    labels[label] = code.size();
}

size_t
Program::push(Instruction inst)
{
    code.push_back(inst);
    return code.size() - 1;
}

std::string
Program::toString() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < code.size(); ++i) {
        for (size_t l = 0; l < labels.size(); ++l)
            if (labels[l] == i)
                oss << "L" << l << ":\n";
        oss << "  " << code[i].toString() << "\n";
    }
    return oss.str();
}

// Factory helpers -------------------------------------------------------

namespace {

void
requireScalar(const Operand &op, const char *what)
{
    GCD2_ASSERT(op.cls == RegClass::Scalar &&
                    op.idx >= 0 && op.idx < kNumScalarRegs,
                what << " must be a scalar register");
}

void
requireVector(const Operand &op, const char *what)
{
    GCD2_ASSERT(op.cls == RegClass::Vector &&
                    op.idx >= 0 && op.idx < kNumVectorRegs,
                what << " must be a vector register");
}

void
requirePairBase(const Operand &op, const char *what)
{
    requireVector(op, what);
    GCD2_ASSERT(op.idx % 2 == 0 && op.idx + 1 < kNumVectorRegs,
                what << " must be an even vector register (pair base)");
}

} // namespace

Instruction
makeNop()
{
    return Instruction{Opcode::NOP, {}, {}, 0};
}

Instruction
makeMovi(Operand rd, int64_t imm)
{
    requireScalar(rd, "movi dst");
    return Instruction{Opcode::MOVI, {rd}, {}, imm};
}

Instruction
makeMov(Operand rd, Operand rs)
{
    requireScalar(rd, "mov dst");
    requireScalar(rs, "mov src");
    return Instruction{Opcode::MOV, {rd}, {rs, Operand{}}, 0};
}

Instruction
makeBinary(Opcode op, Operand rd, Operand rs, Operand rt)
{
    GCD2_ASSERT(op == Opcode::ADD || op == Opcode::SUB || op == Opcode::MUL ||
                    op == Opcode::AND || op == Opcode::OR ||
                    op == Opcode::XOR || op == Opcode::DIV,
                "makeBinary: unsupported opcode");
    requireScalar(rd, "binary dst");
    requireScalar(rs, "binary src0");
    requireScalar(rt, "binary src1");
    return Instruction{op, {rd}, {rs, rt}, 0};
}

Instruction
makeAddi(Operand rd, Operand rs, int64_t imm)
{
    requireScalar(rd, "addi dst");
    requireScalar(rs, "addi src");
    return Instruction{Opcode::ADDI, {rd}, {rs, Operand{}}, imm};
}

Instruction
makeShift(Opcode op, Operand rd, Operand rs, int64_t amount)
{
    GCD2_ASSERT(op == Opcode::SHL || op == Opcode::SHRA,
                "makeShift: unsupported opcode");
    requireScalar(rd, "shift dst");
    requireScalar(rs, "shift src");
    return Instruction{op, {rd}, {rs, Operand{}}, amount};
}

Instruction
makeCombine4(Operand rd, Operand rs)
{
    requireScalar(rd, "combine4 dst");
    requireScalar(rs, "combine4 src");
    return Instruction{Opcode::COMBINE4, {rd}, {rs, Operand{}}, 0};
}

Instruction
makeLoad(Opcode op, Operand rd, Operand base, int64_t offset)
{
    GCD2_ASSERT(op == Opcode::LOADB || op == Opcode::LOADW,
                "makeLoad: unsupported opcode");
    requireScalar(rd, "load dst");
    requireScalar(base, "load base");
    return Instruction{op, {rd}, {base, Operand{}}, offset};
}

Instruction
makeStore(Opcode op, Operand base, Operand data, int64_t offset)
{
    GCD2_ASSERT(op == Opcode::STOREB || op == Opcode::STOREW,
                "makeStore: unsupported opcode");
    requireScalar(base, "store base");
    requireScalar(data, "store data");
    return Instruction{op, {}, {base, data}, offset};
}

Instruction
makeJump(int label)
{
    return Instruction{Opcode::JUMP, {}, {}, label};
}

Instruction
makeJumpNz(Operand cond, int label)
{
    requireScalar(cond, "jumpnz cond");
    return Instruction{Opcode::JUMPNZ, {}, {cond, Operand{}}, label};
}

Instruction
makeVload(Operand vd, Operand base, int64_t offset)
{
    requireVector(vd, "vload dst");
    requireScalar(base, "vload base");
    return Instruction{Opcode::VLOAD, {vd}, {base, Operand{}}, offset};
}

Instruction
makeVstore(Operand base, Operand vu, int64_t offset)
{
    requireScalar(base, "vstore base");
    requireVector(vu, "vstore data");
    return Instruction{Opcode::VSTORE, {}, {base, vu}, offset};
}

Instruction
makeVsplatw(Operand vd, Operand rs)
{
    requireVector(vd, "vsplatw dst");
    requireScalar(rs, "vsplatw src");
    return Instruction{Opcode::VSPLATW, {vd}, {rs, Operand{}}, 0};
}

Instruction
makeVecBinary(Opcode op, Operand vd, Operand vu, Operand vv)
{
    GCD2_ASSERT(op == Opcode::VADDB || op == Opcode::VADDH ||
                    op == Opcode::VADDW || op == Opcode::VSUBH ||
                    op == Opcode::VSUBW || op == Opcode::VMAXB ||
                    op == Opcode::VMINB || op == Opcode::VMAXUB ||
                    op == Opcode::VMINUB || op == Opcode::VAVGB ||
                    op == Opcode::VMOV,
                "makeVecBinary: unsupported opcode");
    requireVector(vd, "vec dst");
    requireVector(vu, "vec src0");
    if (op != Opcode::VMOV)
        requireVector(vv, "vec src1");
    return Instruction{op, {vd}, {vu, vv}, 0};
}

Instruction
makeVmpy(Opcode op, Operand vdLo, Operand vu, Operand rt)
{
    GCD2_ASSERT(op == Opcode::VMPY || op == Opcode::VMPYACC,
                "makeVmpy: unsupported opcode");
    requirePairBase(vdLo, "vmpy dst");
    requireVector(vu, "vmpy src");
    requireScalar(rt, "vmpy scalar");
    return Instruction{op, {vdLo}, {vu, rt}, 0};
}

Instruction
makeVmpa(Opcode op, Operand vdLo, Operand vuLo, Operand rt)
{
    GCD2_ASSERT(op == Opcode::VMPA || op == Opcode::VTMPY,
                "makeVmpa: unsupported opcode");
    requirePairBase(vdLo, "vmpa dst");
    requirePairBase(vuLo, "vmpa src pair");
    requireScalar(rt, "vmpa scalar");
    return Instruction{op, {vdLo}, {vuLo, rt}, 0};
}

Instruction
makeVrmpy(Operand vd, Operand vu, Operand rt)
{
    requireVector(vd, "vrmpy dst");
    requireVector(vu, "vrmpy src");
    requireScalar(rt, "vrmpy scalar");
    return Instruction{Opcode::VRMPY, {vd}, {vu, rt}, 0};
}

Instruction
makeVmpye(Operand vd, Operand vu, Operand rt)
{
    requireVector(vd, "vmpye dst");
    requireVector(vu, "vmpye src");
    requireScalar(rt, "vmpye scalar");
    return Instruction{Opcode::VMPYE, {vd}, {vu, rt}, 0};
}

Instruction
makeVmpyiw(Operand vd, Operand vu, Operand rt)
{
    requireVector(vd, "vmpyiw dst");
    requireVector(vu, "vmpyiw src");
    requireScalar(rt, "vmpyiw scalar");
    return Instruction{Opcode::VMPYIW, {vd}, {vu, rt}, 0};
}

Instruction
makeVasr(Opcode op, Operand vd, Operand vuLo, int64_t shift)
{
    GCD2_ASSERT(op == Opcode::VASRHB || op == Opcode::VASRHUB ||
                    op == Opcode::VASRWH,
                "makeVasr: unsupported opcode");
    requireVector(vd, "vasr dst");
    requirePairBase(vuLo, "vasr src pair");
    return Instruction{op, {vd}, {vuLo, Operand{}}, shift};
}

Instruction
makeVlut(Operand vd, Operand tableLo, Operand idx)
{
    requireVector(vd, "vlut dst");
    requirePairBase(tableLo, "vlut table");
    requireVector(idx, "vlut index");
    return Instruction{Opcode::VLUT, {vd}, {tableLo, idx}, 0};
}

Instruction
makeVshuff(Opcode op, Operand vd, Operand vu, Operand vv, int laneLog2)
{
    GCD2_ASSERT(op == Opcode::VSHUFF || op == Opcode::VDEAL ||
                    op == Opcode::VSHUFFE || op == Opcode::VSHUFFO,
                "makeVshuff: unsupported opcode");
    GCD2_ASSERT(laneLog2 >= 0 && laneLog2 <= 2, "bad shuffle lane size");
    if (op == Opcode::VSHUFF || op == Opcode::VDEAL)
        requirePairBase(vd, "shuffle dst");
    else
        requireVector(vd, "shuffle dst");
    requireVector(vu, "shuffle src0");
    requireVector(vv, "shuffle src1");
    return Instruction{op, {vd}, {vu, vv}, laneLog2};
}

} // namespace gcd2::dsp
