/**
 * @file
 * Flat byte-addressed memory for the DSP simulator.
 */
#ifndef GCD2_DSP_MEMORY_H
#define GCD2_DSP_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace gcd2::dsp {

/**
 * Byte-addressable simulator memory with bounds checking.
 *
 * Kernels receive base addresses through scalar registers; tensors are
 * copied in/out by the test/runtime harness with readBytes/writeBytes.
 */
class Memory
{
  public:
    explicit Memory(size_t size) : bytes_(size, 0) {}

    size_t size() const { return bytes_.size(); }

    uint8_t
    load8(uint64_t addr) const
    {
        check(addr, 1);
        return bytes_[addr];
    }

    uint32_t
    load32(uint64_t addr) const
    {
        check(addr, 4);
        uint32_t v;
        std::memcpy(&v, bytes_.data() + addr, 4);
        return v;
    }

    void
    store8(uint64_t addr, uint8_t v)
    {
        check(addr, 1);
        bytes_[addr] = v;
    }

    void
    store32(uint64_t addr, uint32_t v)
    {
        check(addr, 4);
        std::memcpy(bytes_.data() + addr, &v, 4);
    }

    void
    loadBlock(uint64_t addr, uint8_t *out, size_t n) const
    {
        check(addr, n);
        std::memcpy(out, bytes_.data() + addr, n);
    }

    void
    storeBlock(uint64_t addr, const uint8_t *in, size_t n)
    {
        check(addr, n);
        std::memcpy(bytes_.data() + addr, in, n);
    }

    /** Harness-side bulk access (not counted as simulated traffic). */
    void
    writeBytes(uint64_t addr, const void *src, size_t n)
    {
        check(addr, n);
        std::memcpy(bytes_.data() + addr, src, n);
    }

    void
    readBytes(uint64_t addr, void *dst, size_t n) const
    {
        check(addr, n);
        std::memcpy(dst, bytes_.data() + addr, n);
    }

  private:
    void
    check(uint64_t addr, size_t n) const
    {
        GCD2_REQUIRE(addr + n <= bytes_.size(),
                     "memory access [" << addr << ", " << addr + n
                                       << ") out of bounds (size "
                                       << bytes_.size() << ")");
    }

    std::vector<uint8_t> bytes_;
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_MEMORY_H
