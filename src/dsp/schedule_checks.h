/**
 * @file
 * The single source of truth for packed-program invariants.
 *
 * Three consumers used to re-implement the same checks independently --
 * dsp::validatePackedProgram (panicking, tests and debug simulator
 * paths), vliw::auditSchedule (diagnostic-collecting, the pipeline audit
 * pass), and the decode-time guards in dsp/decoded.cc -- so a new
 * invariant could be added to one and silently missed by the others.
 * They now all run the one check table below through a sink that decides
 * policy (panic on first violation vs. collect structured diagnostics).
 *
 * Checks are split by depth: Structure checks are linear scans safe (and
 * necessary) before any code indexes packets -- every instruction in
 * exactly one packet, indices in range, packet sizes, label mapping.
 * Full adds the quadratic-per-packet legality checks: slot/resource
 * feasibility and intra-packet hard-dependency freedom.
 */
#ifndef GCD2_DSP_SCHEDULE_CHECKS_H
#define GCD2_DSP_SCHEDULE_CHECKS_H

#include <functional>
#include <string>
#include <vector>

#include "common/diag.h"
#include "dsp/packet.h"

namespace gcd2::dsp {

/** How much of the invariant table to run. */
enum class CheckDepth : uint8_t
{
    Structure, ///< linear shape checks (safe before decoding/indexing)
    Full,      ///< Structure plus slot feasibility and dependence legality
};

/**
 * Violation callback: stable code, anchor instruction index (-1 = whole
 * artifact), human-readable message. A sink that throws stops the run at
 * the first violation; a collecting sink sees every violation.
 */
using CheckSink = std::function<void(
    common::DiagCode code, int64_t node, const std::string &message)>;

/** One row of the invariant table (enumerable for docs and tools). */
struct ScheduleCheckInfo
{
    const char *name;
    common::DiagCode code;
    CheckDepth depth;
};

/** Every invariant the table enforces, in evaluation order. */
const std::vector<ScheduleCheckInfo> &scheduleCheckTable();

/**
 * Run every check at or below @p depth against @p packed, reporting each
 * violation through @p sink. Packet-local Full checks are skipped for
 * packets whose instruction indices are out of range (reported as
 * SchedBadInstIndex instead). Returns the number of violations reported.
 */
size_t runScheduleChecks(const PackedProgram &packed, CheckDepth depth,
                         const CheckSink &sink);

} // namespace gcd2::dsp

#endif // GCD2_DSP_SCHEDULE_CHECKS_H
