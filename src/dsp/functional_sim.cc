#include "dsp/functional_sim.h"

#include <algorithm>

#include "dsp/sim_math.h"

namespace gcd2::dsp {

int
executeInstruction(const Instruction &inst, RegisterFile &regs_,
                   Memory &mem_, ExecStats &stats_)
{
    ++stats_.instructions;

    auto &sr = regs_.scalar;
    auto &vr = regs_.vector;

    const int d = inst.dst[0].idx;
    const int s0 = inst.src[0].idx;
    const int s1 = inst.src[1].idx;
    const int64_t imm = inst.imm;

    // Scalar byte j of a 4-byte multiplier operand.
    auto scalarByte = [&](int reg, int j) {
        return static_cast<int8_t>((sr[reg] >> (8 * j)) & 0xff);
    };
    auto ubyte = [&](int reg, int lane) {
        return static_cast<int32_t>(vr[reg][lane]);
    };

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::MOVI:
        sr[d] = static_cast<uint32_t>(imm);
        break;
      case Opcode::MOV:
        sr[d] = sr[s0];
        break;
      case Opcode::ADD:
        sr[d] = sr[s0] + sr[s1];
        break;
      case Opcode::ADDI:
        sr[d] = sr[s0] + static_cast<uint32_t>(imm);
        break;
      case Opcode::SUB:
        sr[d] = sr[s0] - sr[s1];
        break;
      case Opcode::MUL:
        sr[d] = sr[s0] * sr[s1];
        break;
      case Opcode::SHL:
        sr[d] = sr[s0] << (imm & 31);
        break;
      case Opcode::SHRA:
        sr[d] = static_cast<uint32_t>(
            static_cast<int32_t>(sr[s0]) >> (imm & 31));
        break;
      case Opcode::AND:
        sr[d] = sr[s0] & sr[s1];
        break;
      case Opcode::OR:
        sr[d] = sr[s0] | sr[s1];
        break;
      case Opcode::XOR:
        sr[d] = sr[s0] ^ sr[s1];
        break;
      case Opcode::DIV: {
        const auto denom = static_cast<int32_t>(sr[s1]);
        GCD2_REQUIRE(denom != 0, "division by zero");
        sr[d] = static_cast<uint32_t>(static_cast<int32_t>(sr[s0]) / denom);
        break;
      }
      case Opcode::COMBINE4: {
        const uint32_t b = sr[s0] & 0xff;
        sr[d] = b | (b << 8) | (b << 16) | (b << 24);
        break;
      }

      case Opcode::LOADB:
        sr[d] = static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int8_t>(mem_.load8(sr[s0] + imm))));
        stats_.bytesLoaded += 1;
        break;
      case Opcode::LOADW:
        sr[d] = mem_.load32(sr[s0] + imm);
        stats_.bytesLoaded += 4;
        break;
      case Opcode::STOREB:
        mem_.store8(sr[s0] + imm, static_cast<uint8_t>(sr[s1] & 0xff));
        stats_.bytesStored += 1;
        break;
      case Opcode::STOREW:
        mem_.store32(sr[s0] + imm, sr[s1]);
        stats_.bytesStored += 4;
        break;

      case Opcode::JUMP:
        ++stats_.branchesTaken;
        return static_cast<int>(imm);
      case Opcode::JUMPNZ:
        if (sr[s0] != 0) {
            ++stats_.branchesTaken;
            return static_cast<int>(imm);
        }
        break;

      case Opcode::VLOAD:
        mem_.loadBlock(sr[s0] + imm, vr[d].data(), kVectorBytes);
        stats_.bytesLoaded += kVectorBytes;
        break;
      case Opcode::VSTORE:
        mem_.storeBlock(sr[s0] + imm, vr[s1].data(), kVectorBytes);
        stats_.bytesStored += kVectorBytes;
        break;
      case Opcode::VMOV:
        vr[d] = vr[s0];
        break;
      case Opcode::VSPLATW:
        for (int i = 0; i < kVectorWords; ++i)
            regs_.setVecWord(d, i, static_cast<int32_t>(sr[s0]));
        break;

      case Opcode::VADDB:
        for (int i = 0; i < kVectorBytes; ++i)
            vr[d][i] = static_cast<uint8_t>(vr[s0][i] + vr[s1][i]);
        break;
      case Opcode::VADDH:
        for (int i = 0; i < kVectorHalves; ++i)
            regs_.setVecHalf(d, i, static_cast<int16_t>(
                regs_.vecHalf(s0, i) + regs_.vecHalf(s1, i)));
        break;
      case Opcode::VADDW:
        for (int i = 0; i < kVectorWords; ++i)
            regs_.setVecWord(d, i, regs_.vecWord(s0, i) +
                                       regs_.vecWord(s1, i));
        break;
      case Opcode::VSUBH:
        for (int i = 0; i < kVectorHalves; ++i)
            regs_.setVecHalf(d, i, static_cast<int16_t>(
                regs_.vecHalf(s0, i) - regs_.vecHalf(s1, i)));
        break;
      case Opcode::VSUBW:
        for (int i = 0; i < kVectorWords; ++i)
            regs_.setVecWord(d, i, regs_.vecWord(s0, i) -
                                       regs_.vecWord(s1, i));
        break;
      case Opcode::VMAXB:
        for (int i = 0; i < kVectorBytes; ++i)
            vr[d][i] = static_cast<uint8_t>(
                std::max(static_cast<int8_t>(vr[s0][i]),
                         static_cast<int8_t>(vr[s1][i])));
        break;
      case Opcode::VMINB:
        for (int i = 0; i < kVectorBytes; ++i)
            vr[d][i] = static_cast<uint8_t>(
                std::min(static_cast<int8_t>(vr[s0][i]),
                         static_cast<int8_t>(vr[s1][i])));
        break;
      case Opcode::VMAXUB:
        for (int i = 0; i < kVectorBytes; ++i)
            vr[d][i] = std::max(vr[s0][i], vr[s1][i]);
        break;
      case Opcode::VMINUB:
        for (int i = 0; i < kVectorBytes; ++i)
            vr[d][i] = std::min(vr[s0][i], vr[s1][i]);
        break;
      case Opcode::VAVGB:
        for (int i = 0; i < kVectorBytes; ++i)
            vr[d][i] = static_cast<uint8_t>(
                (static_cast<uint32_t>(vr[s0][i]) + vr[s1][i] + 1) >> 1);
        break;

      case Opcode::VMPY:
      case Opcode::VMPYACC: {
        // Fig. 1 (a): lane i multiplies by scalar byte (i mod 4); even
        // products land in the low pair register, odd in the high one.
        const bool acc = inst.op == Opcode::VMPYACC;
        for (int i = 0; i < kVectorBytes; ++i) {
            const int32_t prod = ubyte(s0, i) * scalarByte(s1, i % 4);
            const int out = (i % 2 == 0) ? d : d + 1;
            const int lane = i / 2;
            const int16_t base = acc ? regs_.vecHalf(out, lane) : int16_t{0};
            regs_.setVecHalf(out, lane,
                             static_cast<int16_t>(base + prod));
        }
        break;
      }
      case Opcode::VMPA: {
        // Fig. 1 (b): element pairs from the two source vectors scaled by
        // the first-two / last-two scalar bytes, accumulated into the two
        // halves of the destination pair.
        for (int r = 0; r < kVectorHalves; ++r) {
            const int32_t lo = ubyte(s0, 2 * r) * scalarByte(s1, 0) +
                               ubyte(s0, 2 * r + 1) * scalarByte(s1, 1);
            const int32_t hi = ubyte(s0 + 1, 2 * r) * scalarByte(s1, 2) +
                               ubyte(s0 + 1, 2 * r + 1) * scalarByte(s1, 3);
            regs_.setVecHalf(d, r, static_cast<int16_t>(
                regs_.vecHalf(d, r) + lo));
            regs_.setVecHalf(d + 1, r, static_cast<int16_t>(
                regs_.vecHalf(d + 1, r) + hi));
        }
        break;
      }
      case Opcode::VRMPY:
        // Fig. 1 (c): each word lane accumulates a 4-element dot product.
        for (int i = 0; i < kVectorWords; ++i) {
            int32_t dot = 0;
            for (int j = 0; j < 4; ++j)
                dot += ubyte(s0, 4 * i + j) * scalarByte(s1, j);
            regs_.setVecWord(d, i, regs_.vecWord(d, i) + dot);
        }
        break;
      case Opcode::VTMPY:
        // 3-tap stride-2 filter over each source vector of the pair.
        for (int r = 0; r < kVectorHalves; ++r) {
            auto tap = [&](int srcReg, int nextReg) {
                const int32_t a = ubyte(srcReg, 2 * r);
                const int32_t b = ubyte(srcReg, 2 * r + 1);
                const int32_t c = (2 * r + 2 < kVectorBytes)
                                      ? ubyte(srcReg, 2 * r + 2)
                                      : (nextReg >= 0 ? ubyte(nextReg, 0)
                                                      : 0);
                return a * scalarByte(s1, 0) + b * scalarByte(s1, 1) +
                       c * scalarByte(s1, 2);
            };
            regs_.setVecHalf(d, r, static_cast<int16_t>(
                regs_.vecHalf(d, r) + tap(s0, s0 + 1)));
            regs_.setVecHalf(d + 1, r, static_cast<int16_t>(
                regs_.vecHalf(d + 1, r) + tap(s0 + 1, -1)));
        }
        break;
      case Opcode::VMPYE: {
        const auto mult = static_cast<int16_t>(sr[s1] & 0xffff);
        for (int i = 0; i < kVectorWords; ++i)
            regs_.setVecWord(d, i, static_cast<int32_t>(
                regs_.vecHalf(s0, 2 * i)) * mult);
        break;
      }
      case Opcode::VMPYIW: {
        const auto mult = static_cast<int32_t>(sr[s1]);
        for (int i = 0; i < kVectorWords; ++i)
            regs_.setVecWord(d, i, regs_.vecWord(s0, i) * mult);
        break;
      }

      case Opcode::VASRHB:
      case Opcode::VASRHUB: {
        const int shift = static_cast<int>(imm);
        const bool unsignedOut = inst.op == Opcode::VASRHUB;
        for (int i = 0; i < kVectorBytes; ++i) {
            const int reg = (i < kVectorHalves) ? s0 : s0 + 1;
            const int lane = i % kVectorHalves;
            const auto shifted = static_cast<int32_t>(
                roundShift(regs_.vecHalf(reg, lane), shift));
            vr[d][i] = unsignedOut
                           ? usat8(shifted)
                           : static_cast<uint8_t>(sat8(shifted));
        }
        break;
      }
      case Opcode::VASRWH: {
        const int shift = static_cast<int>(imm);
        for (int i = 0; i < kVectorHalves; ++i) {
            const int reg = (i < kVectorWords) ? s0 : s0 + 1;
            const int lane = i % kVectorWords;
            regs_.setVecHalf(d, i, sat16(
                roundShift(regs_.vecWord(reg, lane), shift)));
        }
        break;
      }

      case Opcode::VSHUFF: {
        const int lane = 1 << imm;
        const int perVec = kVectorBytes / lane;
        std::array<uint8_t, 2 * kVectorBytes> out;
        for (int i = 0; i < perVec; ++i) {
            std::memcpy(out.data() + (2 * i) * lane,
                        vr[s0].data() + i * lane, lane);
            std::memcpy(out.data() + (2 * i + 1) * lane,
                        vr[s1].data() + i * lane, lane);
        }
        std::memcpy(vr[d].data(), out.data(), kVectorBytes);
        std::memcpy(vr[d + 1].data(), out.data() + kVectorBytes,
                    kVectorBytes);
        break;
      }
      case Opcode::VDEAL: {
        const int lane = 1 << imm;
        const int perVec = kVectorBytes / lane;
        std::array<uint8_t, 2 * kVectorBytes> in;
        std::memcpy(in.data(), vr[s0].data(), kVectorBytes);
        std::memcpy(in.data() + kVectorBytes, vr[s1].data(), kVectorBytes);
        std::array<uint8_t, 2 * kVectorBytes> out;
        for (int i = 0; i < perVec; ++i) {
            std::memcpy(out.data() + i * lane,
                        in.data() + (2 * i) * lane, lane);
            std::memcpy(out.data() + (perVec + i) * lane,
                        in.data() + (2 * i + 1) * lane, lane);
        }
        std::memcpy(vr[d].data(), out.data(), kVectorBytes);
        std::memcpy(vr[d + 1].data(), out.data() + kVectorBytes,
                    kVectorBytes);
        break;
      }
      case Opcode::VSHUFFE:
      case Opcode::VSHUFFO: {
        const int lane = 1 << imm;
        const int perVec = kVectorBytes / lane;
        const int pick = (inst.op == Opcode::VSHUFFE) ? 0 : 1;
        std::array<uint8_t, kVectorBytes> out;
        for (int i = 0; i < perVec / 2; ++i) {
            std::memcpy(out.data() + (2 * i) * lane,
                        vr[s0].data() + (2 * i + pick) * lane, lane);
            std::memcpy(out.data() + (2 * i + 1) * lane,
                        vr[s1].data() + (2 * i + pick) * lane, lane);
        }
        vr[d] = out;
        break;
      }

      case Opcode::VLUT:
        for (int i = 0; i < kVectorBytes; ++i) {
            const uint8_t idx = vr[s1][i];
            const int reg = (idx < kVectorBytes) ? s0 : s0 + 1;
            vr[d][i] = vr[reg][idx % kVectorBytes];
        }
        break;

      case Opcode::kNumOpcodes:
        GCD2_PANIC("invalid opcode");
    }
    return -1;
}

int
FunctionalSimulator::execute(const Instruction &inst)
{
    return executeInstruction(inst, regs_, mem_, stats_);
}

void
FunctionalSimulator::run(const Program &prog, uint64_t maxSteps)
{
    size_t pc = 0;
    // The step bound is checked once per chunk instead of once per
    // instruction so the hot loop stays branch-light; the inner loop is
    // clamped to the remaining budget, so on overflow the program state
    // (exactly maxSteps instructions executed, then a panic) is identical
    // to a per-step check.
    constexpr uint64_t kStepCheckInterval = 4096;
    uint64_t steps = 0;
    while (pc < prog.code.size()) {
        GCD2_ASSERT(steps < maxSteps,
                    "program exceeded " << maxSteps << " steps");
        const uint64_t chunkEnd =
            steps + std::min(kStepCheckInterval, maxSteps - steps);
        while (steps < chunkEnd && pc < prog.code.size()) {
            ++steps;
            const int takenLabel = execute(prog.code[pc]);
            if (takenLabel >= 0) {
                GCD2_ASSERT(static_cast<size_t>(takenLabel) <
                                prog.labels.size(),
                            "branch to unknown label " << takenLabel);
                pc = prog.labels[takenLabel];
                GCD2_ASSERT(pc != SIZE_MAX, "branch to unbound label");
            } else {
                ++pc;
            }
        }
    }
}

} // namespace gcd2::dsp
