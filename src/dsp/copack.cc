#include "dsp/copack.h"

namespace gcd2::dsp {

CopackModel::CopackModel(const Program &prog, size_t begin, size_t count,
                         const AliasAnalysis &alias)
    : begin_(begin), alias_(&alias)
{
    readMask_.assign(count, 0);
    writeMask_.assign(count, 0);
    memPair_.assign(count, 0);
    fwdPenalty_.assign(count, 1);
    latency_.resize(count);

    for (size_t i = 0; i < count; ++i) {
        const Instruction &inst = prog.code[begin + i];
        const OpcodeInfo &meta = inst.info();
        const RegMasks masks = regMasks(inst);
        readMask_[i] = masks.reads;
        writeMask_[i] = masks.writes;
        if (meta.mem == MemKind::Load)
            memPair_[i] = 1;
        else if (meta.mem == MemKind::Store)
            memPair_[i] = 2;
        fwdPenalty_[i] = meta.unit == UnitKind::Mult ? 2 : 1;
        latency_[i] = meta.latency;
    }
}

} // namespace gcd2::dsp
