/**
 * @file
 * Lightweight static alias analysis for memory disambiguation.
 *
 * Kernel code addresses memory as base-register + immediate. Two static
 * memory instructions whose base register is the same *version* (no write
 * to that register between them in program order) see the same dynamic
 * base value, so their accesses are disjoint iff their immediate intervals
 * are. Anything else is conservatively assumed to alias.
 *
 * Shared by the IDG builder (so the packers may co-schedule provably
 * disjoint loads/stores) and the timing simulator (so its stall accounting
 * agrees with the packer's legality decisions).
 */
#ifndef GCD2_DSP_ALIAS_H
#define GCD2_DSP_ALIAS_H

#include <cstdint>
#include <vector>

#include "dsp/isa.h"

namespace gcd2::dsp {

/** Per-program alias oracle. */
class AliasAnalysis
{
  public:
    explicit AliasAnalysis(const Program &prog);

    /**
     * May instructions @p i and @p j (indices into the analyzed program)
     * access overlapping memory? Returns false only when provably
     * disjoint; non-memory instructions never alias.
     */
    bool mayAlias(size_t i, size_t j) const;

  private:
    struct MemRef
    {
        bool isMem = false;
        int baseReg = -1;
        uint32_t baseVersion = 0;
        int64_t offset = 0;
        int size = 0;
        /** Buffer segment of the base address (see Program::noaliasRegs):
         *  >= 0 concrete segment, kSegData pure data, kSegUnknown. */
        int segment = kSegUnknown;
    };

    static constexpr int kSegUnknown = -2;
    static constexpr int kSegData = -1;

    std::vector<MemRef> refs_;
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_ALIAS_H
