/**
 * @file
 * Results of a timed (cycle-accounted) execution, shared by the reference
 * timing interpreter (timing_sim.h) and the pre-decoded engine
 * (decoded.h). Both engines must fill every field identically -- the
 * differential tests compare the structs member for member.
 */
#ifndef GCD2_DSP_TIMING_STATS_H
#define GCD2_DSP_TIMING_STATS_H

#include <cstdint>

#include "dsp/isa.h"

namespace gcd2::dsp {

/** Results of a timed execution. */
struct TimingStats
{
    uint64_t cycles = 0;
    uint64_t packetsExecuted = 0;
    uint64_t instructionsExecuted = 0;
    uint64_t stallCycles = 0;
    uint64_t bytesLoaded = 0;
    uint64_t bytesStored = 0;

    /** Fraction of issue capacity used: insts / (4 slots x packets). */
    double
    slotUtilization() const
    {
        return packetsExecuted == 0
                   ? 0.0
                   : static_cast<double>(instructionsExecuted) /
                         (static_cast<double>(kPacketSlots) *
                          static_cast<double>(packetsExecuted));
    }

    /** Issue-level parallelism per cycle (relative DSP utilization). */
    double
    computeUtilization() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructionsExecuted) /
                                 (static_cast<double>(kPacketSlots) *
                                  static_cast<double>(cycles));
    }

    /** Memory traffic per cycle in bytes (relative bandwidth). */
    double
    memoryBandwidth() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(bytesLoaded + bytesStored) /
                                 static_cast<double>(cycles);
    }
};

} // namespace gcd2::dsp

#endif // GCD2_DSP_TIMING_STATS_H
