#include "dsp/decoded.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "dsp/alias.h"
#include "dsp/deps.h"
#include "dsp/schedule_checks.h"
#include "dsp/sim_math.h"

namespace gcd2::dsp {

namespace {

// Fingerprinting ------------------------------------------------------

/** FNV-1a over an arbitrary byte stream, seedable for a second lane. */
class Fnv
{
  public:
    explicit Fnv(uint64_t seed) : h_(seed) {}

    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ULL;
        }
    }

    template <typename T>
    void
    value(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(v));
    }

    uint64_t digest() const { return h_; }

  private:
    uint64_t h_;
};

void
hashProgram(const PackedProgram &packed, Fnv &fnv)
{
    const Program &prog = packed.program;
    for (const Instruction &inst : prog.code) {
        fnv.value(static_cast<uint8_t>(inst.op));
        fnv.value(static_cast<uint8_t>(inst.dst[0].cls));
        fnv.value(inst.dst[0].idx);
        for (const Operand &src : inst.src) {
            fnv.value(static_cast<uint8_t>(src.cls));
            fnv.value(src.idx);
        }
        fnv.value(inst.imm);
    }
    fnv.value(uint64_t{0xfeed});
    for (size_t label : prog.labels)
        fnv.value(static_cast<uint64_t>(label));
    fnv.value(uint64_t{0xbeef});
    for (int8_t reg : prog.noaliasRegs)
        fnv.value(reg);
    fnv.value(uint64_t{0xcafe});
    for (const Packet &packet : packed.packets) {
        fnv.value(static_cast<uint64_t>(packet.insts.size()));
        for (size_t idx : packet.insts)
            fnv.value(static_cast<uint64_t>(idx));
    }
    fnv.value(uint64_t{0xf00d});
    for (size_t target : packed.labelPacket)
        fnv.value(static_cast<uint64_t>(target));
}

// Decoding ------------------------------------------------------------

/** Do the vector registers written by @p inst overlap its vector source
 *  registers in a way the fast lane loops do not model (their snapshot
 *  semantics differ from the interpreter's lane-ordered read/write
 *  interleaving)? Conservative: a true here only costs speed, never
 *  correctness -- the instruction runs through executeInstruction. */
bool
needsFallback(const Instruction &inst)
{
    const int d = inst.dst[0].idx;
    const int s0 = inst.src[0].idx;
    switch (inst.op) {
      case Opcode::VMPY:
      case Opcode::VMPYACC:
        return s0 == d || s0 == d + 1;
      case Opcode::VMPA:
      case Opcode::VTMPY:
        return std::max(d, s0) <= std::min(d, s0) + 1;
      case Opcode::VRMPY:
      case Opcode::VMPYE:
      case Opcode::VMPYIW:
        return s0 == d;
      case Opcode::VASRHB:
      case Opcode::VASRHUB:
      case Opcode::VASRWH:
        return d == s0 || d == s0 + 1;
      case Opcode::VLUT:
        // Only the table pair (s0, s0+1) is read cross-lane; the index
        // vector (src[1]) is read lane-aligned, so a destination equal to
        // it stays on the fast path.
        return d == s0 || d == s0 + 1;
      default:
        return false;
    }
}

// Execution -----------------------------------------------------------

/** Mutable state threaded through the dispatch table. */
struct St
{
    RegisterFile &regs;
    Memory &mem;
    ExecStats &stats;
    const Instruction *rawCode;
};

using ExecFn = int32_t (*)(const DecodedInst &, St &);

/** Dispatch slot for instructions executed through the interpreter. */
constexpr size_t kFallbackSlot = static_cast<size_t>(Opcode::kNumOpcodes);

/** Signed scalar byte j of a packed 4-byte multiplier operand. */
inline int8_t
scalarByte(uint32_t r, int j)
{
    return static_cast<int8_t>((r >> (8 * j)) & 0xff);
}

int32_t
execFallback(const DecodedInst &di, St &st)
{
    // executeInstruction counts the instruction itself; the dispatch loop
    // already counted it, so undo the double increment. Fallback is only
    // taken for vector aliasing cases, never branches.
    --st.stats.instructions;
    executeInstruction(st.rawCode[di.rawIndex], st.regs, st.mem, st.stats);
    return DecodedInst::kNotBranch;
}

// --- Scalar ALU -------------------------------------------------------

int32_t
execNop(const DecodedInst &, St &)
{
    return -1;
}

int32_t
execMovi(const DecodedInst &di, St &st)
{
    st.regs.scalar[di.d] = static_cast<uint32_t>(di.imm);
    return -1;
}

int32_t
execMov(const DecodedInst &di, St &st)
{
    st.regs.scalar[di.d] = st.regs.scalar[di.s0];
    return -1;
}

int32_t
execAdd(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] + sr[di.s1];
    return -1;
}

int32_t
execAddi(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] + static_cast<uint32_t>(di.imm);
    return -1;
}

int32_t
execSub(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] - sr[di.s1];
    return -1;
}

int32_t
execMul(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] * sr[di.s1];
    return -1;
}

int32_t
execShl(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] << (di.imm & 31);
    return -1;
}

int32_t
execShra(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = static_cast<uint32_t>(static_cast<int32_t>(sr[di.s0]) >>
                                     (di.imm & 31));
    return -1;
}

int32_t
execAnd(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] & sr[di.s1];
    return -1;
}

int32_t
execOr(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] | sr[di.s1];
    return -1;
}

int32_t
execXor(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = sr[di.s0] ^ sr[di.s1];
    return -1;
}

int32_t
execDiv(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    const auto denom = static_cast<int32_t>(sr[di.s1]);
    GCD2_REQUIRE(denom != 0, "division by zero");
    sr[di.d] =
        static_cast<uint32_t>(static_cast<int32_t>(sr[di.s0]) / denom);
    return -1;
}

int32_t
execCombine4(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    const uint32_t b = sr[di.s0] & 0xff;
    sr[di.d] = b | (b << 8) | (b << 16) | (b << 24);
    return -1;
}

// --- Scalar memory ----------------------------------------------------

int32_t
execLoadb(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = static_cast<uint32_t>(static_cast<int32_t>(
        static_cast<int8_t>(st.mem.load8(sr[di.s0] + di.imm))));
    st.stats.bytesLoaded += 1;
    return -1;
}

int32_t
execLoadw(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    sr[di.d] = st.mem.load32(sr[di.s0] + di.imm);
    st.stats.bytesLoaded += 4;
    return -1;
}

int32_t
execStoreb(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    st.mem.store8(sr[di.s0] + di.imm,
                  static_cast<uint8_t>(sr[di.s1] & 0xff));
    st.stats.bytesStored += 1;
    return -1;
}

int32_t
execStorew(const DecodedInst &di, St &st)
{
    auto &sr = st.regs.scalar;
    st.mem.store32(sr[di.s0] + di.imm, sr[di.s1]);
    st.stats.bytesStored += 4;
    return -1;
}

// --- Control flow -----------------------------------------------------

// Branch targets are pre-resolved packet indices; kBadTarget (label id out
// of range) is only diagnosed at the end of the packet, and only if this
// branch is the packet's last taken one -- matching the reference loop.

int32_t
execJump(const DecodedInst &di, St &st)
{
    ++st.stats.branchesTaken;
    return di.target;
}

int32_t
execJumpNz(const DecodedInst &di, St &st)
{
    if (st.regs.scalar[di.s0] == 0)
        return DecodedInst::kNotBranch;
    ++st.stats.branchesTaken;
    return di.target;
}

// --- Vector memory / moves --------------------------------------------

int32_t
execVload(const DecodedInst &di, St &st)
{
    st.mem.loadBlock(st.regs.scalar[di.s0] + di.imm,
                     st.regs.vector[di.d].data(), kVectorBytes);
    st.stats.bytesLoaded += kVectorBytes;
    return -1;
}

int32_t
execVstore(const DecodedInst &di, St &st)
{
    st.mem.storeBlock(st.regs.scalar[di.s0] + di.imm,
                      st.regs.vector[di.s1].data(), kVectorBytes);
    st.stats.bytesStored += kVectorBytes;
    return -1;
}

int32_t
execVmov(const DecodedInst &di, St &st)
{
    st.regs.vector[di.d] = st.regs.vector[di.s0];
    return -1;
}

int32_t
execVsplatw(const DecodedInst &di, St &st)
{
    const int32_t v = static_cast<int32_t>(st.regs.scalar[di.s0]);
    int32_t out[kVectorWords];
    for (int i = 0; i < kVectorWords; ++i)
        out[i] = v;
    std::memcpy(st.regs.vector[di.d].data(), out, kVectorBytes);
    return -1;
}

// --- Vector integer ALU -----------------------------------------------

// Byte-lane ops snapshot both sources so the lane loop carries no alias
// hazard and vectorizes; lane-aligned ops are snapshot-equivalent to the
// interpreter's in-order execution even when dst == src.

int32_t
execVaddb(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a = vr[di.s0];
    const auto b = vr[di.s1];
    auto &o = vr[di.d];
    for (int i = 0; i < kVectorBytes; ++i)
        o[i] = static_cast<uint8_t>(a[i] + b[i]);
    return -1;
}

int32_t
execVaddh(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    int16_t a[kVectorHalves], b[kVectorHalves], o[kVectorHalves];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    std::memcpy(b, vr[di.s1].data(), kVectorBytes);
    for (int i = 0; i < kVectorHalves; ++i)
        o[i] = static_cast<int16_t>(a[i] + b[i]);
    std::memcpy(vr[di.d].data(), o, kVectorBytes);
    return -1;
}

int32_t
execVaddw(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    int32_t a[kVectorWords], b[kVectorWords], o[kVectorWords];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    std::memcpy(b, vr[di.s1].data(), kVectorBytes);
    for (int i = 0; i < kVectorWords; ++i)
        o[i] = a[i] + b[i];
    std::memcpy(vr[di.d].data(), o, kVectorBytes);
    return -1;
}

int32_t
execVsubh(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    int16_t a[kVectorHalves], b[kVectorHalves], o[kVectorHalves];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    std::memcpy(b, vr[di.s1].data(), kVectorBytes);
    for (int i = 0; i < kVectorHalves; ++i)
        o[i] = static_cast<int16_t>(a[i] - b[i]);
    std::memcpy(vr[di.d].data(), o, kVectorBytes);
    return -1;
}

int32_t
execVsubw(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    int32_t a[kVectorWords], b[kVectorWords], o[kVectorWords];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    std::memcpy(b, vr[di.s1].data(), kVectorBytes);
    for (int i = 0; i < kVectorWords; ++i)
        o[i] = a[i] - b[i];
    std::memcpy(vr[di.d].data(), o, kVectorBytes);
    return -1;
}

int32_t
execVmaxb(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a = vr[di.s0];
    const auto b = vr[di.s1];
    auto &o = vr[di.d];
    for (int i = 0; i < kVectorBytes; ++i)
        o[i] = static_cast<uint8_t>(std::max(static_cast<int8_t>(a[i]),
                                             static_cast<int8_t>(b[i])));
    return -1;
}

int32_t
execVminb(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a = vr[di.s0];
    const auto b = vr[di.s1];
    auto &o = vr[di.d];
    for (int i = 0; i < kVectorBytes; ++i)
        o[i] = static_cast<uint8_t>(std::min(static_cast<int8_t>(a[i]),
                                             static_cast<int8_t>(b[i])));
    return -1;
}

int32_t
execVmaxub(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a = vr[di.s0];
    const auto b = vr[di.s1];
    auto &o = vr[di.d];
    for (int i = 0; i < kVectorBytes; ++i)
        o[i] = std::max(a[i], b[i]);
    return -1;
}

int32_t
execVminub(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a = vr[di.s0];
    const auto b = vr[di.s1];
    auto &o = vr[di.d];
    for (int i = 0; i < kVectorBytes; ++i)
        o[i] = std::min(a[i], b[i]);
    return -1;
}

int32_t
execVavgb(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a = vr[di.s0];
    const auto b = vr[di.s1];
    auto &o = vr[di.d];
    for (int i = 0; i < kVectorBytes; ++i)
        o[i] = static_cast<uint8_t>(
            (static_cast<uint32_t>(a[i]) + b[i] + 1) >> 1);
    return -1;
}

// --- SIMD multiplies --------------------------------------------------

int32_t
execVmpy(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const bool acc = di.op == Opcode::VMPYACC;
    const auto a = vr[di.s0];
    const uint32_t w = st.regs.scalar[di.s1];
    const int8_t wb[4] = {scalarByte(w, 0), scalarByte(w, 1),
                          scalarByte(w, 2), scalarByte(w, 3)};
    int16_t lo[kVectorHalves], hi[kVectorHalves];
    if (acc) {
        std::memcpy(lo, vr[di.d].data(), kVectorBytes);
        std::memcpy(hi, vr[di.d + 1].data(), kVectorBytes);
    } else {
        std::memset(lo, 0, sizeof(lo));
        std::memset(hi, 0, sizeof(hi));
    }
    // Lane 2h multiplies by weight byte 2h mod 4, lane 2h+1 by 2h+1 mod 4;
    // even products land in the low pair register, odd in the high one.
    for (int h = 0; h < kVectorHalves; ++h) {
        lo[h] = static_cast<int16_t>(
            lo[h] + static_cast<int32_t>(a[2 * h]) * wb[2 * (h & 1)]);
        hi[h] = static_cast<int16_t>(
            hi[h] +
            static_cast<int32_t>(a[2 * h + 1]) * wb[2 * (h & 1) + 1]);
    }
    std::memcpy(vr[di.d].data(), lo, kVectorBytes);
    std::memcpy(vr[di.d + 1].data(), hi, kVectorBytes);
    return -1;
}

int32_t
execVmpa(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a0 = vr[di.s0];
    const auto a1 = vr[di.s0 + 1];
    const uint32_t w = st.regs.scalar[di.s1];
    const int8_t wb[4] = {scalarByte(w, 0), scalarByte(w, 1),
                          scalarByte(w, 2), scalarByte(w, 3)};
    int16_t lo[kVectorHalves], hi[kVectorHalves];
    std::memcpy(lo, vr[di.d].data(), kVectorBytes);
    std::memcpy(hi, vr[di.d + 1].data(), kVectorBytes);
    for (int r = 0; r < kVectorHalves; ++r) {
        lo[r] = static_cast<int16_t>(
            lo[r] + static_cast<int32_t>(a0[2 * r]) * wb[0] +
            static_cast<int32_t>(a0[2 * r + 1]) * wb[1]);
        hi[r] = static_cast<int16_t>(
            hi[r] + static_cast<int32_t>(a1[2 * r]) * wb[2] +
            static_cast<int32_t>(a1[2 * r + 1]) * wb[3]);
    }
    std::memcpy(vr[di.d].data(), lo, kVectorBytes);
    std::memcpy(vr[di.d + 1].data(), hi, kVectorBytes);
    return -1;
}

int32_t
execVrmpy(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a = vr[di.s0];
    const uint32_t w = st.regs.scalar[di.s1];
    const int8_t wb[4] = {scalarByte(w, 0), scalarByte(w, 1),
                          scalarByte(w, 2), scalarByte(w, 3)};
    int32_t acc[kVectorWords];
    std::memcpy(acc, vr[di.d].data(), kVectorBytes);
    for (int i = 0; i < kVectorWords; ++i) {
        acc[i] += static_cast<int32_t>(a[4 * i]) * wb[0] +
                  static_cast<int32_t>(a[4 * i + 1]) * wb[1] +
                  static_cast<int32_t>(a[4 * i + 2]) * wb[2] +
                  static_cast<int32_t>(a[4 * i + 3]) * wb[3];
    }
    std::memcpy(vr[di.d].data(), acc, kVectorBytes);
    return -1;
}

int32_t
execVtmpy(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto a0 = vr[di.s0];
    const auto a1 = vr[di.s0 + 1];
    const uint32_t w = st.regs.scalar[di.s1];
    const int8_t wb[4] = {scalarByte(w, 0), scalarByte(w, 1),
                          scalarByte(w, 2), scalarByte(w, 3)};
    int16_t lo[kVectorHalves], hi[kVectorHalves];
    std::memcpy(lo, vr[di.d].data(), kVectorBytes);
    std::memcpy(hi, vr[di.d + 1].data(), kVectorBytes);
    for (int r = 0; r < kVectorHalves; ++r) {
        const bool inRange = 2 * r + 2 < kVectorBytes;
        const int32_t c0 = inRange ? a0[2 * r + 2] : a1[0];
        const int32_t c1 = inRange ? a1[2 * r + 2] : 0;
        lo[r] = static_cast<int16_t>(
            lo[r] + static_cast<int32_t>(a0[2 * r]) * wb[0] +
            static_cast<int32_t>(a0[2 * r + 1]) * wb[1] + c0 * wb[2]);
        hi[r] = static_cast<int16_t>(
            hi[r] + static_cast<int32_t>(a1[2 * r]) * wb[0] +
            static_cast<int32_t>(a1[2 * r + 1]) * wb[1] + c1 * wb[2]);
    }
    std::memcpy(vr[di.d].data(), lo, kVectorBytes);
    std::memcpy(vr[di.d + 1].data(), hi, kVectorBytes);
    return -1;
}

int32_t
execVmpye(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto mult =
        static_cast<int16_t>(st.regs.scalar[di.s1] & 0xffff);
    int16_t a[kVectorHalves];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    int32_t o[kVectorWords];
    for (int i = 0; i < kVectorWords; ++i)
        o[i] = static_cast<int32_t>(a[2 * i]) * mult;
    std::memcpy(vr[di.d].data(), o, kVectorBytes);
    return -1;
}

int32_t
execVmpyiw(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const auto mult = static_cast<int32_t>(st.regs.scalar[di.s1]);
    int32_t a[kVectorWords];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    for (int i = 0; i < kVectorWords; ++i)
        a[i] *= mult;
    std::memcpy(vr[di.d].data(), a, kVectorBytes);
    return -1;
}

// --- Vector shift / narrowing -----------------------------------------

int32_t
execVasrhb(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const int shift = static_cast<int>(di.imm);
    const bool unsignedOut = di.op == Opcode::VASRHUB;
    int16_t a[kVectorHalves], b[kVectorHalves];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    std::memcpy(b, vr[di.s0 + 1].data(), kVectorBytes);
    uint8_t o[kVectorBytes];
    for (int i = 0; i < kVectorHalves; ++i) {
        const auto lo = static_cast<int32_t>(roundShift(a[i], shift));
        const auto hi = static_cast<int32_t>(roundShift(b[i], shift));
        o[i] = unsignedOut ? usat8(lo) : static_cast<uint8_t>(sat8(lo));
        o[kVectorHalves + i] =
            unsignedOut ? usat8(hi) : static_cast<uint8_t>(sat8(hi));
    }
    std::memcpy(vr[di.d].data(), o, kVectorBytes);
    return -1;
}

int32_t
execVasrwh(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const int shift = static_cast<int>(di.imm);
    int32_t a[kVectorWords], b[kVectorWords];
    std::memcpy(a, vr[di.s0].data(), kVectorBytes);
    std::memcpy(b, vr[di.s0 + 1].data(), kVectorBytes);
    int16_t o[kVectorHalves];
    for (int i = 0; i < kVectorWords; ++i) {
        o[i] = sat16(roundShift(a[i], shift));
        o[kVectorWords + i] = sat16(roundShift(b[i], shift));
    }
    std::memcpy(vr[di.d].data(), o, kVectorBytes);
    return -1;
}

// --- Vector permutes --------------------------------------------------

// The interpreter already stages shuffles through temporaries, so these
// are snapshot-equivalent for any operand aliasing.

int32_t
execVshuff(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const int lane = 1 << di.imm;
    const int perVec = kVectorBytes / lane;
    std::array<uint8_t, 2 * kVectorBytes> out;
    for (int i = 0; i < perVec; ++i) {
        std::memcpy(out.data() + (2 * i) * lane,
                    vr[di.s0].data() + i * lane, lane);
        std::memcpy(out.data() + (2 * i + 1) * lane,
                    vr[di.s1].data() + i * lane, lane);
    }
    std::memcpy(vr[di.d].data(), out.data(), kVectorBytes);
    std::memcpy(vr[di.d + 1].data(), out.data() + kVectorBytes,
                kVectorBytes);
    return -1;
}

int32_t
execVdeal(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const int lane = 1 << di.imm;
    const int perVec = kVectorBytes / lane;
    std::array<uint8_t, 2 * kVectorBytes> in;
    std::memcpy(in.data(), vr[di.s0].data(), kVectorBytes);
    std::memcpy(in.data() + kVectorBytes, vr[di.s1].data(), kVectorBytes);
    std::array<uint8_t, 2 * kVectorBytes> out;
    for (int i = 0; i < perVec; ++i) {
        std::memcpy(out.data() + i * lane, in.data() + (2 * i) * lane,
                    lane);
        std::memcpy(out.data() + (perVec + i) * lane,
                    in.data() + (2 * i + 1) * lane, lane);
    }
    std::memcpy(vr[di.d].data(), out.data(), kVectorBytes);
    std::memcpy(vr[di.d + 1].data(), out.data() + kVectorBytes,
                kVectorBytes);
    return -1;
}

int32_t
execVshuffEo(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    const int lane = 1 << di.imm;
    const int perVec = kVectorBytes / lane;
    const int pick = (di.op == Opcode::VSHUFFE) ? 0 : 1;
    std::array<uint8_t, kVectorBytes> out;
    for (int i = 0; i < perVec / 2; ++i) {
        std::memcpy(out.data() + (2 * i) * lane,
                    vr[di.s0].data() + (2 * i + pick) * lane, lane);
        std::memcpy(out.data() + (2 * i + 1) * lane,
                    vr[di.s1].data() + (2 * i + pick) * lane, lane);
    }
    vr[di.d] = out;
    return -1;
}

int32_t
execVlut(const DecodedInst &di, St &st)
{
    auto &vr = st.regs.vector;
    // Concatenate the table pair so every uint8 index hits it directly --
    // no per-lane high/low branch.
    uint8_t table[2 * kVectorBytes];
    std::memcpy(table, vr[di.s0].data(), kVectorBytes);
    std::memcpy(table + kVectorBytes, vr[di.s0 + 1].data(), kVectorBytes);
    const auto idx = vr[di.s1];
    auto &o = vr[di.d];
    for (int i = 0; i < kVectorBytes; ++i)
        o[i] = table[idx[i]];
    return -1;
}

/** Dispatch table: one slot per opcode plus the aliasing fallback. */
constexpr std::array<ExecFn, kFallbackSlot + 1>
buildExecTable()
{
    std::array<ExecFn, kFallbackSlot + 1> table{};
    auto set = [&](Opcode op, ExecFn fn) {
        table[static_cast<size_t>(op)] = fn;
    };
    set(Opcode::NOP, execNop);
    set(Opcode::MOVI, execMovi);
    set(Opcode::MOV, execMov);
    set(Opcode::ADD, execAdd);
    set(Opcode::ADDI, execAddi);
    set(Opcode::SUB, execSub);
    set(Opcode::MUL, execMul);
    set(Opcode::SHL, execShl);
    set(Opcode::SHRA, execShra);
    set(Opcode::AND, execAnd);
    set(Opcode::OR, execOr);
    set(Opcode::XOR, execXor);
    set(Opcode::DIV, execDiv);
    set(Opcode::COMBINE4, execCombine4);
    set(Opcode::LOADB, execLoadb);
    set(Opcode::LOADW, execLoadw);
    set(Opcode::STOREB, execStoreb);
    set(Opcode::STOREW, execStorew);
    set(Opcode::JUMP, execJump);
    set(Opcode::JUMPNZ, execJumpNz);
    set(Opcode::VLOAD, execVload);
    set(Opcode::VSTORE, execVstore);
    set(Opcode::VMOV, execVmov);
    set(Opcode::VSPLATW, execVsplatw);
    set(Opcode::VADDB, execVaddb);
    set(Opcode::VADDH, execVaddh);
    set(Opcode::VADDW, execVaddw);
    set(Opcode::VSUBH, execVsubh);
    set(Opcode::VSUBW, execVsubw);
    set(Opcode::VMAXB, execVmaxb);
    set(Opcode::VMINB, execVminb);
    set(Opcode::VMAXUB, execVmaxub);
    set(Opcode::VMINUB, execVminub);
    set(Opcode::VAVGB, execVavgb);
    set(Opcode::VMPY, execVmpy);
    set(Opcode::VMPYACC, execVmpy);
    set(Opcode::VMPA, execVmpa);
    set(Opcode::VRMPY, execVrmpy);
    set(Opcode::VTMPY, execVtmpy);
    set(Opcode::VMPYE, execVmpye);
    set(Opcode::VMPYIW, execVmpyiw);
    set(Opcode::VASRHB, execVasrhb);
    set(Opcode::VASRHUB, execVasrhb);
    set(Opcode::VASRWH, execVasrwh);
    set(Opcode::VSHUFF, execVshuff);
    set(Opcode::VDEAL, execVdeal);
    set(Opcode::VSHUFFE, execVshuffEo);
    set(Opcode::VSHUFFO, execVshuffEo);
    set(Opcode::VLUT, execVlut);
    table[kFallbackSlot] = execFallback;
    return table;
}

constexpr std::array<ExecFn, kFallbackSlot + 1> kExecTable =
    buildExecTable();

} // namespace

DecodeKey
fingerprintProgram(const PackedProgram &packed)
{
    Fnv a(0xcbf29ce484222325ULL);
    Fnv b(0x9e3779b97f4a7c15ULL);
    hashProgram(packed, a);
    hashProgram(packed, b);
    DecodeKey key;
    key.h0 = a.digest();
    key.h1 = b.digest();
    key.instructions = packed.program.code.size();
    key.packets = packed.packets.size();
    return key;
}

std::shared_ptr<const DecodedProgram>
DecodedProgram::build(const PackedProgram &packed)
{
    // Decode indexes the raw code through packet membership, so the
    // structural rows of the shared invariant table (every instruction
    // in exactly one packet, indices in range, label map shape) are a
    // precondition here -- run them, not a private re-implementation.
    // Full-depth legality (slots, hard deps) stays with the validating
    // simulator entry points; decode does not need it for memory safety.
    runScheduleChecks(
        packed, CheckDepth::Structure,
        [](common::DiagCode code, int64_t node, const std::string &msg) {
            GCD2_PANIC("cannot decode packed program: invariant '"
                       << common::diagCodeName(code) << "' violated"
                       << (node >= 0 ? " at instruction " +
                                           std::to_string(node)
                                     : std::string())
                       << ": " << msg);
        });

    const Program &prog = packed.program;
    AliasAnalysis alias(prog);

    auto dec = std::make_shared<DecodedProgram>();
    dec->rawCode = prog.code;
    dec->key = fingerprintProgram(packed);
    dec->packets.reserve(packed.packets.size());

    size_t total = 0;
    for (const Packet &packet : packed.packets)
        total += packet.insts.size();
    dec->insts.reserve(total);

    for (const Packet &packet : packed.packets) {
        DecodedPacket dp;
        dp.begin = static_cast<uint32_t>(dec->insts.size());
        // delay[k]: extra cycles instruction k waits on in-packet soft
        // producers before its own pipeline begins (paper Fig. 4).
        std::vector<int> delay(packet.insts.size(), 0);
        for (size_t k = 0; k < packet.insts.size(); ++k) {
            const size_t idx = packet.insts[k];
            const Instruction &inst = prog.code[idx];
            for (size_t m = 0; m < k; ++m) {
                const size_t earlier = packet.insts[m];
                const Dependency dep = classifyDependency(
                    prog.code[earlier], inst, alias.mayAlias(earlier, idx));
                if (dep.kind == DepKind::Soft && dep.penalty > 0)
                    delay[k] = std::max(delay[k], delay[m] + dep.penalty);
            }

            DecodedInst di;
            di.op = inst.op;
            di.exec = needsFallback(inst)
                          ? static_cast<uint8_t>(kFallbackSlot)
                          : static_cast<uint8_t>(inst.op);
            di.d = inst.dst[0].idx;
            di.s0 = inst.src[0].idx;
            di.s1 = inst.src[1].idx;
            di.latency = inst.info().latency;
            di.delay = delay[k];
            di.rawIndex = static_cast<uint32_t>(idx);
            di.imm = inst.imm;
            const RegMasks masks = regMasks(inst);
            di.writeMask = masks.writes;
            dp.readMask |= masks.reads;
            if (inst.isBranch()) {
                const auto label = static_cast<size_t>(inst.imm);
                di.target =
                    label < packed.labelPacket.size()
                        ? static_cast<int32_t>(packed.labelPacket[label])
                        : DecodedInst::kBadTarget;
            }
            dec->insts.push_back(di);
        }
        dp.end = static_cast<uint32_t>(dec->insts.size());
        dec->packets.push_back(dp);
    }
    return dec;
}

TimingStats
runDecoded(const DecodedProgram &dec, RegisterFile &regs, Memory &mem,
           ExecStats &xstats, uint64_t maxPackets)
{
    TimingStats stats;
    const uint64_t loadedBefore = xstats.bytesLoaded;
    const uint64_t storedBefore = xstats.bytesStored;

    // Cycle each register's value becomes readable by a later packet.
    std::array<uint64_t, kNumRegUids> ready{};
    uint64_t issue = 0;
    uint64_t lastIssue = 0;
    uint64_t completion = 0;
    bool first = true;

    St st{regs, mem, xstats, dec.rawCode.data()};
    const size_t numPackets = dec.packets.size();
    const DecodedPacket *packets = dec.packets.data();
    const DecodedInst *insts = dec.insts.data();

    // Runaway guard hoisted out of the hot loop: the inner loop runs a
    // chunk of the remaining packet budget, so on overflow exactly
    // maxPackets packets have executed before the panic -- identical to a
    // per-packet check.
    constexpr uint64_t kPacketCheckInterval = 4096;
    uint64_t budget = maxPackets;
    size_t pc = 0;
    while (pc < numPackets) {
        GCD2_ASSERT(budget > 0, "packed program exceeded " << maxPackets
                                                           << " packets");
        uint64_t chunk = std::min(budget, kPacketCheckInterval);
        budget -= chunk;
        while (chunk-- > 0 && pc < numPackets) {
            const DecodedPacket &pk = packets[pc];

            // Issue no earlier than one cycle after the previous packet,
            // and no earlier than every cross-packet source's readiness.
            issue = first ? 0 : lastIssue + 1;
            uint64_t m = pk.readMask;
            while (m != 0) {
                const int uid = std::countr_zero(m);
                m &= m - 1;
                issue = std::max(issue, ready[static_cast<size_t>(uid)]);
            }
            stats.stallCycles += issue - (first ? 0 : lastIssue + 1);
            first = false;
            lastIssue = issue;

            ++stats.packetsExecuted;
            stats.instructionsExecuted += pk.end - pk.begin;

            int32_t taken = DecodedInst::kNotBranch;
            for (uint32_t i = pk.begin; i < pk.end; ++i) {
                const DecodedInst &di = insts[i];
                const uint64_t done =
                    issue + static_cast<uint64_t>(di.delay) +
                    static_cast<uint64_t>(di.latency);
                completion = std::max(completion, done);
                uint64_t w = di.writeMask;
                while (w != 0) {
                    ready[static_cast<size_t>(std::countr_zero(w))] = done;
                    w &= w - 1;
                }
                stats.stallCycles += static_cast<uint64_t>(di.delay);

                ++xstats.instructions;
                const int32_t t = kExecTable[di.exec](di, st);
                if (t != DecodedInst::kNotBranch)
                    taken = t;
            }

            if (taken == DecodedInst::kNotBranch) {
                ++pc;
            } else {
                GCD2_ASSERT(taken != DecodedInst::kBadTarget,
                            "branch to unknown label");
                pc = static_cast<size_t>(taken);
            }
        }
    }

    stats.cycles = completion;
    stats.bytesLoaded = xstats.bytesLoaded - loadedBefore;
    stats.bytesStored = xstats.bytesStored - storedBefore;
    return stats;
}

std::shared_ptr<const DecodedProgram>
DecodeCache::lookupOrDecode(const PackedProgram &packed)
{
    const DecodeKey key = fingerprintProgram(packed);
    if (auto hit = lru_.lookup(key))
        return *std::move(hit);
    // Decode outside the shard lock: two threads may race on the same
    // program, but decoding is a pure function so either result is
    // usable; the first insert wins.
    return lru_.insert(key, DecodedProgram::build(packed));
}

DecodeCache &
DecodeCache::global()
{
    static DecodeCache cache;
    return cache;
}

} // namespace gcd2::dsp
