#include "dsp/alias.h"

#include <array>

#include "common/logging.h"
#include "dsp/deps.h"

namespace gcd2::dsp {

namespace {

constexpr int kSegUnknown = -2;
constexpr int kSegData = -1;

/** Lattice join: Data is neutral (offsets), distinct segments clash. */
int
joinSeg(int a, int b)
{
    if (a == kSegUnknown || b == kSegUnknown)
        return kSegUnknown;
    if (a == kSegData)
        return b;
    if (b == kSegData)
        return a;
    return a == b ? a : kSegUnknown;
}

/**
 * Flow-insensitive per-register buffer segment: which noaliasRegs entry a
 * register's value (as a pointer) derives from. Sound under the
 * Program::noaliasRegs precondition (pointers derive only from the
 * declared registers; every other arithmetic operand is an offset).
 */
std::array<int, kNumScalarRegs>
computeSegments(const Program &prog)
{
    std::array<int, kNumScalarRegs> seg;
    seg.fill(kSegData);
    for (size_t s = 0; s < prog.noaliasRegs.size(); ++s)
        seg[static_cast<size_t>(prog.noaliasRegs[s])] =
            static_cast<int>(s);

    // A declared register that the program overwrites loses its seed: the
    // seed only describes the entry value.
    for (const Instruction &inst : prog.code)
        for (int uid : regWrites(inst))
            if (uid < kNumScalarRegs && seg[uid] >= 0)
                seg[uid] = kSegUnknown;

    // Iterate to a fixpoint (the lattice is tiny, two rounds suffice for
    // loop-carried copies; cap generously).
    for (int round = 0; round < 8; ++round) {
        bool changed = false;
        for (const Instruction &inst : prog.code) {
            if (!inst.dst[0].valid() ||
                inst.dst[0].cls != RegClass::Scalar)
                continue;
            const int d = inst.dst[0].idx;
            int value = kSegData;
            switch (inst.op) {
              case Opcode::MOVI:
              case Opcode::LOADB:
              case Opcode::LOADW:
              case Opcode::COMBINE4:
                value = kSegData; // constants and loaded data
                break;
              case Opcode::MOV:
              case Opcode::ADDI:
              case Opcode::SHL:
              case Opcode::SHRA:
                value = seg[inst.src[0].idx];
                break;
              default:
                // Binary arithmetic: join the scalar sources.
                value = kSegData;
                for (const Operand &src : inst.src)
                    if (src.valid() && src.cls == RegClass::Scalar)
                        value = joinSeg(value, seg[src.idx]);
                break;
            }
            const int joined = joinSeg(seg[d], value);
            if (joined != seg[d]) {
                seg[d] = joined;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return seg;
}

} // namespace

AliasAnalysis::AliasAnalysis(const Program &prog)
{
    refs_.resize(prog.code.size());
    std::array<uint32_t, kNumScalarRegs> version{};
    const std::array<int, kNumScalarRegs> segments =
        computeSegments(prog);

    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Instruction &inst = prog.code[i];
        const int bytes = memAccessBytes(inst);
        if (bytes > 0) {
            MemRef &ref = refs_[i];
            ref.isMem = true;
            ref.baseReg = inst.src[0].idx;
            ref.baseVersion = version[ref.baseReg];
            ref.offset = inst.imm;
            ref.size = bytes;
            ref.segment = segments[ref.baseReg];
        }
        for (int uid : regWrites(inst)) {
            if (uid < kNumScalarRegs)
                ++version[uid];
        }
    }
}

bool
AliasAnalysis::mayAlias(size_t i, size_t j) const
{
    GCD2_ASSERT(i < refs_.size() && j < refs_.size(),
                "alias query out of range");
    const MemRef &a = refs_[i];
    const MemRef &b = refs_[j];
    if (!a.isMem || !b.isMem)
        return false;
    // Distinct declared buffer segments never overlap.
    if (a.segment >= 0 && b.segment >= 0 && a.segment != b.segment)
        return false;
    if (a.baseReg != b.baseReg || a.baseVersion != b.baseVersion)
        return true;
    const bool disjoint = a.offset + a.size <= b.offset ||
                          b.offset + b.size <= a.offset;
    return !disjoint;
}

} // namespace gcd2::dsp
