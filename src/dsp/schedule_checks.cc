#include "dsp/schedule_checks.h"

#include <sstream>

#include "dsp/alias.h"
#include "dsp/deps.h"

namespace gcd2::dsp {

using common::DiagCode;

namespace {

/** Shared state threaded through the table rows. */
struct CheckCtx
{
    const PackedProgram &packed;
    CheckDepth depth;
    const CheckSink &sink;
    size_t violations = 0;
    /** Per-packet "all instruction indices in range" (gates Full rows). */
    std::vector<bool> packetValid;

    void
    fail(DiagCode code, int64_t node, const std::string &message)
    {
        ++violations;
        sink(code, node, message);
    }
};

void
checkPacketShape(CheckCtx &ctx)
{
    const PackedProgram &packed = ctx.packed;
    const size_t codeSize = packed.program.code.size();
    ctx.packetValid.assign(packed.packets.size(), true);
    for (size_t p = 0; p < packed.packets.size(); ++p) {
        const Packet &packet = packed.packets[p];
        if (packet.insts.empty()) {
            ctx.fail(DiagCode::SchedEmptyPacket, -1,
                     "packet " + std::to_string(p) + " is empty");
            continue;
        }
        if (packet.insts.size() > static_cast<size_t>(kPacketSlots))
            ctx.fail(DiagCode::SchedOversizedPacket, -1,
                     "packet " + std::to_string(p) + " holds " +
                         std::to_string(packet.insts.size()) +
                         " instructions (max " +
                         std::to_string(kPacketSlots) + ")");
        for (size_t idx : packet.insts)
            if (idx >= codeSize) {
                ctx.fail(DiagCode::SchedBadInstIndex,
                         static_cast<int64_t>(idx),
                         "packet " + std::to_string(p) +
                             " references out-of-range instruction");
                ctx.packetValid[p] = false;
            }
    }
}

void
checkCoverage(CheckCtx &ctx)
{
    const PackedProgram &packed = ctx.packed;
    std::vector<int> seen(packed.program.code.size(), 0);
    for (size_t p = 0; p < packed.packets.size(); ++p) {
        if (!ctx.packetValid[p])
            continue;
        for (size_t idx : packed.packets[p].insts)
            ++seen[idx];
    }
    for (size_t i = 0; i < seen.size(); ++i)
        if (seen[i] != 1)
            ctx.fail(DiagCode::SchedInstCoverage, static_cast<int64_t>(i),
                     "instruction appears " + std::to_string(seen[i]) +
                         " times in packets (" +
                         packed.program.code[i].toString() + ")");
}

void
checkPacketOrder(CheckCtx &ctx)
{
    const PackedProgram &packed = ctx.packed;
    for (size_t p = 0; p < packed.packets.size(); ++p) {
        if (!ctx.packetValid[p])
            continue;
        const Packet &packet = packed.packets[p];
        for (size_t k = 1; k < packet.insts.size(); ++k)
            if (packet.insts[k - 1] >= packet.insts[k])
                ctx.fail(DiagCode::SchedPacketOrder,
                         static_cast<int64_t>(packet.insts[k]),
                         "packet " + std::to_string(p) +
                             " members not in program order");
    }
}

void
checkLabels(CheckCtx &ctx)
{
    const PackedProgram &packed = ctx.packed;
    const Program &prog = packed.program;
    if (packed.labelPacket.size() != prog.labels.size()) {
        ctx.fail(DiagCode::SchedLabelMapSize, -1,
                 "labelPacket size " +
                     std::to_string(packed.labelPacket.size()) +
                     " != label count " +
                     std::to_string(prog.labels.size()));
        return; // per-label checks are meaningless on a mismatched map
    }
    for (size_t l = 0; l < prog.labels.size(); ++l) {
        const size_t packetIdx = packed.labelPacket[l];
        // One past the last packet is legal: a branch to program end.
        if (packetIdx > packed.packets.size()) {
            ctx.fail(DiagCode::SchedLabelPastEnd, -1,
                     "label L" + std::to_string(l) +
                         " maps past the last packet");
            continue;
        }
        // Everything belonging to the labelled region must be scheduled
        // no earlier than the label's packet.
        const size_t target = prog.labels[l];
        for (size_t p = 0; p < packetIdx; ++p) {
            if (!ctx.packetValid[p])
                continue;
            for (size_t idx : packed.packets[p].insts)
                if (idx >= target)
                    ctx.fail(DiagCode::SchedLabelBoundary,
                             static_cast<int64_t>(idx),
                             "instruction scheduled before label L" +
                                 std::to_string(l) +
                                 " but belongs after it");
        }
    }
}

void
checkSlots(CheckCtx &ctx)
{
    const PackedProgram &packed = ctx.packed;
    for (size_t p = 0; p < packed.packets.size(); ++p) {
        if (!ctx.packetValid[p] || packed.packets[p].insts.empty())
            continue;
        if (!slotsFeasible(packed.program, packed.packets[p].insts))
            ctx.fail(DiagCode::SchedSlotInfeasible, -1,
                     "packet " + std::to_string(p) +
                         " violates slot constraints");
    }
}

void
checkHardDeps(CheckCtx &ctx)
{
    const PackedProgram &packed = ctx.packed;
    const Program &prog = packed.program;
    const AliasAnalysis alias(prog);
    for (size_t p = 0; p < packed.packets.size(); ++p) {
        if (!ctx.packetValid[p])
            continue;
        const Packet &packet = packed.packets[p];
        for (size_t k = 0; k < packet.insts.size(); ++k) {
            const size_t idx = packet.insts[k];
            for (size_t m = 0; m < k; ++m) {
                const size_t earlier = packet.insts[m];
                const Dependency dep = classifyDependency(
                    prog.code[earlier], prog.code[idx],
                    alias.mayAlias(earlier, idx));
                if (dep.kind == DepKind::Hard) {
                    std::ostringstream msg;
                    msg << "hard dependency inside packet " << p << ": "
                        << prog.code[earlier].toString() << " -> "
                        << prog.code[idx].toString();
                    ctx.fail(DiagCode::SchedHardDepInPacket,
                             static_cast<int64_t>(idx), msg.str());
                }
            }
        }
    }
}

struct CheckRow
{
    ScheduleCheckInfo info;
    void (*run)(CheckCtx &);
};

/**
 * The one invariant table. Add new invariants HERE (and only here): all
 * three consumers -- validatePackedProgram, vliw::auditSchedule, and the
 * decode-time guard -- pick the row up automatically. Evaluation order
 * matters: checkPacketShape fills packetValid, which gates every later
 * row's packet access.
 */
const CheckRow kChecks[] = {
    {{"packet-shape", DiagCode::SchedEmptyPacket, CheckDepth::Structure},
     checkPacketShape},
    {{"instruction-coverage", DiagCode::SchedInstCoverage,
      CheckDepth::Structure},
     checkCoverage},
    {{"packet-order", DiagCode::SchedPacketOrder, CheckDepth::Structure},
     checkPacketOrder},
    {{"label-mapping", DiagCode::SchedLabelBoundary,
      CheckDepth::Structure},
     checkLabels},
    {{"slot-feasibility", DiagCode::SchedSlotInfeasible, CheckDepth::Full},
     checkSlots},
    {{"intra-packet-hard-deps", DiagCode::SchedHardDepInPacket,
      CheckDepth::Full},
     checkHardDeps},
};

} // namespace

const std::vector<ScheduleCheckInfo> &
scheduleCheckTable()
{
    static const std::vector<ScheduleCheckInfo> table = [] {
        std::vector<ScheduleCheckInfo> rows;
        for (const CheckRow &row : kChecks)
            rows.push_back(row.info);
        return rows;
    }();
    return table;
}

size_t
runScheduleChecks(const PackedProgram &packed, CheckDepth depth,
                  const CheckSink &sink)
{
    CheckCtx ctx{packed, depth, sink, 0, {}};
    for (const CheckRow &row : kChecks) {
        if (depth == CheckDepth::Structure &&
            row.info.depth == CheckDepth::Full)
            continue;
        row.run(ctx);
    }
    return ctx.violations;
}

} // namespace gcd2::dsp
