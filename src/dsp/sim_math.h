/**
 * @file
 * Saturation / rounding arithmetic shared by the reference interpreter
 * (functional_sim.cc) and the pre-decoded execution engine (decoded.cc).
 *
 * Both executors must implement identical integer semantics -- the decoded
 * engine is verified bit-identical against the interpreter by differential
 * tests -- so the helpers live in one header instead of being duplicated.
 */
#ifndef GCD2_DSP_SIM_MATH_H
#define GCD2_DSP_SIM_MATH_H

#include <algorithm>
#include <cstdint>

namespace gcd2::dsp {

inline int8_t
sat8(int32_t v)
{
    return static_cast<int8_t>(std::clamp(v, -128, 127));
}

inline uint8_t
usat8(int32_t v)
{
    return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

inline int16_t
sat16(int64_t v)
{
    return static_cast<int16_t>(std::clamp<int64_t>(v, INT16_MIN, INT16_MAX));
}

/** Round-then-arithmetic-shift used by the narrowing shifts. */
inline int64_t
roundShift(int64_t v, int shift)
{
    if (shift <= 0)
        return v;
    return (v + (int64_t{1} << (shift - 1))) >> shift;
}

} // namespace gcd2::dsp

#endif // GCD2_DSP_SIM_MATH_H
