/**
 * @file
 * Instruction-set definition for the simulated Hexagon-class mobile DSP.
 *
 * The ISA is a faithful subset of what the paper's target (Qualcomm Hexagon
 * 698 with HVX vector extensions) exposes:
 *
 *  - 32 scalar registers (32-bit) and 32 vector registers (1024-bit,
 *    i.e. 128 bytes). Vector instructions that produce double-width results
 *    write a *vector pair* (two adjacent registers, low even).
 *  - The three SIMD multiply instructions the paper builds layouts for
 *    (Fig. 1): @c vmpy (vector x 4 scalar bytes -> 16-bit product pair),
 *    @c vmpa (vector pair x 4 scalar bytes -> accumulated 16-bit pair),
 *    and @c vrmpy (4-way reduce multiply -> accumulated 32-bit lanes);
 *    plus @c vtmpy and @c vmpye which the paper mentions as alternatives.
 *  - Scalar ALU/multiply/shift, loads/stores (byte/word/vector), and the
 *    branch instructions needed to express kernel loops.
 *
 * Each opcode carries static metadata (latency in pipeline cycles, the VLIW
 * slots it may occupy, memory behavior, whether the destination is also
 * read, i.e. accumulated into) consumed by the dependency classifier, the
 * packing algorithms, and the timing simulator.
 */
#ifndef GCD2_DSP_ISA_H
#define GCD2_DSP_ISA_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gcd2::dsp {

/** Number of scalar registers. */
inline constexpr int kNumScalarRegs = 32;
/** Number of vector registers. */
inline constexpr int kNumVectorRegs = 32;
/** Bytes per vector register (1024-bit HVX). */
inline constexpr int kVectorBytes = 128;
/** Halfword lanes per vector register. */
inline constexpr int kVectorHalves = kVectorBytes / 2;
/** Word lanes per vector register. */
inline constexpr int kVectorWords = kVectorBytes / 4;
/** Maximum instructions per VLIW packet. */
inline constexpr int kPacketSlots = 4;

/** Every opcode of the simulated DSP. */
enum class Opcode : uint8_t
{
    // Scalar ALU.
    NOP,
    MOVI,     ///< Rd = imm
    MOV,      ///< Rd = Rs
    ADD,      ///< Rd = Rs + Rt
    ADDI,     ///< Rd = Rs + imm
    SUB,      ///< Rd = Rs - Rt
    MUL,      ///< Rd = Rs * Rt (32-bit, slot-restricted multiply unit)
    SHL,      ///< Rd = Rs << imm (shift unit)
    SHRA,     ///< Rd = Rs >> imm arithmetic (shift unit)
    AND,      ///< Rd = Rs & Rt
    OR,       ///< Rd = Rs | Rt
    XOR,      ///< Rd = Rs ^ Rt
    DIV,      ///< Rd = Rs / Rt (signed; very slow -- the paper replaces it
              ///< with a table lookup in the "other optimizations" pass)
    COMBINE4, ///< Rd = four packed copies of the low byte of Rs (builds the
              ///< 4-scalar operand of vmpy/vmpa/vrmpy from one weight byte)

    // Scalar memory.
    LOADB,  ///< Rd = sign-extended mem8[Rs + imm]
    LOADW,  ///< Rd = mem32[Rs + imm]
    STOREB, ///< mem8[Rs + imm] = low byte of Rt
    STOREW, ///< mem32[Rs + imm] = Rt

    // Control flow. imm is a label id resolved through Program::labels.
    JUMP,   ///< unconditional branch
    JUMPNZ, ///< branch if Rs != 0

    // Vector memory / moves.
    VLOAD,   ///< Vd = mem[Rs + imm .. +128)
    VSTORE,  ///< mem[Rs + imm .. +128) = Vu
    VMOV,    ///< Vd = Vu
    VSPLATW, ///< Vd.w[i] = Rs for all word lanes

    // Vector integer ALU.
    VADDB, ///< byte-lane add
    VADDH, ///< halfword-lane add
    VADDW, ///< word-lane add
    VSUBH, ///< halfword-lane subtract
    VSUBW, ///< word-lane subtract
    VMAXB, ///< signed byte max (ReLU-style clamps)
    VMINB, ///< signed byte min
    VMAXUB,///< unsigned byte max (uint8 activations / max pooling)
    VMINUB,///< unsigned byte min (uint8 clamp)
    VAVGB, ///< unsigned byte average (pooling, requantized adds)

    // SIMD multiplies (Fig. 1 of the paper).
    VMPY,    ///< (VdHi:VdLo).h = Vu.ub * Rt.b : lane 4k+j multiplies by
             ///< scalar byte j; even products go to VdLo, odd to VdHi.
    VMPYACC, ///< accumulating form of VMPY (Vdd.h += ...)
    VMPA,    ///< Vdd.h += vmpa((VuHi:VuLo).ub, Rt.b): element pairs from the
             ///< two source vectors scaled by scalar byte pairs.
    VRMPY,   ///< Vd.w += vrmpy(Vu.ub, Rt.b): each word lane accumulates the
             ///< dot product of 4 consecutive bytes with the 4 scalar bytes.
    VTMPY,   ///< Vdd.h += 3-tap filter of (VuHi:VuLo).ub with 3 scalar
             ///< coefficient bytes (depthwise convolutions).
    VMPYE,   ///< Vd.w = Vu.h(even lanes) * Rt.h (16-bit pipelines)
    VMPYIW,  ///< Vd.w = Vu.w * Rt (low 32 bits; requantization scaling)

    // Vector shift / narrowing (requantization epilogues; shift unit).
    VASRHB, ///< Vd.b = sat8((VuHi:VuLo).h >> imm with rounding)
    VASRHUB,///< Vd.ub = usat8((VuHi:VuLo).h >> imm with rounding)
    VASRWH, ///< Vd.h = sat16((VuHi:VuLo).w >> imm with rounding)

    // Vector permutes (layout shuffles; permute unit). imm = log2 of the
    // lane size in bytes (0 = bytes, 1 = halfwords, 2 = words).
    VSHUFF, ///< (VdHi:VdLo) = lane-interleave(Vu, Vv)
    VDEAL,  ///< (VdHi:VdLo) = lane-deinterleave(concat(Vu, Vv))
    VSHUFFE,///< Vd.b[i] = even bytes of (Vu, Vv) interleaved by half
    VSHUFFO,///< Vd.b[i] = odd bytes of (Vu, Vv) interleaved by half
    VLUT,   ///< Vd.b[i] = table[Vu.b[i]]: 256-byte table in a vector pair
            ///< (quantized nonlinearities: sigmoid/tanh/gelu/pow)

    kNumOpcodes
};

/** Register operand class. */
enum class RegClass : uint8_t { None, Scalar, Vector };

/** A register reference. */
struct Operand
{
    RegClass cls = RegClass::None;
    int8_t idx = -1;

    bool valid() const { return cls != RegClass::None; }
    bool operator==(const Operand &other) const = default;
};

/** Make a scalar register operand. */
constexpr Operand
sreg(int idx)
{
    return Operand{RegClass::Scalar, static_cast<int8_t>(idx)};
}

/** Make a vector register operand. */
constexpr Operand
vreg(int idx)
{
    return Operand{RegClass::Vector, static_cast<int8_t>(idx)};
}

/** Memory behavior of an opcode. */
enum class MemKind : uint8_t { None, Load, Store };

/** Functional-unit class used for slot/resource constraints. */
enum class UnitKind : uint8_t
{
    Alu,     ///< scalar ALU, any slot
    Mult,    ///< multiply pipelines (slots 2-3, shared scalar/vector)
    Shift,   ///< the single shift unit (slot 2)
    Permute, ///< the single permute unit (slot 3)
    Mem,     ///< load/store units (slots 0-1)
    Branch,  ///< branch unit (slots 2-3, at most one per packet)
    VecAlu,  ///< vector ALU (any slot)
};

/** Static per-opcode metadata. */
struct OpcodeInfo
{
    const char *mnemonic;
    UnitKind unit;
    MemKind mem;
    /** Pipeline occupancy in cycles (read / execute... / write stages). */
    int latency;
    /** Bitmask of VLIW slots (bit s => slot s allowed). */
    uint8_t slotMask;
    /** Destination is read-modify-write (accumulators). */
    bool readsDst;
    /** Writes a vector register pair (dst idx and idx+1). */
    bool writesPair;
    /** Reads a vector register pair as first vector source. */
    bool readsPairSrc;
    /** Multiply pipelines consumed (vmpa/vtmpy are double-wide). */
    int multUnits;
};

/** Look up metadata for an opcode. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Mnemonic helper. */
inline const char *
mnemonic(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

/**
 * One decoded instruction.
 *
 * Operand conventions:
 *  - dst[0] is the primary destination; pair-writing opcodes implicitly
 *    also write dst[0].idx + 1.
 *  - Loads: src[0] = base address register; imm = byte offset.
 *  - Stores: src[0] = base address register, src[1] = data; imm = offset.
 *  - Branches: imm = label id (see Program::labels).
 *  - Pair-reading vector ops: src[0] is the low register of the pair.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::array<Operand, 1> dst{};
    std::array<Operand, 2> src{};
    int64_t imm = 0;

    const OpcodeInfo &info() const { return opcodeInfo(op); }

    bool isBranch() const
    {
        return op == Opcode::JUMP || op == Opcode::JUMPNZ;
    }

    /** Render as pseudo-assembly for debugging and examples. */
    std::string toString() const;
};

/**
 * A straight-line-plus-branches instruction sequence.
 *
 * Labels are branch targets: label id i marks the instruction at index
 * labels[i]. The CFG builder splits the program into basic blocks at labels
 * and after branches.
 */
struct Program
{
    std::vector<Instruction> code;
    std::vector<size_t> labels;

    /**
     * Registers that, at program entry, point to pairwise-disjoint memory
     * regions (the kernel buffer ABI). Declared by code generators so the
     * alias analysis may disambiguate accesses whose addresses derive from
     * different entries. Precondition: the program derives pointers only
     * from these registers (other operands of pointer arithmetic are
     * offsets), which holds for all generated kernels.
     */
    std::vector<int8_t> noaliasRegs;

    /**
     * Byte extent of the buffer each noaliasRegs entry points to, parallel
     * to noaliasRegs. 0 = extent unknown (legacy declarations); analyses
     * that reason about bounds must skip those entries.
     */
    std::vector<int64_t> noaliasExtents;

    /**
     * Declare @p reg as a noalias buffer base of @p extentBytes bytes
     * (0 = unknown). The canonical entry point: entries are deduplicated
     * here -- re-declaring a register is idempotent and keeps the larger
     * extent -- so analyzers never see duplicate bases from well-formed
     * generators (a literal duplicate in noaliasRegs remains a lint
     * Error, reachable only by hand-building the vectors).
     */
    void declareNoalias(int reg, int64_t extentBytes = 0);

    /** Reserve a label id whose target will be bound later. */
    int newLabel();

    /** Bind a label to the *next* instruction to be appended. */
    void bindLabel(int label);

    /** Append an instruction and return its index. */
    size_t push(Instruction inst);

    std::string toString() const;
};

// Instruction factory helpers ------------------------------------------

Instruction makeNop();
Instruction makeMovi(Operand rd, int64_t imm);
Instruction makeMov(Operand rd, Operand rs);
Instruction makeBinary(Opcode op, Operand rd, Operand rs, Operand rt);
Instruction makeAddi(Operand rd, Operand rs, int64_t imm);
Instruction makeShift(Opcode op, Operand rd, Operand rs, int64_t amount);
Instruction makeCombine4(Operand rd, Operand rs);
Instruction makeLoad(Opcode op, Operand rd, Operand base, int64_t offset);
Instruction makeStore(Opcode op, Operand base, Operand data, int64_t offset);
Instruction makeJump(int label);
Instruction makeJumpNz(Operand cond, int label);
Instruction makeVload(Operand vd, Operand base, int64_t offset);
Instruction makeVstore(Operand base, Operand vu, int64_t offset);
Instruction makeVsplatw(Operand vd, Operand rs);
Instruction makeVecBinary(Opcode op, Operand vd, Operand vu, Operand vv);
/** VMPY/VMPYACC: dst pair (vdLo even), vector src, 4-byte scalar src. */
Instruction makeVmpy(Opcode op, Operand vdLo, Operand vu, Operand rt);
/** VMPA/VTMPY: dst pair += f(src pair, scalar). */
Instruction makeVmpa(Opcode op, Operand vdLo, Operand vuLo, Operand rt);
/** VRMPY: dst.w += reduce(vu.ub * rt.b). */
Instruction makeVrmpy(Operand vd, Operand vu, Operand rt);
Instruction makeVmpye(Operand vd, Operand vu, Operand rt);
Instruction makeVmpyiw(Operand vd, Operand vu, Operand rt);
/** Narrowing shifts: dst <- shift-round-saturate(src pair) by imm bits. */
Instruction makeVasr(Opcode op, Operand vd, Operand vuLo, int64_t shift);
/**
 * VSHUFF/VDEAL and the even/odd shuffles. laneLog2 selects the permuted
 * lane size (0 = bytes, 1 = halfwords, 2 = words).
 */
/** Byte-wise table lookup: dst[i] = table[idx[i]]; table pair at
 *  tableLo (even register). */
Instruction makeVlut(Operand vd, Operand tableLo, Operand idx);

Instruction makeVshuff(Opcode op, Operand vd, Operand vu, Operand vv,
                       int laneLog2 = 0);

} // namespace gcd2::dsp

#endif // GCD2_DSP_ISA_H
