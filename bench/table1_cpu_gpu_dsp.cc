/**
 * @file
 * Table I: latency and power of mobile CPU / GPU / DSP under TFLite.
 *
 * The CPU and GPU columns come from the calibrated analytic platform
 * models (context devices, not reproduction targets); the DSP column is
 * the TFLite-like framework compiled through the simulator. The paper's
 * point -- the DSP wins both latency and power by large factors -- must
 * reproduce.
 */
#include <iostream>

#include "baselines/frameworks.h"
#include "common/table.h"
#include "runtime/platform_model.h"
#include "runtime/power_model.h"

using namespace gcd2;
using baselines::Framework;

int
main()
{
    std::cout << "Table I: Latency and Power Comparisons among Mobile "
                 "CPU, GPU, and DSP (TFLite)\n\n";

    const struct
    {
        models::ModelId id;
        double paperCpuMs, paperGpuMs, paperDspMs;
        double paperCpuOverDsp, paperGpuOverDsp;
    } rows[] = {
        {models::ModelId::EfficientNetB0, 11.3, 9.1, 10.7, 1.6, 1.0},
        {models::ModelId::ResNet50, 34.4, 13.9, 6.2, 2.3, 1.0},
        {models::ModelId::PixOr, 64.6, 43.0, 6.7, 1.8, 1.0},
        {models::ModelId::CycleGAN, 477.0, 450.0, 5.5, 1.2, 1.0},
    };

    Table table({"Model", "CPU ms", "GPU ms", "DSP ms", "CPU/DSP",
                 "GPU/DSP", "paper CPU/GPU ms"});

    const runtime::DspPowerModel dspPower;
    double cpuPowerSum = 0, gpuPowerSum = 0, dspPowerSum = 0;
    int count = 0;

    for (const auto &row : rows) {
        const auto &info = models::modelInfo(row.id);
        const graph::Graph g = models::buildModel(row.id);
        const int64_t macs = g.totalMacs();

        const double cpuMs = runtime::kMobileCpuInt8.latencyMs(macs);
        const double gpuMs = runtime::kMobileGpuFp16.latencyMs(macs);
        const auto dsp = baselines::runFramework(Framework::TfLite, row.id);
        const double dspMs = dsp->latencyMs();

        table.addRow({info.name, fmtDouble(cpuMs, 1), fmtDouble(gpuMs, 1),
                      fmtDouble(dspMs, 1), fmtSpeedup(cpuMs / dspMs),
                      fmtSpeedup(gpuMs / dspMs),
                      fmtDouble(row.paperCpuMs, 1) + " / " +
                          fmtDouble(row.paperGpuMs, 1)});

        cpuPowerSum += runtime::kMobileCpuInt8.watts;
        gpuPowerSum += runtime::kMobileGpuFp16.watts;
        dspPowerSum += dspPower.watts(*dsp);
        ++count;
    }
    table.print(std::cout);

    std::cout << "\nAverage power: CPU " << fmtDouble(cpuPowerSum / count, 1)
              << " W, GPU " << fmtDouble(gpuPowerSum / count, 1)
              << " W, DSP " << fmtDouble(dspPowerSum / count, 1)
              << " W (paper: DSP draws the least while being fastest)\n";
    return 0;
}
