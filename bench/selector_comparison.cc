/**
 * @file
 * Selector-rung comparison over the model zoo (Fig. 10 axes: solution
 * quality and search time per solver).
 *
 * For every zoo model this bench runs the whole selector ladder --
 * local baseline, block-cut chain-DP, PBQP, and the paper's GCD2(13)
 * partitioned solver -- and records each rung's Agg_Cost plus the PBQP
 * reduction-rule telemetry. Search time is compared against the
 * exhaustive branch-and-bound: no zoo model is small enough to finish
 * an unbounded exhaustive solve, so the bench runs it under a fixed
 * evaluation budget and reports the truncated run's wall time, which is
 * a *lower bound* on the true exhaustive time (flagged in the JSON).
 * PBQP beating the lower bound therefore proves it beats the real
 * thing.
 *
 * Output: human-readable table + machine-readable JSON (argv[1],
 * default "BENCH_selector.json") consumed by CI via
 * scripts/check_selector_bench.py against bench/selector_baseline.json.
 * The gates: PBQP cost <= chain-DP cost on every model, aggregate PBQP
 * search time < aggregate (budgeted) exhaustive time, and no per-model
 * PBQP cost regression against the checked-in baseline.
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/timer.h"
#include "models/zoo.h"
#include "select/cost_model.h"
#include "select/pbqp.h"
#include "select/selector.h"

using namespace gcd2;

namespace {

/**
 * Evaluation budget for the exhaustive lower-bound run. Large enough
 * that the truncated branch-and-bound takes visibly longer than any
 * PBQP solve (which reduces the same graphs in well under the budget's
 * wall time), small enough to keep the bench CI-friendly.
 */
constexpr uint64_t kExhaustiveBudget = 1000000;

/** Timing repeats; the minimum is reported to damp scheduler noise. */
constexpr int kTimingRepeats = 3;

struct ModelResult
{
    std::string name;
    size_t freeOps = 0;
    uint64_t localCost = 0;
    uint64_t chainDpCost = 0;
    uint64_t pbqpCost = 0;
    uint64_t gcd2Cost = 0;
    select::PbqpStats pbqpStats;
    double pbqpSeconds = 0.0;
    double exhaustiveSeconds = 0.0;
    /** True when the exhaustive run truncated at the budget, making
     *  exhaustiveSeconds a lower bound rather than a completion time. */
    bool exhaustiveLowerBound = false;
};

ModelResult
runModel(const models::ModelInfo &info)
{
    ModelResult r;
    r.name = info.name;

    const graph::Graph graph = models::buildModel(info.id);
    const select::CostModel model;
    const select::PlanTable table(graph, model);
    r.freeOps = table.freeNodes().size();

    r.localCost = select::selectLocal(table).selection.totalCost;
    r.chainDpCost = select::selectChainDp(table).selection.totalCost;
    r.gcd2Cost =
        select::selectGcd2Partitioned(table, 13).selection.totalCost;

    for (int rep = 0; rep < kTimingRepeats; ++rep) {
        const Timer timer;
        const select::SelectorResult pbqp =
            select::selectPbqp(table, &r.pbqpStats);
        const double seconds = timer.seconds();
        if (rep == 0 || seconds < r.pbqpSeconds)
            r.pbqpSeconds = seconds;
        r.pbqpCost = pbqp.selection.totalCost;
    }
    for (int rep = 0; rep < kTimingRepeats; ++rep) {
        const Timer timer;
        const select::SelectorResult exhaustive =
            select::selectGlobalOptimal(table, r.freeOps,
                                        kExhaustiveBudget);
        const double seconds = timer.seconds();
        if (rep == 0 || seconds < r.exhaustiveSeconds)
            r.exhaustiveSeconds = seconds;
        r.exhaustiveLowerBound = exhaustive.truncated;
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath =
        argc > 1 ? argv[1] : "BENCH_selector.json";

    std::cout << "Selector ladder comparison: local / chain-dp / pbqp "
                 "/ gcd2(13) vs budgeted exhaustive\n\n";

    std::vector<ModelResult> results;
    results.reserve(models::allModels().size());
    for (const models::ModelInfo &info : models::allModels()) {
        std::cout << "  solving " << info.name << "...\n";
        results.push_back(runModel(info));
    }

    Table table({"Model", "Free ops", "Local", "ChainDP", "PBQP",
                 "GCD2(13)", "PBQP rn", "PBQP ms", "Exhaustive ms"});
    for (const ModelResult &r : results)
        table.addRow({r.name, std::to_string(r.freeOps),
                      std::to_string(r.localCost),
                      std::to_string(r.chainDpCost),
                      std::to_string(r.pbqpCost),
                      std::to_string(r.gcd2Cost),
                      std::to_string(r.pbqpStats.rn),
                      fmtDouble(r.pbqpSeconds * 1e3, 2),
                      fmtDouble(r.exhaustiveSeconds * 1e3, 2) +
                          (r.exhaustiveLowerBound ? " (>=)" : "")});
    std::cout << "\n";
    table.print(std::cout);

    std::ostringstream json;
    json << "{\n  \"bench\": \"selector_comparison\",\n"
         << "  \"exhaustive_budget\": " << kExhaustiveBudget << ",\n"
         << "  \"models\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ModelResult &r = results[i];
        json << "    {\n"
             << "      \"name\": \"" << r.name << "\",\n"
             << "      \"free_ops\": " << r.freeOps << ",\n"
             << "      \"local_cost\": " << r.localCost << ",\n"
             << "      \"chain_dp_cost\": " << r.chainDpCost << ",\n"
             << "      \"pbqp_cost\": " << r.pbqpCost << ",\n"
             << "      \"gcd2_cost\": " << r.gcd2Cost << ",\n"
             << "      \"pbqp_r0\": " << r.pbqpStats.r0 << ",\n"
             << "      \"pbqp_r1\": " << r.pbqpStats.r1 << ",\n"
             << "      \"pbqp_r2\": " << r.pbqpStats.r2 << ",\n"
             << "      \"pbqp_rn\": " << r.pbqpStats.rn << ",\n"
             << "      \"pbqp_seconds\": " << r.pbqpSeconds << ",\n"
             << "      \"exhaustive_seconds\": " << r.exhaustiveSeconds
             << ",\n"
             << "      \"exhaustive_lower_bound\": "
             << (r.exhaustiveLowerBound ? "true" : "false") << "\n"
             << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    std::ofstream out(outPath);
    out << json.str();
    out.flush();
    if (!out) {
        std::cerr << "error: failed to write " << outPath << "\n";
        return 1;
    }
    std::cout << "\nwrote " << outPath << "\n";
    return 0;
}
