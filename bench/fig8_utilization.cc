/**
 * @file
 * Fig. 8: DSP utilization and memory bandwidth of TFLite / SNPE relative
 * to GCD2 (= 100%) on the five representative models.
 */
#include <iostream>

#include "baselines/frameworks.h"
#include "common/table.h"

using namespace gcd2;
using baselines::Framework;

int
main()
{
    std::cout << "Fig. 8: DSP Utilization and Memory Bandwidth "
                 "(normalized, GCD2 = 100%)\n\n";

    const models::ModelId ids[] = {
        models::ModelId::EfficientNetB0, models::ModelId::ResNet50,
        models::ModelId::FST, models::ModelId::WdsrB,
        models::ModelId::PixOr};

    Table table({"Model", "TFLite util%", "SNPE util%", "GCD2 util%",
                 "TFLite bw%", "SNPE bw%", "GCD2 bw%"});
    for (models::ModelId id : ids) {
        const auto gcd2 = baselines::runFramework(Framework::Gcd2, id);
        const auto tflite = baselines::runFramework(Framework::TfLite, id);
        const auto snpe = baselines::runFramework(Framework::Snpe, id);
        auto pct = [](double v, double ref) {
            return fmtDouble(100.0 * v / ref, 0);
        };
        table.addRow(
            {models::modelInfo(id).name,
             pct(tflite->utilization(), gcd2->utilization()),
             pct(snpe->utilization(), gcd2->utilization()), "100",
             pct(tflite->bandwidth(), gcd2->bandwidth()),
             pct(snpe->bandwidth(), gcd2->bandwidth()), "100"});
    }
    table.print(std::cout);

    std::cout << "\npaper: TFLite reaches 88-93% of GCD2's utilization "
                 "and 86-93% of its bandwidth; SNPE 89-95% and 90-94%.\n"
                 "Expected shape: both baselines below 100% on both "
                 "axes for every model.\n";
    return 0;
}
