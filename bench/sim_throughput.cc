/**
 * @file
 * Simulator-throughput benchmark: reference interpreting loop vs. the
 * pre-decoded engine (dsp/decoded.h) on representative zoo kernels.
 *
 * For each kernel the packed program is executed repeatedly through both
 * TimingSimulator::runReference and TimingSimulator::run (decoded), timing
 * only the simulation call, and reporting simulated packets per wall-clock
 * second. Both engines are differentially checked on every repetition --
 * identical TimingStats and output bytes -- so the bench doubles as an
 * end-to-end bit-identity check on real kernels.
 *
 * Output: a human-readable table on stdout and a machine-readable JSON
 * file (argv[1], default "BENCH_sim.json") consumed by CI, which compares
 * the decoded/reference speedup against a checked-in baseline
 * (bench/sim_baseline.json).
 */
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "dsp/decoded.h"
#include "dsp/timing_sim.h"
#include "kernels/elementwise.h"
#include "kernels/matmul.h"
#include "kernels/runner.h"
#include "vliw/packer.h"

using namespace gcd2;

namespace {

/** One prepared benchmark case: packed program + laid-out memory image. */
struct BenchCase
{
    std::string name;
    dsp::PackedProgram packed;
    size_t memBytes = 0;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> segments;
    uint32_t regInput = 0, regWeights = 0, regOutput = 0, regScratch = 0;
    uint64_t outputBase = 0;
    size_t outputBytes = 0;
};

int64_t
alignUp(int64_t v, int64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

/** Lay out kernel buffers exactly like kernels::runKernel. */
BenchCase
makeCase(std::string name, const dsp::Program &prog,
         const kernels::KernelBuffers &buffers,
         const std::vector<uint8_t> &input,
         const std::vector<uint8_t> &weights)
{
    const int64_t base = dsp::kVectorBytes;
    const int64_t inputBase = base;
    const int64_t weightBase =
        alignUp(inputBase + buffers.inputBytes, dsp::kVectorBytes);
    const int64_t outputBase =
        alignUp(weightBase + buffers.weightBytes, dsp::kVectorBytes);
    const int64_t scratchBase =
        alignUp(outputBase + buffers.outputBytes, dsp::kVectorBytes);
    const int64_t total =
        alignUp(scratchBase + buffers.scratchBytes + dsp::kVectorBytes,
                dsp::kVectorBytes);

    BenchCase c;
    c.name = std::move(name);
    c.packed = vliw::pack(prog);
    c.memBytes = static_cast<size_t>(total);
    if (!input.empty())
        c.segments.emplace_back(static_cast<uint64_t>(inputBase), input);
    if (!weights.empty())
        c.segments.emplace_back(static_cast<uint64_t>(weightBase),
                                weights);
    c.regInput = static_cast<uint32_t>(inputBase);
    c.regWeights = static_cast<uint32_t>(weightBase);
    c.regOutput = static_cast<uint32_t>(outputBase);
    c.regScratch = static_cast<uint32_t>(scratchBase);
    c.outputBase = static_cast<uint64_t>(outputBase);
    c.outputBytes = static_cast<size_t>(buffers.outputBytes);
    return c;
}

struct RunOutcome
{
    dsp::TimingStats stats;
    std::vector<uint8_t> output;
};

/** Execute the case once through one engine; returns stats + output. */
RunOutcome
runOnce(const BenchCase &c, bool decoded, double &simSeconds)
{
    dsp::Memory mem(c.memBytes);
    for (const auto &[addr, bytes] : c.segments)
        mem.writeBytes(addr, bytes.data(), bytes.size());

    dsp::TimingSimulator sim(mem);
    sim.regs().scalar[kernels::kRegInput] = c.regInput;
    sim.regs().scalar[kernels::kRegWeights] = c.regWeights;
    sim.regs().scalar[kernels::kRegOutput] = c.regOutput;
    sim.regs().scalar[kernels::kRegScratch] = c.regScratch;

    RunOutcome out;
    const Timer timer;
    out.stats = decoded ? sim.run(c.packed) : sim.runReference(c.packed);
    simSeconds += timer.seconds();

    out.output.resize(c.outputBytes);
    if (c.outputBytes > 0)
        mem.readBytes(c.outputBase, out.output.data(), c.outputBytes);
    return out;
}

struct EngineResult
{
    double packetsPerSec = 0.0;
    uint64_t dynamicPackets = 0;
};

/** Repeat runs until enough wall time accumulates; report packets/sec. */
EngineResult
measure(const BenchCase &c, bool decoded, const RunOutcome &expect)
{
    constexpr double kMinSeconds = 0.25;
    constexpr int kMaxReps = 400;

    double simSeconds = 0.0;
    uint64_t packets = 0;
    int reps = 0;
    while (simSeconds < kMinSeconds && reps < kMaxReps) {
        const RunOutcome out = runOnce(c, decoded, simSeconds);
        packets += out.stats.packetsExecuted;
        ++reps;
        if (out.stats.cycles != expect.stats.cycles ||
            out.stats.packetsExecuted != expect.stats.packetsExecuted ||
            out.stats.stallCycles != expect.stats.stallCycles ||
            out.output != expect.output) {
            std::cerr << "FATAL: engine divergence on " << c.name << "\n";
            std::exit(1);
        }
    }

    EngineResult r;
    r.dynamicPackets = expect.stats.packetsExecuted;
    r.packetsPerSec = static_cast<double>(packets) / simSeconds;
    return r;
}

std::vector<BenchCase>
buildZoo()
{
    Rng rng(0xbe9c5ee1ULL);
    std::vector<BenchCase> zoo;

    struct MatCase
    {
        const char *name;
        kernels::MatMulScheme scheme;
        kernels::MatMulShape shape;
    };
    const MatCase mats[] = {
        {"matmul_vmpy_128x64x8",
         kernels::MatMulScheme::Vmpy, {128, 64, 8}},
        {"matmul_vmpa_128x128x8",
         kernels::MatMulScheme::Vmpa, {128, 128, 8}},
        {"matmul_vrmpy_128x128x16",
         kernels::MatMulScheme::Vrmpy, {128, 128, 16}},
    };
    for (const MatCase &m : mats) {
        kernels::MatMulConfig config;
        config.scheme = m.scheme;
        const kernels::MatMulKernel kernel(m.shape, config);
        const auto a = rng.uint8Vector(
            static_cast<size_t>(m.shape.m * m.shape.k));
        const auto w =
            rng.int8Vector(static_cast<size_t>(m.shape.k * m.shape.n));
        zoo.push_back(makeCase(m.name, kernel.program(), kernel.buffers(),
                               kernel.packInput(a.data()),
                               kernel.packWeights(w.data())));
    }

    {
        kernels::EwConfig config;
        config.op = kernels::EwOp::Add;
        config.length = 8192;
        const kernels::ElementwiseKernel kernel(config);
        const auto a = rng.uint8Vector(8192);
        const auto b = rng.uint8Vector(8192);
        zoo.push_back(makeCase("elementwise_add_8192", kernel.program(),
                               kernel.buffers(), kernel.packInput(a.data()),
                               kernel.packSecond(b.data())));
    }
    {
        kernels::EwConfig config;
        config.op = kernels::EwOp::Lut;
        config.length = 8192;
        config.table.resize(256);
        for (int i = 0; i < 256; ++i) // quantized squash nonlinearity
            config.table[static_cast<size_t>(i)] = static_cast<uint8_t>(
                255.0 / (1.0 + std::exp(-(i - 128) / 16.0)));
        const kernels::ElementwiseKernel kernel(config);
        const auto a = rng.uint8Vector(8192);
        zoo.push_back(makeCase("elementwise_lut_8192", kernel.program(),
                               kernel.buffers(), kernel.packInput(a.data()),
                               kernel.packSecond(nullptr)));
    }
    return zoo;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_sim.json";

    std::cout << "Simulator throughput: reference interpreter vs. "
                 "pre-decoded engine\n\n";

    const std::vector<BenchCase> zoo = buildZoo();

    Table table({"Kernel", "dyn packets", "ref pkts/s", "decoded pkts/s",
                 "speedup"});
    std::vector<double> speedups;
    std::ostringstream json;
    json << "{\n  \"bench\": \"sim_throughput\",\n  \"kernels\": [\n";

    for (size_t i = 0; i < zoo.size(); ++i) {
        const BenchCase &c = zoo[i];
        // One warmup per engine: populates the decode cache and faults in
        // the memory image so timing covers steady state.
        double warmSeconds = 0.0;
        const RunOutcome expect = runOnce(c, false, warmSeconds);
        (void)runOnce(c, true, warmSeconds);

        const EngineResult ref = measure(c, false, expect);
        const EngineResult dec = measure(c, true, expect);
        const double speedup = dec.packetsPerSec / ref.packetsPerSec;
        speedups.push_back(speedup);

        table.addRow({c.name, std::to_string(ref.dynamicPackets),
                      fmtDouble(ref.packetsPerSec / 1e6, 2) + "M",
                      fmtDouble(dec.packetsPerSec / 1e6, 2) + "M",
                      fmtSpeedup(speedup)});

        json << "    {\"name\": \"" << c.name << "\", "
             << "\"dynamic_packets\": " << ref.dynamicPackets << ", "
             << "\"reference_packets_per_sec\": " << ref.packetsPerSec
             << ", "
             << "\"decoded_packets_per_sec\": " << dec.packetsPerSec
             << ", "
             << "\"speedup\": " << speedup << "}"
             << (i + 1 < zoo.size() ? "," : "") << "\n";
    }

    const double geomean = geometricMean(speedups);
    json << "  ],\n  \"geomean_speedup\": " << geomean << "\n}\n";

    table.print(std::cout);
    std::cout << "\nGeomean speedup (decoded over reference): "
              << fmtSpeedup(geomean) << "\n";

    // Managed cache tier bound: every decoded run above went through the
    // process-wide DecodeCache; check the LRU capacity held.
    const dsp::DecodeCache &decodeCache = dsp::DecodeCache::global();
    if (decodeCache.size() > decodeCache.capacity()) {
        std::cerr << "FATAL: DecodeCache exceeded capacity ("
                  << decodeCache.size() << " > " << decodeCache.capacity()
                  << ")\n";
        return 1;
    }

    std::ofstream out(outPath);
    out << json.str();
    out.flush();
    if (!out) {
        std::cerr << "error: failed to write " << outPath << "\n";
        return 1;
    }
    std::cout << "wrote " << outPath << "\n";
    return 0;
}
