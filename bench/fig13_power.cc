/**
 * @file
 * Fig. 13: total power consumption and energy efficiency (inference
 * frames per Watt) of TFLite-GPU, TFLite-DSP, SNPE-DSP, and GCD2-DSP on
 * four representative models.
 */
#include <iostream>

#include "baselines/frameworks.h"
#include "common/table.h"
#include "runtime/platform_model.h"
#include "runtime/power_model.h"

using namespace gcd2;
using baselines::Framework;

int
main()
{
    std::cout << "Fig. 13: Total Power (W) and Energy Efficiency "
                 "(frames/Watt)\n\n";

    const models::ModelId ids[] = {
        models::ModelId::EfficientNetB0, models::ModelId::ResNet50,
        models::ModelId::PixOr, models::ModelId::CycleGAN};

    const runtime::DspPowerModel power;

    Table watts({"Model", "TFLite-GPU", "TFLite-DSP", "SNPE-DSP",
                 "GCD2-DSP"});
    Table fpw({"Model", "TFLite-GPU", "TFLite-DSP", "SNPE-DSP",
               "GCD2-DSP"});

    for (models::ModelId id : ids) {
        const graph::Graph g = models::buildModel(id);
        const int64_t macs = g.totalMacs();
        const auto tflite = baselines::runFramework(Framework::TfLite, id);
        const auto snpe = baselines::runFramework(Framework::Snpe, id);
        const auto gcd2 = baselines::runFramework(Framework::Gcd2, id);

        const double gpuW = runtime::kMobileGpuFp16.watts;
        watts.addRow({models::modelInfo(id).name, fmtDouble(gpuW, 1),
                      fmtDouble(power.watts(*tflite), 1),
                      fmtDouble(power.watts(*snpe), 1),
                      fmtDouble(power.watts(*gcd2), 1)});
        fpw.addRow({models::modelInfo(id).name,
                    fmtDouble(runtime::kMobileGpuFp16.fpw(macs), 1),
                    fmtDouble(runtime::framesPerWatt(*tflite, power), 1),
                    fmtDouble(runtime::framesPerWatt(*snpe, power), 1),
                    fmtDouble(runtime::framesPerWatt(*gcd2, power), 1)});
    }

    std::cout << "Total power consumption (left plot):\n";
    watts.print(std::cout);
    std::cout << "\nEnergy efficiency, frames per Watt (right plot):\n";
    fpw.print(std::cout);

    std::cout << "\npaper: the GPU draws the most power (2.1-3.8 W); "
                 "GCD2-DSP draws ~7% more than the other DSP stacks\n"
                 "(better utilization) yet wins energy efficiency by "
                 "~1.7x over TFLite-DSP, ~1.5x over SNPE-DSP, and ~2.9x\n"
                 "over TFLite-GPU.\n";
    return 0;
}
