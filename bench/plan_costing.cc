/**
 * @file
 * Cold-compile plan-costing benchmark: wall time and simulated-plan
 * counts per zoo model with every process-wide cache emptied first.
 *
 * Cold compiles are what a fresh service process (or a model never seen
 * before) pays, and plan costing -- kernel generation, VLIW packing, and
 * tile simulation of every candidate plan -- dominates them. The tiered
 * coster (select/tiered_cost.h) attacks exactly this: analytic bounds
 * prefilter the candidate set, same-layout dominance prunes plans
 * without simulating them, and shape-class sharing costs each
 * structurally identical operator once.
 *
 * Two measurements per zoo model, each a tiered/exhaustive pair compiled
 * truly cold (CostCache is per-model; PackCache and DecodeCache are
 * cleared between compiles):
 *   1. default options (Adaptive unroll) -- the shape-class + affine
 *      derivation + transplant path carries the speedup;
 *   2. Exhaustive unroll search -- the tier-1 analytic prefilter
 *      additionally prunes unroll candidates whose certified floor
 *      cannot beat the incumbent, without packing or simulating them.
 *
 * Both pairs must agree bit-identically on total cycles (the bench
 * fails otherwise; the in-pipeline tiered audit has already checked the
 * per-class evidence).
 *
 * Output: human-readable tables + machine-readable JSON (argv[1],
 * default "BENCH_plan.json") consumed by scripts/check_plan_bench.py
 * against bench/plan_baseline.json (fails on >20% cold-compile
 * regression or a geomean speedup vs the recorded exhaustive baseline
 * below 2x).
 */
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/table.h"
#include "common/timer.h"
#include "dsp/decoded.h"
#include "models/zoo.h"
#include "runtime/compiler.h"
#include "vliw/pack_cache.h"

using namespace gcd2;

namespace {

struct PairResult
{
    double coldMs = 0.0;       ///< tiered cold compile
    double exhaustiveMs = 0.0; ///< cold compile, tiered costing off
    uint64_t candidatePlans = 0;
    uint64_t plansSimulated = 0;
    uint64_t plansDerived = 0;
    uint64_t plansPruned = 0;
    uint64_t plansShared = 0;
    uint64_t totalCycles = 0;
};

struct ModelResult
{
    const char *name = "";
    PairResult adaptive; ///< default options (Adaptive unroll)
    PairResult search;   ///< Exhaustive unroll search
};

void
clearProcessCaches()
{
    vliw::PackCache::global().clear();
    dsp::DecodeCache::global().clear();
}

/** One cold compile; fills the pair's tiered or exhaustive half. */
bool
coldCompile(const graph::Graph &graph, const char *name, bool tiered,
            kernels::UnrollStrategy unroll, PairResult *pair)
{
    clearProcessCaches();
    runtime::CompileOptions options;
    options.cost.tieredCosting = tiered;
    options.cost.unroll = unroll;
    const Timer timer;
    const runtime::CompiledModel model = runtime::compile(graph, options);
    const double ms = timer.seconds() * 1e3;

    if (!tiered) {
        pair->exhaustiveMs = ms;
        if (pair->totalCycles != model.totals.cycles) {
            std::cerr << "FATAL: tiered costing changed " << name
                      << " total cycles (" << pair->totalCycles << " vs "
                      << model.totals.cycles << ")\n";
            return false;
        }
        return true;
    }

    pair->coldMs = ms;
    pair->totalCycles = model.totals.cycles;
    if (const runtime::PassReport *plan = model.report.pass("plan-table")) {
        pair->candidatePlans = plan->counter("candidate-plans");
        pair->plansSimulated = plan->counter("plans-simulated");
        pair->plansDerived = plan->counter("plans-derived");
        pair->plansPruned = plan->counter("plans-pruned");
        pair->plansShared = plan->counter("plans-shared");
    }
    return true;
}

double
geomeanSpeedup(const std::vector<ModelResult> &results,
               PairResult ModelResult::*pair)
{
    double logSum = 0.0;
    for (const ModelResult &r : results) {
        const PairResult &p = r.*pair;
        logSum += std::log(
            std::max(p.exhaustiveMs / std::max(p.coldMs, 1e-6), 1e-9));
    }
    return std::exp(logSum / static_cast<double>(results.size()));
}

void
printPair(std::ostream &os, const char *title,
          const std::vector<ModelResult> &results,
          PairResult ModelResult::*pair)
{
    os << title << "\n";
    Table table({"Model", "Cold ms", "Exhaustive ms", "Speedup", "Plans",
                 "Simulated", "Derived", "Pruned", "Shared"});
    for (const ModelResult &r : results) {
        const PairResult &p = r.*pair;
        const double speedup =
            p.exhaustiveMs / std::max(p.coldMs, 1e-6);
        table.addRow({r.name, fmtDouble(p.coldMs, 1),
                      fmtDouble(p.exhaustiveMs, 1), fmtSpeedup(speedup),
                      std::to_string(p.candidatePlans),
                      std::to_string(p.plansSimulated),
                      std::to_string(p.plansDerived),
                      std::to_string(p.plansPruned),
                      std::to_string(p.plansShared)});
    }
    table.print(os);
    os << "geomean cold-compile speedup: "
       << fmtSpeedup(geomeanSpeedup(results, pair)) << "\n\n";
}

void
jsonPair(std::ostream &os, const PairResult &p)
{
    os << "\"cold_ms\": " << p.coldMs << ", "
       << "\"exhaustive_ms\": " << p.exhaustiveMs << ", "
       << "\"candidate_plans\": " << p.candidatePlans << ", "
       << "\"plans_simulated\": " << p.plansSimulated << ", "
       << "\"plans_derived\": " << p.plansDerived << ", "
       << "\"plans_pruned\": " << p.plansPruned << ", "
       << "\"plans_shared\": " << p.plansShared << ", "
       << "\"total_cycles\": " << p.totalCycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_plan.json";

    std::cout << "Cold-compile plan costing: tiered vs exhaustive\n\n";

    std::vector<ModelResult> results;
    for (const models::ModelInfo &info : models::allModels()) {
        const graph::Graph graph = models::buildModel(info.id);

        ModelResult r;
        r.name = info.name;
        if (!coldCompile(graph, info.name, true,
                         kernels::UnrollStrategy::Adaptive, &r.adaptive) ||
            !coldCompile(graph, info.name, false,
                         kernels::UnrollStrategy::Adaptive, &r.adaptive) ||
            !coldCompile(graph, info.name, true,
                         kernels::UnrollStrategy::Exhaustive, &r.search) ||
            !coldCompile(graph, info.name, false,
                         kernels::UnrollStrategy::Exhaustive, &r.search))
            return 1;
        results.push_back(r);
    }

    printPair(std::cout, "Default options (Adaptive unroll):", results,
              &ModelResult::adaptive);
    printPair(std::cout, "Exhaustive unroll search:", results,
              &ModelResult::search);

    std::ostringstream json;
    json << "{\n  \"bench\": \"plan_costing\",\n"
         << "  \"geomean_speedup\": "
         << geomeanSpeedup(results, &ModelResult::adaptive) << ",\n"
         << "  \"search_geomean_speedup\": "
         << geomeanSpeedup(results, &ModelResult::search) << ",\n"
         << "  \"models\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ModelResult &r = results[i];
        json << "    {\"name\": \"" << r.name << "\", ";
        jsonPair(json, r.adaptive);
        json << ", \"search\": {";
        jsonPair(json, r.search);
        json << "}}" << (i + 1 < results.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";

    std::ofstream out(outPath);
    out << json.str();
    out.flush();
    if (!out) {
        std::cerr << "error: failed to write " << outPath << "\n";
        return 1;
    }
    std::cout << "wrote " << outPath << "\n";
    return 0;
}
