/**
 * @file
 * Fig. 9: incremental optimization breakdown -- speedup over the
 * no-optimization baseline when adding (1) instruction & layout
 * selection, (2) SDA VLIW scheduling + unrolling, (3) other
 * optimizations (division-to-LUT), plus the corresponding utilization
 * and bandwidth movement.
 */
#include <iostream>

#include "common/table.h"
#include "models/zoo.h"
#include "runtime/compiler.h"

using namespace gcd2;

namespace {

runtime::CompileOptions
baseline()
{
    runtime::CompileOptions options;
    options.selection = runtime::SelectionMode::Uniform;
    options.uniformScheme = kernels::MatMulScheme::Vrmpy;
    options.libraryStyleBoundaries = true;
    options.cost.packOptions.policy = vliw::PackPolicy::SoftToHard;
    options.cost.unroll = kernels::UnrollStrategy::None;
    options.cost.lutOptimization = false;
    return options;
}

} // namespace

int
main()
{
    std::cout << "Fig. 9: Performance Breakdown (speedup over the "
                 "no-optimization baseline)\n\n";

    // The paper's five models plus TinyBERT (added: the division/lookup
    // optimization mostly acts on softmax/gelu-heavy transformers).
    const models::ModelId ids[] = {
        models::ModelId::EfficientNetB0, models::ModelId::ResNet50,
        models::ModelId::FST, models::ModelId::WdsrB,
        models::ModelId::PixOr, models::ModelId::TinyBert};

    Table table({"Model", "No opt", "+Layout select", "+VLIW sched",
                 "+Other opts", "util% (no-opt vs full)",
                 "bw% (no-opt vs full)"});

    for (models::ModelId id : ids) {
        const graph::Graph g = models::buildModel(id);

        runtime::CompileOptions o0 = baseline();

        runtime::CompileOptions o1 = o0;
        o1.selection = runtime::SelectionMode::Gcd2;
        o1.libraryStyleBoundaries = false;

        runtime::CompileOptions o2 = o1;
        o2.cost.packOptions.policy = vliw::PackPolicy::Sda;
        o2.cost.unroll = kernels::UnrollStrategy::Adaptive;

        runtime::CompileOptions o3 = o2;
        o3.cost.lutOptimization = true;

        const auto r0 = runtime::compile(g, o0);
        const auto r1 = runtime::compile(g, o1);
        const auto r2 = runtime::compile(g, o2);
        const auto r3 = runtime::compile(g, o3);

        const double t0 = r0.latencyMs();
        table.addRow(
            {models::modelInfo(id).name, "1.0x",
             fmtSpeedup(t0 / r1.latencyMs()),
             fmtSpeedup(t0 / r2.latencyMs()),
             fmtSpeedup(t0 / r3.latencyMs()),
             fmtDouble(100.0 * r0.utilization() / r3.utilization(), 0) +
                 "% -> 100%",
             fmtDouble(100.0 * r0.bandwidth() / r3.bandwidth(), 0) +
                 "% -> 100%"});
    }
    table.print(std::cout);

    std::cout << "\npaper: layout selection contributes 1.4-2.9x, VLIW "
                 "scheduling another 1.2-2.0x, other optimizations\n"
                 "1.1-1.4x; layout selection also moves utilization and "
                 "bandwidth the most. Expected shape: every column\n"
                 "increases monotonically left to right.\n";
    return 0;
}
