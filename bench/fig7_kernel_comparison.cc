/**
 * @file
 * Fig. 7: per-kernel speedup and packet counts of GCD_b / GCD2 against
 * Halide, TVM, and RAKE on the first 8 unique ResNet-50 Conv2D kernels
 * (C0-C7), normalized by Halide.
 */
#include <iostream>
#include <vector>

#include "baselines/kernel_compilers.h"
#include "common/table.h"

using namespace gcd2;
using baselines::KernelCompiler;

int
main()
{
    std::cout << "Fig. 7: Kernel Speedup and Packet Counts vs Halide "
                 "(ResNet-50 Conv2D C0-C7)\n\n";

    const auto compilers = {KernelCompiler::Halide, KernelCompiler::Tvm,
                            KernelCompiler::Rake, KernelCompiler::GcdB,
                            KernelCompiler::Gcd2};

    Table speedup({"Kernel", "Halide", "TVM", "RAKE", "GCD_b", "GCD2"});
    Table packets(
        {"Kernel", "Halide", "TVM", "RAKE", "GCD_b", "GCD2"});

    std::vector<double> packetRatioVsHalide, packetRatioVsTvm,
        packetRatioVsRake;
    const auto &kernels = baselines::resnetConvKernels();
    for (size_t i = 0; i < kernels.size(); ++i) {
        std::vector<std::string> speedRow{"C" + std::to_string(i)};
        std::vector<std::string> packetRow{"C" + std::to_string(i)};
        double halideCycles = 0, halidePackets = 0;
        double tvmPackets = 0, rakePackets = 0, gcd2Packets = 0;
        for (KernelCompiler compiler : compilers) {
            const auto result =
                baselines::compileConv(kernels[i], compiler);
            if (compiler == KernelCompiler::Halide) {
                halideCycles = static_cast<double>(result.cycles);
                halidePackets =
                    static_cast<double>(result.dynamicPackets);
            }
            if (compiler == KernelCompiler::Tvm)
                tvmPackets = static_cast<double>(result.dynamicPackets);
            if (compiler == KernelCompiler::Rake)
                rakePackets = static_cast<double>(result.dynamicPackets);
            if (compiler == KernelCompiler::Gcd2)
                gcd2Packets = static_cast<double>(result.dynamicPackets);
            speedRow.push_back(fmtSpeedup(
                halideCycles / static_cast<double>(result.cycles)));
            packetRow.push_back(fmtDouble(
                static_cast<double>(result.dynamicPackets) /
                    halidePackets,
                2));
        }
        speedup.addRow(speedRow);
        packets.addRow(packetRow);
        packetRatioVsHalide.push_back(gcd2Packets / halidePackets);
        packetRatioVsTvm.push_back(gcd2Packets / tvmPackets);
        packetRatioVsRake.push_back(gcd2Packets / rakePackets);
    }

    std::cout << "Speedup over Halide (left plot):\n";
    speedup.print(std::cout);
    std::cout << "\nExecuted packets normalized by Halide (right plot):\n";
    packets.print(std::cout);

    auto mean = [](const std::vector<double> &v) {
        double sum = 0;
        for (double x : v)
            sum += x;
        return sum / static_cast<double>(v.size());
    };
    std::cout << "\nGCD2 packets vs Halide: "
              << fmtDouble(100.0 * (1.0 - mean(packetRatioVsHalide)), 0)
              << "% fewer (paper 25%), vs TVM: "
              << fmtDouble(100.0 * (1.0 - mean(packetRatioVsTvm)), 0)
              << "% fewer (paper 19%), vs RAKE: "
              << fmtDouble(100.0 * (1.0 - mean(packetRatioVsRake)), 0)
              << "% fewer (paper 21%)\n"
              << "paper headline speedups over Halide/TVM/RAKE: up to "
                 "4.5x / 3.4x / 4.0x; GCD_b (tensor opts only) up to "
                 "3.8x / 2.7x / 3.3x.\n";
    return 0;
}
