/**
 * @file
 * Packer-throughput benchmark: reference SDA packer (vliw::packReference,
 * all-pairs IDG + full rescans) vs. the scalable engine (vliw::pack,
 * FastIdg chain construction + incremental critical path) on large
 * straightline blocks.
 *
 * Every case is a single basic block of at least 512 instructions -- the
 * regime the fast data structures exist for (unrolled kernel bodies).
 * Both packers run on every case and their outputs are bit-compared on
 * every repetition -- identical packets, identical label mapping -- so
 * the bench doubles as an end-to-end identity check at sizes the unit
 * fuzzers do not reach.
 *
 * Output: a human-readable table on stdout and a machine-readable JSON
 * file (argv[1], default "BENCH_pack.json") consumed by CI, which
 * compares the fast/reference speedup against a checked-in baseline
 * (bench/pack_baseline.json).
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "vliw/pack_cache.h"
#include "vliw/packer.h"

using namespace gcd2;

namespace {

/**
 * A straightline block mixing scalar ALU chains, multiplies (forwarding
 * penalty 2), vector traffic (hard RAW edges), and loads/stores off one
 * base register -- enough register pressure that def-use chains stay
 * short and the IDG is dense with soft edges, which is the worst case
 * for the packet-construction inner loop.
 */
dsp::Program
straightlineBlock(Rng &rng, size_t instructions)
{
    using namespace gcd2::dsp;
    Program prog;
    prog.push(makeMovi(sreg(0), 512));
    auto s = [&rng] {
        return sreg(static_cast<int>(rng.uniformInt(1, 12)));
    };
    auto v = [&rng] {
        return vreg(static_cast<int>(rng.uniformInt(0, 15)));
    };
    while (prog.code.size() < instructions) {
        switch (rng.uniformInt(0, 9)) {
          case 0:
          case 1:
            prog.push(makeBinary(Opcode::ADD, s(), s(), s()));
            break;
          case 2:
            prog.push(makeBinary(Opcode::MUL, s(), s(), s()));
            break;
          case 3:
            prog.push(makeLoad(Opcode::LOADW, s(), sreg(0),
                               rng.uniformInt(0, 255) * 4));
            break;
          case 4:
            prog.push(makeStore(Opcode::STOREW, sreg(0), s(),
                                rng.uniformInt(0, 255) * 4));
            break;
          case 5:
            prog.push(makeVload(v(), sreg(0), rng.uniformInt(0, 7) * 128));
            break;
          case 6:
            prog.push(makeVecBinary(Opcode::VADDW, v(), v(), v()));
            break;
          case 7:
            prog.push(makeShift(Opcode::SHL, s(), s(),
                                rng.uniformInt(0, 7)));
            break;
          case 8:
            prog.push(makeVsplatw(v(), s()));
            break;
          default:
            prog.push(makeAddi(s(), s(), rng.uniformInt(-16, 16)));
            break;
        }
    }
    prog.noaliasRegs = {0};
    return prog;
}

struct BenchCase
{
    std::string name;
    dsp::Program prog;
    vliw::PackOptions opts;
};

bool
samePacking(const dsp::PackedProgram &a, const dsp::PackedProgram &b)
{
    if (a.packets.size() != b.packets.size() ||
        a.labelPacket != b.labelPacket)
        return false;
    for (size_t p = 0; p < a.packets.size(); ++p)
        if (a.packets[p].insts != b.packets[p].insts)
            return false;
    return true;
}

struct EngineResult
{
    double packetsPerSec = 0.0;
    size_t staticPackets = 0;
};

/**
 * Repeat packs until enough wall time accumulates; report scheduled
 * packets per wall-clock second. Every repetition's output is
 * bit-compared against @p expect (the reference packing).
 */
EngineResult
measure(const BenchCase &c, bool fast, const dsp::PackedProgram &expect)
{
    constexpr double kMinSeconds = 0.2;
    constexpr int kMaxReps = 50;

    double seconds = 0.0;
    uint64_t packets = 0;
    int reps = 0;
    EngineResult r;
    while (seconds < kMinSeconds && reps < kMaxReps) {
        const Timer timer;
        const dsp::PackedProgram packed =
            fast ? vliw::pack(c.prog, c.opts)
                 : vliw::packReference(c.prog, c.opts);
        seconds += timer.seconds();
        packets += packed.packets.size();
        ++reps;
        r.staticPackets = packed.packets.size();
        if (!samePacking(packed, expect)) {
            std::cerr << "FATAL: packer divergence on " << c.name << "\n";
            std::exit(1);
        }
    }
    r.packetsPerSec = static_cast<double>(packets) / seconds;
    return r;
}

std::vector<BenchCase>
buildCases()
{
    Rng rng(0x9ac4be9cULL);
    std::vector<BenchCase> cases;
    const auto add = [&](const char *name, size_t instructions,
                         vliw::PackPolicy policy) {
        BenchCase c;
        c.name = name;
        c.prog = straightlineBlock(rng, instructions);
        c.opts.policy = policy;
        cases.push_back(std::move(c));
    };
    add("sda_512", 512, vliw::PackPolicy::Sda);
    add("sda_768", 768, vliw::PackPolicy::Sda);
    add("sda_1024", 1024, vliw::PackPolicy::Sda);
    add("softtohard_1024", 1024, vliw::PackPolicy::SoftToHard);
    add("listsched_1024", 1024, vliw::PackPolicy::ListSched);
    add("inorder_1024", 1024, vliw::PackPolicy::InOrder);
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_pack.json";

    std::cout << "Packer throughput: reference (all-pairs IDG) vs. "
                 "scalable engine (FastIdg)\n\n";

    const std::vector<BenchCase> cases = buildCases();

    Table table({"Case", "insts", "packets", "ref pkts/s", "fast pkts/s",
                 "speedup"});
    std::vector<double> speedups;
    std::ostringstream json;
    json << "{\n  \"bench\": \"pack_throughput\",\n  \"kernels\": [\n";

    for (size_t i = 0; i < cases.size(); ++i) {
        const BenchCase &c = cases[i];
        // The reference packing is the expected output for both engines.
        const dsp::PackedProgram expect =
            vliw::packReference(c.prog, c.opts);

        const EngineResult ref = measure(c, false, expect);
        const EngineResult fast = measure(c, true, expect);
        const double speedup = fast.packetsPerSec / ref.packetsPerSec;
        speedups.push_back(speedup);

        table.addRow({c.name, std::to_string(c.prog.code.size()),
                      std::to_string(fast.staticPackets),
                      fmtDouble(ref.packetsPerSec, 0),
                      fmtDouble(fast.packetsPerSec, 0),
                      fmtSpeedup(speedup)});

        json << "    {\"name\": \"" << c.name << "\", "
             << "\"instructions\": " << c.prog.code.size() << ", "
             << "\"static_packets\": " << fast.staticPackets << ", "
             << "\"reference_packets_per_sec\": " << ref.packetsPerSec
             << ", "
             << "\"fast_packets_per_sec\": " << fast.packetsPerSec << ", "
             << "\"speedup\": " << speedup << "}"
             << (i + 1 < cases.size() ? "," : "") << "\n";
    }

    const double geomean = geometricMean(speedups);
    json << "  ],\n  \"geomean_speedup\": " << geomean << "\n}\n";

    table.print(std::cout);
    std::cout << "\nGeomean speedup (fast over reference): "
              << fmtSpeedup(geomean) << "\n";

    // Managed cache tier bound: route every bench program through the
    // process-wide PackCache and check the LRU capacity held.
    vliw::PackCache &packCache = vliw::PackCache::global();
    for (const BenchCase &c : cases)
        (void)packCache.lookupOrPack(c.prog, c.opts);
    if (packCache.size() > packCache.capacity()) {
        std::cerr << "FATAL: PackCache exceeded capacity ("
                  << packCache.size() << " > " << packCache.capacity()
                  << ")\n";
        return 1;
    }

    std::ofstream out(outPath);
    out << json.str();
    out.flush();
    if (!out) {
        std::cerr << "error: failed to write " << outPath << "\n";
        return 1;
    }
    std::cout << "wrote " << outPath << "\n";
    return 0;
}
