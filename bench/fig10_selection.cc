/**
 * @file
 * Fig. 10: layout/instruction selection quality and search time of
 * local optimal, global optimal (exhaustive), GCD2(13), and GCD2(17) on
 * contiguous ResNet-50 sub-graphs of 10..25 operators.
 *
 * Search times beyond the exhaustive solver's tractable range are
 * extrapolated at the 3^n trend (marked '*'), exactly the blow-up the
 * paper reports (80+ hours at 25 operators).
 */
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "graph/subgraph.h"
#include "models/zoo.h"
#include "select/selector.h"

using namespace gcd2;
using namespace gcd2::select;

int
main()
{
    std::cout << "Fig. 10: Layout Optimization Analysis on ResNet-50 "
                 "sub-graphs\n\n";

    const graph::Graph resnet =
        models::buildModel(models::ModelId::ResNet50);
    // Skip the stem so windows start inside the bottleneck stages.
    const int64_t windowStart = 4;
    const size_t exhaustiveFreeCap = 15;

    Table speedups({"#Operators", "Local", "GCD2(13)", "GCD2(17)",
                    "Global optimal"});
    Table times({"#Operators", "#free ops", "Local (s)", "GCD2(13) (s)",
                 "GCD2(17) (s)", "Global (s)"});

    for (int64_t ops : {10, 15, 20, 25}) {
        const graph::Graph sub =
            graph::extractOperatorWindow(resnet, windowStart, ops);

        CostModel model;
        PlanTable table(sub, model);

        const SelectorResult local = selectLocal(table);
        const SelectorResult gcd13 = selectGcd2Partitioned(table, 13);
        const SelectorResult gcd17 = selectGcd2Partitioned(table, 17);

        const size_t freeOps = table.freeNodes().size();
        SelectorResult global;
        std::string globalTime;
        std::string globalSpeedup;
        if (freeOps <= exhaustiveFreeCap) {
            global = selectGlobalOptimal(table, exhaustiveFreeCap);
            globalTime = fmtDouble(global.seconds, 4);
            globalSpeedup = fmtSpeedup(
                static_cast<double>(local.selection.totalCost) /
                    static_cast<double>(global.selection.totalCost),
                2);
        } else {
            // Extrapolate at the 3^n trend from the cap.
            const graph::Graph capGraph = graph::extractOperatorWindow(
                resnet, windowStart, static_cast<int64_t>(ops));
            // Measure at a tractable window and scale.
            CostModel capModel;
            const graph::Graph capSub = graph::extractOperatorWindow(
                resnet, windowStart, 12);
            PlanTable capTable(capSub, capModel);
            const SelectorResult capRun =
                selectGlobalOptimal(capTable, exhaustiveFreeCap);
            const double perCombo =
                capRun.seconds /
                std::pow(3.0, static_cast<double>(
                                  capTable.freeNodes().size()));
            const double estimate =
                perCombo * std::pow(3.0, static_cast<double>(freeOps));
            globalTime = fmtDouble(estimate, 1) + "*";
            globalSpeedup = "~" + fmtSpeedup(
                static_cast<double>(local.selection.totalCost) /
                    static_cast<double>(gcd17.selection.totalCost),
                2);
        }

        auto speedupOf = [&](const SelectorResult &r) {
            return fmtSpeedup(
                static_cast<double>(local.selection.totalCost) /
                    static_cast<double>(r.selection.totalCost),
                2);
        };
        speedups.addRow({std::to_string(ops), "1.00x", speedupOf(gcd13),
                         speedupOf(gcd17), globalSpeedup});
        times.addRow({std::to_string(ops), std::to_string(freeOps),
                      fmtDouble(local.seconds, 4),
                      fmtDouble(gcd13.seconds, 4),
                      fmtDouble(gcd17.seconds, 4), globalTime});
    }

    std::cout << "(a) Speedup over local optimal:\n";
    speedups.print(std::cout);
    std::cout << "\n(b) Search time (seconds; '*' = extrapolated at the "
                 "3^n exhaustive trend):\n";
    times.print(std::cout);

    std::cout << "\npaper: GCD2 gains 1.55-1.7x over local (global "
                 "optimal 1.56-1.72x); GCD2(13) is nearly identical to\n"
                 "global optimal while exhaustive search passes 80 hours "
                 "at 25 operators (GCD2(13) < 2 s, GCD2(17) < 1 min).\n";
    return 0;
}
