/**
 * @file
 * Google-benchmark microbenchmarks of the substrate itself: how fast the
 * host-side toolchain (kernel generation, VLIW packing, timing
 * simulation, layout packing) runs. These are compiler-throughput
 * numbers, complementing the simulated-DSP cycle counts of the
 * table/figure harnesses, and back the paper's compilation-time claims
 * (Table IV: 5 - 25 minutes per model on the authors' machine; our whole
 * pipeline is far cheaper because kernels are tile-simulated).
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "kernels/runner.h"
#include "models/zoo.h"
#include "runtime/compiler.h"
#include "tensor/layout.h"
#include "vliw/packer.h"

using namespace gcd2;

namespace {

void
BM_KernelGeneration(benchmark::State &state)
{
    const kernels::MatMulShape shape{128, 128, 128};
    kernels::MatMulConfig config;
    config.unrollCols = static_cast<int>(state.range(0));
    for (auto _ : state) {
        kernels::MatMulKernel kernel(shape, config);
        benchmark::DoNotOptimize(kernel.program().code.size());
    }
}
BENCHMARK(BM_KernelGeneration)->Arg(1)->Arg(4);

void
BM_SdaPacking(benchmark::State &state)
{
    const kernels::MatMulShape shape{128, 128, 128};
    kernels::MatMulConfig config;
    config.unrollCols = static_cast<int>(state.range(0));
    const kernels::MatMulKernel kernel(shape, config);
    vliw::PackOptions opts;
    for (auto _ : state) {
        const dsp::PackedProgram packed = vliw::pack(kernel.program(), opts);
        benchmark::DoNotOptimize(packed.packets.size());
    }
    state.counters["instructions"] =
        static_cast<double>(kernel.program().code.size());
}
BENCHMARK(BM_SdaPacking)->Arg(1)->Arg(4);

void
BM_TimingSimulation(benchmark::State &state)
{
    const kernels::MatMulShape shape{64, 64, 32};
    const kernels::MatMulKernel kernel(shape, {});
    for (auto _ : state) {
        const kernels::KernelRunResult run = kernels::runKernel(
            kernel.program(), kernel.buffers(), {}, {});
        benchmark::DoNotOptimize(run.stats.cycles);
    }
}
BENCHMARK(BM_TimingSimulation);

void
BM_LayoutPack(benchmark::State &state)
{
    const int64_t rows = state.range(0);
    Rng rng(7);
    const auto data = rng.int8Vector(static_cast<size_t>(rows * 64));
    std::vector<int8_t> packed;
    for (auto _ : state) {
        tensor::packMatrix(data.data(), rows, 64,
                           tensor::Layout::FourColumn, packed);
        benchmark::DoNotOptimize(packed.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            rows * 64);
}
BENCHMARK(BM_LayoutPack)->Arg(128)->Arg(1024);

void
BM_CompileModel(benchmark::State &state)
{
    const graph::Graph g = models::buildModel(models::ModelId::WdsrB);
    for (auto _ : state) {
        const runtime::CompiledModel compiled = runtime::compile(g);
        benchmark::DoNotOptimize(compiled.totals.cycles);
    }
}
BENCHMARK(BM_CompileModel);

} // namespace

BENCHMARK_MAIN();
