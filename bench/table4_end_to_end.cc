/**
 * @file
 * Table IV: end-to-end latency of all ten models under TFLite-like,
 * SNPE-like, and GCD2, with speedups and geometric means.
 */
#include <iostream>
#include <vector>

#include "baselines/frameworks.h"
#include "common/table.h"

using namespace gcd2;
using baselines::Framework;

int
main()
{
    std::cout << "Table IV: Overall Performance Comparison among TFLite, "
                 "SNPE, and GCD2 on the Mobile DSP\n\n";

    const double paperLatency[][3] = {
        // TFLite, SNPE, GCD2 (ms); -1 = unsupported ("-")
        {7.5, 6.2, 4.0},   {9.1, 9.2, 6.0},    {13.9, 11.6, 7.1},
        {935, 870, 211},   {450, 366, 181},    {400, 137, 66.7},
        {62.8, -1, 26},    {43, 26.4, 11.7},   {-1, -1, 12.2},
        {-1, -1, 65},
    };

    Table table({"Model", "#MACs", "#Ops", "TFLite (ms)", "SNPE (ms)",
                 "GCD2 (ms)", "OverT", "OverS", "paper OverT/OverS"});

    std::vector<double> overT, overS;
    size_t idx = 0;
    for (const auto &info : models::allModels()) {
        const graph::Graph g = models::buildModel(info.id);

        const auto gcd2 = baselines::runFramework(Framework::Gcd2, info.id);
        const auto tflite =
            baselines::runFramework(Framework::TfLite, info.id);
        const auto snpe = baselines::runFramework(Framework::Snpe, info.id);

        auto cell = [](const std::optional<runtime::CompiledModel> &r) {
            return r ? fmtDouble(r->latencyMs(), 1) : std::string("-");
        };
        std::string overTCell = "-", overSCell = "-";
        if (tflite) {
            overT.push_back(tflite->latencyMs() / gcd2->latencyMs());
            overTCell = fmtSpeedup(overT.back());
        }
        if (snpe) {
            overS.push_back(snpe->latencyMs() / gcd2->latencyMs());
            overSCell = fmtSpeedup(overS.back());
        }

        const auto &paper = paperLatency[idx++];
        auto paperRatio = [&](int which) {
            return paper[which] < 0
                       ? std::string("-")
                       : fmtSpeedup(paper[which] / paper[2]);
        };

        table.addRow({info.name,
                      fmtDouble(static_cast<double>(g.totalMacs()) / 1e9,
                                2) + "G",
                      std::to_string(g.operatorCount()), cell(tflite),
                      cell(snpe), cell(gcd2), overTCell, overSCell,
                      paperRatio(0) + " / " + paperRatio(1)});
    }
    table.print(std::cout);

    std::cout << "\nSpeedup (geometric mean): over TFLite "
              << fmtSpeedup(geometricMean(overT)) << " (paper 2.8x), "
              << "over SNPE " << fmtSpeedup(geometricMean(overS))
              << " (paper 2.1x)\n"
              << "GCD2 uniquely runs TinyBERT and Conformer (transformer "
                 "ops unsupported by both baselines), as in the paper.\n";

    // Compile-time breakdown: where does the compiler itself spend its
    // time, and what does the worker pool buy? Serial vs. threaded
    // results are bit-identical; only wall-clock differs.
    std::cout << "\nCompile-time pipeline breakdown (ResNet-50):\n\n";
    const graph::Graph resnet =
        models::buildModel(models::ModelId::ResNet50);
    runtime::CompileOptions serial;
    serial.numThreads = 1;
    runtime::CompileOptions threaded;
    threaded.numThreads = 0; // hardware concurrency
    const runtime::CompiledModel serialBuild =
        runtime::compile(resnet, serial);
    const runtime::CompiledModel threadedBuild =
        runtime::compile(resnet, threaded);
    std::cout << serialBuild.report.toString() << "\n";
    std::cout << "serial (1 thread):      "
              << fmtDouble(serialBuild.report.totalSeconds * 1000.0, 1)
              << " ms\n"
              << "threaded (" << threadedBuild.report.threadsUsed
              << (threadedBuild.report.threadsUsed == 1 ? " thread):  "
                                                        : " threads): ")
              << fmtDouble(threadedBuild.report.totalSeconds * 1000.0, 1)
              << " ms\n"
              << "identical results: "
              << (serialBuild.selection.planIndex ==
                          threadedBuild.selection.planIndex &&
                      serialBuild.totals.cycles ==
                          threadedBuild.totals.cycles
                      ? "yes"
                      : "NO (bug)")
              << "\n";
    return 0;
}
