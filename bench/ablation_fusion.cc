/**
 * @file
 * Extension ablation (the paper's future work: "explore DSP-friendly
 * operator fusion to further improve the performance"): fold lookup-table
 * nonlinearities into the producing kernel's epilogue and measure the
 * end-to-end gain on the activation-heavy models.
 */
#include <iostream>

#include "common/table.h"
#include "graph/passes.h"
#include "models/zoo.h"
#include "runtime/compiler.h"

using namespace gcd2;

int
main()
{
    std::cout << "Extension: DSP-friendly operator fusion (paper Section "
                 "VII future work)\n\n";

    Table table({"Model", "Fused ops", "Baseline (ms)",
                 "With fusion (ms)", "Speedup"});

    for (const auto &info : models::allModels()) {
        graph::Graph baseline = models::buildModel(info.id);
        graph::Graph fusedGraph = models::buildModel(info.id);
        const int64_t fused = graph::fuseLutActivations(fusedGraph) +
                              graph::fuseResidualAdds(fusedGraph);

        const double before = runtime::compile(baseline).latencyMs();
        const double after = runtime::compile(fusedGraph).latencyMs();
        table.addRow({info.name, std::to_string(fused),
                      fmtDouble(before, 2), fmtDouble(after, 2),
                      fmtSpeedup(before / after, 3)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: residual-heavy models (ResNet, WDSR) "
                 "gain several percent; LUT fusion alone is small because\n"
                 "the gates act on tiny tensors. Fusion is *not* "
                 "universally profitable (PixOr regresses slightly: the\n"
                 "fused Add loses its layout freedom), which is exactly "
                 "why a production pass would gate each fusion on the\n"
                 "cost model -- the integration point this extension "
                 "leaves for the paper's future work.\n";
    return 0;
}
