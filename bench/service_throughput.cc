/**
 * @file
 * Compile-service benchmark: artifact-store warm starts, request
 * coalescing, and cached-request throughput.
 *
 * Three phases, each exercising one tier of the service's cache ladder:
 *
 *  1. Warm start (ResNet-50): one cold compile through a service with an
 *     artifact store, then a brand-new service (no in-memory state, the
 *     process-restart equivalent) serving the same request from the
 *     verified on-disk artifact. Reports the cold/warm ratio -- the
 *     paper-scale model must warm-start at least 50x faster than it
 *     compiles (gated by scripts/check_service_bench.py).
 *
 *  2. Coalescing (MobileNetV3): 16 threads submit the same request to a
 *     fresh service concurrently; the service must serve all of them
 *     with exactly one compile (requests/compile ratio = 16).
 *
 *  3. Cached throughput: repeated submissions of an already-compiled
 *     request, reporting requests per second through the in-memory
 *     model LRU.
 *
 * Output: human-readable table + machine-readable JSON (argv[1], default
 * "BENCH_service.json") consumed by CI against bench/service_baseline.json.
 */
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/table.h"
#include "common/timer.h"
#include "models/zoo.h"
#include "service/service.h"

using namespace gcd2;
using service::CompileService;
using service::ServiceOptions;
using service::Ticket;

namespace {

std::string
freshArtifactDir()
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("gcd2_service_bench_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    return dir.string();
}

struct WarmStartResult
{
    double coldMs = 0.0;
    double warmMs = 0.0;
    double speedup = 0.0;
    bool servedFromArtifact = false;
};

WarmStartResult
measureWarmStart(const graph::Graph &graph, const std::string &dir)
{
    WarmStartResult r;
    {
        ServiceOptions options;
        options.artifactDir = dir;
        CompileService cold(options);
        const Timer timer;
        cold.submit(graph, "bench");
        cold.drain();
        r.coldMs = timer.seconds() * 1e3;
        if (cold.report().artifacts.saves != 1) {
            std::cerr << "FATAL: cold compile did not save an artifact\n";
            std::exit(1);
        }
    }
    {
        // A brand-new service: the in-memory model cache is empty, so
        // only the on-disk artifact (verified by re-audit on load) can
        // make this fast.
        ServiceOptions options;
        options.artifactDir = dir;
        CompileService warm(options);
        const Timer timer;
        warm.submit(graph, "bench");
        warm.drain();
        r.warmMs = timer.seconds() * 1e3;
        const service::ServiceReport report = warm.report();
        r.servedFromArtifact = report.artifacts.loadHits == 1 &&
                               report.totalCompiles == 0;
    }
    r.speedup = r.coldMs / std::max(r.warmMs, 1e-6);
    return r;
}

struct CoalesceResult
{
    uint64_t submits = 0;
    uint64_t compiles = 0;
    double ratio = 0.0;
};

CoalesceResult
measureCoalescing(const graph::Graph &graph)
{
    ServiceOptions options;
    options.numWorkers = 4;
    CompileService service(options);

    constexpr int kThreads = 16;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back(
            [&service, &graph] { service.submit(graph, "bench"); });
    for (std::thread &t : threads)
        t.join();
    service.drain();

    const service::ServiceReport report = service.report();
    CoalesceResult r;
    r.submits = report.totalSubmits;
    r.compiles = report.totalCompiles;
    r.ratio = r.compiles == 0 ? 0.0
                              : static_cast<double>(r.submits) /
                                    static_cast<double>(r.compiles);
    return r;
}

double
measureCachedThroughput(const graph::Graph &graph)
{
    CompileService service{ServiceOptions{}};
    service.submit(graph, "bench");
    service.drain();

    constexpr int kRequests = 20000;
    const Timer timer;
    for (int i = 0; i < kRequests; ++i)
        service.submit(graph, "bench");
    const double seconds = timer.seconds();
    return static_cast<double>(kRequests) / seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath =
        argc > 1 ? argv[1] : "BENCH_service.json";

    std::cout << "Compile service: warm starts, coalescing, cached "
                 "throughput\n\n";

    const std::string dir = freshArtifactDir();
    const graph::Graph resnet =
        models::buildModel(models::ModelId::ResNet50);
    const graph::Graph mobilenet =
        models::buildModel(models::ModelId::MobileNetV3);

    const WarmStartResult warm = measureWarmStart(resnet, dir);
    if (!warm.servedFromArtifact) {
        std::cerr << "FATAL: warm start was not served from the "
                     "artifact store\n";
        return 1;
    }

    const CoalesceResult coalesce = measureCoalescing(mobilenet);
    const double cachedRps = measureCachedThroughput(mobilenet);

    Table table({"Phase", "Result"});
    table.addRow({"ResNet-50 cold compile",
                  fmtDouble(warm.coldMs, 1) + " ms"});
    table.addRow({"ResNet-50 artifact warm start",
                  fmtDouble(warm.warmMs, 1) + " ms"});
    table.addRow({"warm-start speedup", fmtSpeedup(warm.speedup)});
    table.addRow({"coalescing (16 concurrent submits)",
                  std::to_string(coalesce.compiles) + " compile(s), " +
                      fmtDouble(coalesce.ratio, 1) +
                      " requests/compile"});
    table.addRow({"cached throughput",
                  fmtDouble(cachedRps / 1e3, 1) + "K requests/s"});
    table.print(std::cout);

    std::ostringstream json;
    json << "{\n  \"bench\": \"service_throughput\",\n"
         << "  \"cold_compile_ms\": " << warm.coldMs << ",\n"
         << "  \"warm_start_ms\": " << warm.warmMs << ",\n"
         << "  \"warm_speedup\": " << warm.speedup << ",\n"
         << "  \"coalesce_submits\": " << coalesce.submits << ",\n"
         << "  \"coalesce_compiles\": " << coalesce.compiles << ",\n"
         << "  \"coalesce_ratio\": " << coalesce.ratio << ",\n"
         << "  \"cached_requests_per_sec\": " << cachedRps << "\n}\n";

    std::filesystem::remove_all(dir);

    std::ofstream out(outPath);
    out << json.str();
    out.flush();
    if (!out) {
        std::cerr << "error: failed to write " << outPath << "\n";
        return 1;
    }
    std::cout << "\nwrote " << outPath << "\n";
    return 0;
}
