/**
 * @file
 * Fig. 11: VLIW scheduling analysis -- the SDA packer against the
 * soft_to_hard (all soft dependencies forbid co-packing) and soft_to_none
 * (stall penalty ignored, lines 27-28 removed) ablations on the five
 * representative models, normalized by soft_to_hard.
 *
 * Pass --sweep-w to additionally ablate the Eq. 4 weight `w` and the
 * penalty scale on a ResNet-50 convolution kernel.
 */
#include <cstring>
#include <iostream>

#include "baselines/kernel_compilers.h"
#include "common/table.h"
#include "models/zoo.h"
#include "runtime/compiler.h"

using namespace gcd2;

namespace {

double
latencyWith(const graph::Graph &g, vliw::PackPolicy policy,
            kernels::UnrollStrategy unroll)
{
    runtime::CompileOptions options; // GCD2 defaults
    options.cost.packOptions.policy = policy;
    options.cost.unroll = unroll;
    return runtime::compile(g, options).latencyMs();
}

void
runComparison(kernels::UnrollStrategy unroll)
{
    const models::ModelId ids[] = {
        models::ModelId::EfficientNetB0, models::ModelId::ResNet50,
        models::ModelId::FST, models::ModelId::WdsrB,
        models::ModelId::PixOr};

    Table table({"Model", "soft_to_hard", "soft_to_none", "SDA (GCD2)"});
    for (models::ModelId id : ids) {
        const graph::Graph g = models::buildModel(id);
        const double hard =
            latencyWith(g, vliw::PackPolicy::SoftToHard, unroll);
        const double none =
            latencyWith(g, vliw::PackPolicy::SoftToNone, unroll);
        const double sda = latencyWith(g, vliw::PackPolicy::Sda, unroll);
        table.addRow({models::modelInfo(id).name, "1.00x",
                      fmtSpeedup(hard / none, 2),
                      fmtSpeedup(hard / sda, 2)});
    }
    table.print(std::cout);
}

void
sweepW()
{
    std::cout << "\nEq. 4 parameter ablation (ResNet-50 C2 3x3 kernel, "
                 "cycles; lower = better):\n";
    Table table({"w", "penalty x1", "penalty x4", "penalty x8",
                 "penalty x16"});
    const auto &shape = baselines::resnetConvKernels()[2];
    const kernels::MatMulShape mm = shape.matmulShape();
    for (double w : {0.2, 0.4, 0.6, 0.8}) {
        std::vector<std::string> row{fmtDouble(w, 1)};
        for (double scale : {1.0, 4.0, 8.0, 16.0}) {
            select::CostModelOptions options;
            options.packOptions.policy = vliw::PackPolicy::Sda;
            options.packOptions.w = w;
            options.packOptions.penaltyScale = scale;
            select::CostModel model(options);
            row.push_back(std::to_string(
                model.matmulStats(mm, kernels::MatMulScheme::Vmpa, 0)
                    .cycles));
        }
        table.addRow(row);
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "Fig. 11: VLIW Scheduling Analysis (speedup over "
                 "soft_to_hard)\n\n";

    std::cout << "Library-style fixed kernels (no unrolling) -- the "
                 "low-ILP regime where\nsoft-dependency treatment "
                 "dominates:\n";
    runComparison(kernels::UnrollStrategy::None);

    std::cout << "\nWith GCD2's shape-adaptive unrolling (abundant "
                 "independent work narrows the gap):\n";
    runComparison(kernels::UnrollStrategy::Adaptive);

    std::cout << "\npaper: SDA reaches up to 2.1x over soft_to_hard and "
                 "up to 1.4x over soft_to_none.\n"
                 "Expected shape: SDA >= both ablations on every model; "
                 "the advantage concentrates where instruction-level\n"
                 "parallelism is scarce (soft_to_none even loses to "
                 "soft_to_hard there by eating real stalls).\n";

    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--sweep-w") == 0)
            sweepW();
    return 0;
}
