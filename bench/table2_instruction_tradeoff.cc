/**
 * @file
 * Table II: MatMul execution latency and padded data size per SIMD
 * instruction (and layout) across square shapes 32..128.
 *
 * Latency comes from simulating each generated kernel; the padded-size
 * column is the analytic input+weight+output accounting that must match
 * the paper's ratios exactly. Numbers are normalized by the vmpy column
 * as in the paper (smaller = better).
 */
#include <iostream>

#include "common/table.h"
#include "select/cost_model.h"
#include "tensor/layout.h"

using namespace gcd2;
using kernels::MatMulScheme;

namespace {

/** Kernel latency through the same cost model the selector uses (tile
 *  simulation, including the 16-bit accumulator-drain charge). */
uint64_t
latency(select::CostModel &model, MatMulScheme scheme, int64_t size)
{
    const kernels::MatMulShape shape{size, size, size};
    return model.matmulStats(shape, scheme, 0).cycles;
}

int64_t
paddedTotal(MatMulScheme scheme, int64_t size)
{
    const tensor::Layout layout = kernels::schemeLayout(scheme);
    const int64_t input = tensor::packedByteSize(layout, size, size);
    const int64_t weight = tensor::paddedCols(layout, size) * size;
    const int64_t output = tensor::paddedRows(layout, size) * size;
    return input + weight + output;
}

} // namespace

int
main()
{
    std::cout << "Table II: Execution Latency w/ Different SIMD "
                 "Instructions (and Layouts) for MatMul C = A x B\n"
              << "(normalized by vmpy; bold-equivalent = smallest)\n\n";

    Table table({"M=K=N", "vmpy lat", "vmpa lat", "vrmpy lat",
                 "vmpy pad", "vmpa pad", "vrmpy pad",
                 "paper pad (vmpa/vrmpy)"});
    select::CostModel model;

    const struct
    {
        int64_t size;
        const char *paperPad;
    } rows[] = {
        {32, "0.56 / 0.33"},
        {64, "0.60 / 0.60"},
        {96, "1.00 / 0.82"},
        {128, "1.00 / 1.00"},
    };

    for (const auto &row : rows) {
        const double vmpyLat = static_cast<double>(
            latency(model, MatMulScheme::Vmpy, row.size));
        const double vmpaLat = static_cast<double>(
            latency(model, MatMulScheme::Vmpa, row.size));
        const double vrmpyLat = static_cast<double>(
            latency(model, MatMulScheme::Vrmpy, row.size));
        const double vmpyPad = static_cast<double>(
            paddedTotal(MatMulScheme::Vmpy, row.size));
        const double vmpaPad = static_cast<double>(
            paddedTotal(MatMulScheme::Vmpa, row.size));
        const double vrmpyPad = static_cast<double>(
            paddedTotal(MatMulScheme::Vrmpy, row.size));

        table.addRow({std::to_string(row.size), "1.00",
                      fmtDouble(vmpaLat / vmpyLat),
                      fmtDouble(vrmpyLat / vmpyLat), "1.00",
                      fmtDouble(vmpaPad / vmpyPad),
                      fmtDouble(vrmpyPad / vmpyPad), row.paperPad});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): vrmpy/vmpa win the small "
                 "shapes on both latency and padding; the gaps close as\n"
                 "operands fill vmpy's 128-row panels (the padded-size "
                 "ratios match the paper exactly).\n";
    return 0;
}
