/**
 * @file
 * Table V: ResNet-50 inference speed and energy efficiency of the
 * GCD2-compiled mobile DSP vs EdgeTPU and Jetson Xavier (published
 * figures for the accelerators; simulated DSP row).
 */
#include <iostream>

#include "baselines/frameworks.h"
#include "common/table.h"
#include "runtime/platform_model.h"
#include "runtime/power_model.h"

using namespace gcd2;

int
main()
{
    std::cout << "Table V: Inference Speed and Energy Efficiency with "
                 "ResNet-50\n\n";

    Table table({"Platform", "Device", "FPS", "Power", "FPW"});
    for (const auto &row :
         {runtime::kEdgeTpu, runtime::kJetsonFp16, runtime::kJetsonInt8}) {
        table.addRow({row.platform, row.device, fmtDouble(row.fps, 1),
                      fmtDouble(row.watts, 1) + " W",
                      fmtDouble(row.fpw(), 1)});
    }

    const auto gcd2 = baselines::runFramework(baselines::Framework::Gcd2,
                                              models::ModelId::ResNet50);
    const runtime::DspPowerModel power;
    const double fps = runtime::framesPerSecond(*gcd2);
    const double watts = power.watts(*gcd2);
    table.addRow({"GCD2", "DSP (int8)", fmtDouble(fps, 1),
                  fmtDouble(watts, 1) + " W", fmtDouble(fps / watts, 1)});
    table.print(std::cout);

    std::cout << "\npaper GCD2 row: 141 FPS, 2.6 W, 54.2 FPW. Expected "
                 "shape: Jetson int8 wins raw FPS, the GCD2 DSP wins\n"
                 "energy efficiency over every accelerator ("
              << fmtSpeedup(fps / watts / runtime::kEdgeTpu.fpw())
              << " over EdgeTPU, paper 6.1x; "
              << fmtSpeedup(fps / watts / runtime::kJetsonInt8.fpw())
              << " over Jetson int8, paper 1.48x).\n";
    return 0;
}
