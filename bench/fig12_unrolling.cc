/**
 * @file
 * Fig. 12: unrolling-factor analysis.
 *  (a) A single near-square MatMul kernel swept over unroll factors for
 *      the Out (outer loop only) and Mid (column loop only) strategies,
 *      normalized by no unrolling; GCD2's adaptive choice and the
 *      exhaustive-search best are marked.
 *  (b) Eight MatMul kernels (O1..O8) comparing No-unroll, best-Out,
 *      best-Mid, GCD2 adaptive, and exhaustive search.
 */
#include <iostream>
#include <map>
#include <tuple>

#include "common/table.h"
#include "common/timer.h"
#include "kernels/runner.h"
#include "kernels/unroll.h"

using namespace gcd2;
using kernels::MatMulConfig;
using kernels::MatMulKernel;
using kernels::MatMulScheme;
using kernels::MatMulShape;
using kernels::UnrollChoice;

namespace {

uint64_t
cyclesFor(const MatMulShape &shape, const UnrollChoice &choice)
{
    using Key = std::tuple<int64_t, int64_t, int64_t, int, int, int>;
    static std::map<Key, uint64_t> memo;
    const Key key{shape.m, shape.k, shape.n, choice.outer, choice.cols,
                  choice.k};
    const auto it = memo.find(key);
    if (it != memo.end())
        return it->second;
    MatMulConfig config;
    config.scheme = MatMulScheme::Vrmpy;
    config = kernels::withUnroll(config, choice);
    const MatMulKernel kernel(shape, config);
    const uint64_t cycles =
        kernels::runKernel(kernel.program(), kernel.buffers(), {}, {})
            .stats.cycles;
    memo.emplace(key, cycles);
    return cycles;
}

UnrollChoice
exhaustiveBest(const MatMulShape &shape, double *searchSeconds = nullptr)
{
    const gcd2::Timer timer;
    UnrollChoice best{1, 1, 1};
    uint64_t bestCycles = UINT64_MAX;
    for (const UnrollChoice &choice : kernels::unrollCandidates()) {
        const uint64_t cycles = cyclesFor(shape, choice);
        if (cycles < bestCycles) {
            bestCycles = cycles;
            best = choice;
        }
    }
    if (searchSeconds)
        *searchSeconds = timer.seconds();
    return best;
}

} // namespace

int
main()
{
    std::cout << "Fig. 12 (a): unroll-factor sweep on a near-square "
                 "MatMul (128x128x128), speedup over factor 1\n\n";

    const MatMulShape square{128, 128, 128};
    const double base = static_cast<double>(
        cyclesFor(square, UnrollChoice{1, 1, 1}));

    Table sweep({"Factor", "Out (outer only)", "Mid (columns only)"});
    for (int factor : {1, 2, 4, 8, 16}) {
        sweep.addRow({std::to_string(factor),
                      fmtSpeedup(base / static_cast<double>(cyclesFor(
                                            square, {factor, 1, 1})),
                                 2),
                      fmtSpeedup(base / static_cast<double>(cyclesFor(
                                            square, {1, factor, 1})),
                                 2)});
    }
    sweep.print(std::cout);

    double searchSeconds = 0.0;
    const UnrollChoice best = exhaustiveBest(square, &searchSeconds);
    const UnrollChoice adaptive =
        kernels::adaptiveUnroll(square, MatMulScheme::Vrmpy);
    std::cout << "\nGCD2 adaptive choice: (out=" << adaptive.outer
              << ", cols=" << adaptive.cols << ", k=" << adaptive.k
              << ") -> "
              << fmtSpeedup(base / static_cast<double>(
                                       cyclesFor(square, adaptive)),
                            2)
              << "; exhaustive best: (out=" << best.outer
              << ", cols=" << best.cols << ", k=" << best.k << ") -> "
              << fmtSpeedup(
                     base / static_cast<double>(cyclesFor(square, best)),
                     2)
              << " found in " << fmtDouble(searchSeconds, 2)
              << " s (paper: exhaustive takes minutes per kernel; the "
                 "paper's best is 4-4).\n";

    std::cout << "\nFig. 12 (b): strategies across 8 MatMul kernels "
                 "(speedup over no unrolling)\n\n";

    const MatMulShape kernels8[] = {
        {256, 64, 64},  {128, 128, 128}, {64, 128, 256},
        {512, 32, 16},  {96, 96, 192},   {128, 256, 64},
        {32, 64, 512},  {192, 96, 96},
    };

    Table part2({"Kernel", "No unroll", "Out (best)", "Mid (best)",
                 "GCD2", "Exhaustive"});
    int idx = 1;
    for (const MatMulShape &shape : kernels8) {
        const double none = static_cast<double>(
            cyclesFor(shape, UnrollChoice{1, 1, 1}));
        // Best single-axis factors from the (a) sweep methodology.
        double bestOut = 0, bestMid = 0;
        for (int factor : {1, 2, 4, 8}) {
            bestOut = std::max(
                bestOut, none / static_cast<double>(cyclesFor(
                                    shape, {factor, 1, 1})));
            bestMid = std::max(
                bestMid, none / static_cast<double>(cyclesFor(
                                    shape, {1, factor, 1})));
        }
        const UnrollChoice gcd2Choice =
            kernels::adaptiveUnroll(shape, MatMulScheme::Vrmpy);
        const double gcd2 =
            none / static_cast<double>(cyclesFor(shape, gcd2Choice));
        const double exhaustive =
            none / static_cast<double>(
                       cyclesFor(shape, exhaustiveBest(shape)));
        part2.addRow({"O" + std::to_string(idx++), "1.00x",
                      fmtSpeedup(bestOut, 2), fmtSpeedup(bestMid, 2),
                      fmtSpeedup(gcd2, 2), fmtSpeedup(exhaustive, 2)});
    }
    part2.print(std::cout);

    std::cout << "\npaper shape: performance rises with moderate factors "
                 "and falls once unrolling spills registers; GCD2's\n"
                 "shape-adaptive setting tracks the exhaustive best "
                 "while avoiding its search cost and beats both\n"
                 "single-axis strategies across kernels.\n";
    return 0;
}
