/**
 * @file
 * Table III: SIMD instructions selected and performance, RAKE vs GCD2,
 * on three representative ResNet-50 Conv2D kernels (7x7, 1x1, 3x3).
 */
#include <iostream>

#include "baselines/kernel_compilers.h"
#include "common/table.h"

using namespace gcd2;
using baselines::KernelCompiler;

int
main()
{
    std::cout << "Table III: SIMD Instructions Selected and Performance "
                 "by RAKE and GCD2 (ResNet-50 Conv2d kernels)\n\n";

    const auto &kernels = baselines::resnetConvKernels();
    // Table III's three kernels: the 7x7 stem, a 1x1, and a 3x3.
    const struct
    {
        size_t index;
        const char *shape;
        double paperSpeedup;
    } rows[] = {
        {0, "1x3x224x224 w 64x3x7x7", 1.63},
        {1, "1x64x56x56 w 64x64x1x1", 1.98},
        {7, "1x128x28x28 w 128x128x3x3", 2.06},
    };

    Table table({"Conv2d", "RAKE instr", "GCD2 instr", "Ours/RAKE",
                 "paper Ours/RAKE"});
    for (const auto &row : rows) {
        const auto rake =
            baselines::compileConv(kernels[row.index], KernelCompiler::Rake);
        const auto ours =
            baselines::compileConv(kernels[row.index], KernelCompiler::Gcd2);
        table.addRow({row.shape, kernels::schemeName(rake.scheme),
                      kernels::schemeName(ours.scheme),
                      fmtSpeedup(static_cast<double>(rake.cycles) /
                                     static_cast<double>(ours.cycles),
                                 2),
                      fmtSpeedup(row.paperSpeedup, 2)});
    }
    table.print(std::cout);

    std::cout << "\nNote: both systems pick per-kernel instructions; the "
                 "paper's RAKE prefers vrmpy where GCD2's cost model\n"
                 "finds better layouts. Our simulated instruction "
                 "economics favor vmpa on these shapes, so the selected\n"
                 "mnemonics differ from the paper while the relationship "
                 "(GCD2 strictly faster on every kernel) holds.\n";
    return 0;
}
