/**
 * @file
 * Quickstart: generate one quantized MatMul kernel, compile it with the
 * SDA VLIW packer, execute it on the DSP simulator, and verify the result
 * against the exact host reference.
 *
 *   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
 */
#include <iostream>

#include "common/rng.h"
#include "kernels/runner.h"
#include "kernels/unroll.h"

using namespace gcd2;

int
main()
{
    // 1. A quantized matrix multiply: C(96x48) = A(96x80) x W(80x48),
    //    uint8 activations, int8 weights, uint8 output.
    const kernels::MatMulShape shape{96, 80, 48};

    // 2. Pick the SIMD instruction and layout the way GCD2 does: the
    //    shape-adaptive unroll heuristic plus the scheme that simulates
    //    fastest (here we just take vrmpy with its 4-column layout).
    kernels::MatMulConfig config;
    config.scheme = kernels::MatMulScheme::Vrmpy;
    config = kernels::withUnroll(
        config, kernels::adaptiveUnroll(shape, config.scheme));

    // 3. Generate the DSP program.
    const kernels::MatMulKernel kernel(shape, config);
    std::cout << "Generated " << kernel.program().code.size()
              << " instructions using " << kernels::schemeName(config.scheme)
              << " (" << tensor::layoutName(
                             kernels::schemeLayout(config.scheme))
              << " layout), unroll (out=" << config.unrollOut
              << ", cols=" << config.unrollCols << ", k=" << config.unrollK
              << ")\n";

    // 4. Random quantized operands.
    Rng rng(42);
    const auto a =
        rng.uint8Vector(static_cast<size_t>(shape.m * shape.k));
    const auto w = rng.int8Vector(static_cast<size_t>(shape.k * shape.n));

    // 5. Pack with the soft-dependency-aware scheduler and simulate.
    vliw::PackOptions packing; // PackPolicy::Sda
    const kernels::MatMulRunResult run =
        kernels::runMatMul(kernel, a.data(), w.data(), packing,
                           /*validate=*/true);

    // 6. Verify against the bit-exact reference.
    const auto expect =
        kernels::MatMulKernel::reference(a.data(), w.data(), shape, config);
    std::cout << "Result " << (run.output == expect ? "matches" : "DIFFERS")
              << " the exact reference.\n";

    std::cout << "Executed in " << run.stats.cycles << " cycles over "
              << run.stats.packetsExecuted << " packets ("
              << run.stats.instructionsExecuted << " instructions, "
              << run.stats.stallCycles << " stall cycles)\n";

    // 7. Compare packing policies on the same kernel.
    for (vliw::PackPolicy policy :
         {vliw::PackPolicy::InOrder, vliw::PackPolicy::ListSched,
          vliw::PackPolicy::SoftToHard, vliw::PackPolicy::Sda}) {
        vliw::PackOptions opts;
        opts.policy = policy;
        const auto r = kernels::runMatMul(kernel, a.data(), w.data(), opts);
        std::cout << "  " << vliw::packPolicyName(policy) << ": "
                  << r.stats.cycles << " cycles\n";
    }
    return run.output == expect ? 0 : 1;
}
