/**
 * @file
 * End-to-end model compilation: build the synthetic ResNet-50 graph, run
 * the full GCD2 pipeline (graph optimization -> global layout/instruction
 * selection -> SDA packing -> simulation), and compare against the
 * TFLite-like baseline stack. Prints the per-scheme selection histogram
 * so you can see the global optimizer mixing instructions by shape.
 */
#include <array>
#include <iostream>

#include "baselines/frameworks.h"
#include "common/table.h"
#include "runtime/power_model.h"

using namespace gcd2;

int
main()
{
    const graph::Graph g = models::buildModel(models::ModelId::ResNet50);
    std::cout << "ResNet-50: " << g.operatorCount() << " operators, "
              << fmtDouble(static_cast<double>(g.totalMacs()) / 1e9, 2)
              << " GMACs\n\n";

    // Full GCD2 pipeline.
    const runtime::CompiledModel gcd2 = runtime::compile(g);

    // How did the global optimizer distribute the SIMD instructions?
    select::CostModel model(baselines::frameworkOptions(
                                baselines::Framework::Gcd2)
                                .cost);
    select::PlanTable table(g, model);
    std::array<int, 3> histogram{};
    for (const auto &node : g.nodes()) {
        if (node.dead || !graph::isMatMulFamily(node.op))
            continue;
        const int plan =
            gcd2.selection.planIndex[static_cast<size_t>(node.id)];
        ++histogram[static_cast<size_t>(plan)];
    }
    std::cout << "Global instruction selection over "
              << (histogram[0] + histogram[1] + histogram[2])
              << " matmul-family operators: " << histogram[0] << " vmpy, "
              << histogram[1] << " vmpa, " << histogram[2] << " vrmpy\n";
    std::cout << "Layout transformations on kept edges cost "
              << gcd2.transformOnly.cycles << " cycles ("
              << fmtDouble(100.0 *
                               static_cast<double>(
                                   gcd2.transformOnly.cycles) /
                               static_cast<double>(gcd2.totals.cycles),
                           1)
              << "% of runtime)\n\n";

    // Baselines.
    Table results({"Stack", "Latency (ms)", "Speedup", "Utilization",
                   "Power (W)", "Frames/W"});
    const runtime::DspPowerModel power;
    const auto addRow = [&](const char *name,
                            const runtime::CompiledModel &m,
                            double baseMs) {
        results.addRow({name, fmtDouble(m.latencyMs(), 2),
                        fmtSpeedup(baseMs / m.latencyMs()),
                        fmtDouble(100.0 * m.utilization(), 0) + "%",
                        fmtDouble(power.watts(m), 1),
                        fmtDouble(runtime::framesPerWatt(m, power), 1)});
    };

    const auto tflite = baselines::runFrameworkOnGraph(
        baselines::Framework::TfLite, g);
    const auto snpe =
        baselines::runFrameworkOnGraph(baselines::Framework::Snpe, g);
    addRow("TFLite-like", tflite, tflite.latencyMs());
    addRow("SNPE-like", snpe, tflite.latencyMs());
    addRow("GCD2", gcd2, tflite.latencyMs());
    results.print(std::cout);

    std::cout << "\nSelection telemetry: " << gcd2.selector.evaluations
              << " plan combinations examined in "
              << fmtDouble(gcd2.selector.seconds * 1000.0, 1) << " ms\n";

    std::cout << "\nWhere the compiler spent its time:\n"
              << gcd2.report.toString();

    std::cout << "\nHottest operators (GCD2 build):\n";
    for (const auto &[id, cycles] : gcd2.topOperators(5)) {
        std::cout << "  " << g.node(id).name << " "
                  << g.node(id).shape.toString() << ": "
                  << fmtDouble(100.0 * static_cast<double>(cycles) /
                                   static_cast<double>(gcd2.totals.cycles),
                               1)
                  << "% of cycles\n";
    }
    return 0;
}
