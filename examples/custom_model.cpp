/**
 * @file
 * Authoring a custom network against the public graph API and compiling
 * it with different selection strategies -- the workflow a downstream
 * user follows to bring their own model to the simulated DSP.
 *
 * The model is a small super-resolution-style network whose alternating
 * shapes give the global optimizer real decisions to make.
 */
#include <iostream>

#include "common/table.h"
#include "graph/passes.h"
#include "models/builders.h"
#include "runtime/compiler.h"

using namespace gcd2;
using models::add;
using models::conv;
using models::input;

int
main()
{
    // Build: head conv -> 4 residual blocks with channel expansion ->
    // upsample tail. Mixed 1x1/3x3 kernels alternate the best SIMD
    // instruction, which is exactly where global selection pays off.
    graph::Graph g;
    graph::NodeId x = input(g, {3, 96, 96});
    graph::NodeId body = conv(g, x, 32, 3, 1, 1);
    for (int i = 0; i < 4; ++i) {
        graph::NodeId y = conv(g, body, 144, 1, 1, 0);      // expand
        y = conv(g, y, 32, 1, 1, 0, /*relu=*/false);        // shrink
        y = conv(g, y, 32, 3, 1, 1, /*relu=*/false);        // spatial
        body = add(g, body, y);
    }
    graph::NodeId up = g.add(graph::OpType::Upsample, {body});
    graph::NodeId out = conv(g, up, 3, 3, 1, 1, /*relu=*/false);
    g.add(graph::OpType::Output, {out});

    const graph::PassStats passes = graph::optimize(g);
    std::cout << "Custom model: " << g.operatorCount() << " operators, "
              << fmtDouble(static_cast<double>(g.totalMacs()) / 1e9, 3)
              << " GMACs (" << passes.fusedActivations
              << " activations fused, " << passes.removedNodes
              << " nodes eliminated)\n\n";

    Table table({"Selection", "Agg cost (cycles)", "Latency (ms)",
                 "Search evals"});
    for (auto mode : {runtime::SelectionMode::Local,
                      runtime::SelectionMode::Gcd2,
                      runtime::SelectionMode::GlobalOptimal}) {
        runtime::CompileOptions options;
        options.selection = mode;
        const runtime::CompiledModel compiled = runtime::compile(g, options);
        const char *name = mode == runtime::SelectionMode::Local ? "local"
                           : mode == runtime::SelectionMode::Gcd2
                               ? "GCD2(13)"
                               : "global optimal";
        table.addRow({name,
                      std::to_string(compiled.selection.totalCost),
                      fmtDouble(compiled.latencyMs(), 3),
                      std::to_string(compiled.selector.evaluations)});
    }
    table.print(std::cout);

    std::cout << "\nGCD2's bounded-partition search should match the "
                 "global optimum here at a fraction of the evaluations, "
                 "while local-only choices pay layout transformations.\n";
    return 0;
}
